// Command metricscheck is the `make metrics-check` gate: it stands up
// an in-process server, scrapes GET /metrics, and fails when the
// exposition is malformed Prometheus text or when any exported metric
// family is not documented in the API reference. Exporting a metric
// and documenting it become one step — a new family that never made
// it into API.md breaks the build, not a dashboard.
//
// Usage:
//
//	metricscheck -docs API.md
//
// Exit status is non-zero with one diagnostic per offence.
package main

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"sort"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/obs"
	"github.com/cyclerank/cyclerank-go/internal/server"
)

func main() {
	docs := flag.String("docs", "API.md", "markdown file that must mention every exported metric family")
	flag.Parse()
	if err := check(*docs); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
	fmt.Println("metricscheck: exposition well-formed, all families documented")
}

func check(docsPath string) error {
	doc, err := os.ReadFile(docsPath)
	if err != nil {
		return err
	}

	// A real server instance, not a hand-kept list: every family any
	// component registers at construction (scheduler, index store,
	// endpoint cache, datastore, prewarm, GC, bippr's package counters)
	// is present in the scrape without running a single query.
	dir, err := os.MkdirTemp("", "metricscheck")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := datastore.Open(dir)
	if err != nil {
		return err
	}
	catalog, err := datasets.BuiltinCatalogSubset("complete-50")
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Registry: algo.NewBuiltinRegistry(),
		Catalog:  catalog,
		Store:    store,
		Workers:  1,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		return fmt.Errorf("GET /metrics returned %d", rec.Code)
	}
	families, err := obs.CheckExposition(rec.Body.Bytes())
	if err != nil {
		return fmt.Errorf("malformed exposition: %w", err)
	}
	if len(families) == 0 {
		return fmt.Errorf("scrape exported no metric families")
	}
	sort.Strings(families)

	var missing []string
	for _, f := range families {
		if !contains(doc, f) {
			missing = append(missing, f)
		}
	}
	if len(missing) > 0 {
		for _, f := range missing {
			fmt.Fprintf(os.Stderr, "%s: metric family %s is exported but not documented\n", docsPath, f)
		}
		return fmt.Errorf("%d undocumented metric families", len(missing))
	}
	return nil
}

// contains reports whether the docs mention name as a whole word —
// a substring match would let cyclerank_foo document
// cyclerank_foo_total without the suffix ever appearing.
func contains(doc []byte, name string) bool {
	for i := 0; i+len(name) <= len(doc); i++ {
		if string(doc[i:i+len(name)]) != name {
			continue
		}
		if i+len(name) < len(doc) && isNameByte(doc[i+len(name)]) {
			continue
		}
		return true
	}
	return false
}

func isNameByte(b byte) bool {
	return b == '_' || b == ':' ||
		('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}
