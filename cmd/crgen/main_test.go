package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/formats"
)

func TestGenerateSingleDataset(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ring.asd")
	if err := run([]string{"-dataset", "ring-1k", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err := formats.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1000 || g.NumEdges() != 1000 {
		t.Errorf("ring N=%d M=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestGeneratePajek(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "amazon.net")
	if err := run([]string{"-dataset", "amazon", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err := formats.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.NodeByLabel("1984"); !ok {
		t.Error("labels lost in export")
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-dataset", "ghost", "-out", "x.csv"},
		{"-dataset", "ring-1k"}, // no -out
		{"-dataset", "ring-1k", "-out", "x.badformat"}, // unknown ext
		{"-all", "-format", "bogus"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestGenerateAllSubsetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("-all generates all 50 datasets")
	}
	dir := t.TempDir()
	if err := run([]string{"-all", "-dir", dir, "-format", "asd"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 50 {
		t.Errorf("exported %d files, want 50", len(entries))
	}
}
