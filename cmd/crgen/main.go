// Command crgen materializes catalog datasets to disk in any
// supported graph format — useful for exporting the synthetic corpora
// to other tools or seeding the demo's datastore.
//
// Usage:
//
//	crgen -dataset enwiki-2018 -out enwiki.csv
//	crgen -dataset amazon -out amazon.net
//	crgen -all -dir ./graphs -format asd
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/formats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crgen", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "", "catalog dataset to generate")
		out     = fs.String("out", "", "output file (format from extension)")
		all     = fs.Bool("all", false, "generate every catalog dataset")
		dir     = fs.String("dir", ".", "output directory for -all")
		format  = fs.String("format", "csv", "format for -all: csv, net, asd")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	catalog, err := datasets.BuiltinCatalog()
	if err != nil {
		return err
	}

	if *all {
		f := formats.FromExtension(*format)
		if !f.Valid() {
			return fmt.Errorf("unknown format %q", *format)
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return err
		}
		for _, d := range catalog.All() {
			g, err := d.Load()
			if err != nil {
				return err
			}
			path := filepath.Join(*dir, d.Name+f.Extension())
			if err := formats.WriteFile(path, g); err != nil {
				// Edge lists cannot encode labels with commas; fall back
				// to pajek for those datasets rather than failing the
				// whole export.
				if f == formats.FormatEdgeList {
					path = filepath.Join(*dir, d.Name+".net")
					if err2 := formats.WriteFile(path, g); err2 != nil {
						return err2
					}
				} else {
					return err
				}
			}
			fmt.Printf("%s: %d nodes, %d edges -> %s\n", d.Name, g.NumNodes(), g.NumEdges(), path)
		}
		return nil
	}

	if *dataset == "" || *out == "" {
		return fmt.Errorf("need -dataset and -out (or -all)")
	}
	d, err := catalog.Get(*dataset)
	if err != nil {
		return err
	}
	g, err := d.Load()
	if err != nil {
		return err
	}
	if err := formats.WriteFile(*out, g); err != nil {
		return err
	}
	fmt.Printf("%s: %d nodes, %d edges -> %s\n", d.Name, g.NumNodes(), g.NumEdges(), *out)
	return nil
}
