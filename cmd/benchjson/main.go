// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark report, the machine-readable artifact CI archives to
// track the performance trajectory across commits.
//
// Usage:
//
//	go test -run NONE -bench BiPPR -benchmem . | benchjson -out BENCH_bippr.json
//
// Non-benchmark lines (PASS, ok, cpu info) are ignored, so the raw
// test output can be piped through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkBiPPRPair/pair-8   1234   56789 ns/op   321 B/op   7 allocs/op
//
// The B/op and allocs/op columns are optional (-benchmem adds them).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	if err := run(os.Stdin, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, outPath string) error {
	report, err := parse(in)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

func parse(in io.Reader) (*Report, error) {
	report := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parsing iterations of %q: %w", m[1], err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing ns/op of %q: %w", m[1], err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			if b.BytesPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("parsing B/op of %q: %w", m[1], err)
			}
		}
		if m[5] != "" {
			if b.AllocsPerOp, err = strconv.ParseInt(m[5], 10, 64); err != nil {
				return nil, fmt.Errorf("parsing allocs/op of %q: %w", m[1], err)
			}
		}
		report.Benchmarks = append(report.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}
