// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark report, the machine-readable artifact CI archives to
// track the performance trajectory across commits — and compares two
// such reports, flagging regressions.
//
// Usage:
//
//	go test -run NONE -bench BiPPR -benchmem . | benchjson -out BENCH_bippr.json
//	benchjson -compare old.json new.json            # exit 1 on >2x ns/op regression
//	benchjson -compare -threshold 1.5 old.json new.json
//	benchjson -history window.json new.json         # compare vs rolling median, then append
//	benchjson -history window.json -window 12 new.json
//
// Non-benchmark lines (PASS, ok, cpu info) are ignored, so the raw
// test output can be piped through unfiltered. Compare mode matches
// benchmarks by name; entries present in only one report are listed
// but never flagged. CI runs the comparison non-blocking (shared
// runners are noisy), so a regression informs rather than gates.
//
// History mode replaces the single-baseline compare with a rolling
// window: the new report's ns/op is compared against the per-benchmark
// MEDIAN of the last N runs (default 8), which absorbs one-off noise
// spikes a shared runner's previous run might carry — a single slow
// baseline can no longer flag every following run, and a single fast
// one can no longer mask a real regression. The new run is then
// appended to the window file (bounded to N runs) regardless of the
// verdict, so the window tracks the trajectory even across flagged
// runs. An empty or missing window file seeds silently.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"text/tabwriter"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkBiPPRPair/pair-8   1234   56789 ns/op   321 B/op   7 allocs/op
//
// The B/op and allocs/op columns are optional (-benchmem adds them).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	compareMode := flag.Bool("compare", false, "compare two reports: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 2.0, "compare/history mode: flag ns/op ratios above this as regressions")
	history := flag.String("history", "", "history mode: compare new.json against the rolling median of this window file, then append it")
	window := flag.Int("window", 8, "history mode: how many runs the window file retains")
	minIters := flag.Int64("miniters", 2, "parse mode: warn on stderr for benchmarks that ran fewer iterations than this (0 disables)")
	flag.Parse()
	if *history != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -history needs exactly one report file: new.json")
			os.Exit(2)
		}
		w, cleanup, err := outWriter(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		defer cleanup()
		regressed, err := runHistory(w, *history, flag.Arg(0), *window, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed > 0 {
			os.Exit(1)
		}
		return
	}
	if *compareMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two report files: old.json new.json")
			os.Exit(2)
		}
		w, cleanup, err := outWriter(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		defer cleanup()
		regressed, err := runCompare(w, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed > 0 {
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, *out, *minIters); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, outPath string, minIters int64) error {
	report, err := parse(in)
	if err != nil {
		return err
	}
	warnLowIterations(os.Stderr, report, minIters)
	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// warnLowIterations flags benchmarks that ran fewer than minIters
// iterations. A single-iteration benchmark is one sample — its ns/op
// carries the full noise of one run, which poisons every later
// -compare and -history verdict against it. It warns rather than
// fails (the CI smoke pass legitimately runs -benchtime 1x), so the
// archived artifact's weakness is visible in the log that produced it.
func warnLowIterations(w io.Writer, report *Report, minIters int64) {
	if minIters <= 0 {
		return
	}
	for _, b := range report.Benchmarks {
		if b.Iterations < minIters {
			fmt.Fprintf(w, "benchjson: warning: %s ran %d iteration(s), below the -miniters floor %d; raise -benchtime before tracking these numbers\n",
				b.Name, b.Iterations, minIters)
		}
	}
}

func parse(in io.Reader) (*Report, error) {
	report := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parsing iterations of %q: %w", m[1], err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing ns/op of %q: %w", m[1], err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			if b.BytesPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("parsing B/op of %q: %w", m[1], err)
			}
		}
		if m[5] != "" {
			if b.AllocsPerOp, err = strconv.ParseInt(m[5], 10, 64); err != nil {
				return nil, fmt.Errorf("parsing allocs/op of %q: %w", m[1], err)
			}
		}
		report.Benchmarks = append(report.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// Comparison is one benchmark matched across two reports. Ratio is
// new/old ns-per-op: above 1 is slower, above the threshold a flagged
// regression.
type Comparison struct {
	Name   string
	OldNs  float64
	NewNs  float64
	Ratio  float64
	Slower bool // ratio exceeds the threshold
}

// compareReports matches benchmarks by name and computes ns/op ratios,
// sorted by name. onlyOld/onlyNew collect entries without a
// counterpart (renamed, added, or removed benchmarks) — reported, but
// never flagged: a disappearing benchmark is a review concern, not a
// perf regression.
func compareReports(old, new *Report, threshold float64) (matched []Comparison, onlyOld, onlyNew []string) {
	oldByName := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldByName[b.Name] = b
	}
	seen := make(map[string]bool, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		prev, ok := oldByName[b.Name]
		if !ok {
			onlyNew = append(onlyNew, b.Name)
			continue
		}
		seen[b.Name] = true
		c := Comparison{Name: b.Name, OldNs: prev.NsPerOp, NewNs: b.NsPerOp}
		if prev.NsPerOp > 0 {
			c.Ratio = b.NsPerOp / prev.NsPerOp
			c.Slower = c.Ratio > threshold
		}
		matched = append(matched, c)
	}
	for _, b := range old.Benchmarks {
		if !seen[b.Name] {
			onlyOld = append(onlyOld, b.Name)
		}
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].Name < matched[j].Name })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return matched, onlyOld, onlyNew
}

// loadReport reads one emitted JSON report.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &r, nil
}

// runCompare renders the comparison of two report files and returns
// how many benchmarks regressed past the threshold.
func runCompare(w io.Writer, oldPath, newPath string, threshold float64) (regressed int, err error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return 0, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return 0, err
	}
	matched, onlyOld, onlyNew := compareReports(oldRep, newRep, threshold)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tratio\t")
	for _, c := range matched {
		flag := ""
		if c.Slower {
			flag = "REGRESSION"
			regressed++
		}
		// A zero old ns/op (empty or partial baseline) has no ratio;
		// "-" keeps it from reading as an infinite speedup.
		ratio := "-"
		if c.OldNs > 0 {
			ratio = fmt.Sprintf("%.2fx", c.Ratio)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\t%s\n", c.Name, c.OldNs, c.NewNs, ratio, flag)
	}
	if err := tw.Flush(); err != nil {
		return 0, err
	}
	for _, name := range onlyOld {
		fmt.Fprintf(w, "only in %s: %s\n", oldPath, name)
	}
	for _, name := range onlyNew {
		fmt.Fprintf(w, "only in %s: %s\n", newPath, name)
	}
	if regressed > 0 {
		fmt.Fprintf(w, "%d benchmark(s) regressed past %.1fx ns/op\n", regressed, threshold)
	}
	return regressed, nil
}

// outWriter resolves the -out flag: stdout by default, a created file
// otherwise.
func outWriter(path string) (io.Writer, func(), error) {
	if path == "" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// Window is the bounded history file of past benchmark reports,
// oldest first.
type Window struct {
	Runs []Report `json:"runs"`
}

// loadWindow reads a window file; a missing file is an empty window,
// and so is a corrupt one — the window is a cache of past runs, and a
// truncated or unparsable file (interrupted CI cache transfer, hand
// edit) must reseed on the next run rather than wedge history mode
// forever. reset reports the reseed so the caller can surface it.
func loadWindow(path string) (w *Window, reset bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Window{}, false, nil
		}
		return nil, false, err
	}
	w = &Window{}
	if err := json.Unmarshal(data, w); err != nil {
		return &Window{}, true, nil
	}
	return w, false, nil
}

// median returns the middle value of vs (mean of the two middles for
// even counts). vs must be non-empty; it is sorted in place.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// medianReport collapses a window into one synthetic report: each
// benchmark name appearing in any run gets the median ns/op across
// the runs that carry it. Benchmarks absent from some runs (added
// mid-window) are judged on the runs they have.
func medianReport(w *Window) *Report {
	byName := make(map[string][]float64)
	for _, run := range w.Runs {
		for _, b := range run.Benchmarks {
			byName[b.Name] = append(byName[b.Name], b.NsPerOp)
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	rep := &Report{}
	for _, name := range names {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: name, NsPerOp: median(byName[name])})
	}
	return rep
}

// runHistory compares the new report against the window's rolling
// median, appends the new run to the window file (bounded to size
// runs), and returns how many benchmarks regressed past the
// threshold. An empty window flags nothing: the first run only seeds.
func runHistory(w io.Writer, windowPath, newPath string, size int, threshold float64) (regressed int, err error) {
	if size < 1 {
		return 0, fmt.Errorf("-window must be at least 1, got %d", size)
	}
	win, reset, err := loadWindow(windowPath)
	if err != nil {
		return 0, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return 0, err
	}

	if reset {
		fmt.Fprintf(w, "%s is corrupt; discarding it and reseeding the window\n", windowPath)
	}
	if len(win.Runs) == 0 {
		fmt.Fprintf(w, "no history in %s yet; seeding the window\n", windowPath)
	} else {
		base := medianReport(win)
		matched, _, onlyNew := compareReports(base, newRep, threshold)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "benchmark\tmedian ns/op (last %d)\tnew ns/op\tratio\t\n", len(win.Runs))
		for _, c := range matched {
			flag := ""
			if c.Slower {
				flag = "REGRESSION"
				regressed++
			}
			ratio := "-"
			if c.OldNs > 0 {
				ratio = fmt.Sprintf("%.2fx", c.Ratio)
			}
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\t%s\n", c.Name, c.OldNs, c.NewNs, ratio, flag)
		}
		if err := tw.Flush(); err != nil {
			return 0, err
		}
		for _, name := range onlyNew {
			fmt.Fprintf(w, "new benchmark (no history): %s\n", name)
		}
		if regressed > 0 {
			fmt.Fprintf(w, "%d benchmark(s) regressed past %.1fx the rolling median\n", regressed, threshold)
		}
	}

	// Append the run — flagged or not — and trim to the last N, so the
	// window keeps tracking the trajectory. The write is atomic-ish
	// (temp + rename) so a killed CI step cannot leave a torn window.
	win.Runs = append(win.Runs, *newRep)
	if len(win.Runs) > size {
		win.Runs = win.Runs[len(win.Runs)-size:]
	}
	data, err := json.MarshalIndent(win, "", "  ")
	if err != nil {
		return 0, err
	}
	tmp := windowPath + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, windowPath); err != nil {
		return 0, err
	}
	return regressed, nil
}
