package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/cyclerank/cyclerank-go
cpu: Example CPU
BenchmarkBiPPRPair/pair-8         	    1204	    987654 ns/op	  123456 B/op	     789 allocs/op
BenchmarkBiPPRPair/pair-cold-8    	      12	 98765432 ns/op
BenchmarkTargetIndexStorage/sparse-8 	     100	   5500.5 ns/op	    5504 B/op	      12 allocs/op
PASS
ok  	github.com/cyclerank/cyclerank-go	12.3s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(report.Benchmarks), report.Benchmarks)
	}
	first := report.Benchmarks[0]
	if first.Name != "BenchmarkBiPPRPair/pair-8" || first.Iterations != 1204 ||
		first.NsPerOp != 987654 || first.BytesPerOp != 123456 || first.AllocsPerOp != 789 {
		t.Errorf("first benchmark parsed wrong: %+v", first)
	}
	// Without -benchmem columns the memory fields stay zero.
	second := report.Benchmarks[1]
	if second.NsPerOp != 98765432 || second.BytesPerOp != 0 || second.AllocsPerOp != 0 {
		t.Errorf("second benchmark parsed wrong: %+v", second)
	}
	// Fractional ns/op (sub-microsecond benches) must parse.
	if report.Benchmarks[2].NsPerOp != 5500.5 {
		t.Errorf("fractional ns/op parsed wrong: %+v", report.Benchmarks[2])
	}
}

func TestParseEmptyInput(t *testing.T) {
	report, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Fatalf("expected empty report, got %+v", report.Benchmarks)
	}
}

func TestCompareReports(t *testing.T) {
	old := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 50},
		{Name: "BenchmarkZeroOld", NsPerOp: 0},
	}}
	new := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkB", NsPerOp: 2500}, // 2.5x: regression at 2.0
		{Name: "BenchmarkA", NsPerOp: 150},  // 1.5x: noise, not flagged
		{Name: "BenchmarkNew", NsPerOp: 7},
		{Name: "BenchmarkZeroOld", NsPerOp: 9}, // old 0 ns/op: no ratio, never flagged
	}}
	matched, onlyOld, onlyNew := compareReports(old, new, 2.0)
	if len(matched) != 3 {
		t.Fatalf("matched %d benchmarks, want 3: %+v", len(matched), matched)
	}
	// Sorted by name: A, B, ZeroOld.
	a, b, z := matched[0], matched[1], matched[2]
	if a.Name != "BenchmarkA" || a.Ratio != 1.5 || a.Slower {
		t.Errorf("A compared wrong: %+v", a)
	}
	if b.Name != "BenchmarkB" || b.Ratio != 2.5 || !b.Slower {
		t.Errorf("B compared wrong: %+v", b)
	}
	if z.Name != "BenchmarkZeroOld" || z.Ratio != 0 || z.Slower {
		t.Errorf("zero-old benchmark must not be flagged: %+v", z)
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Errorf("onlyOld = %v, want [BenchmarkGone]", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkNew" {
		t.Errorf("onlyNew = %v, want [BenchmarkNew]", onlyNew)
	}
}

func TestCompareThreshold(t *testing.T) {
	old := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 100}}}
	// Exactly at the threshold is not a regression — only strictly
	// above flags, so a clean 2x boundary run does not flap.
	new := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 200}}}
	matched, _, _ := compareReports(old, new, 2.0)
	if matched[0].Slower {
		t.Errorf("ratio exactly at threshold flagged: %+v", matched[0])
	}
	// A speedup never flags.
	faster := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 10}}}
	matched, _, _ = compareReports(old, faster, 2.0)
	if matched[0].Slower || matched[0].Ratio != 0.1 {
		t.Errorf("speedup compared wrong: %+v", matched[0])
	}
}

// TestRunCompare exercises the file-level entry point end to end:
// report files in, rendered table + regression count out.
func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r Report) string {
		t.Helper()
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkFast", NsPerOp: 100},
		{Name: "BenchmarkNoBase", NsPerOp: 0},
		{Name: "BenchmarkSlow", NsPerOp: 100},
	}})
	newPath := write("new.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkFast", NsPerOp: 90},
		{Name: "BenchmarkNoBase", NsPerOp: 5},
		{Name: "BenchmarkSlow", NsPerOp: 500},
	}})

	var out strings.Builder
	regressed, err := runCompare(&out, oldPath, newPath, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1\noutput:\n%s", regressed, out.String())
	}
	text := out.String()
	for _, want := range []string{"BenchmarkSlow", "5.00x", "REGRESSION", "1 benchmark(s) regressed"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Exactly one flag: neither the speedup row nor the baseline-less
	// row may be marked.
	if got := strings.Count(text, "REGRESSION"); got != 1 {
		t.Errorf("REGRESSION flagged %d times, want exactly 1:\n%s", got, text)
	}
	// A zero-ns/op baseline renders "-", not a 0.00x pseudo-speedup.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "BenchmarkNoBase") && !strings.Contains(line, "-") {
			t.Errorf("baseline-less row missing \"-\": %q", line)
		}
	}

	if _, err := runCompare(&out, filepath.Join(dir, "missing.json"), newPath, 2.0); err == nil {
		t.Error("missing old report did not error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCompare(&out, oldPath, bad, 2.0); err == nil {
		t.Error("corrupt new report did not error")
	}
}
