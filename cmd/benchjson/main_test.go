package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/cyclerank/cyclerank-go
cpu: Example CPU
BenchmarkBiPPRPair/pair-8         	    1204	    987654 ns/op	  123456 B/op	     789 allocs/op
BenchmarkBiPPRPair/pair-cold-8    	      12	 98765432 ns/op
BenchmarkTargetIndexStorage/sparse-8 	     100	   5500.5 ns/op	    5504 B/op	      12 allocs/op
PASS
ok  	github.com/cyclerank/cyclerank-go	12.3s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(report.Benchmarks), report.Benchmarks)
	}
	first := report.Benchmarks[0]
	if first.Name != "BenchmarkBiPPRPair/pair-8" || first.Iterations != 1204 ||
		first.NsPerOp != 987654 || first.BytesPerOp != 123456 || first.AllocsPerOp != 789 {
		t.Errorf("first benchmark parsed wrong: %+v", first)
	}
	// Without -benchmem columns the memory fields stay zero.
	second := report.Benchmarks[1]
	if second.NsPerOp != 98765432 || second.BytesPerOp != 0 || second.AllocsPerOp != 0 {
		t.Errorf("second benchmark parsed wrong: %+v", second)
	}
	// Fractional ns/op (sub-microsecond benches) must parse.
	if report.Benchmarks[2].NsPerOp != 5500.5 {
		t.Errorf("fractional ns/op parsed wrong: %+v", report.Benchmarks[2])
	}
}

func TestParseEmptyInput(t *testing.T) {
	report, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Fatalf("expected empty report, got %+v", report.Benchmarks)
	}
}
