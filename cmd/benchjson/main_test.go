package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/cyclerank/cyclerank-go
cpu: Example CPU
BenchmarkBiPPRPair/pair-8         	    1204	    987654 ns/op	  123456 B/op	     789 allocs/op
BenchmarkBiPPRPair/pair-cold-8    	      12	 98765432 ns/op
BenchmarkTargetIndexStorage/sparse-8 	     100	   5500.5 ns/op	    5504 B/op	      12 allocs/op
PASS
ok  	github.com/cyclerank/cyclerank-go	12.3s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(report.Benchmarks), report.Benchmarks)
	}
	first := report.Benchmarks[0]
	if first.Name != "BenchmarkBiPPRPair/pair-8" || first.Iterations != 1204 ||
		first.NsPerOp != 987654 || first.BytesPerOp != 123456 || first.AllocsPerOp != 789 {
		t.Errorf("first benchmark parsed wrong: %+v", first)
	}
	// Without -benchmem columns the memory fields stay zero.
	second := report.Benchmarks[1]
	if second.NsPerOp != 98765432 || second.BytesPerOp != 0 || second.AllocsPerOp != 0 {
		t.Errorf("second benchmark parsed wrong: %+v", second)
	}
	// Fractional ns/op (sub-microsecond benches) must parse.
	if report.Benchmarks[2].NsPerOp != 5500.5 {
		t.Errorf("fractional ns/op parsed wrong: %+v", report.Benchmarks[2])
	}
}

// TestWarnLowIterations pins the -miniters floor: single-sample
// benchmarks are named on the warning stream, healthy ones are not,
// and a zero floor disables the check entirely.
func TestWarnLowIterations(t *testing.T) {
	report := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkOneShot", Iterations: 1, NsPerOp: 500},
		{Name: "BenchmarkHealthy", Iterations: 1204, NsPerOp: 100},
	}}
	var out strings.Builder
	warnLowIterations(&out, report, 2)
	text := out.String()
	if !strings.Contains(text, "BenchmarkOneShot") || !strings.Contains(text, "floor 2") {
		t.Errorf("one-iteration benchmark not warned: %q", text)
	}
	if strings.Contains(text, "BenchmarkHealthy") {
		t.Errorf("healthy benchmark warned: %q", text)
	}
	out.Reset()
	warnLowIterations(&out, report, 0)
	if out.Len() != 0 {
		t.Errorf("disabled floor still warned: %q", out.String())
	}
}

func TestParseEmptyInput(t *testing.T) {
	report, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Fatalf("expected empty report, got %+v", report.Benchmarks)
	}
}

func TestCompareReports(t *testing.T) {
	old := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 50},
		{Name: "BenchmarkZeroOld", NsPerOp: 0},
	}}
	new := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkB", NsPerOp: 2500}, // 2.5x: regression at 2.0
		{Name: "BenchmarkA", NsPerOp: 150},  // 1.5x: noise, not flagged
		{Name: "BenchmarkNew", NsPerOp: 7},
		{Name: "BenchmarkZeroOld", NsPerOp: 9}, // old 0 ns/op: no ratio, never flagged
	}}
	matched, onlyOld, onlyNew := compareReports(old, new, 2.0)
	if len(matched) != 3 {
		t.Fatalf("matched %d benchmarks, want 3: %+v", len(matched), matched)
	}
	// Sorted by name: A, B, ZeroOld.
	a, b, z := matched[0], matched[1], matched[2]
	if a.Name != "BenchmarkA" || a.Ratio != 1.5 || a.Slower {
		t.Errorf("A compared wrong: %+v", a)
	}
	if b.Name != "BenchmarkB" || b.Ratio != 2.5 || !b.Slower {
		t.Errorf("B compared wrong: %+v", b)
	}
	if z.Name != "BenchmarkZeroOld" || z.Ratio != 0 || z.Slower {
		t.Errorf("zero-old benchmark must not be flagged: %+v", z)
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Errorf("onlyOld = %v, want [BenchmarkGone]", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkNew" {
		t.Errorf("onlyNew = %v, want [BenchmarkNew]", onlyNew)
	}
}

func TestCompareThreshold(t *testing.T) {
	old := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 100}}}
	// Exactly at the threshold is not a regression — only strictly
	// above flags, so a clean 2x boundary run does not flap.
	new := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 200}}}
	matched, _, _ := compareReports(old, new, 2.0)
	if matched[0].Slower {
		t.Errorf("ratio exactly at threshold flagged: %+v", matched[0])
	}
	// A speedup never flags.
	faster := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 10}}}
	matched, _, _ = compareReports(old, faster, 2.0)
	if matched[0].Slower || matched[0].Ratio != 0.1 {
		t.Errorf("speedup compared wrong: %+v", matched[0])
	}
}

// TestRunCompare exercises the file-level entry point end to end:
// report files in, rendered table + regression count out.
func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r Report) string {
		t.Helper()
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkFast", NsPerOp: 100},
		{Name: "BenchmarkNoBase", NsPerOp: 0},
		{Name: "BenchmarkSlow", NsPerOp: 100},
	}})
	newPath := write("new.json", Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkFast", NsPerOp: 90},
		{Name: "BenchmarkNoBase", NsPerOp: 5},
		{Name: "BenchmarkSlow", NsPerOp: 500},
	}})

	var out strings.Builder
	regressed, err := runCompare(&out, oldPath, newPath, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1\noutput:\n%s", regressed, out.String())
	}
	text := out.String()
	for _, want := range []string{"BenchmarkSlow", "5.00x", "REGRESSION", "1 benchmark(s) regressed"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Exactly one flag: neither the speedup row nor the baseline-less
	// row may be marked.
	if got := strings.Count(text, "REGRESSION"); got != 1 {
		t.Errorf("REGRESSION flagged %d times, want exactly 1:\n%s", got, text)
	}
	// A zero-ns/op baseline renders "-", not a 0.00x pseudo-speedup.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "BenchmarkNoBase") && !strings.Contains(line, "-") {
			t.Errorf("baseline-less row missing \"-\": %q", line)
		}
	}

	if _, err := runCompare(&out, filepath.Join(dir, "missing.json"), newPath, 2.0); err == nil {
		t.Error("missing old report did not error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCompare(&out, oldPath, bad, 2.0); err == nil {
		t.Error("corrupt new report did not error")
	}
}

func TestMedian(t *testing.T) {
	for _, tc := range []struct {
		in   []float64
		want float64
	}{
		{[]float64{5}, 5},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 100, 2}, 3},
		{[]float64{1000, 10, 10, 10, 10}, 10}, // one noise spike does not move the median
	} {
		if got := median(append([]float64(nil), tc.in...)); got != tc.want {
			t.Errorf("median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestMedianReport(t *testing.T) {
	w := &Window{Runs: []Report{
		{Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 100}, {Name: "BenchmarkB", NsPerOp: 10}}},
		{Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 120}}},
		{Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 5000}, {Name: "BenchmarkB", NsPerOp: 12}}},
	}}
	rep := medianReport(w)
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("median report has %d benchmarks, want 2", len(rep.Benchmarks))
	}
	// A (100, 120, 5000): the spike run does not drag the median.
	if rep.Benchmarks[0].Name != "BenchmarkA" || rep.Benchmarks[0].NsPerOp != 120 {
		t.Errorf("A median = %+v, want 120", rep.Benchmarks[0])
	}
	// B appears in only two runs; judged on those.
	if rep.Benchmarks[1].Name != "BenchmarkB" || rep.Benchmarks[1].NsPerOp != 11 {
		t.Errorf("B median = %+v, want 11", rep.Benchmarks[1])
	}
}

// TestRunHistory exercises the rolling-window mode end to end:
// seeding, median comparison, regression flagging, window bounding,
// and noise absorption (one slow run in the window must not flag the
// next normal run — the failure mode of single-baseline compare).
func TestRunHistory(t *testing.T) {
	dir := t.TempDir()
	windowPath := filepath.Join(dir, "window.json")
	writeRun := func(ns float64) string {
		t.Helper()
		data, err := json.Marshal(Report{Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: ns}}})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "new.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	runOnce := func(ns float64, window int) (int, string) {
		t.Helper()
		var out strings.Builder
		regressed, err := runHistory(&out, windowPath, writeRun(ns), window, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		return regressed, out.String()
	}

	// First run seeds; nothing to compare.
	regressed, text := runOnce(100, 4)
	if regressed != 0 || !strings.Contains(text, "seeding") {
		t.Fatalf("seed run: regressed=%d output=%q", regressed, text)
	}
	// Steady runs at the baseline pace: no flags.
	if regressed, _ := runOnce(110, 4); regressed != 0 {
		t.Fatal("steady run flagged")
	}
	// One noisy spike IS flagged against the median...
	regressed, text = runOnce(1000, 4)
	if regressed != 1 || !strings.Contains(text, "REGRESSION") {
		t.Fatalf("spike run: regressed=%d output=%q", regressed, text)
	}
	// ...but — the point of the rolling median — the NEXT normal run
	// is NOT flagged, even though the previous (spike) run would have
	// flagged it under single-baseline compare, and a fresh spike is
	// still caught because one outlier cannot drag the median.
	if regressed, _ := runOnce(120, 4); regressed != 0 {
		t.Fatal("normal run after a noise spike was flagged; the median failed to absorb the outlier")
	}
	if regressed, _ := runOnce(900, 4); regressed != 1 {
		t.Fatal("real regression hidden by the earlier spike in the window")
	}

	// The window file is bounded: 5 runs through a window of 4 keeps 4.
	win, reset, err := loadWindow(windowPath)
	if err != nil || reset {
		t.Fatalf("loadWindow: reset=%v err=%v", reset, err)
	}
	if len(win.Runs) != 4 {
		t.Fatalf("window holds %d runs, want 4", len(win.Runs))
	}
	// Oldest run (100) was trimmed; newest (900) retained.
	if win.Runs[0].Benchmarks[0].NsPerOp != 110 || win.Runs[3].Benchmarks[0].NsPerOp != 900 {
		t.Fatalf("window order wrong: first=%v last=%v",
			win.Runs[0].Benchmarks[0].NsPerOp, win.Runs[3].Benchmarks[0].NsPerOp)
	}

	// A brand-new benchmark has no history: reported, never flagged.
	data, err := json.Marshal(Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 120}, {Name: "BenchmarkNew", NsPerOp: 7}}})
	if err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(newPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if regressed, err := runHistory(&out, windowPath, newPath, 4, 2.0); err != nil || regressed != 0 {
		t.Fatalf("new-benchmark run: regressed=%d err=%v", regressed, err)
	}
	if !strings.Contains(out.String(), "no history") {
		t.Errorf("new benchmark not reported: %q", out.String())
	}

	// Bad inputs error instead of silently rewriting the window.
	if _, err := runHistory(&out, windowPath, filepath.Join(dir, "missing.json"), 4, 2.0); err == nil {
		t.Error("missing new report did not error")
	}
	if _, err := runHistory(&out, windowPath, newPath, 0, 2.0); err == nil {
		t.Error("zero window accepted")
	}

	// A corrupt window file must not wedge history mode: it is
	// discarded, reported, and reseeded with the current run — the
	// same corruption-as-miss stance the artifact caches take.
	if err := os.WriteFile(windowPath, []byte("{torn cache transfer"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if regressed, err := runHistory(&out, windowPath, writeRun(100), 4, 2.0); err != nil || regressed != 0 {
		t.Fatalf("corrupt window: regressed=%d err=%v", regressed, err)
	}
	if !strings.Contains(out.String(), "corrupt") {
		t.Errorf("reseed not reported: %q", out.String())
	}
	win, reset, err = loadWindow(windowPath)
	if err != nil || reset || len(win.Runs) != 1 {
		t.Fatalf("window not reseeded after corruption: reset=%v err=%v runs=%d", reset, err, len(win.Runs))
	}
}
