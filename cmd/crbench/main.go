// Command crbench regenerates every table of the paper's evaluation
// section, plus the ablation studies indexed in DESIGN.md §4.
//
// Usage:
//
//	crbench                         # all paper tables
//	crbench -table 1                # just Table I
//	crbench -ablation k-sweep       # one ablation
//	crbench -ablation all           # every ablation
//	crbench -format markdown        # markdown output (also: text, csv)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crbench", flag.ContinueOnError)
	var (
		table    = fs.Int("table", 0, "table to regenerate (1-3 from the paper, 4 = target-relevance extension); 0 = all")
		ablation = fs.String("ablation", "", "ablation to run: k-sweep, pruned-vs-naive, ppr-engines, scoring, scale, agreement, weighted, alpha-sweep, bippr, bippr-sharding, bippr-persist, walk-reuse, endpoint-persist, walk-batch, ep-codec, csr-layout, walk-sample-table, csr-compress, push-blocked, control-loop, all")
		format   = fs.String("format", "text", "output format: text, markdown, csv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	reg := algo.NewBuiltinRegistry()

	render := func(t *experiments.Table) error {
		var s string
		switch *format {
		case "text":
			s = t.Text()
		case "markdown":
			s = t.Markdown()
		case "csv":
			s = t.CSV()
		default:
			return fmt.Errorf("unknown format %q (want text, markdown or csv)", *format)
		}
		_, err := fmt.Fprintln(out, s)
		return err
	}

	type job struct {
		name string
		gen  func() (*experiments.Table, error)
	}
	var jobs []job

	addTable := func(n int) {
		switch n {
		case 1:
			jobs = append(jobs, job{"table-1", func() (*experiments.Table, error) { return experiments.TableI(ctx, reg) }})
		case 2:
			jobs = append(jobs, job{"table-2", func() (*experiments.Table, error) { return experiments.TableII(ctx, reg) }})
		case 3:
			jobs = append(jobs, job{"table-3", func() (*experiments.Table, error) { return experiments.TableIII(ctx, reg) }})
		case 4:
			jobs = append(jobs, job{"table-4", func() (*experiments.Table, error) { return experiments.TableIV(ctx, reg) }})
		}
	}
	ablations := map[string]func() (*experiments.Table, error){
		"k-sweep": func() (*experiments.Table, error) {
			return experiments.KSweep(ctx, "enwiki-2018", "Freddie Mercury", 6)
		},
		"pruned-vs-naive": func() (*experiments.Table, error) { return experiments.PrunedVsNaive(ctx) },
		"ppr-engines": func() (*experiments.Table, error) {
			return experiments.PPREngines(ctx, "enwiki-2018", "Freddie Mercury")
		},
		"scoring":   func() (*experiments.Table, error) { return experiments.ScoringAblation(ctx, reg) },
		"scale":     func() (*experiments.Table, error) { return experiments.ScaleSweep(ctx, reg) },
		"agreement": func() (*experiments.Table, error) { return experiments.Agreement(ctx, reg) },
		"weighted":  func() (*experiments.Table, error) { return experiments.WeightedAblation(ctx) },
		"alpha-sweep": func() (*experiments.Table, error) {
			return experiments.AlphaSweep(ctx, "enwiki-2018", "Freddie Mercury",
				[]string{"United States", "HIV/AIDS"})
		},
		"bippr": func() (*experiments.Table, error) {
			return experiments.BiPPRSweep(ctx, "enwiki-2018", "Brian May", "Freddie Mercury", nil)
		},
		"bippr-sharding": func() (*experiments.Table, error) {
			return experiments.BiPPRSharding(ctx, "enwiki-2018", "Brian May", "Freddie Mercury", nil)
		},
		"bippr-persist": func() (*experiments.Table, error) {
			return experiments.BiPPRPersist(ctx, "enwiki-2018", "Freddie Mercury", 0)
		},
		"walk-reuse": func() (*experiments.Table, error) {
			return experiments.WalkReuse(ctx, "enwiki-2018", "Brian May",
				[]string{"Freddie Mercury", "Queen (band)", "Roger Taylor"}, 0)
		},
		"endpoint-persist": func() (*experiments.Table, error) {
			return experiments.EndpointPersist(ctx, "enwiki-2018", "Brian May", "Freddie Mercury", 0)
		},
		"walk-batch": func() (*experiments.Table, error) {
			return experiments.WalkBatch(ctx, "enwiki-2018", "Brian May", 0)
		},
		"ep-codec": func() (*experiments.Table, error) {
			return experiments.EndpointCodec(ctx, "enwiki-2018", "Brian May", 0)
		},
		"csr-layout": func() (*experiments.Table, error) {
			// The layout's locality win needs a graph whose CSR outgrows
			// cache; ba-large's 50k-node scale-free topology is the
			// largest catalog dataset with hub-heavy pushes.
			return experiments.CSRLayout(ctx, "ba-large", []string{"0", "17", "123"}, 0)
		},
		"walk-sample-table": func() (*experiments.Table, error) {
			return experiments.WalkSampleTable(ctx, "enwiki-2018", "Brian May", 0)
		},
		"csr-compress": func() (*experiments.Table, error) {
			return experiments.CSRCompress(ctx, "ba-large", []string{"0", "17", "123"}, 0)
		},
		"push-blocked": func() (*experiments.Table, error) {
			return experiments.PushBlocked(ctx, "ba-large", []string{"0", "17", "123"}, 0)
		},
		"control-loop": func() (*experiments.Table, error) {
			return experiments.ControlLoop(ctx, 0, 0)
		},
	}
	ablationOrder := []string{"k-sweep", "pruned-vs-naive", "ppr-engines", "scoring", "scale", "agreement", "weighted", "alpha-sweep", "bippr", "bippr-sharding", "bippr-persist", "walk-reuse", "endpoint-persist", "walk-batch", "ep-codec", "csr-layout", "walk-sample-table", "csr-compress", "push-blocked", "control-loop"}

	switch {
	case *ablation != "":
		if *ablation == "all" {
			for _, name := range ablationOrder {
				jobs = append(jobs, job{name, ablations[name]})
			}
		} else {
			gen, ok := ablations[*ablation]
			if !ok {
				return fmt.Errorf("unknown ablation %q (want one of %v or all)", *ablation, ablationOrder)
			}
			jobs = append(jobs, job{*ablation, gen})
		}
	case *table != 0:
		if *table < 1 || *table > 4 {
			return fmt.Errorf("tables are 1-3 (paper) and 4 (target-relevance extension), not %d", *table)
		}
		addTable(*table)
	default:
		addTable(1)
		addTable(2)
		addTable(3)
		addTable(4)
	}

	for _, j := range jobs {
		t, err := j.gen()
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		if err := render(t); err != nil {
			return err
		}
	}
	return nil
}
