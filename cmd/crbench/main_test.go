package main

import (
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestSingleTable(t *testing.T) {
	out, err := runBench(t, "-table", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "table-1") || !strings.Contains(out, "Freddie Mercury") {
		t.Errorf("table 1 output incomplete")
	}
	if strings.Contains(out, "table-2") {
		t.Error("unrequested table present")
	}
}

func TestAllTablesMarkdown(t *testing.T) {
	out, err := runBench(t, "-format", "markdown")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"### table-1", "### table-2", "### table-3", "| 1 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestCSVFormat(t *testing.T) {
	out, err := runBench(t, "-table", "3", "-format", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Dezinformacja") {
		t.Error("missing expected cell")
	}
}

func TestSingleAblation(t *testing.T) {
	out, err := runBench(t, "-ablation", "k-sweep")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ablation-k-sweep") {
		t.Error("missing ablation id")
	}
}

func TestAgreementAblation(t *testing.T) {
	out, err := runBench(t, "-ablation", "agreement")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cyclerank vs ppr") {
		t.Error("missing pair")
	}
}

// TestWalkReuseAblation exercises the endpoint-reuse table on a small
// catalog graph; the generator itself errors if a reused estimate ever
// differs from its fresh-walk twin.
func TestWalkReuseAblation(t *testing.T) {
	out, err := runBench(t, "-ablation", "walk-reuse")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ablation-walk-reuse", "reused endpoints", "fresh walks"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestEndpointPersistAblation exercises the persisted-recording
// table; the generator errors if a deserialized recording's estimate
// ever differs from the cold walk pass, or if the restarted cache
// pays any walk simulation.
func TestEndpointPersistAblation(t *testing.T) {
	out, err := runBench(t, "-ablation", "endpoint-persist")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ablation-endpoint-persist", "persisted recordings", "deserialized", "re-simulated"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestControlLoopAblation exercises the static-vs-adaptive serving
// tier comparison; the generator errors if any mode sheds for the
// wrong reason, if the slo gate admits work under a breached
// objective, or if the calibrated Retry-After hint stays at the floor.
func TestControlLoopAblation(t *testing.T) {
	out, err := runBench(t, "-ablation", "control-loop")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ablation-control-loop", "static", "slo-gate", "calibrated-ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-table", "9"},
		{"-ablation", "nope"},
		{"-format", "yaml", "-table", "1"},
	} {
		if _, err := runBench(t, args...); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
