// Command docscheck validates the repository's markdown documentation
// offline: every relative link target must exist on disk. It is the
// `make docs-check` / CI gate that keeps README.md and docs/ from
// drifting as files move.
//
// Usage:
//
//	docscheck README.md docs/*.md
//
// Checked: inline links and images `[text](target)` whose target is a
// relative path, resolved against the linking file's directory (any
// `#fragment` is stripped first). Skipped: absolute URLs
// (scheme://…), mailto:, pure in-page anchors (#…), and anything
// inside fenced code blocks — the fences hold example commands, not
// navigation.
//
// Exit status is non-zero if any link is broken or any input file is
// unreadable, with one "file:line: broken link" diagnostic per
// offence.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) /
// ![alt](target). Targets with spaces or nested parens are not used in
// this repository's docs.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// fenceRe captures a code-fence delimiter run (``` or ~~~ of any
// length ≥3, optionally indented) and whatever follows it (an info
// string on an opening fence; must be blank on a closing one).
var fenceRe = regexp.MustCompile("^\\s*(`{3,}|~{3,})(.*)$")

// fenceDelim returns the fence marker run opening or closing on this
// line ("" when the line is not a fence delimiter).
func fenceDelim(line string) string {
	m := fenceRe.FindStringSubmatch(line)
	if m == nil {
		return ""
	}
	return m[1]
}

// closesFence reports whether line closes a fence opened by the open
// marker run: per CommonMark the closing run must use the same
// character, be at least as long, and carry no info string (so a
// literal "```go" inside an open block does not close it).
func closesFence(open, line string) bool {
	m := fenceRe.FindStringSubmatch(line)
	if m == nil {
		return false
	}
	delim, rest := m[1], m[2]
	return delim[0] == open[0] && len(delim) >= len(open) && strings.TrimSpace(rest) == ""
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck <file.md> [file.md ...]")
		os.Exit(2)
	}
	broken, unreadable := 0, 0
	for _, path := range os.Args[1:] {
		n, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			unreadable++
			continue
		}
		broken += n
	}
	if broken > 0 || unreadable > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s), %d unreadable file(s)\n", broken, unreadable)
		os.Exit(1)
	}
}

// checkFile reports the number of broken relative links in one
// markdown file, printing a diagnostic per offence.
func checkFile(path string) (broken int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(path)
	openFence := "" // marker run of the fence we are inside, if any
	for i, line := range strings.Split(string(data), "\n") {
		if delim := fenceDelim(line); delim != "" {
			switch {
			case openFence == "":
				openFence = delim
			case closesFence(openFence, line):
				openFence = ""
			}
			continue
		}
		if openFence != "" {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skipTarget(target) {
				continue
			}
			if frag := strings.IndexByte(target, '#'); frag >= 0 {
				target = target[:frag]
				if target == "" {
					continue
				}
			}
			if _, statErr := os.Stat(filepath.Join(dir, target)); statErr != nil {
				fmt.Fprintf(os.Stderr, "%s:%d: broken link %q\n", path, i+1, m[1])
				broken++
			}
		}
	}
	return broken, nil
}

// skipTarget reports whether a link target is out of scope for an
// offline existence check.
func skipTarget(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
