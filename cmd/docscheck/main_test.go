package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "exists.md", "target")
	md := write(t, dir, "doc.md", `# Doc
A [good link](exists.md) and an [anchored one](exists.md#section).
An [absolute](https://example.com/nowhere) link and [mail](mailto:x@y.z).
A pure [anchor](#heading).

`+"```sh\n"+`curl -s localhost:8080/api/tasks  # [not a](link.md)
`+"```\n"+`
A [broken link](missing.md) and ![broken image](missing.png).
`)
	broken, err := checkFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if broken != 2 {
		t.Errorf("broken = %d, want 2 (missing.md, missing.png)", broken)
	}
}

func TestCheckFileFenceMismatch(t *testing.T) {
	// Per CommonMark, a fence only closes on a bare run of the same
	// marker character, at least as long, with no info string. Neither
	// a ~~~ line nor a literal ```go line inside a ``` block closes
	// it, so the broken link after the real closing fence must still
	// be detected and the fenced pseudo-links must not be.
	dir := t.TempDir()
	for name, content := range map[string]string{
		"tilde.md": "```sh\n~~~\nstill [fenced](gone.md)\n```\n[broken](missing.md)\n",
		"info.md":  "````md\n```go\nstill [fenced](gone.md)\n```\n````\n[broken](missing.md)\n",
	} {
		md := write(t, dir, name, content)
		broken, err := checkFile(md)
		if err != nil {
			t.Fatal(err)
		}
		if broken != 1 {
			t.Errorf("%s: broken = %d, want 1 (only the link outside the fence)", name, broken)
		}
	}
}

func TestCheckFileUnreadable(t *testing.T) {
	if _, err := checkFile(filepath.Join(t.TempDir(), "ghost.md")); err == nil {
		t.Error("unreadable file reported no error")
	}
}

// TestRepositoryDocs runs the checker against the real repository
// docs, so `go test` fails on a broken link even before make
// docs-check runs.
func TestRepositoryDocs(t *testing.T) {
	root := "../.."
	for _, f := range []string{"README.md", "docs/ARCHITECTURE.md", "docs/API.md"} {
		path := filepath.Join(root, f)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("doc file missing: %v", err)
		}
		broken, err := checkFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if broken != 0 {
			t.Errorf("%s has %d broken link(s)", f, broken)
		}
	}
}
