// Command cyclerank runs relevance algorithms on a graph and prints
// the top-ranked nodes.
//
// Usage:
//
//	cyclerank -algo cyclerank -dataset enwiki-2018 -source "Fake news" -k 3
//	cyclerank -algo ppr -file mygraph.csv -source Alice -alpha 0.3 -top 10
//	cyclerank -algos cyclerank,ppr,pagerank -dataset amazon -source 1984
//	cyclerank -algo ppr-target -dataset enwiki-2018 -target "Freddie Mercury"
//	cyclerank -algo ppr-target -dataset enwiki-2018 -targets "Freddie Mercury,Brian May,Queen (band)"
//	cyclerank -algo bippr-pair -dataset enwiki-2018 -source "Brian May" -target "Freddie Mercury"
//	cyclerank -algo bippr-pair -dataset enwiki-2018 -source "Brian May" -target "Freddie Mercury" -eps 1e-6 -workers 8
//	cyclerank -algo bippr-pair -dataset enwiki-2018 -source "Brian May" -targets "Freddie Mercury,Queen (band)" -walk-reuse
//	cyclerank -list-datasets
//	cyclerank -list-algorithms
//
// The graph comes either from the built-in catalog (-dataset) or from
// a file in any supported format (-file). Passing a comma-separated
// -algos list prints a side-by-side comparison (the demo's algorithm
// comparison view).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/formats"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/obs"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
	"github.com/cyclerank/cyclerank-go/internal/task"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cyclerank:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cyclerank", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		algoName  = fs.String("algo", "cyclerank", "algorithm to run (see -list-algorithms)")
		algoList  = fs.String("algos", "", "comma-separated algorithms for a side-by-side comparison")
		dataset   = fs.String("dataset", "", "catalog dataset name (see -list-datasets)")
		file      = fs.String("file", "", "graph file (edgelist .csv, pajek .net, or .asd)")
		source    = fs.String("source", "", "reference node label (personalized algorithms)")
		target    = fs.String("target", "", "target node label (ppr-target, bippr-pair)")
		targets   = fs.String("targets", "", "comma-separated target labels for a batched multi-target run (side-by-side columns; indexes share one estimator)")
		k         = fs.Int("k", 0, "CycleRank max cycle length (default 3)")
		scoring   = fs.String("scoring", "", "CycleRank scoring: exp, lin, quad, const (default exp)")
		alpha     = fs.Float64("alpha", 0, "damping factor (default 0.85)")
		rmax      = fs.Float64("rmax", 0, "bidirectional PPR reverse-push residual threshold (default 1e-4)")
		walks     = fs.Int("walks", 0, "random-walk count for ppr-mc and bippr-pair (default 10000)")
		eps       = fs.Float64("eps", 0, "bippr-pair requested additive error; overrides -walks with an adaptive count")
		workers   = fs.Int("workers", 0, "bippr-pair walk worker pool size (default 1; results are bit-identical for any value)")
		walkReuse = fs.Bool("walk-reuse", false, "bippr-pair: reuse recorded walk endpoints across targets of one source (bit-identical results; pairs well with -targets)")
		seed      = fs.Int64("seed", 0, "random-walk RNG seed (default 1)")
		class     = fs.String("class", "", "request class: interactive (low-latency presets: rmax 1e-3, 2000 walks) or batch (exhaustive defaults); empty keeps explicit flags untouched")
		timeoutMS = fs.Int64("timeout-ms", 0, "cancel the run after this many milliseconds, keeping whatever phases completed in -trace (0 = no deadline)")
		top       = fs.Int("top", 10, "how many results to print")
		stats     = fs.Bool("stats", false, "print graph statistics before results")
		trace     = fs.Bool("trace", false, "print a per-phase timing breakdown (reverse push, walks, ...) after the results")
		listDS    = fs.Bool("list-datasets", false, "list catalog datasets and exit")
		listAlgos = fs.Bool("list-algorithms", false, "list algorithms and exit")
		sortBytes = fs.Int64("cohort-sort-bytes", 0, "hot path: graph footprint in bytes past which batched walk cohorts are sorted by node id before stepping (0 = 32 MiB default, negative = never sort)")
		zipBytes  = fs.Int64("compress-bytes", 0, "hot path: in-CSR size in bytes past which the reverse push reads a delta-varint compressed adjacency instead of the raw arrays (0 = 64 MiB default, negative = never compress)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Thread the hot-path thresholds before the graph is built; the
	// compressed view is constructed at Build time.
	graph.SetHotPath(graph.HotPathConfig{
		CohortSortBytes: *sortBytes,
		CompressBytes:   *zipBytes,
	})

	registry := algo.NewBuiltinRegistry()

	if *listAlgos {
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		for _, a := range registry.All() {
			var needs []string
			if a.NeedsSource() {
				needs = append(needs, "-source")
			}
			if algo.NeedsTarget(a) {
				needs = append(needs, "-target")
			}
			tag := ""
			if len(needs) > 0 {
				tag = "(needs " + strings.Join(needs, ", ") + ")"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\n", a.Name(), tag, a.Description())
		}
		return w.Flush()
	}
	if *listDS {
		catalog, err := datasets.BuiltinCatalog()
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		for _, d := range catalog.All() {
			fmt.Fprintf(w, "%s\t%s\t%s\n", d.Name, d.Kind, d.Description)
		}
		return w.Flush()
	}

	g, err := loadInput(*dataset, *file)
	if err != nil {
		return err
	}

	if *stats {
		fmt.Fprintln(out, graph.ComputeStats(g))
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Request class and deadline mirror the server's serving tier: an
	// explicit -class interactive fills cheap presets into unset
	// parameter flags, and -timeout-ms bounds the whole run the same
	// way timeout_ms bounds a submitted task.
	reqClass, err := task.ParseClass(*class)
	if err != nil {
		return err
	}
	if *timeoutMS < 0 {
		return fmt.Errorf("-timeout-ms must be >= 0, got %d", *timeoutMS)
	}
	effTimeout := time.Duration(*timeoutMS) * time.Millisecond
	if effTimeout == 0 {
		effTimeout = reqClass.DefaultTimeout()
	}
	if effTimeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, effTimeout)
		defer tcancel()
	}

	if *trace {
		var tr *obs.Trace
		ctx, tr = obs.NewTrace(ctx, "cyclerank")
		defer func() {
			tr.End()
			fmt.Fprintf(out, "\nphases:\n%s", obs.FormatTree(tr.Tree()))
		}()
	}

	params := reqClass.ApplyParams(algo.Params{
		Source: *source, Target: *target,
		K: *k, Scoring: *scoring, Alpha: *alpha,
		RMax: *rmax, Walks: *walks, Eps: *eps,
		Workers: *workers, Seed: *seed,
		WalkReuse: *walkReuse,
	})

	if *algoList != "" {
		if *targets != "" {
			return fmt.Errorf("-algos compares algorithms for one query; use -targets with a single -algo")
		}
		names := splitList(*algoList)
		if len(names) < 2 {
			return fmt.Errorf("-algos needs at least two algorithms, got %v", names)
		}
		return runComparison(ctx, out, registry, g, names, params, *top)
	}

	if *targets != "" {
		if *target != "" {
			return fmt.Errorf("use either -target or -targets, not both")
		}
		labels := splitList(*targets)
		if len(labels) == 0 {
			return fmt.Errorf("-targets is empty")
		}
		return runTargets(ctx, out, registry, g, *algoName, labels, params, *top)
	}

	res, err := algo.Run(ctx, registry, *algoName, g, params)
	if err != nil {
		return err
	}
	if res.CyclesFound > 0 {
		fmt.Fprintf(out, "cycles found: %d\n", res.CyclesFound)
	}
	if res.Iterations > 0 {
		fmt.Fprintf(out, "iterations: %d (residual %.3g)\n", res.Iterations, res.Residual)
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "#\tnode\tscore")
	for i, e := range res.Top(*top) {
		fmt.Fprintf(w, "%d\t%s\t%.6g\n", i+1, e.Label, e.Score)
	}
	return w.Flush()
}

// loadInput resolves the graph source flags.
func loadInput(dataset, file string) (*graph.Graph, error) {
	switch {
	case dataset != "" && file != "":
		return nil, fmt.Errorf("use either -dataset or -file, not both")
	case dataset != "":
		catalog, err := datasets.BuiltinCatalog()
		if err != nil {
			return nil, err
		}
		d, err := catalog.Get(dataset)
		if err != nil {
			return nil, err
		}
		return d.Load()
	case file != "":
		return formats.ReadFile(file)
	}
	return nil, fmt.Errorf("a graph is required: pass -dataset or -file (or -list-datasets)")
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runTargets is the CLI face of the batched multi-target pipeline:
// one algorithm run per target against the same loaded graph, sharing
// the registry's bidirectional estimator (so same-parameter indexes
// are built once), printed as one column of top labels per target.
func runTargets(ctx context.Context, out io.Writer, registry *algo.Registry, g *graph.Graph, name string, labels []string, params algo.Params, top int) error {
	a, err := registry.Get(name)
	if err != nil {
		return err
	}
	if !algo.NeedsTarget(a) {
		return fmt.Errorf("-targets requires a target-aware algorithm (ppr-target, bippr-pair), not %q", name)
	}
	tops := make([][]string, len(labels))
	for i, label := range labels {
		p := params
		p.Target = label
		res, err := algo.Run(ctx, registry, name, g, p)
		if err != nil {
			return fmt.Errorf("target %q: %w", label, err)
		}
		tops[i] = res.TopLabels(top)
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "#\t%s\n", strings.Join(labels, "\t"))
	for row := 0; row < top; row++ {
		cells := make([]string, len(labels))
		for i := range labels {
			if row < len(tops[i]) {
				cells[i] = tops[i][row]
			} else {
				cells[i] = "-"
			}
		}
		fmt.Fprintf(w, "%d\t%s\n", row+1, strings.Join(cells, "\t"))
	}
	return w.Flush()
}

// runComparison prints the demo's side-by-side view: one column per
// algorithm, plus pairwise agreement metrics underneath.
func runComparison(ctx context.Context, out io.Writer, registry *algo.Registry, g *graph.Graph, names []string, params algo.Params, top int) error {
	results := make([]*ranking.Result, len(names))
	for i, name := range names {
		res, err := algo.Run(ctx, registry, name, g, params)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		results[i] = res
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "#\t%s\n", strings.Join(names, "\t"))
	tops := make([][]string, len(names))
	for i, res := range results {
		tops[i] = res.TopLabels(top)
	}
	for row := 0; row < top; row++ {
		cells := make([]string, len(names))
		for i := range names {
			if row < len(tops[i]) {
				cells[i] = tops[i][row]
			} else {
				cells[i] = "-"
			}
		}
		fmt.Fprintf(w, "%d\t%s\n", row+1, strings.Join(cells, "\t"))
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(out, "\npairwise agreement:")
	aw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(aw, "pair\tjaccard\trbo")
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			jac := ranking.ListJaccard(tops[i], tops[j])
			rbo, err := ranking.ListRBO(tops[i], tops[j], 0.9)
			if err != nil {
				return err
			}
			fmt.Fprintf(aw, "%s vs %s\t%.3f\t%.3f\n", names[i], names[j], jac, rbo)
		}
	}
	return aw.Flush()
}
