package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestListAlgorithms(t *testing.T) {
	out, err := runCLI(t, "-list-algorithms")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cyclerank", "pagerank", "ppr", "2drank"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in listing", want)
		}
	}
}

func TestListDatasets(t *testing.T) {
	out, err := runCLI(t, "-list-datasets")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"enwiki-2018", "amazon", "twitter-cop27", "ba-small"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in listing", want)
		}
	}
	if got := strings.Count(out, "\n"); got != 50 {
		t.Errorf("listed %d datasets, want 50", got)
	}
}

func TestRunOnCatalogDataset(t *testing.T) {
	out, err := runCLI(t,
		"-dataset", "enwiki-2013",
		"-algo", "cyclerank",
		"-source", "Freddie Mercury",
		"-k", "3", "-top", "3", "-stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cycles found:") {
		t.Error("missing cycle count")
	}
	if !strings.Contains(out, "Freddie Mercury") {
		t.Error("missing reference in output")
	}
	if !strings.Contains(out, "N=") {
		t.Error("missing -stats output")
	}
}

func TestRunOnFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csv")
	if err := os.WriteFile(path, []byte("a,b\nb,a\nb,c\nc,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-file", path, "-algo", "ppr", "-source", "a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "iterations:") {
		t.Error("missing iteration count")
	}
	if !strings.Contains(out, "a") {
		t.Error("missing results")
	}
}

func TestComparisonMode(t *testing.T) {
	out, err := runCLI(t,
		"-dataset", "enwiki-2013",
		"-algos", "cyclerank,ppr,pagerank",
		"-source", "Freddie Mercury",
		"-top", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pairwise agreement:") {
		t.Error("missing agreement block")
	}
	if !strings.Contains(out, "cyclerank vs ppr") {
		t.Error("missing pair row")
	}
}

func TestMultiTargetMode(t *testing.T) {
	out, err := runCLI(t,
		"-dataset", "enwiki-2013",
		"-algo", "ppr-target",
		"-targets", "Freddie Mercury,Brian May",
		"-top", "3")
	if err != nil {
		t.Fatal(err)
	}
	// One column per target, headed by the target labels.
	header := strings.SplitN(out, "\n", 2)[0]
	for _, want := range []string{"Freddie Mercury", "Brian May"} {
		if !strings.Contains(header, want) {
			t.Errorf("header %q missing column for %q", header, want)
		}
	}
	if rows := strings.Count(out, "\n"); rows < 4 {
		t.Errorf("expected header + 3 rank rows, got:\n%s", out)
	}
}

// TestMultiTargetWalkReuse: -walk-reuse with -targets is the CLI face
// of the endpoint cache — the output must match the fresh-walk run
// exactly (reuse is bit-identical by construction).
func TestMultiTargetWalkReuse(t *testing.T) {
	args := []string{
		"-dataset", "enwiki-2013",
		"-algo", "bippr-pair",
		"-source", "Brian May",
		"-targets", "Freddie Mercury,Queen (band)",
		"-walks", "500",
		"-top", "3",
	}
	fresh, err := runCLI(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := runCLI(t, append(args, "-walk-reuse")...)
	if err != nil {
		t.Fatal(err)
	}
	if fresh != reused {
		t.Errorf("-walk-reuse changed the output:\nfresh:\n%s\nreused:\n%s", fresh, reused)
	}
}

func TestMultiTargetModeErrors(t *testing.T) {
	if _, err := runCLI(t, "-dataset", "enwiki-2013", "-algo", "ppr-target",
		"-target", "Brian May", "-targets", "Freddie Mercury"); err == nil ||
		!strings.Contains(err.Error(), "not both") {
		t.Errorf("combining -target and -targets: %v", err)
	}
	if _, err := runCLI(t, "-dataset", "enwiki-2013", "-algo", "cyclerank",
		"-targets", "Freddie Mercury"); err == nil ||
		!strings.Contains(err.Error(), "target-aware") {
		t.Errorf("-targets with a source-only algorithm: %v", err)
	}
}

func TestErrorPaths(t *testing.T) {
	cases := [][]string{
		{},
		{"-dataset", "ghost"},
		{"-file", "/does/not/exist.csv"},
		{"-dataset", "enwiki-2013", "-file", "also.csv"},
		{"-dataset", "enwiki-2013", "-algo", "nope"},
		{"-dataset", "enwiki-2013", "-algo", "cyclerank"},                                // no source
		{"-dataset", "enwiki-2013", "-algos", "cyclerank", "-source", "Freddie Mercury"}, // single algo
		{"-dataset", "enwiki-2013", "-algos", "cyclerank,nope", "-source", "Freddie Mercury"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestTraceFlag(t *testing.T) {
	out, err := runCLI(t, "-algo", "bippr-pair", "-dataset", "complete-50",
		"-source", "0", "-target", "1", "-walks", "256", "-trace")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "phases:") {
		t.Fatalf("no phase breakdown in output:\n%s", out)
	}
	for _, phase := range []string{"reverse_push", "walks", "pushes="} {
		if !strings.Contains(out, phase) {
			t.Errorf("trace output missing %q:\n%s", phase, out)
		}
	}
	// Without -trace, no breakdown.
	out, err = runCLI(t, "-algo", "bippr-pair", "-dataset", "complete-50",
		"-source", "0", "-target", "1", "-walks", "256")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "phases:") {
		t.Errorf("phase breakdown printed without -trace:\n%s", out)
	}
}
