// Command crserver runs the demo platform: the API gateway, the Web
// UI, and the embedded executor pool (the paper's computational
// nodes).
//
// Usage:
//
//	crserver -addr :8080 -data ./crdata -workers 4
//
// Then open http://localhost:8080/ for the task builder,
// /instructions for the upload formats, and POST query sets to
// /api/tasks. The returned comparison id is a permalink:
// /compare/{id}.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/server"
	"github.com/cyclerank/cyclerank-go/internal/task"
)

func main() {
	var (
		addr             = flag.String("addr", ":8080", "listen address")
		data             = flag.String("data", "crdata", "datastore directory")
		workers          = flag.Int("workers", 4, "interactive executor pool size")
		batchWorkers     = flag.Int("batch-workers", 0, "batch-tier executor pool size (0 = same as -workers)")
		taskTimeout      = flag.Duration("task-timeout", 5*time.Minute, "per-task execution limit (0 = unlimited); requests may tighten it per task via timeout_ms")
		interactiveSlots = flag.Int("interactive-slots", 0, "admission control: max interactive tasks in flight; excess submissions get 429 + Retry-After (0 = unlimited; initial value when auto-sizing)")
		slotsMin         = flag.Int("interactive-slots-min", 0, "admission control: floor for slot auto-sizing (0 = 1; needs -interactive-slots-max)")
		slotsMax         = flag.Int("interactive-slots-max", 0, "admission control: ceiling for slot auto-sizing; with -slo-interactive-ms set, the slot limit hill-climbs between floor and ceiling against the p99 (0 = auto-sizing off)")
		maxPending       = flag.Int("max-pending-interactive", 0, "admission control: max interactive tasks admitted but not yet executing (0 = unlimited)")
		maxBacklog       = flag.Float64("max-backlog-units", 0, "admission control: max summed estimated cost of in-flight interactive tasks (0 = unlimited)")
		maxBacklogMS     = flag.Float64("max-backlog-ms", 0, "admission control: max summed PREDICTED milliseconds of in-flight interactive work, via the learned units/ms calibration (0 = unlimited)")
		sloInteractiveMS = flag.Int64("slo-interactive-ms", 0, "admission control: interactive p99 run-time objective in milliseconds; while breached, submissions shed with reason slo before any occupancy limit (0 = off)")
		retryAfter       = flag.Duration("retry-after", time.Second, "floor of the back-off hint returned with shed requests (Retry-After header); raised to the predicted backlog drain time when larger")
		trafficTopK      = flag.Int("traffic-topk", 0, "heavy-hitter keys the traffic sketch tracks for the learned pre-warm (0 = default, negative = disable traffic learning)")
		trafficHalfLife  = flag.Duration("traffic-halflife", 0, "half-life of the traffic sketch's time decay: counts halve at this cadence so stale hot keys age out of the pre-warm pin set (0 = 1h default, negative = no decay)")
		prewarm          = flag.Bool("prewarm", true, "pre-warm reverse-push indexes and walk-endpoint recordings for the catalog's suggested nodes at startup, then for the previous boot's observed heavy hitters")
		artifactCap      = flag.Int64("artifact-cap-mb", 0, "total size cap in MiB for persisted artifacts (indexes + endpoint recordings); least recently accessed are swept first (0 = unlimited)")
		indexCap         = flag.Int64("index-cap-mb", 0, "per-kind size cap in MiB for persisted reverse-push indexes (0 = unlimited)")
		endpointCap      = flag.Int64("endpoint-cap-mb", 0, "per-kind size cap in MiB for persisted walk-endpoint recordings (0 = unlimited)")
		enablePprof      = flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/ (do not enable on public deployments)")
		slowQueryMS      = flag.Int64("slow-query-ms", 0, "log one structured line, with the full phase breakdown, for every task running at least this many milliseconds (0 = off)")
		cohortSortBytes  = flag.Int64("cohort-sort-bytes", 0, "hot path: graph footprint in bytes past which batched walk cohorts are sorted by node id before stepping (0 = 32 MiB default, negative = never sort)")
		compressBytes    = flag.Int64("compress-bytes", 0, "hot path: in-CSR size in bytes past which the reverse push reads a delta-varint compressed adjacency instead of the raw arrays (0 = 64 MiB default, negative = never compress)")
	)
	flag.Parse()

	// Thread the hot-path thresholds before any graph is built; the
	// compressed view is constructed at Build time.
	graph.SetHotPath(graph.HotPathConfig{
		CohortSortBytes: *cohortSortBytes,
		CompressBytes:   *compressBytes,
	})

	store, err := datastore.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	catalog, err := datasets.BuiltinCatalog()
	if err != nil {
		log.Fatal(err)
	}
	// Registry is left nil: the server builds the built-in registry
	// over its persistent two-tier artifact caches, so reverse-push
	// target indexes and walk-endpoint recordings computed before a
	// restart are served from disk after it.
	srv, err := server.New(server.Config{
		Catalog:      catalog,
		Store:        store,
		Workers:      *workers,
		BatchWorkers: *batchWorkers,
		TaskTimeout:  *taskTimeout,
		Admission: task.AdmissionConfig{
			InteractiveSlots:      *interactiveSlots,
			InteractiveSlotsMin:   *slotsMin,
			InteractiveSlotsMax:   *slotsMax,
			MaxPendingInteractive: *maxPending,
			MaxBacklogUnits:       *maxBacklog,
			MaxBacklogMS:          *maxBacklogMS,
			SLOInteractive:        time.Duration(*sloInteractiveMS) * time.Millisecond,
			RetryAfter:            *retryAfter,
		},
		TrafficTopK:        *trafficTopK,
		TrafficHalfLife:    *trafficHalfLife,
		PreWarm:            *prewarm,
		ArtifactCapBytes:   *artifactCap << 20,
		IndexCapBytes:      *indexCap << 20,
		EndpointCapBytes:   *endpointCap << 20,
		EnablePprof:        *enablePprof,
		SlowQueryThreshold: time.Duration(*slowQueryMS) * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	go func() {
		<-ctx.Done()
		shutdownCtx, c := context.WithTimeout(context.Background(), 10*time.Second)
		defer c()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Println("shutdown:", err)
		}
		// Stop background lifecycle work (pre-warm, artifact GC) before
		// the scheduler so nothing computes into a closing system.
		srv.Close()
		if err := srv.Scheduler().Shutdown(shutdownCtx); err != nil {
			log.Println("scheduler shutdown:", err)
		}
	}()

	fmt.Printf("cyclerank demo listening on %s (datastore %s, %d workers, %d datasets)\n",
		*addr, *data, *workers, catalog.Len())
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
