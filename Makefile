GO ?= go
GOFMT ?= gofmt

.PHONY: build test bench vet docs-check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

bench:
	$(GO) test -run NONE -bench . -benchmem .

# docs-check gates the documentation: every relative markdown link in
# README.md and docs/ must resolve, and the tree must be gofmt-clean.
docs-check:
	$(GO) run ./cmd/docscheck README.md docs/*.md
	@fmt_out="$$($(GOFMT) -l .)"; \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

clean:
	$(GO) clean ./...
