GO ?= go
GOFMT ?= gofmt
# BENCHTIME controls the bench-json run: the default 1x is a smoke
# pass (does every bench still run?); override with BENCHTIME=1s for
# numbers worth tracking.
BENCHTIME ?= 1x

.PHONY: build test test-race bench bench-json bench-compare vet docs-check metrics-check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# test-race covers the packages with real concurrency: the index
# store's single-flight, the walk worker pool (including the batched
# cohort stepper's pooled per-worker scratch), the walk-endpoint
# cache (singleflight recording), the scheduler and its intra-batch
# subquery pool (concurrent submit + mid-batch cancel, admission
# floods), the HTTP layer, the traffic sketch hammered from many
# recorders, the obs registry's lock-free counters and histograms,
# and the graph hot-path views (atomic config, pooled decode scratch).
test-race:
	$(GO) test -race ./internal/obs/ ./internal/bippr/ ./internal/task/ ./internal/server/ ./internal/traffic/ ./internal/graph/

bench:
	$(GO) test -run NONE -bench . -benchmem .

# bench-json runs the BiPPR benchmark family and emits BENCH_bippr.json
# (name / ns-per-op / bytes-per-op), the machine-readable perf artifact
# CI archives per commit. The bench output lands in a temp file first
# so a failed bench run fails the target instead of being masked by
# the pipe into the converter.
bench-json:
	@out=$$(mktemp); \
	$(GO) test -run NONE -bench 'BiPPR|PPRTarget|TargetIndexStorage|EndpointPersist|ObsOverhead|AdmissionOverhead|WalkBatch|EndpointCodec|CSRLayout|WalkSampleTable|CSRCompress|PushBlocked' -benchmem -benchtime $(BENCHTIME) . > $$out || { cat $$out; rm -f $$out; exit 1; }; \
	$(GO) run ./cmd/benchjson -out BENCH_bippr.json < $$out || { rm -f $$out; exit 1; }; \
	rm -f $$out
	@echo wrote BENCH_bippr.json

# bench-compare diffs two bench-json reports: OLD/NEW default to the
# CI artifact names; exits 1 when any benchmark regressed past 2x
# ns/op (CI runs it continue-on-error so it informs, never gates).
OLD ?= BENCH_prev.json
NEW ?= BENCH_bippr.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)

# bench-history compares NEW against the rolling median of the last
# WINDOW_N runs kept in WINDOW, then appends it — the noise-resistant
# variant CI uses (one slow shared-runner baseline can no longer flag
# every following run).
WINDOW ?= BENCH_window.json
WINDOW_N ?= 8
bench-history:
	$(GO) run ./cmd/benchjson -history $(WINDOW) -window $(WINDOW_N) $(NEW)

# metrics-check gates the /metrics exposition: an in-process server is
# scraped, the output must parse as Prometheus text, and every exported
# metric family must be documented in docs/API.md.
metrics-check:
	$(GO) run ./cmd/metricscheck -docs docs/API.md

# docs-check gates the documentation: every relative markdown link in
# README.md and docs/ must resolve, and the tree must be gofmt-clean.
docs-check:
	$(GO) run ./cmd/docscheck README.md docs/*.md
	@fmt_out="$$($(GOFMT) -l .)"; \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

clean:
	$(GO) clean ./...
