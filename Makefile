GO ?= go

.PHONY: build test bench vet clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

bench:
	$(GO) test -run NONE -bench . -benchmem .

clean:
	$(GO) clean ./...
