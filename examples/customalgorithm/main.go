// Custom algorithm: the demo's extension point. Registers a new
// relevance algorithm ("mutual-degree": count reciprocated edges
// around the reference) and runs it through the same registry API as
// the built-ins — the paper notes that "our demo design enables the
// possibility of adding new algorithms".
//
// Run with:
//
//	go run ./examples/customalgorithm
package main

import (
	"context"
	"fmt"
	"log"

	cyclerank "github.com/cyclerank/cyclerank-go"
)

// mutualDegree scores every node by the reciprocated edges it shares
// with the reference's neighborhood — a cheap cousin of CycleRank that
// only sees length-2 cycles. It needs nothing beyond the public API.
func mutualDegree(ctx context.Context, g *cyclerank.Graph, p cyclerank.AlgoParams) (*cyclerank.Result, error) {
	src, ok := g.NodeByLabel(p.Source)
	if !ok {
		return nil, fmt.Errorf("mutual-degree: source %q not found", p.Source)
	}
	scores := make([]float64, g.NumNodes())
	for _, w := range g.Out(src) {
		if g.HasEdge(w, src) {
			scores[w]++
			scores[src]++
			// One hop further: mutual partners of mutual neighbors.
			for _, x := range g.Out(w) {
				if x != src && g.HasEdge(x, w) {
					scores[x] += 0.5
				}
			}
		}
	}
	return cyclerank.NewResult("mutual-degree", g, scores)
}

func main() {
	registry := cyclerank.NewRegistry()
	err := registry.Register(cyclerank.AlgorithmFunc{
		AlgoName: "mutual-degree",
		AlgoDesc: "count reciprocated edges around the reference (toy example)",
		Source:   true,
		RunFunc:  mutualDegree,
	})
	if err != nil {
		log.Fatal(err)
	}

	catalog, err := cyclerank.LoadCatalog()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := catalog.Get("enwiki-2018")
	if err != nil {
		log.Fatal(err)
	}
	g, err := ds.Load()
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	fmt.Println("registered algorithms:", registry.Names())

	for _, name := range []string{"mutual-degree", cyclerank.AlgoCycleRank} {
		res, err := cyclerank.RunAlgorithm(ctx, registry, name, g,
			cyclerank.AlgoParams{Source: "Pasta", K: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s top-5 for Pasta:\n", name)
		for i, e := range res.Top(5) {
			fmt.Printf("  %d. %-20s %.4f\n", i+1, e.Label, e.Score)
		}
	}
}
