// Quickstart: build a small directed graph, run CycleRank against a
// reference node, and contrast it with Personalized PageRank.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	cyclerank "github.com/cyclerank/cyclerank-go"
)

func main() {
	// A toy "wikilink" graph: a band community with mutual links, and
	// a globally famous page everyone links to but that links back to
	// nobody.
	b := cyclerank.NewLabeledBuilder()
	mutual := func(a, c string) {
		b.AddLabeledEdge(a, c)
		b.AddLabeledEdge(c, a)
	}
	mutual("Freddie Mercury", "Queen (band)")
	mutual("Freddie Mercury", "Brian May")
	mutual("Queen (band)", "Brian May")
	mutual("Queen (band)", "Roger Taylor")
	mutual("Freddie Mercury", "Roger Taylor")
	for _, page := range []string{"Freddie Mercury", "Queen (band)", "Brian May", "Roger Taylor"} {
		b.AddLabeledEdge(page, "United States") // one-way: no backlink
	}

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	ref, ok := g.NodeByLabel("Freddie Mercury")
	if !ok {
		log.Fatal("reference node missing")
	}

	ctx := context.Background()

	// CycleRank: relevance from mutual (cyclic) relationships.
	cr, err := cyclerank.Compute(ctx, g, ref, cyclerank.Params{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CycleRank (K=3, %d cycles found):\n", cr.CyclesFound)
	for i, e := range cr.Top(5) {
		fmt.Printf("  %d. %-16s %.4f\n", i+1, e.Label, e.Score)
	}

	// Personalized PageRank for contrast: note how the one-way famous
	// page still captures probability mass.
	ppr, err := cyclerank.PersonalizedPageRank(ctx, g, cyclerank.PageRankParams{
		Alpha: 0.85,
		Seeds: []cyclerank.NodeID{ref},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPersonalized PageRank (alpha=0.85):")
	for i, e := range ppr.Top(5) {
		fmt.Printf("  %d. %-16s %.4f\n", i+1, e.Label, e.Score)
	}

	us, _ := g.NodeByLabel("United States")
	fmt.Printf("\n\"United States\" — CycleRank: %.4f, PPR: %.4f\n", cr.Score(us), ppr.Score(us))
	fmt.Println("CycleRank ignores the no-backlink hub; PPR promotes it.")
}
