// Web client: drives the platform end-to-end over HTTP. Starts an
// embedded gateway, uploads a dataset, submits a query set comparing
// three algorithms, polls the comparison permalink until done, and
// prints the results — exactly the interaction loop of the demo's Web
// UI.
//
// Run with:
//
//	go run ./examples/webclient
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	cyclerank "github.com/cyclerank/cyclerank-go"
)

func main() {
	// Embedded platform: datastore, catalog, gateway with 2 workers.
	dir, err := os.MkdirTemp("", "crdemo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := cyclerank.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	catalog, err := cyclerank.LoadCatalog()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := cyclerank.NewServer(cyclerank.ServerConfig{
		Registry: cyclerank.NewRegistry(),
		Catalog:  catalog,
		Store:    store,
		Workers:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Println("gateway listening at", ts.URL)

	// 1. Upload a user dataset (CSV edge list), as the demo's upload
	//    page does.
	edgelist := strings.Join([]string{
		"alice,bob", "bob,alice",
		"bob,carol", "carol,bob",
		"carol,alice", "alice,carol",
		"alice,celebrity", "bob,celebrity", "carol,celebrity",
	}, "\n")
	resp, err := http.Post(ts.URL+"/api/datasets/friends", "text/csv", strings.NewReader(edgelist))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("uploaded dataset 'friends':", resp.Status)

	// 2. Submit a query set: the (dataset, algorithm, params) triples.
	querySet := `{"tasks": [
		{"dataset": "friends",     "algorithm": "cyclerank", "params": {"source": "alice", "k": 3}},
		{"dataset": "friends",     "algorithm": "ppr",       "params": {"source": "alice", "alpha": 0.85}},
		{"dataset": "enwiki-2018", "algorithm": "cyclerank", "params": {"source": "Fake news", "k": 3}}
	]}`
	resp, err = http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(querySet))
	if err != nil {
		log.Fatal(err)
	}
	var sub struct {
		ComparisonID string   `json:"comparison_id"`
		TaskIDs      []string `json:"task_ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("comparison id:", sub.ComparisonID)

	// 3. Poll the permalink until every task is terminal.
	type taskView struct {
		Task struct {
			Algorithm string `json:"algorithm"`
			Dataset   string `json:"dataset"`
			State     string `json:"state"`
			Error     string `json:"error"`
		} `json:"task"`
		Result *struct {
			Top []struct {
				Label string  `json:"label"`
				Score float64 `json:"score"`
			} `json:"top"`
		} `json:"result"`
	}
	var cmp struct {
		Done  bool       `json:"done"`
		Tasks []taskView `json:"tasks"`
	}
	for deadline := time.Now().Add(30 * time.Second); ; {
		r, err := http.Get(ts.URL + "/api/compare/" + sub.ComparisonID)
		if err != nil {
			log.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&cmp)
		r.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		if cmp.Done {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("timed out waiting for results")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// 4. Render the side-by-side comparison.
	for _, tv := range cmp.Tasks {
		fmt.Printf("\n%s on %s [%s]\n", tv.Task.Algorithm, tv.Task.Dataset, tv.Task.State)
		if tv.Task.Error != "" {
			fmt.Println("  error:", tv.Task.Error)
			continue
		}
		if tv.Result == nil {
			continue
		}
		for i, e := range tv.Result.Top {
			if i >= 5 {
				break
			}
			fmt.Printf("  %d. %-30s %.5f\n", i+1, e.Label, e.Score)
		}
	}
}
