// Dataset comparison: the demo's second use case. Applies the same
// CycleRank query ("Fake news", K=3) across Wikipedia language
// editions — the paper's Table III — and across yearly snapshots of
// the same edition, showing how a topic's neighborhood differs across
// communities and grows over time.
//
// Run with:
//
//	go run ./examples/datasetcompare
package main

import (
	"context"
	"fmt"
	"log"

	cyclerank "github.com/cyclerank/cyclerank-go"
)

func main() {
	catalog, err := cyclerank.LoadCatalog()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Cross-language comparison (Table III): same concept, different
	// communities.
	editions := []struct{ dataset, ref string }{
		{"dewiki-2018", "Fake News"},
		{"enwiki-2018", "Fake news"},
		{"frwiki-2018", "Fake news"},
		{"itwiki-2018", "Fake news"},
		{"nlwiki-2018", "Nepnieuws"},
		{"plwiki-2018", "Fake news"},
	}
	fmt.Println("== Fake news across language editions (CycleRank, K=3) ==")
	for _, ed := range editions {
		top, err := cycleRankTop(ctx, catalog, ed.dataset, ed.ref, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %v\n", ed.dataset+":", top)
	}

	// Longitudinal comparison: the same edition over snapshot years.
	// The fake-news neighborhood only exists from 2013 on and widens
	// by 2018.
	fmt.Println("\n== enwiki over time ==")
	var snapshots = map[int]*cyclerank.Result{}
	for _, year := range []int{2003, 2008, 2013, 2018} {
		name := fmt.Sprintf("enwiki-%d", year)
		ds, err := catalog.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		g, err := ds.Load()
		if err != nil {
			log.Fatal(err)
		}
		stats := cyclerank.ComputeStats(g)
		if _, ok := g.NodeByLabel("Fake news"); !ok {
			fmt.Printf("%s: %6d nodes, %7d edges — article does not exist yet\n",
				name, stats.Nodes, stats.Edges)
			continue
		}
		src, _ := g.NodeByLabel("Fake news")
		res, err := cyclerank.Compute(ctx, g, src, cyclerank.Params{K: 3})
		if err != nil {
			log.Fatal(err)
		}
		snapshots[year] = res
		var top []string
		for _, e := range res.Top(4) {
			if e.Label != "Fake news" {
				top = append(top, e.Label)
			}
		}
		fmt.Printf("%s: %6d nodes, %7d edges — top: %v\n", name, stats.Nodes, stats.Edges, top)
	}

	// Quantify the 2013 -> 2018 movement: who entered, who rose.
	if old, new := snapshots[2013], snapshots[2018]; old != nil && new != nil {
		diff, err := cyclerank.DiffTopK(old, new, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n2013 -> 2018: %s\n", diff)
		for _, e := range diff.Entered {
			fmt.Printf("  entered at #%d: %s\n", e.NewRank, e.Label)
		}
		for _, e := range diff.Moved {
			fmt.Printf("  moved %+d: %s (#%d -> #%d)\n", e.Delta(), e.Label, e.OldRank, e.NewRank)
		}
	}
}

// cycleRankTop loads a dataset and returns the top-3 CycleRank labels
// around ref (the reference itself excluded).
func cycleRankTop(ctx context.Context, catalog *cyclerank.DatasetCatalog, dataset, ref string, n int) ([]string, error) {
	ds, err := catalog.Get(dataset)
	if err != nil {
		return nil, err
	}
	g, err := ds.Load()
	if err != nil {
		return nil, err
	}
	src, ok := g.NodeByLabel(ref)
	if !ok {
		return nil, fmt.Errorf("%s: reference %q not found", dataset, ref)
	}
	res, err := cyclerank.Compute(ctx, g, src, cyclerank.Params{K: 3})
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range res.Top(n + 1) {
		if e.Label != ref {
			out = append(out, e.Label)
		}
	}
	if len(out) > n {
		out = out[:n]
	}
	return out, nil
}
