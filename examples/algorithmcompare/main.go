// Algorithm comparison: the demo's first use case. Runs CycleRank,
// Personalized PageRank and PageRank on the same dataset and query
// (the paper's Table I setup) and quantifies how much the rankings
// agree.
//
// Run with:
//
//	go run ./examples/algorithmcompare
package main

import (
	"context"
	"fmt"
	"log"

	cyclerank "github.com/cyclerank/cyclerank-go"
)

func main() {
	catalog, err := cyclerank.LoadCatalog()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := catalog.Get("enwiki-2018")
	if err != nil {
		log.Fatal(err)
	}
	g, err := ds.Load()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d nodes, %d edges\n\n", ds.Name, g.NumNodes(), g.NumEdges())

	ctx := context.Background()
	registry := cyclerank.NewRegistry()
	const ref = "Freddie Mercury"

	runs := []struct {
		algo   string
		params cyclerank.AlgoParams
	}{
		{cyclerank.AlgoCycleRank, cyclerank.AlgoParams{Source: ref, K: 3, Scoring: "exp"}},
		{cyclerank.AlgoPPR, cyclerank.AlgoParams{Source: ref, Alpha: 0.3}},
		{cyclerank.AlgoPageRank, cyclerank.AlgoParams{Alpha: 0.85}},
	}

	results := make(map[string]*cyclerank.Result)
	for _, r := range runs {
		res, err := cyclerank.RunAlgorithm(ctx, registry, r.algo, g, r.params)
		if err != nil {
			log.Fatal(err)
		}
		results[r.algo] = res
		fmt.Printf("%s (%s):\n", r.algo, r.params)
		for i, e := range res.Top(5) {
			fmt.Printf("  %d. %s\n", i+1, e.Label)
		}
		fmt.Println()
	}

	// Quantify the disagreement the demo lets users see side by side.
	ag, err := cyclerank.CompareAt(results[cyclerank.AlgoCycleRank], results[cyclerank.AlgoPPR], 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cyclerank vs ppr @10: jaccard=%.3f rbo=%.3f kendall=%.3f\n",
		ag.Jaccard, ag.RBO, ag.KendallTau)

	// The headline observation: the global hubs sit in PPR's ranking
	// but are absent from CycleRank's.
	for _, hubName := range []string{"United States", "HIV/AIDS"} {
		hub, ok := g.NodeByLabel(hubName)
		if !ok {
			continue
		}
		fmt.Printf("%-14s cyclerank=%.5f ppr=%.5f\n",
			hubName, results[cyclerank.AlgoCycleRank].Score(hub), results[cyclerank.AlgoPPR].Score(hub))
	}
}
