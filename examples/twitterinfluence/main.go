// Twitter influence: personalized relevance on an interaction network.
// On the synthetic COP27 crawl, compares who CycleRank and Personalized
// PageRank consider relevant to a community organizer — mutual-reply
// activists versus broadcast-only influencer accounts — and inspects
// the cycles that justify CycleRank's answer.
//
// Run with:
//
//	go run ./examples/twitterinfluence
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	cyclerank "github.com/cyclerank/cyclerank-go"
)

func main() {
	catalog, err := cyclerank.LoadCatalog()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := catalog.Get("twitter-cop27")
	if err != nil {
		log.Fatal(err)
	}
	g, err := ds.Load()
	if err != nil {
		log.Fatal(err)
	}
	stats := cyclerank.ComputeStats(g)
	fmt.Printf("twitter-cop27: %d users, %d interactions, reciprocity %.3f\n\n",
		stats.Nodes, stats.Edges, stats.Reciprocity)

	const organizer = "cop27_organizer_00"
	ref, ok := g.NodeByLabel(organizer)
	if !ok {
		log.Fatal("organizer account missing")
	}
	ctx := context.Background()

	cr, err := cyclerank.Compute(ctx, g, ref, cyclerank.Params{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	ppr, err := cyclerank.PersonalizedPageRank(ctx, g, cyclerank.PageRankParams{
		Alpha: 0.85, Seeds: []cyclerank.NodeID{ref},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Who matters to %s?\n\n", organizer)
	fmt.Println("CycleRank (mutual interaction required):")
	for i, e := range cr.Top(6) {
		fmt.Printf("  %d. %-24s %.4f  %s\n", i+1, e.Label, e.Score, kind(e.Label))
	}
	fmt.Println("\nPersonalized PageRank:")
	for i, e := range ppr.Top(6) {
		fmt.Printf("  %d. %-24s %.4f  %s\n", i+1, e.Label, e.Score, kind(e.Label))
	}

	// Count influencer accounts per ranking: PPR rewards the accounts
	// everyone mentions; CycleRank only rewards accounts that interact
	// back.
	fmt.Printf("\ninfluencer accounts in top-10: cyclerank=%d ppr=%d\n",
		countInfluencers(cr.TopLabels(10)), countInfluencers(ppr.TopLabels(10)))

	// Why is the top activist ranked? Show the interaction cycles.
	top := cr.TopFiltered(1, func(v cyclerank.NodeID) bool { return v == ref })
	if len(top) == 1 {
		cycles, err := cyclerank.CyclesThrough(ctx, g, ref, top[0].Node, cyclerank.Params{K: 3}, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwhy %s? sample interaction cycles:\n", top[0].Label)
		for _, c := range cycles {
			fmt.Printf("  %s\n", strings.Join(c.Labels(g), " -> "))
		}
	}
}

func kind(label string) string {
	switch {
	case strings.Contains(label, "influencer"):
		return "[broadcast influencer]"
	case strings.Contains(label, "organizer"):
		return "[organizer]"
	case strings.Contains(label, "activist"):
		return "[community activist]"
	}
	return "[user]"
}

func countInfluencers(labels []string) int {
	n := 0
	for _, l := range labels {
		if strings.Contains(l, "influencer") {
			n++
		}
	}
	return n
}
