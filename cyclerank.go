// Package cyclerank is the public façade of the CycleRank platform: a
// Go reproduction of "Comparing Personalized Relevance Algorithms for
// Directed Graphs" (Cavalcanti, Consonni, Brugnara, Laniado,
// Montresor; ICDE 2024).
//
// The package re-exports the supported API surface of the internal
// packages so downstream users need a single import:
//
//	g, _ := cyclerank.ReadGraphFile("wiki.csv")
//	ref, _ := g.NodeByLabel("Fake news")
//	res, _ := cyclerank.Compute(ctx, g, ref, cyclerank.Params{K: 3})
//	for _, e := range res.Top(5) {
//	    fmt.Println(e.Label, e.Score)
//	}
//
// Beyond the core algorithm the façade exposes the full comparison
// platform: the algorithm registry (PageRank, Personalized PageRank,
// CheiRank, 2DRank and personalized variants), the 50-dataset catalog,
// rank-agreement metrics, and the task scheduler + HTTP gateway that
// make up the demo system.
package cyclerank

import (
	"context"
	"io"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/core"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/formats"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/pagerank"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
	"github.com/cyclerank/cyclerank-go/internal/server"
	"github.com/cyclerank/cyclerank-go/internal/task"
)

// Graph construction and inspection.
type (
	// Graph is an immutable directed graph in CSR form.
	Graph = graph.Graph
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// Edge is a directed edge.
	Edge = graph.Edge
	// Stats summarizes a graph's structure.
	Stats = graph.Stats
)

// NewBuilder returns a builder for an unlabeled graph with n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// NewLabeledBuilder returns a builder whose nodes are interned by
// string label.
func NewLabeledBuilder() *Builder { return graph.NewLabeledBuilder() }

// ComputeStats collects structural statistics for g.
func ComputeStats(g *Graph) Stats { return graph.ComputeStats(g) }

// Weights attaches positive per-edge weights to a Graph.
type Weights = graph.Weights

// NewWeights returns an all-ones weight overlay for g.
func NewWeights(g *Graph) *Weights { return graph.NewWeights(g) }

// EgoNet returns the subgraph within radius hops of center (both edge
// directions), plus the new-to-original id mapping.
func EgoNet(g *Graph, center NodeID, radius int) (*Graph, []NodeID, error) {
	return graph.EgoNet(g, center, radius)
}

// InducedSubgraph returns the subgraph induced by the given nodes,
// plus the new-to-original id mapping.
func InducedSubgraph(g *Graph, nodes []NodeID) (*Graph, []NodeID, error) {
	return graph.InducedSubgraph(g, nodes)
}

// CycleRank, the paper's primary contribution.
type (
	// Params configures CycleRank.
	Params = core.Params
	// ScoringFunc weights a cycle by its length.
	ScoringFunc = core.ScoringFunc
)

// CycleRank scoring function names.
const (
	ScoringExponential = core.ScoringExponential
	ScoringLinear      = core.ScoringLinear
	ScoringQuadratic   = core.ScoringQuadratic
	ScoringConstant    = core.ScoringConstant
)

// Compute runs CycleRank on g with reference node r.
func Compute(ctx context.Context, g *Graph, r NodeID, p Params) (*Result, error) {
	return core.Compute(ctx, g, r, p)
}

// CountCycles counts elementary cycles of length at most k through r.
func CountCycles(ctx context.Context, g *Graph, r NodeID, k int) (int64, error) {
	return core.CountCycles(ctx, g, r, k)
}

// ScoringByName resolves a named scoring function (exp, lin, quad,
// const).
func ScoringByName(name string) (ScoringFunc, error) { return core.ScoringByName(name) }

// Cycle is one elementary cycle through a reference node.
type Cycle = core.Cycle

// ComputeParallel runs CycleRank with a worker pool, partitioning the
// enumeration by first-hop branch. workers <= 0 selects GOMAXPROCS.
func ComputeParallel(ctx context.Context, g *Graph, r NodeID, p Params, workers int) (*Result, error) {
	return core.ComputeParallel(ctx, g, r, p, workers)
}

// ComputeMulti runs CycleRank for several reference nodes, summing
// their scores.
func ComputeMulti(ctx context.Context, g *Graph, refs []NodeID, p Params) (*Result, error) {
	return core.ComputeMulti(ctx, g, refs, p)
}

// ListCycles enumerates up to limit cycles through r, shortest first,
// returning the uncapped total alongside.
func ListCycles(ctx context.Context, g *Graph, r NodeID, p Params, limit int) ([]Cycle, int64, error) {
	return core.ListCycles(ctx, g, r, p, limit)
}

// CyclesThrough lists up to limit cycles containing both r and i — the
// explanation behind a single ranking row.
func CyclesThrough(ctx context.Context, g *Graph, r, i NodeID, p Params, limit int) ([]Cycle, error) {
	return core.CyclesThrough(ctx, g, r, i, p, limit)
}

// The PageRank family.
type (
	// PageRankParams configures the PageRank power iteration.
	PageRankParams = pagerank.Params
)

// PageRank computes classic PageRank.
func PageRank(ctx context.Context, g *Graph, p PageRankParams) (*Result, error) {
	return pagerank.PageRank(ctx, g, p)
}

// PersonalizedPageRank computes PageRank with teleports restricted to
// the seed set in p.Seeds.
func PersonalizedPageRank(ctx context.Context, g *Graph, p PageRankParams) (*Result, error) {
	return pagerank.Personalized(ctx, g, p)
}

// CheiRank computes PageRank on the transposed graph.
func CheiRank(ctx context.Context, g *Graph, p PageRankParams) (*Result, error) {
	return pagerank.CheiRank(ctx, g, p)
}

// TwoDRank computes the combined PageRank/CheiRank square-sweep
// ranking.
func TwoDRank(ctx context.Context, g *Graph, p PageRankParams) (*Result, error) {
	return pagerank.TwoDRank(ctx, g, p)
}

// WeightedPageRank runs (personalized) PageRank where out-edges are
// followed proportionally to their weights.
func WeightedPageRank(ctx context.Context, ws *Weights, p PageRankParams) (*Result, error) {
	return pagerank.WeightedPageRank(ctx, ws, p)
}

// Rankings and comparison metrics.
type (
	// Result holds per-node scores produced by an algorithm.
	Result = ranking.Result
	// Entry is one (node, score) pair.
	Entry = ranking.Entry
	// Agreement is a pairwise rank-agreement summary.
	Agreement = ranking.Agreement
)

// NewResult wraps a raw score vector (one score per node of g) as a
// Result — the constructor custom algorithms use.
func NewResult(algorithm string, g *Graph, scores []float64) (*Result, error) {
	return ranking.NewResult(algorithm, g, scores)
}

// JaccardAtK returns the Jaccard similarity of two results' top-k
// sets.
func JaccardAtK(a, b *Result, k int) float64 { return ranking.JaccardAtK(a, b, k) }

// RBO returns the rank-biased overlap of two results at depth k with
// persistence p.
func RBO(a, b *Result, k int, p float64) (float64, error) { return ranking.RBO(a, b, k, p) }

// CompareAt produces the full pairwise Agreement at depth k.
func CompareAt(a, b *Result, k int) (Agreement, error) { return ranking.CompareAt(a, b, k) }

// RankDiff describes how a top-k ranking changed between two results
// (matched by label, so the results may come from different graphs,
// e.g. two snapshot years).
type RankDiff = ranking.Diff

// DiffTopK compares the top-k of two results by label.
func DiffTopK(old, new *Result, k int) (*RankDiff, error) { return ranking.DiffTopK(old, new, k) }

// ReadGraphWeighted parses a "source,target,weight" edge list,
// returning the graph and its weight overlay.
func ReadGraphWeighted(r io.Reader) (*Graph, *Weights, error) {
	return formats.ReadEdgeListWeighted(r)
}

// Algorithm registry: the platform's extension point.
type (
	// Algorithm is a pluggable relevance algorithm.
	Algorithm = algo.Algorithm
	// AlgorithmFunc adapts a function into an Algorithm.
	AlgorithmFunc = algo.Func
	// Registry is a collection of algorithms.
	Registry = algo.Registry
	// AlgoParams is the shared parameter schema.
	AlgoParams = algo.Params
)

// Registry names of the built-in algorithms.
const (
	AlgoCycleRank = algo.NameCycleRank
	AlgoPageRank  = algo.NamePageRank
	AlgoPPR       = algo.NamePPR
	AlgoCheiRank  = algo.NameCheiRank
	AlgoPCheiRank = algo.NamePCheiRank
	Algo2DRank    = algo.Name2DRank
	AlgoP2DRank   = algo.NameP2DRank
)

// NewRegistry returns a registry pre-populated with every built-in
// algorithm.
func NewRegistry() *Registry { return algo.NewBuiltinRegistry() }

// RunAlgorithm executes a registered algorithm by name.
func RunAlgorithm(ctx context.Context, r *Registry, name string, g *Graph, p AlgoParams) (*Result, error) {
	return algo.Run(ctx, r, name, g, p)
}

// Datasets.
type (
	// Dataset is a named graph generator from the catalog.
	Dataset = datasets.Dataset
	// DatasetCatalog is a collection of datasets.
	DatasetCatalog = datasets.Catalog
)

// LoadCatalog returns the 50 pre-loaded datasets the demo ships.
func LoadCatalog() (*DatasetCatalog, error) { return datasets.BuiltinCatalog() }

// Graph file formats.
type (
	// Format identifies a supported graph file format.
	Format = formats.Format
)

// Supported formats.
const (
	FormatEdgeList = formats.FormatEdgeList
	FormatPajek    = formats.FormatPajek
	FormatASD      = formats.FormatASD
)

// ReadGraphFile loads a graph from disk, inferring its format.
func ReadGraphFile(path string) (*Graph, error) { return formats.ReadFile(path) }

// WriteGraphFile stores a graph to disk in the format implied by the
// extension.
func WriteGraphFile(path string, g *Graph) error { return formats.WriteFile(path, g) }

// Platform: scheduler, datastore and HTTP gateway.
type (
	// TaskSpec is the (dataset, algorithm, params) triple.
	TaskSpec = task.Spec
	// Task is a scheduled spec with execution metadata.
	Task = task.Task
	// TaskResult is a persisted task outcome.
	TaskResult = task.Result
	// Scheduler runs tasks on an executor pool.
	Scheduler = task.Scheduler
	// SchedulerConfig configures a Scheduler.
	SchedulerConfig = task.SchedulerConfig
	// Store is the file-backed datastore.
	Store = datastore.Store
	// Server is the HTTP API gateway + Web UI.
	Server = server.Server
	// ServerConfig configures a Server.
	ServerConfig = server.Config
)

// OpenStore creates or opens a datastore rooted at dir.
func OpenStore(dir string) (*Store, error) { return datastore.Open(dir) }

// NewScheduler builds a task scheduler and starts its executor pool.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) { return task.NewScheduler(cfg) }

// NewServer builds the HTTP gateway.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }
