// Benchmarks regenerating every artifact of the paper's evaluation
// section (Tables I-III; Figures 1-2 are the architecture and UI,
// exercised by the platform benches) plus the ablation studies indexed
// in DESIGN.md §4. Run with:
//
//	go test -bench=. -benchmem
package cyclerank_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	cyclerank "github.com/cyclerank/cyclerank-go"
	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/core"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/experiments"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/pagerank"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
	"github.com/cyclerank/cyclerank-go/internal/task"
)

// graphCache loads each catalog dataset at most once per benchmark
// binary run.
var (
	graphCacheMu sync.Mutex
	graphCache   = map[string]*graph.Graph{}
)

func loadGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	graphCacheMu.Lock()
	defer graphCacheMu.Unlock()
	if g, ok := graphCache[name]; ok {
		return g
	}
	cat, err := datasets.BuiltinCatalogSubset(name)
	if err != nil {
		b.Fatal(err)
	}
	d, err := cat.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := d.Load()
	if err != nil {
		b.Fatal(err)
	}
	graphCache[name] = g
	return g
}

func mustNode(b *testing.B, g *graph.Graph, label string) graph.NodeID {
	b.Helper()
	id, ok := g.NodeByLabel(label)
	if !ok {
		b.Fatalf("node %q missing", label)
	}
	return id
}

// --- Paper tables (experiments T1-T3) ---

func BenchmarkTableI(b *testing.B) {
	reg := algo.NewBuiltinRegistry()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableI(context.Background(), reg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	reg := algo.NewBuiltinRegistry()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(context.Background(), reg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	reg := algo.NewBuiltinRegistry()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIII(context.Background(), reg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- The platform itself (Figures 1-2: architecture + task flow) ---

// BenchmarkPlatformQuerySet measures the full demo pipeline: submit a
// three-task query set through the scheduler, execute on the worker
// pool, persist, and read results back — the end-to-end latency a demo
// user experiences per comparison.
func BenchmarkPlatformQuerySet(b *testing.B) {
	store, err := datastore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	g := loadGraph(b, "enwiki-2013")
	sched, err := task.NewScheduler(task.SchedulerConfig{
		Registry: algo.NewBuiltinRegistry(),
		Store:    store,
		Workers:  2,
		Load:     func(string) (*graph.Graph, error) { return g, nil },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sched.Shutdown(context.Background())
	specs := []task.Spec{
		{Dataset: "enwiki-2013", Algorithm: algo.NameCycleRank, Params: algo.Params{Source: "Freddie Mercury", K: 3}},
		{Dataset: "enwiki-2013", Algorithm: algo.NamePPR, Params: algo.Params{Source: "Freddie Mercury", Alpha: 0.3}},
		{Dataset: "enwiki-2013", Algorithm: algo.NamePageRank},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs, _, err := sched.Submit(specs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sched.WaitQuerySet(context.Background(), qs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation A1: CycleRank vs K ---

func BenchmarkCycleRankK(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	src := mustNode(b, g, "Freddie Mercury")
	for k := 2; k <= 6; k++ {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Compute(context.Background(), g, src, core.Params{K: k}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCycleRankParallel contrasts the sequential enumerator with
// the branch-partitioned parallel one on the densest catalog graph,
// where the reference has enough first-hop branches to feed a pool.
func BenchmarkCycleRankParallel(b *testing.B) {
	g := loadGraph(b, "cliques-ring")
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ComputeParallel(context.Background(), g, 0, core.Params{K: 6}, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Compute(context.Background(), g, 0, core.Params{K: 6}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation A2: pruned vs naive enumeration ---

func BenchmarkCycleRankPrunedVsNaive(b *testing.B) {
	full := loadGraph(b, "er-dense")
	// Induce a 200-node prefix so the naive oracle stays feasible.
	nb := graph.NewBuilder(200)
	full.Edges(func(u, v graph.NodeID) bool {
		if u < 200 && v < 200 {
			nb.AddEdge(u, v)
		}
		return true
	})
	g, err := nb.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Compute(context.Background(), g, 0, core.Params{K: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.NaiveScores(g, 0, core.Params{K: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation A3: PPR engines ---

func BenchmarkPPREngines(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	seeds := []graph.NodeID{mustNode(b, g, "Freddie Mercury")}
	b.Run("power", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pagerank.Personalized(context.Background(), g, pagerank.Params{Alpha: 0.85, Seeds: seeds}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("push", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pagerank.PushPPR(context.Background(), g, pagerank.PushParams{Alpha: 0.15, Epsilon: 1e-7, Seeds: seeds}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("montecarlo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pagerank.MonteCarloPPR(context.Background(), g, pagerank.MCParams{Alpha: 0.85, Walks: 10000, Seeds: seeds, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation A7: bidirectional pair queries ---

// BenchmarkBiPPRPair contrasts the cost of one source→target estimate
// under the bidirectional subsystem with computing the same number
// via a full forward push. Accuracy is matched: bippr at rmax=1e-4
// with 2000 walks estimates π(s,t) at least as tightly as forward
// push at epsilon=1e-8 (see the crbench bippr ablation). "pair" is
// the serving scenario — the reverse-push index is cached and each
// query pays only the walks; "pair-cold" rebuilds the index per
// query; "forward-push" is the status quo it replaces.
func BenchmarkBiPPRPair(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	src := mustNode(b, g, "Brian May")
	tgt := mustNode(b, g, "Freddie Mercury")
	params := bippr.Params{Alpha: 0.85, RMax: 1e-4, Walks: 2000, Seed: 1}

	b.Run("pair", func(b *testing.B) {
		est := bippr.NewEstimator(0)
		// Build the target index outside the timed loop: under server
		// traffic the first query per target amortizes it.
		if _, err := est.Pair(context.Background(), g, src, tgt, params); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := est.Pair(context.Background(), g, src, tgt, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pair-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bippr.Bidirectional(context.Background(), g, src, tgt, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("forward-push", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := pagerank.PushPPR(context.Background(), g, pagerank.PushParams{
				Alpha: 0.15, Epsilon: 1e-8, Seeds: []graph.NodeID{src},
			})
			if err != nil {
				b.Fatal(err)
			}
			_ = res.Score(tgt)
		}
	})

	// Serial vs sharded walk phase: a cached pair query is walks-only,
	// so the workers sweep isolates the worker pool's speedup. The
	// estimate is bit-identical at every pool size (test-enforced by
	// TestShardedWalksBitIdentical); only latency changes. 50k walks
	// make the walk phase long enough to measure against pool overhead.
	// Pool sizes are clamped to GOMAXPROCS, so on a machine with fewer
	// cores than a sub-benchmark's label the rows run an effectively
	// smaller (possibly serial) pool and read as ~1x.
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("walk-phase/workers=%d", workers), func(b *testing.B) {
			est := bippr.NewEstimator(0)
			p := bippr.Params{Alpha: 0.85, RMax: 1e-4, Walks: 50000, Seed: 1, Workers: workers}
			if _, err := est.Pair(context.Background(), g, src, tgt, p); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := est.Pair(context.Background(), g, src, tgt, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBiPPRWalkReuse measures the walk-endpoint cache for a
// warm-source pair query against a *new* target (its index is warm
// too, so both rows isolate the walk term): "fresh-walks" simulates
// the walks per query, "reused-endpoints" re-weights the source's
// recorded endpoints. Estimates are bit-identical (test-enforced by
// TestEndpointReuseMatchesFreshWalks); only the walk simulation is
// skipped.
func BenchmarkBiPPRWalkReuse(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	src := mustNode(b, g, "Brian May")
	warm := mustNode(b, g, "Freddie Mercury")
	tgt := mustNode(b, g, "Queen (band)")
	fresh := bippr.Params{Alpha: 0.85, RMax: 1e-4, Walks: 50000, Seed: 1}
	reuse := fresh
	reuse.ReuseEndpoints = true

	est := bippr.NewEstimator(0)
	// Warm both target indexes and the source's endpoint recording.
	if _, err := est.Pair(context.Background(), g, src, warm, reuse); err != nil {
		b.Fatal(err)
	}
	if _, err := est.Pair(context.Background(), g, src, tgt, fresh); err != nil {
		b.Fatal(err)
	}

	b.Run("fresh-walks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := est.Pair(context.Background(), g, src, tgt, fresh); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused-endpoints", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := est.Pair(context.Background(), g, src, tgt, reuse); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBiPPRPersist measures the two warm tiers of the persistent
// index store for a pair query: "warm-disk" is the restarted-server
// scenario (a fresh estimator finds the artifact in the datastore and
// deserializes instead of re-pushing — plus the walk phase),
// "warm-memory" the steady-state LRU hit. Compare with
// BenchmarkBiPPRPair/pair-cold, which is what a restart used to cost
// per target before indexes persisted.
func BenchmarkBiPPRPersist(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	src := mustNode(b, g, "Brian May")
	tgt := mustNode(b, g, "Freddie Mercury")
	params := bippr.Params{Alpha: 0.85, RMax: 1e-4, Walks: 2000, Seed: 1}
	store, err := datastore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// Seed the artifact once; every sub-benchmark below is warm.
	if _, err := bippr.NewEstimatorWithStore(bippr.NewTieredStore(0, store)).
		Pair(context.Background(), g, src, tgt, params); err != nil {
		b.Fatal(err)
	}

	b.Run("warm-disk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			est := bippr.NewEstimatorWithStore(bippr.NewTieredStore(0, store))
			if _, err := est.Pair(context.Background(), g, src, tgt, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-memory", func(b *testing.B) {
		est := bippr.NewEstimatorWithStore(bippr.NewTieredStore(0, store))
		if _, err := est.Pair(context.Background(), g, src, tgt, params); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := est.Pair(context.Background(), g, src, tgt, params); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEndpointPersist measures what persisted walk-endpoint
// recordings buy a restarted server for a warm-source pair query
// (both the target index and the source's recording already on disk):
// "re-walk" is the pre-persistence restart — a fresh estimator whose
// endpoint cache is memory-only re-simulates the walks (the index
// still loads from disk) — while "warm-disk" deserializes the
// recording instead (zero walk simulation; the restarted-server path)
// and "warm-memory" is the steady-state LRU hit. Estimates are
// bit-identical on every row (test-enforced by the store-reopen leg
// of TestEndpointReuseMatchesFreshWalks).
func BenchmarkEndpointPersist(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	src := mustNode(b, g, "Brian May")
	tgt := mustNode(b, g, "Freddie Mercury")
	params := bippr.Params{Alpha: 0.85, RMax: 1e-4, Walks: 50000, Seed: 1, ReuseEndpoints: true}
	store, err := datastore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	tiered := func() *bippr.Estimator {
		return bippr.NewEstimatorWithCaches(
			bippr.NewTieredStore(0, store), bippr.NewTieredEndpointCache(0, store))
	}
	// Seed both artifacts once; every sub-benchmark below is warm on
	// disk.
	if _, err := tiered().Pair(context.Background(), g, src, tgt, params); err != nil {
		b.Fatal(err)
	}

	b.Run("re-walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			est := bippr.NewEstimatorWithCaches(bippr.NewTieredStore(0, store), bippr.NewEndpointCache(0))
			if _, err := est.Pair(context.Background(), g, src, tgt, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-disk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tiered().Pair(context.Background(), g, src, tgt, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-memory", func(b *testing.B) {
		est := tiered()
		if _, err := est.Pair(context.Background(), g, src, tgt, params); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := est.Pair(context.Background(), g, src, tgt, params); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTargetIndexStorage contrasts the memory the two index
// representations pin: dense allocates O(n) arrays regardless of how
// far the push reaches, sparse allocates O(touched). The ring graph
// makes the gap extreme — a reverse push at rmax=1e-4 touches ~57
// nodes of 200k — which is exactly the regime of an LRU cache over a
// multi-million-node graph. Read the B/op column.
func BenchmarkTargetIndexStorage(b *testing.B) {
	const n = 200_000
	nb := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		nb.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%n))
	}
	ring, err := nb.Build()
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		storage bippr.Storage
	}{
		{"dense", bippr.StorageDense},
		{"sparse", bippr.StorageSparse},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bippr.ReversePushStored(context.Background(), ring, 0, 0.85, 1e-4, tc.storage); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPPRTarget measures the target-ranking workload: cold
// reverse pushes at decreasing rmax, and the cached path a busy
// server hits.
func BenchmarkPPRTarget(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	tgt := mustNode(b, g, "Freddie Mercury")
	for _, rmax := range []float64{1e-4, 1e-6} {
		b.Run(fmt.Sprintf("reverse-push/rmax=%.0e", rmax), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bippr.ReversePush(context.Background(), g, tgt, 0.85, rmax); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("cached", func(b *testing.B) {
		est := bippr.NewEstimator(0)
		p := bippr.Params{Alpha: 0.85, RMax: 1e-5}
		if _, err := est.TargetRank(context.Background(), g, tgt, p); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := est.TargetRank(context.Background(), g, tgt, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation A8: hot-path bandwidth (walk batching, endpoint codec, CSR layout) ---

// BenchmarkWalkBatch isolates the pure walk phase under both
// substream steppers: the serial per-walk reference and the batched
// level-synchronous cohort every query runs by default. Estimates are
// bit-identical (test-enforced by TestBatchedSteppingBitIdentical);
// only the CSR traversal order differs. For the comparison against
// the pre-substream chunk-RNG walk phase, run `crbench -ablation
// walk-batch`, which replays the legacy path too.
func BenchmarkWalkBatch(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	src := mustNode(b, g, "Brian May")
	values := make([]float64, g.NumNodes())
	for i := range values {
		values[i] = float64(i%13) * 1e-5
	}
	wv := bippr.NewDenseVector(values)
	const walks = 50000
	for _, tc := range []struct {
		name    string
		batched bool
	}{{"per-walk", false}, {"batched", true}} {
		b.Run(tc.name, func(b *testing.B) {
			w := bippr.NewWalkEstimator(g, 0.85, 1, 0)
			w.SetBatchStepping(tc.batched)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := w.EstimateSum(context.Background(), src, walks, wv, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndpointCodec prices both on-disk framings of one real
// walk recording: the legacy fixed-width v1 layout and the
// delta-varint v2 the cache writes now. The bytes/artifact metric is
// the size each codec produces for the same recording — the bandwidth
// the disk tier moves per endpoint artifact.
func BenchmarkEndpointCodec(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	src := mustNode(b, g, "Brian May")
	w := bippr.NewWalkEstimator(g, 0.85, 1, 0)
	set, err := w.Endpoints(context.Background(), src, 50000, 0)
	if err != nil {
		b.Fatal(err)
	}
	art := bippr.EndpointArtifact{Source: src, Alpha: 0.85, Seed: 1, MaxSteps: bippr.DefaultMaxSteps, Set: set}
	codecs := []struct {
		name   string
		encode func(bippr.EndpointArtifact) ([]byte, error)
	}{
		{"v1", bippr.EncodeEndpointsV1},
		{"v2", bippr.EncodeEndpoints},
	}
	for _, c := range codecs {
		data, err := c.encode(art)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("encode/"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(float64(len(data)), "artifact-bytes")
			for i := 0; i < b.N; i++ {
				if _, err := c.encode(art); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decode/"+c.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(float64(len(data)), "artifact-bytes")
			for i := 0; i < b.N; i++ {
				if _, err := bippr.DecodeEndpointsSized(data, g.NumNodes()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCSRLayout contrasts a deep reverse push over the original
// CSR with the degree-descending remapped view on the largest catalog
// graph. Both drive every residual below rmax; the delta is purely
// where the frontier's hub revisits land in memory.
func BenchmarkCSRLayout(b *testing.B) {
	g := loadGraph(b, "ba-large")
	tgt := mustNode(b, g, "17")
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"original", g.WithoutLayout()},
		{"remapped", g},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bippr.ReversePush(context.Background(), tc.g, tgt, 0.85, 1e-6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWalkSampleTable isolates the stepping primitive inside the
// batched cohort walk phase: CSR slice loads per step versus the
// packed (rowStart, degree) sample-table words. Both consume identical
// per-walk RNG substreams, so estimates are bit-identical
// (test-enforced by TestBatchedSteppingBitIdentical); only the loads
// per step differ.
func BenchmarkWalkSampleTable(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	src := mustNode(b, g, "Brian May")
	values := make([]float64, g.NumNodes())
	for i := range values {
		values[i] = float64(i%13) * 1e-5
	}
	wv := bippr.NewDenseVector(values)
	const walks = 50000
	for _, tc := range []struct {
		name  string
		table bool
	}{{"slice-step", false}, {"table-step", true}} {
		b.Run(tc.name, func(b *testing.B) {
			w := bippr.NewWalkEstimator(g, 0.85, 1, 0)
			w.SetSampleTable(tc.table)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := w.EstimateSum(context.Background(), src, walks, wv, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCSRCompress prices the delta-varint in-CSR against the raw
// remapped arrays on a deep reverse push. The compressed row decodes
// are bit-identical to the raw reads (test-enforced by
// TestPushCompressedBitIdentical); on catalog-sized graphs the raw
// arrays fit cache so the compressed path is expected to lose — which
// is exactly why DefaultCompressBytes keeps it off below LLC scale.
func BenchmarkCSRCompress(b *testing.B) {
	g := loadGraph(b, "ba-large")
	prev := graph.HotPath()
	graph.SetHotPath(graph.HotPathConfig{CompressBytes: 1})
	defer graph.SetHotPath(prev)
	cat, err := datasets.BuiltinCatalogSubset("ba-large")
	if err != nil {
		b.Fatal(err)
	}
	d, err := cat.Get("ba-large")
	if err != nil {
		b.Fatal(err)
	}
	zipped, err := d.Load()
	if err != nil {
		b.Fatal(err)
	}
	graph.SetHotPath(prev)
	if zipped.Layout().CompressedIn() == nil {
		b.Fatal("forced threshold built no compressed view")
	}
	tgt := mustNode(b, g, "17")
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"raw", g},
		{"compressed", zipped},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bippr.ReversePush(context.Background(), tc.g, tgt, 0.85, 1e-6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPushBlocked contrasts the reverse push's inner kernels: the
// exact per-edge-division loop against the blocked reciprocal-multiply
// scatter the dense path runs by default. The kernels agree within the
// 2·rmax equivalence contract (test-enforced by
// TestPushBlockedWithinRMax), not bit-for-bit — the reciprocal rounds
// once per node instead of dividing per edge.
func BenchmarkPushBlocked(b *testing.B) {
	g := loadGraph(b, "ba-large")
	tgt := mustNode(b, g, "17")
	prev := graph.HotPath()
	defer graph.SetHotPath(prev)
	for _, tc := range []struct {
		name string
		cfg  graph.HotPathConfig
	}{
		{"exact", graph.HotPathConfig{PushBlock: -1}},
		{"blocked", graph.HotPathConfig{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			graph.SetHotPath(tc.cfg)
			defer graph.SetHotPath(prev)
			for i := 0; i < b.N; i++ {
				if _, err := bippr.ReversePush(context.Background(), g, tgt, 0.85, 1e-6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation A4: scoring functions ---

func BenchmarkCycleRankScoring(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	src := mustNode(b, g, "Freddie Mercury")
	for _, name := range core.ScoringNames() {
		fn, err := core.ScoringByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Compute(context.Background(), g, src, core.Params{K: 3, Scoring: fn}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation A5: all seven algorithms vs snapshot size ---

func BenchmarkAlgorithmsScale(b *testing.B) {
	reg := algo.NewBuiltinRegistry()
	algos := []struct {
		name string
		p    algo.Params
	}{
		{algo.NameCycleRank, algo.Params{Source: "Freddie Mercury", K: 3}},
		{algo.NamePageRank, algo.Params{Alpha: 0.85}},
		{algo.NamePPR, algo.Params{Source: "Freddie Mercury", Alpha: 0.85}},
		{algo.NameCheiRank, algo.Params{Alpha: 0.85}},
		{algo.NamePCheiRank, algo.Params{Source: "Freddie Mercury", Alpha: 0.85}},
		{algo.Name2DRank, algo.Params{Alpha: 0.85}},
		{algo.NameP2DRank, algo.Params{Source: "Freddie Mercury", Alpha: 0.85}},
	}
	for _, year := range []int{2003, 2018} {
		g := loadGraph(b, fmt.Sprintf("enwiki-%d", year))
		for _, a := range algos {
			b.Run(fmt.Sprintf("%s/enwiki-%d", a.name, year), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := algo.Run(context.Background(), reg, a.name, g, a.p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablation A6: rank agreement ---

func BenchmarkAgreementMetrics(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	src := mustNode(b, g, "Freddie Mercury")
	cr, err := core.Compute(context.Background(), g, src, core.Params{K: 3})
	if err != nil {
		b.Fatal(err)
	}
	ppr, err := pagerank.Personalized(context.Background(), g, pagerank.Params{Alpha: 0.85, Seeds: []graph.NodeID{src}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cyclerank.CompareAt(cr, ppr, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate microbenches ---

func BenchmarkGraphBuild(b *testing.B) {
	src := loadGraph(b, "enwiki-2018")
	var edges []graph.Edge
	src.Edges(func(u, v graph.NodeID) bool {
		edges = append(edges, graph.Edge{From: u, To: v})
		return true
	})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := graph.FromEdges(src.NumNodes(), edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFSBounded(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	src := mustNode(b, g, "Freddie Mercury")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		graph.BFSFrom(g, src, 3)
	}
}

func BenchmarkSCC(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		graph.StronglyConnectedComponents(g)
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	for _, name := range []string{"enwiki-2018", "amazon", "twitter-cop27"} {
		b.Run(name, func(b *testing.B) {
			cat, err := datasets.BuiltinCatalogSubset(name)
			if err != nil {
				b.Fatal(err)
			}
			d, err := cat.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := d.Load(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverhead quantifies what the observability layer costs
// on the hottest uncached path: a full bidirectional query (reverse
// push + walk pass) with package metrics on (the default) versus off.
// Instrumentation sits only at pass boundaries — a handful of atomic
// adds and one histogram observe per pass — so the two rows must stay
// within noise of each other (the PR's budget is 5%). Neither row
// opens a trace: span cost is borne only by requests that ask for one.
func BenchmarkObsOverhead(b *testing.B) {
	g := loadGraph(b, "enwiki-2018")
	src := mustNode(b, g, "Brian May")
	tgt := mustNode(b, g, "Freddie Mercury")
	params := bippr.Params{Alpha: 0.85, RMax: 1e-4, Walks: 2000, Seed: 1}

	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bippr.Bidirectional(context.Background(), g, src, tgt, params); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("instrumented", func(b *testing.B) {
		bippr.SetMetricsEnabled(true)
		run(b)
	})
	b.Run("disabled", func(b *testing.B) {
		bippr.SetMetricsEnabled(false)
		defer bippr.SetMetricsEnabled(true)
		run(b)
	})
}

// BenchmarkAdmissionOverhead prices the fast-reject path in both
// shedding regimes. This is the whole point of admission control —
// rejecting must cost microseconds while serving costs milliseconds —
// so the numbers here are the per-request overhead an overloaded
// server pays.
//
//   - static: a blocker holds the tier's only interactive slot, so
//     every benchmarked Submit is shed on occupancy ("slots") before
//     any graph load or task registration.
//   - adaptive: the interactive p99 is driven over a tail-latency
//     objective, so every benchmarked Submit is shed by the SLO gate
//     ("slo") — the control-loop reject must stay in the same
//     microsecond band as the static one, which is why the p99 read
//     it performs is cached rather than recomputed per request.
func BenchmarkAdmissionOverhead(b *testing.B) {
	g, err := datasets.CompleteDigraph(10)
	if err != nil {
		b.Fatal(err)
	}
	newScheduler := func(b *testing.B, reg *algo.Registry, admission task.AdmissionConfig) *task.Scheduler {
		b.Helper()
		store, err := datastore.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		s, err := task.NewScheduler(task.SchedulerConfig{
			Registry:  reg,
			Store:     store,
			Workers:   1,
			Load:      func(string) (*graph.Graph, error) { return g, nil },
			Admission: admission,
		})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	shedLoop := func(b *testing.B, s *task.Scheduler, wantReason string) {
		b.Helper()
		spec := task.Spec{Dataset: "d", Algorithm: "bippr-pair",
			Params: algo.Params{Source: "0", Target: "1", Walks: 1000}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _, err := s.Submit([]task.Spec{spec})
			var shed *task.ShedError
			if !errors.As(err, &shed) {
				b.Fatalf("submit %d not shed: %v", i, err)
			}
			if shed.Reason != wantReason {
				b.Fatalf("submit %d shed with reason %q, want %q", i, shed.Reason, wantReason)
			}
		}
	}

	b.Run("static", func(b *testing.B) {
		gate := make(chan struct{})
		reg := algo.NewRegistry()
		reg.Register(algo.Func{
			AlgoName: "block",
			AlgoDesc: "holds the interactive slot for the benchmark",
			RunFunc: func(ctx context.Context, gr *graph.Graph, p algo.Params) (*ranking.Result, error) {
				select {
				case <-gate:
				case <-ctx.Done():
				}
				return ranking.NewResult("block", gr, make([]float64, gr.NumNodes()))
			},
		})
		s := newScheduler(b, reg, task.AdmissionConfig{
			InteractiveSlots: 1,
			RetryAfter:       time.Second,
		})
		defer func() {
			close(gate)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		}()
		// The blocker owns the slot from the moment Submit returns.
		if _, _, err := s.Submit([]task.Spec{{Dataset: "d", Algorithm: "block"}}); err != nil {
			b.Fatal(err)
		}
		shedLoop(b, s, "slots")
	})

	b.Run("adaptive", func(b *testing.B) {
		const slo = time.Millisecond
		reg := algo.NewRegistry()
		reg.Register(algo.Func{
			AlgoName: "slow",
			AlgoDesc: "overshoots the SLO to arm the slo gate",
			RunFunc: func(ctx context.Context, gr *graph.Graph, p algo.Params) (*ranking.Result, error) {
				time.Sleep(4 * slo)
				return ranking.NewResult("slow", gr, make([]float64, gr.NumNodes()))
			},
		})
		s := newScheduler(b, reg, task.AdmissionConfig{
			InteractiveSlots: 64, // never the binding limit: only the SLO sheds
			SLOInteractive:   slo,
			RetryAfter:       time.Second,
		})
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		}()
		// Breach the objective: enough over-SLO samples to clear the
		// gate's minimum, then wait for the window to see them.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for i := 0; i < 6; i++ {
			id, _, err := s.Submit([]task.Spec{{Dataset: "d", Algorithm: "slow"}})
			if err != nil {
				var shed *task.ShedError
				if errors.As(err, &shed) && shed.Reason == "slo" {
					break // the gate armed mid-loop: breach accomplished
				}
				b.Fatal(err)
			}
			if _, err := s.WaitQuerySet(ctx, id); err != nil {
				b.Fatal(err)
			}
		}
		for s.AdmissionStats().InteractiveP99MS <= float64(slo)/float64(time.Millisecond) {
			if ctx.Err() != nil {
				b.Fatal("p99 never crossed the objective")
			}
			time.Sleep(time.Millisecond)
		}
		shedLoop(b, s, "slo")
	})
}
