package algo

import (
	"context"
	"strings"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// demoGraph is a small labeled community + hub graph usable by every
// algorithm: ref <-> friend1 <-> friend2 <-> ref plus a hub that is
// pointed at by everyone but points back at no one.
func demoGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewLabeledBuilder()
	b.AddLabeledEdge("ref", "friend1")
	b.AddLabeledEdge("friend1", "ref")
	b.AddLabeledEdge("friend1", "friend2")
	b.AddLabeledEdge("friend2", "friend1")
	b.AddLabeledEdge("friend2", "ref")
	b.AddLabeledEdge("ref", "friend2")
	b.AddLabeledEdge("ref", "hub")
	b.AddLabeledEdge("friend1", "hub")
	b.AddLabeledEdge("friend2", "hub")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuiltinRegistryHasAllAlgorithms(t *testing.T) {
	r := NewBuiltinRegistry()
	want := []string{
		Name2DRank, NameCheiRank, NameCycleRank, NamePageRank,
		NamePCheiRank, NameP2DRank, NamePPR, NamePPRMC, NamePPRPush,
		NamePPRTarget, NameBiPPRPair,
	}
	names := r.Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d algorithms (%v), want %d", len(names), names, len(want))
	}
	for _, n := range want {
		if _, err := r.Get(n); err != nil {
			t.Errorf("Get(%q): %v", n, err)
		}
	}
	if len(r.All()) != len(want) {
		t.Errorf("All() returned %d algorithms", len(r.All()))
	}
}

func TestEveryBuiltinRunsOnDemoGraph(t *testing.T) {
	r := NewBuiltinRegistry()
	g := demoGraph(t)
	for _, a := range r.All() {
		t.Run(a.Name(), func(t *testing.T) {
			p := Params{}
			if a.NeedsSource() {
				p.Source = "ref"
			}
			if NeedsTarget(a) {
				p.Target = "friend1"
			}
			res, err := a.Run(context.Background(), g, p)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Algorithm == "" {
				t.Error("result has no algorithm name")
			}
			if len(res.Scores) != g.NumNodes() {
				t.Errorf("got %d scores for %d nodes", len(res.Scores), g.NumNodes())
			}
			if a.Description() == "" {
				t.Error("empty description")
			}
		})
	}
}

func TestCycleRankExcludesHubPPRIncludesIt(t *testing.T) {
	// The platform's raison d'être, via the registry API.
	r := NewBuiltinRegistry()
	g := demoGraph(t)
	hub, _ := g.NodeByLabel("hub")

	cr, err := Run(context.Background(), r, NameCycleRank, g, Params{Source: "ref"})
	if err != nil {
		t.Fatal(err)
	}
	ppr, err := Run(context.Background(), r, NamePPR, g, Params{Source: "ref"})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Score(hub) != 0 {
		t.Errorf("cyclerank scored the no-backlink hub: %v", cr.Score(hub))
	}
	if ppr.Score(hub) == 0 {
		t.Error("ppr did not leak to the hub (expected PPR bias)")
	}
}

func TestRunValidatesSourceRequirement(t *testing.T) {
	r := NewBuiltinRegistry()
	g := demoGraph(t)
	if _, err := Run(context.Background(), r, NameCycleRank, g, Params{}); err == nil {
		t.Error("cyclerank ran without a source")
	}
	if _, err := Run(context.Background(), r, NamePageRank, g, Params{}); err != nil {
		t.Errorf("pagerank without source failed: %v", err)
	}
	if _, err := Run(context.Background(), r, "no-such-algo", g, Params{}); err == nil {
		t.Error("unknown algorithm did not error")
	}
}

func TestRunValidatesTargetRequirement(t *testing.T) {
	r := NewBuiltinRegistry()
	g := demoGraph(t)
	if _, err := Run(context.Background(), r, NamePPRTarget, g, Params{}); err == nil {
		t.Error("ppr-target ran without a target")
	}
	if _, err := Run(context.Background(), r, NameBiPPRPair, g, Params{Source: "ref"}); err == nil {
		t.Error("bippr-pair ran without a target")
	}
	if _, err := Run(context.Background(), r, NameBiPPRPair, g, Params{Target: "ref"}); err == nil {
		t.Error("bippr-pair ran without a source")
	}
	if _, err := Run(context.Background(), r, NamePPRTarget, g, Params{Target: "nobody"}); err == nil {
		t.Error("unknown target label resolved")
	}
}

// targetDemoGraph is demoGraph without the dangling hub, so the
// bidirectional convention coincides exactly with the forward
// engines'.
func targetDemoGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewLabeledBuilder()
	b.AddLabeledEdge("ref", "friend1")
	b.AddLabeledEdge("friend1", "ref")
	b.AddLabeledEdge("friend1", "friend2")
	b.AddLabeledEdge("friend2", "friend1")
	b.AddLabeledEdge("friend2", "ref")
	b.AddLabeledEdge("ref", "friend2")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTargetRankAgreesWithForwardPPR(t *testing.T) {
	// ppr-target's score for source s must match running ppr FROM s
	// and reading the target's score, within the rmax additive bound.
	r := NewBuiltinRegistry()
	g := targetDemoGraph(t)
	const rmax = 1e-6
	tr, err := Run(context.Background(), r, NamePPRTarget, g, Params{Target: "ref", RMax: rmax})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := g.NodeByLabel("ref")
	for _, label := range []string{"friend1", "friend2"} {
		fwd, err := Run(context.Background(), r, NamePPR, g, Params{Source: label, Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		s, _ := g.NodeByLabel(label)
		got, want := tr.Score(s), fwd.Score(ref)
		if diff := want - got; diff < -1e-9 || diff > rmax+1e-9 {
			t.Errorf("relevance of %s to ref: ppr-target %g vs ppr %g", label, got, want)
		}
	}
}

func TestBiPPRPairAgreesWithForwardPPR(t *testing.T) {
	r := NewBuiltinRegistry()
	g := targetDemoGraph(t)
	pair, err := Run(context.Background(), r, NameBiPPRPair, g,
		Params{Source: "friend2", Target: "ref", RMax: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := Run(context.Background(), r, NamePPR, g, Params{Source: "friend2", Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := g.NodeByLabel("ref")
	got, want := pair.Score(ref), fwd.Score(ref)
	if diff := got - want; diff < -1e-3 || diff > 1e-3 {
		t.Errorf("π(friend2, ref): bippr-pair %g vs ppr %g", got, want)
	}
	if top := pair.Top(5); len(top) != 1 || top[0].Label != "ref" {
		t.Errorf("bippr-pair top = %v, want exactly the target", top)
	}
}

func TestResolveTargetErrors(t *testing.T) {
	g := demoGraph(t)
	if _, err := (Params{}).ResolveTarget(g); err == nil {
		t.Error("empty target resolved")
	}
	if _, err := (Params{Target: "missing"}).ResolveTarget(g); err == nil {
		t.Error("unknown target resolved")
	}
	if id, err := (Params{Target: "hub"}).ResolveTarget(g); err != nil || g.Label(id) != "hub" {
		t.Errorf("ResolveTarget(hub) = %v, %v", id, err)
	}
}

func TestResolveSourceErrors(t *testing.T) {
	g := demoGraph(t)
	if _, err := (Params{}).ResolveSource(g); err == nil {
		t.Error("empty source resolved")
	}
	if _, err := (Params{Source: "nobody"}).ResolveSource(g); err == nil {
		t.Error("unknown source resolved")
	}
	id, err := (Params{Source: "ref"}).ResolveSource(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Label(id); got != "ref" {
		t.Errorf("resolved label = %q", got)
	}
}

func TestCycleRankParamPassing(t *testing.T) {
	g := demoGraph(t)
	r := NewBuiltinRegistry()
	// Bad scoring name must surface as an error.
	if _, err := Run(context.Background(), r, NameCycleRank, g, Params{Source: "ref", Scoring: "bogus"}); err == nil {
		t.Error("bogus scoring accepted")
	}
	// Explicit K=2 counts only 2-cycles.
	res, err := Run(context.Background(), r, NameCycleRank, g, Params{Source: "ref", K: 2, Scoring: "const"})
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := g.NodeByLabel("friend2")
	if res.Score(f2) != 1 { // exactly one 2-cycle ref<->friend2
		t.Errorf("friend2 score = %v, want 1 (one 2-cycle, const scoring)", res.Score(f2))
	}
}

func TestRegistryRegisterErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(nil); err == nil {
		t.Error("registered nil algorithm")
	}
	if err := r.Register(Func{}); err == nil {
		t.Error("registered empty-name algorithm")
	}
	a := Func{AlgoName: "x", AlgoDesc: "d"}
	if err := r.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(a); err == nil {
		t.Error("registered duplicate name")
	}
}

func TestCustomAlgorithmPluggable(t *testing.T) {
	// Register an "in-degree" algorithm and run it through the same
	// path as the builtins — the paper's extensibility claim.
	r := NewBuiltinRegistry()
	custom := Func{
		AlgoName: "indegree",
		AlgoDesc: "rank nodes by raw in-degree",
		RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
			scores := make([]float64, g.NumNodes())
			for v := range scores {
				scores[v] = float64(g.InDegree(graph.NodeID(v)))
			}
			return ranking.NewResult("indegree", g, scores)
		},
	}
	if err := r.Register(custom); err != nil {
		t.Fatal(err)
	}
	g := demoGraph(t)
	res, err := Run(context.Background(), r, "indegree", g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Top(1)[0].Label != "hub" {
		t.Errorf("indegree top = %v, want hub", res.Top(1))
	}
}

func TestFuncWithoutRunFunc(t *testing.T) {
	f := Func{AlgoName: "broken"}
	if _, err := f.Run(context.Background(), demoGraph(t), Params{}); err == nil {
		t.Error("nil RunFunc did not error")
	}
}

func TestParamsString(t *testing.T) {
	if got := (Params{}).String(); got != "defaults" {
		t.Errorf("zero Params.String = %q", got)
	}
	s := Params{Source: "Pasta", K: 3, Scoring: "exp", Alpha: 0.3}.String()
	for _, want := range []string{"Pasta", "k=3", "sigma=exp", "alpha=0.3"} {
		if !strings.Contains(s, want) {
			t.Errorf("Params.String %q missing %q", s, want)
		}
	}
}

func TestPPRPushAndMCDefaults(t *testing.T) {
	r := NewBuiltinRegistry()
	g := demoGraph(t)
	for _, name := range []string{NamePPRPush, NamePPRMC} {
		res, err := Run(context.Background(), r, name, g, Params{Source: "ref"})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Score(0) == 0 && res.Sum() == 0 {
			t.Errorf("%s produced an all-zero result", name)
		}
	}
}
