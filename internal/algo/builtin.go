package algo

import (
	"context"
	"fmt"

	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/core"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/pagerank"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// Names of the seven algorithms showcased in the demo, plus the two
// experimental approximate PPR engines and the two bidirectional
// target-relevance engines.
const (
	NameCycleRank = "cyclerank"
	NamePageRank  = "pagerank"
	NamePPR       = "ppr"
	NameCheiRank  = "cheirank"
	NamePCheiRank = "pcheirank"
	Name2DRank    = "2drank"
	NameP2DRank   = "p2drank"
	NamePPRPush   = "ppr-push"
	NamePPRMC     = "ppr-mc"
	NamePPRTarget = bippr.AlgorithmTarget
	NameBiPPRPair = bippr.AlgorithmPair
)

// Default parameter values applied when Params fields are zero.
const (
	DefaultEpsilon = 1e-8
	DefaultWalks   = 10000
	DefaultMCSeed  = 1
)

// NewBuiltinRegistry returns a registry pre-populated with all
// built-in algorithms, backed by a memory-only index cache.
func NewBuiltinRegistry() *Registry {
	return NewBuiltinRegistryWith(bippr.NewEstimator(bippr.DefaultCacheSize))
}

// NewBuiltinRegistryWith is NewBuiltinRegistry with an explicit
// bidirectional estimator — the hook through which serving layers
// plug in a persistent two-tier index store (and keep a handle on its
// stats). A nil estimator selects the memory-only default.
func NewBuiltinRegistryWith(est *bippr.Estimator) *Registry {
	r := NewRegistry()
	for _, a := range BuiltinsWith(est) {
		if err := r.Register(a); err != nil {
			// Builtins have unique hard-coded names; a failure here is
			// a programming error, not a runtime condition.
			panic(err)
		}
	}
	return r
}

// Builtins returns fresh instances of every built-in algorithm. The
// two bidirectional engines share one bippr.Estimator, so repeated
// queries against the same target amortize the reverse push through
// its index cache for the lifetime of the registry.
func Builtins() []Algorithm {
	return BuiltinsWith(nil)
}

// BuiltinsWith is Builtins with an explicit shared bidirectional
// estimator (nil selects a fresh memory-only one).
func BuiltinsWith(est *bippr.Estimator) []Algorithm {
	if est == nil {
		est = bippr.NewEstimator(bippr.DefaultCacheSize)
	}
	return []Algorithm{
		Func{
			AlgoName: NameCycleRank,
			AlgoDesc: "CycleRank: personalized relevance from elementary cycles through the reference node (Consonni et al. 2020)",
			Source:   true,
			RunFunc:  runCycleRank,
		},
		Func{
			AlgoName: NamePageRank,
			AlgoDesc: "PageRank: global relevance as the stationary visit probability of a damped random surfer (Page et al. 1999)",
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				return pagerank.PageRank(ctx, g, prParams(p, nil))
			},
		},
		Func{
			AlgoName: NamePPR,
			AlgoDesc: "Personalized PageRank: random walks restarting at the reference node",
			Source:   true,
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				src, err := p.ResolveSource(g)
				if err != nil {
					return nil, err
				}
				return pagerank.Personalized(ctx, g, prParams(p, []graph.NodeID{src}))
			},
		},
		Func{
			AlgoName: NameCheiRank,
			AlgoDesc: "CheiRank: PageRank on the transposed graph, ranking by outgoing connectivity (Chepelianskii 2010)",
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				return pagerank.CheiRank(ctx, g, prParams(p, nil))
			},
		},
		Func{
			AlgoName: NamePCheiRank,
			AlgoDesc: "Personalized CheiRank: Personalized PageRank on the transposed graph",
			Source:   true,
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				src, err := p.ResolveSource(g)
				if err != nil {
					return nil, err
				}
				return pagerank.PersonalizedCheiRank(ctx, g, prParams(p, []graph.NodeID{src}))
			},
		},
		Func{
			AlgoName: Name2DRank,
			AlgoDesc: "2DRank: combined PageRank/CheiRank square-sweep ranking (Zhirov et al. 2010)",
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				return pagerank.TwoDRank(ctx, g, prParams(p, nil))
			},
		},
		Func{
			AlgoName: NameP2DRank,
			AlgoDesc: "Personalized 2DRank: 2DRank over personalized PageRank and CheiRank orderings",
			Source:   true,
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				src, err := p.ResolveSource(g)
				if err != nil {
					return nil, err
				}
				return pagerank.PersonalizedTwoDRank(ctx, g, prParams(p, []graph.NodeID{src}))
			},
		},
		Func{
			AlgoName: NamePPRPush,
			AlgoDesc: "Approximate Personalized PageRank by local forward push (Andersen-Chung-Lang 2006); experimental",
			Source:   true,
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				src, err := p.ResolveSource(g)
				if err != nil {
					return nil, err
				}
				alpha := p.Alpha
				if alpha == 0 {
					alpha = pagerank.DefaultAlpha
				}
				eps := p.Epsilon
				if eps == 0 {
					eps = DefaultEpsilon
				}
				return pagerank.PushPPR(ctx, g, pagerank.PushParams{
					Alpha:   1 - alpha, // push uses stop probability
					Epsilon: eps,
					Seeds:   []graph.NodeID{src},
				})
			},
		},
		Func{
			AlgoName: NamePPRMC,
			AlgoDesc: "Approximate Personalized PageRank by Monte-Carlo random walks; experimental",
			Source:   true,
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				src, err := p.ResolveSource(g)
				if err != nil {
					return nil, err
				}
				alpha := p.Alpha
				if alpha == 0 {
					alpha = pagerank.DefaultAlpha
				}
				walks := p.Walks
				if walks == 0 {
					walks = DefaultWalks
				}
				seed := p.Seed
				if seed == 0 {
					seed = DefaultMCSeed
				}
				return pagerank.MonteCarloPPR(ctx, g, pagerank.MCParams{
					Alpha: alpha,
					Walks: walks,
					Seeds: []graph.NodeID{src},
					Seed:  seed,
				})
			},
		},
		Func{
			AlgoName: NamePPRTarget,
			AlgoDesc: "Target-node PPR: rank every node by its relevance TO the target via reverse push (Lofgren-Goel 2013)",
			Target:   true,
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				tgt, err := p.ResolveTarget(g)
				if err != nil {
					return nil, err
				}
				return est.TargetRank(ctx, g, tgt, bipprParams(p))
			},
		},
		Func{
			AlgoName: NameBiPPRPair,
			AlgoDesc: "Bidirectional PPR: fast source→target pair estimate by reverse push plus forward walks (Lofgren et al. 2016)",
			Source:   true,
			Target:   true,
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				src, err := p.ResolveSource(g)
				if err != nil {
					return nil, err
				}
				tgt, err := p.ResolveTarget(g)
				if err != nil {
					return nil, err
				}
				pair, err := est.Pair(ctx, g, src, tgt, bipprParams(p))
				if err != nil {
					return nil, err
				}
				// The pair estimate is a single number; report it as the
				// target's score so it flows through the platform's
				// result pipeline (top lists, tables, persistence). An
				// unreachable pair estimates to exactly 0 and yields an
				// empty top list — the platform-wide convention for "no
				// relevance" (CycleRank with no cycles behaves the same).
				scores := make([]float64, g.NumNodes())
				scores[tgt] = pair.Value
				res, err := ranking.NewResult(NameBiPPRPair, g, scores)
				if err != nil {
					return nil, err
				}
				res.Iterations = pair.Walks + int(pair.Pushes)
				return res, nil
			},
		},
	}
}

// bipprParams translates the shared Params into bippr.Params; zero
// fields fall through to the bippr defaults.
func bipprParams(p Params) bippr.Params {
	return bippr.Params{
		Alpha:          p.Alpha,
		RMax:           p.RMax,
		Walks:          p.Walks,
		Eps:            p.Eps,
		Seed:           p.Seed,
		Workers:        p.Workers,
		ReuseEndpoints: p.WalkReuse,
	}
}

func runCycleRank(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
	src, err := p.ResolveSource(g)
	if err != nil {
		return nil, err
	}
	k := p.K
	if k == 0 {
		k = core.DefaultK
	}
	name := p.Scoring
	if name == "" {
		name = core.ScoringExponential
	}
	fn, err := core.ScoringByName(name)
	if err != nil {
		return nil, err
	}
	return core.Compute(ctx, g, src, core.Params{K: k, Scoring: fn, ScoringName: name})
}

// prParams translates the shared Params into pagerank.Params with
// defaults applied.
func prParams(p Params, seeds []graph.NodeID) pagerank.Params {
	alpha := p.Alpha
	if alpha == 0 {
		alpha = pagerank.DefaultAlpha
	}
	return pagerank.Params{
		Alpha:   alpha,
		Tol:     p.Tol,
		MaxIter: p.MaxIter,
		Seeds:   seeds,
	}
}

// Run is a convenience: resolve name in r and execute it, validating
// the source requirement up front for a clearer error.
func Run(ctx context.Context, r *Registry, name string, g *graph.Graph, p Params) (*ranking.Result, error) {
	a, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	if a.NeedsSource() && p.Source == "" {
		return nil, fmt.Errorf("algo: %s requires a source node", name)
	}
	if NeedsTarget(a) && p.Target == "" {
		return nil, fmt.Errorf("algo: %s requires a target node", name)
	}
	return a.Run(ctx, g, p)
}
