package algo

import (
	"context"
	"fmt"

	"github.com/cyclerank/cyclerank-go/internal/core"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/pagerank"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// Names of the seven algorithms showcased in the demo, plus the two
// experimental approximate PPR engines.
const (
	NameCycleRank = "cyclerank"
	NamePageRank  = "pagerank"
	NamePPR       = "ppr"
	NameCheiRank  = "cheirank"
	NamePCheiRank = "pcheirank"
	Name2DRank    = "2drank"
	NameP2DRank   = "p2drank"
	NamePPRPush   = "ppr-push"
	NamePPRMC     = "ppr-mc"
)

// Default parameter values applied when Params fields are zero.
const (
	DefaultEpsilon = 1e-8
	DefaultWalks   = 10000
	DefaultMCSeed  = 1
)

// NewBuiltinRegistry returns a registry pre-populated with all
// built-in algorithms.
func NewBuiltinRegistry() *Registry {
	r := NewRegistry()
	for _, a := range Builtins() {
		if err := r.Register(a); err != nil {
			// Builtins have unique hard-coded names; a failure here is
			// a programming error, not a runtime condition.
			panic(err)
		}
	}
	return r
}

// Builtins returns fresh instances of every built-in algorithm.
func Builtins() []Algorithm {
	return []Algorithm{
		Func{
			AlgoName: NameCycleRank,
			AlgoDesc: "CycleRank: personalized relevance from elementary cycles through the reference node (Consonni et al. 2020)",
			Source:   true,
			RunFunc:  runCycleRank,
		},
		Func{
			AlgoName: NamePageRank,
			AlgoDesc: "PageRank: global relevance as the stationary visit probability of a damped random surfer (Page et al. 1999)",
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				return pagerank.PageRank(ctx, g, prParams(p, nil))
			},
		},
		Func{
			AlgoName: NamePPR,
			AlgoDesc: "Personalized PageRank: random walks restarting at the reference node",
			Source:   true,
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				src, err := p.ResolveSource(g)
				if err != nil {
					return nil, err
				}
				return pagerank.Personalized(ctx, g, prParams(p, []graph.NodeID{src}))
			},
		},
		Func{
			AlgoName: NameCheiRank,
			AlgoDesc: "CheiRank: PageRank on the transposed graph, ranking by outgoing connectivity (Chepelianskii 2010)",
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				return pagerank.CheiRank(ctx, g, prParams(p, nil))
			},
		},
		Func{
			AlgoName: NamePCheiRank,
			AlgoDesc: "Personalized CheiRank: Personalized PageRank on the transposed graph",
			Source:   true,
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				src, err := p.ResolveSource(g)
				if err != nil {
					return nil, err
				}
				return pagerank.PersonalizedCheiRank(ctx, g, prParams(p, []graph.NodeID{src}))
			},
		},
		Func{
			AlgoName: Name2DRank,
			AlgoDesc: "2DRank: combined PageRank/CheiRank square-sweep ranking (Zhirov et al. 2010)",
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				return pagerank.TwoDRank(ctx, g, prParams(p, nil))
			},
		},
		Func{
			AlgoName: NameP2DRank,
			AlgoDesc: "Personalized 2DRank: 2DRank over personalized PageRank and CheiRank orderings",
			Source:   true,
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				src, err := p.ResolveSource(g)
				if err != nil {
					return nil, err
				}
				return pagerank.PersonalizedTwoDRank(ctx, g, prParams(p, []graph.NodeID{src}))
			},
		},
		Func{
			AlgoName: NamePPRPush,
			AlgoDesc: "Approximate Personalized PageRank by local forward push (Andersen-Chung-Lang 2006); experimental",
			Source:   true,
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				src, err := p.ResolveSource(g)
				if err != nil {
					return nil, err
				}
				alpha := p.Alpha
				if alpha == 0 {
					alpha = pagerank.DefaultAlpha
				}
				eps := p.Epsilon
				if eps == 0 {
					eps = DefaultEpsilon
				}
				return pagerank.PushPPR(ctx, g, pagerank.PushParams{
					Alpha:   1 - alpha, // push uses stop probability
					Epsilon: eps,
					Seeds:   []graph.NodeID{src},
				})
			},
		},
		Func{
			AlgoName: NamePPRMC,
			AlgoDesc: "Approximate Personalized PageRank by Monte-Carlo random walks; experimental",
			Source:   true,
			RunFunc: func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
				src, err := p.ResolveSource(g)
				if err != nil {
					return nil, err
				}
				alpha := p.Alpha
				if alpha == 0 {
					alpha = pagerank.DefaultAlpha
				}
				walks := p.Walks
				if walks == 0 {
					walks = DefaultWalks
				}
				seed := p.Seed
				if seed == 0 {
					seed = DefaultMCSeed
				}
				return pagerank.MonteCarloPPR(ctx, g, pagerank.MCParams{
					Alpha: alpha,
					Walks: walks,
					Seeds: []graph.NodeID{src},
					Seed:  seed,
				})
			},
		},
	}
}

func runCycleRank(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
	src, err := p.ResolveSource(g)
	if err != nil {
		return nil, err
	}
	k := p.K
	if k == 0 {
		k = core.DefaultK
	}
	name := p.Scoring
	if name == "" {
		name = core.ScoringExponential
	}
	fn, err := core.ScoringByName(name)
	if err != nil {
		return nil, err
	}
	return core.Compute(ctx, g, src, core.Params{K: k, Scoring: fn, ScoringName: name})
}

// prParams translates the shared Params into pagerank.Params with
// defaults applied.
func prParams(p Params, seeds []graph.NodeID) pagerank.Params {
	alpha := p.Alpha
	if alpha == 0 {
		alpha = pagerank.DefaultAlpha
	}
	return pagerank.Params{
		Alpha:   alpha,
		Tol:     p.Tol,
		MaxIter: p.MaxIter,
		Seeds:   seeds,
	}
}

// Run is a convenience: resolve name in r and execute it, validating
// the source requirement up front for a clearer error.
func Run(ctx context.Context, r *Registry, name string, g *graph.Graph, p Params) (*ranking.Result, error) {
	a, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	if a.NeedsSource() && p.Source == "" {
		return nil, fmt.Errorf("algo: %s requires a source node", name)
	}
	return a.Run(ctx, g, p)
}
