// Package algo defines the common Algorithm interface all relevance
// algorithms implement, a parameter schema shared by the platform's
// API, and a registry through which new algorithms can be plugged in —
// the extension point the demo paper advertises ("new algorithms can
// be easily added").
package algo

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// Params is the union of all parameters accepted by the built-in
// algorithms; each algorithm validates and uses the subset it
// understands, ignoring the rest. A zero value selects every default.
type Params struct {
	// Source is the label of the reference node; required by
	// personalized algorithms, ignored by global ones.
	Source string `json:"source,omitempty"`
	// K is CycleRank's maximum cycle length (default 3).
	K int `json:"k,omitempty"`
	// Scoring is CycleRank's scoring function name: exp, lin, quad or
	// const (default exp).
	Scoring string `json:"scoring,omitempty"`
	// Alpha is the damping / transition probability of the PageRank
	// family (default 0.85).
	Alpha float64 `json:"alpha,omitempty"`
	// Tol is the power-iteration convergence tolerance (default 1e-10).
	Tol float64 `json:"tol,omitempty"`
	// MaxIter caps power iterations (default 200).
	MaxIter int `json:"max_iter,omitempty"`
	// Epsilon is the forward-push residual threshold (default 1e-8).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Walks is the random-walk count per seed of the Monte-Carlo and
	// bidirectional engines (default 10000).
	Walks int `json:"walks,omitempty"`
	// Seed is the random-walk RNG seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Target is the label of the target node; required by
	// target-relevance algorithms (ppr-target, bippr-pair), ignored by
	// the rest.
	Target string `json:"target,omitempty"`
	// RMax is the reverse-push residual threshold of the bidirectional
	// engines (default 1e-4).
	RMax float64 `json:"rmax,omitempty"`
	// Eps is the requested additive error of a bippr-pair walk
	// correction; when positive, the walk count is derived from RMax
	// and Eps instead of Walks (the adaptive budget of Lofgren's
	// bidirectional analysis).
	Eps float64 `json:"eps,omitempty"`
	// Workers sizes the bidirectional engines' walk worker pool
	// (bounded by GOMAXPROCS; default 1). Estimates are bit-identical
	// for every value — sharding only changes latency.
	Workers int `json:"workers,omitempty"`
	// WalkReuse opts a bippr-pair query into the walk-endpoint cache:
	// repeated queries from one source (against different targets)
	// re-weight recorded walk endpoints instead of re-walking.
	// Estimates are bit-identical either way. Default off.
	WalkReuse bool `json:"walk_reuse,omitempty"`
}

// String renders the parameters compactly for logs and task listings.
func (p Params) String() string {
	s := ""
	if p.Source != "" {
		s += fmt.Sprintf("source=%q ", p.Source)
	}
	if p.Target != "" {
		s += fmt.Sprintf("target=%q ", p.Target)
	}
	if p.K != 0 {
		s += fmt.Sprintf("k=%d ", p.K)
	}
	if p.Scoring != "" {
		s += fmt.Sprintf("sigma=%s ", p.Scoring)
	}
	if p.Alpha != 0 {
		s += fmt.Sprintf("alpha=%g ", p.Alpha)
	}
	if p.RMax != 0 {
		s += fmt.Sprintf("rmax=%g ", p.RMax)
	}
	if p.Eps != 0 {
		s += fmt.Sprintf("eps=%g ", p.Eps)
	}
	if p.Workers != 0 {
		s += fmt.Sprintf("workers=%d ", p.Workers)
	}
	if p.WalkReuse {
		s += "walk-reuse "
	}
	if s == "" {
		return "defaults"
	}
	return s[:len(s)-1]
}

// Validate rejects parameter values no built-in algorithm accepts, so
// the task builder can refuse a bad query at Add time instead of
// failing it after scheduling. Zero values are always valid (they
// select defaults); algorithm-specific constraints (e.g. unknown
// scoring names) still surface at Run time.
func (p Params) Validate() error {
	if p.K < 0 {
		return fmt.Errorf("algo: k=%d must not be negative", p.K)
	}
	if p.Alpha < 0 || p.Alpha >= 1 {
		return fmt.Errorf("algo: alpha=%g outside [0,1)", p.Alpha)
	}
	if p.Tol < 0 {
		return fmt.Errorf("algo: tol=%g must not be negative", p.Tol)
	}
	if p.MaxIter < 0 {
		return fmt.Errorf("algo: max_iter=%d must not be negative", p.MaxIter)
	}
	if p.Epsilon < 0 {
		return fmt.Errorf("algo: epsilon=%g must not be negative", p.Epsilon)
	}
	if p.Walks < 0 {
		return fmt.Errorf("algo: walks=%d must not be negative", p.Walks)
	}
	if p.Walks > bippr.MaxWalks {
		return fmt.Errorf("algo: walks=%d exceeds the cap %d", p.Walks, bippr.MaxWalks)
	}
	if p.RMax < 0 {
		return fmt.Errorf("algo: rmax=%g must not be negative", p.RMax)
	}
	if p.Eps < 0 {
		return fmt.Errorf("algo: eps=%g must not be negative", p.Eps)
	}
	if p.Workers < 0 {
		return fmt.Errorf("algo: workers=%d must not be negative", p.Workers)
	}
	return nil
}

// ResolveSource maps p.Source to a node of g, reporting a descriptive
// error when the label is missing or unknown.
func (p Params) ResolveSource(g *graph.Graph) (graph.NodeID, error) {
	if p.Source == "" {
		return 0, fmt.Errorf("algo: parameter %q is required", "source")
	}
	id, ok := g.NodeByLabel(p.Source)
	if !ok {
		return 0, fmt.Errorf("algo: source node %q not found in graph", p.Source)
	}
	return id, nil
}

// ResolveTarget maps p.Target to a node of g, reporting a descriptive
// error when the label is missing or unknown.
func (p Params) ResolveTarget(g *graph.Graph) (graph.NodeID, error) {
	if p.Target == "" {
		return 0, fmt.Errorf("algo: parameter %q is required", "target")
	}
	id, ok := g.NodeByLabel(p.Target)
	if !ok {
		return 0, fmt.Errorf("algo: target node %q not found in graph", p.Target)
	}
	return id, nil
}

// Algorithm is a personalized or global relevance algorithm runnable
// by the platform.
type Algorithm interface {
	// Name is the unique registry key, e.g. "cyclerank".
	Name() string
	// Description is a one-line human-readable summary shown by the
	// UI and CLI.
	Description() string
	// NeedsSource reports whether the algorithm requires a reference
	// node (Params.Source).
	NeedsSource() bool
	// Run executes the algorithm on g.
	Run(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error)
}

// TargetAware is the optional interface of algorithms that rank
// relevance TO a node and therefore require Params.Target. It is
// separate from Algorithm so that existing implementations (including
// third-party ones plugged into the registry) keep compiling
// unchanged.
type TargetAware interface {
	// NeedsTarget reports whether the algorithm requires a target node
	// (Params.Target).
	NeedsTarget() bool
}

// NeedsTarget reports whether a requires Params.Target, tolerating
// algorithms that predate the TargetAware interface.
func NeedsTarget(a Algorithm) bool {
	t, ok := a.(TargetAware)
	return ok && t.NeedsTarget()
}

// Registry is a concurrency-safe collection of algorithms.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Algorithm
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Algorithm)}
}

// Register adds a to the registry, rejecting empty and duplicate
// names.
func (r *Registry) Register(a Algorithm) error {
	if a == nil || a.Name() == "" {
		return fmt.Errorf("algo: cannot register algorithm with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[a.Name()]; dup {
		return fmt.Errorf("algo: algorithm %q already registered", a.Name())
	}
	r.byName[a.Name()] = a
	return nil
}

// Get resolves a registered algorithm by name.
func (r *Registry) Get(name string) (Algorithm, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("algo: unknown algorithm %q (available: %v)", name, r.namesLocked())
	}
	return a, nil
}

// Names returns the registered algorithm names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the registered algorithms sorted by name.
func (r *Registry) All() []Algorithm {
	r.mu.RLock()
	defer r.mu.RUnlock()
	algos := make([]Algorithm, 0, len(r.byName))
	for _, name := range r.namesLocked() {
		algos = append(algos, r.byName[name])
	}
	return algos
}

// Func adapts a function (plus metadata) into an Algorithm, the
// easiest path for plugging in custom algorithms.
type Func struct {
	AlgoName string
	AlgoDesc string
	Source   bool
	Target   bool
	RunFunc  func(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error)
}

// Name implements Algorithm.
func (f Func) Name() string { return f.AlgoName }

// Description implements Algorithm.
func (f Func) Description() string { return f.AlgoDesc }

// NeedsSource implements Algorithm.
func (f Func) NeedsSource() bool { return f.Source }

// NeedsTarget implements TargetAware.
func (f Func) NeedsTarget() bool { return f.Target }

// Run implements Algorithm.
func (f Func) Run(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
	if f.RunFunc == nil {
		return nil, fmt.Errorf("algo: %s has no run function", f.AlgoName)
	}
	return f.RunFunc(ctx, g, p)
}
