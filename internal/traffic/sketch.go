// Package traffic learns the query workload so the serving tier can
// act on it: a count-min sketch estimates how often each warmable
// (source, params) key has been requested, and an exact top-K table
// tracks the heavy hitters worth pre-warming after a restart.
//
// The sketch is deliberately tiny and dependency-free: fixed-size
// uint32 count matrix, deterministic FNV-1a double hashing (the hash
// seeds are part of the format, so a persisted sketch keeps counting
// the same cells after a reboot), and a versioned, CRC-guarded binary
// codec where EVERY corruption mode decodes as a cold sketch —
// corruption costs warmth, never correctness.
package traffic

import (
	"hash/fnv"
	"sort"
	"sync"
)

// Sketch dimension defaults: 4 rows × 1024 counters = 16 KiB, which
// over-counts a key by more than ~2·N/1024 with probability ≤ e⁻⁴ for
// N total recordings — plenty for ranking pre-warm candidates.
const (
	DefaultWidth = 1024
	DefaultDepth = 4
	DefaultTopK  = 32
)

// Hard bounds the decoder enforces before allocating, so a corrupt or
// adversarial header cannot balloon memory.
const (
	maxWidth  = 1 << 20
	maxDepth  = 16
	maxTopK   = 1 << 16
	maxKeyLen = 4096
)

// KeyCount is one heavy hitter: a warm key and its (exact) count.
type KeyCount struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
}

// Sketch is a thread-safe query-frequency sketch: count-min counters
// for the long tail plus an exact count table for keys that ever
// entered the top K. Zero value is not usable; call New.
type Sketch struct {
	mu         sync.Mutex
	width      int
	depth      int
	topK       int
	counts     []uint32          // depth rows of width counters
	top        map[string]uint64 // exact counts for current heavy hitters
	recorded   uint64            // total Record calls
	decayEpoch uint64            // completed Decay passes (survives restarts)

	// cal carries the serving tier's cost-calibration state so it
	// persists and restores alongside the workload counts — the two
	// halves of "what the previous boot learned". The sketch only
	// stores it; the scheduler's calibrator owns the arithmetic.
	cal map[string]Calibration
}

// Calibration is one algorithm family's persisted cost-calibration
// state: the EWMA of observed work units per millisecond plus how many
// completed tasks fed it.
type Calibration struct {
	UnitsPerMS   float64 `json:"units_per_ms"`
	Observations uint64  `json:"observations"`
}

// New returns an empty sketch with default dimensions keeping up to
// topK heavy hitters (topK <= 0 selects DefaultTopK).
func New(topK int) *Sketch {
	if topK <= 0 {
		topK = DefaultTopK
	}
	if topK > maxTopK {
		topK = maxTopK
	}
	return &Sketch{
		width:  DefaultWidth,
		depth:  DefaultDepth,
		topK:   topK,
		counts: make([]uint32, DefaultWidth*DefaultDepth),
		top:    make(map[string]uint64),
		cal:    make(map[string]Calibration),
	}
}

// hashPair derives the two FNV-1a 64 halves used for double hashing.
// Deterministic across processes and architectures by construction —
// a reloaded sketch must keep addressing the same counters.
func hashPair(key string) (h1, h2 uint64) {
	f := fnv.New64a()
	f.Write([]byte(key))
	h := f.Sum64()
	h1 = h
	// Second hash: rehash with a one-byte salt so h2 is independent of
	// h1; force it odd so i*h2 walks the whole row.
	f.Write([]byte{0x9e})
	h2 = f.Sum64() | 1
	return h1, h2
}

// Record counts one observation of key.
func (s *Sketch) Record(key string) {
	if key == "" {
		return
	}
	h1, h2 := hashPair(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recorded++
	est := uint32(1<<32 - 1)
	for row := 0; row < s.depth; row++ {
		i := (h1 + uint64(row)*h2) % uint64(s.width)
		c := &s.counts[row*s.width+int(i)]
		if *c != 1<<32-1 { // saturating
			*c++
		}
		if *c < est {
			est = *c
		}
	}
	s.updateTopLocked(key, uint64(est))
}

// updateTopLocked keeps the exact heavy-hitter table: a key already
// tracked increments exactly; a new key enters when the table has
// room or its sketch estimate beats the current minimum.
func (s *Sketch) updateTopLocked(key string, est uint64) {
	if c, ok := s.top[key]; ok {
		s.top[key] = c + 1
		return
	}
	if len(s.top) < s.topK {
		s.top[key] = 1
		return
	}
	minKey, minCount := "", uint64(1<<63)
	for k, c := range s.top {
		if c < minCount || (c == minCount && k > minKey) {
			minKey, minCount = k, c
		}
	}
	if est > minCount {
		delete(s.top, minKey)
		// Seed with the sketch estimate: the exact history is lost, and
		// the estimate is the best (slightly optimistic) reconstruction.
		s.top[key] = est
	}
}

// Count returns the best available count for key: the exact value when
// key is a current heavy hitter (so Count and TopK can never disagree
// about the keys that matter), the count-min (over-)estimate for the
// long tail.
func (s *Sketch) Count(key string) uint64 {
	h1, h2 := hashPair(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.top[key]; ok {
		return c
	}
	est := uint32(1<<32 - 1)
	for row := 0; row < s.depth; row++ {
		i := (h1 + uint64(row)*h2) % uint64(s.width)
		if c := s.counts[row*s.width+int(i)]; c < est {
			est = c
		}
	}
	return uint64(est)
}

// Decay halves every count-min counter and every heavy-hitter count,
// dropping top entries that reach zero — the periodic aging pass that
// lets yesterday's hot keys fall out of the pre-warm pin set instead
// of pinning forever. Integer halving guarantees convergence: a key
// that stops being requested reaches zero after at most log2(count)+1
// passes. The completed pass count travels with the codec (v2) so a
// restored sketch keeps aging from where it left off.
func (s *Sketch) Decay() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.counts {
		s.counts[i] >>= 1
	}
	for k, c := range s.top {
		c >>= 1
		if c == 0 {
			delete(s.top, k)
		} else {
			s.top[k] = c
		}
	}
	s.decayEpoch++
}

// SetCalibrations replaces the persisted cost-calibration state the
// sketch carries. The map is copied; families with zero observations
// are dropped.
func (s *Sketch) SetCalibrations(cal map[string]Calibration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cal = make(map[string]Calibration, len(cal))
	for fam, c := range cal {
		if c.Observations > 0 {
			s.cal[fam] = c
		}
	}
}

// Calibrations returns a copy of the carried cost-calibration state.
func (s *Sketch) Calibrations() map[string]Calibration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Calibration, len(s.cal))
	for fam, c := range s.cal {
		out[fam] = c
	}
	return out
}

// TopK returns the heavy hitters, highest count first (key ascending
// on ties, so the order — and everything pre-warm derives from it —
// is deterministic).
func (s *Sketch) TopK() []KeyCount {
	s.mu.Lock()
	out := make([]KeyCount, 0, len(s.top))
	for k, c := range s.top {
		out = append(out, KeyCount{Key: k, Count: c})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Stats is a sketch snapshot for status endpoints.
type Stats struct {
	Recorded uint64 `json:"recorded"`
	Tracked  int    `json:"tracked"`
	TopK     int    `json:"top_k"`
	Width    int    `json:"width"`
	Depth    int    `json:"depth"`
	// DecayEpoch counts completed Decay passes over the sketch's
	// lifetime, including passes run by previous processes.
	DecayEpoch uint64 `json:"decay_epoch"`
}

// Stats returns a snapshot of the sketch's shape and fill.
func (s *Sketch) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Recorded:   s.recorded,
		Tracked:    len(s.top),
		TopK:       s.topK,
		Width:      s.width,
		Depth:      s.depth,
		DecayEpoch: s.decayEpoch,
	}
}
