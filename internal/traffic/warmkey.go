package traffic

import (
	"fmt"
	"math"
	"net/url"
	"strconv"
	"strings"
)

// Warm-key kinds: which artifact a recorded key would pre-warm.
const (
	// KindIndex is a reverse-push target index (.idx artifact), keyed
	// by (dataset, target, alpha, rmax).
	KindIndex = "idx"
	// KindEndpoints is a walk-endpoint recording (.ep artifact), keyed
	// by (dataset, source, alpha, seed, maxSteps, walks).
	KindEndpoints = "ep"
)

// WarmKey identifies one warmable artifact in workload terms: the
// dataset and node LABELS plus the exact parameters the queries used.
// Its string form is what the Sketch counts, so the pre-warm task can
// parse the top-K back and recompute precisely the artifacts the
// observed traffic would hit.
//
// Floats travel as IEEE-754 bit patterns, not decimal, because the
// artifact caches key on exact float values — a key that round-trips
// through decimal could warm a neighboring cache entry instead.
type WarmKey struct {
	Kind     string  // KindIndex or KindEndpoints
	Dataset  string  // dataset name
	Node     string  // target label (idx) or source label (ep)
	Alpha    float64 // damping
	RMax     float64 // idx only
	Seed     int64   // ep only
	MaxSteps int     // ep only
	Walks    int     // ep only
}

// String encodes the key into its sketch form:
//
//	idx|dataset|node|a<bits>|r<bits>
//	ep|dataset|node|a<bits>|s<seed>|m<maxSteps>|w<walks>
//
// Dataset and node are query-escaped so labels may contain '|'.
func (k WarmKey) String() string {
	ds, node := url.QueryEscape(k.Dataset), url.QueryEscape(k.Node)
	switch k.Kind {
	case KindIndex:
		return fmt.Sprintf("idx|%s|%s|a%016x|r%016x", ds, node,
			math.Float64bits(k.Alpha), math.Float64bits(k.RMax))
	case KindEndpoints:
		return fmt.Sprintf("ep|%s|%s|a%016x|s%d|m%d|w%d", ds, node,
			math.Float64bits(k.Alpha), k.Seed, k.MaxSteps, k.Walks)
	}
	return ""
}

// ParseWarmKey decodes a sketch key back into a WarmKey. Unparseable
// keys (e.g. from a future format) return an error; pre-warm skips
// them.
func ParseWarmKey(s string) (WarmKey, error) {
	parts := strings.Split(s, "|")
	if len(parts) < 3 {
		return WarmKey{}, fmt.Errorf("traffic: warm key %q: too few fields", s)
	}
	ds, err := url.QueryUnescape(parts[1])
	if err != nil {
		return WarmKey{}, fmt.Errorf("traffic: warm key %q: dataset: %w", s, err)
	}
	node, err := url.QueryUnescape(parts[2])
	if err != nil {
		return WarmKey{}, fmt.Errorf("traffic: warm key %q: node: %w", s, err)
	}
	k := WarmKey{Kind: parts[0], Dataset: ds, Node: node}
	rest := parts[3:]
	switch k.Kind {
	case KindIndex:
		if len(rest) != 2 {
			return WarmKey{}, fmt.Errorf("traffic: warm key %q: idx wants 2 params, got %d", s, len(rest))
		}
		if k.Alpha, err = parseFloatBits(rest[0], 'a'); err == nil {
			k.RMax, err = parseFloatBits(rest[1], 'r')
		}
		if err != nil {
			return WarmKey{}, fmt.Errorf("traffic: warm key %q: %w", s, err)
		}
	case KindEndpoints:
		if len(rest) != 4 {
			return WarmKey{}, fmt.Errorf("traffic: warm key %q: ep wants 4 params, got %d", s, len(rest))
		}
		if k.Alpha, err = parseFloatBits(rest[0], 'a'); err != nil {
			return WarmKey{}, fmt.Errorf("traffic: warm key %q: %w", s, err)
		}
		var seed, steps, walks int64
		if seed, err = parseInt(rest[1], 's'); err == nil {
			if steps, err = parseInt(rest[2], 'm'); err == nil {
				walks, err = parseInt(rest[3], 'w')
			}
		}
		if err != nil {
			return WarmKey{}, fmt.Errorf("traffic: warm key %q: %w", s, err)
		}
		k.Seed, k.MaxSteps, k.Walks = seed, int(steps), int(walks)
	default:
		return WarmKey{}, fmt.Errorf("traffic: warm key %q: unknown kind %q", s, k.Kind)
	}
	return k, nil
}

func parseFloatBits(field string, prefix byte) (float64, error) {
	if len(field) == 0 || field[0] != prefix {
		return 0, fmt.Errorf("field %q: want prefix %q", field, string(prefix))
	}
	bits, err := strconv.ParseUint(field[1:], 16, 64)
	if err != nil {
		return 0, fmt.Errorf("field %q: %w", field, err)
	}
	return math.Float64frombits(bits), nil
}

func parseInt(field string, prefix byte) (int64, error) {
	if len(field) == 0 || field[0] != prefix {
		return 0, fmt.Errorf("field %q: want prefix %q", field, string(prefix))
	}
	v, err := strconv.ParseInt(field[1:], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("field %q: %w", field, err)
	}
	return v, nil
}
