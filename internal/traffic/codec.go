package traffic

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Binary layout of a persisted sketch (little-endian):
//
//	version  uint16   sketchCodecVersion
//	width    uint32
//	depth    uint32
//	topK     uint32
//	recorded uint64
//	epoch    uint64   completed decay passes           (v2 only)
//	counts   width·depth × uint32
//	nTop     uint32
//	entries  nTop × (keyLen uint16, key bytes, count uint64)
//	nCal     uint32                                    (v2 only)
//	cals     nCal × (famLen uint16, family bytes,      (v2 only)
//	                 unitsPerMS float64 bits, observations uint64)
//	crc32    uint32   IEEE checksum of everything above
//
// v2 added the decay epoch and the cost-calibration entries; Encode
// writes v2 and Decode dispatches on the version field, so v1
// artifacts written by older processes keep loading (epoch 0, no
// calibration — exactly the state a v1 process was in).
//
// The trailing checksum plus the version field make loads
// corruption-tolerant in the PR 3/5 artifact style — but with a
// softer consumer contract: the sketch is pure optimization state, so
// callers use Load, which turns ANY decode failure (future version,
// truncation, bit flip) into a cold sketch. Corruption costs warmth,
// never correctness.
const (
	sketchCodecV1      = 1
	sketchCodecVersion = 2
)

// maxCalEntries bounds the calibration section the decoder will
// allocate for: there is one entry per algorithm family, a handful in
// practice.
const maxCalEntries = 1 << 10

// ErrSketchCorrupt reports a persisted sketch that failed structural
// validation or its checksum.
var ErrSketchCorrupt = errors.New("traffic: sketch artifact corrupt")

// ErrSketchVersion reports a persisted sketch written by a different
// codec version.
var ErrSketchVersion = errors.New("traffic: sketch artifact version mismatch")

// Encode serializes the sketch into the current (v2) binary format.
func (s *Sketch) Encode() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	writeU16(&buf, sketchCodecVersion)
	writeU32(&buf, uint32(s.width))
	writeU32(&buf, uint32(s.depth))
	writeU32(&buf, uint32(s.topK))
	writeU64(&buf, s.recorded)
	writeU64(&buf, s.decayEpoch)
	for _, c := range s.counts {
		writeU32(&buf, c)
	}
	s.encodeTopLocked(&buf)
	// Calibration entries, family-sorted for deterministic bytes.
	fams := make([]string, 0, len(s.cal))
	for fam := range s.cal {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	writeU32(&buf, uint32(len(fams)))
	for _, fam := range fams {
		c := s.cal[fam]
		writeU16(&buf, uint16(len(fam)))
		buf.WriteString(fam)
		writeU64(&buf, math.Float64bits(c.UnitsPerMS))
		writeU64(&buf, c.Observations)
	}
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes()
}

// EncodeV1 serializes the sketch into the legacy v1 format — no decay
// epoch, no calibration entries. Exported for mixed-version tests and
// for rollback tooling; new writes use Encode.
func (s *Sketch) EncodeV1() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	writeU16(&buf, sketchCodecV1)
	writeU32(&buf, uint32(s.width))
	writeU32(&buf, uint32(s.depth))
	writeU32(&buf, uint32(s.topK))
	writeU64(&buf, s.recorded)
	for _, c := range s.counts {
		writeU32(&buf, c)
	}
	s.encodeTopLocked(&buf)
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes()
}

// encodeTopLocked appends the heavy-hitter section shared by both
// codec versions, in deterministic (TopK) order so identical sketches
// encode identically.
func (s *Sketch) encodeTopLocked(buf *bytes.Buffer) {
	top := make([]KeyCount, 0, len(s.top))
	for k, c := range s.top {
		top = append(top, KeyCount{Key: k, Count: c})
	}
	sortKeyCounts(top)
	writeU32(buf, uint32(len(top)))
	for _, kc := range top {
		writeU16(buf, uint16(len(kc.Key)))
		buf.WriteString(kc.Key)
		writeU64(buf, kc.Count)
	}
}

// Decode parses a persisted sketch, distinguishing version mismatch
// from corruption for callers that care; most should use Load.
func Decode(data []byte) (*Sketch, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: %d bytes, shorter than checksum", ErrSketchCorrupt, len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSketchCorrupt)
	}
	r := byteReader{data: body}
	version, err := r.u16()
	if err != nil {
		return nil, err
	}
	if version != sketchCodecV1 && version != sketchCodecVersion {
		return nil, fmt.Errorf("%w: file version %d, codec version %d",
			ErrSketchVersion, version, sketchCodecVersion)
	}
	width, err := r.u32()
	if err != nil {
		return nil, err
	}
	depth, err := r.u32()
	if err != nil {
		return nil, err
	}
	topK, err := r.u32()
	if err != nil {
		return nil, err
	}
	if width == 0 || width > maxWidth || depth == 0 || depth > maxDepth || topK == 0 || topK > maxTopK {
		return nil, fmt.Errorf("%w: implausible dimensions %dx%d topK %d", ErrSketchCorrupt, width, depth, topK)
	}
	recorded, err := r.u64()
	if err != nil {
		return nil, err
	}
	var epoch uint64
	if version >= sketchCodecVersion {
		if epoch, err = r.u64(); err != nil {
			return nil, err
		}
	}
	counts := make([]uint32, int(width)*int(depth))
	for i := range counts {
		if counts[i], err = r.u32(); err != nil {
			return nil, err
		}
	}
	nTop, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nTop > topK {
		return nil, fmt.Errorf("%w: %d heavy hitters exceed topK %d", ErrSketchCorrupt, nTop, topK)
	}
	top := make(map[string]uint64, nTop)
	for i := uint32(0); i < nTop; i++ {
		klen, err := r.u16()
		if err != nil {
			return nil, err
		}
		if klen == 0 || int(klen) > maxKeyLen {
			return nil, fmt.Errorf("%w: key length %d", ErrSketchCorrupt, klen)
		}
		key, err := r.bytes(int(klen))
		if err != nil {
			return nil, err
		}
		count, err := r.u64()
		if err != nil {
			return nil, err
		}
		top[string(key)] = count
	}
	cal := make(map[string]Calibration)
	if version >= sketchCodecVersion {
		nCal, err := r.u32()
		if err != nil {
			return nil, err
		}
		if nCal > maxCalEntries {
			return nil, fmt.Errorf("%w: %d calibration entries", ErrSketchCorrupt, nCal)
		}
		for i := uint32(0); i < nCal; i++ {
			flen, err := r.u16()
			if err != nil {
				return nil, err
			}
			if flen == 0 || int(flen) > maxKeyLen {
				return nil, fmt.Errorf("%w: family length %d", ErrSketchCorrupt, flen)
			}
			fam, err := r.bytes(int(flen))
			if err != nil {
				return nil, err
			}
			bits, err := r.u64()
			if err != nil {
				return nil, err
			}
			obs, err := r.u64()
			if err != nil {
				return nil, err
			}
			rate := math.Float64frombits(bits)
			// A calibration that is not a positive finite rate can only
			// mislead the estimator; treat it as the corruption it is.
			if !(rate > 0) || math.IsInf(rate, 1) {
				return nil, fmt.Errorf("%w: calibration %q rate %v", ErrSketchCorrupt, fam, rate)
			}
			cal[string(fam)] = Calibration{UnitsPerMS: rate, Observations: obs}
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSketchCorrupt, r.remaining())
	}
	return &Sketch{
		width:      int(width),
		depth:      int(depth),
		topK:       int(topK),
		counts:     counts,
		top:        top,
		recorded:   recorded,
		decayEpoch: epoch,
		cal:        cal,
	}, nil
}

// Load decodes persisted sketch bytes, falling back to a cold sketch
// (with the caller's topK) on ANY failure — nil/empty data, version
// mismatch, truncation, bit flips. The bool reports whether the warm
// state survived.
func Load(data []byte, topK int) (*Sketch, bool) {
	if len(data) == 0 {
		return New(topK), false
	}
	s, err := Decode(data)
	if err != nil {
		return New(topK), false
	}
	return s, true
}

func sortKeyCounts(kcs []KeyCount) {
	sort.Slice(kcs, func(i, j int) bool {
		if kcs[i].Count != kcs[j].Count {
			return kcs[i].Count > kcs[j].Count
		}
		return kcs[i].Key < kcs[j].Key
	})
}

// writeU16/U32/U64 append little-endian integers (codec.go idiom).
func writeU16(buf *bytes.Buffer, x uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], x)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, x uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], x)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, x uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	buf.Write(b[:])
}

// byteReader is a bounds-checked little-endian cursor.
type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) remaining() int { return len(r.data) - r.off }

func (r *byteReader) bytes(n int) ([]byte, error) {
	if r.remaining() < n {
		return nil, fmt.Errorf("%w: truncated (%d bytes needed, %d left): %w",
			ErrSketchCorrupt, n, r.remaining(), io.ErrUnexpectedEOF)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *byteReader) u16() (uint16, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *byteReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *byteReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}
