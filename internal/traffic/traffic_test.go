package traffic

import (
	"fmt"
	"hash/crc32"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestSketchRecordAndCount checks the count-min estimate is exact for
// well-separated keys and that TopK ranks by count with deterministic
// tie order.
func TestSketchRecordAndCount(t *testing.T) {
	s := New(8)
	for i := 0; i < 50; i++ {
		s.Record("hot")
	}
	for i := 0; i < 5; i++ {
		s.Record("warm")
	}
	s.Record("cold")

	if got := s.Count("hot"); got < 50 {
		t.Errorf("Count(hot) = %d, want >= 50", got)
	}
	if got := s.Count("absent"); got != 0 {
		t.Errorf("Count(absent) = %d, want 0", got)
	}
	top := s.TopK()
	if len(top) != 3 {
		t.Fatalf("TopK len %d, want 3: %v", len(top), top)
	}
	if top[0].Key != "hot" || top[0].Count != 50 {
		t.Errorf("top[0] = %+v, want hot/50", top[0])
	}
	if top[1].Key != "warm" || top[2].Key != "cold" {
		t.Errorf("TopK order %v, want warm then cold", top)
	}

	st := s.Stats()
	if st.Recorded != 56 || st.Tracked != 3 || st.TopK != 8 {
		t.Errorf("Stats = %+v", st)
	}
	// Empty keys are ignored.
	s.Record("")
	if got := s.Stats().Recorded; got != 56 {
		t.Errorf("empty key counted: recorded %d", got)
	}
}

// TestSketchTopKEviction checks a newly hot key can displace the
// current minimum once the heavy-hitter table is full.
func TestSketchTopKEviction(t *testing.T) {
	s := New(2)
	for i := 0; i < 10; i++ {
		s.Record("a")
	}
	s.Record("b") // fills the table: {a:10, b:1}
	// "c" becomes hotter than "b"; it must evict it.
	for i := 0; i < 5; i++ {
		s.Record("c")
	}
	top := s.TopK()
	if len(top) != 2 || top[0].Key != "a" || top[1].Key != "c" {
		t.Fatalf("TopK after eviction = %v, want [a c]", top)
	}
}

// TestFrequencySketchConcurrentRecord hammers one sketch from many
// goroutines; run under -race this locks the sketch's thread safety,
// and the final tallies must be exact (Record never drops counts).
func TestFrequencySketchConcurrentRecord(t *testing.T) {
	const (
		goroutines = 8
		perG       = 500
	)
	s := New(16)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Record("shared")
				s.Record(fmt.Sprintf("own-%d", g))
				s.Count("shared")
				if i%100 == 0 {
					s.TopK()
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()

	if got := s.Stats().Recorded; got != 2*goroutines*perG {
		t.Errorf("recorded %d, want %d", got, 2*goroutines*perG)
	}
	if got := s.Count("shared"); got < goroutines*perG {
		t.Errorf("Count(shared) = %d, want >= %d", got, goroutines*perG)
	}
	counts := make(map[string]uint64)
	for _, kc := range s.TopK() {
		counts[kc.Key] = kc.Count
	}
	if counts["shared"] != goroutines*perG {
		t.Errorf("TopK shared = %d, want %d", counts["shared"], goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		key := fmt.Sprintf("own-%d", g)
		if counts[key] != perG {
			t.Errorf("TopK %s = %d, want %d", key, counts[key], perG)
		}
	}
}

// TestSketchCodecRoundTrip encodes a populated sketch and checks the
// decoded copy preserves counts, heavy hitters and the total.
func TestSketchCodecRoundTrip(t *testing.T) {
	s := New(4)
	for i := 0; i < 20; i++ {
		s.Record("alpha")
	}
	for i := 0; i < 7; i++ {
		s.Record("beta")
	}
	s.Record("γ|odd|key") // non-ASCII and separator bytes round-trip

	data := s.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if g, w := got.Stats(), s.Stats(); g != w {
		t.Errorf("stats %+v != %+v", g, w)
	}
	for _, key := range []string{"alpha", "beta", "γ|odd|key", "never-seen"} {
		if g, w := got.Count(key), s.Count(key); g != w {
			t.Errorf("Count(%s) = %d after round trip, want %d", key, g, w)
		}
	}
	wantTop, gotTop := s.TopK(), got.TopK()
	if len(gotTop) != len(wantTop) {
		t.Fatalf("TopK len %d, want %d", len(gotTop), len(wantTop))
	}
	for i := range wantTop {
		if gotTop[i] != wantTop[i] {
			t.Errorf("TopK[%d] = %+v, want %+v", i, gotTop[i], wantTop[i])
		}
	}
	// Deterministic encoding: same state encodes to identical bytes.
	if string(s.Encode()) != string(data) {
		t.Error("Encode is not deterministic")
	}
}

// TestSketchCodecVersionMismatch checks a future-versioned artifact is
// rejected with ErrSketchVersion and that Load masks it as cold.
func TestSketchCodecVersionMismatch(t *testing.T) {
	s := New(4)
	s.Record("x")
	data := s.Encode()
	// Bump the version field and re-seal the checksum so ONLY the
	// version differs.
	data[0], data[1] = 0xFF, 0x7F
	resealCRC(data)

	if _, err := Decode(data); !strings.Contains(fmt.Sprint(err), "version") {
		t.Errorf("Decode error %v, want version mismatch", err)
	}
	cold, restored := Load(data, 4)
	if restored {
		t.Error("Load reported warm state from mismatched version")
	}
	if cold.Stats().Recorded != 0 {
		t.Error("Load did not return a cold sketch")
	}
}

// TestSketchCodecCorruption walks the PR 3/5-style corruption matrix:
// truncation at every interesting boundary and a bit flip in every
// region must decode as an error — and Load must turn each into a
// cold, usable sketch.
func TestSketchCodecCorruption(t *testing.T) {
	s := New(4)
	for i := 0; i < 9; i++ {
		s.Record("key-" + string(rune('a'+i)))
	}
	data := s.Encode()

	truncations := []int{0, 1, 3, 10, len(data) / 2, len(data) - 5, len(data) - 1}
	for _, n := range truncations {
		t.Run(fmt.Sprintf("truncate-%d", n), func(t *testing.T) {
			if _, err := Decode(data[:n]); err == nil {
				t.Fatalf("Decode accepted %d-byte truncation", n)
			}
			cold, restored := Load(data[:n], 4)
			if restored || cold.Stats().Recorded != 0 {
				t.Error("Load of truncated data is not cold")
			}
		})
	}

	flips := []int{0, 2, 6, 14, len(data) / 2, len(data) - 2}
	for _, off := range flips {
		t.Run(fmt.Sprintf("bitflip-%d", off), func(t *testing.T) {
			bad := append([]byte(nil), data...)
			bad[off] ^= 0x40
			if _, err := Decode(bad); err == nil {
				t.Fatalf("Decode accepted bit flip at %d", off)
			}
			cold, restored := Load(bad, 4)
			if restored || cold.Stats().Recorded != 0 {
				t.Error("Load of flipped data is not cold")
			}
		})
	}

	// Implausible dimensions must be rejected even with a valid CRC.
	huge := append([]byte(nil), data...)
	huge[2], huge[3], huge[4], huge[5] = 0xFF, 0xFF, 0xFF, 0x7F // width
	resealCRC(huge)
	if _, err := Decode(huge); err == nil {
		t.Fatal("Decode accepted implausible width")
	}

	// Trailing garbage after a complete body fails the checksum.
	padded := append(append([]byte(nil), data...), 0xAB, 0xCD)
	if _, err := Decode(padded); err == nil {
		t.Fatal("Decode accepted trailing bytes")
	}

	// Empty/nil loads are cold, never an error.
	if cold, restored := Load(nil, 8); restored || cold == nil {
		t.Error("Load(nil) not cold")
	}
}

// resealCRC recomputes the trailing checksum after a test mutates the
// body, so the mutation — not the CRC — is what the decoder sees.
func resealCRC(data []byte) {
	body := data[:len(data)-4]
	sum := crc32.ChecksumIEEE(body)
	data[len(data)-4] = byte(sum)
	data[len(data)-3] = byte(sum >> 8)
	data[len(data)-2] = byte(sum >> 16)
	data[len(data)-1] = byte(sum >> 24)
}

// TestLoadRestoresWarmState checks the happy path Load: a persisted
// sketch keeps counting the same cells after reload.
func TestLoadRestoresWarmState(t *testing.T) {
	s := New(4)
	for i := 0; i < 12; i++ {
		s.Record("survivor")
	}
	warm, restored := Load(s.Encode(), 4)
	if !restored {
		t.Fatal("Load did not restore valid bytes")
	}
	warm.Record("survivor")
	if got := warm.Count("survivor"); got != 13 {
		t.Errorf("post-reload count %d, want 13 (cells not re-addressed)", got)
	}
}

// cmEstimate computes the raw count-min estimate for key, bypassing
// the heavy-hitter table — the pre-fix Count behaviour, kept here so
// tests can prove a collision actually inflated the sketch rows.
func cmEstimate(s *Sketch, key string) uint64 {
	h1, h2 := hashPair(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	est := uint32(1<<32 - 1)
	for row := 0; row < s.depth; row++ {
		i := (h1 + uint64(row)*h2) % uint64(s.width)
		if c := s.counts[row*s.width+int(i)]; c < est {
			est = c
		}
	}
	return uint64(est)
}

// TestCountAgreesWithTopK forces count-min collisions onto a heavy
// hitter and checks Count reports the exact top-table value, never the
// inflated sketch estimate — so Count and TopK can no longer disagree
// about the keys pre-warm pins.
func TestCountAgreesWithTopK(t *testing.T) {
	s := New(4)
	const exact = 10
	for i := 0; i < exact; i++ {
		s.Record("heavy-hitter")
	}
	// Flood distinct filler keys until some land in heavy-hitter's
	// cells in every row and the count-min estimate rises above the
	// exact count. 4 rows × 1024 counters fill fast; cap the flood so
	// a hash-function change fails loudly instead of spinning.
	flooded := 0
	for cmEstimate(s, "heavy-hitter") <= exact {
		s.Record(fmt.Sprintf("filler-%d", flooded))
		flooded++
		if flooded > 200_000 {
			t.Fatal("could not force a count-min collision; hash layout changed?")
		}
	}
	if got := s.Count("heavy-hitter"); got != exact {
		t.Errorf("Count = %d, want exact %d (cm estimate %d)",
			got, exact, cmEstimate(s, "heavy-hitter"))
	}
	var inTop uint64
	for _, kc := range s.TopK() {
		if kc.Key == "heavy-hitter" {
			inTop = kc.Count
		}
	}
	if inTop == 0 {
		t.Fatal("heavy-hitter fell out of TopK; raise its count")
	}
	if got := s.Count("heavy-hitter"); got != inTop {
		t.Errorf("Count (%d) and TopK (%d) disagree", got, inTop)
	}
}

// TestSketchDecay checks one Decay pass halves both tiers, that keys
// reaching zero leave the heavy-hitter table, and that repeated passes
// converge every count to zero.
func TestSketchDecay(t *testing.T) {
	s := New(4)
	for i := 0; i < 9; i++ {
		s.Record("hot") // odd count: halving must floor, 9 → 4
	}
	s.Record("once")

	s.Decay()
	if got := s.Count("hot"); got != 4 {
		t.Errorf("Count(hot) after decay = %d, want 4", got)
	}
	if got := s.Count("once"); got != 0 {
		t.Errorf("Count(once) after decay = %d, want 0", got)
	}
	top := s.TopK()
	if len(top) != 1 || top[0].Key != "hot" {
		t.Errorf("TopK after decay = %v, want only hot (once dropped at zero)", top)
	}
	if got := s.Stats().DecayEpoch; got != 1 {
		t.Errorf("DecayEpoch = %d, want 1", got)
	}

	// log2(4)+1 = 3 more passes empty the sketch entirely.
	for i := 0; i < 3; i++ {
		s.Decay()
	}
	if got := s.Count("hot"); got != 0 {
		t.Errorf("Count(hot) after full decay = %d, want 0", got)
	}
	if got := len(s.TopK()); got != 0 {
		t.Errorf("TopK after full decay has %d entries, want 0", got)
	}
	if got := s.Stats().DecayEpoch; got != 4 {
		t.Errorf("DecayEpoch = %d, want 4", got)
	}
	// Recorded is a lifetime total; decay must not rewrite history.
	if got := s.Stats().Recorded; got != 10 {
		t.Errorf("Recorded after decay = %d, want 10", got)
	}
}

// TestSketchCodecV2CarriesDecayAndCalibration checks the v2 additions
// round-trip: decay epoch and calibration entries survive
// Encode→Decode, and encoding stays deterministic.
func TestSketchCodecV2CarriesDecayAndCalibration(t *testing.T) {
	s := New(4)
	for i := 0; i < 40; i++ {
		s.Record("k")
	}
	s.Decay()
	s.Decay()
	s.SetCalibrations(map[string]Calibration{
		"walk":        {UnitsPerMS: 52_341.5, Observations: 120},
		"push":        {UnitsPerMS: 9_988.25, Observations: 3},
		"never-ran":   {UnitsPerMS: 1, Observations: 0}, // dropped: no observations
		"enumeration": {UnitsPerMS: 123_456, Observations: 7},
	})

	data := s.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if g, w := got.Stats(), s.Stats(); g != w {
		t.Errorf("stats %+v != %+v", g, w)
	}
	if g := got.Stats().DecayEpoch; g != 2 {
		t.Errorf("decoded DecayEpoch = %d, want 2", g)
	}
	cal := got.Calibrations()
	if len(cal) != 3 {
		t.Fatalf("decoded %d calibrations, want 3 (zero-obs dropped): %v", len(cal), cal)
	}
	if c := cal["walk"]; c.UnitsPerMS != 52_341.5 || c.Observations != 120 {
		t.Errorf("walk calibration = %+v", c)
	}
	if c := cal["push"]; c.UnitsPerMS != 9_988.25 || c.Observations != 3 {
		t.Errorf("push calibration = %+v", c)
	}
	if string(s.Encode()) != string(data) {
		t.Error("v2 Encode is not deterministic")
	}
}

// TestSketchCodecV1StillLoads checks artifacts written by the legacy
// v1 encoder keep loading: counts and heavy hitters restore, the decay
// epoch is zero, and no calibration state is invented.
func TestSketchCodecV1StillLoads(t *testing.T) {
	s := New(4)
	for i := 0; i < 17; i++ {
		s.Record("legacy-hot")
	}
	s.Record("legacy-cold")

	got, restored := Load(s.EncodeV1(), 4)
	if !restored {
		t.Fatal("Load rejected a v1 artifact")
	}
	if g := got.Count("legacy-hot"); g != 17 {
		t.Errorf("Count(legacy-hot) = %d, want 17", g)
	}
	if g := got.Stats().DecayEpoch; g != 0 {
		t.Errorf("v1 DecayEpoch = %d, want 0", g)
	}
	if cal := got.Calibrations(); len(cal) != 0 {
		t.Errorf("v1 load invented calibrations: %v", cal)
	}
	// The restored sketch must be fully usable: decay it, calibrate it,
	// re-encode as v2, and reload.
	got.Decay()
	got.SetCalibrations(map[string]Calibration{"walk": {UnitsPerMS: 100, Observations: 1}})
	again, restored := Load(got.Encode(), 4)
	if !restored || again.Stats().DecayEpoch != 1 || len(again.Calibrations()) != 1 {
		t.Errorf("v1→v2 upgrade round trip failed: restored=%v stats=%+v cal=%v",
			restored, again.Stats(), again.Calibrations())
	}
}

// TestSketchCodecCalibrationCorruption checks the v2 calibration
// section is validated: non-finite or non-positive rates and
// implausible entry counts are corruption, and Load masks them cold.
func TestSketchCodecCalibrationCorruption(t *testing.T) {
	s := New(4)
	s.Record("x")
	s.SetCalibrations(map[string]Calibration{"walk": {UnitsPerMS: 42, Observations: 9}})
	data := s.Encode()

	// The calibration rate is the 8 bytes after nCal(4) + famLen(2) +
	// "walk"(4), counted back from crc(4) + observations(8).
	rateOff := len(data) - 4 - 8 - 8
	for _, bad := range []float64{math.Inf(1), math.NaN(), -1, 0} {
		bits := math.Float64bits(bad)
		mut := append([]byte(nil), data...)
		for i := 0; i < 8; i++ {
			mut[rateOff+i] = byte(bits >> (8 * i))
		}
		resealCRC(mut)
		if _, err := Decode(mut); !strings.Contains(fmt.Sprint(err), "calibration") {
			t.Errorf("rate %v: Decode error %v, want calibration corruption", bad, err)
		}
		if cold, restored := Load(mut, 4); restored || cold.Stats().Recorded != 0 {
			t.Errorf("rate %v: Load not cold", bad)
		}
	}

	// An absurd nCal must be rejected before any allocation.
	nCalOff := rateOff - 4 - 2 - 4
	huge := append([]byte(nil), data...)
	huge[nCalOff], huge[nCalOff+1], huge[nCalOff+2], huge[nCalOff+3] = 0xFF, 0xFF, 0xFF, 0x7F
	resealCRC(huge)
	if _, err := Decode(huge); err == nil {
		t.Fatal("Decode accepted implausible calibration count")
	}
}

// TestWarmKeyRoundTrip checks both key kinds survive String→Parse with
// exact float bits, and that hostile labels are escaped.
func TestWarmKeyRoundTrip(t *testing.T) {
	keys := []WarmKey{
		{Kind: KindIndex, Dataset: "enwiki-2018", Node: "Freddie Mercury", Alpha: 0.85, RMax: 1e-4},
		{Kind: KindIndex, Dataset: "d|s", Node: "n|o|de", Alpha: 0.3, RMax: math.Nextafter(1e-6, 1)},
		{Kind: KindEndpoints, Dataset: "amazon", Node: "B000", Alpha: 0.85, Seed: -42, MaxSteps: 100, Walks: 10000},
		{Kind: KindEndpoints, Dataset: "ds", Node: "π", Alpha: 0.15, Seed: 1 << 40, MaxSteps: 1, Walks: 1},
	}
	for _, k := range keys {
		enc := k.String()
		got, err := ParseWarmKey(enc)
		if err != nil {
			t.Errorf("ParseWarmKey(%q): %v", enc, err)
			continue
		}
		if got != k {
			t.Errorf("round trip %q: got %+v, want %+v", enc, got, k)
		}
	}

	bad := []string{
		"",
		"idx",
		"idx|ds",
		"idx|ds|node",                      // missing params
		"idx|ds|node|a0|r0|extra",          // too many params
		"idx|ds|node|x0|r0",                // wrong prefix
		"idx|ds|node|aZZZZ|r0",             // bad hex
		"ep|ds|node|a0|s1|m2",              // ep wants 4 params
		"ep|ds|node|a0|sX|m2|w3",           // bad int
		"zz|ds|node|a0|r0",                 // unknown kind
		"idx|%zz|node|a0|r0",               // bad escape
		"ep|ds|node|a0|s1|m2|w3|tail-junk", // trailing field
	}
	for _, s := range bad {
		if _, err := ParseWarmKey(s); err == nil {
			t.Errorf("ParseWarmKey(%q) accepted", s)
		}
	}
}
