package artifact

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

// testDisk is an in-memory DiskTier.
type testDisk struct {
	mu    sync.Mutex
	blobs map[string][]byte

	failLoads, failSaves bool
}

func newTestDisk() *testDisk { return &testDisk{blobs: make(map[string][]byte)} }

func (d *testDisk) Load(dir, key string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failLoads {
		return nil, fmt.Errorf("disk sick")
	}
	b, ok := d.blobs[dir+"/"+key]
	if !ok {
		return nil, os.ErrNotExist
	}
	return append([]byte(nil), b...), nil
}

func (d *testDisk) Save(dir, key string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failSaves {
		return fmt.Errorf("disk full")
	}
	d.blobs[dir+"/"+key] = append([]byte(nil), data...)
	return nil
}

// intCodec round-trips int values as decimal strings; a decode of
// anything non-numeric fails, standing in for a corrupt artifact.
func intConfig(capacity int, disk DiskTier) Config[string, int] {
	return Config[string, int]{
		Capacity: capacity,
		Disk:     disk,
		DiskKey:  func(k string) (string, string) { return "fp", k },
		Encode:   func(k string, v int) ([]byte, error) { return []byte(strconv.Itoa(v)), nil },
		Decode: func(k string, data []byte) (int, error) {
			return strconv.Atoi(string(data))
		},
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := New(intConfig(8, newTestDisk()))
	const goroutines = 32
	var computes atomic.Int64
	var (
		wg      sync.WaitGroup
		start   = make(chan struct{})
		results [goroutines]int
		tiers   [goroutines]Tier
		errs    [goroutines]error
	)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], tiers[i], errs[i] = c.GetOrCompute(context.Background(), "k", func() (int, error) {
				computes.Add(1)
				return 42, nil
			})
		}(i)
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computes ran, want exactly 1", n)
	}
	payers := 0
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] != 42 {
			t.Fatalf("goroutine %d got %d", i, results[i])
		}
		if tiers[i] == TierComputed {
			payers++
		}
	}
	if payers != 1 {
		t.Fatalf("%d callers report TierComputed, want 1", payers)
	}
	s := c.Stats()
	if s.Misses != 1 || s.MemoryHits != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d memory hits", s, goroutines-1)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(intConfig(2, nil))
	get := func(k string) Tier {
		t.Helper()
		_, tier, err := c.GetOrCompute(context.Background(), k, func() (int, error) { return len(k), nil })
		if err != nil {
			t.Fatal(err)
		}
		return tier
	}
	get("a")
	get("b")
	if get("a") != TierMemory {
		t.Error("a evicted while under capacity")
	}
	get("c") // evicts b (LRU), not the freshly-touched a
	if get("a") != TierMemory {
		t.Error("recently used a was evicted")
	}
	if get("b") != TierComputed {
		t.Error("LRU entry b survived eviction")
	}
	if s := c.Stats(); s.MemoryEntries != 2 {
		t.Errorf("entries = %d, want 2", s.MemoryEntries)
	}
}

func TestCacheWeightBudget(t *testing.T) {
	cfg := intConfig(64, nil)
	cfg.Weight = func(v int) int64 { return int64(v) }
	cfg.WeightBudget = 10
	c := New(cfg)
	put := func(k string, v int) {
		t.Helper()
		if _, _, err := c.GetOrCompute(context.Background(), k, func() (int, error) { return v, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a", 4)
	put("b", 4)
	put("c", 4) // 12 > 10: evicts a
	s := c.Stats()
	if s.Weight > 10 || s.MemoryEntries != 2 {
		t.Fatalf("after budget eviction: %+v", s)
	}
	// An entry alone over budget still survives: it was just paid for.
	put("huge", 100)
	s = c.Stats()
	if s.MemoryEntries != 1 || s.Weight != 100 {
		t.Fatalf("oversized latest entry not kept alone: %+v", s)
	}
	if !c.Peek("huge") {
		t.Error("latest oversized entry evicted")
	}
}

func TestCacheDiskRoundTripAndCorruption(t *testing.T) {
	disk := newTestDisk()
	first := New(intConfig(4, disk))
	if _, tier, err := first.GetOrCompute(context.Background(), "k", func() (int, error) { return 7, nil }); err != nil || tier != TierComputed {
		t.Fatalf("first get: tier %v err %v", tier, err)
	}
	if s := first.Stats(); s.DiskWrites != 1 || s.DiskBytesWritten == 0 {
		t.Fatalf("artifact not persisted: %+v", s)
	}

	// "Restart": fresh memory tier over the same disk.
	second := New(intConfig(4, disk))
	v, tier, err := second.GetOrCompute(context.Background(), "k", func() (int, error) {
		t.Error("compute ran despite a persisted artifact")
		return 0, nil
	})
	if err != nil || v != 7 || tier != TierDisk {
		t.Fatalf("restart get = (%d, %v, %v), want (7, disk, nil)", v, tier, err)
	}
	if s := second.Stats(); s.DiskHits != 1 || s.Misses != 0 {
		t.Fatalf("restart stats: %+v", s)
	}

	// Corrupt the artifact: the next fresh cache recomputes and
	// overwrites, never errors.
	disk.mu.Lock()
	disk.blobs["fp/k"] = []byte("not a number")
	disk.mu.Unlock()
	third := New(intConfig(4, disk))
	v, tier, err = third.GetOrCompute(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 || tier != TierComputed {
		t.Fatalf("corrupt get = (%d, %v, %v), want recompute", v, tier, err)
	}
	if s := third.Stats(); s.DiskErrors != 1 || s.Misses != 1 {
		t.Fatalf("corrupt stats: %+v", s)
	}
	disk.mu.Lock()
	repaired := string(disk.blobs["fp/k"])
	disk.mu.Unlock()
	if repaired != "7" {
		t.Fatalf("artifact not overwritten after corruption: %q", repaired)
	}
}

func TestCacheDiskFailuresAreNonFatal(t *testing.T) {
	disk := newTestDisk()
	disk.failSaves = true
	c := New(intConfig(4, disk))
	if v, tier, err := c.GetOrCompute(context.Background(), "k", func() (int, error) { return 3, nil }); err != nil || v != 3 || tier != TierComputed {
		t.Fatalf("save failure surfaced: (%d, %v, %v)", v, tier, err)
	}
	if s := c.Stats(); s.DiskErrors != 1 || s.DiskWrites != 0 {
		t.Fatalf("stats = %+v, want one disk error, no writes", s)
	}

	// A sick disk tier (load errors that are not fs.ErrNotExist) is a
	// counted miss, not a query failure.
	sick := newTestDisk()
	sick.failLoads = true
	c2 := New(intConfig(4, sick))
	if _, _, err := c2.GetOrCompute(context.Background(), "k", func() (int, error) { return 3, nil }); err != nil {
		t.Fatalf("sick disk surfaced: %v", err)
	}
	if s := c2.Stats(); s.DiskErrors < 1 {
		t.Fatalf("sick disk not counted: %+v", s)
	}
}

func TestCachePeerFailureRetries(t *testing.T) {
	c := New(intConfig(4, nil))
	var calls atomic.Int64
	gate := make(chan struct{})
	// First caller fails slowly; a second caller waiting on the same
	// key must retry with its own compute instead of inheriting the
	// error.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.GetOrCompute(context.Background(), "k", func() (int, error) {
			close(gate)
			calls.Add(1)
			return 0, fmt.Errorf("boom")
		})
		if err == nil {
			t.Error("failing compute returned nil error to its payer")
		}
	}()
	<-gate
	v, _, err := c.GetOrCompute(context.Background(), "k", func() (int, error) {
		calls.Add(1)
		return 9, nil
	})
	wg.Wait()
	if err != nil || v != 9 {
		t.Fatalf("retry after peer failure = (%d, %v)", v, err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("%d computes, want 2 (failed peer + retry)", n)
	}
	// The failure was never cached.
	if !c.Peek("k") {
		t.Error("successful retry not cached")
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := New(intConfig(4, nil))
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = c.GetOrCompute(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.GetOrCompute(ctx, "k", func() (int, error) { return 1, nil }); err == nil {
		t.Error("cancelled waiter returned nil error")
	}
	close(release)
}
