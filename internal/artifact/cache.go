// Package artifact implements the platform's generic two-tier
// artifact cache: a bounded in-memory LRU in front of an optional
// persisted disk tier, with single-flight computation on miss.
//
// The cache is the one tiering engine behind every precomputed
// artifact the BiPPR subsystem reuses across queries — reverse-push
// target indexes and recorded walk-endpoint sets — so the invariants
// that make those caches safe live in exactly one place:
//
//   - Single-flight: concurrent misses for one key share a single
//     computation (and a single disk probe); every waiter receives the
//     same value instance. A waiter whose computing peer fails retries
//     the computation itself rather than inheriting the peer's error.
//
//   - Corruption-as-miss: the disk tier can only ever cost time, never
//     correctness. An absent, truncated, bit-flipped, version-skewed,
//     or otherwise undecodable artifact is treated as a cache miss —
//     the value is recomputed and the artifact overwritten — and a
//     failed save only loses future reuse. Both are counted in
//     Stats.DiskErrors (absent files are ordinary cold misses and are
//     not).
//
//   - Key stability across restarts: Config.DiskKey must be a pure
//     function of the key's *content* (e.g. a structural graph
//     fingerprint plus the exact float bits of every parameter), never
//     of process state such as pointers, so a restarted process finds
//     the artifacts its predecessor wrote. The in-memory key K may
//     carry process-local identity (a graph pointer) as long as
//     DiskKey ignores it.
//
//   - Shared values: cached values are returned to many callers
//     concurrently and must be treated as immutable.
//
// Values may optionally be weighted (Config.Weight/WeightBudget): the
// LRU then also evicts while the total weight exceeds the budget,
// always keeping at least the most recently inserted entry — it was
// just paid for and is about to be used.
package artifact

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/obs"
)

// Tier reports where a cached value came from.
type Tier int

const (
	// TierComputed: the caller paid for the computation itself.
	TierComputed Tier = iota
	// TierMemory: served from the in-memory LRU (or by riding a
	// concurrent caller's in-flight computation).
	TierMemory
	// TierDisk: deserialized from a persisted artifact — no
	// computation ran anywhere.
	TierDisk
)

// String names the tier for logs and tables.
func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	default:
		return "computed"
	}
}

// DiskTier is the persistence contract a tiered cache writes through,
// implemented by the platform's datastore (one instance per artifact
// kind). dir groups artifacts (a structural graph fingerprint) and
// key names one artifact within the group; both are filesystem-safe.
// Load returns an error wrapping fs.ErrNotExist when the artifact
// does not exist; callers treat any load error as a miss.
type DiskTier interface {
	Load(dir, key string) ([]byte, error)
	Save(dir, key string, data []byte) error
}

// Stats is a snapshot of a Cache's counters. Hits split by tier so
// operators can tell a restart-warm disk cache from a hot in-memory
// one.
type Stats struct {
	// MemoryHits counts lookups served by the LRU or by riding a
	// concurrent in-flight computation.
	MemoryHits int64 `json:"memory_hits"`
	// DiskHits counts lookups served by deserializing a persisted
	// artifact — the restart-warm path.
	DiskHits int64 `json:"disk_hits"`
	// Misses counts computations actually paid.
	Misses int64 `json:"misses"`
	// DiskWrites / DiskBytesWritten count persisted artifacts.
	DiskWrites       int64 `json:"disk_writes"`
	DiskBytesWritten int64 `json:"disk_bytes_written"`
	// DiskErrors counts failed loads of an existing artifact
	// (corruption, version skew, I/O errors) and failed encodes or
	// saves. Each one is absorbed as a miss or a skipped write, never
	// an error to the caller.
	DiskErrors int64 `json:"disk_errors"`
	// MemoryEntries is the LRU's current size.
	MemoryEntries int `json:"memory_entries"`
	// Weight is the total Config.Weight over resident entries (0 when
	// the cache is unweighted).
	Weight int64 `json:"weight,omitempty"`
}

// Config parameterizes a Cache. Capacity and the codec trio
// (Encode/Decode/DiskKey) are required when Disk is set; a nil Disk
// makes the cache memory-only and the codec unused.
type Config[K comparable, V any] struct {
	// Name labels the cache's metrics (`cache="<name>"` on every
	// series); empty defaults to "artifact". It is a metric label, so
	// it must match the Prometheus label-name-friendly conventions
	// callers document in API.md.
	Name string
	// Capacity bounds the memory LRU in entries; must be positive.
	Capacity int
	// Disk is the persistence tier; nil degrades to memory-only.
	Disk DiskTier
	// DiskKey maps a key to its artifact address. It must depend only
	// on restart-stable key content (see the package comment).
	DiskKey func(K) (dir, key string)
	// Encode serializes a value for the disk tier. It receives the
	// key so self-describing formats can embed the parameters the
	// value was computed under (which Decode then echoes back against
	// a future request).
	Encode func(K, V) ([]byte, error)
	// Decode parses an artifact back into a value. It receives the
	// requesting key so it can validate the artifact against the
	// request (parameter echo, node-count bounds) and reject a forged
	// or misplaced file as corrupt before trusting its length fields.
	Decode func(K, []byte) (V, error)
	// Weight sizes one value for WeightBudget-based eviction; nil
	// leaves the cache bounded by Capacity alone.
	Weight func(V) int64
	// WeightBudget caps the total Weight of resident entries (0 =
	// unlimited). Eviction keeps at least the most recent entry even
	// when it alone exceeds the budget.
	WeightBudget int64
}

// Cache is the generic two-tier cache. It is safe for concurrent use.
//
// Its counters are obs metrics owned by the instance and registered
// in a private registry (MetricsRegistry), so each cache instance
// reports its own numbers — Stats() snapshots and the Prometheus
// exposition read the same atomics.
type Cache[K comparable, V any] struct {
	cfg Config[K, V]

	mu       sync.Mutex
	order    *list.List // front = most recently used; values are *entry[K, V]
	entries  map[K]*list.Element
	inflight map[K]*inflightCall[V]
	weight   int64

	reg            *obs.Registry
	memHits        *obs.Counter
	diskHits       *obs.Counter
	misses         *obs.Counter
	diskWrites     *obs.Counter
	diskBytes      *obs.Counter
	diskErrors     *obs.Counter
	diskReadSecs   *obs.Histogram
	diskWriteSecs  *obs.Histogram
	computeSeconds *obs.Histogram
}

type entry[K comparable, V any] struct {
	key    K
	val    V
	weight int64
}

// inflightCall is one in-progress computation; waiters block on done.
type inflightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New builds a cache from cfg. It panics on a non-positive capacity
// or a disk tier without a complete codec — both are programming
// errors, not runtime conditions.
func New[K comparable, V any](cfg Config[K, V]) *Cache[K, V] {
	if cfg.Capacity <= 0 {
		panic("artifact: cache capacity must be positive")
	}
	if cfg.Disk != nil && (cfg.Encode == nil || cfg.Decode == nil || cfg.DiskKey == nil) {
		panic("artifact: disk tier requires Encode, Decode and DiskKey")
	}
	name := cfg.Name
	if name == "" {
		name = "artifact"
	}
	r := obs.NewRegistry()
	c := &Cache[K, V]{
		cfg:      cfg,
		order:    list.New(),
		entries:  make(map[K]*list.Element, cfg.Capacity),
		inflight: make(map[K]*inflightCall[V]),

		reg:            r,
		memHits:        r.Counter("cyclerank_artifact_cache_hits_total", "Cache lookups served without computing, by tier.", "cache", name, "tier", "memory"),
		diskHits:       r.Counter("cyclerank_artifact_cache_hits_total", "Cache lookups served without computing, by tier.", "cache", name, "tier", "disk"),
		misses:         r.Counter("cyclerank_artifact_cache_misses_total", "Computations actually paid.", "cache", name),
		diskWrites:     r.Counter("cyclerank_artifact_cache_disk_writes_total", "Artifacts persisted to the disk tier.", "cache", name),
		diskBytes:      r.Counter("cyclerank_artifact_cache_disk_written_bytes_total", "Bytes persisted to the disk tier.", "cache", name),
		diskErrors:     r.Counter("cyclerank_artifact_cache_disk_errors_total", "Failed loads of an existing artifact plus failed encodes/saves.", "cache", name),
		diskReadSecs:   r.Histogram("cyclerank_artifact_cache_disk_read_seconds", "Disk-tier load+decode latency (successful hits).", nil, "cache", name),
		diskWriteSecs:  r.Histogram("cyclerank_artifact_cache_disk_write_seconds", "Disk-tier encode+save latency (successful writes).", nil, "cache", name),
		computeSeconds: r.Histogram("cyclerank_artifact_cache_compute_seconds", "Miss computation latency (successful computes).", nil, "cache", name),
	}
	// Residency numbers live under the LRU mutex; sample them at
	// scrape time instead of mirroring them into atomics.
	r.GaugeFunc("cyclerank_artifact_cache_entries", "Entries resident in the memory LRU.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.order.Len())
	}, "cache", name)
	r.GaugeFunc("cyclerank_artifact_cache_weight", "Total weight of resident entries (0 when unweighted).", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.weight)
	}, "cache", name)
	return c
}

// MetricsRegistry returns the cache's private metrics registry, for
// merging into a scrape endpoint.
func (c *Cache[K, V]) MetricsRegistry() *obs.Registry { return c.reg }

// GetOrCompute returns the value for key, where it came from, and any
// error. On a miss in both tiers it runs compute — at most once per
// key across all concurrent callers; riders on an in-flight
// computation report TierMemory. Waiters honor their own ctx while
// blocked. The returned value is shared: callers must not mutate it.
func (c *Cache[K, V]) GetOrCompute(ctx context.Context, key K, compute func() (V, error)) (V, Tier, error) {
	var zero V
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.memHits.Inc()
			c.order.MoveToFront(el)
			val := el.Value.(*entry[K, V]).val
			c.mu.Unlock()
			return val, TierMemory, nil
		}
		if call, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return zero, TierComputed, fmt.Errorf("artifact: waiting for shared computation: %w", ctx.Err())
			}
			if call.err == nil {
				c.memHits.Inc()
				return call.val, TierMemory, nil
			}
			continue // peer failed; try computing ourselves
		}
		call := &inflightCall[V]{done: make(chan struct{})}
		c.inflight[key] = call
		c.mu.Unlock()

		// The disk probe and the computation both run under the same
		// single-flight slot, so concurrent misses share one disk read
		// or one computation.
		tier := TierComputed
		if val, ok := c.loadFromDisk(key); ok {
			call.val, tier = val, TierDisk
		} else {
			t0 := time.Now()
			call.val, call.err = compute()
			if call.err == nil {
				c.misses.Inc()
				c.computeSeconds.ObserveSince(t0)
				c.saveToDisk(key, call.val)
			}
		}
		// Retire the inflight entry and publish the result in one
		// critical section, so no concurrent caller can observe the key
		// as neither cached nor inflight and start a duplicate
		// computation.
		c.mu.Lock()
		delete(c.inflight, key)
		if call.err == nil {
			c.putLocked(key, call.val)
		}
		c.mu.Unlock()
		close(call.done)
		if call.err != nil {
			return zero, TierComputed, call.err
		}
		return call.val, tier, nil
	}
}

// Peek reports whether key is resident in the memory tier without
// touching LRU order, disk, or the hit counters.
func (c *Cache[K, V]) Peek(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// loadFromDisk probes the disk tier; any failure — absent file,
// truncation, checksum mismatch, version skew, or a mismatch against
// the requesting key — returns false and the caller computes.
func (c *Cache[K, V]) loadFromDisk(key K) (V, bool) {
	var zero V
	if c.cfg.Disk == nil {
		return zero, false
	}
	dir, name := c.cfg.DiskKey(key)
	t0 := time.Now()
	data, err := c.cfg.Disk.Load(dir, name)
	if err != nil {
		// Absent artifact = ordinary cold miss. Anything else (EACCES,
		// EIO) means the disk tier is sick — still a miss, but counted
		// so a dead tier is visible in the stats instead of
		// masquerading as an eternally cold cache.
		if !errors.Is(err, fs.ErrNotExist) {
			c.diskErrors.Inc()
		}
		return zero, false
	}
	val, err := c.cfg.Decode(key, data)
	if err != nil {
		c.diskErrors.Inc()
		return zero, false
	}
	c.diskReadSecs.ObserveSince(t0)
	c.diskHits.Inc()
	return val, true
}

// saveToDisk persists a freshly computed value, best-effort.
func (c *Cache[K, V]) saveToDisk(key K, val V) {
	if c.cfg.Disk == nil {
		return
	}
	t0 := time.Now()
	data, err := c.cfg.Encode(key, val)
	if err != nil {
		c.diskErrors.Inc()
		return
	}
	dir, name := c.cfg.DiskKey(key)
	if err := c.cfg.Disk.Save(dir, name, data); err != nil {
		c.diskErrors.Inc()
		return
	}
	c.diskWriteSecs.ObserveSince(t0)
	c.diskWrites.Inc()
	c.diskBytes.Add(int64(len(data)))
}

// putLocked inserts a value, evicting least-recently-used entries
// while the cache is over its entry capacity or its weight budget.
// Re-inserting an existing key refreshes its value. The caller must
// hold c.mu.
func (c *Cache[K, V]) putLocked(key K, val V) {
	var w int64
	if c.cfg.Weight != nil {
		w = c.cfg.Weight(val)
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[K, V])
		c.weight += w - e.weight
		e.val, e.weight = val, w
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&entry[K, V]{key: key, val: val, weight: w})
		c.weight += w
	}
	overBudget := func() bool {
		return c.cfg.WeightBudget > 0 && c.weight > c.cfg.WeightBudget
	}
	for (c.order.Len() > c.cfg.Capacity || overBudget()) && c.order.Len() > 1 {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*entry[K, V])
		delete(c.entries, e.key)
		c.weight -= e.weight
	}
}

// Stats returns a snapshot of the cache's counters — the same metric
// objects the Prometheus exposition renders, so the two views cannot
// disagree.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	size, weight := c.order.Len(), c.weight
	c.mu.Unlock()
	return Stats{
		MemoryHits:       c.memHits.Value(),
		DiskHits:         c.diskHits.Value(),
		Misses:           c.misses.Value(),
		DiskWrites:       c.diskWrites.Value(),
		DiskBytesWritten: c.diskBytes.Value(),
		DiskErrors:       c.diskErrors.Value(),
		MemoryEntries:    size,
		Weight:           weight,
	}
}
