package task

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/obs"
)

// runBatch submits one bippr batch at the given parallelism and
// returns the completed result document.
func runBatch(t *testing.T, cfgMut func(*SchedulerConfig), parallelism int) Result {
	t.Helper()
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	cfg := SchedulerConfig{
		Registry: algo.NewBuiltinRegistry(),
		Store:    store,
		Workers:  1,
		Load:     func(string) (*graph.Graph, error) { return g, nil },
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	spec := Spec{Dataset: "demo", Algorithm: algo.NameBiPPRPair, Parallelism: parallelism}
	for _, src := range []string{"a", "b", "ref"} {
		spec.Queries = append(spec.Queries, SubSpec{
			Algorithm: algo.NameBiPPRPair,
			Params:    algo.Params{Source: src, Target: "ref", Walks: 256},
		})
	}
	qs, ids, err := s.Submit([]Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tasks, err := s.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].State != StateDone {
		t.Fatalf("batch state %s (error %q)", tasks[0].State, tasks[0].Error)
	}
	doc, err := s.LoadResult(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, sub := range doc.Queries {
		if sub.State != StateDone {
			t.Fatalf("subquery %d state %s (error %q)", i, sub.State, sub.Error)
		}
	}
	return doc
}

// flattenSpans collects parent/child name paths from a span forest —
// the order-independent identity of a trace.
func flattenSpans(nodes []obs.SpanNode, prefix string, out map[string]int) {
	for _, n := range nodes {
		p := prefix + "/" + n.Name
		out[p]++
		flattenSpans(n.Children, p, out)
	}
}

func spanSetOf(doc Result) map[string]int {
	set := make(map[string]int)
	flattenSpans(doc.Phases, "", set)
	return set
}

// TestBatchSpanSetStableAcrossParallelism is the satellite guarantee:
// the span *set* of a batch (which phases ran, how often, how nested)
// is identical at parallelism 1, 2 and 8 — only timings may differ.
func TestBatchSpanSetStableAcrossParallelism(t *testing.T) {
	base := spanSetOf(runBatch(t, nil, 1))
	if len(base) == 0 {
		t.Fatal("no spans recorded at parallelism 1")
	}
	if base["/subquery"] != 3 {
		t.Fatalf("want 3 subquery spans, got %v", base)
	}
	// The bippr phases must appear nested under subqueries.
	nested := 0
	for path := range base {
		if strings.HasPrefix(path, "/subquery/") {
			nested++
		}
	}
	if nested == 0 {
		t.Fatalf("no phases nested under subqueries: %v", base)
	}
	for _, par := range []int{2, 8} {
		got := spanSetOf(runBatch(t, nil, par))
		if len(got) != len(base) {
			t.Fatalf("parallelism %d span set %v != baseline %v", par, got, base)
		}
		for k, v := range base {
			if got[k] != v {
				t.Fatalf("parallelism %d span set %v != baseline %v", par, got, base)
			}
		}
	}
	// Per-subquery phase subtrees ride in the subresults too.
	doc := runBatch(t, nil, 2)
	for i, sub := range doc.Queries {
		if len(sub.Phases) == 0 {
			t.Fatalf("subresult %d has no phases", i)
		}
	}
}

// TestSingleTaskPhasesAndTiming checks that a plain (non-batch) task
// result carries its phase tree and that wait_ms/run_ms are stamped.
func TestSingleTaskPhasesAndTiming(t *testing.T) {
	s := newScheduler(t, 1)
	qs, ids, err := s.Submit([]Spec{{
		Dataset:   "demo",
		Algorithm: algo.NameBiPPRPair,
		Params:    algo.Params{Source: "a", Target: "ref", Walks: 256},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tasks, err := s.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	task := tasks[0]
	if task.State != StateDone {
		t.Fatalf("state %s (error %q)", task.State, task.Error)
	}
	if task.WaitMS < 0 || task.RunMS < 0 {
		t.Fatalf("wait_ms=%d run_ms=%d must be non-negative", task.WaitMS, task.RunMS)
	}
	if got := task.Started.Sub(task.Submitted).Milliseconds(); task.WaitMS != got {
		t.Fatalf("wait_ms=%d, want %d", task.WaitMS, got)
	}
	if got := task.Finished.Sub(task.Started).Milliseconds(); task.RunMS != got {
		t.Fatalf("run_ms=%d, want %d", task.RunMS, got)
	}
	doc, err := s.LoadResult(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	set := spanSetOf(doc)
	if len(set) == 0 {
		t.Fatal("single-task result has no phases")
	}
	if set["/walks"] == 0 && set["/reverse_push"] == 0 {
		t.Fatalf("no bippr phases in %v", set)
	}
	if doc.Task.WaitMS != task.WaitMS || doc.Task.RunMS != task.RunMS {
		t.Fatalf("persisted timing %d/%d != live %d/%d", doc.Task.WaitMS, doc.Task.RunMS, task.WaitMS, task.RunMS)
	}
}

// TestSlowQueryLog checks the structured slow-query line: with a zero
// threshold every query qualifies, and each line parses as JSON with
// the task identity, the wait/run split and the phase breakdown.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	doc := runBatch(t, func(cfg *SchedulerConfig) {
		cfg.SlowQueryThreshold = time.Nanosecond
		cfg.SlowQueryLog = &buf
	}, 1)
	if doc.Task.State != StateDone {
		t.Fatalf("batch state %s", doc.Task.State)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 slow-query line, got %d:\n%s", len(lines), buf.String())
	}
	var entry struct {
		Msg         string         `json:"msg"`
		Task        string         `json:"task"`
		Dataset     string         `json:"dataset"`
		WaitMS      *int64         `json:"wait_ms"`
		RunMS       *int64         `json:"run_ms"`
		ThresholdMS int64          `json:"threshold_ms"`
		Phases      []obs.SpanNode `json:"phases"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("slow-query line is not JSON: %v\n%s", err, lines[0])
	}
	if entry.Msg != "slow query" || entry.Task != doc.Task.ID || entry.Dataset != "demo" {
		t.Fatalf("entry = %+v", entry)
	}
	if entry.WaitMS == nil || entry.RunMS == nil {
		t.Fatal("wait_ms/run_ms missing from slow-query line")
	}
	if len(entry.Phases) == 0 {
		t.Fatal("phases missing from slow-query line")
	}
}

// TestSchedulerMetricsRegistry checks the workload metrics the
// scheduler exports: terminal counters and batch fan-out observations
// land in the exposition.
func TestSchedulerMetricsRegistry(t *testing.T) {
	s := newScheduler(t, 1)
	qs, _, err := s.Submit([]Spec{{
		Dataset:   "demo",
		Algorithm: algo.NamePPRTarget,
		Params:    algo.Params{Target: "ref"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.WaitQuerySet(ctx, qs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, s.MetricsRegistry()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`cyclerank_scheduler_tasks_total{state="done"} 1`,
		"cyclerank_scheduler_queue_depth 0",
		"cyclerank_scheduler_workers 1",
		"cyclerank_scheduler_task_wait_seconds_count 1",
		"cyclerank_scheduler_task_run_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		names, _ := obs.CheckExposition(buf.Bytes())
		sort.Strings(names)
		t.Logf("families: %v\n%s", names, out)
	}
}
