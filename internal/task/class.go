package task

import (
	"fmt"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
)

// Class is a request class: the serving tier a task is admitted,
// queued and executed under. Classes are the platform's answer to the
// paper's observation that per-query cost varies by orders of
// magnitude with parameters (rmax, walk counts, graph size) — a
// server facing heavy traffic must treat a cheap interactive lookup
// and an exact batch recomputation differently or fall over at
// saturation.
//
//   - interactive: latency-sensitive traffic. Runs on the main
//     executor pool, is subject to admission control (slots, queue
//     depth, estimated-cost backlog) and is shed FIRST — an
//     overloaded server fast-rejects it with 429 + Retry-After
//     before any graph is loaded. Explicitly selecting the class
//     also applies cheap parameter presets to unset fields (looser
//     rmax, fewer walks, a strict default deadline).
//   - batch: throughput traffic. Queued on a dedicated
//     bounded-concurrency executor pool and never shed; parameters
//     keep their precise defaults.
//
// A spec that names no class behaves as it always has: plain specs
// route as interactive (but with no parameter presets — results stay
// bit-identical to historical submissions), and multi-query batch
// specs route as batch.
type Class string

// The request classes.
const (
	ClassInteractive Class = "interactive"
	ClassBatch       Class = "batch"
)

// ParseClass validates a class name. The empty string is valid: it
// selects the default routing for the spec shape.
func ParseClass(s string) (Class, error) {
	switch Class(s) {
	case "", ClassInteractive, ClassBatch:
		return Class(s), nil
	}
	return "", fmt.Errorf("task: unknown class %q (valid: interactive, batch)", s)
}

// resolveClass returns the effective class of a spec: the explicit
// one, or the shape default (plain specs are interactive, multi-query
// batches are batch).
func resolveClass(s Spec) Class {
	if s.Class != "" {
		return s.Class
	}
	if s.IsBatch() {
		return ClassBatch
	}
	return ClassInteractive
}

// Interactive-class parameter presets, in the spirit of dash's
// RetrievalProfile: per-class parameter defaults that trade accuracy
// for latency. They fill only fields the submitter left zero, and only
// when the class was EXPLICITLY requested — a spec with no class keeps
// the engine defaults, so historical submissions stay bit-identical.
const (
	// InteractiveRMax is the interactive reverse-push residual
	// threshold: 10x looser than bippr's default, ~10x less push work.
	InteractiveRMax = 1e-3
	// InteractiveWalks is the interactive walk budget: a fifth of the
	// engine default, still ~3 significant digits on pair estimates.
	InteractiveWalks = 2000
	// InteractiveTimeout is the interactive default deadline. Strict by
	// design: interactive traffic would rather fail fast and retry than
	// queue behind itself.
	InteractiveTimeout = 2 * time.Second
)

// ApplyParams fills class parameter presets into zero fields of p.
// Only the interactive class has presets; every other class returns p
// unchanged.
func (c Class) ApplyParams(p algo.Params) algo.Params {
	if c != ClassInteractive {
		return p
	}
	if p.RMax == 0 {
		p.RMax = InteractiveRMax
	}
	if p.Walks == 0 && p.Eps == 0 {
		p.Walks = InteractiveWalks
	}
	return p
}

// DefaultTimeout is the class's default per-request deadline, applied
// when the spec sets none. Zero means "inherit the scheduler's
// TaskTimeout only".
func (c Class) DefaultTimeout() time.Duration {
	if c == ClassInteractive {
		return InteractiveTimeout
	}
	return 0
}

// applyClassPresets normalizes an explicitly classed spec: parameter
// presets into every query's zero fields and the class default
// deadline into an unset TimeoutMS. Specs with no explicit class pass
// through untouched.
func applyClassPresets(s Spec) Spec {
	if s.Class == "" {
		return s
	}
	s.Params = s.Class.ApplyParams(s.Params)
	if len(s.Queries) > 0 {
		queries := make([]SubSpec, len(s.Queries))
		for i, q := range s.Queries {
			q.Params = s.Class.ApplyParams(q.Params)
			queries[i] = q
		}
		s.Queries = queries
	}
	if s.TimeoutMS == 0 {
		if d := s.Class.DefaultTimeout(); d > 0 {
			s.TimeoutMS = d.Milliseconds()
		}
	}
	return s
}
