package task

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow tracks recent interactive run times for tail-latency
// shedding and slot auto-sizing. It is a small time-bounded ring: the
// newest latencyWindowCap samples, each expiring latencyWindowSpan
// after it was observed — so the p99 both reacts to a fresh burst of
// slow tasks and RECOVERS by pure passage of time. Recovery-by-expiry
// matters: once "slo" shedding fires, fewer tasks run and fewer
// samples arrive; without expiry one slow burst would pin the p99 high
// and shed forever.
//
// The percentile is cached: observe() recomputes it (off the admission
// path — a few microseconds of sorting per completed task), and
// readers only pay a recompute when the cache has aged past
// latencyRecomputeTTL without new completions, keeping tryAdmit's
// fast-reject in the microsecond band.
const (
	latencyWindowCap    = 512
	latencyWindowSpan   = 30 * time.Second
	latencyRecomputeTTL = time.Second
	// sloMinSamples is the minimum live sample count before the p99 is
	// trusted to shed: one slow outlier on an idle tier is not a tail.
	sloMinSamples = 5
)

type latencySample struct {
	at time.Time
	ms float64
}

type latencyWindow struct {
	mu         sync.Mutex
	buf        []latencySample // ring, newest overwrites oldest
	next       int
	cachedP99  float64
	cachedN    int
	computedAt time.Time
}

func newLatencyWindow() *latencyWindow {
	return &latencyWindow{buf: make([]latencySample, 0, latencyWindowCap)}
}

// observe records one run time and refreshes the cached percentile.
func (w *latencyWindow) observe(ms float64) {
	now := time.Now()
	w.mu.Lock()
	if len(w.buf) < latencyWindowCap {
		w.buf = append(w.buf, latencySample{at: now, ms: ms})
	} else {
		w.buf[w.next] = latencySample{at: now, ms: ms}
		w.next = (w.next + 1) % latencyWindowCap
	}
	w.recomputeLocked(now)
	w.mu.Unlock()
}

// p99 returns the cached 99th-percentile run time in milliseconds and
// the live sample count it was computed over. The cache is refreshed
// when stale so an idle tier's percentile decays as samples expire.
func (w *latencyWindow) p99() (ms float64, samples int) {
	now := time.Now()
	w.mu.Lock()
	if now.Sub(w.computedAt) > latencyRecomputeTTL {
		w.recomputeLocked(now)
	}
	ms, samples = w.cachedP99, w.cachedN
	w.mu.Unlock()
	return ms, samples
}

func (w *latencyWindow) recomputeLocked(now time.Time) {
	live := make([]float64, 0, len(w.buf))
	cutoff := now.Add(-latencyWindowSpan)
	for _, s := range w.buf {
		if s.at.After(cutoff) {
			live = append(live, s.ms)
		}
	}
	w.computedAt = now
	w.cachedN = len(live)
	if len(live) == 0 {
		w.cachedP99 = 0
		return
	}
	sort.Float64s(live)
	idx := (len(live)*99 + 99) / 100 // ceil(0.99·n)
	if idx > len(live) {
		idx = len(live)
	}
	w.cachedP99 = live[idx-1]
}
