package task

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// blockingScheduler builds a scheduler whose "block" algorithm holds
// its executor until the returned gate closes, plus an instant "noop"
// algorithm — the fixture for pinning tasks in flight deterministically.
func blockingScheduler(t *testing.T, cfg SchedulerConfig) (*Scheduler, chan struct{}, *datastore.Store) {
	t.Helper()
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	reg := algo.NewRegistry()
	reg.Register(algo.Func{
		AlgoName: "block",
		AlgoDesc: "blocks until the test releases it",
		RunFunc: func(ctx context.Context, g *graph.Graph, p algo.Params) (*ranking.Result, error) {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return ranking.NewResult("block", g, make([]float64, g.NumNodes()))
		},
	})
	reg.Register(algo.Func{
		AlgoName: "noop",
		AlgoDesc: "returns immediately",
		RunFunc: func(ctx context.Context, g *graph.Graph, p algo.Params) (*ranking.Result, error) {
			return ranking.NewResult("noop", g, make([]float64, g.NumNodes()))
		},
	})
	g := testGraph(t)
	cfg.Registry = reg
	cfg.Store = store
	cfg.Load = func(name string) (*graph.Graph, error) {
		if name != "demo" {
			return nil, fmt.Errorf("no dataset %q", name)
		}
		return g, nil
	}
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, gate, store
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAdmissionConcurrentSubmitReject races a flood of submissions
// against a 1-slot budget: exactly the task holding the gate is
// admitted, every concurrent submission sheds with reason "slots", and
// after the drain the budget returns to exactly zero. Run under -race
// this also locks the admission bookkeeping's thread safety.
func TestAdmissionConcurrentSubmitReject(t *testing.T) {
	s, gate, _ := blockingScheduler(t, SchedulerConfig{
		Workers:   2,
		Admission: AdmissionConfig{InteractiveSlots: 1, RetryAfter: 3 * time.Second},
	})

	// The blocker reserves the only slot at Submit time — no waiting
	// needed before the flood.
	qs, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "block"}})
	if err != nil {
		t.Fatal(err)
	}

	const flood = 16
	var wg sync.WaitGroup
	errs := make([]error, flood)
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = s.Submit([]Spec{{Dataset: "demo", Algorithm: "block"}})
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		var shed *ShedError
		if !errors.As(err, &shed) {
			t.Fatalf("submission %d: err = %v, want *ShedError", i, err)
		}
		if shed.Reason != "slots" {
			t.Errorf("submission %d: reason %q, want slots", i, shed.Reason)
		}
		if shed.RetryAfter != 3*time.Second {
			t.Errorf("submission %d: retry after %s, want 3s", i, shed.RetryAfter)
		}
	}

	snap := s.AdmissionStats()
	if snap.Inflight != 1 || snap.AdmittedInteractive != 1 {
		t.Errorf("inflight %d admitted %d, want 1/1", snap.Inflight, snap.AdmittedInteractive)
	}
	if snap.ShedSlots != flood {
		t.Errorf("shed_slots = %d, want %d", snap.ShedSlots, flood)
	}
	if snap.BacklogUnits <= 0 {
		t.Errorf("backlog %g while a task is in flight", snap.BacklogUnits)
	}

	// Drain: the released blocker must return its reservation exactly.
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := s.WaitQuerySet(ctx, qs); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "budget drain", func() bool { return s.AdmissionStats().Inflight == 0 })
	snap = s.AdmissionStats()
	if snap.BacklogUnits != 0 || snap.PendingInteractive != 0 {
		t.Errorf("after drain: backlog %g pending %d, want zero", snap.BacklogUnits, snap.PendingInteractive)
	}

	// Capacity is reusable after the drain.
	qs, _, err = s.Submit([]Spec{{Dataset: "demo", Algorithm: "noop"}})
	if err != nil {
		t.Fatalf("post-drain submission shed: %v", err)
	}
	if _, err := s.WaitQuerySet(ctx, qs); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionShedReasonsAndBatchImmunity exercises the queue-depth
// and backlog limits and the batch tier's immunity: batch-class work
// is admitted and completes while the interactive tier is saturated.
func TestAdmissionShedReasonsAndBatchImmunity(t *testing.T) {
	t.Run("queue", func(t *testing.T) {
		s, _, _ := blockingScheduler(t, SchedulerConfig{
			Workers:   1,
			Admission: AdmissionConfig{MaxPendingInteractive: 1},
		})
		_, ids, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "block"}})
		if err != nil {
			t.Fatal(err)
		}
		// Once the blocker is RUNNING it no longer counts against the
		// pending cap; the next submission fills the queue slot.
		waitFor(t, "blocker running", func() bool {
			st, _ := s.Status(ids[0])
			return st.State == StateRunning
		})
		if _, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "block"}}); err != nil {
			t.Fatalf("queue-filling submission shed: %v", err)
		}
		var shed *ShedError
		if _, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "block"}}); !errors.As(err, &shed) || shed.Reason != "queue" {
			t.Fatalf("err = %v, want ShedError reason queue", err)
		}
		if got := s.AdmissionStats().ShedQueue; got != 1 {
			t.Errorf("shed_queue = %d, want 1", got)
		}
	})

	t.Run("backlog", func(t *testing.T) {
		spec := Spec{Dataset: "demo", Algorithm: "block"}
		unit := EstimateCost(spec, CostStats{}) // cold stats, same as Submit will use
		s, _, _ := blockingScheduler(t, SchedulerConfig{
			Workers:   2,
			Admission: AdmissionConfig{MaxBacklogUnits: 1.5 * unit},
		})
		if _, _, err := s.Submit([]Spec{spec}); err != nil {
			t.Fatal(err)
		}
		var shed *ShedError
		if _, _, err := s.Submit([]Spec{spec}); !errors.As(err, &shed) || shed.Reason != "backlog" {
			t.Fatalf("err = %v, want ShedError reason backlog", err)
		}
		if got := s.AdmissionStats().ShedBacklog; got != 1 {
			t.Errorf("shed_backlog = %d, want 1", got)
		}
	})

	t.Run("batch-immune", func(t *testing.T) {
		s, _, _ := blockingScheduler(t, SchedulerConfig{
			Workers:   1,
			Admission: AdmissionConfig{InteractiveSlots: 1},
		})
		if _, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "block"}}); err != nil {
			t.Fatal(err)
		}
		// Interactive tier saturated; batch work must flow regardless —
		// both the multi-query shape and an explicitly classed spec.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		qs, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "noop",
			Queries: []SubSpec{{Algorithm: "noop"}, {Algorithm: "noop"}}}})
		if err != nil {
			t.Fatalf("batch submission shed: %v", err)
		}
		tasks, err := s.WaitQuerySet(ctx, qs)
		if err != nil {
			t.Fatal(err)
		}
		if tasks[0].State != StateDone {
			t.Fatalf("batch state %s: %s", tasks[0].State, tasks[0].Error)
		}
		qs, _, err = s.Submit([]Spec{{Dataset: "demo", Algorithm: "noop", Class: ClassBatch}})
		if err != nil {
			t.Fatalf("explicit batch-class submission shed: %v", err)
		}
		if tasks, err = s.WaitQuerySet(ctx, qs); err != nil || tasks[0].State != StateDone {
			t.Fatalf("batch-class task: %v, state %s", err, tasks[0].State)
		}
		if got := s.AdmissionStats().AdmittedBatch; got != 2 {
			t.Errorf("admitted_batch = %d, want 2", got)
		}
	})
}

// TestDeadlineCancelsMidWalk lands a per-request deadline inside the
// forward-walk phase of a bidirectional query: the task must FAIL (not
// cancel) with an error naming the walks phase, leave no partial
// result artifact, and count in deadline_exceeded.
func TestDeadlineCancelsMidWalk(t *testing.T) {
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	s, err := NewScheduler(SchedulerConfig{
		Registry: algo.NewBuiltinRegistry(),
		Store:    store,
		Workers:  1,
		Load:     func(string) (*graph.Graph, error) { return g, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	// The push on a 3-node graph is instantaneous; tens of millions of
	// walks are seconds of work — the 50ms deadline lands mid-walk.
	qs, ids, err := s.Submit([]Spec{{
		Dataset: "demo", Algorithm: "bippr-pair",
		Params:    algo.Params{Source: "ref", Target: "b", Walks: 30_000_000},
		TimeoutMS: 50,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tasks, err := s.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	tk := tasks[0]
	if tk.State != StateFailed {
		t.Fatalf("state = %s, want failed (err %q)", tk.State, tk.Error)
	}
	if !strings.Contains(tk.Error, "timeout") || !strings.Contains(tk.Error, "walks cancelled") {
		t.Errorf("error %q does not name the timeout and the walks phase", tk.Error)
	}
	if store.HasResult(ids[0]) {
		t.Error("deadline-failed task persisted a partial result artifact")
	}
	if got := s.AdmissionStats().DeadlineExceeded; got != 1 {
		t.Errorf("deadline_exceeded = %d, want 1", got)
	}
}

// TestDeadlineCancelsMidPush lands the deadline inside the reverse
// push: a dense graph with a vanishing residual threshold makes the
// push phase the long pole, and the error must name it.
func TestDeadlineCancelsMidPush(t *testing.T) {
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, err := datasets.CompleteDigraph(600)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(SchedulerConfig{
		Registry: algo.NewBuiltinRegistry(),
		Store:    store,
		Workers:  1,
		Load:     func(string) (*graph.Graph, error) { return g, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	qs, ids, err := s.Submit([]Spec{{
		Dataset: "dense", Algorithm: "ppr-target",
		Params:    algo.Params{Target: "0", RMax: 1e-12},
		TimeoutMS: 10,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tasks, err := s.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	tk := tasks[0]
	if tk.State != StateFailed {
		t.Fatalf("state = %s, want failed (err %q)", tk.State, tk.Error)
	}
	if !strings.Contains(tk.Error, "timeout") || !strings.Contains(tk.Error, "reverse push cancelled") {
		t.Errorf("error %q does not name the timeout and the push phase", tk.Error)
	}
	if store.HasResult(ids[0]) {
		t.Error("deadline-failed task persisted a partial result artifact")
	}
}

// TestBatchDeadlineIsolatesSubqueries gives ONE subquery of a batch a
// tight deadline: that subquery alone fails (with a phase-naming
// error), its sibling completes, and the batch finishes done.
func TestBatchDeadlineIsolatesSubqueries(t *testing.T) {
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	s, err := NewScheduler(SchedulerConfig{
		Registry: algo.NewBuiltinRegistry(),
		Store:    store,
		Workers:  1,
		Load:     func(string) (*graph.Graph, error) { return g, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	qs, ids, err := s.Submit([]Spec{{
		Dataset: "demo", Algorithm: "bippr-pair", Parallelism: 1,
		Queries: []SubSpec{
			{Algorithm: "bippr-pair", Params: algo.Params{Source: "ref", Target: "b", Walks: 30_000_000}, TimeoutMS: 40},
			{Algorithm: "bippr-pair", Params: algo.Params{Source: "ref", Target: "a", Walks: 200}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tasks, err := s.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	tk := tasks[0]
	if tk.State != StateDone {
		t.Fatalf("batch state = %s, want done (err %q)", tk.State, tk.Error)
	}
	if len(tk.QueryStates) != 2 || tk.QueryStates[0] != StateFailed || tk.QueryStates[1] != StateDone {
		t.Fatalf("query states %v, want [failed done]", tk.QueryStates)
	}

	var doc Result
	if err := store.LoadResult(ids[0], &doc); err != nil {
		t.Fatal(err)
	}
	sub := doc.Queries[0]
	if !strings.Contains(sub.Error, "timeout") || !strings.Contains(sub.Error, "walks cancelled") {
		t.Errorf("subquery error %q does not name the timeout and the walks phase", sub.Error)
	}
	if doc.Queries[1].State != StateDone || len(doc.Queries[1].Top) == 0 {
		t.Errorf("sibling subquery %+v did not complete with results", doc.Queries[1])
	}
	if got := s.AdmissionStats().DeadlineExceeded; got != 1 {
		t.Errorf("deadline_exceeded = %d, want 1", got)
	}
}

// TestClassPresetsAndRouting locks the class semantics: explicit
// interactive fills presets into zero fields only, explicit batch and
// classless specs keep parameters untouched, and the deadline default
// applies only to explicit interactive.
func TestClassPresetsAndRouting(t *testing.T) {
	if c, err := ParseClass("interactive"); err != nil || c != ClassInteractive {
		t.Errorf("ParseClass(interactive) = %v, %v", c, err)
	}
	if c, err := ParseClass(""); err != nil || c != Class("") {
		t.Errorf("ParseClass(empty) = %v, %v", c, err)
	}
	if _, err := ParseClass("realtime"); err == nil {
		t.Error("ParseClass accepted unknown class")
	}

	p := ClassInteractive.ApplyParams(algo.Params{Source: "s", Target: "t"})
	if p.RMax != InteractiveRMax || p.Walks != InteractiveWalks {
		t.Errorf("interactive presets not applied: %+v", p)
	}
	// Explicit fields and eps-mode walk derivation stay untouched.
	p = ClassInteractive.ApplyParams(algo.Params{RMax: 1e-5, Eps: 1e-6})
	if p.RMax != 1e-5 || p.Walks != 0 {
		t.Errorf("interactive presets clobbered explicit params: %+v", p)
	}
	p = ClassBatch.ApplyParams(algo.Params{})
	if p.RMax != 0 || p.Walks != 0 {
		t.Errorf("batch class mutated params: %+v", p)
	}
	p = Class("").ApplyParams(algo.Params{})
	if p.RMax != 0 || p.Walks != 0 {
		t.Errorf("classless spec mutated params: %+v", p)
	}

	if d := ClassInteractive.DefaultTimeout(); d != InteractiveTimeout {
		t.Errorf("interactive default timeout %s", d)
	}
	if d := ClassBatch.DefaultTimeout(); d != 0 {
		t.Errorf("batch default timeout %s, want 0", d)
	}

	// Shape-default routing.
	if c := resolveClass(Spec{Dataset: "d", Algorithm: "pagerank"}); c != ClassInteractive {
		t.Errorf("plain spec resolved %q", c)
	}
	if c := resolveClass(Spec{Dataset: "d", Queries: []SubSpec{{}}}); c != ClassBatch {
		t.Errorf("batch spec resolved %q", c)
	}
	if c := resolveClass(Spec{Dataset: "d", Class: ClassBatch}); c != ClassBatch {
		t.Errorf("explicit class resolved %q", c)
	}

	// applyClassPresets: classless passes through bit-identical.
	in := Spec{Dataset: "d", Algorithm: "bippr-pair", Params: algo.Params{Source: "s"}}
	if out := applyClassPresets(in); out.Params != in.Params || out.TimeoutMS != 0 {
		t.Errorf("classless spec mutated: %+v", out)
	}
	classed := applyClassPresets(Spec{Dataset: "d", Algorithm: "bippr-pair", Class: ClassInteractive,
		Queries: []SubSpec{{Params: algo.Params{Source: "s", Target: "t"}}}})
	if classed.TimeoutMS != InteractiveTimeout.Milliseconds() {
		t.Errorf("interactive default deadline not applied: %d", classed.TimeoutMS)
	}
	if classed.Queries[0].Params.RMax != InteractiveRMax {
		t.Errorf("presets not applied to subqueries: %+v", classed.Queries[0].Params)
	}
}
