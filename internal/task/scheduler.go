package task

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/obs"
	"github.com/cyclerank/cyclerank-go/internal/traffic"
)

// SchedulerConfig configures a Scheduler.
type SchedulerConfig struct {
	// Registry resolves algorithm names; required.
	Registry *algo.Registry
	// Load fetches dataset graphs by name; required.
	Load LoaderFunc
	// Store persists results and logs; required.
	Store *datastore.Store
	// Workers is the interactive executor pool size (default 2). The
	// paper's computational nodes "can be scaled up or down depending
	// on the system's workload".
	Workers int
	// BatchWorkers is the batch-tier executor pool size (default:
	// Workers). Batch-class tasks run on their own bounded pool so an
	// interactive flood cannot starve queued batches and a long batch
	// cannot occupy an interactive executor.
	BatchWorkers int
	// Admission bounds the interactive tier (see AdmissionConfig). The
	// zero value admits everything.
	Admission AdmissionConfig
	// Traffic, when non-nil, receives the warmable artifact keys of
	// every admitted submission, feeding the learned pre-warm.
	Traffic *traffic.Sketch
	// QueueDepth is the pending-task buffer (default 128). Submission
	// fails fast when the queue is full rather than blocking the API.
	QueueDepth int
	// TopK is how many top entries each result persists (default 50).
	TopK int
	// TaskTimeout bounds a single task's execution; a task exceeding
	// it fails with a timeout error. Zero means no limit. A public
	// demo sets this so one pathological query (K=10 on a dense
	// graph) cannot monopolize an executor forever.
	TaskTimeout time.Duration
	// SlowQueryThreshold turns on the slow-query log: every task whose
	// execution takes at least this long emits one structured JSON
	// line with its full phase breakdown. Zero disables the log.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives the slow-query lines (default os.Stderr).
	SlowQueryLog io.Writer
}

func (c SchedulerConfig) validate() error {
	if c.Registry == nil {
		return fmt.Errorf("task: scheduler needs a registry")
	}
	if c.Load == nil {
		return fmt.Errorf("task: scheduler needs a dataset loader")
	}
	if c.Store == nil {
		return fmt.Errorf("task: scheduler needs a datastore")
	}
	return nil
}

// Scheduler owns the task queue, the executor pool, the dataset cache
// and the in-memory task table. It is safe for concurrent use.
type Scheduler struct {
	cfg        SchedulerConfig
	queue      chan string // interactive-tier task ids
	batchQueue chan string // batch-tier task ids

	mu      sync.RWMutex
	tasks   map[string]*Task
	cancels map[string]context.CancelFunc
	sets    map[string][]string // query set id -> task ids

	cacheMu sync.Mutex
	cache   map[string]*graph.Graph
	stats   map[string]CostStats // per-dataset cost-model stats

	// Admission state (see admission.go): interactive reservations by
	// task id, pending (admitted, not yet executing) count, the summed
	// estimated-cost backlog (units and calibrated milliseconds), and
	// the live interactive slot limit (moved by the auto-sizing
	// hill-climb when AdmissionConfig.AutoSlots).
	admitMu        sync.Mutex
	admitted       map[string]*admitRecord
	admitPending   int
	admitBacklog   float64
	admitBacklogMS float64
	slotLimit      int

	// Control-loop state: the per-family EWMA cost calibrator and the
	// windowed interactive run-time percentiles the SLO shed and slot
	// tuner read.
	calibrator *calibrator
	latWin     *latencyWindow

	wg      sync.WaitGroup
	stop    context.CancelFunc
	stopped chan struct{}

	// Per-instance workload metrics, merged into the server's scrape
	// endpoint through MetricsRegistry.
	reg          *obs.Registry
	tasksDone    *obs.Counter
	tasksFailed  *obs.Counter
	tasksCancel  *obs.Counter
	waitSeconds  *obs.Histogram
	runSeconds   *obs.Histogram
	subqSeconds  *obs.Histogram
	batchFanout  *obs.Histogram
	batchQueries *obs.Counter
	graphLoads   *obs.Counter
	admittedInt  *obs.Counter
	admittedBat  *obs.Counter
	shedSlots    *obs.Counter
	shedQueue    *obs.Counter
	shedBacklog  *obs.Counter
	shedSLO      *obs.Counter
	deadlineExc  *obs.Counter
	costPerMS    *obs.Histogram
	predictRatio *obs.Histogram
	runSecsInt   *obs.Histogram
	runSecsBat   *obs.Histogram
	slotAdjUp    *obs.Counter
	slotAdjDown  *obs.Counter

	slowMu sync.Mutex // serializes slow-query log lines
}

// NewScheduler builds a scheduler and starts its executor pool.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = cfg.Workers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 128
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 50
	}
	if cfg.SlowQueryLog == nil {
		cfg.SlowQueryLog = os.Stderr
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := obs.NewRegistry()
	s := &Scheduler{
		cfg:        cfg,
		queue:      make(chan string, cfg.QueueDepth),
		batchQueue: make(chan string, cfg.QueueDepth),
		tasks:      make(map[string]*Task),
		cancels:    make(map[string]context.CancelFunc),
		sets:       make(map[string][]string),
		cache:      make(map[string]*graph.Graph),
		stats:      make(map[string]CostStats),
		admitted:   make(map[string]*admitRecord),
		slotLimit:  cfg.Admission.initialSlots(),
		calibrator: newCalibrator(),
		latWin:     newLatencyWindow(),
		stop:       cancel,
		stopped:    make(chan struct{}),

		reg:          r,
		tasksDone:    r.Counter("cyclerank_scheduler_tasks_total", "Tasks reaching a terminal state.", "state", "done"),
		tasksFailed:  r.Counter("cyclerank_scheduler_tasks_total", "Tasks reaching a terminal state.", "state", "failed"),
		tasksCancel:  r.Counter("cyclerank_scheduler_tasks_total", "Tasks reaching a terminal state.", "state", "cancelled"),
		waitSeconds:  r.Histogram("cyclerank_scheduler_task_wait_seconds", "Time a task spent queued before an executor picked it up.", nil),
		runSeconds:   r.Histogram("cyclerank_scheduler_task_run_seconds", "Time a task spent executing.", nil),
		subqSeconds:  r.Histogram("cyclerank_scheduler_subquery_seconds", "Per-subquery execution time inside batch tasks.", nil),
		batchFanout:  r.Histogram("cyclerank_scheduler_batch_fanout", "Effective intra-batch worker pool size per batch task.", obs.ExponentialBuckets(1, 2, 9)),
		batchQueries: r.Counter("cyclerank_scheduler_batch_queries_total", "Subqueries executed across all batch tasks."),
		graphLoads:   r.Counter("cyclerank_scheduler_graph_loads_total", "Dataset graphs actually loaded (graph-cache misses). The admission fast-reject path never increments this."),
		admittedInt:  r.Counter("cyclerank_admission_admitted_total", "Tasks admitted by the serving tier.", "class", "interactive"),
		admittedBat:  r.Counter("cyclerank_admission_admitted_total", "Tasks admitted by the serving tier.", "class", "batch"),
		shedSlots:    r.Counter("cyclerank_admission_shed_total", "Submissions shed by admission control.", "reason", "slots"),
		shedQueue:    r.Counter("cyclerank_admission_shed_total", "Submissions shed by admission control.", "reason", "queue"),
		shedBacklog:  r.Counter("cyclerank_admission_shed_total", "Submissions shed by admission control.", "reason", "backlog"),
		shedSLO:      r.Counter("cyclerank_admission_shed_total", "Submissions shed by admission control.", "reason", "slo"),
		deadlineExc:  r.Counter("cyclerank_admission_deadline_exceeded_total", "Tasks and batch subqueries failed by a propagated deadline."),
		costPerMS:    r.Histogram("cyclerank_cost_units_per_ms", "Post-hoc estimator calibration: estimated cost units per measured run millisecond of completed tasks.", obs.ExponentialBuckets(1, 4, 12)),
		predictRatio: r.Histogram("cyclerank_cost_prediction_ratio", "Predicted-over-measured run-time ratio of completed tasks (1.0 = perfectly calibrated).", obs.ExponentialBuckets(1.0/64, 2, 13)),
		runSecsInt:   r.Histogram("cyclerank_class_run_seconds", "Task execution time by serving class.", nil, "class", "interactive"),
		runSecsBat:   r.Histogram("cyclerank_class_run_seconds", "Task execution time by serving class.", nil, "class", "batch"),
		slotAdjUp:    r.Counter("cyclerank_admission_slot_adjustments_total", "Interactive slot-limit moves by the auto-sizing hill-climb.", "direction", "up"),
		slotAdjDown:  r.Counter("cyclerank_admission_slot_adjustments_total", "Interactive slot-limit moves by the auto-sizing hill-climb.", "direction", "down"),
	}
	r.GaugeFunc("cyclerank_scheduler_queue_depth", "Task ids waiting in the interactive queue buffer.", func() float64 {
		return float64(len(s.queue))
	})
	r.GaugeFunc("cyclerank_scheduler_batch_queue_depth", "Task ids waiting in the batch queue buffer.", func() float64 {
		return float64(len(s.batchQueue))
	})
	r.GaugeFunc("cyclerank_scheduler_workers", "Interactive executor pool size.", func() float64 {
		return float64(cfg.Workers)
	})
	r.GaugeFunc("cyclerank_scheduler_batch_workers", "Batch executor pool size.", func() float64 {
		return float64(cfg.BatchWorkers)
	})
	r.GaugeFunc("cyclerank_admission_backlog_units", "Summed estimated cost of in-flight interactive tasks.", func() float64 {
		s.admitMu.Lock()
		defer s.admitMu.Unlock()
		return s.admitBacklog
	})
	r.GaugeFunc("cyclerank_admission_inflight", "Interactive tasks admitted and not yet terminal.", func() float64 {
		s.admitMu.Lock()
		defer s.admitMu.Unlock()
		return float64(len(s.admitted))
	})
	r.GaugeFunc("cyclerank_admission_backlog_ms", "Summed predicted milliseconds of in-flight interactive work (calibrated units).", func() float64 {
		s.admitMu.Lock()
		defer s.admitMu.Unlock()
		return s.admitBacklogMS
	})
	r.GaugeFunc("cyclerank_admission_interactive_slots", "Live interactive slot limit (moved by the auto-sizing hill-climb when active).", func() float64 {
		s.admitMu.Lock()
		defer s.admitMu.Unlock()
		return float64(s.slotLimit)
	})
	r.GaugeFunc("cyclerank_admission_interactive_p99_seconds", "Windowed interactive p99 run time the slo shed decision reads.", func() float64 {
		p99, _ := s.latWin.p99()
		return p99 / 1e3
	})
	for _, fam := range CostFamilies() {
		fam := fam
		r.GaugeFunc("cyclerank_cost_calibration_units_per_ms", "Learned EWMA cost-model rate by algorithm family (0 until the first observation).", func() float64 {
			if rate, learned := s.calibrator.rate(fam); learned {
				return rate
			}
			return 0
		}, "family", fam)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.executor(ctx, i, s.queue)
	}
	for i := 0; i < cfg.BatchWorkers; i++ {
		s.wg.Add(1)
		go s.executor(ctx, cfg.Workers+i, s.batchQueue)
	}
	if cfg.Admission.AutoSlots() {
		s.wg.Add(1)
		go s.slotTuner(ctx)
	}
	go func() {
		s.wg.Wait()
		close(s.stopped)
	}()
	return s, nil
}

// slotTuneInterval paces the slot auto-sizing hill-climb. Package
// variable so the control-loop tests can compress time.
var slotTuneInterval = 5 * time.Second

// slotTuner is the bounded hill-climb that auto-sizes the interactive
// slot limit from observed run-time percentiles: p99 over the SLO →
// one slot down (less concurrency, less queueing ahead of each task);
// p99 comfortably under half the SLO → one slot up (reclaim
// throughput). One step per tick keeps the loop stable — the
// percentile window must refill with post-move samples before the next
// decision.
func (s *Scheduler) slotTuner(ctx context.Context) {
	defer s.wg.Done()
	ticker := time.NewTicker(slotTuneInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.tuneSlots()
		}
	}
}

func (s *Scheduler) tuneSlots() {
	cfg := s.cfg.Admission
	p99, n := s.latWin.p99()
	if n < sloMinSamples {
		return
	}
	slo := float64(cfg.SLOInteractive) / float64(time.Millisecond)
	s.admitMu.Lock()
	switch {
	case p99 > slo && s.slotLimit > cfg.slotsMin():
		s.slotLimit--
		s.slotAdjDown.Inc()
	case p99 < slo/2 && s.slotLimit < cfg.InteractiveSlotsMax:
		s.slotLimit++
		s.slotAdjUp.Inc()
	}
	s.admitMu.Unlock()
}

// MetricsRegistry returns the scheduler's workload metrics registry,
// for merging into a scrape endpoint.
func (s *Scheduler) MetricsRegistry() *obs.Registry { return s.reg }

// stampTimesLocked derives a task's wait_ms/run_ms split from its
// transition timestamps. Idempotent; called wherever Started or
// Finished is set, under s.mu (or on a private copy).
func stampTimesLocked(t *Task) {
	switch {
	case !t.Started.IsZero():
		t.WaitMS = t.Started.Sub(t.Submitted).Milliseconds()
		if !t.Finished.IsZero() {
			t.RunMS = t.Finished.Sub(t.Started).Milliseconds()
		}
	case !t.Finished.IsZero():
		// Never executed: the whole lifetime was queueing.
		t.WaitMS = t.Finished.Sub(t.Submitted).Milliseconds()
	}
}

// Submit schedules every spec of a query set and returns the query-set
// (comparison) id plus the individual task ids, in spec order.
//
// Admission runs here, on the fast path: every spec is priced from
// cached graph stats (EstimateCost — no graph load), interactive-class
// specs reserve capacity all-or-nothing, and an over-budget query set
// returns *ShedError with nothing registered, nothing enqueued and no
// graph touched. Batch-class specs are never shed.
func (s *Scheduler) Submit(specs []Spec) (querySet string, taskIDs []string, err error) {
	if len(specs) == 0 {
		return "", nil, fmt.Errorf("task: empty query set")
	}
	querySet, err = NewID()
	if err != nil {
		return "", nil, err
	}
	now := time.Now()

	// Create all tasks first so a full queue cannot leave a partially
	// registered query set.
	created := make([]*Task, len(specs))
	reserve := make(map[string]admitReserve)
	for i, spec := range specs {
		id, err := NewID()
		if err != nil {
			return "", nil, err
		}
		units := EstimateCost(spec, s.CostStats(spec.Dataset))
		family := CostFamily(spec)
		t := &Task{
			ID:            id,
			QuerySet:      querySet,
			Dataset:       spec.Dataset,
			Algorithm:     spec.Algorithm,
			Params:        spec.Params,
			State:         StatePending,
			Submitted:     now,
			Class:         resolveClass(spec),
			TimeoutMS:     spec.TimeoutMS,
			EstimatedCost: units,
			CostFamily:    family,
			PredictedMS:   s.calibrator.predictMS(family, units),
		}
		if spec.IsBatch() {
			if len(spec.Queries) > MaxBatchQueries {
				return "", nil, fmt.Errorf("task: batch has %d queries, limit %d", len(spec.Queries), MaxBatchQueries)
			}
			t.Queries = append([]SubSpec(nil), spec.Queries...)
			t.QueryStates = make([]State, len(t.Queries))
			for j := range t.QueryStates {
				t.QueryStates[j] = StatePending
			}
			t.Parallelism = spec.Parallelism
		}
		if t.Class == ClassInteractive {
			reserve[id] = admitReserve{units: t.EstimatedCost, ms: t.PredictedMS}
		}
		created[i] = t
	}

	if shed := s.tryAdmit(reserve); shed != nil {
		return "", nil, shed
	}
	for _, t := range created {
		if t.Class == ClassInteractive {
			s.admittedInt.Inc()
		} else {
			s.admittedBat.Inc()
		}
	}
	for _, spec := range specs {
		recordTraffic(s.cfg.Traffic, spec)
	}

	s.mu.Lock()
	for _, t := range created {
		s.tasks[t.ID] = t
		s.sets[querySet] = append(s.sets[querySet], t.ID)
		taskIDs = append(taskIDs, t.ID)
	}
	s.mu.Unlock()

	for _, t := range created {
		tier := s.queue
		if t.Class == ClassBatch {
			tier = s.batchQueue
		}
		select {
		case tier <- t.ID:
		default:
			s.failTask(t.ID, fmt.Errorf("task: queue full"))
		}
	}
	return querySet, taskIDs, nil
}

// Status returns a snapshot of the task.
func (s *Scheduler) Status(taskID string) (Task, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tasks[taskID]
	if !ok {
		return Task{}, fmt.Errorf("task: unknown task %q", taskID)
	}
	return *t, nil
}

// QuerySet returns snapshots of every task in a query set, in
// submission order.
func (s *Scheduler) QuerySet(id string) ([]Task, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids, ok := s.sets[id]
	if !ok {
		return nil, fmt.Errorf("task: unknown query set %q", id)
	}
	out := make([]Task, 0, len(ids))
	for _, tid := range ids {
		out = append(out, *s.tasks[tid])
	}
	return out, nil
}

// Tasks returns snapshots of all known tasks, newest first.
func (s *Scheduler) Tasks() []Task {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Submitted.Equal(out[j].Submitted) {
			return out[i].Submitted.After(out[j].Submitted)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Cancel requests cancellation of a running or pending task. Cancelling
// an already terminal task is a no-op.
func (s *Scheduler) Cancel(taskID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[taskID]
	if !ok {
		return fmt.Errorf("task: unknown task %q", taskID)
	}
	if t.State.Terminal() {
		return nil
	}
	if cancel, running := s.cancels[taskID]; running {
		cancel()
		return nil
	}
	// Pending: mark cancelled now; the executor skips it when popped.
	t.State = StateCancelled
	t.Finished = time.Now()
	stampTimesLocked(t)
	finalizeQueryStatesLocked(t)
	s.tasksCancel.Inc()
	s.admitRelease(taskID)
	return nil
}

// finalizeQueryStatesLocked resolves a batch task's non-terminal
// subquery states to cancelled. Termination paths that bypass
// executeBatch — cancelling a still-pending batch, a dataset load
// failure — must not leave query_states reporting "pending" on a task
// that will never run them. Idempotent; the caller must hold s.mu.
func finalizeQueryStatesLocked(t *Task) {
	if !t.IsBatch() {
		return
	}
	states := append([]State(nil), t.QueryStates...)
	for i, st := range states {
		if !st.Terminal() {
			states[i] = StateCancelled
			t.QueriesDone++
		}
	}
	t.QueryStates = states
}

// Shutdown stops the executor pool, waiting until in-flight tasks
// finish or ctx expires.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.stop()
	select {
	case <-s.stopped:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("task: shutdown timed out: %w", ctx.Err())
	}
}

// WaitQuerySet blocks until every task of the query set is terminal or
// ctx expires, returning the final snapshots.
func (s *Scheduler) WaitQuerySet(ctx context.Context, id string) ([]Task, error) {
	for {
		tasks, err := s.QuerySet(id)
		if err != nil {
			return nil, err
		}
		allDone := true
		for _, t := range tasks {
			if !t.State.Terminal() {
				allDone = false
				break
			}
		}
		if allDone {
			return tasks, nil
		}
		select {
		case <-ctx.Done():
			return tasks, fmt.Errorf("task: wait: %w", ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func (s *Scheduler) failTask(id string, err error) {
	s.mu.Lock()
	if t, ok := s.tasks[id]; ok && !t.State.Terminal() {
		t.State = StateFailed
		t.Error = err.Error()
		t.Finished = time.Now()
		stampTimesLocked(t)
		finalizeQueryStatesLocked(t)
		s.tasksFailed.Inc()
		if !t.Started.IsZero() {
			sec := t.Finished.Sub(t.Started).Seconds()
			s.runSeconds.Observe(sec)
			s.observeClassRun(t.Class, sec)
		}
	}
	s.mu.Unlock()
	s.admitRelease(id)
}

// LoadGraph fetches a dataset through the scheduler's per-name graph
// cache — the same cache executors resolve task datasets through, so
// an out-of-band caller (the server's startup pre-warm) receives the
// exact *Graph pointer later queries will run against, and
// pointer-keyed caches (the index store's memory tier) warm for both.
func (s *Scheduler) LoadGraph(name string) (*graph.Graph, error) {
	return s.loadGraph(name)
}

// loadGraph fetches a dataset with per-name caching: repeated queries
// against the same dataset (the common comparison workflow) parse or
// generate the graph once.
func (s *Scheduler) loadGraph(name string) (*graph.Graph, error) {
	s.cacheMu.Lock()
	if g, ok := s.cache[name]; ok {
		s.cacheMu.Unlock()
		return g, nil
	}
	s.cacheMu.Unlock()

	g, err := s.cfg.Load(name)
	if err != nil {
		return nil, err
	}
	s.graphLoads.Inc()
	s.cacheMu.Lock()
	s.cache[name] = g
	// Remember the shape for the cost model: the admission fast path
	// prices later submissions from these numbers without loading.
	s.stats[name] = CostStats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	s.cacheMu.Unlock()
	return g, nil
}

// LoadedGraphRow describes one resident dataset for capacity
// planning: its shape plus the bytes it pins, split out so operators
// can see what each derived hot-path view — the cache-conscious
// layout, the walk sample table, the compressed in-CSR — costs on top
// of the bare CSR (memory_bytes includes all of them).
type LoadedGraphRow struct {
	Name             string `json:"name"`
	Nodes            int    `json:"nodes"`
	Edges            int64  `json:"edges"`
	MemoryBytes      int64  `json:"memory_bytes"`
	LayoutBytes      int64  `json:"layout_bytes"`
	SampleTableBytes int64  `json:"sample_table_bytes"`
	CompressedBytes  int64  `json:"compressed_bytes"`
}

// LoadedGraphs snapshots the scheduler's graph cache, sorted by name.
func (s *Scheduler) LoadedGraphs() []LoadedGraphRow {
	s.cacheMu.Lock()
	rows := make([]LoadedGraphRow, 0, len(s.cache))
	for name, g := range s.cache {
		rows = append(rows, LoadedGraphRow{
			Name:             name,
			Nodes:            g.NumNodes(),
			Edges:            g.NumEdges(),
			MemoryBytes:      g.MemoryFootprint(),
			LayoutBytes:      g.LayoutBytes(),
			SampleTableBytes: g.SampleTableBytes(),
			CompressedBytes:  g.CompressedBytes(),
		})
	}
	s.cacheMu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// InvalidateDataset drops a dataset from the cache (after re-upload).
func (s *Scheduler) InvalidateDataset(name string) {
	s.cacheMu.Lock()
	delete(s.cache, name)
	delete(s.stats, name)
	s.cacheMu.Unlock()
}

// executor is one computational worker: it pops task ids from its
// tier's queue, runs the algorithm, and persists the result and log.
func (s *Scheduler) executor(ctx context.Context, worker int, queue <-chan string) {
	defer s.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case id := <-queue:
			s.execute(ctx, worker, id)
		}
	}
}

// effectiveTimeout resolves a task's deadline: the tighter of the
// scheduler-wide TaskTimeout and the spec's own timeout_ms. Zero
// means unlimited.
func (s *Scheduler) effectiveTimeout(t *Task) time.Duration {
	timeout := s.cfg.TaskTimeout
	if t.TimeoutMS > 0 {
		spec := time.Duration(t.TimeoutMS) * time.Millisecond
		if timeout == 0 || spec < timeout {
			timeout = spec
		}
	}
	return timeout
}

func (s *Scheduler) execute(ctx context.Context, worker int, id string) {
	s.mu.Lock()
	t, ok := s.tasks[id]
	if !ok || t.State != StatePending {
		s.mu.Unlock()
		return
	}
	t.State = StateRunning
	t.Started = time.Now()
	stampTimesLocked(t)
	var (
		taskCtx context.Context
		cancel  context.CancelFunc
	)
	timeout := s.effectiveTimeout(t)
	if timeout > 0 {
		taskCtx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		taskCtx, cancel = context.WithCancel(ctx)
	}
	s.cancels[id] = cancel
	snapshot := *t
	s.mu.Unlock()
	s.admitStarted(id)
	s.waitSeconds.Observe(snapshot.Started.Sub(snapshot.Submitted).Seconds())

	// Every task runs under a trace so its result carries the phase
	// breakdown; instrumented layers below (bippr, algo) attach their
	// spans to this context.
	taskCtx, trace := obs.NewTrace(taskCtx, "task")

	defer func() {
		cancel()
		s.mu.Lock()
		delete(s.cancels, id)
		s.mu.Unlock()
	}()

	s.log(id, fmt.Sprintf("worker %d: executing %s on %s (%s)", worker, snapshot.Algorithm, snapshot.Dataset, snapshot.Params))

	g, err := s.loadGraph(snapshot.Dataset)
	if err != nil {
		s.finish(id, err)
		return
	}
	if snapshot.IsBatch() {
		s.executeBatch(taskCtx, trace, t, snapshot, g, timeout)
		return
	}
	res, err := algo.Run(taskCtx, s.cfg.Registry, snapshot.Algorithm, g, snapshot.Params)
	trace.End()
	if err != nil {
		switch {
		case errors.Is(taskCtx.Err(), context.DeadlineExceeded):
			// Timeouts are failures, not user cancellations: the user
			// should see why their task produced no result. The wrapped
			// error names the phase the deadline landed in (e.g. "bippr:
			// reverse push cancelled", "bippr: walks cancelled").
			s.deadlineExc.Inc()
			s.finish(id, fmt.Errorf("task: execution exceeded %s timeout: %w", timeout, err))
		case taskCtx.Err() != nil:
			s.cancelled(id)
		default:
			s.finish(id, err)
		}
		return
	}

	doc := Result{
		Top:        res.Top(s.cfg.TopK),
		Iterations: res.Iterations,
		Residual:   res.Residual,
		Cycles:     res.CyclesFound,
		GraphNodes: g.NumNodes(),
		GraphEdges: g.NumEdges(),
		Phases:     trace.Tree().Children,
	}

	// Persist the result and the completion log BEFORE publishing the
	// terminal state: the moment an observer sees StateDone, the
	// result document and full log must already be readable.
	finished := time.Now()
	s.mu.Lock()
	done := *t
	done.State = StateDone
	done.Finished = finished
	stampTimesLocked(&done)
	s.mu.Unlock()
	doc.Task = done

	if err := s.cfg.Store.SaveResult(id, doc); err != nil {
		s.failTask(id, err)
		s.log(id, "persisting result failed: "+err.Error())
		return
	}
	s.log(id, fmt.Sprintf("done in %s", done.Duration()))

	s.mu.Lock()
	t.State = StateDone
	t.Finished = finished
	stampTimesLocked(t)
	s.mu.Unlock()
	s.admitRelease(id)
	s.tasksDone.Inc()
	sec := finished.Sub(done.Started).Seconds()
	s.runSeconds.Observe(sec)
	s.observeClassRun(done.Class, sec)
	s.observeCost(done)
	s.maybeLogSlow(done, doc.Phases)
}

// observeCost closes the calibration loop on one completed task: the
// units-per-ms histogram gets the measurement, the per-family EWMA
// calibrator gets the same number (so the NEXT estimate converts to
// milliseconds at the refreshed rate), and the prediction-ratio
// histogram tracks how well the loop is converging.
//
// The measured duration comes from the timestamps, NOT the integer
// RunMS: truncation dropped sub-millisecond tasks entirely and counted
// a 1.9 ms task as 1 ms — up to 2x inflated units/ms on exactly the
// fast interactive traffic the EWMA must calibrate on.
func (s *Scheduler) observeCost(t Task) {
	if t.EstimatedCost <= 0 || t.Started.IsZero() || t.Finished.IsZero() {
		return
	}
	ms := t.Finished.Sub(t.Started).Seconds() * 1e3
	if ms <= 0 {
		return
	}
	s.costPerMS.Observe(t.EstimatedCost / ms)
	s.calibrator.observe(t.CostFamily, t.EstimatedCost, ms)
	if t.PredictedMS > 0 {
		s.predictRatio.Observe(t.PredictedMS / ms)
	}
}

// observeClassRun feeds the per-class latency histograms and, for
// interactive tasks, the SLO percentile window.
func (s *Scheduler) observeClassRun(class Class, seconds float64) {
	if class == ClassInteractive {
		s.runSecsInt.Observe(seconds)
		s.latWin.observe(seconds * 1e3)
	} else {
		s.runSecsBat.Observe(seconds)
	}
}

// maybeLogSlow emits one structured JSON line for a task whose
// execution met the slow-query threshold: the task identity, its
// wait/run split, and the full phase breakdown — everything needed to
// say where the milliseconds went without re-running the query.
func (s *Scheduler) maybeLogSlow(t Task, phases []obs.SpanNode) {
	if s.cfg.SlowQueryThreshold <= 0 || t.Started.IsZero() || t.Finished.Sub(t.Started) < s.cfg.SlowQueryThreshold {
		return
	}
	line, err := json.Marshal(struct {
		TS          string         `json:"ts"`
		Msg         string         `json:"msg"`
		Task        string         `json:"task"`
		QuerySet    string         `json:"query_set"`
		Dataset     string         `json:"dataset"`
		Algorithm   string         `json:"algorithm"`
		WaitMS      int64          `json:"wait_ms"`
		RunMS       int64          `json:"run_ms"`
		ThresholdMS int64          `json:"threshold_ms"`
		Phases      []obs.SpanNode `json:"phases,omitempty"`
	}{
		TS:          t.Finished.UTC().Format(time.RFC3339Nano),
		Msg:         "slow query",
		Task:        t.ID,
		QuerySet:    t.QuerySet,
		Dataset:     t.Dataset,
		Algorithm:   t.Algorithm,
		WaitMS:      t.WaitMS,
		RunMS:       t.RunMS,
		ThresholdMS: s.cfg.SlowQueryThreshold.Milliseconds(),
		Phases:      phases,
	})
	if err != nil {
		return
	}
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	fmt.Fprintln(s.cfg.SlowQueryLog, string(line))
}

// batchProgressInterval throttles mid-batch result persistence: at
// most one fsync'd snapshot per interval, so progress observability
// never dominates the wall-clock of a batch of cheap cached queries.
const batchProgressInterval = time.Second

// clampParallelism bounds a batch's intra-batch pool size: 0 selects
// GOMAXPROCS, every value is capped by GOMAXPROCS (subqueries are
// CPU-bound; more workers would only contend) and by the batch size,
// and the floor is 1 (sequential).
func clampParallelism(requested, queries int) int {
	p := requested
	procs := runtime.GOMAXPROCS(0)
	if p <= 0 || p > procs {
		p = procs
	}
	if p > queries {
		p = queries
	}
	if p < 1 {
		p = 1
	}
	return p
}

// subqueryError contextualizes one subquery's failure with its index
// and parameters (which name the source/target), so a single failed
// query inside a large batch is identifiable from the task view alone.
func subqueryError(i int, q SubSpec, err error) string {
	return fmt.Sprintf("query %d (%s %s): %v", i, q.Algorithm, q.Params, err)
}

// executeBatch runs a batch task: the graph is already loaded (once,
// for all subqueries), and the subqueries fan across a bounded
// intra-batch worker pool (Spec.Parallelism, see clampParallelism)
// against the shared registry — so bidirectional subqueries against
// one target share a single reverse push through the estimator's
// index store, and their walk chunks flow through the same worker
// pool. Results are bit-identical for every pool size: each subquery
// is independent and derives its walk seeds from (seed, source,
// chunk), so completion order cannot change any answer (only
// cache-timing effort counters may differ). A subquery failure is
// recorded in its SubResult without failing the batch; cancellation
// and timeout stop the batch and mark the remaining subqueries
// cancelled. Progress snapshots of the result document are persisted
// while the batch runs (throttled to one per batchProgressInterval),
// so polls of a running batch already see finished subresults.
func (s *Scheduler) executeBatch(ctx context.Context, trace *obs.Trace, t *Task, snapshot Task, g *graph.Graph, timeout time.Duration) {
	id := snapshot.ID
	subs := make([]SubResult, len(snapshot.Queries))
	doc := Result{
		GraphNodes: g.NumNodes(),
		GraphEdges: g.NumEdges(),
		Queries:    subs,
	}
	for i := range subs {
		subs[i].Algorithm = snapshot.Queries[i].Algorithm
		subs[i].Params = snapshot.Queries[i].Params
		subs[i].State = StatePending
	}

	workers := clampParallelism(snapshot.Parallelism, len(snapshot.Queries))
	s.log(id, fmt.Sprintf("batch: %d queries, parallelism %d", len(subs), workers))
	s.batchFanout.Observe(float64(workers))
	s.batchQueries.Add(int64(len(subs)))

	var (
		// subMu guards subs entries against the progress snapshots a
		// concurrent worker may trigger; each worker writes only its
		// own index, but persistence marshals the whole slice.
		subMu       sync.Mutex
		lastPersist time.Time // guarded by subMu; zero: first persist fires
		interrupted atomic.Bool
		// persistMu serializes snapshot-taking WITH the write: without
		// it a worker could copy an older snapshot, lose the CPU, and
		// persist it over a sibling's newer one — a poll would see a
		// done subquery regress to pending.
		persistMu sync.Mutex
	)

	// snapshotDoc copies the result document under subMu so progress
	// persistence never races a sibling subquery's write.
	snapshotDoc := func() Result {
		out := doc
		subMu.Lock()
		out.Queries = append([]SubResult(nil), subs...)
		subMu.Unlock()
		return out
	}

	runOne := func(i int) {
		q := snapshot.Queries[i]
		if ctx.Err() != nil {
			subMu.Lock()
			subs[i].State = StateCancelled
			subMu.Unlock()
			s.setQueryState(id, i, StateCancelled)
			interrupted.Store(true)
			return
		}
		s.setQueryState(id, i, StateRunning)
		start := time.Now()
		// Each subquery gets its own span under the batch trace; the
		// span *set* is identical for every pool size because every
		// subquery opens the same spans regardless of which worker or
		// in what order it ran.
		qctx, span := obs.StartSpan(ctx, "subquery")
		span.SetMetric("index", float64(i))
		// A subquery deadline nests inside the batch's: the qctx expires
		// alone, the batch ctx stays live, and siblings keep running.
		var qcancel context.CancelFunc = func() {}
		if q.TimeoutMS > 0 {
			qctx, qcancel = context.WithTimeout(qctx, time.Duration(q.TimeoutMS)*time.Millisecond)
		}
		res, err := algo.Run(qctx, s.cfg.Registry, q.Algorithm, g, q.Params)
		qcancel()
		span.End()
		dur := time.Since(start)
		s.subqSeconds.Observe(dur.Seconds())
		sub := SubResult{
			Algorithm:  q.Algorithm,
			Params:     q.Params,
			DurationMS: dur.Milliseconds(),
			Phases:     span.Node().Children,
		}
		switch {
		case err == nil:
			sub.State = StateDone
			sub.Top = res.Top(s.cfg.TopK)
			sub.Iterations = res.Iterations
			sub.Residual = res.Residual
			sub.Cycles = res.CyclesFound
		case ctx.Err() != nil:
			sub.State = StateCancelled
			sub.Error = subqueryError(i, q, err)
			interrupted.Store(true)
		case errors.Is(qctx.Err(), context.DeadlineExceeded):
			// Only this subquery's own deadline fired: it fails alone,
			// the batch is NOT interrupted. The wrapped error names the
			// phase the deadline landed in.
			s.deadlineExc.Inc()
			sub.State = StateFailed
			sub.Error = subqueryError(i, q, fmt.Errorf("execution exceeded %s timeout: %w",
				time.Duration(q.TimeoutMS)*time.Millisecond, err))
		default:
			sub.State = StateFailed
			sub.Error = subqueryError(i, q, err)
		}
		subMu.Lock()
		subs[i] = sub
		// Progress persistence is best-effort — a poll mid-batch reads
		// completed subresults; the authoritative write is the final
		// one — and throttled: every persisted snapshot pays a full
		// fsync'd document rewrite, which would dominate a large batch
		// of cheap cached queries if written per subquery.
		persist := false
		if now := time.Now(); now.Sub(lastPersist) >= batchProgressInterval {
			lastPersist = now
			persist = true
		}
		subMu.Unlock()
		s.setQueryState(id, i, sub.State)
		s.log(id, fmt.Sprintf("batch query %d/%d (%s %s): %s", i+1, len(subs), q.Algorithm, q.Params, sub.State))
		if persist {
			persistMu.Lock()
			s.persistBatchProgress(id, snapshotDoc())
			persistMu.Unlock()
		}
	}

	if workers == 1 {
		for i := range snapshot.Queries {
			runOne(i)
		}
	} else {
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(snapshot.Queries) {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}

	// Only an interruption that actually cost a subquery fails the
	// batch: a deadline that fires after the last subquery completed
	// must not retroactively turn a fully successful batch into a
	// timeout (ctx.Err() alone cannot distinguish the two — context
	// errors are sticky).
	if interrupted.Load() {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.deadlineExc.Inc()
			s.finish(id, fmt.Errorf("task: execution exceeded %s timeout after %d/%d batch queries",
				timeout, doneCount(subs), len(subs)))
		} else {
			s.cancelled(id)
		}
		s.persistBatchProgress(id, doc)
		return
	}

	// Same publish ordering as single tasks: the result document is
	// durable before any observer can see StateDone.
	trace.End()
	doc.Phases = trace.Tree().Children
	finished := time.Now()
	s.mu.Lock()
	done := *t
	s.mu.Unlock()
	done.State = StateDone
	done.Finished = finished
	stampTimesLocked(&done)
	doc.Task = done

	if err := s.cfg.Store.SaveResult(id, doc); err != nil {
		s.failTask(id, err)
		s.log(id, "persisting result failed: "+err.Error())
		return
	}
	s.log(id, fmt.Sprintf("batch done in %s (%d/%d queries succeeded)", done.Duration(), doneCount(subs), len(subs)))

	s.mu.Lock()
	if !t.State.Terminal() {
		t.State = StateDone
		t.Finished = finished
		stampTimesLocked(t)
		s.tasksDone.Inc()
		sec := finished.Sub(t.Started).Seconds()
		s.runSeconds.Observe(sec)
		s.observeClassRun(t.Class, sec)
	}
	s.mu.Unlock()
	s.admitRelease(id)
	s.observeCost(done)
	s.maybeLogSlow(done, doc.Phases)
}

// doneCount counts successful subresults.
func doneCount(subs []SubResult) int {
	n := 0
	for _, s := range subs {
		if s.State == StateDone {
			n++
		}
	}
	return n
}

// setQueryState publishes one subquery's state transition. The states
// slice is replaced, not mutated, so Task snapshots taken by Status
// readers stay internally consistent without copying on every poll.
func (s *Scheduler) setQueryState(id string, i int, st State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok || i >= len(t.QueryStates) {
		return
	}
	states := append([]State(nil), t.QueryStates...)
	states[i] = st
	t.QueryStates = states
	if st.Terminal() {
		t.QueriesDone++
	}
}

// persistBatchProgress re-writes the batch's result document with the
// current task snapshot, best-effort.
func (s *Scheduler) persistBatchProgress(id string, doc Result) {
	if t, err := s.Status(id); err == nil {
		doc.Task = t
	}
	_ = s.cfg.Store.SaveResult(id, doc)
}

func (s *Scheduler) finish(id string, err error) {
	s.failTask(id, err)
	s.log(id, "failed: "+err.Error())
}

func (s *Scheduler) cancelled(id string) {
	s.mu.Lock()
	if t, ok := s.tasks[id]; ok && !t.State.Terminal() {
		t.State = StateCancelled
		t.Finished = time.Now()
		stampTimesLocked(t)
		finalizeQueryStatesLocked(t)
		s.tasksCancel.Inc()
		if !t.Started.IsZero() {
			sec := t.Finished.Sub(t.Started).Seconds()
			s.runSeconds.Observe(sec)
			s.observeClassRun(t.Class, sec)
		}
	}
	s.mu.Unlock()
	s.admitRelease(id)
	s.log(id, "cancelled")
}

func (s *Scheduler) log(id, line string) {
	// Logging failures must not fail the task; logs are best-effort.
	_ = s.cfg.Store.AppendLog(id, time.Now().UTC().Format(time.RFC3339Nano)+" "+line)
}

// Metrics is a snapshot of the scheduler's workload, the signal the
// paper says drives scaling computational nodes "up or down".
type Metrics struct {
	Workers   int `json:"workers"`
	Queued    int `json:"queued"` // tasks sitting in the queue buffer
	Pending   int `json:"pending"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Metrics returns the current workload snapshot.
func (s *Scheduler) Metrics() Metrics {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := Metrics{Workers: s.cfg.Workers, Queued: len(s.queue)}
	for _, t := range s.tasks {
		switch t.State {
		case StatePending:
			m.Pending++
		case StateRunning:
			m.Running++
		case StateDone:
			m.Done++
		case StateFailed:
			m.Failed++
		case StateCancelled:
			m.Cancelled++
		}
	}
	return m
}

// LoadResult fetches a completed task's persisted result document.
func (s *Scheduler) LoadResult(taskID string) (Result, error) {
	var doc Result
	if err := s.cfg.Store.LoadResult(taskID, &doc); err != nil {
		return Result{}, err
	}
	return doc, nil
}
