// Package task implements the platform's execution pipeline: the Task
// Builder, Scheduler, Executor pool and Status components from the
// demo's architecture (Figure 1).
//
// A task is the triple (dataset, algorithm, parameters) — or a
// *batch*: many (algorithm, parameters) queries against one dataset,
// validated individually but scheduled, executed and reported as a
// single unit that loads the graph once (see Spec.Queries). Users
// group tasks into query sets; each query set receives a unique
// comparison id that serves as a permalink for retrieving all of its
// results. The scheduler fetches datasets (with caching), off-loads
// computation to a pool of executor goroutines, and persists results
// and logs to the datastore, from which the status component answers
// polls.
//
// Invariants:
//
//   - Validation is front-loaded: Builder.Add rejects unknown
//     datasets/algorithms, missing source/target nodes, and
//     out-of-range parameters (algo.Params.Validate) before
//     submission, so a scheduled task can only fail on data-dependent
//     errors (e.g. a label missing from the graph).
//   - A task's state only moves forward: pending → running → one of
//     done/failed/cancelled; terminal states never change.
//   - The scheduler caches at most one immutable *graph.Graph per
//     dataset name. Downstream caches (e.g. bippr's target-index LRU)
//     key on that pointer, so InvalidateDataset after an upload is
//     what makes stale derived state age out.
//   - Results and logs are persisted before a task is marked done, so
//     a status poll that observes "done" can always read the result.
package task

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/obs"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// State is a task's lifecycle state.
type State string

// Task lifecycle states.
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// SubSpec is one query of a batch task: an algorithm (empty inherits
// the batch's default) plus its parameters.
type SubSpec struct {
	Algorithm string      `json:"algorithm,omitempty"`
	Params    algo.Params `json:"params"`
	// TimeoutMS is an optional per-subquery deadline in milliseconds,
	// nested inside the batch's own deadline. A subquery that exceeds it
	// fails alone — siblings keep running and the batch still reports.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Spec is a user-submitted task description: the (dataset, algorithm,
// parameters) triple — or, when Queries is non-empty, a *batch*: many
// queries against one dataset executed as a single scheduled unit
// that loads the graph once and shares every downstream cache (the
// scheduler's graph cache, bippr's target-index store, its walk
// worker pool). For a batch, the top-level Algorithm is the default
// each SubSpec may omit, and the top-level Params must be zero — the
// builder rejects a batch that sets them, because params are
// per-query and silently ignoring them would run every query with
// defaults the submitter did not choose.
type Spec struct {
	Dataset   string      `json:"dataset"`
	Algorithm string      `json:"algorithm"`
	Params    algo.Params `json:"params"`
	Queries   []SubSpec   `json:"queries,omitempty"`
	// Parallelism bounds the intra-batch worker pool: how many of the
	// batch's independent subqueries may run concurrently on the
	// executor that owns the batch. 0 selects GOMAXPROCS; every value
	// is capped by GOMAXPROCS and the batch size; 1 forces sequential
	// execution. Results are bit-identical for every value — each
	// subquery derives its walk seeds from (seed, source, chunk), so
	// completion order cannot change any answer. Only meaningful on
	// batch specs; the builder rejects it elsewhere.
	Parallelism int `json:"parallelism,omitempty"`
	// Class selects the serving tier (see Class). Empty keeps the shape
	// default: plain specs route interactive, batches route batch, and
	// no parameter presets are applied.
	Class Class `json:"class,omitempty"`
	// TimeoutMS is the task's deadline in milliseconds, counted from
	// execution start. The effective deadline is the minimum of this and
	// the scheduler's TaskTimeout; zero inherits the scheduler's alone.
	// The deadline propagates into the algorithm via context, so a task
	// is cancelled mid-push or mid-walk, keeps the partial phase trace,
	// and leaves no partial artifacts on disk.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// IsBatch reports whether the spec is a batch submission.
func (s Spec) IsBatch() bool { return len(s.Queries) > 0 }

// MaxBatchQueries caps the subqueries of one batch task, bounding the
// work a single scheduled unit can pin on an executor.
const MaxBatchQueries = 256

// Task is a scheduled Spec with execution metadata. Batch tasks
// additionally carry per-subquery progress: QueryStates[i] tracks
// Queries[i] through pending → running → done/failed/cancelled, and
// QueriesDone counts terminal subqueries — so a status poll shows how
// far a running batch has advanced.
type Task struct {
	ID        string      `json:"id"`
	QuerySet  string      `json:"query_set"`
	Dataset   string      `json:"dataset"`
	Algorithm string      `json:"algorithm"`
	Params    algo.Params `json:"params"`
	State     State       `json:"state"`
	Error     string      `json:"error,omitempty"`
	Submitted time.Time   `json:"submitted"`
	Started   time.Time   `json:"started,omitempty"`
	Finished  time.Time   `json:"finished,omitempty"`

	// WaitMS is how long the task sat queued (submitted → started);
	// RunMS how long it executed (started → finished). Stamped at the
	// corresponding transitions, so a poll of a terminal task can
	// always split queueing delay from execution time. A task that
	// never started (cancelled while pending, queue-full failure)
	// reports its wait as submitted → finished and no run time.
	WaitMS int64 `json:"wait_ms,omitempty"`
	RunMS  int64 `json:"run_ms,omitempty"`

	Queries     []SubSpec `json:"queries,omitempty"`
	QueryStates []State   `json:"query_states,omitempty"`
	QueriesDone int       `json:"queries_done,omitempty"`
	Parallelism int       `json:"parallelism,omitempty"`

	// Class is the resolved serving tier the scheduler admitted the
	// task under (never empty on a scheduled task).
	Class Class `json:"class,omitempty"`
	// TimeoutMS echoes the spec's deadline, if any.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// EstimatedCost is the admission-time work prediction in abstract
	// units (see EstimateCost), stamped at submit so a poll can compare
	// the prediction against the eventual RunMS. Always finite
	// (clamped to MaxCostUnits).
	EstimatedCost float64 `json:"estimated_cost,omitempty"`
	// CostFamily is the calibration family the estimate was priced
	// under (see CostFamily) — the bucket whose learned units/ms rate
	// produced PredictedMS, and the one this task's measured run time
	// feeds back into.
	CostFamily string `json:"cost_family,omitempty"`
	// PredictedMS is the admission-time milliseconds-of-work prediction
	// (EstimatedCost divided by the family's calibrated units/ms),
	// stamped at submit so a poll can compare it against RunMS and the
	// control-loop test can assert convergence.
	PredictedMS float64 `json:"predicted_ms,omitempty"`
}

// IsBatch reports whether the task is a batch.
func (t Task) IsBatch() bool { return len(t.Queries) > 0 }

// Duration returns the task's execution time, zero until it finishes.
func (t Task) Duration() time.Duration {
	if t.Finished.IsZero() || t.Started.IsZero() {
		return 0
	}
	return t.Finished.Sub(t.Started)
}

// Result is the persisted outcome of a completed task: metadata plus
// the top-ranked entries (the full score vector would be prohibitive
// for large graphs; the demo's tables only ever show the top). For a
// batch task, Top is empty and Queries carries one SubResult per
// subquery; progress snapshots of the document are persisted while
// the batch runs (throttled, see batchProgressInterval), so polls of
// a running batch already see completed subresults.
type Result struct {
	Task       Task            `json:"task"`
	Top        []ranking.Entry `json:"top"`
	Iterations int             `json:"iterations,omitempty"`
	Residual   float64         `json:"residual,omitempty"`
	Cycles     int64           `json:"cycles,omitempty"`
	GraphNodes int             `json:"graph_nodes"`
	GraphEdges int64           `json:"graph_edges"`
	Queries    []SubResult     `json:"queries,omitempty"`
	// Phases is the task's span tree: where its execution milliseconds
	// went (reverse push, walks, ...), recorded by the obs tracer the
	// executor opens around every task.
	Phases []obs.SpanNode `json:"phases,omitempty"`
}

// SubResult is the outcome of one batch subquery. A failed subquery
// records its error here without failing the batch: sibling queries
// still complete and report.
type SubResult struct {
	Algorithm  string          `json:"algorithm"`
	Params     algo.Params     `json:"params"`
	State      State           `json:"state"`
	Error      string          `json:"error,omitempty"`
	Top        []ranking.Entry `json:"top,omitempty"`
	Iterations int             `json:"iterations,omitempty"`
	Residual   float64         `json:"residual,omitempty"`
	Cycles     int64           `json:"cycles,omitempty"`
	DurationMS int64           `json:"duration_ms"`
	// Phases is this subquery's span subtree (see Result.Phases).
	Phases []obs.SpanNode `json:"phases,omitempty"`
}

// NewID generates a 128-bit random identifier formatted like the
// demo's comparison ids (8-4-4-4-12 hex groups).
func NewID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("task: generating id: %w", err)
	}
	h := hex.EncodeToString(b[:])
	return fmt.Sprintf("%s-%s-%s-%s-%s", h[0:8], h[8:12], h[12:16], h[16:20], h[20:32]), nil
}
