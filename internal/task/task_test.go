package task

import (
	"context"
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// testGraph is a labeled community graph shared by the task tests.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewLabeledBuilder()
	b.AddLabeledEdge("ref", "a")
	b.AddLabeledEdge("a", "ref")
	b.AddLabeledEdge("a", "b")
	b.AddLabeledEdge("b", "a")
	b.AddLabeledEdge("b", "ref")
	b.AddLabeledEdge("ref", "b")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newScheduler(t *testing.T, workers int) *Scheduler {
	t.Helper()
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	s, err := NewScheduler(SchedulerConfig{
		Registry: algo.NewBuiltinRegistry(),
		Store:    store,
		Workers:  workers,
		Load: func(name string) (*graph.Graph, error) {
			if name != "demo" {
				return nil, fmt.Errorf("no dataset %q", name)
			}
			return g, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func TestNewIDFormat(t *testing.T) {
	pattern := regexp.MustCompile(`^[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}$`)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		id, err := NewID()
		if err != nil {
			t.Fatal(err)
		}
		if !pattern.MatchString(id) {
			t.Fatalf("id %q has wrong format", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestStateTerminal(t *testing.T) {
	terminal := []State{StateDone, StateFailed, StateCancelled}
	for _, s := range terminal {
		if !s.Terminal() {
			t.Errorf("%s not terminal", s)
		}
	}
	for _, s := range []State{StatePending, StateRunning} {
		if s.Terminal() {
			t.Errorf("%s terminal", s)
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	reg := algo.NewBuiltinRegistry()
	exists := func(d string) bool { return d == "demo" }
	b := NewBuilder(reg, exists)

	if err := b.Add(Spec{Dataset: "", Algorithm: algo.NamePageRank}); err == nil {
		t.Error("accepted empty dataset")
	}
	if err := b.Add(Spec{Dataset: "ghost", Algorithm: algo.NamePageRank}); err == nil {
		t.Error("accepted unknown dataset")
	}
	if err := b.Add(Spec{Dataset: "demo", Algorithm: "nope"}); err == nil {
		t.Error("accepted unknown algorithm")
	}
	if err := b.Add(Spec{Dataset: "demo", Algorithm: algo.NameCycleRank}); err == nil {
		t.Error("accepted cyclerank without source")
	}
	if err := b.Add(Spec{Dataset: "demo", Algorithm: algo.NameCycleRank, Params: algo.Params{Source: "ref"}}); err != nil {
		t.Errorf("rejected valid spec: %v", err)
	}
	if err := b.Add(Spec{Dataset: "demo", Algorithm: algo.NamePageRank}); err != nil {
		t.Errorf("rejected valid global spec: %v", err)
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}

	// Parameter sanity is enforced at Add time (algo.Params.Validate),
	// so a bad knob is rejected before scheduling.
	bippr := Spec{Dataset: "demo", Algorithm: algo.NameBiPPRPair,
		Params: algo.Params{Source: "s", Target: "t"}}
	bad := []func(*algo.Params){
		func(p *algo.Params) { p.Workers = -1 },
		func(p *algo.Params) { p.Eps = -1e-6 },
		func(p *algo.Params) { p.Walks = -5 },
		func(p *algo.Params) { p.RMax = -1e-4 },
		func(p *algo.Params) { p.Alpha = 1.5 },
	}
	for i, mutate := range bad {
		s := bippr
		mutate(&s.Params)
		if err := b.Add(s); err == nil {
			t.Errorf("case %d: accepted invalid params %+v", i, s.Params)
		}
	}
	good := bippr
	good.Params.Workers = 8
	good.Params.Eps = 1e-6
	if err := b.Add(good); err != nil {
		t.Errorf("rejected valid workers/eps spec: %v", err)
	}
}

func TestBuilderRemoveAndClear(t *testing.T) {
	b := NewBuilder(algo.NewBuiltinRegistry(), nil)
	for i := 0; i < 3; i++ {
		if err := b.Add(Spec{Dataset: "d", Algorithm: algo.NamePageRank}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Remove(5); err == nil {
		t.Error("removed out-of-range index")
	}
	if err := b.Remove(1); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("Len after remove = %d", b.Len())
	}
	b.Clear()
	if b.Len() != 0 {
		t.Errorf("Len after clear = %d", b.Len())
	}
	// Specs returns a copy.
	b.Add(Spec{Dataset: "d", Algorithm: algo.NamePageRank})
	specs := b.Specs()
	specs[0].Dataset = "mutated"
	if b.Specs()[0].Dataset != "d" {
		t.Error("Specs leaked internal slice")
	}
}

func TestSubmitAndWait(t *testing.T) {
	s := newScheduler(t, 2)
	qs, ids, err := s.Submit([]Spec{
		{Dataset: "demo", Algorithm: algo.NameCycleRank, Params: algo.Params{Source: "ref"}},
		{Dataset: "demo", Algorithm: algo.NamePPR, Params: algo.Params{Source: "ref", Alpha: 0.3}},
		{Dataset: "demo", Algorithm: algo.NamePageRank},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("got %d ids", len(ids))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tasks, err := s.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range tasks {
		if tk.State != StateDone {
			t.Errorf("task %s (%s) state = %s, err=%s", tk.ID, tk.Algorithm, tk.State, tk.Error)
		}
		if tk.Duration() < 0 {
			t.Errorf("negative duration")
		}
	}

	// Results persisted and retrievable.
	for _, id := range ids {
		doc, err := s.LoadResult(id)
		if err != nil {
			t.Fatalf("LoadResult(%s): %v", id, err)
		}
		if doc.GraphNodes != 3 {
			t.Errorf("GraphNodes = %d", doc.GraphNodes)
		}
		if len(doc.Top) == 0 {
			t.Errorf("task %s has empty top", id)
		}
	}
}

func TestSubmitEmptySet(t *testing.T) {
	s := newScheduler(t, 1)
	if _, _, err := s.Submit(nil); err == nil {
		t.Error("accepted empty query set")
	}
}

func TestUnknownDatasetFailsTask(t *testing.T) {
	s := newScheduler(t, 1)
	qs, _, err := s.Submit([]Spec{{Dataset: "ghost", Algorithm: algo.NamePageRank}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tasks, err := s.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].State != StateFailed {
		t.Errorf("state = %s, want failed", tasks[0].State)
	}
	if !strings.Contains(tasks[0].Error, "ghost") {
		t.Errorf("error %q does not mention dataset", tasks[0].Error)
	}
}

func TestBadParamsFailTask(t *testing.T) {
	s := newScheduler(t, 1)
	qs, _, err := s.Submit([]Spec{{
		Dataset:   "demo",
		Algorithm: algo.NamePPR,
		Params:    algo.Params{Source: "ref", Alpha: 7},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tasks, _ := s.WaitQuerySet(ctx, qs)
	if tasks[0].State != StateFailed {
		t.Errorf("state = %s, want failed", tasks[0].State)
	}
}

func TestStatusAndQuerySetUnknown(t *testing.T) {
	s := newScheduler(t, 1)
	if _, err := s.Status("nope"); err == nil {
		t.Error("unknown task status resolved")
	}
	if _, err := s.QuerySet("nope"); err == nil {
		t.Error("unknown query set resolved")
	}
	if err := s.Cancel("nope"); err == nil {
		t.Error("cancelled unknown task")
	}
}

func TestCancelPendingTask(t *testing.T) {
	// One worker busy with a long task; second task sits pending and
	// is cancelled before execution.
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := algo.NewRegistry()
	block := make(chan struct{})
	reg.Register(algo.Func{
		AlgoName: "block",
		AlgoDesc: "blocks until released",
		RunFunc: func(ctx context.Context, g *graph.Graph, p algo.Params) (*ranking.Result, error) {
			select {
			case <-block:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return ranking.NewResult("block", g, make([]float64, g.NumNodes()))
		},
	})
	g := testGraph(t)
	s, err := NewScheduler(SchedulerConfig{
		Registry: reg,
		Store:    store,
		Workers:  1,
		Load:     func(string) (*graph.Graph, error) { return g, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	_, ids, err := s.Submit([]Spec{
		{Dataset: "demo", Algorithm: "block"},
		{Dataset: "demo", Algorithm: "block"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first task to start.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, _ := s.Status(ids[0])
		if st.State == StateRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Cancel(ids[1]); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Status(ids[1])
	if st.State != StateCancelled {
		t.Errorf("pending task state = %s, want cancelled", st.State)
	}
	// Cancelling a terminal task is a no-op.
	if err := s.Cancel(ids[1]); err != nil {
		t.Errorf("re-cancel errored: %v", err)
	}
}

func TestCancelRunningTask(t *testing.T) {
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := algo.NewRegistry()
	started := make(chan struct{}, 1)
	reg.Register(algo.Func{
		AlgoName: "hang",
		AlgoDesc: "waits for cancellation",
		RunFunc: func(ctx context.Context, g *graph.Graph, p algo.Params) (*ranking.Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	g := testGraph(t)
	s, err := NewScheduler(SchedulerConfig{
		Registry: reg,
		Store:    store,
		Workers:  1,
		Load:     func(string) (*graph.Graph, error) { return g, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	qs, ids, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "hang"}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.Cancel(ids[0]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tasks, err := s.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].State != StateCancelled {
		t.Errorf("state = %s, want cancelled", tasks[0].State)
	}
}

func TestTaskTimeout(t *testing.T) {
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := algo.NewRegistry()
	reg.Register(algo.Func{
		AlgoName: "slow",
		AlgoDesc: "sleeps past the timeout",
		RunFunc: func(ctx context.Context, g *graph.Graph, p algo.Params) (*ranking.Result, error) {
			select {
			case <-time.After(5 * time.Second):
				return ranking.NewResult("slow", g, make([]float64, g.NumNodes()))
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	g := testGraph(t)
	s, err := NewScheduler(SchedulerConfig{
		Registry:    reg,
		Store:       store,
		Workers:     1,
		TaskTimeout: 30 * time.Millisecond,
		Load:        func(string) (*graph.Graph, error) { return g, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	qs, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "slow"}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tasks, err := s.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].State != StateFailed {
		t.Fatalf("state = %s, want failed", tasks[0].State)
	}
	if !strings.Contains(tasks[0].Error, "timeout") {
		t.Errorf("error %q does not mention the timeout", tasks[0].Error)
	}
}

func TestTaskWithinTimeoutSucceeds(t *testing.T) {
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	s, err := NewScheduler(SchedulerConfig{
		Registry:    algo.NewBuiltinRegistry(),
		Store:       store,
		Workers:     1,
		TaskTimeout: 10 * time.Second,
		Load:        func(string) (*graph.Graph, error) { return g, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	qs, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: algo.NamePageRank}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tasks, err := s.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].State != StateDone {
		t.Errorf("state = %s: %s", tasks[0].State, tasks[0].Error)
	}
}

func TestTasksNewestFirst(t *testing.T) {
	s := newScheduler(t, 2)
	_, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: algo.NamePageRank}})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	_, ids2, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: algo.NameCheiRank}})
	if err != nil {
		t.Fatal(err)
	}
	all := s.Tasks()
	if len(all) != 2 {
		t.Fatalf("Tasks len = %d", len(all))
	}
	if all[0].ID != ids2[0] {
		t.Error("Tasks not newest-first")
	}
}

func TestGraphCacheAndInvalidate(t *testing.T) {
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	loads := 0
	g := testGraph(t)
	s, err := NewScheduler(SchedulerConfig{
		Registry: algo.NewBuiltinRegistry(),
		Store:    store,
		Workers:  1,
		Load: func(string) (*graph.Graph, error) {
			loads++
			return g, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		qs, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: algo.NamePageRank}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.WaitQuerySet(ctx, qs); err != nil {
			t.Fatal(err)
		}
	}
	if loads != 1 {
		t.Errorf("dataset loaded %d times, want 1 (cached)", loads)
	}
	s.InvalidateDataset("demo")
	qs, _, _ := s.Submit([]Spec{{Dataset: "demo", Algorithm: algo.NamePageRank}})
	if _, err := s.WaitQuerySet(ctx, qs); err != nil {
		t.Fatal(err)
	}
	if loads != 2 {
		t.Errorf("after invalidate: %d loads, want 2", loads)
	}
}

func TestSchedulerConfigValidation(t *testing.T) {
	store, _ := datastore.Open(t.TempDir())
	load := func(string) (*graph.Graph, error) { return nil, nil }
	cases := []SchedulerConfig{
		{Load: load, Store: store},
		{Registry: algo.NewBuiltinRegistry(), Store: store},
		{Registry: algo.NewBuiltinRegistry(), Load: load},
	}
	for i, cfg := range cases {
		if _, err := NewScheduler(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestExecutionLogWritten(t *testing.T) {
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	s, err := NewScheduler(SchedulerConfig{
		Registry: algo.NewBuiltinRegistry(),
		Store:    store,
		Workers:  1,
		Load:     func(string) (*graph.Graph, error) { return g, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	qs, ids, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: algo.NamePageRank}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := s.WaitQuerySet(ctx, qs); err != nil {
		t.Fatal(err)
	}
	log, err := store.ReadLog(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log, "executing pagerank") || !strings.Contains(log, "done in") {
		t.Errorf("log missing entries: %q", log)
	}
}
