package task

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datasets"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// TestCostEstimatorMonotone locks the cost model's shape: walk cost is
// monotone in the walk count, push cost is antitone in rmax — the two
// directions the Lofgren balance point trades against each other. A
// model violating either would let admission shed cheap requests while
// admitting expensive ones.
func TestCostEstimatorMonotone(t *testing.T) {
	st := CostStats{Nodes: 10_000, Edges: 80_000}

	// Monotone in walks (explicit counts; eps-derived counts follow
	// their own Hoeffding shape and are not part of this property).
	for _, alg := range []string{"bippr-pair", "ppr-mc"} {
		prev := 0.0
		for _, walks := range []int{100, 1_000, 10_000, 100_000, 1_000_000} {
			spec := Spec{Dataset: "d", Algorithm: alg,
				Params: algo.Params{Source: "s", Target: "t", Walks: walks}}
			c := EstimateCost(spec, st)
			if math.IsInf(c, 0) || math.IsNaN(c) || c <= 0 {
				t.Fatalf("%s walks=%d: cost %v not finite positive", alg, walks, c)
			}
			if c <= prev {
				t.Errorf("%s: cost(walks=%d) = %g not > cost of previous count (%g)",
					alg, walks, c, prev)
			}
			prev = c
		}
	}

	// Antitone in rmax: a looser residual threshold must never price
	// higher. Both push bounds (local and saturated) decrease in rmax,
	// so the min must too.
	for _, alg := range []string{"ppr-target", "bippr-pair"} {
		prev := math.Inf(1)
		for _, rmax := range []float64{1e-8, 1e-6, 1e-4, 1e-2} {
			spec := Spec{Dataset: "d", Algorithm: alg,
				Params: algo.Params{Source: "s", Target: "t", RMax: rmax, Walks: 500}}
			c := EstimateCost(spec, st)
			if c >= prev {
				t.Errorf("%s: cost(rmax=%g) = %g not < cost at tighter rmax (%g)",
					alg, rmax, c, prev)
			}
			prev = c
		}
	}

	// A batch prices as the sum of its parts (subqueries resolving the
	// top-level default algorithm).
	single := Spec{Dataset: "d", Algorithm: "bippr-pair",
		Params: algo.Params{Source: "s", Target: "t", Walks: 1000}}
	batch := Spec{Dataset: "d", Algorithm: "bippr-pair", Queries: []SubSpec{
		{Params: algo.Params{Source: "s", Target: "t", Walks: 1000}},
		{Params: algo.Params{Source: "s", Target: "u", Walks: 1000}},
		{Algorithm: "pagerank"},
	}}
	want := 2*EstimateCost(single, st) +
		EstimateCost(Spec{Dataset: "d", Algorithm: "pagerank"}, st)
	if got := EstimateCost(batch, st); math.Abs(got-want) > 1e-6*want {
		t.Errorf("batch cost %g, want sum of parts %g", got, want)
	}

	// Unknown datasets price from fallback stats: positive and finite,
	// never a free pass and never a poisoned backlog.
	for _, alg := range []string{"bippr-pair", "cyclerank", "pagerank", "2drank", "made-up"} {
		c := EstimateCost(Spec{Dataset: "ghost", Algorithm: alg,
			Params: algo.Params{Source: "s", Target: "t"}}, CostStats{})
		if c <= 0 || math.IsInf(c, 0) || math.IsNaN(c) {
			t.Errorf("%s on unknown dataset: cost %v", alg, c)
		}
	}

	// Larger graphs price push-bound and iteration-bound work higher.
	small, large := CostStats{Nodes: 100, Edges: 500}, CostStats{Nodes: 1_000_000, Edges: 10_000_000}
	pr := Spec{Dataset: "d", Algorithm: "pagerank"}
	if EstimateCost(pr, small) >= EstimateCost(pr, large) {
		t.Error("pagerank cost not increasing in graph size")
	}
}

// TestEstimateVsActualWithinBand runs real bidirectional queries on
// two seed datasets and checks the cost model's units-per-millisecond
// rate lands in a generous band — and, more telling, that the rate is
// consistent across datasets (the model's job is ordering requests,
// not predicting milliseconds).
func TestEstimateVsActualWithinBand(t *testing.T) {
	if testing.Short() {
		t.Skip("measures wall-clock work")
	}
	complete, err := datasets.CompleteDigraph(50)
	if err != nil {
		t.Fatal(err)
	}
	er, err := datasets.ErdosRenyi(500, 0.05, 6)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{"complete": complete, "er": er}
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(SchedulerConfig{
		Registry: algo.NewBuiltinRegistry(),
		Store:    store,
		Workers:  1,
		Load: func(name string) (*graph.Graph, error) {
			g, ok := graphs[name]
			if !ok {
				return nil, fmt.Errorf("no dataset %q", name)
			}
			return g, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rates := make(map[string]float64)
	for name := range graphs {
		// Prime the graph-stats cache so the measured submission prices
		// from real node/edge counts, not cold-start fallbacks.
		qs, _, err := s.Submit([]Spec{{Dataset: name, Algorithm: "pagerank"}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.WaitQuerySet(ctx, qs); err != nil {
			t.Fatal(err)
		}

		qs, _, err = s.Submit([]Spec{{Dataset: name, Algorithm: "bippr-pair",
			Params: algo.Params{Source: "0", Target: "1", Walks: 500_000}}})
		if err != nil {
			t.Fatal(err)
		}
		tasks, err := s.WaitQuerySet(ctx, qs)
		if err != nil {
			t.Fatal(err)
		}
		tk := tasks[0]
		if tk.State != StateDone {
			t.Fatalf("%s: task state %s: %s", name, tk.State, tk.Error)
		}
		if tk.EstimatedCost <= 0 {
			t.Fatalf("%s: estimated cost %g", name, tk.EstimatedCost)
		}
		runMS := float64(tk.RunMS)
		if runMS < 1 {
			runMS = 1
		}
		rate := tk.EstimatedCost / runMS
		rates[name] = rate
		t.Logf("%s: estimated %.3g units, ran %.0f ms -> %.3g units/ms",
			name, tk.EstimatedCost, runMS, rate)
	}

	// Absolute band: abstract units per millisecond on any plausible
	// hardware. Deliberately generous — the band catches a model that is
	// off by ORDERS of magnitude (wrong exponent, dropped term), not one
	// that mispredicts constants.
	for name, rate := range rates {
		if rate < 1e1 || rate > 1e9 {
			t.Errorf("%s: %.3g units/ms outside [1e1, 1e9]", name, rate)
		}
	}
	// Relative band: the SAME model constant should explain both
	// datasets within a few doublings — that is what makes the units
	// additive across a mixed backlog.
	r1, r2 := rates["complete"], rates["er"]
	if gap := math.Abs(math.Log2(r1 / r2)); gap > 12 {
		t.Errorf("units/ms differ by 2^%.1f across datasets (%.3g vs %.3g)", gap, r1, r2)
	}
}
