package task

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
)

func TestBuilderBatchValidation(t *testing.T) {
	b := NewBuilder(algo.NewBuiltinRegistry(), func(d string) bool { return d == "demo" })

	ok := Spec{Dataset: "demo", Algorithm: algo.NamePPRTarget, Queries: []SubSpec{
		{Params: algo.Params{Target: "ref"}},
		{Params: algo.Params{Target: "a"}},
		{Algorithm: algo.NameBiPPRPair, Params: algo.Params{Source: "a", Target: "ref"}},
	}}
	if err := b.Add(ok); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	// The default algorithm was resolved into each stored subquery.
	stored := b.Specs()[0]
	if stored.Queries[0].Algorithm != algo.NamePPRTarget || stored.Queries[2].Algorithm != algo.NameBiPPRPair {
		t.Fatalf("algorithms not normalized: %+v", stored.Queries)
	}

	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown dataset", Spec{Dataset: "nope", Queries: []SubSpec{{Algorithm: algo.NamePPR, Params: algo.Params{Source: "x"}}}}, "unknown dataset"},
		{"no algorithm anywhere", Spec{Dataset: "demo", Queries: []SubSpec{{Params: algo.Params{Target: "ref"}}}}, "no default"},
		{"unknown algorithm", Spec{Dataset: "demo", Queries: []SubSpec{{Algorithm: "nope", Params: algo.Params{}}}}, "unknown algorithm"},
		{"missing target", Spec{Dataset: "demo", Algorithm: algo.NamePPRTarget, Queries: []SubSpec{{Params: algo.Params{}}}}, "requires a target"},
		{"missing source", Spec{Dataset: "demo", Algorithm: algo.NameBiPPRPair, Queries: []SubSpec{{Params: algo.Params{Target: "ref"}}}}, "requires a source"},
		{"bad params", Spec{Dataset: "demo", Algorithm: algo.NamePPRTarget, Queries: []SubSpec{
			{Params: algo.Params{Target: "ref"}},
			{Params: algo.Params{Target: "a", Alpha: -1}},
		}}, "query 1"},
		{"top-level params", Spec{Dataset: "demo", Algorithm: algo.NamePPRTarget,
			Params:  algo.Params{Alpha: 0.5},
			Queries: []SubSpec{{Params: algo.Params{Target: "ref"}}},
		}, "per-query"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := b.Add(tc.spec)
			if err == nil {
				t.Fatal("invalid batch accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	over := Spec{Dataset: "demo", Algorithm: algo.NamePPRTarget}
	for i := 0; i <= MaxBatchQueries; i++ {
		over.Queries = append(over.Queries, SubSpec{Params: algo.Params{Target: "ref"}})
	}
	if err := b.Add(over); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized batch: %v", err)
	}
}

// TestBatchMatchesSeparateSubmissions is the acceptance test: a
// K-target batch loads the graph exactly once and yields per-subquery
// results identical to K separate submissions.
func TestBatchMatchesSeparateSubmissions(t *testing.T) {
	g := testGraph(t)
	targets := []string{"ref", "a", "b"}

	newCountingScheduler := func(loads *atomic.Int64) *Scheduler {
		t.Helper()
		store, err := datastore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheduler(SchedulerConfig{
			Registry: algo.NewBuiltinRegistry(),
			Store:    store,
			Workers:  2,
			Load: func(name string) (*graph.Graph, error) {
				loads.Add(1)
				return g, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		return s
	}

	// Batch submission: one scheduled unit, one graph load.
	var batchLoads atomic.Int64
	batchSched := newCountingScheduler(&batchLoads)
	batch := Spec{Dataset: "demo", Algorithm: algo.NamePPRTarget}
	for _, tgt := range targets {
		batch.Queries = append(batch.Queries, SubSpec{
			Algorithm: algo.NamePPRTarget,
			Params:    algo.Params{Target: tgt, RMax: 1e-6},
		})
	}
	qs, ids, err := batchSched.Submit([]Spec{batch})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("batch produced %d task ids, want 1 scheduled unit", len(ids))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tasks, err := batchSched.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].State != StateDone {
		t.Fatalf("batch task state %s (error %q)", tasks[0].State, tasks[0].Error)
	}
	if n := batchLoads.Load(); n != 1 {
		t.Fatalf("batch of %d queries loaded the graph %d times, want exactly 1", len(targets), n)
	}
	if tasks[0].QueriesDone != len(targets) {
		t.Fatalf("QueriesDone = %d, want %d", tasks[0].QueriesDone, len(targets))
	}
	for i, st := range tasks[0].QueryStates {
		if st != StateDone {
			t.Fatalf("query state[%d] = %s, want done", i, st)
		}
	}
	batchDoc, err := batchSched.LoadResult(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(batchDoc.Queries) != len(targets) {
		t.Fatalf("batch result has %d subresults, want %d", len(batchDoc.Queries), len(targets))
	}

	// Reference: the same K queries as separate submissions.
	var sepLoads atomic.Int64
	sepSched := newCountingScheduler(&sepLoads)
	var specs []Spec
	for _, tgt := range targets {
		specs = append(specs, Spec{
			Dataset:   "demo",
			Algorithm: algo.NamePPRTarget,
			Params:    algo.Params{Target: tgt, RMax: 1e-6},
		})
	}
	sqs, sids, err := sepSched.Submit(specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sepSched.WaitQuerySet(ctx, sqs); err != nil {
		t.Fatal(err)
	}

	for i := range targets {
		sub := batchDoc.Queries[i]
		sep, err := sepSched.LoadResult(sids[i])
		if err != nil {
			t.Fatal(err)
		}
		if sub.State != StateDone {
			t.Fatalf("subquery %d state %s (error %q)", i, sub.State, sub.Error)
		}
		if sub.Iterations != sep.Iterations || sub.Residual != sep.Residual {
			t.Errorf("subquery %d effort (%d, %g) differs from separate (%d, %g)",
				i, sub.Iterations, sub.Residual, sep.Iterations, sep.Residual)
		}
		if len(sub.Top) != len(sep.Top) {
			t.Fatalf("subquery %d top has %d entries, separate %d", i, len(sub.Top), len(sep.Top))
		}
		for j := range sub.Top {
			if sub.Top[j] != sep.Top[j] {
				t.Errorf("subquery %d top[%d] = %+v, separate %+v", i, j, sub.Top[j], sep.Top[j])
			}
		}
	}
}

// TestBatchSubqueryFailureIsolated: one failing subquery records its
// error without taking down its siblings or the batch.
func TestBatchSubqueryFailureIsolated(t *testing.T) {
	s := newScheduler(t, 1)
	batch := Spec{Dataset: "demo", Algorithm: algo.NamePPRTarget, Queries: []SubSpec{
		{Algorithm: algo.NamePPRTarget, Params: algo.Params{Target: "ref"}},
		// "ghost" passes Add-time validation (non-empty) but is not a
		// node of the graph — a data-dependent runtime failure.
		{Algorithm: algo.NamePPRTarget, Params: algo.Params{Target: "ghost"}},
		{Algorithm: algo.NamePPRTarget, Params: algo.Params{Target: "b"}},
	}}
	qs, ids, err := s.Submit([]Spec{batch})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tasks, err := s.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].State != StateDone {
		t.Fatalf("batch state %s, want done (subquery failures are per-query)", tasks[0].State)
	}
	doc, err := s.LoadResult(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	wantStates := []State{StateDone, StateFailed, StateDone}
	for i, want := range wantStates {
		if doc.Queries[i].State != want {
			t.Errorf("subquery %d state %s, want %s (error %q)", i, doc.Queries[i].State, want, doc.Queries[i].Error)
		}
	}
	if !strings.Contains(doc.Queries[1].Error, "ghost") {
		t.Errorf("failed subquery error %q does not name the missing node", doc.Queries[1].Error)
	}
	if len(doc.Queries[0].Top) == 0 || len(doc.Queries[2].Top) == 0 {
		t.Error("successful siblings of a failed subquery have empty results")
	}
	if tasks[0].QueriesDone != 3 {
		t.Errorf("QueriesDone = %d, want 3 (failed queries are still terminal)", tasks[0].QueriesDone)
	}
}

// TestBatchSharesIndexAcrossSubqueries: bidirectional subqueries
// against one target in one batch pay the reverse push once — the
// second subquery's effort counter shows no push component beyond its
// walks.
func TestBatchSharesIndexAcrossSubqueries(t *testing.T) {
	s := newScheduler(t, 1)
	const walks = 64
	// Sequential on purpose: which subquery pays the push is only
	// deterministic when they run in order (under parallelism the
	// singleflight winner is timing-dependent — values stay identical,
	// effort counters move).
	batch := Spec{Dataset: "demo", Parallelism: 1, Queries: []SubSpec{
		{Algorithm: algo.NameBiPPRPair, Params: algo.Params{Source: "a", Target: "ref", Walks: walks}},
		{Algorithm: algo.NameBiPPRPair, Params: algo.Params{Source: "b", Target: "ref", Walks: walks}},
	}}
	qs, ids, err := s.Submit([]Spec{batch})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.WaitQuerySet(ctx, qs); err != nil {
		t.Fatal(err)
	}
	doc, err := s.LoadResult(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	first, second := doc.Queries[0], doc.Queries[1]
	if first.State != StateDone || second.State != StateDone {
		t.Fatalf("states %s/%s, want done/done", first.State, second.State)
	}
	// Iterations = pushes + walks. The first subquery pays the push;
	// the second rides the shared index and reports only its walks.
	if first.Iterations <= walks {
		t.Errorf("first subquery iterations %d should include push work beyond %d walks", first.Iterations, walks)
	}
	if second.Iterations != walks {
		t.Errorf("second subquery iterations %d, want exactly %d walks (index shared)", second.Iterations, walks)
	}
}

// TestBatchLoadFailureFinalizesQueryStates: a batch that dies before
// executeBatch (dataset load failure) must not leave its subqueries
// reporting "pending" forever.
func TestBatchLoadFailureFinalizesQueryStates(t *testing.T) {
	s := newScheduler(t, 1)
	batch := Spec{Dataset: "gone", Algorithm: algo.NamePPRTarget, Queries: []SubSpec{
		{Algorithm: algo.NamePPRTarget, Params: algo.Params{Target: "ref"}},
		{Algorithm: algo.NamePPRTarget, Params: algo.Params{Target: "a"}},
	}}
	qs, _, err := s.Submit([]Spec{batch})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tasks, err := s.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].State != StateFailed {
		t.Fatalf("state %s, want failed", tasks[0].State)
	}
	for i, st := range tasks[0].QueryStates {
		if !st.Terminal() {
			t.Errorf("query state[%d] = %s, want terminal", i, st)
		}
	}
	if tasks[0].QueriesDone != 2 {
		t.Errorf("QueriesDone = %d, want 2 (all subqueries resolved)", tasks[0].QueriesDone)
	}
}

func TestSubmitRejectsOversizedBatch(t *testing.T) {
	s := newScheduler(t, 1)
	spec := Spec{Dataset: "demo", Algorithm: algo.NamePPRTarget}
	for i := 0; i <= MaxBatchQueries; i++ {
		spec.Queries = append(spec.Queries, SubSpec{Algorithm: algo.NamePPRTarget, Params: algo.Params{Target: fmt.Sprintf("t%d", i)}})
	}
	if _, _, err := s.Submit([]Spec{spec}); err == nil {
		t.Fatal("oversized batch accepted at submit")
	}
}
