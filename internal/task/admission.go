package task

import (
	"fmt"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/obs"
	"github.com/cyclerank/cyclerank-go/internal/traffic"
)

// AdmissionConfig bounds the interactive tier. Every limit gates only
// interactive-class tasks — the batch tier is queued, never shed —
// and every check runs on Submit's fast path, pricing the request
// from cached graph stats WITHOUT loading the graph: the whole point
// of shedding is refusing work the server cannot afford, so the
// refusal itself must cost nothing.
//
// Zero values disable each limit individually; the zero config
// disables admission control entirely (every submission is admitted,
// as before this tier existed).
type AdmissionConfig struct {
	// InteractiveSlots caps interactive tasks in flight — admitted and
	// not yet terminal (the concurrency budget).
	InteractiveSlots int
	// MaxPendingInteractive caps interactive tasks admitted but not yet
	// executing (the queue-depth cap).
	MaxPendingInteractive int
	// MaxBacklogUnits caps the summed estimated cost (EstimateCost
	// units) of in-flight interactive tasks — the estimated-backlog
	// cap: many cheap queries or few expensive ones, priced alike.
	MaxBacklogUnits float64
	// RetryAfter is the hint returned with a shed (HTTP Retry-After);
	// default 1s.
	RetryAfter time.Duration
}

// Enabled reports whether any admission limit is configured.
func (c AdmissionConfig) Enabled() bool {
	return c.InteractiveSlots > 0 || c.MaxPendingInteractive > 0 || c.MaxBacklogUnits > 0
}

func (c AdmissionConfig) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return time.Second
}

// ShedError reports a submission refused by admission control. The
// server maps it to 429 Too Many Requests with a Retry-After header.
type ShedError struct {
	// Reason names the exhausted limit: "slots", "queue" or "backlog".
	Reason string
	// RetryAfter is the suggested back-off.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("task: shed (%s limit reached), retry after %s", e.Reason, e.RetryAfter)
}

// admitRecord is one interactive task's admission reservation.
type admitRecord struct {
	units   float64
	started bool
}

// tryAdmit reserves admission capacity for a set of interactive tasks
// (id → estimated units), all-or-nothing: a query set either fits
// within every limit or is shed whole — partial admission would run
// half a comparison. Batch-class tasks never appear here.
func (s *Scheduler) tryAdmit(reserve map[string]float64) *ShedError {
	cfg := s.cfg.Admission
	if !cfg.Enabled() || len(reserve) == 0 {
		return nil
	}
	var units float64
	for _, u := range reserve {
		units += u
	}
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	var reason string
	switch {
	case cfg.InteractiveSlots > 0 && len(s.admitted)+len(reserve) > cfg.InteractiveSlots:
		reason = "slots"
	case cfg.MaxPendingInteractive > 0 && s.admitPending+len(reserve) > cfg.MaxPendingInteractive:
		reason = "queue"
	case cfg.MaxBacklogUnits > 0 && s.admitBacklog+units > cfg.MaxBacklogUnits:
		reason = "backlog"
	}
	if reason != "" {
		s.shedByReason(reason).Add(int64(len(reserve)))
		return &ShedError{Reason: reason, RetryAfter: cfg.retryAfter()}
	}
	for id, u := range reserve {
		s.admitted[id] = &admitRecord{units: u}
		s.admitPending++
		s.admitBacklog += u
	}
	return nil
}

func (s *Scheduler) shedByReason(reason string) *obs.Counter {
	switch reason {
	case "slots":
		return s.shedSlots
	case "queue":
		return s.shedQueue
	default:
		return s.shedBacklog
	}
}

// admitStarted moves an admitted task from the pending to the running
// share of its reservation.
func (s *Scheduler) admitStarted(id string) {
	s.admitMu.Lock()
	if rec, ok := s.admitted[id]; ok && !rec.started {
		rec.started = true
		s.admitPending--
	}
	s.admitMu.Unlock()
}

// admitRelease returns a task's reservation. Idempotent — every
// terminal transition path calls it, and a task reaches exactly one
// terminal state but possibly through code paths that overlap.
func (s *Scheduler) admitRelease(id string) {
	s.admitMu.Lock()
	if rec, ok := s.admitted[id]; ok {
		delete(s.admitted, id)
		if !rec.started {
			s.admitPending--
		}
		s.admitBacklog -= rec.units
		if len(s.admitted) == 0 {
			// Squash float drift: an idle tier owes exactly zero.
			s.admitBacklog = 0
		}
	}
	s.admitMu.Unlock()
}

// AdmissionSnapshot is the serving tier's state for status endpoints.
type AdmissionSnapshot struct {
	Enabled               bool    `json:"enabled"`
	InteractiveSlots      int     `json:"interactive_slots,omitempty"`
	MaxPendingInteractive int     `json:"max_pending_interactive,omitempty"`
	MaxBacklogUnits       float64 `json:"max_backlog_units,omitempty"`
	BatchWorkers          int     `json:"batch_workers"`
	Inflight              int     `json:"inflight"`
	PendingInteractive    int     `json:"pending_interactive"`
	BacklogUnits          float64 `json:"backlog_units"`
	AdmittedInteractive   int64   `json:"admitted_interactive"`
	AdmittedBatch         int64   `json:"admitted_batch"`
	ShedSlots             int64   `json:"shed_slots"`
	ShedQueue             int64   `json:"shed_queue"`
	ShedBacklog           int64   `json:"shed_backlog"`
	DeadlineExceeded      int64   `json:"deadline_exceeded"`
	GraphLoads            int64   `json:"graph_loads"`
}

// AdmissionStats returns the serving tier's current state.
func (s *Scheduler) AdmissionStats() AdmissionSnapshot {
	s.admitMu.Lock()
	snap := AdmissionSnapshot{
		Enabled:               s.cfg.Admission.Enabled(),
		InteractiveSlots:      s.cfg.Admission.InteractiveSlots,
		MaxPendingInteractive: s.cfg.Admission.MaxPendingInteractive,
		MaxBacklogUnits:       s.cfg.Admission.MaxBacklogUnits,
		BatchWorkers:          s.cfg.BatchWorkers,
		Inflight:              len(s.admitted),
		PendingInteractive:    s.admitPending,
		BacklogUnits:          s.admitBacklog,
	}
	s.admitMu.Unlock()
	snap.AdmittedInteractive = s.admittedInt.Value()
	snap.AdmittedBatch = s.admittedBat.Value()
	snap.ShedSlots = s.shedSlots.Value()
	snap.ShedQueue = s.shedQueue.Value()
	snap.ShedBacklog = s.shedBacklog.Value()
	snap.DeadlineExceeded = s.deadlineExc.Value()
	snap.GraphLoads = s.graphLoads.Value()
	return snap
}

// CostStats returns the cached graph statistics for a dataset (zero
// if nothing has loaded it this boot — EstimateCost then prices with
// fallback defaults). Never loads the graph.
func (s *Scheduler) CostStats(dataset string) CostStats {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	return s.stats[dataset]
}

// recordTraffic counts the spec's warmable artifact keys in the
// workload sketch: a bippr-pair query demands a reverse-push index
// for its target and a walk-endpoint recording for its source; a
// ppr-target query just the index. Parameters are recorded
// defaults-applied, so the pre-warm recomputes byte-identical cache
// keys. Other algorithms have no persisted artifacts to warm.
func recordTraffic(sk *traffic.Sketch, spec Spec) {
	if sk == nil {
		return
	}
	record := func(algorithm string, p algo.Params) {
		var withIndex, withEndpoints bool
		switch algorithm {
		case "bippr-pair":
			withIndex, withEndpoints = true, true
		case "ppr-target":
			withIndex = true
		default:
			return
		}
		bp := bippr.Params{
			Alpha: p.Alpha, RMax: p.RMax,
			Walks: p.Walks, Eps: p.Eps, Seed: p.Seed,
		}.WithDefaults()
		if withIndex && p.Target != "" {
			sk.Record(traffic.WarmKey{
				Kind: traffic.KindIndex, Dataset: spec.Dataset, Node: p.Target,
				Alpha: bp.Alpha, RMax: bp.RMax,
			}.String())
		}
		if withEndpoints && p.Source != "" {
			sk.Record(traffic.WarmKey{
				Kind: traffic.KindEndpoints, Dataset: spec.Dataset, Node: p.Source,
				Alpha: bp.Alpha, Seed: bp.Seed, MaxSteps: bp.MaxSteps, Walks: bp.Walks,
			}.String())
		}
	}
	if spec.IsBatch() {
		for _, q := range spec.Queries {
			alg := q.Algorithm
			if alg == "" {
				alg = spec.Algorithm
			}
			record(alg, q.Params)
		}
		return
	}
	record(spec.Algorithm, spec.Params)
}
