package task

import (
	"fmt"
	"math"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/obs"
	"github.com/cyclerank/cyclerank-go/internal/traffic"
)

// AdmissionConfig bounds the interactive tier. Every limit gates only
// interactive-class tasks — the batch tier is queued, never shed —
// and every check runs on Submit's fast path, pricing the request
// from cached graph stats WITHOUT loading the graph: the whole point
// of shedding is refusing work the server cannot afford, so the
// refusal itself must cost nothing.
//
// Zero values disable each limit individually; the zero config
// disables admission control entirely (every submission is admitted,
// as before this tier existed).
type AdmissionConfig struct {
	// InteractiveSlots caps interactive tasks in flight — admitted and
	// not yet terminal (the concurrency budget). When slot auto-sizing
	// is active (InteractiveSlotsMax > 0), this is only the initial
	// limit; the hill-climb moves it within [min, max].
	InteractiveSlots int
	// InteractiveSlotsMin / InteractiveSlotsMax bound the slot
	// auto-sizing hill-climb (see slotTuner). Max <= 0 disables
	// auto-sizing and the limit stays at InteractiveSlots; an active
	// Min defaults to 1. Auto-sizing also needs SLOInteractive — the
	// climb's objective is the p99-vs-SLO error.
	InteractiveSlotsMin int
	InteractiveSlotsMax int
	// MaxPendingInteractive caps interactive tasks admitted but not yet
	// executing (the queue-depth cap).
	MaxPendingInteractive int
	// MaxBacklogUnits caps the summed estimated cost (EstimateCost
	// units) of in-flight interactive tasks — the estimated-backlog
	// cap: many cheap queries or few expensive ones, priced alike.
	MaxBacklogUnits float64
	// MaxBacklogMS caps the summed PREDICTED MILLISECONDS of in-flight
	// interactive work — the calibrated twin of MaxBacklogUnits: the
	// same backlog idea, denominated in wall-clock via the EWMA
	// units/ms calibrator, so the cap means "at most this much queue
	// depth in time" regardless of hardware.
	MaxBacklogMS float64
	// SLOInteractive is the interactive tier's p99 run-time objective.
	// When > 0 and the windowed p99 exceeds it, submissions shed with
	// reason "slo" BEFORE any occupancy limit is consulted — tail
	// latency is the first-class signal, occupancy only its proxy.
	SLOInteractive time.Duration
	// RetryAfter is the floor of the hint returned with a shed (HTTP
	// Retry-After); default 1s. The actual hint is the larger of this
	// and the predicted backlog drain time.
	RetryAfter time.Duration
}

// Enabled reports whether any admission limit is configured.
func (c AdmissionConfig) Enabled() bool {
	return c.InteractiveSlots > 0 || c.MaxPendingInteractive > 0 ||
		c.MaxBacklogUnits > 0 || c.MaxBacklogMS > 0 ||
		c.SLOInteractive > 0 || c.InteractiveSlotsMax > 0
}

// AutoSlots reports whether slot auto-sizing is active: it needs both
// a ceiling to climb under and an SLO to climb against.
func (c AdmissionConfig) AutoSlots() bool {
	return c.InteractiveSlotsMax > 0 && c.SLOInteractive > 0
}

func (c AdmissionConfig) slotsMin() int {
	if c.InteractiveSlotsMin > 0 {
		return c.InteractiveSlotsMin
	}
	return 1
}

// initialSlots resolves the slot limit a scheduler boots with:
// InteractiveSlots clamped into the auto-sizing bounds, or the ceiling
// itself when no explicit value was configured.
func (c AdmissionConfig) initialSlots() int {
	if c.InteractiveSlotsMax <= 0 {
		return c.InteractiveSlots
	}
	n := c.InteractiveSlots
	if n <= 0 || n > c.InteractiveSlotsMax {
		n = c.InteractiveSlotsMax
	}
	if n < c.slotsMin() {
		n = c.slotsMin()
	}
	return n
}

func (c AdmissionConfig) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return time.Second
}

// maxRetryAfter caps the drain-derived Retry-After hint: a pathological
// backlog prediction must not tell clients to go away for an hour.
const maxRetryAfter = time.Minute

// ShedError reports a submission refused by admission control. The
// server maps it to 429 Too Many Requests with a Retry-After header.
type ShedError struct {
	// Reason names the exhausted limit: "slo", "slots", "queue" or
	// "backlog".
	Reason string
	// RetryAfter is the suggested back-off: the larger of the
	// configured floor and the predicted time for the current backlog
	// to drain, capped at maxRetryAfter.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("task: shed (%s limit reached), retry after %s", e.Reason, e.RetryAfter)
}

// admitRecord is one interactive task's admission reservation.
type admitRecord struct {
	units   float64
	ms      float64
	started bool
}

// admitReserve is one task's priced admission request: abstract units
// plus the calibrated milliseconds prediction.
type admitReserve struct {
	units float64
	ms    float64
}

// tryAdmit reserves admission capacity for a set of interactive tasks
// (id → priced reservation), all-or-nothing: a query set either fits
// within every limit or is shed whole — partial admission would run
// half a comparison. Batch-class tasks never appear here.
//
// Check order is deliberate: the SLO breach fires FIRST — when the
// tier is already missing its tail-latency objective, admitting more
// work because occupancy happens to look cold only digs the hole —
// then slots, queue and backlog in occupancy order.
func (s *Scheduler) tryAdmit(reserve map[string]admitReserve) *ShedError {
	cfg := s.cfg.Admission
	if !cfg.Enabled() || len(reserve) == 0 {
		return nil
	}
	var units, ms float64
	for id, r := range reserve {
		// Defense in depth: estimates are clamped at stamp time, but the
		// backlog sum must survive even a bug upstream — a non-finite
		// reservation is priced at the ceiling, never admitted into the
		// arithmetic raw. Written back so the stored records carry the
		// normalized price too (release subtracts what admit added).
		if math.IsNaN(r.units) || r.units > MaxCostUnits {
			r.units = MaxCostUnits
		}
		if math.IsNaN(r.ms) || math.IsInf(r.ms, 0) {
			r.ms = MaxCostUnits / FallbackUnitsPerMS
		}
		reserve[id] = r
		units += r.units
		ms += r.ms
	}
	var reason string
	if cfg.SLOInteractive > 0 {
		// The p99 read is cached (see latencyWindow) — the fast-reject
		// path stays allocation-light and microsecond-band.
		if p99, n := s.latWin.p99(); n >= sloMinSamples &&
			p99 > float64(cfg.SLOInteractive)/float64(time.Millisecond) {
			reason = "slo"
		}
	}
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if reason == "" {
		switch {
		case s.slotLimit > 0 && len(s.admitted)+len(reserve) > s.slotLimit:
			reason = "slots"
		case cfg.MaxPendingInteractive > 0 && s.admitPending+len(reserve) > cfg.MaxPendingInteractive:
			reason = "queue"
		case cfg.MaxBacklogUnits > 0 && s.admitBacklog+units > cfg.MaxBacklogUnits:
			reason = "backlog"
		case cfg.MaxBacklogMS > 0 && s.admitBacklogMS+ms > cfg.MaxBacklogMS:
			reason = "backlog"
		}
	}
	if reason != "" {
		s.shedByReason(reason).Add(int64(len(reserve)))
		return &ShedError{Reason: reason, RetryAfter: s.retryAfterLocked()}
	}
	for id, r := range reserve {
		s.admitted[id] = &admitRecord{units: r.units, ms: r.ms}
		s.admitPending++
		s.admitBacklog += r.units
		s.admitBacklogMS += r.ms
	}
	return nil
}

// retryAfterLocked derives the back-off hint from the predicted drain
// time of the current backlog across the interactive worker pool,
// floored at the configured constant and capped at maxRetryAfter.
// Caller holds admitMu.
func (s *Scheduler) retryAfterLocked() time.Duration {
	hint := s.cfg.Admission.retryAfter()
	workers := s.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	drain := time.Duration(s.admitBacklogMS/float64(workers)) * time.Millisecond
	if drain > hint {
		hint = drain
	}
	if hint > maxRetryAfter {
		hint = maxRetryAfter
	}
	return hint
}

func (s *Scheduler) shedByReason(reason string) *obs.Counter {
	switch reason {
	case "slo":
		return s.shedSLO
	case "slots":
		return s.shedSlots
	case "queue":
		return s.shedQueue
	default:
		return s.shedBacklog
	}
}

// admitStarted moves an admitted task from the pending to the running
// share of its reservation.
func (s *Scheduler) admitStarted(id string) {
	s.admitMu.Lock()
	if rec, ok := s.admitted[id]; ok && !rec.started {
		rec.started = true
		s.admitPending--
	}
	s.admitMu.Unlock()
}

// admitRelease returns a task's reservation. Idempotent — every
// terminal transition path calls it, and a task reaches exactly one
// terminal state but possibly through code paths that overlap.
func (s *Scheduler) admitRelease(id string) {
	s.admitMu.Lock()
	if rec, ok := s.admitted[id]; ok {
		delete(s.admitted, id)
		if !rec.started {
			s.admitPending--
		}
		s.admitBacklog -= rec.units
		s.admitBacklogMS -= rec.ms
		if len(s.admitted) == 0 {
			// Squash float drift: an idle tier owes exactly zero.
			s.admitBacklog = 0
			s.admitBacklogMS = 0
		}
	}
	s.admitMu.Unlock()
}

// AdmissionSnapshot is the serving tier's state for status endpoints.
// New fields are additive: the original key set is part of the
// /api/status contract and never changes meaning.
type AdmissionSnapshot struct {
	Enabled               bool    `json:"enabled"`
	InteractiveSlots      int     `json:"interactive_slots,omitempty"`
	MaxPendingInteractive int     `json:"max_pending_interactive,omitempty"`
	MaxBacklogUnits       float64 `json:"max_backlog_units,omitempty"`
	BatchWorkers          int     `json:"batch_workers"`
	Inflight              int     `json:"inflight"`
	PendingInteractive    int     `json:"pending_interactive"`
	BacklogUnits          float64 `json:"backlog_units"`
	AdmittedInteractive   int64   `json:"admitted_interactive"`
	AdmittedBatch         int64   `json:"admitted_batch"`
	ShedSlots             int64   `json:"shed_slots"`
	ShedQueue             int64   `json:"shed_queue"`
	ShedBacklog           int64   `json:"shed_backlog"`
	DeadlineExceeded      int64   `json:"deadline_exceeded"`
	GraphLoads            int64   `json:"graph_loads"`

	// Control-loop state (calibrator, SLO shedding, slot auto-sizing).
	MaxBacklogMS     float64 `json:"max_backlog_ms,omitempty"`
	SLOInteractiveMS int64   `json:"slo_interactive_ms,omitempty"`
	SlotsMin         int     `json:"interactive_slots_min,omitempty"`
	SlotsMax         int     `json:"interactive_slots_max,omitempty"`
	// SlotsCurrent is the live (possibly auto-sized) slot limit.
	SlotsCurrent int     `json:"interactive_slots_current,omitempty"`
	BacklogMS    float64 `json:"backlog_ms"`
	ShedSLO      int64   `json:"shed_slo"`
	// InteractiveP99MS is the windowed interactive p99 run time the
	// "slo" shed decision reads, with the live sample count behind it.
	InteractiveP99MS   float64 `json:"interactive_p99_ms"`
	InteractiveSamples int     `json:"interactive_p99_samples"`
	SlotAdjustUp       int64   `json:"slot_adjust_up"`
	SlotAdjustDown     int64   `json:"slot_adjust_down"`
	// Calibration is the per-family EWMA units/ms state the predictor
	// divides by.
	Calibration map[string]traffic.Calibration `json:"calibration,omitempty"`
}

// AdmissionStats returns the serving tier's current state.
func (s *Scheduler) AdmissionStats() AdmissionSnapshot {
	p99, samples := s.latWin.p99()
	s.admitMu.Lock()
	snap := AdmissionSnapshot{
		Enabled:               s.cfg.Admission.Enabled(),
		InteractiveSlots:      s.cfg.Admission.InteractiveSlots,
		MaxPendingInteractive: s.cfg.Admission.MaxPendingInteractive,
		MaxBacklogUnits:       s.cfg.Admission.MaxBacklogUnits,
		BatchWorkers:          s.cfg.BatchWorkers,
		Inflight:              len(s.admitted),
		PendingInteractive:    s.admitPending,
		BacklogUnits:          s.admitBacklog,
		MaxBacklogMS:          s.cfg.Admission.MaxBacklogMS,
		SLOInteractiveMS:      s.cfg.Admission.SLOInteractive.Milliseconds(),
		SlotsMin:              0,
		SlotsMax:              s.cfg.Admission.InteractiveSlotsMax,
		SlotsCurrent:          s.slotLimit,
		BacklogMS:             s.admitBacklogMS,
		InteractiveP99MS:      p99,
		InteractiveSamples:    samples,
	}
	if s.cfg.Admission.InteractiveSlotsMax > 0 {
		snap.SlotsMin = s.cfg.Admission.slotsMin()
	}
	s.admitMu.Unlock()
	snap.AdmittedInteractive = s.admittedInt.Value()
	snap.AdmittedBatch = s.admittedBat.Value()
	snap.ShedSlots = s.shedSlots.Value()
	snap.ShedQueue = s.shedQueue.Value()
	snap.ShedBacklog = s.shedBacklog.Value()
	snap.ShedSLO = s.shedSLO.Value()
	snap.DeadlineExceeded = s.deadlineExc.Value()
	snap.GraphLoads = s.graphLoads.Value()
	snap.SlotAdjustUp = s.slotAdjUp.Value()
	snap.SlotAdjustDown = s.slotAdjDown.Value()
	if cal := s.calibrator.snapshot(); len(cal) > 0 {
		snap.Calibration = cal
	}
	return snap
}

// CalibrationSnapshot returns the calibrator's per-family state, for
// persistence alongside the traffic sketch.
func (s *Scheduler) CalibrationSnapshot() map[string]traffic.Calibration {
	return s.calibrator.snapshot()
}

// RestoreCalibration seeds the calibrator with a previous boot's
// persisted state (see calibrator.restore).
func (s *Scheduler) RestoreCalibration(cal map[string]traffic.Calibration) {
	s.calibrator.restore(cal)
}

// CostStats returns the cached graph statistics for a dataset (zero
// if nothing has loaded it this boot — EstimateCost then prices with
// fallback defaults). Never loads the graph.
func (s *Scheduler) CostStats(dataset string) CostStats {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	return s.stats[dataset]
}

// recordTraffic counts the spec's warmable artifact keys in the
// workload sketch: a bippr-pair query demands a reverse-push index
// for its target and a walk-endpoint recording for its source; a
// ppr-target query just the index. Parameters are recorded
// defaults-applied, so the pre-warm recomputes byte-identical cache
// keys. Other algorithms have no persisted artifacts to warm.
func recordTraffic(sk *traffic.Sketch, spec Spec) {
	if sk == nil {
		return
	}
	record := func(algorithm string, p algo.Params) {
		var withIndex, withEndpoints bool
		switch algorithm {
		case "bippr-pair":
			withIndex, withEndpoints = true, true
		case "ppr-target":
			withIndex = true
		default:
			return
		}
		bp := bippr.Params{
			Alpha: p.Alpha, RMax: p.RMax,
			Walks: p.Walks, Eps: p.Eps, Seed: p.Seed,
		}.WithDefaults()
		if withIndex && p.Target != "" {
			sk.Record(traffic.WarmKey{
				Kind: traffic.KindIndex, Dataset: spec.Dataset, Node: p.Target,
				Alpha: bp.Alpha, RMax: bp.RMax,
			}.String())
		}
		if withEndpoints && p.Source != "" {
			sk.Record(traffic.WarmKey{
				Kind: traffic.KindEndpoints, Dataset: spec.Dataset, Node: p.Source,
				Alpha: bp.Alpha, Seed: bp.Seed, MaxSteps: bp.MaxSteps, Walks: bp.Walks,
			}.String())
		}
	}
	if spec.IsBatch() {
		for _, q := range spec.Queries {
			alg := q.Algorithm
			if alg == "" {
				alg = spec.Algorithm
			}
			record(alg, q.Params)
		}
		return
	}
	record(spec.Algorithm, spec.Params)
}
