package task

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// allowProcs lifts GOMAXPROCS for the duration of a test so the
// intra-batch pool's concurrent branch runs even on single-CPU CI
// machines (clampParallelism bounds pools by GOMAXPROCS).
func allowProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func TestClampParallelism(t *testing.T) {
	allowProcs(t, 4)
	cases := []struct {
		requested, queries, want int
	}{
		{0, 10, 4},  // default: GOMAXPROCS
		{-3, 10, 4}, // negative behaves like default
		{1, 10, 1},  // explicit sequential
		{3, 10, 3},  // in range
		{64, 10, 4}, // capped by GOMAXPROCS
		{64, 2, 2},  // capped by batch size
		{0, 1, 1},   // one query: sequential
		{2, 0, 1},   // degenerate batch still gets a worker
	}
	for _, tc := range cases {
		if got := clampParallelism(tc.requested, tc.queries); got != tc.want {
			t.Errorf("clampParallelism(%d, %d) = %d, want %d", tc.requested, tc.queries, got, tc.want)
		}
	}
}

func TestBuilderParallelismValidation(t *testing.T) {
	b := NewBuilder(algo.NewBuiltinRegistry(), func(d string) bool { return d == "demo" })
	// Parallelism on a non-batch spec promises concurrency that does
	// not exist; rejected like top-level batch params are.
	err := b.Add(Spec{Dataset: "demo", Algorithm: algo.NamePageRank, Parallelism: 4})
	if err == nil || !strings.Contains(err.Error(), "parallelism") {
		t.Errorf("plain spec with parallelism: %v", err)
	}
	err = b.Add(Spec{Dataset: "demo", Algorithm: algo.NamePPRTarget, Parallelism: -1,
		Queries: []SubSpec{{Params: algo.Params{Target: "ref"}}}})
	if err == nil || !strings.Contains(err.Error(), "parallelism") {
		t.Errorf("negative batch parallelism: %v", err)
	}
	if err := b.Add(Spec{Dataset: "demo", Algorithm: algo.NamePPRTarget, Parallelism: 8,
		Queries: []SubSpec{{Params: algo.Params{Target: "ref"}}}}); err != nil {
		t.Errorf("valid batch parallelism rejected: %v", err)
	}
}

// TestParallelBatchMatchesSequential is the equivalence harness for
// the intra-batch pool: the same batch — mixed algorithms, shared
// targets, one data-dependent failure — run at parallelism 1, 2 and 8
// must produce bit-identical per-subquery scores and statuses. Effort
// counters (iterations) are excluded on purpose: which subquery pays
// a shared reverse push is timing-dependent under concurrency; the
// answers never are.
func TestParallelBatchMatchesSequential(t *testing.T) {
	allowProcs(t, 8)
	queries := []SubSpec{
		{Algorithm: algo.NamePPRTarget, Params: algo.Params{Target: "ref", RMax: 1e-6}},
		{Algorithm: algo.NamePPRTarget, Params: algo.Params{Target: "a", RMax: 1e-6}},
		{Algorithm: algo.NamePPRTarget, Params: algo.Params{Target: "b", RMax: 1e-6}},
		{Algorithm: algo.NameBiPPRPair, Params: algo.Params{Source: "a", Target: "ref", Walks: 512}},
		{Algorithm: algo.NameBiPPRPair, Params: algo.Params{Source: "b", Target: "ref", Walks: 512}},
		{Algorithm: algo.NameBiPPRPair, Params: algo.Params{Source: "b", Target: "a", Walks: 512, Workers: 2}},
		{Algorithm: algo.NameCycleRank, Params: algo.Params{Source: "ref", K: 3}},
		// Passes Add-time validation, fails at run time: the harness
		// must prove failure isolation is order-independent too.
		{Algorithm: algo.NamePPRTarget, Params: algo.Params{Target: "ghost"}},
		{Algorithm: algo.NamePPR, Params: algo.Params{Source: "ref", Alpha: 0.3}},
	}
	wantStates := []State{StateDone, StateDone, StateDone, StateDone, StateDone,
		StateDone, StateDone, StateFailed, StateDone}

	type run struct {
		parallelism int
		queries     []SubResult
	}
	var runs []run
	for _, parallelism := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("parallelism=%d", parallelism), func(t *testing.T) {
			s := newScheduler(t, 1)
			qs, ids, err := s.Submit([]Spec{{
				Dataset:     "demo",
				Parallelism: parallelism,
				Queries:     queries,
			}})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			tasks, err := s.WaitQuerySet(ctx, qs)
			if err != nil {
				t.Fatal(err)
			}
			if tasks[0].State != StateDone {
				t.Fatalf("batch state %s (error %q)", tasks[0].State, tasks[0].Error)
			}
			if tasks[0].Parallelism != parallelism {
				t.Errorf("task parallelism = %d, want %d", tasks[0].Parallelism, parallelism)
			}
			if tasks[0].QueriesDone != len(queries) {
				t.Errorf("QueriesDone = %d, want %d", tasks[0].QueriesDone, len(queries))
			}
			doc, err := s.LoadResult(ids[0])
			if err != nil {
				t.Fatal(err)
			}
			if len(doc.Queries) != len(queries) {
				t.Fatalf("result has %d subresults, want %d", len(doc.Queries), len(queries))
			}
			for i, want := range wantStates {
				if doc.Queries[i].State != want {
					t.Errorf("subquery %d state %s, want %s (error %q)",
						i, doc.Queries[i].State, want, doc.Queries[i].Error)
				}
				if doc.Queries[i].State != tasks[0].QueryStates[i] {
					t.Errorf("subquery %d: result state %s != published query_state %s",
						i, doc.Queries[i].State, tasks[0].QueryStates[i])
				}
			}
			runs = append(runs, run{parallelism, doc.Queries})
		})
	}
	if len(runs) != 3 {
		t.Fatalf("only %d runs completed", len(runs))
	}

	// Bit-identical across pool sizes: same states, same scores (the
	// ranking entries compare exactly — floats included), same
	// residuals.
	base := runs[0]
	for _, other := range runs[1:] {
		for i := range base.queries {
			b, o := base.queries[i], other.queries[i]
			if b.State != o.State {
				t.Errorf("subquery %d: state %s (parallelism 1) != %s (parallelism %d)",
					i, b.State, o.State, other.parallelism)
			}
			if b.Residual != o.Residual {
				t.Errorf("subquery %d: residual %g != %g (parallelism %d)",
					i, b.Residual, o.Residual, other.parallelism)
			}
			if len(b.Top) != len(o.Top) {
				t.Errorf("subquery %d: top has %d entries vs %d (parallelism %d)",
					i, len(b.Top), len(o.Top), other.parallelism)
				continue
			}
			for j := range b.Top {
				if b.Top[j] != o.Top[j] {
					t.Errorf("subquery %d top[%d]: %+v != %+v (parallelism %d)",
						i, j, b.Top[j], o.Top[j], other.parallelism)
				}
			}
		}
	}
}

// TestBatchErrorNamesQueryAndTarget: a failed subquery's error must
// carry the subquery index and its target/source so one failure in a
// large batch is identifiable from the task view alone.
func TestBatchErrorNamesQueryAndTarget(t *testing.T) {
	s := newScheduler(t, 1)
	batch := Spec{Dataset: "demo", Algorithm: algo.NamePPRTarget, Queries: []SubSpec{
		{Params: algo.Params{Target: "ref"}},
		{Params: algo.Params{Target: "ghost"}},
		{Algorithm: algo.NameBiPPRPair, Params: algo.Params{Source: "phantom", Target: "ref"}},
	}}
	// Builder normalizes default algorithms like the server path does.
	b := NewBuilder(algo.NewBuiltinRegistry(), nil)
	if err := b.Add(batch); err != nil {
		t.Fatal(err)
	}
	qs, ids, err := s.Submit(b.Specs())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.WaitQuerySet(ctx, qs); err != nil {
		t.Fatal(err)
	}
	doc, err := s.LoadResult(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"query 1", `target="ghost"`, "ghost"} {
		if !strings.Contains(doc.Queries[1].Error, want) {
			t.Errorf("subquery 1 error %q missing %q", doc.Queries[1].Error, want)
		}
	}
	for _, want := range []string{"query 2", `source="phantom"`} {
		if !strings.Contains(doc.Queries[2].Error, want) {
			t.Errorf("subquery 2 error %q missing %q", doc.Queries[2].Error, want)
		}
	}
	if doc.Queries[0].Error != "" {
		t.Errorf("successful subquery carries error %q", doc.Queries[0].Error)
	}
}

// TestParallelBatchCancelMidBatch is the race-coverage satellite:
// batches submitted from concurrent goroutines while one of them is
// cancelled mid-run. The cancelled batch must resolve every subquery
// state to terminal — the running ones to cancelled via their context,
// the queued ones as they are popped — and the sibling batches must
// be unaffected. Run with -race.
func TestParallelBatchCancelMidBatch(t *testing.T) {
	allowProcs(t, 4)
	store, err := datastore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := algo.NewBuiltinRegistry()
	started := make(chan struct{}, 16)
	reg.Register(algo.Func{
		AlgoName: "hang",
		AlgoDesc: "waits for cancellation",
		RunFunc: func(ctx context.Context, g *graph.Graph, p algo.Params) (*ranking.Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	g := testGraph(t)
	s, err := NewScheduler(SchedulerConfig{
		Registry: reg,
		Store:    store,
		Workers:  2,
		Load:     func(string) (*graph.Graph, error) { return g, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	hangBatch := Spec{Dataset: "demo", Parallelism: 2, Queries: []SubSpec{
		{Algorithm: "hang"}, {Algorithm: "hang"}, {Algorithm: "hang"}, {Algorithm: "hang"},
	}}
	_, hangIDs, err := s.Submit([]Spec{hangBatch})
	if err != nil {
		t.Fatal(err)
	}
	// Two subqueries are running (parallelism 2) when the cancel lands.
	<-started
	<-started

	// Concurrent submissions race the cancellation.
	var wg sync.WaitGroup
	sets := make([]string, 3)
	for i := range sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qs, _, err := s.Submit([]Spec{{Dataset: "demo", Parallelism: 4, Queries: []SubSpec{
				{Algorithm: algo.NamePPRTarget, Params: algo.Params{Target: "ref"}},
				{Algorithm: algo.NamePPRTarget, Params: algo.Params{Target: "a"}},
			}}})
			if err == nil {
				sets[i] = qs
			}
		}(i)
	}
	if err := s.Cancel(hangIDs[0]); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s.Status(hangIDs[0])
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			if st.State != StateCancelled {
				t.Fatalf("cancelled batch state %s", st.State)
			}
			if st.QueriesDone != len(hangBatch.Queries) {
				t.Errorf("QueriesDone = %d, want %d", st.QueriesDone, len(hangBatch.Queries))
			}
			for i, qs := range st.QueryStates {
				if qs != StateCancelled {
					t.Errorf("query state[%d] = %s, want cancelled", i, qs)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled batch never terminal: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Sibling batches complete untouched.
	for i, qs := range sets {
		if qs == "" {
			t.Fatalf("concurrent submission %d failed", i)
		}
		tasks, err := s.WaitQuerySet(ctx, qs)
		if err != nil {
			t.Fatal(err)
		}
		if tasks[0].State != StateDone {
			t.Errorf("sibling batch %d state %s (error %q)", i, tasks[0].State, tasks[0].Error)
		}
	}
}
