package task

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/traffic"
)

// TestObserveCostSubMillisecond is the regression for the calibration
// truncation bug: observeCost divided by the integer RunMS, so a task
// finishing in under a millisecond (RunMS 0) was dropped from the
// calibration histogram entirely and never fed the EWMA — exactly the
// fast interactive traffic the calibrator must learn from.
func TestObserveCostSubMillisecond(t *testing.T) {
	s, _, _ := blockingScheduler(t, SchedulerConfig{Workers: 1})

	start := time.Now()
	sub := Task{
		EstimatedCost: 100,
		CostFamily:    FamilyPush,
		Started:       start,
		Finished:      start.Add(500 * time.Microsecond),
	}
	stampTimesLocked(&sub)
	if sub.RunMS != 0 {
		t.Fatalf("fixture not sub-ms: RunMS = %d", sub.RunMS)
	}
	s.observeCost(sub)
	if got := s.costPerMS.Count(); got != 1 {
		t.Fatalf("sub-ms task dropped from calibration histogram: count %d", got)
	}
	// 100 units over 0.5 ms is 200 units/ms — not the 100 (or nothing)
	// integer truncation produced.
	if got := s.costPerMS.Sum(); math.Abs(got-200) > 1e-9 {
		t.Errorf("observed rate %g, want 200", got)
	}
	if rate, learned := s.calibrator.rate(FamilyPush); !learned || math.Abs(rate-200) > 1e-9 {
		t.Errorf("calibrator rate %g (learned %v), want 200", rate, learned)
	}

	// A 1.9 ms task must calibrate at /1.9, not /1 (the other half of
	// the truncation: up to 2x inflated units/ms).
	sub2 := Task{
		EstimatedCost: 190,
		CostFamily:    FamilyWalk,
		Started:       start,
		Finished:      start.Add(1900 * time.Microsecond),
	}
	stampTimesLocked(&sub2)
	s.observeCost(sub2)
	if rate, _ := s.calibrator.rate(FamilyWalk); math.Abs(rate-100) > 1e-9 {
		t.Errorf("1.9ms task calibrated at %g units/ms, want 100 (truncation would give 190)", rate)
	}
}

// TestObserveCostEndToEndSubMillisecond drives the same regression
// through the real completion path: a noop task finishes in
// microseconds and must still land in the calibration histogram.
func TestObserveCostEndToEndSubMillisecond(t *testing.T) {
	s, _, _ := blockingScheduler(t, SchedulerConfig{Workers: 1})
	qs, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "noop"}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tasks, err := s.WaitQuerySet(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].State != StateDone {
		t.Fatalf("noop state %s: %s", tasks[0].State, tasks[0].Error)
	}
	waitFor(t, "completed task in calibration histogram", func() bool {
		return s.costPerMS.Count() == 1
	})
	waitFor(t, "calibrator learning the noop's family", func() bool {
		_, learned := s.calibrator.rate(tasks[0].CostFamily)
		return learned
	})
}

// TestEstimateCostClampedFinite locks the stamp-time clamp: parameter
// corners that price to +Inf (non-positive rmax) come back as the
// finite MaxCostUnits ceiling, so the admission backlog sum can never
// be poisoned into NaN.
func TestEstimateCostClampedFinite(t *testing.T) {
	inf := EstimateCost(Spec{Algorithm: "ppr-target", Params: algo.Params{Target: "t", RMax: -1}}, CostStats{})
	if math.IsInf(inf, 0) || math.IsNaN(inf) {
		t.Fatalf("EstimateCost leaked non-finite %v", inf)
	}
	if inf != MaxCostUnits {
		t.Errorf("clamped estimate %g, want MaxCostUnits", inf)
	}
	// Batch sums clamp too.
	batch := Spec{Dataset: "d", Algorithm: "ppr-target", Queries: []SubSpec{
		{Params: algo.Params{Target: "t", RMax: -1}},
		{Params: algo.Params{Target: "t", RMax: -1}},
	}}
	if got := EstimateCost(batch, CostStats{}); got != MaxCostUnits {
		t.Errorf("batch estimate %g, want MaxCostUnits", got)
	}
}

// TestAdmissionSurvivesInfinityInjection injects a raw +Inf
// reservation past the stamp-time clamp, straight into tryAdmit: the
// guard must price it at the ceiling so release leaves the backlog at
// exactly zero (not Inf − Inf = NaN) and backlog shedding keeps
// working afterwards.
func TestAdmissionSurvivesInfinityInjection(t *testing.T) {
	s, _, _ := blockingScheduler(t, SchedulerConfig{
		Workers:   1,
		Admission: AdmissionConfig{MaxBacklogUnits: 1.5 * MaxCostUnits},
	})
	if shed := s.tryAdmit(map[string]admitReserve{"inf": {units: math.Inf(1), ms: math.Inf(1)}}); shed != nil {
		t.Fatalf("ceiling-priced reservation shed: %v", shed)
	}
	snap := s.AdmissionStats()
	if math.IsInf(snap.BacklogUnits, 0) || math.IsNaN(snap.BacklogUnits) {
		t.Fatalf("raw Inf entered the backlog: %v", snap.BacklogUnits)
	}
	// A second ceiling-priced task overflows the cap — shedding works
	// WITH the injected reservation still in flight.
	shed := s.tryAdmit(map[string]admitReserve{"b": {units: MaxCostUnits}})
	if shed == nil || shed.Reason != "backlog" {
		t.Fatalf("overflow not shed: %v", shed)
	}
	s.admitRelease("inf")
	snap = s.AdmissionStats()
	if snap.BacklogUnits != 0 || snap.BacklogMS != 0 {
		t.Errorf("backlog after release units=%v ms=%v, want exactly 0/0 (NaN disables shedding)",
			snap.BacklogUnits, snap.BacklogMS)
	}
	// And the tier still sheds on backlog afterwards.
	if shed := s.tryAdmit(map[string]admitReserve{"c": {units: 2 * MaxCostUnits}}); shed != nil {
		t.Fatalf("post-drain admission broken: %v", shed)
	}
	if shed := s.tryAdmit(map[string]admitReserve{"d": {units: MaxCostUnits}}); shed == nil || shed.Reason != "backlog" {
		t.Errorf("backlog shedding disabled after Inf injection: %v", shed)
	}
}

// TestQueueFullReleasesReservation overflows the executor queue
// mid-query-set: the failed tasks' admission reservations must be
// released, and after the drain backlog_units and pending_interactive
// return to exactly zero. Runs under -race via make test-race.
func TestQueueFullReleasesReservation(t *testing.T) {
	s, gate, _ := blockingScheduler(t, SchedulerConfig{
		Workers:    1,
		QueueDepth: 1,
		Admission:  AdmissionConfig{InteractiveSlots: 16},
	})
	// Blocker occupies the only worker...
	qs1, ids, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "block"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker running", func() bool {
		st, _ := s.Status(ids[0])
		return st.State == StateRunning
	})
	// ...a filler occupies the single queue slot...
	qs2, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "noop"}})
	if err != nil {
		t.Fatal(err)
	}
	// ...so a 2-task query set is admitted (16 slots are free) but both
	// enqueues overflow and fail the tasks.
	qs3, ids3, err := s.Submit([]Spec{
		{Dataset: "demo", Algorithm: "noop"},
		{Dataset: "demo", Algorithm: "noop"},
	})
	if err != nil {
		t.Fatalf("overflow set rejected at admission, want queue-full task failures: %v", err)
	}
	for _, id := range ids3 {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateFailed {
			t.Errorf("overflowed task %s state %s, want failed", id, st.State)
		}
	}
	// The overflowed tasks' reservations are already gone: only the
	// blocker (started) and the filler (pending) remain.
	snap := s.AdmissionStats()
	if snap.Inflight != 2 || snap.PendingInteractive != 1 {
		t.Errorf("inflight %d pending %d after overflow, want 2/1", snap.Inflight, snap.PendingInteractive)
	}

	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, qs := range []string{qs1, qs2, qs3} {
		if _, err := s.WaitQuerySet(ctx, qs); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "admission drain", func() bool { return s.AdmissionStats().Inflight == 0 })
	snap = s.AdmissionStats()
	if snap.BacklogUnits != 0 || snap.BacklogMS != 0 || snap.PendingInteractive != 0 {
		t.Errorf("after drain: backlog_units=%v backlog_ms=%v pending=%d, want zeros",
			snap.BacklogUnits, snap.BacklogMS, snap.PendingInteractive)
	}
}

// TestSLOShedFiresBeforeOccupancy breaches the interactive p99 SLO
// while every occupancy limit is stone cold: the next interactive
// submission sheds with reason "slo", batch traffic still flows, and
// the shed is visible in the snapshot.
func TestSLOShedFiresBeforeOccupancy(t *testing.T) {
	s, _, _ := blockingScheduler(t, SchedulerConfig{
		Workers: 2,
		Admission: AdmissionConfig{
			InteractiveSlots:      100,
			MaxPendingInteractive: 100,
			SLOInteractive:        50 * time.Millisecond,
		},
	})
	// Below the SLO: admitted.
	if _, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "noop"}}); err != nil {
		t.Fatalf("pre-breach submission shed: %v", err)
	}
	waitFor(t, "pre-breach task drain", func() bool { return s.AdmissionStats().Inflight == 0 })
	// Breach: a burst of 200 ms run times (≥ sloMinSamples of them).
	for i := 0; i < sloMinSamples+2; i++ {
		s.latWin.observe(200)
	}
	var shed *ShedError
	_, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "noop"}})
	if !errors.As(err, &shed) || shed.Reason != "slo" {
		t.Fatalf("err = %v, want ShedError reason slo", err)
	}
	snap := s.AdmissionStats()
	if snap.ShedSLO != 1 {
		t.Errorf("shed_slo = %d, want 1", snap.ShedSLO)
	}
	if snap.Inflight != 0 || snap.PendingInteractive != 0 {
		t.Errorf("occupancy warm (inflight %d pending %d) — slo did not fire first",
			snap.Inflight, snap.PendingInteractive)
	}
	if snap.InteractiveP99MS <= 50 || snap.InteractiveSamples < sloMinSamples {
		t.Errorf("snapshot p99 %gms over %d samples does not show the breach",
			snap.InteractiveP99MS, snap.InteractiveSamples)
	}
	// Batch traffic is immune to the SLO gate too.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	qs, _, err := s.Submit([]Spec{{Dataset: "demo", Algorithm: "noop", Class: ClassBatch}})
	if err != nil {
		t.Fatalf("batch shed during slo breach: %v", err)
	}
	if tasks, err := s.WaitQuerySet(ctx, qs); err != nil || tasks[0].State != StateDone {
		t.Fatalf("batch during breach: %v", err)
	}
}

// TestSlotTunerHillClimb drives tuneSlots directly: a breached SLO
// walks the limit down to the floor one step at a time; a comfortably
// met SLO walks it back up to the ceiling.
func TestSlotTunerHillClimb(t *testing.T) {
	// Park the background tuner so only the direct tuneSlots calls
	// below move the limit — the adjustment counts stay exact. The
	// restore is a Cleanup registered BEFORE the fixture's, so it runs
	// after Shutdown has joined the tuner goroutine (LIFO order).
	oldInterval := slotTuneInterval
	slotTuneInterval = time.Hour
	t.Cleanup(func() { slotTuneInterval = oldInterval })
	s, _, _ := blockingScheduler(t, SchedulerConfig{
		Workers: 1,
		Admission: AdmissionConfig{
			InteractiveSlots:    3,
			InteractiveSlotsMin: 1,
			InteractiveSlotsMax: 4,
			SLOInteractive:      100 * time.Millisecond,
		},
	})
	slots := func() int { return s.AdmissionStats().SlotsCurrent }
	if got := slots(); got != 3 {
		t.Fatalf("initial slot limit %d, want 3", got)
	}
	// Too few samples: no move.
	s.latWin.observe(500)
	s.tuneSlots()
	if got := slots(); got != 3 {
		t.Errorf("tuner moved on %d samples: %d", 1, got)
	}
	for i := 0; i < sloMinSamples+1; i++ {
		s.latWin.observe(500) // p99 ≫ SLO
	}
	s.tuneSlots()
	s.tuneSlots()
	s.tuneSlots() // bounded at the floor
	if got := slots(); got != 1 {
		t.Errorf("slot limit after breach %d, want floor 1", got)
	}
	// Flood the ring with fast samples so the live p99 drops under
	// SLO/2, then climb back to the ceiling.
	for i := 0; i < latencyWindowCap+8; i++ {
		s.latWin.observe(10)
	}
	for i := 0; i < 5; i++ {
		s.tuneSlots()
	}
	if got := slots(); got != 4 {
		t.Errorf("slot limit after recovery %d, want ceiling 4", got)
	}
	snap := s.AdmissionStats()
	if snap.SlotAdjustDown != 2 || snap.SlotAdjustUp != 3 {
		t.Errorf("adjustments down=%d up=%d, want 2/3", snap.SlotAdjustDown, snap.SlotAdjustUp)
	}
}

// TestSlotTunerTicks checks the background goroutine actually drives
// the hill-climb: with a breached window and a fast tick, the limit
// walks down without any direct tuneSlots call.
func TestSlotTunerTicks(t *testing.T) {
	oldInterval := slotTuneInterval
	slotTuneInterval = 10 * time.Millisecond
	t.Cleanup(func() { slotTuneInterval = oldInterval })
	s, _, _ := blockingScheduler(t, SchedulerConfig{
		Workers: 1,
		Admission: AdmissionConfig{
			InteractiveSlots:    4,
			InteractiveSlotsMax: 4,
			SLOInteractive:      100 * time.Millisecond,
		},
	})
	for i := 0; i < sloMinSamples+1; i++ {
		s.latWin.observe(500)
	}
	waitFor(t, "background tuner shrinking the slot limit", func() bool {
		return s.AdmissionStats().SlotsCurrent < 4
	})
}

// TestRetryAfterFromPredictedDrain checks the shed hint is derived
// from the backlog's predicted drain time across the worker pool —
// floored at the configured constant, capped at maxRetryAfter.
func TestRetryAfterFromPredictedDrain(t *testing.T) {
	s, _, _ := blockingScheduler(t, SchedulerConfig{
		Workers:   2,
		Admission: AdmissionConfig{InteractiveSlots: 1, RetryAfter: time.Second},
	})
	// 10 s of predicted work in flight on 2 workers → 5 s drain > 1 s floor.
	if shed := s.tryAdmit(map[string]admitReserve{"a": {units: 1, ms: 10_000}}); shed != nil {
		t.Fatal(shed)
	}
	shed := s.tryAdmit(map[string]admitReserve{"b": {units: 1, ms: 1}})
	if shed == nil || shed.Reason != "slots" {
		t.Fatalf("want slots shed, got %v", shed)
	}
	if shed.RetryAfter != 5*time.Second {
		t.Errorf("RetryAfter %s, want 5s (drain-derived)", shed.RetryAfter)
	}
	s.admitRelease("a")

	// An idle tier falls back to the configured floor.
	if shed := s.tryAdmit(map[string]admitReserve{"c": {units: 1, ms: 1}}); shed != nil {
		t.Fatal(shed)
	}
	shed = s.tryAdmit(map[string]admitReserve{"d": {units: 1, ms: 1}})
	if shed == nil || shed.RetryAfter != time.Second {
		t.Errorf("floor RetryAfter %v, want 1s", shed)
	}
	s.admitRelease("c")

	// A pathological backlog is capped, not parroted.
	if shed := s.tryAdmit(map[string]admitReserve{"e": {units: 1, ms: 1e9}}); shed != nil {
		t.Fatal(shed)
	}
	shed = s.tryAdmit(map[string]admitReserve{"f": {units: 1, ms: 1}})
	if shed == nil || shed.RetryAfter != maxRetryAfter {
		t.Errorf("capped RetryAfter %v, want %s", shed, maxRetryAfter)
	}
}

// TestCostFamilies locks the algorithm → calibration family mapping
// and the batch blending rules.
func TestCostFamilies(t *testing.T) {
	cases := map[string]string{
		"bippr-pair": FamilyBidirectional,
		"ppr-target": FamilyPush,
		"ppr-push":   FamilyPush,
		"ppr-mc":     FamilyWalk,
		"pagerank":   FamilyIterative,
		"2drank":     FamilyIterative,
		"cyclerank":  FamilyEnumeration,
		"made-up":    FamilyOther,
	}
	for alg, want := range cases {
		if got := CostFamily(Spec{Algorithm: alg}); got != want {
			t.Errorf("CostFamily(%s) = %s, want %s", alg, got, want)
		}
	}
	// Homogeneous batch keeps the family; heterogeneous is mixed.
	if got := CostFamily(Spec{Algorithm: "ppr-target", Queries: []SubSpec{{}, {}}}); got != FamilyPush {
		t.Errorf("homogeneous batch family %s, want push", got)
	}
	if got := CostFamily(Spec{Queries: []SubSpec{{Algorithm: "ppr-target"}, {Algorithm: "ppr-mc"}}}); got != FamilyMixed {
		t.Errorf("heterogeneous batch family %s, want mixed", got)
	}
}

// TestCalibratorEWMA locks the calibrator arithmetic: first
// observation initializes, later ones move by the EWMA weight, cold
// families predict at the fallback rate, and restore prefers whichever
// side has seen more tasks.
func TestCalibratorEWMA(t *testing.T) {
	c := newCalibrator()
	if rate, learned := c.rate(FamilyPush); learned || rate != FallbackUnitsPerMS {
		t.Fatalf("cold rate %g learned=%v", rate, learned)
	}
	if got := c.predictMS(FamilyPush, 2*FallbackUnitsPerMS); math.Abs(got-2) > 1e-9 {
		t.Errorf("cold prediction %g ms, want 2", got)
	}
	c.observe(FamilyPush, 1000, 1) // init: 1000 units/ms
	if rate, _ := c.rate(FamilyPush); rate != 1000 {
		t.Errorf("initial rate %g, want 1000", rate)
	}
	c.observe(FamilyPush, 2000, 1) // EWMA: 1000 + 0.25·(2000−1000)
	if rate, _ := c.rate(FamilyPush); math.Abs(rate-1250) > 1e-9 {
		t.Errorf("EWMA rate %g, want 1250", rate)
	}
	// Convergence: repeated observations at a stable rate close the gap.
	for i := 0; i < 20; i++ {
		c.observe(FamilyPush, 2000, 1)
	}
	if rate, _ := c.rate(FamilyPush); math.Abs(rate-2000)/2000 > 0.01 {
		t.Errorf("rate %g did not converge to 2000", rate)
	}
	// Garbage observations are ignored.
	c.observe(FamilyPush, math.Inf(1), math.NaN())
	c.observe("", 100, 1)
	if rate, _ := c.rate(FamilyPush); math.IsNaN(rate) || math.IsInf(rate, 0) {
		t.Errorf("garbage observation corrupted the rate: %v", rate)
	}

	// restore: persisted state seeds cold families but never clobbers a
	// better-fed live one.
	c2 := newCalibrator()
	c2.observe(FamilyWalk, 500, 1)
	c2.restore(map[string]traffic.Calibration{
		FamilyPush: {UnitsPerMS: 3000, Observations: 9},
		FamilyWalk: {UnitsPerMS: 9999, Observations: 1}, // not fresher than live
		"dead":     {UnitsPerMS: 0, Observations: 5},    // invalid rate, skipped
	})
	if rate, learned := c2.rate(FamilyPush); !learned || rate != 3000 {
		t.Errorf("restored rate %g learned=%v", rate, learned)
	}
	if rate, _ := c2.rate(FamilyWalk); rate != 500 {
		t.Errorf("restore clobbered live state: %g", rate)
	}
	if _, learned := c2.rate("dead"); learned {
		t.Error("restore accepted an invalid rate")
	}
}
