package task

import (
	"fmt"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// LoaderFunc resolves a dataset name to its graph. The scheduler uses
// it to fetch datasets from the catalog or the datastore.
type LoaderFunc func(name string) (*graph.Graph, error)

// Builder assembles and validates a query set before submission — the
// demo's Task Builder component. Validation happens at Add time so the
// UI can reject an invalid query immediately rather than after
// scheduling.
type Builder struct {
	registry *algo.Registry
	exists   func(dataset string) bool
	specs    []Spec
}

// NewBuilder returns a Task Builder validating algorithms against the
// registry and dataset names against the exists predicate (nil means
// any dataset name is accepted and failures surface at load time).
func NewBuilder(registry *algo.Registry, exists func(dataset string) bool) *Builder {
	return &Builder{registry: registry, exists: exists}
}

// Add validates and appends one task spec to the query set.
func (b *Builder) Add(s Spec) error {
	if s.Dataset == "" {
		return fmt.Errorf("task: spec has no dataset")
	}
	if b.exists != nil && !b.exists(s.Dataset) {
		return fmt.Errorf("task: unknown dataset %q", s.Dataset)
	}
	a, err := b.registry.Get(s.Algorithm)
	if err != nil {
		return fmt.Errorf("task: %w", err)
	}
	if a.NeedsSource() && s.Params.Source == "" {
		return fmt.Errorf("task: algorithm %q requires a source node", s.Algorithm)
	}
	if algo.NeedsTarget(a) && s.Params.Target == "" {
		return fmt.Errorf("task: algorithm %q requires a target node", s.Algorithm)
	}
	if err := s.Params.Validate(); err != nil {
		return fmt.Errorf("task: %w", err)
	}
	b.specs = append(b.specs, s)
	return nil
}

// Remove deletes the i-th spec from the query set (the UI's per-query
// delete button).
func (b *Builder) Remove(i int) error {
	if i < 0 || i >= len(b.specs) {
		return fmt.Errorf("task: spec index %d out of range [0,%d)", i, len(b.specs))
	}
	b.specs = append(b.specs[:i], b.specs[i+1:]...)
	return nil
}

// Clear empties the query set (the UI's trash-bin button).
func (b *Builder) Clear() { b.specs = nil }

// Len returns the number of queued specs.
func (b *Builder) Len() int { return len(b.specs) }

// Specs returns a copy of the current query set.
func (b *Builder) Specs() []Spec {
	out := make([]Spec, len(b.specs))
	copy(out, b.specs)
	return out
}
