package task

import (
	"fmt"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// LoaderFunc resolves a dataset name to its graph. The scheduler uses
// it to fetch datasets from the catalog or the datastore.
type LoaderFunc func(name string) (*graph.Graph, error)

// Builder assembles and validates a query set before submission — the
// demo's Task Builder component. Validation happens at Add time so the
// UI can reject an invalid query immediately rather than after
// scheduling.
type Builder struct {
	registry *algo.Registry
	exists   func(dataset string) bool
	specs    []Spec
}

// NewBuilder returns a Task Builder validating algorithms against the
// registry and dataset names against the exists predicate (nil means
// any dataset name is accepted and failures surface at load time).
func NewBuilder(registry *algo.Registry, exists func(dataset string) bool) *Builder {
	return &Builder{registry: registry, exists: exists}
}

// Add validates and appends one task spec to the query set. Batch
// specs (Spec.Queries non-empty) validate every subquery with the
// same front-loaded rules as a plain spec, and are normalized so each
// stored SubSpec carries its resolved algorithm name.
func (b *Builder) Add(s Spec) error {
	if s.Dataset == "" {
		return fmt.Errorf("task: spec has no dataset")
	}
	if b.exists != nil && !b.exists(s.Dataset) {
		return fmt.Errorf("task: unknown dataset %q", s.Dataset)
	}
	if _, err := ParseClass(string(s.Class)); err != nil {
		return err
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("task: timeout_ms=%d must not be negative", s.TimeoutMS)
	}
	// Class presets are applied before validation so what is validated
	// (and later executed and reported) is exactly the normalized spec.
	s = applyClassPresets(s)
	if s.IsBatch() {
		return b.addBatch(s)
	}
	// Parallelism only shapes a batch's intra-task pool; accepting it
	// on a plain spec would silently promise concurrency that does not
	// exist.
	if s.Parallelism != 0 {
		return fmt.Errorf("task: parallelism applies to batch submissions (queries), not single tasks")
	}
	if err := b.checkQuery(s.Algorithm, s.Params); err != nil {
		return fmt.Errorf("task: %w", err)
	}
	b.specs = append(b.specs, s)
	return nil
}

// addBatch validates a batch spec. The dataset has already been
// checked; each subquery resolves its algorithm (falling back to the
// batch default) and passes the same validation as a standalone spec.
func (b *Builder) addBatch(s Spec) error {
	if len(s.Queries) > MaxBatchQueries {
		return fmt.Errorf("task: batch has %d queries, limit %d", len(s.Queries), MaxBatchQueries)
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("task: parallelism=%d must not be negative", s.Parallelism)
	}
	// Top-level params are rejected rather than silently ignored: a
	// submitter who set them expects them to apply to every query,
	// and would otherwise get plausible results computed with the
	// defaults instead.
	if s.Params != (algo.Params{}) {
		return fmt.Errorf("task: batch params are per-query; set params on each entry of queries, not on the batch")
	}
	// Normalize into a copy: resolved algorithm names, detached from
	// the caller's slice.
	queries := make([]SubSpec, len(s.Queries))
	for i, q := range s.Queries {
		if q.Algorithm == "" {
			q.Algorithm = s.Algorithm
		}
		if q.Algorithm == "" {
			return fmt.Errorf("task: batch query %d names no algorithm and the batch has no default", i)
		}
		if q.TimeoutMS < 0 {
			return fmt.Errorf("task: batch query %d: timeout_ms=%d must not be negative", i, q.TimeoutMS)
		}
		if err := b.checkQuery(q.Algorithm, q.Params); err != nil {
			return fmt.Errorf("task: batch query %d: %w", i, err)
		}
		queries[i] = q
	}
	s.Queries = queries
	b.specs = append(b.specs, s)
	return nil
}

// checkQuery applies the front-loaded validation shared by plain
// specs and batch subqueries; callers add the "task:" context.
func (b *Builder) checkQuery(algorithm string, p algo.Params) error {
	a, err := b.registry.Get(algorithm)
	if err != nil {
		return err
	}
	if a.NeedsSource() && p.Source == "" {
		return fmt.Errorf("algorithm %q requires a source node", algorithm)
	}
	if algo.NeedsTarget(a) && p.Target == "" {
		return fmt.Errorf("algorithm %q requires a target node", algorithm)
	}
	return p.Validate()
}

// Remove deletes the i-th spec from the query set (the UI's per-query
// delete button).
func (b *Builder) Remove(i int) error {
	if i < 0 || i >= len(b.specs) {
		return fmt.Errorf("task: spec index %d out of range [0,%d)", i, len(b.specs))
	}
	b.specs = append(b.specs[:i], b.specs[i+1:]...)
	return nil
}

// Clear empties the query set (the UI's trash-bin button).
func (b *Builder) Clear() { b.specs = nil }

// Len returns the number of queued specs.
func (b *Builder) Len() int { return len(b.specs) }

// Specs returns a copy of the current query set.
func (b *Builder) Specs() []Spec {
	out := make([]Spec, len(b.specs))
	copy(out, b.specs)
	return out
}
