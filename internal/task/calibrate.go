package task

import (
	"sync"

	"github.com/cyclerank/cyclerank-go/internal/traffic"
)

// The calibrator closes the loop the cyclerank_cost_units_per_ms
// histogram only observed: every completed task's (estimated units,
// measured milliseconds) pair updates a per-family EWMA of how many
// abstract work units this machine burns per millisecond, and the
// admission fast path divides new estimates by that rate to predict
// milliseconds-of-work — the number -max-backlog-ms and the
// Retry-After drain hint are denominated in.
//
// Families, not algorithms: the rate measures how fast the hardware
// retires one KIND of elementary operation (a push edge update, a walk
// step, an edge relaxation), so algorithms sharing an inner loop share
// a family and pool their observations (see CostFamily).
const (
	// calibrationEWMAWeight is the weight of the newest observation.
	// 0.25 converges to ~95% of a shifted rate within ~10 completions
	// while one outlier task moves the rate at most a quarter of the
	// way — fast enough to track a warming cache, slow enough to not
	// thrash on it.
	calibrationEWMAWeight = 0.25
	// FallbackUnitsPerMS prices predictions for families with no
	// observations yet. Deliberately modest (~50M ops/s) so a cold tier
	// over-predicts milliseconds and sheds early rather than admitting
	// an hour of surprise backlog.
	FallbackUnitsPerMS = 50_000.0
	// calibrationMinMS floors measured durations: a timer quantization
	// of zero must not divide the rate to infinity.
	calibrationMinMS = 1e-3
)

// calibrator is the per-scheduler EWMA state, persisted across boots
// inside the traffic sketch (traffic.Calibration is the wire type).
type calibrator struct {
	mu  sync.Mutex
	fam map[string]traffic.Calibration
}

func newCalibrator() *calibrator {
	return &calibrator{fam: make(map[string]traffic.Calibration)}
}

// observe feeds one completed task's measurement into its family's
// EWMA. The first observation initializes the rate outright — a single
// real measurement beats the fallback constant.
func (c *calibrator) observe(family string, units, ms float64) {
	if family == "" || units <= 0 || !(ms > 0) {
		return
	}
	if ms < calibrationMinMS {
		ms = calibrationMinMS
	}
	rate := units / ms
	c.mu.Lock()
	cur, ok := c.fam[family]
	if !ok || cur.Observations == 0 {
		cur = traffic.Calibration{UnitsPerMS: rate}
	} else {
		cur.UnitsPerMS += calibrationEWMAWeight * (rate - cur.UnitsPerMS)
	}
	cur.Observations++
	c.fam[family] = cur
	c.mu.Unlock()
}

// rate returns the family's learned units/ms, or the fallback when the
// family has no observations. The bool reports whether the rate is
// learned.
func (c *calibrator) rate(family string) (float64, bool) {
	c.mu.Lock()
	cur, ok := c.fam[family]
	c.mu.Unlock()
	if !ok || cur.Observations == 0 || cur.UnitsPerMS <= 0 {
		return FallbackUnitsPerMS, false
	}
	return cur.UnitsPerMS, true
}

// predictMS converts an estimate in abstract units into predicted
// milliseconds of work under the family's current rate. Estimates are
// clamped (MaxCostUnits) and rates are positive, so the prediction is
// always finite.
func (c *calibrator) predictMS(family string, units float64) float64 {
	if units <= 0 {
		return 0
	}
	rate, _ := c.rate(family)
	return units / rate
}

// snapshot copies the calibration state, for persistence and status.
func (c *calibrator) snapshot() map[string]traffic.Calibration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]traffic.Calibration, len(c.fam))
	for f, cal := range c.fam {
		out[f] = cal
	}
	return out
}

// restore seeds the calibrator with persisted state (a previous boot's
// snapshot, carried by the traffic sketch). Entries without
// observations or with non-positive rates are skipped; live state, if
// any, is kept where it is fresher than the artifact.
func (c *calibrator) restore(cal map[string]traffic.Calibration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for f, in := range cal {
		if in.Observations == 0 || in.UnitsPerMS <= 0 {
			continue
		}
		if cur, ok := c.fam[f]; ok && cur.Observations >= in.Observations {
			continue
		}
		c.fam[f] = in
	}
}
