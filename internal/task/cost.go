package task

import (
	"math"

	"github.com/cyclerank/cyclerank-go/internal/algo"
	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/pagerank"
)

// CostStats is the slice of graph statistics the cost model needs:
// cheap enough that the scheduler keeps them per cached dataset and
// the fast-reject path can price a request WITHOUT loading the graph
// (an unknown dataset prices with fallback defaults — admission must
// never pay the load it exists to avoid).
type CostStats struct {
	Nodes int   `json:"nodes"`
	Edges int64 `json:"edges"`
}

// Cost-model fallbacks for datasets whose stats are not yet known
// (nothing has loaded the graph this boot). Sized like the catalog's
// mid-sized datasets so cold-start pricing errs on the expensive side
// for tiny graphs rather than under-admitting big ones.
const (
	costFallbackNodes     = 10_000
	costFallbackAvgDegree = 8.0
)

func (st CostStats) nodes() float64 {
	if st.Nodes <= 0 {
		return costFallbackNodes
	}
	return float64(st.Nodes)
}

func (st CostStats) edges() float64 {
	if st.Edges <= 0 {
		return st.nodes() * costFallbackAvgDegree
	}
	return float64(st.Edges)
}

func (st CostStats) avgDegree() float64 {
	d := st.edges() / st.nodes()
	if d < 1 {
		return 1
	}
	return d
}

// MaxCostUnits is the finite ceiling every estimate is clamped to at
// stamp time. The admission backlog is a running float sum; a single
// +Inf entering it would make release compute Inf − Inf = NaN and
// silently disable backlog shedding until the tier drained idle, so
// "absurdly expensive" is represented as this ceiling — large enough
// (10^15 elementary operations ≈ days of work) that anything clamped
// is shed by any sane backlog cap anyway.
const MaxCostUnits = 1e15

// clampCost maps an estimate onto (0, MaxCostUnits]: non-finite or
// over-ceiling values (a zero rmax pricing to +Inf, a pathological K)
// become the ceiling, and NaN — unknowable — is priced as the ceiling
// too, erring on the shed side.
func clampCost(u float64) float64 {
	if math.IsNaN(u) || u > MaxCostUnits {
		return MaxCostUnits
	}
	return u
}

// Calibration families: algorithms sharing an inner-loop operation
// share a units/ms rate, so their observations pool (see calibrator).
const (
	FamilyBidirectional = "bidirectional" // push + walk mix (bippr-pair)
	FamilyPush          = "push"          // local push, forward or reverse
	FamilyWalk          = "walk"          // Monte-Carlo walk stepping
	FamilyIterative     = "iterative"     // dense power iteration
	FamilyEnumeration   = "enumeration"   // bounded cycle enumeration
	FamilyOther         = "other"         // unknown algorithms
	FamilyMixed         = "mixed"         // batches spanning families
)

// queryCostFamily buckets one algorithm.
func queryCostFamily(algorithm string) string {
	switch algorithm {
	case "bippr-pair":
		return FamilyBidirectional
	case "ppr-target", "ppr-push":
		return FamilyPush
	case "ppr-mc":
		return FamilyWalk
	case "pagerank", "ppr", "cheirank", "pcheirank", "2drank", "p2drank":
		return FamilyIterative
	case "cyclerank":
		return FamilyEnumeration
	}
	return FamilyOther
}

// CostFamily maps a spec to its calibration family. A batch whose
// subqueries all share one family calibrates as that family; a
// heterogeneous batch is "mixed" — its rate is a blend no single
// family should learn from.
func CostFamily(s Spec) string {
	if s.IsBatch() {
		fam := ""
		for _, q := range s.Queries {
			alg := q.Algorithm
			if alg == "" {
				alg = s.Algorithm
			}
			f := queryCostFamily(alg)
			if fam == "" {
				fam = f
			} else if fam != f {
				return FamilyMixed
			}
		}
		if fam == "" {
			return FamilyOther
		}
		return fam
	}
	return queryCostFamily(s.Algorithm)
}

// CostFamilies lists every calibration family, for eager metric
// registration.
func CostFamilies() []string {
	return []string{FamilyBidirectional, FamilyPush, FamilyWalk,
		FamilyIterative, FamilyEnumeration, FamilyOther, FamilyMixed}
}

// EstimateCost prices a spec in abstract work units — roughly
// "elementary graph operations": one reverse-push edge update, one
// random-walk step, one edge relaxation of a power iteration. The
// point is not microsecond accuracy but ordering and additivity: the
// admission controller sums these units into a backlog and sheds when
// the sum says the queue is hours deep, and the learned pre-warm uses
// the same numbers to rank what is worth precomputing.
//
// For the bidirectional estimator the model is Lofgren's balance
// point: reverse-push work scales like d̄/((1−α)·rmax) — antitone in
// rmax — and forward-walk work like walks·E[len] with E[len] =
// min(α/(1−α), maxSteps) — monotone in the walk count. Both shapes
// are locked by TestCostEstimatorMonotone, and the absolute scale is
// sanity-banded against measured pushes+walks in
// TestEstimateVsActualWithinBand.
//
// A batch spec prices as the sum of its subqueries.
//
// The return value is always finite: estimates are clamped to
// MaxCostUnits at stamp time (see clampCost) because they flow into
// the admission backlog's running sum, which a single +Inf would
// poison into NaN.
func EstimateCost(s Spec, st CostStats) float64 {
	if s.IsBatch() {
		var sum float64
		for _, q := range s.Queries {
			alg := q.Algorithm
			if alg == "" {
				alg = s.Algorithm
			}
			sum += estimateQueryCost(alg, q.Params, st)
		}
		return clampCost(sum)
	}
	return clampCost(estimateQueryCost(s.Algorithm, s.Params, st))
}

// estimateQueryCost prices one (algorithm, params) query.
func estimateQueryCost(algorithm string, p algo.Params, st CostStats) float64 {
	alpha := p.Alpha
	if alpha == 0 {
		alpha = bippr.DefaultAlpha
	}
	switch algorithm {
	case "bippr-pair":
		return pushCost(alpha, rmaxOrDefault(p), st) + walkCost(alpha, p)
	case "ppr-target":
		return pushCost(alpha, rmaxOrDefault(p), st)
	case "ppr-mc":
		return walkCost(alpha, p)
	case "ppr-push":
		eps := p.Epsilon
		if eps == 0 {
			eps = algo.DefaultEpsilon
		}
		// Forward push mirrors reverse push with the roles of rmax and
		// epsilon swapped: residual mass drains at (1−α) per push, each
		// push fans out over out-degree edges.
		return pushCost(alpha, eps, st)
	case "pagerank", "ppr", "cheirank", "pcheirank":
		return iterCost(alpha, p, st)
	case "2drank", "p2drank":
		// Two full power iterations (rank and cheirank legs).
		return 2 * iterCost(alpha, p, st)
	case "cyclerank":
		// Bounded-length cycle enumeration explores ~d̄^K paths from the
		// source neighborhood; capped so pathological K can't overflow
		// the backlog arithmetic.
		k := p.K
		if k == 0 {
			k = 3
		}
		return math.Min(math.Pow(st.avgDegree(), float64(k))+st.edges(), MaxCostUnits)
	}
	// Unknown algorithm: one full pass over the graph.
	return st.nodes() + st.edges()
}

// pushCost models local-push work (reverse or forward) at residual
// threshold rmax: at most 1/((1−α)·rmax) pushes each touching ~d̄
// edges, but never more than a full power iteration run to the same
// precision — on small or dense graphs residuals saturate and the
// frontier is the whole graph, so m·log(1/rmax)/log(1/α) is the
// binding bound. Both legs are antitone in rmax, so the min is too.
func pushCost(alpha, rmax float64, st CostStats) float64 {
	if rmax <= 0 || alpha >= 1 {
		return math.Inf(1)
	}
	local := st.avgDegree() / ((1 - alpha) * rmax)
	iters := math.Log(1/rmax) / math.Log(1/alpha)
	if iters < 1 {
		iters = 1
	}
	saturated := st.edges() * iters
	return math.Min(local, saturated)
}

// walkCost models forward random-walk work: the walk count (explicit,
// or the Hoeffding count derived from eps) times the expected walk
// length min(α/(1−α), maxSteps) under continue-probability α.
func walkCost(alpha float64, p algo.Params) float64 {
	walks := float64(p.Walks)
	if p.Walks == 0 && p.Eps == 0 {
		walks = bippr.DefaultWalks
	}
	if p.Eps > 0 {
		walks = float64(bippr.WalksForError(rmaxOrDefault(p), p.Eps))
	}
	expLen := alpha / (1 - alpha)
	if expLen > bippr.DefaultMaxSteps {
		expLen = bippr.DefaultMaxSteps
	}
	if expLen < 1 {
		expLen = 1
	}
	return walks * expLen
}

// iterCost models a dense power iteration: iterations to reach tol at
// damping alpha (geometric decay), capped at the engine's MaxIter,
// each iteration relaxing every edge.
func iterCost(alpha float64, p algo.Params, st CostStats) float64 {
	tol := p.Tol
	if tol == 0 {
		tol = pagerank.DefaultTol
	}
	maxIter := p.MaxIter
	if maxIter == 0 {
		maxIter = pagerank.DefaultMaxIter
	}
	iters := math.Log(1/tol) / math.Log(1/alpha)
	if iters < 1 {
		iters = 1
	}
	if iters > float64(maxIter) {
		iters = float64(maxIter)
	}
	return iters * st.edges()
}

func rmaxOrDefault(p algo.Params) float64 {
	if p.RMax == 0 {
		return bippr.DefaultRMax
	}
	return p.RMax
}
