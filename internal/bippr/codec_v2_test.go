package bippr

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestEndpointCodecV1RoundTrip keeps the legacy fixed-width writer
// honest: a v1-encoded artifact must decode to the same set the v2
// path round-trips, through the same version-dispatching decoder.
func TestEndpointCodecV1RoundTrip(t *testing.T) {
	for _, walks := range []int{1, 127, 128, 129, 1000} {
		a, g := recordArtifact(t, walks)
		data, err := EncodeEndpointsV1(a)
		if err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint16(data[4:6]); v != uint16(endpointCodecV1) {
			t.Fatalf("walks=%d: v1 encoder wrote version %d", walks, v)
		}
		got, err := DecodeEndpointsSized(data, g.NumNodes())
		if err != nil {
			t.Fatalf("walks=%d: %v", walks, err)
		}
		if got.Source != a.Source || got.Alpha != a.Alpha || got.Seed != a.Seed || got.MaxSteps != a.MaxSteps {
			t.Fatalf("walks=%d: header mismatch: %+v vs %+v", walks, got, a)
		}
		endpointSetsEqual(t, a.Set, got.Set)
	}
}

// TestEndpointCodecV1Corruption runs the corruption matrix against the
// legacy framing — the disk tier keeps pre-upgrade files around, so
// damaged v1 artifacts must keep failing closed too.
func TestEndpointCodecV1Corruption(t *testing.T) {
	a, g := recordArtifact(t, 512)
	data, err := EncodeEndpointsV1(a)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/3] },
		"bit-flip":  func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)/2] ^= 0x20; return b },
		"garbage":   func([]byte) []byte { return []byte("not a recording") },
		"empty":     func([]byte) []byte { return nil },
	} {
		if _, err := DecodeEndpointsSized(mutate(append([]byte(nil), data...)), g.NumNodes()); !errors.Is(err, ErrEndpointsCorrupt) {
			t.Errorf("v1 %s decoded as %v, want ErrEndpointsCorrupt", name, err)
		}
	}
	if _, err := DecodeEndpointsSized(data, 2); !errors.Is(err, ErrEndpointsCorrupt) {
		t.Errorf("v1 undersized graph decode = %v, want ErrEndpointsCorrupt", err)
	}
}

// TestEndpointCodecV2DeltaOverflow rejects a structurally valid v2
// file whose accumulated delta escapes the graph's id space — the CRC
// is re-sealed so only the decoder's range check can catch it.
func TestEndpointCodecV2DeltaOverflow(t *testing.T) {
	a := EndpointArtifact{Source: 0, Alpha: 0.85, Seed: 1, MaxSteps: DefaultMaxSteps,
		Set: &EndpointSet{Walks: 2, chunks: [][]EndpointCount{{{Node: 5, Count: 2}}}}}
	data, err := EncodeEndpoints(a)
	if err != nil {
		t.Fatal(err)
	}
	// Body: 50-byte header, then chunk 0 = n(1), delta(5), count-1(1).
	// Overwrite the one-byte delta with an id far past a 10-node graph.
	if len(data) != 57 || data[51] != 5 {
		t.Fatalf("framing shifted (len=%d, delta byte=%d); update the offsets", len(data), data[51])
	}
	data[51] = 200
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
	if _, err := DecodeEndpointsSized(data, 10); !errors.Is(err, ErrEndpointsCorrupt) {
		t.Fatalf("out-of-range delta decoded as %v, want ErrEndpointsCorrupt", err)
	}
}

// TestEndpointCodecV2Smaller pins the codec upgrade's point: on a real
// recording the delta-varint framing must shrink the artifact by at
// least 1.8x vs the fixed-width layout.
func TestEndpointCodecV2Smaller(t *testing.T) {
	a, _ := recordArtifact(t, 4096)
	v1, err := EncodeEndpointsV1(a)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := EncodeEndpoints(a)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(v1)) / float64(len(v2)); ratio < 1.8 {
		t.Errorf("v2 is only %.2fx smaller than v1 (%d vs %d bytes), want >= 1.8x", ratio, len(v1), len(v2))
	}
}

// TestEndpointCodecMixedVersionsDiskTier is the version-negotiation
// test: a disk tier holding BOTH a pre-upgrade v1 artifact and a
// current v2 artifact must serve each as a disk hit, with no re-walk.
func TestEndpointCodecMixedVersionsDiskTier(t *testing.T) {
	g := randomGraph(t, 70, 300, 19, true)
	w := NewWalkEstimator(g, 0.85, 5, 0)
	dir := t.TempDir()
	fp := sharedFingerprints.get(g)

	record := func(source graph.NodeID, walks int) (Params, *EndpointSet) {
		set, err := w.Endpoints(context.Background(), source, walks, 1)
		if err != nil {
			t.Fatal(err)
		}
		return Params{Alpha: 0.85, Seed: 5, MaxSteps: DefaultMaxSteps, Walks: walks}, set
	}

	// Plant the v1 artifact by hand, as if written before the upgrade.
	p1, set1 := record(4, 300)
	v1Data, err := EncodeEndpointsV1(EndpointArtifact{
		Source: 4, Alpha: p1.Alpha, Seed: p1.Seed, MaxSteps: p1.MaxSteps, Set: set1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := datastore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveEndpoints(fp, EndpointFileKey(4, p1.Alpha, p1.Seed, p1.MaxSteps, p1.Walks), v1Data); err != nil {
		t.Fatal(err)
	}

	// Record the v2 artifact through the cache itself.
	cache := NewTieredEndpointCache(4, ds)
	p2, set2 := record(9, 300)
	if _, _, err := cache.GetOrRecord(context.Background(), g, 9, p2, func() (*EndpointSet, error) {
		return set2, nil
	}); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh cache over the same files must disk-hit both.
	reopened := NewTieredEndpointCache(4, ds)
	for _, q := range []struct {
		source graph.NodeID
		p      Params
		want   *EndpointSet
	}{{4, p1, set1}, {9, p2, set2}} {
		got, cached, err := reopened.GetOrRecord(context.Background(), g, q.source, q.p, func() (*EndpointSet, error) {
			t.Errorf("source %d: walk pass re-ran; expected a disk-tier hit", q.source)
			return q.want, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !cached {
			t.Errorf("source %d: not reported cached", q.source)
		}
		endpointSetsEqual(t, q.want, got)
	}
	if s := reopened.Stats(); s.DiskHits != 2 || s.DiskErrors != 0 {
		t.Errorf("mixed-tier stats = %+v, want two disk hits and no errors", s)
	}
}

// TestEndpointCodecV2Golden freezes the v2 wire format: a
// hand-constructed (RNG-independent) endpoint set must encode to the
// exact bytes in testdata, so any framing drift — header field order,
// varint packing, the gap-minus-one convention — fails loudly instead
// of silently orphaning every persisted artifact. Regenerate with
// `go test -run TestEndpointCodecV2Golden -update` after a DELIBERATE
// format change (which must also bump endpointCodecVersion).
func TestEndpointCodecV2Golden(t *testing.T) {
	set := &EndpointSet{Walks: 200, chunks: [][]EndpointCount{
		{{Node: 0, Count: 1}, {Node: 7, Count: 3}, {Node: 1000, Count: 120}},
		{{Node: 16383, Count: 1}, {Node: 16384, Count: 71}},
	}}
	data, err := EncodeEndpoints(EndpointArtifact{
		Source: 42, Alpha: 0.85, Seed: -1, MaxSteps: DefaultMaxSteps, Set: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "endpoints_v2.ep")
	if *updateGolden {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, golden) {
		t.Fatalf("encoded bytes drifted from golden file (%d vs %d bytes); if the wire format "+
			"changed deliberately, bump endpointCodecVersion and regenerate with -update", len(data), len(golden))
	}
	// And the golden file itself must keep decoding to the same set.
	got, err := DecodeEndpoints(golden)
	if err != nil {
		t.Fatal(err)
	}
	endpointSetsEqual(t, set, got.Set)
}
