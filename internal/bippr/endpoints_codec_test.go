package bippr

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// recordArtifact runs a real walk pass and wraps it as the codec's
// unit of persistence.
func recordArtifact(t *testing.T, walks int) (EndpointArtifact, *graph.Graph) {
	t.Helper()
	g := randomGraph(t, 70, 300, 19, true)
	w := NewWalkEstimator(g, 0.85, 5, 0)
	set, err := w.Endpoints(context.Background(), 4, walks, 1)
	if err != nil {
		t.Fatal(err)
	}
	return EndpointArtifact{Source: 4, Alpha: 0.85, Seed: 5, MaxSteps: DefaultMaxSteps, Set: set}, g
}

// endpointSetsEqual compares two sets chunk by chunk.
func endpointSetsEqual(t *testing.T, want, got *EndpointSet) {
	t.Helper()
	if got.Walks != want.Walks || len(got.chunks) != len(want.chunks) {
		t.Fatalf("shape mismatch: walks %d/%d, chunks %d/%d",
			got.Walks, want.Walks, len(got.chunks), len(want.chunks))
	}
	for c := range want.chunks {
		if len(got.chunks[c]) != len(want.chunks[c]) {
			t.Fatalf("chunk %d: %d entries, want %d", c, len(got.chunks[c]), len(want.chunks[c]))
		}
		for i, e := range want.chunks[c] {
			if got.chunks[c][i] != e {
				t.Fatalf("chunk %d entry %d: %+v, want %+v", c, i, got.chunks[c][i], e)
			}
		}
	}
}

func TestEndpointCodecRoundTrip(t *testing.T) {
	for _, walks := range []int{1, 127, 128, 129, 1000} {
		a, g := recordArtifact(t, walks)
		data, err := EncodeEndpoints(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeEndpointsSized(data, g.NumNodes())
		if err != nil {
			t.Fatalf("walks=%d: %v", walks, err)
		}
		if got.Source != a.Source || got.Alpha != a.Alpha || got.Seed != a.Seed || got.MaxSteps != a.MaxSteps {
			t.Fatalf("walks=%d: header mismatch: %+v vs %+v", walks, got, a)
		}
		endpointSetsEqual(t, a.Set, got.Set)
		// The decoded set re-weights bit-identically — the property
		// persistence must preserve.
		values := make([]float64, g.NumNodes())
		for i := range values {
			values[i] = float64(i%7) * 1e-4
		}
		wv := NewDenseVector(values)
		if got.Set.EstimateSum(wv) != a.Set.EstimateSum(wv) {
			t.Fatalf("walks=%d: decoded set folds differently", walks)
		}
	}
}

func TestEndpointCodecVersionMismatch(t *testing.T) {
	a, _ := recordArtifact(t, 256)
	data, err := EncodeEndpoints(a)
	if err != nil {
		t.Fatal(err)
	}
	// Bump the version field and re-seal the checksum so only the
	// version check can fail.
	data[4]++
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
	if _, err := DecodeEndpoints(data); !errors.Is(err, ErrEndpointsVersion) {
		t.Fatalf("version skew decoded as %v, want ErrEndpointsVersion", err)
	}
}

func TestEndpointCodecCorruption(t *testing.T) {
	a, g := recordArtifact(t, 512)
	data, err := EncodeEndpoints(a)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/3] },
		"bit-flip":  func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)/2] ^= 0x20; return b },
		"garbage":   func([]byte) []byte { return []byte("not a recording") },
		"empty":     func([]byte) []byte { return nil },
	} {
		if _, err := DecodeEndpointsSized(mutate(append([]byte(nil), data...)), g.NumNodes()); !errors.Is(err, ErrEndpointsCorrupt) {
			t.Errorf("%s decoded as %v, want ErrEndpointsCorrupt", name, err)
		}
	}
	// A valid artifact loaded for a smaller graph is rejected before
	// any endpoint can index out of a weight vector's bounds.
	if _, err := DecodeEndpointsSized(data, 2); !errors.Is(err, ErrEndpointsCorrupt) {
		t.Errorf("undersized graph decode = %v, want ErrEndpointsCorrupt", err)
	}
}
