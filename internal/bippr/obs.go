package bippr

import (
	"sync/atomic"

	"github.com/cyclerank/cyclerank-go/internal/obs"
)

// pkgMetrics are the package's hot-path work counters, registered in
// the process-wide obs registry. They measure algorithmic work —
// pushes and walks are exactly the per-phase cost quantities
// Lofgren's bidirectional analysis balances against each other — and
// are observed once per pass (one histogram observe per reverse push,
// one counter add per walk pass), never per push or per walk, so the
// inner loops stay untouched.
type pkgMetrics struct {
	pushRuns    *obs.Counter
	pushOps     *obs.Counter
	pushSeconds *obs.Histogram

	walkPasses  *obs.Counter
	walks       *obs.Counter
	walkChunks  *obs.Counter
	walkSeconds *obs.Histogram

	reweights     *obs.Counter
	walksAvoided  *obs.Counter
	walksRecorded *obs.Counter
}

func newPkgMetrics() *pkgMetrics {
	r := obs.Default()
	return &pkgMetrics{
		pushRuns:    r.Counter("cyclerank_bippr_reverse_push_runs_total", "Reverse push executions (cache misses that computed an index)."),
		pushOps:     r.Counter("cyclerank_bippr_reverse_push_ops_total", "Individual push operations across all reverse push runs."),
		pushSeconds: r.Histogram("cyclerank_bippr_reverse_push_seconds", "Reverse push duration.", nil),

		walkPasses:  r.Counter("cyclerank_bippr_walk_passes_total", "Forward walk passes (fresh simulation or recording)."),
		walks:       r.Counter("cyclerank_bippr_walks_total", "Forward walks simulated."),
		walkChunks:  r.Counter("cyclerank_bippr_walk_chunks_total", "Walk chunks processed across all passes."),
		walkSeconds: r.Histogram("cyclerank_bippr_walk_pass_seconds", "Forward walk pass duration.", nil),

		reweights:     r.Counter("cyclerank_bippr_endpoint_reweights_total", "Pair queries answered by re-weighting recorded walk endpoints."),
		walksAvoided:  r.Counter("cyclerank_bippr_walks_avoided_total", "Walks not simulated because recorded endpoints were re-weighted."),
		walksRecorded: r.Counter("cyclerank_bippr_walks_recorded_total", "Walks whose endpoints were recorded for reuse."),
	}
}

// metrics holds the active instrumentation handle, nil when disabled.
// A single atomic pointer load (plus nil check) is the entire cost the
// uninstrumented configuration pays — BenchmarkObsOverhead's baseline.
var metrics atomic.Pointer[pkgMetrics]

func init() { metrics.Store(newPkgMetrics()) }

// SetMetricsEnabled turns the package's hot-path metrics on or off.
// Disabling exists for overhead benchmarking (a true uninstrumented
// baseline); production code leaves metrics on. Counters keep their
// accumulated values across off/on cycles because the registry returns
// the same metric objects on re-registration.
func SetMetricsEnabled(on bool) {
	if on {
		metrics.Store(newPkgMetrics())
	} else {
		metrics.Store(nil)
	}
}
