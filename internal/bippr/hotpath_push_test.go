package bippr

import (
	"context"
	"math/rand"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// withHotPath installs cfg for the test and restores the previous
// process-wide config afterwards (graphs built inside pick up cfg's
// build-time thresholds; pushes read the kernel selection live).
func withHotPath(t *testing.T, cfg graph.HotPathConfig) {
	t.Helper()
	prev := graph.HotPath()
	graph.SetHotPath(cfg)
	t.Cleanup(func() { graph.SetHotPath(prev) })
}

// TestPushBlockedWithinRMax holds the blocked inner kernel (the
// default on layout-carrying graphs) to the exact per-edge-division
// kernel: reciprocal multiplication perturbs contributions by ulps, so
// the two pushes are not bit-identical, but both must satisfy the
// TargetIndex invariant — estimates within 2·rmax of each other,
// residuals strictly below rmax in both.
func TestPushBlockedWithinRMax(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 5; trial++ {
		n := 60 + rng.Intn(150)
		g := randomGraph(t, n, n*5, rng.Int63(), trial%2 == 0)
		target := graph.NodeID(rng.Intn(n))
		const rmax = 1e-4

		withHotPath(t, graph.HotPathConfig{})
		blocked, err := ReversePush(context.Background(), g, target, 0.85, rmax)
		if err != nil {
			t.Fatal(err)
		}
		graph.SetHotPath(graph.HotPathConfig{PushBlock: -1})
		exact, err := ReversePush(context.Background(), g, target, 0.85, rmax)
		if err != nil {
			t.Fatal(err)
		}

		if blocked.MaxResidual >= rmax || exact.MaxResidual >= rmax {
			t.Fatalf("trial %d: max residuals %v / %v not below rmax", trial, blocked.MaxResidual, exact.MaxResidual)
		}
		for s := 0; s < n; s++ {
			d := blocked.Estimates.Get(graph.NodeID(s)) - exact.Estimates.Get(graph.NodeID(s))
			if d > 2*rmax || d < -2*rmax {
				t.Errorf("trial %d: estimate at node %d differs by %v (> 2·rmax)", trial, s, d)
			}
		}
	}
}

// TestPushBlockedStorageBitIdentical re-pins the storage equivalence
// on the blocked kernel: within one kernel the sequence of vector and
// queue operations is storage-independent, so dense, sparse and auto
// pushes stay bit-identical with blocking on.
func TestPushBlockedStorageBitIdentical(t *testing.T) {
	withHotPath(t, graph.HotPathConfig{})
	g := randomGraph(t, 300, 2100, 31, true)
	dense, err := ReversePushStored(context.Background(), g, 5, 0.85, 1e-4, StorageDense)
	if err != nil {
		t.Fatal(err)
	}
	for _, storage := range []Storage{StorageSparse, StorageAuto} {
		got, err := ReversePushStored(context.Background(), g, 5, 0.85, 1e-4, storage)
		if err != nil {
			t.Fatal(err)
		}
		if got.Pushes != dense.Pushes || got.MaxResidual != dense.MaxResidual {
			t.Fatalf("storage %d: pushes/maxres %d/%v, dense %d/%v",
				storage, got.Pushes, got.MaxResidual, dense.Pushes, dense.MaxResidual)
		}
		for s := 0; s < g.NumNodes(); s++ {
			v := graph.NodeID(s)
			if got.Estimates.Get(v) != dense.Estimates.Get(v) || got.Residuals.Get(v) != dense.Residuals.Get(v) {
				t.Fatalf("storage %d: node %d differs from dense push", storage, s)
			}
		}
	}
}

// TestPushCompressedBitIdentical pins the compressed-row push to the
// raw-row push exactly: DecodeRow yields the same ids in the same
// order as the raw remapped arrays and out-degrees come from the same
// table, so the two pushes perform identical float operations —
// estimates, residuals, push counts all bit-equal.
func TestPushCompressedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 4; trial++ {
		n := 80 + rng.Intn(120)
		seed := rng.Int63()
		target := graph.NodeID(rng.Intn(n))

		withHotPath(t, graph.HotPathConfig{})
		plain := randomGraph(t, n, n*5, seed, trial%2 == 0)
		if plain.Layout().CompressedIn() != nil {
			t.Fatal("tiny graph compressed under the default threshold")
		}
		graph.SetHotPath(graph.HotPathConfig{CompressBytes: 1})
		zipped := randomGraph(t, n, n*5, seed, trial%2 == 0)
		if zipped.Layout().CompressedIn() == nil {
			t.Fatal("forced threshold built no compressed view")
		}
		graph.SetHotPath(graph.HotPathConfig{})

		want, err := ReversePush(context.Background(), plain, target, 0.85, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReversePush(context.Background(), zipped, target, 0.85, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		if got.Pushes != want.Pushes || got.MaxResidual != want.MaxResidual {
			t.Fatalf("trial %d: pushes/maxres %d/%v compressed, %d/%v plain",
				trial, got.Pushes, got.MaxResidual, want.Pushes, want.MaxResidual)
		}
		for s := 0; s < n; s++ {
			v := graph.NodeID(s)
			if got.Estimates.Get(v) != want.Estimates.Get(v) || got.Residuals.Get(v) != want.Residuals.Get(v) {
				t.Fatalf("trial %d: node %d differs between compressed and plain push", trial, s)
			}
		}
	}
}

// TestPushCompressedAllocsFlat guards the pooled decode scratch: once
// the pool is warm, a push over the compressed view must allocate no
// more than the same push over raw rows plus pool bookkeeping — row
// decoding itself contributes nothing per row.
func TestPushCompressedAllocsFlat(t *testing.T) {
	withHotPath(t, graph.HotPathConfig{})
	plain := randomGraph(t, 400, 2800, 13, false)
	graph.SetHotPath(graph.HotPathConfig{CompressBytes: 1})
	zipped := randomGraph(t, 400, 2800, 13, false)
	graph.SetHotPath(graph.HotPathConfig{})
	if zipped.Layout().CompressedIn() == nil {
		t.Fatal("forced threshold built no compressed view")
	}

	run := func(g *graph.Graph) float64 {
		return testing.AllocsPerRun(20, func() {
			if _, err := ReversePushStored(context.Background(), g, 3, 0.85, 1e-4, StorageDense); err != nil {
				t.Fatal(err)
			}
		})
	}
	run(zipped) // warm the scratch pool
	rawAllocs, zipAllocs := run(plain), run(zipped)
	if zipAllocs > rawAllocs+8 {
		t.Errorf("compressed push allocates %v per run, raw %v; decode scratch is not pooled", zipAllocs, rawAllocs)
	}
}
