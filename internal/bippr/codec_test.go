package bippr

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// indexesEqual compares two indexes entry by entry, including the
// vector representation (the codec round-trips dense as dense and
// sparse as sparse).
func indexesEqual(t *testing.T, want, got *TargetIndex) {
	t.Helper()
	if got.Target != want.Target || got.Alpha != want.Alpha || got.RMax != want.RMax ||
		got.Pushes != want.Pushes || got.MaxResidual != want.MaxResidual {
		t.Fatalf("metadata mismatch:\nwant %+v\ngot  %+v", want, got)
	}
	for name, pair := range map[string][2]*Vector{
		"estimates": {want.Estimates, got.Estimates},
		"residuals": {want.Residuals, got.Residuals},
	} {
		w, g := pair[0], pair[1]
		if g.NumNodes() != w.NumNodes() {
			t.Fatalf("%s spans %d nodes, want %d", name, g.NumNodes(), w.NumNodes())
		}
		if g.IsSparse() != w.IsSparse() {
			t.Fatalf("%s representation changed: sparse=%v, want %v", name, g.IsSparse(), w.IsSparse())
		}
		for v := 0; v < w.NumNodes(); v++ {
			if g.Get(graph.NodeID(v)) != w.Get(graph.NodeID(v)) {
				t.Fatalf("%s[%d] = %v, want %v", name, v, g.Get(graph.NodeID(v)), w.Get(graph.NodeID(v)))
			}
		}
	}
}

// pushIndex builds a real index off a small random graph with the
// requested storage.
func pushIndex(t *testing.T, storage Storage) *TargetIndex {
	t.Helper()
	g := randomGraph(t, 60, 240, 7, true)
	idx, err := ReversePushStored(context.Background(), g, 3, 0.85, 1e-4, storage)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestCodecRoundTripDense(t *testing.T) {
	idx := pushIndex(t, StorageDense)
	data, err := EncodeIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	indexesEqual(t, idx, got)
}

func TestCodecRoundTripSparse(t *testing.T) {
	idx := pushIndex(t, StorageSparse)
	if !idx.Estimates.IsSparse() {
		t.Fatal("forced-sparse index is not sparse")
	}
	data, err := EncodeIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	indexesEqual(t, idx, got)
}

// TestCodecRoundTripServesIdenticalQueries is the semantic round-trip:
// a pair estimate computed from a decoded index is bit-identical to
// one from the original.
func TestCodecRoundTripServesIdenticalQueries(t *testing.T) {
	g := randomGraph(t, 60, 240, 7, true)
	idx, err := ReversePush(context.Background(), g, 3, 0.85, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Alpha: 0.85, RMax: 1e-4, Walks: 500, Seed: 1}.withDefaults()
	orig, err := pairFromIndex(context.Background(), g, 11, idx, p)
	if err != nil {
		t.Fatal(err)
	}
	fromDisk, err := pairFromIndex(context.Background(), g, 11, decoded, p)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Value != fromDisk.Value {
		t.Fatalf("decoded index served %v, original %v", fromDisk.Value, orig.Value)
	}
}

func TestCodecVersionMismatch(t *testing.T) {
	data, err := EncodeIndex(pushIndex(t, StorageAuto))
	if err != nil {
		t.Fatal(err)
	}
	// Bump the version field (offset 4, after the magic) and re-seal
	// the checksum so only the version is wrong.
	binary.LittleEndian.PutUint16(data[4:], indexCodecVersion+1)
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
	if _, err := DecodeIndex(data); !errors.Is(err, ErrIndexVersion) {
		t.Fatalf("decoding future-version artifact: got %v, want ErrIndexVersion", err)
	}
}

func TestCodecTruncation(t *testing.T) {
	data, err := EncodeIndex(pushIndex(t, StorageAuto))
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail loudly (never decode garbage); the
	// store then treats it as a miss and recomputes.
	for _, cut := range []int{0, 3, 5, 6, 20, len(data) / 2, len(data) - 1} {
		if _, err := DecodeIndex(data[:cut]); err == nil {
			t.Fatalf("decoding %d/%d-byte truncation succeeded", cut, len(data))
		}
	}
}

func TestCodecBitFlipDetected(t *testing.T) {
	data, err := EncodeIndex(pushIndex(t, StorageAuto))
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{6, 10, len(data) / 2, len(data) - 5} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if _, err := DecodeIndex(bad); !errors.Is(err, ErrIndexCorrupt) && !errors.Is(err, ErrIndexVersion) {
			t.Fatalf("bit flip at %d: got %v, want corruption error", off, err)
		}
	}
}

func TestCodecSizedDecode(t *testing.T) {
	idx := pushIndex(t, StorageAuto)
	data, err := EncodeIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	n := idx.Estimates.NumNodes()
	if _, err := DecodeIndexSized(data, n); err != nil {
		t.Fatalf("matching size rejected: %v", err)
	}
	// A size mismatch must be rejected up front — before the decoder
	// would allocate vectors sized by the (possibly forged) header.
	if _, err := DecodeIndexSized(data, n+1); !errors.Is(err, ErrIndexCorrupt) {
		t.Fatalf("size mismatch: got %v, want ErrIndexCorrupt", err)
	}

	// A CRC-valid artifact whose header claims a huge node count must
	// fail the sized decode without a giant allocation. The nodes
	// field sits at offset 42: magic(4) + version(2) + target(4) +
	// alpha(8) + rmax(8) + pushes(8) + maxResidual(8).
	forged := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(forged[42:], 1<<30)
	binary.LittleEndian.PutUint32(forged[len(forged)-4:], crc32.ChecksumIEEE(forged[:len(forged)-4]))
	if _, err := DecodeIndexSized(forged, n); !errors.Is(err, ErrIndexCorrupt) {
		t.Fatalf("forged node count: got %v, want ErrIndexCorrupt", err)
	}
}

func TestCodecEntryCountExceedingBuffer(t *testing.T) {
	// A large ring pushed sparsely: huge n, tiny touched set, so a
	// forged entry count can be far below n yet far beyond the bytes
	// the artifact actually holds.
	const n = 100_000
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%n))
	}
	ring, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ReversePushStored(context.Background(), ring, 0, 0.85, 1e-4, StorageSparse)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	// Inflate the estimates vector's entry count — at offset 51, after
	// the 50-byte header and the repr byte — and re-seal the CRC: the
	// decoder must reject the claim before sizing allocations by it.
	forged := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(forged[51:], n/2)
	binary.LittleEndian.PutUint32(forged[len(forged)-4:], crc32.ChecksumIEEE(forged[:len(forged)-4]))
	if _, err := DecodeIndex(forged); !errors.Is(err, ErrIndexCorrupt) {
		t.Fatalf("inflated entry count: got %v, want ErrIndexCorrupt", err)
	}
}

func TestCodecRejectsBadMagic(t *testing.T) {
	if _, err := DecodeIndex([]byte("JSON{not an index}")); !errors.Is(err, ErrIndexCorrupt) {
		t.Fatalf("got %v, want ErrIndexCorrupt", err)
	}
	if _, err := DecodeIndex(nil); !errors.Is(err, ErrIndexCorrupt) {
		t.Fatalf("nil input: got %v, want ErrIndexCorrupt", err)
	}
}
