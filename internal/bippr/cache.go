package bippr

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// indexKey identifies one target index. The graph pointer stands in
// for the dataset name: the scheduler caches one immutable *Graph per
// dataset, so pointer identity tracks dataset identity — and a
// re-uploaded dataset arrives as a new pointer, naturally invalidating
// every entry of the old graph (they age out of the LRU).
type indexKey struct {
	g      *graph.Graph
	target graph.NodeID
	alpha  float64
	rmax   float64
}

// indexCache is a concurrency-safe LRU of target indexes with
// single-flight computation: concurrent misses for the same key share
// one reverse push instead of each paying for it. It is the memory
// tier of every IndexStore; the TieredStore layers disk persistence
// inside its single-flight slot (see store.go).
type indexCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[indexKey]*list.Element
	inflight map[indexKey]*inflightCall

	hits, misses int64
}

type cacheEntry struct {
	key indexKey
	idx *TargetIndex
}

// inflightCall is one in-progress computation; waiters block on done.
type inflightCall struct {
	done chan struct{}
	idx  *TargetIndex
	err  error
}

func newIndexCache(capacity int) *indexCache {
	return &indexCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[indexKey]*list.Element, capacity),
		inflight: make(map[indexKey]*inflightCall),
	}
}

// getOrCompute returns the cached index for key, or runs compute to
// produce it. cached is true when the caller did not pay for the
// computation itself — an LRU hit or a ride on another caller's
// in-flight push. Waiters honor their own ctx while blocked, and a
// waiter whose computing peer fails (e.g. the peer's context was
// cancelled) retries the computation itself rather than inheriting
// the peer's error.
func (c *indexCache) getOrCompute(ctx context.Context, key indexKey, compute func() (*TargetIndex, error)) (idx *TargetIndex, cached bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.hits++
			c.order.MoveToFront(el)
			c.mu.Unlock()
			return el.Value.(*cacheEntry).idx, true, nil
		}
		if call, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, false, fmt.Errorf("bippr: waiting for shared reverse push: %w", ctx.Err())
			}
			if call.err == nil {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
				return call.idx, true, nil
			}
			continue // peer failed; try computing ourselves
		}
		c.misses++
		call := &inflightCall{done: make(chan struct{})}
		c.inflight[key] = call
		c.mu.Unlock()

		call.idx, call.err = compute()
		// Retire the inflight entry and publish the result in one
		// critical section, so no concurrent caller can observe the
		// key as neither cached nor inflight and start a duplicate
		// push.
		c.mu.Lock()
		delete(c.inflight, key)
		if call.err == nil {
			c.putLocked(key, call.idx)
		}
		c.mu.Unlock()
		close(call.done)
		return call.idx, false, call.err
	}
}

// putLocked inserts an index, evicting the least-recently-used entry
// when over capacity. Re-inserting an existing key refreshes its
// value. The caller must hold c.mu.
func (c *indexCache) putLocked(key indexKey, idx *TargetIndex) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).idx = idx
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, idx: idx})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// stats returns hit/miss counters and the current entry count.
func (c *indexCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
