package bippr

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/obs"
)

// walkChunk is the number of walks one RNG stream covers. Walks are
// partitioned into fixed chunks so that a worker pool can claim chunks
// independently while the final estimate stays bit-identical to the
// serial path: chunk c of source s always uses the RNG derived from
// (seed, s, c) and partial sums are always reduced in chunk order,
// regardless of how many workers ran them or in what order they
// finished. 128 walks amortize the RNG construction without starving a
// pool of schedulable units at typical walk counts.
const walkChunk = 128

// WalkEstimator simulates damped forward random walks over the
// graph's out-CSR. Endpoints are distributed according to π(source,·)
// under the package's dangling convention (see the package comment),
// which is exactly the sampling distribution the bidirectional
// estimator needs for its correction term Σ_v π(s,v)·r_t(v).
//
// Walks are seeded deterministically per (source, chunk): two
// estimators built with the same seed produce identical estimates for
// the same source regardless of query order or worker count, making
// results reproducible under concurrent server traffic and across
// machine sizes.
type WalkEstimator struct {
	g        *graph.Graph
	alpha    float64
	seed     int64
	maxSteps int
}

// NewWalkEstimator builds a walk estimator with damping alpha,
// base RNG seed and per-walk step cap (0 selects DefaultMaxSteps).
func NewWalkEstimator(g *graph.Graph, alpha float64, seed int64, maxSteps int) *WalkEstimator {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	return &WalkEstimator{g: g, alpha: alpha, seed: seed, maxSteps: maxSteps}
}

// chunkRNG derives the deterministic RNG of one walk chunk.
// SplitMix-style mixing keeps nearby (seed, source, chunk) triples
// uncorrelated; the chunk index extends the original per-source
// seeding so shards draw from disjoint, reproducible streams.
func (w *WalkEstimator) chunkRNG(source graph.NodeID, chunk int) *rand.Rand {
	x := uint64(w.seed)*0x9e3779b97f4a7c15 +
		uint64(uint32(source))*0xbf58476d1ce4e5b9 +
		uint64(chunk)*0x2545f4914f6cdd1d
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return rand.New(rand.NewSource(int64(x)))
}

// endpoint simulates one walk from source. ok is false when the walk
// was absorbed by a dangling node before stopping; such walks carry
// no endpoint mass.
func (w *WalkEstimator) endpoint(rng *rand.Rand, source graph.NodeID) (end graph.NodeID, ok bool) {
	v := source
	for step := 0; step < w.maxSteps; step++ {
		if rng.Float64() >= w.alpha {
			return v, true // stop here
		}
		out := w.g.Out(v)
		if len(out) == 0 {
			return v, false // absorbed
		}
		v = out[rng.Intn(len(out))]
	}
	// Truncation: treat the surviving walk as stopping at its current
	// node; at default parameters this biases by < 1e-7.
	return v, true
}

// endpointScratch is one worker's reusable buffers for summarizing a
// chunk: the raw endpoint list and its run-length-encoded counts.
// Reusing them across a worker's chunks keeps the fresh-walk hot path
// (reuse off, the default) free of per-chunk allocations.
type endpointScratch struct {
	ends   []graph.NodeID
	counts []EndpointCount
}

// chunkEndpointsInto simulates the walks of one chunk and returns its
// endpoint counts, sorted by node id, built in sc's reusable buffers —
// the result is only valid until the next call with the same scratch
// (recording callers must clone it). Absorbed walks carry no endpoint
// and do not appear. The sorted-count form is the chunk's canonical
// summary: both the fresh-walk path and the endpoint-reuse path fold
// it with weighChunk, so a recorded chunk re-weighted for a new
// target performs float operations identical to re-walking.
func (w *WalkEstimator) chunkEndpointsInto(sc *endpointScratch, source graph.NodeID, chunk, count int) []EndpointCount {
	rng := w.chunkRNG(source, chunk)
	ends := sc.ends[:0]
	for i := 0; i < count; i++ {
		if end, ok := w.endpoint(rng, source); ok {
			ends = append(ends, end)
		}
	}
	slices.Sort(ends)
	out := sc.counts[:0]
	for _, e := range ends {
		if n := len(out); n > 0 && out[n-1].Node == e {
			out[n-1].Count++
		} else {
			out = append(out, EndpointCount{Node: e, Count: 1})
		}
	}
	sc.ends, sc.counts = ends, out
	return out
}

// weighChunk folds one chunk's sorted endpoint counts with a weight
// vector: Σ count·weight(node), accumulated in ascending node order.
// Every consumer of a chunk — fresh walks, recorded endpoints — sums
// through this one function, which is what makes re-weighted estimates
// bit-identical to fresh-walk estimates.
func weighChunk(endpoints []EndpointCount, weight *Vector) float64 {
	var sum float64
	for _, e := range endpoints {
		sum += float64(e.Count) * weight.Get(e.Node)
	}
	return sum
}

// chunkSum runs the walks of one chunk and returns Σ count·weight over
// its endpoints.
func (w *WalkEstimator) chunkSum(sc *endpointScratch, source graph.NodeID, chunk, count int, weight *Vector) float64 {
	return weighChunk(w.chunkEndpointsInto(sc, source, chunk, count), weight)
}

// numChunks returns how many walkChunk-sized chunks cover walks.
func numChunks(walks int) int {
	return (walks + walkChunk - 1) / walkChunk
}

// chunkCount returns how many walks chunk c of walks carries (the
// last chunk may be short).
func chunkCount(walks, c int) int {
	if c == numChunks(walks)-1 {
		if rem := walks - c*walkChunk; rem > 0 {
			return rem
		}
	}
	return walkChunk
}

// clampWorkers bounds a requested pool size: at least 1, at most
// GOMAXPROCS (more would only contend), at most one worker per chunk.
func clampWorkers(workers, chunks int) int {
	if workers < 1 {
		workers = 1
	}
	if procs := runtime.GOMAXPROCS(0); workers > procs {
		workers = procs
	}
	if workers > chunks {
		workers = chunks
	}
	return workers
}

// EffectiveWorkers reports the pool size a pair query with the given
// requested workers and walk count actually runs — the clamp applied
// inside EstimateSum — so reporting layers (crbench's sharding
// ablation) can label measurements with what executed rather than
// what was asked for.
func EffectiveWorkers(workers, walks int) int {
	if walks <= 0 {
		return 1
	}
	return clampWorkers(workers, numChunks(walks))
}

// EstimateSum returns (1/walks)·Σ weight(endpoint) over walks damped
// forward walks from source — an unbiased estimate of
// Σ_v π(source,v)·weight(v) up to step truncation. weight must span
// the graph's nodes.
//
// workers sizes the walk worker pool; values below 1 select the
// serial path and the pool is bounded by GOMAXPROCS. The estimate is
// bit-identical for every worker count: walks are partitioned into
// deterministically seeded chunks (see walkChunk) whose partial sums
// are reduced in chunk order no matter which worker produced them.
func (w *WalkEstimator) EstimateSum(ctx context.Context, source graph.NodeID, walks int, weight *Vector, workers int) (float64, error) {
	ctx, err := w.validateWalkArgs(ctx, source, walks)
	if err != nil {
		return 0, err
	}
	if weight.NumNodes() != w.g.NumNodes() {
		return 0, fmt.Errorf("bippr: weight vector spans %d nodes, graph has %d", weight.NumNodes(), w.g.NumNodes())
	}

	chunks := numChunks(walks)
	workers = clampWorkers(workers, chunks)

	// Instrumentation at the pass boundary only: one span and a few
	// counter adds per pass, nothing inside the per-walk loop.
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "walks")
	span.SetMetric("walks", float64(walks))
	span.SetMetric("chunks", float64(chunks))
	span.SetMetric("workers", float64(workers))
	defer span.End()

	partial := make([]float64, chunks)
	scratch := make([]endpointScratch, workers)
	err = forEachChunk(ctx, chunks, workers, func(worker, c int) {
		partial[c] = w.chunkSum(&scratch[worker], source, c, chunkCount(walks, c), weight)
	})
	if err != nil {
		return 0, err
	}
	observeWalkPass(start, walks, chunks)

	// Deterministic reduction: chunk order, independent of workers.
	var sum float64
	for _, p := range partial {
		sum += p
	}
	return sum / float64(walks), nil
}

// Endpoints simulates walks forward walks from source and records
// their endpoints as per-chunk sorted counts — the reusable half of a
// pair query. The returned set depends only on (graph, alpha, seed,
// maxSteps, source, walks): re-weighting it for any target index
// yields estimates bit-identical to fresh walks (EndpointSet.
// EstimateSum folds chunks exactly like EstimateSum does). workers
// shards the recording like EstimateSum; the recorded set is
// identical for every pool size.
func (w *WalkEstimator) Endpoints(ctx context.Context, source graph.NodeID, walks, workers int) (*EndpointSet, error) {
	ctx, err := w.validateWalkArgs(ctx, source, walks)
	if err != nil {
		return nil, err
	}

	chunks := numChunks(walks)
	workers = clampWorkers(workers, chunks)

	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "walk_record")
	span.SetMetric("walks", float64(walks))
	span.SetMetric("chunks", float64(chunks))
	span.SetMetric("workers", float64(workers))
	defer span.End()

	set := &EndpointSet{Walks: walks, chunks: make([][]EndpointCount, chunks)}
	scratch := make([]endpointScratch, workers)
	err = forEachChunk(ctx, chunks, workers, func(worker, c int) {
		// The recorded set outlives the pass; clone out of the scratch.
		set.chunks[c] = slices.Clone(w.chunkEndpointsInto(&scratch[worker], source, c, chunkCount(walks, c)))
	})
	if err != nil {
		return nil, err
	}
	observeWalkPass(start, walks, chunks)
	if m := metrics.Load(); m != nil {
		m.walksRecorded.Add(int64(walks))
	}
	return set, nil
}

// observeWalkPass records one completed walk pass in the package
// counters.
func observeWalkPass(start time.Time, walks, chunks int) {
	m := metrics.Load()
	if m == nil {
		return
	}
	m.walkPasses.Inc()
	m.walks.Add(int64(walks))
	m.walkChunks.Add(int64(chunks))
	m.walkSeconds.ObserveSince(start)
}

// validateWalkArgs is the shared guard of every walk pass — fresh
// (EstimateSum) and recording (Endpoints) alike, so the two paths of
// the bit-identity contract cannot drift on what they accept.
func (w *WalkEstimator) validateWalkArgs(ctx context.Context, source graph.NodeID, walks int) (context.Context, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if walks <= 0 {
		return ctx, fmt.Errorf("bippr: walks=%d must be positive", walks)
	}
	if walks > MaxWalks {
		return ctx, fmt.Errorf("bippr: walks=%d exceeds the cap %d", walks, MaxWalks)
	}
	if !w.g.ValidNode(source) {
		return ctx, fmt.Errorf("bippr: walk source %d not in graph (N=%d)", source, w.g.NumNodes())
	}
	return ctx, nil
}

// forEachChunk runs fn for every chunk index in [0, chunks) — serially
// when the (already clamped) pool is one worker, otherwise across a
// pool that claims indices from a shared counter. fn receives its
// worker's index in [0, workers) for per-worker scratch, and each
// chunk index is processed by exactly one worker, so fn may write its
// slot without locking. The walk paths (EstimateSum, Endpoints) share
// this scaffolding so the cancellation and claiming semantics cannot
// drift between them.
func forEachChunk(ctx context.Context, chunks, workers int, fn func(worker, c int)) error {
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			select {
			case <-ctx.Done():
				return fmt.Errorf("bippr: walks cancelled: %w", ctx.Err())
			default:
			}
			fn(0, c)
		}
		return nil
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		cancelled atomic.Bool
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				select {
				case <-ctx.Done():
					cancelled.Store(true)
					return
				default:
				}
				fn(worker, c)
			}
		}(i)
	}
	wg.Wait()
	if cancelled.Load() {
		return fmt.Errorf("bippr: walks cancelled: %w", ctx.Err())
	}
	return nil
}

// Distribution estimates the endpoint distribution π(source,·) from
// walks samples — a testing and diagnostics aid; pair queries use
// EstimateSum directly. It draws from the same chunked RNG streams as
// EstimateSum but always runs serially: parallel merging of the
// per-node histogram would make the float accumulation order (and so
// the low bits) depend on the worker count.
func (w *WalkEstimator) Distribution(ctx context.Context, source graph.NodeID, walks int) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if walks <= 0 {
		return nil, fmt.Errorf("bippr: walks=%d must be positive", walks)
	}
	if walks > MaxWalks {
		return nil, fmt.Errorf("bippr: walks=%d exceeds the cap %d", walks, MaxWalks)
	}
	if !w.g.ValidNode(source) {
		return nil, fmt.Errorf("bippr: walk source %d not in graph (N=%d)", source, w.g.NumNodes())
	}
	dist := make([]float64, w.g.NumNodes())
	inc := 1 / float64(walks)
	for c := 0; c < numChunks(walks); c++ {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("bippr: walks cancelled: %w", ctx.Err())
		default:
		}
		rng := w.chunkRNG(source, c)
		for i := 0; i < chunkCount(walks, c); i++ {
			if end, ok := w.endpoint(rng, source); ok {
				dist[end] += inc
			}
		}
	}
	return dist, nil
}
