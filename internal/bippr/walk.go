package bippr

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/obs"
)

// walkChunk is the number of walks one deterministic unit of work
// covers. Walks are partitioned into fixed chunks so that a worker
// pool can claim chunks independently while the final estimate stays
// bit-identical to the serial path: walk j of chunk c of source s
// always draws from the substream derived from (seed, s, c·128+j) and
// partial sums are always reduced in chunk order, regardless of how
// many workers ran them or in what order they finished. 128 walks
// form a cohort large enough for the batched stepper to amortize CSR
// row loads without starving a pool of schedulable units at typical
// walk counts.
const walkChunk = 128

// WalkEstimator simulates damped forward random walks over the
// graph's out-CSR. Endpoints are distributed according to π(source,·)
// under the package's dangling convention (see the package comment),
// which is exactly the sampling distribution the bidirectional
// estimator needs for its correction term Σ_v π(s,v)·r_t(v).
//
// Walks are seeded deterministically per (source, chunk, walk): two
// estimators built with the same seed produce identical estimates for
// the same source regardless of query order, worker count or stepping
// mode, making results reproducible under concurrent server traffic
// and across machine sizes.
type WalkEstimator struct {
	g        *graph.Graph
	alpha    float64
	seed     int64
	maxSteps int
	// serial selects the per-walk reference stepper instead of the
	// default batched cohort stepper. The two are bit-identical by
	// construction (per-walk RNG substreams, see walkRNG); the flag
	// exists for the equivalence property tests and the walk-batch
	// ablation baseline.
	serial bool
	// sortCohort enables the batched stepper's per-level sort of the
	// live cohort. Sorting buys row-load sharing only when CSR rows
	// actually miss cache; on a cache-resident graph it is pure
	// overhead, so it is switched off below the configured
	// graph.HotPathConfig.CohortSortBytes threshold. Either setting
	// produces bit-identical estimates — every walk draws from its
	// private substream and endpoint accumulation is order-independent
	// — so this is a pure bandwidth knob.
	sortCohort bool
	// table is the graph's packed (rowStart, degree) stepping table.
	// When present the batched stepper advances each walk through one
	// 8-byte load per step instead of materializing CSR row slices;
	// nil (overflowing graphs, or the walk-sample-table ablation
	// baseline via SetSampleTable) falls back to slice stepping. The
	// table indexes the same adjacency array in the same order, so
	// both modes consume identical RNG draws and pick identical nodes
	// — bit-identity, not approximation.
	table *graph.SampleTable
}

// NewWalkEstimator builds a walk estimator with damping alpha,
// base RNG seed and per-walk step cap (0 selects DefaultMaxSteps).
func NewWalkEstimator(g *graph.Graph, alpha float64, seed int64, maxSteps int) *WalkEstimator {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	return &WalkEstimator{
		g: g, alpha: alpha, seed: seed, maxSteps: maxSteps,
		sortCohort: graph.HotPath().SortCohort(g.MemoryFootprint()),
		table:      g.SampleTable(),
	}
}

// SetBatchStepping selects between the batched cohort stepper (the
// default) and the serial per-walk stepper. Both consume identical
// RNG draws — draw i of walk j is a pure function of (seed, source,
// walk index) — so estimates and recorded endpoints are bit-identical
// either way; the toggle exists so tests can prove exactly that and
// so the walk-batch ablation can time the difference.
func (w *WalkEstimator) SetBatchStepping(enabled bool) { w.serial = !enabled }

// SetSampleTable attaches or detaches the packed stepping table on the
// batched stepper. Estimates are bit-identical either way (the table
// reads the same adjacency entries the slices hold); the toggle exists
// so the bit-identity tests can prove it and so the walk-sample-table
// ablation can replay the slice-stepping baseline on the same graph.
func (w *WalkEstimator) SetSampleTable(enabled bool) {
	if enabled {
		w.table = w.g.SampleTable()
	} else {
		w.table = nil
	}
}

// SetCohortSort overrides the footprint heuristic for the batched
// stepper's per-level cohort sort — a pure bandwidth knob, exposed for
// tests and ablations; estimates are bit-identical in both settings.
func (w *WalkEstimator) SetCohortSort(enabled bool) { w.sortCohort = enabled }

// walkEndpoint simulates one walk from source on its own substream.
// ok is false when the walk was absorbed by a dangling node before
// stopping; such walks carry no endpoint mass.
func (w *WalkEstimator) walkEndpoint(rng *walkRNG, source graph.NodeID) (end graph.NodeID, ok bool) {
	v := source
	for step := 0; step < w.maxSteps; step++ {
		if rng.float64() >= w.alpha {
			return v, true // stop here
		}
		out := w.g.Out(v)
		if len(out) == 0 {
			return v, false // absorbed
		}
		v = out[rng.intn(len(out))]
	}
	// Truncation: treat the surviving walk as stopping at its current
	// node; at default parameters this biases by < 1e-7.
	return v, true
}

// walkKeyBits positions a walk's current node in the high bits of its
// packed cohort key, with the walk's index within the chunk in the
// low bits: sorting the plain []uint64 keys groups same-node walks
// (ties broken by walk index) with a branch-free primitive sort — no
// comparison closure, no struct moves. The static assert below keeps
// the index field wide enough for walkChunk.
const (
	walkKeyBits = 7
	walkKeyMask = 1<<walkKeyBits - 1
)

var _ = [1]struct{}{}[(walkChunk-1)>>walkKeyBits] // walkChunk must fit walkKeyBits

// walkScratch is one worker's reusable buffers for a chunk: the raw
// endpoint list, its run-length-encoded counts, and the batched
// stepper's cohort (per-walk RNG streams plus the packed node|index
// keys of the live walks). Buffers live in walkScratchPool across
// passes, so the steady-state walk path allocates nothing per chunk
// or per pass.
type walkScratch struct {
	ends   []graph.NodeID
	counts []EndpointCount
	rngs   []walkRNG
	keys   []uint64
}

// walkScratchPool pools walkScratch per worker across walk passes —
// a pass borrows one scratch per worker and returns it at the end.
var walkScratchPool = sync.Pool{New: func() any { return new(walkScratch) }}

// borrowScratch takes n pooled scratches (one per worker).
func borrowScratch(n int) []*walkScratch {
	sc := make([]*walkScratch, n)
	for i := range sc {
		sc[i] = walkScratchPool.Get().(*walkScratch)
	}
	return sc
}

// returnScratch gives the borrowed scratches back to the pool.
func returnScratch(sc []*walkScratch) {
	for _, s := range sc {
		walkScratchPool.Put(s)
	}
}

// appendEndpointsSerial walks the chunk one walk at a time — the
// reference stepper: the straightforward consumption order of the
// per-walk substreams. Absorbed walks append nothing.
func (w *WalkEstimator) appendEndpointsSerial(ends []graph.NodeID, source graph.NodeID, chunk, count int) []graph.NodeID {
	base := uint64(chunk) * walkChunk
	for i := 0; i < count; i++ {
		rng := newWalkRNG(w.seed, source, base+uint64(i))
		if end, ok := w.walkEndpoint(&rng, source); ok {
			ends = append(ends, end)
		}
	}
	return ends
}

// appendEndpointsBatched advances the whole chunk as a
// struct-of-arrays cohort, level-synchronously: at each step the live
// walks are sorted by current node (when the graph outgrows the
// configured cohort-sort threshold), so one adjacency row load serves
// every walk sitting on that node — the cache-miss-per-hop of the
// serial stepper becomes a miss per *distinct* node per level, and
// early levels (all walks still near the source) are nearly free.
// When the graph carries a SampleTable the per-walk advance is O(1):
// one packed 8-byte load replaces the two CSR offset reads and the
// row slice construction.
//
// Equivalence to the serial stepper is exact, not statistical: walk
// j's k-th draw comes from its private substream in both steppers
// (stop test first, then the out-edge pick — walkEndpoint's order),
// reordering walks within a level touches no stream, and the endpoint
// list is sorted before run-length encoding so its accumulation order
// never depends on cohort order. TestBatchedSteppingBitIdentical
// holds the two steppers to bit-equality.
func (w *WalkEstimator) appendEndpointsBatched(ends []graph.NodeID, sc *walkScratch, source graph.NodeID, chunk, count int) []graph.NodeID {
	rngs := sc.rngs[:0]
	live := sc.keys[:0]
	base := uint64(chunk) * walkChunk
	for i := 0; i < count; i++ {
		rngs = append(rngs, newWalkRNG(w.seed, source, base+uint64(i)))
		live = append(live, uint64(uint32(source))<<walkKeyBits|uint64(i))
	}
	sc.rngs, sc.keys = rngs, live

	tab := w.table
	for step := 0; step < w.maxSteps && len(live) > 0; step++ {
		if step > 0 && w.sortCohort {
			// Group same-node walks; step 0 is all-at-source already.
			slices.Sort(live)
		}
		kept := live[:0]
		if tab != nil {
			// O(1) stepping: one packed-word load gives degree and row
			// start; no CSR offset reads, no row slice headers. The
			// table indexes the same outAdj array the slice path reads,
			// so draw-for-draw the chosen nodes are identical.
			for _, key := range live {
				node := graph.NodeID(key >> walkKeyBits)
				rng := &rngs[key&walkKeyMask]
				if rng.float64() >= w.alpha {
					ends = append(ends, node) // stopped here
					continue
				}
				deg := tab.Degree(node)
				if deg == 0 {
					continue // absorbed: no endpoint mass
				}
				next := tab.Pick(node, rng.intn(deg))
				kept = append(kept, uint64(uint32(next))<<walkKeyBits|key&walkKeyMask)
			}
			live = kept
			continue
		}
		var row []graph.NodeID
		rowNode := graph.NodeID(-1)
		for _, key := range live {
			node := graph.NodeID(key >> walkKeyBits)
			rng := &rngs[key&walkKeyMask]
			if rng.float64() >= w.alpha {
				ends = append(ends, node) // stopped here
				continue
			}
			if node != rowNode {
				rowNode = node
				row = w.g.Out(rowNode)
			}
			if len(row) == 0 {
				continue // absorbed: no endpoint mass
			}
			next := row[rng.intn(len(row))]
			kept = append(kept, uint64(uint32(next))<<walkKeyBits|key&walkKeyMask)
		}
		live = kept
	}
	// Truncation: surviving walks stop at their current node.
	for _, key := range live {
		ends = append(ends, graph.NodeID(key>>walkKeyBits))
	}
	return ends
}

// chunkEndpointsInto simulates the walks of one chunk and returns its
// endpoint counts, sorted by node id, built in sc's reusable buffers —
// the result is only valid until the next call with the same scratch
// (recording callers must clone it). Absorbed walks carry no endpoint
// and do not appear. The sorted-count form is the chunk's canonical
// summary: both the fresh-walk path and the endpoint-reuse path fold
// it with weighChunk, so a recorded chunk re-weighted for a new
// target performs float operations identical to re-walking.
func (w *WalkEstimator) chunkEndpointsInto(sc *walkScratch, source graph.NodeID, chunk, count int) []EndpointCount {
	ends := sc.ends[:0]
	if w.serial {
		ends = w.appendEndpointsSerial(ends, source, chunk, count)
	} else {
		ends = w.appendEndpointsBatched(ends, sc, source, chunk, count)
	}
	slices.Sort(ends)
	out := sc.counts[:0]
	for _, e := range ends {
		if n := len(out); n > 0 && out[n-1].Node == e {
			out[n-1].Count++
		} else {
			out = append(out, EndpointCount{Node: e, Count: 1})
		}
	}
	sc.ends, sc.counts = ends, out
	return out
}

// weighChunk folds one chunk's sorted endpoint counts with a weight
// vector: Σ count·weight(node), accumulated in ascending node order.
// Every consumer of a chunk — fresh walks, recorded endpoints — sums
// through this one function, which is what makes re-weighted estimates
// bit-identical to fresh-walk estimates.
func weighChunk(endpoints []EndpointCount, weight *Vector) float64 {
	var sum float64
	for _, e := range endpoints {
		sum += float64(e.Count) * weight.Get(e.Node)
	}
	return sum
}

// chunkSum runs the walks of one chunk and returns Σ count·weight over
// its endpoints.
func (w *WalkEstimator) chunkSum(sc *walkScratch, source graph.NodeID, chunk, count int, weight *Vector) float64 {
	return weighChunk(w.chunkEndpointsInto(sc, source, chunk, count), weight)
}

// numChunks returns how many walkChunk-sized chunks cover walks.
func numChunks(walks int) int {
	return (walks + walkChunk - 1) / walkChunk
}

// chunkCount returns how many walks chunk c of walks carries (the
// last chunk may be short).
func chunkCount(walks, c int) int {
	if c == numChunks(walks)-1 {
		if rem := walks - c*walkChunk; rem > 0 {
			return rem
		}
	}
	return walkChunk
}

// clampWorkers bounds a requested pool size: at least 1, at most
// GOMAXPROCS (more would only contend), at most one worker per chunk.
func clampWorkers(workers, chunks int) int {
	if workers < 1 {
		workers = 1
	}
	if procs := runtime.GOMAXPROCS(0); workers > procs {
		workers = procs
	}
	if workers > chunks {
		workers = chunks
	}
	return workers
}

// EffectiveWorkers reports the pool size a pair query with the given
// requested workers and walk count actually runs — the clamp applied
// inside EstimateSum — so reporting layers (crbench's sharding
// ablation) can label measurements with what executed rather than
// what was asked for.
func EffectiveWorkers(workers, walks int) int {
	if walks <= 0 {
		return 1
	}
	return clampWorkers(workers, numChunks(walks))
}

// EstimateSum returns (1/walks)·Σ weight(endpoint) over walks damped
// forward walks from source — an unbiased estimate of
// Σ_v π(source,v)·weight(v) up to step truncation. weight must span
// the graph's nodes.
//
// workers sizes the walk worker pool; values below 1 select the
// serial path and the pool is bounded by GOMAXPROCS. The estimate is
// bit-identical for every worker count: walks are partitioned into
// deterministically seeded chunks (see walkChunk) whose partial sums
// are reduced in chunk order no matter which worker produced them.
func (w *WalkEstimator) EstimateSum(ctx context.Context, source graph.NodeID, walks int, weight *Vector, workers int) (float64, error) {
	ctx, err := w.validateWalkArgs(ctx, source, walks)
	if err != nil {
		return 0, err
	}
	if weight.NumNodes() != w.g.NumNodes() {
		return 0, fmt.Errorf("bippr: weight vector spans %d nodes, graph has %d", weight.NumNodes(), w.g.NumNodes())
	}

	chunks := numChunks(walks)
	workers = clampWorkers(workers, chunks)

	// Instrumentation at the pass boundary only: one span and a few
	// counter adds per pass, nothing inside the per-walk loop.
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "walks")
	span.SetMetric("walks", float64(walks))
	span.SetMetric("chunks", float64(chunks))
	span.SetMetric("workers", float64(workers))
	defer span.End()

	partial := make([]float64, chunks)
	scratch := borrowScratch(workers)
	err = forEachChunk(ctx, chunks, workers, func(worker, c int) {
		partial[c] = w.chunkSum(scratch[worker], source, c, chunkCount(walks, c), weight)
	})
	returnScratch(scratch)
	if err != nil {
		return 0, err
	}
	observeWalkPass(start, walks, chunks)

	// Deterministic reduction: chunk order, independent of workers.
	var sum float64
	for _, p := range partial {
		sum += p
	}
	return sum / float64(walks), nil
}

// Endpoints simulates walks forward walks from source and records
// their endpoints as per-chunk sorted counts — the reusable half of a
// pair query. The returned set depends only on (graph, alpha, seed,
// maxSteps, source, walks): re-weighting it for any target index
// yields estimates bit-identical to fresh walks (EndpointSet.
// EstimateSum folds chunks exactly like EstimateSum does). workers
// shards the recording like EstimateSum; the recorded set is
// identical for every pool size.
func (w *WalkEstimator) Endpoints(ctx context.Context, source graph.NodeID, walks, workers int) (*EndpointSet, error) {
	ctx, err := w.validateWalkArgs(ctx, source, walks)
	if err != nil {
		return nil, err
	}

	chunks := numChunks(walks)
	workers = clampWorkers(workers, chunks)

	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "walk_record")
	span.SetMetric("walks", float64(walks))
	span.SetMetric("chunks", float64(chunks))
	span.SetMetric("workers", float64(workers))
	defer span.End()

	set := &EndpointSet{Walks: walks, chunks: make([][]EndpointCount, chunks)}
	scratch := borrowScratch(workers)
	err = forEachChunk(ctx, chunks, workers, func(worker, c int) {
		// The recorded set outlives the pass; clone out of the scratch.
		set.chunks[c] = slices.Clone(w.chunkEndpointsInto(scratch[worker], source, c, chunkCount(walks, c)))
	})
	returnScratch(scratch)
	if err != nil {
		return nil, err
	}
	observeWalkPass(start, walks, chunks)
	if m := metrics.Load(); m != nil {
		m.walksRecorded.Add(int64(walks))
	}
	return set, nil
}

// observeWalkPass records one completed walk pass in the package
// counters.
func observeWalkPass(start time.Time, walks, chunks int) {
	m := metrics.Load()
	if m == nil {
		return
	}
	m.walkPasses.Inc()
	m.walks.Add(int64(walks))
	m.walkChunks.Add(int64(chunks))
	m.walkSeconds.ObserveSince(start)
}

// validateWalkArgs is the shared guard of every walk pass — fresh
// (EstimateSum) and recording (Endpoints) alike, so the two paths of
// the bit-identity contract cannot drift on what they accept.
func (w *WalkEstimator) validateWalkArgs(ctx context.Context, source graph.NodeID, walks int) (context.Context, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if walks <= 0 {
		return ctx, fmt.Errorf("bippr: walks=%d must be positive", walks)
	}
	if walks > MaxWalks {
		return ctx, fmt.Errorf("bippr: walks=%d exceeds the cap %d", walks, MaxWalks)
	}
	if !w.g.ValidNode(source) {
		return ctx, fmt.Errorf("bippr: walk source %d not in graph (N=%d)", source, w.g.NumNodes())
	}
	return ctx, nil
}

// forEachChunk runs fn for every chunk index in [0, chunks) — serially
// when the (already clamped) pool is one worker, otherwise across a
// pool that claims indices from a shared counter. fn receives its
// worker's index in [0, workers) for per-worker scratch, and each
// chunk index is processed by exactly one worker, so fn may write its
// slot without locking. The walk paths (EstimateSum, Endpoints) share
// this scaffolding so the cancellation and claiming semantics cannot
// drift between them.
func forEachChunk(ctx context.Context, chunks, workers int, fn func(worker, c int)) error {
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			select {
			case <-ctx.Done():
				return fmt.Errorf("bippr: walks cancelled: %w", ctx.Err())
			default:
			}
			fn(0, c)
		}
		return nil
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		cancelled atomic.Bool
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				select {
				case <-ctx.Done():
					cancelled.Store(true)
					return
				default:
				}
				fn(worker, c)
			}
		}(i)
	}
	wg.Wait()
	if cancelled.Load() {
		return fmt.Errorf("bippr: walks cancelled: %w", ctx.Err())
	}
	return nil
}

// Distribution estimates the endpoint distribution π(source,·) from
// walks samples — a testing and diagnostics aid; pair queries use
// EstimateSum directly. It draws from the same per-walk substreams as
// EstimateSum but always runs serially: parallel merging of the
// per-node histogram would make the float accumulation order (and so
// the low bits) depend on the worker count.
func (w *WalkEstimator) Distribution(ctx context.Context, source graph.NodeID, walks int) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if walks <= 0 {
		return nil, fmt.Errorf("bippr: walks=%d must be positive", walks)
	}
	if walks > MaxWalks {
		return nil, fmt.Errorf("bippr: walks=%d exceeds the cap %d", walks, MaxWalks)
	}
	if !w.g.ValidNode(source) {
		return nil, fmt.Errorf("bippr: walk source %d not in graph (N=%d)", source, w.g.NumNodes())
	}
	dist := make([]float64, w.g.NumNodes())
	inc := 1 / float64(walks)
	for c := 0; c < numChunks(walks); c++ {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("bippr: walks cancelled: %w", ctx.Err())
		default:
		}
		base := uint64(c) * walkChunk
		for i := 0; i < chunkCount(walks, c); i++ {
			rng := newWalkRNG(w.seed, source, base+uint64(i))
			if end, ok := w.walkEndpoint(&rng, source); ok {
				dist[end] += inc
			}
		}
	}
	return dist, nil
}
