package bippr

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// WalkEstimator simulates damped forward random walks over the
// graph's out-CSR. Endpoints are distributed according to π(source,·)
// under the package's dangling convention (see the package comment),
// which is exactly the sampling distribution the bidirectional
// estimator needs for its correction term Σ_v π(s,v)·r_t(v).
//
// Walks are seeded deterministically per source: two estimators built
// with the same seed produce identical estimates for the same source
// regardless of query order, making results reproducible under
// concurrent server traffic.
type WalkEstimator struct {
	g        *graph.Graph
	alpha    float64
	seed     int64
	maxSteps int
}

// NewWalkEstimator builds a walk estimator with damping alpha,
// base RNG seed and per-walk step cap (0 selects DefaultMaxSteps).
func NewWalkEstimator(g *graph.Graph, alpha float64, seed int64, maxSteps int) *WalkEstimator {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	return &WalkEstimator{g: g, alpha: alpha, seed: seed, maxSteps: maxSteps}
}

// sourceRNG derives the per-source deterministic RNG. SplitMix-style
// mixing keeps nearby (seed, source) pairs uncorrelated.
func (w *WalkEstimator) sourceRNG(source graph.NodeID) *rand.Rand {
	x := uint64(w.seed)*0x9e3779b97f4a7c15 + uint64(uint32(source))*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return rand.New(rand.NewSource(int64(x)))
}

// endpoint simulates one walk from source. ok is false when the walk
// was absorbed by a dangling node before stopping; such walks carry
// no endpoint mass.
func (w *WalkEstimator) endpoint(rng *rand.Rand, source graph.NodeID) (end graph.NodeID, ok bool) {
	v := source
	for step := 0; step < w.maxSteps; step++ {
		if rng.Float64() >= w.alpha {
			return v, true // stop here
		}
		out := w.g.Out(v)
		if len(out) == 0 {
			return v, false // absorbed
		}
		v = out[rng.Intn(len(out))]
	}
	// Truncation: treat the surviving walk as stopping at its current
	// node; at default parameters this biases by < 1e-7.
	return v, true
}

// EstimateSum returns (1/walks)·Σ weight[endpoint] over walks damped
// forward walks from source — an unbiased estimate of
// Σ_v π(source,v)·weight[v] up to step truncation. weight must have
// one entry per node.
func (w *WalkEstimator) EstimateSum(ctx context.Context, source graph.NodeID, walks int, weight []float64) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if walks <= 0 {
		return 0, fmt.Errorf("bippr: walks=%d must be positive", walks)
	}
	if !w.g.ValidNode(source) {
		return 0, fmt.Errorf("bippr: walk source %d not in graph (N=%d)", source, w.g.NumNodes())
	}
	if len(weight) != w.g.NumNodes() {
		return 0, fmt.Errorf("bippr: %d weights for %d nodes", len(weight), w.g.NumNodes())
	}
	rng := w.sourceRNG(source)
	var sum float64
	for i := 0; i < walks; i++ {
		if i%cancelEvery == 0 {
			select {
			case <-ctx.Done():
				return 0, fmt.Errorf("bippr: walks cancelled: %w", ctx.Err())
			default:
			}
		}
		if end, ok := w.endpoint(rng, source); ok {
			sum += weight[end]
		}
	}
	return sum / float64(walks), nil
}

// Distribution estimates the endpoint distribution π(source,·) from
// walks samples — a testing and diagnostics aid; pair queries use
// EstimateSum directly.
func (w *WalkEstimator) Distribution(ctx context.Context, source graph.NodeID, walks int) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if walks <= 0 {
		return nil, fmt.Errorf("bippr: walks=%d must be positive", walks)
	}
	if !w.g.ValidNode(source) {
		return nil, fmt.Errorf("bippr: walk source %d not in graph (N=%d)", source, w.g.NumNodes())
	}
	rng := w.sourceRNG(source)
	dist := make([]float64, w.g.NumNodes())
	inc := 1 / float64(walks)
	for i := 0; i < walks; i++ {
		if i%cancelEvery == 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("bippr: walks cancelled: %w", ctx.Err())
			default:
			}
		}
		if end, ok := w.endpoint(rng, source); ok {
			dist[end] += inc
		}
	}
	return dist, nil
}
