package bippr

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// fakeDisk is an in-memory DiskTier for unit tests.
type fakeDisk struct {
	mu    sync.Mutex
	blobs map[string][]byte

	loads, saves atomic.Int64
	failSaves    bool
}

func newFakeDisk() *fakeDisk {
	return &fakeDisk{blobs: make(map[string][]byte)}
}

func (d *fakeDisk) LoadIndex(graphFP, key string) ([]byte, error) {
	d.loads.Add(1)
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.blobs[graphFP+"/"+key]
	if !ok {
		return nil, os.ErrNotExist
	}
	return append([]byte(nil), b...), nil
}

func (d *fakeDisk) SaveIndex(graphFP, key string, data []byte) error {
	d.saves.Add(1)
	if d.failSaves {
		return fmt.Errorf("fake disk full")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.blobs[graphFP+"/"+key] = append([]byte(nil), data...)
	return nil
}

// TestIndexStoreSingleflight is the satellite concurrency test: N
// goroutines racing the same key through GetOrCompute must trigger
// exactly one compute, with every caller receiving the same index.
// Run with -race.
func TestIndexStoreSingleflight(t *testing.T) {
	g := randomGraph(t, 50, 200, 3, true)
	for _, tc := range []struct {
		name  string
		store IndexStore
	}{
		{"memory", NewMemoryStore(8)},
		{"tiered", NewTieredStore(8, newFakeDisk())},
		{"tiered-nil-disk", NewTieredStore(8, nil)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const goroutines = 32
			var computes atomic.Int64
			var (
				wg      sync.WaitGroup
				start   = make(chan struct{})
				results [goroutines]*TargetIndex
				errs    [goroutines]error
			)
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					<-start
					results[i], _, errs[i] = tc.store.GetOrCompute(context.Background(), g, 7, 0.85, 1e-4,
						func() (*TargetIndex, error) {
							computes.Add(1)
							return ReversePush(context.Background(), g, 7, 0.85, 1e-4)
						})
				}(i)
			}
			close(start)
			wg.Wait()
			if n := computes.Load(); n != 1 {
				t.Fatalf("%d computes ran, want exactly 1", n)
			}
			for i := 0; i < goroutines; i++ {
				if errs[i] != nil {
					t.Fatalf("goroutine %d: %v", i, errs[i])
				}
				if results[i] != results[0] {
					t.Fatalf("goroutine %d received a different index instance", i)
				}
			}
			stats := tc.store.Stats()
			if stats.Misses != 1 {
				t.Errorf("stats.Misses = %d, want 1", stats.Misses)
			}
			if stats.MemoryHits+stats.DiskHits != goroutines-1 {
				t.Errorf("hits = %d (mem %d + disk %d), want %d",
					stats.MemoryHits+stats.DiskHits, stats.MemoryHits, stats.DiskHits, goroutines-1)
			}
		})
	}
}

// TestTieredStoreRestart is the acceptance integration test at the
// store level: build an index through one TieredStore, "restart" by
// building a fresh store over the same real datastore directory, and
// serve the same query with zero reverse-push work — the compute
// callback must never run, and the stats must show a disk hit.
func TestTieredStoreRestart(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(t, 80, 400, 9, true)

	open := func() *TieredStore {
		ds, err := datastore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return NewTieredStore(4, ds)
	}

	before := open()
	idx1, tier, err := before.GetOrCompute(context.Background(), g, 5, 0.85, 1e-4, func() (*TargetIndex, error) {
		return ReversePush(context.Background(), g, 5, 0.85, 1e-4)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tier != TierComputed {
		t.Fatalf("first query came from tier %v, want computed", tier)
	}
	if s := before.Stats(); s.DiskWrites != 1 || s.DiskBytesWritten == 0 {
		t.Fatalf("artifact not persisted: %+v", s)
	}

	// Simulated restart: new store, new datastore handle, same files.
	after := open()
	idx2, tier, err := after.GetOrCompute(context.Background(), g, 5, 0.85, 1e-4, func() (*TargetIndex, error) {
		t.Error("reverse push ran after restart; expected a disk-tier hit")
		return ReversePush(context.Background(), g, 5, 0.85, 1e-4)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tier != TierDisk {
		t.Fatalf("post-restart query came from tier %v, want disk", tier)
	}
	s := after.Stats()
	if s.DiskHits != 1 || s.Misses != 0 || s.DiskErrors != 0 {
		t.Fatalf("post-restart stats = %+v, want exactly one disk hit and no misses", s)
	}

	// The restored index answers identically.
	if idx1.Pushes != idx2.Pushes || idx1.MaxResidual != idx2.MaxResidual {
		t.Fatalf("restored index differs: pushes %d vs %d, maxres %v vs %v",
			idx1.Pushes, idx2.Pushes, idx1.MaxResidual, idx2.MaxResidual)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if idx1.Estimates.Get(graph.NodeID(v)) != idx2.Estimates.Get(graph.NodeID(v)) {
			t.Fatalf("restored estimate differs at node %d", v)
		}
	}

	// And the memory tier now fronts the disk: a second query is an
	// LRU hit, not another disk read.
	_, tier, err = after.GetOrCompute(context.Background(), g, 5, 0.85, 1e-4, func() (*TargetIndex, error) {
		t.Error("compute ran for a key the memory tier holds")
		return ReversePush(context.Background(), g, 5, 0.85, 1e-4)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tier != TierMemory {
		t.Fatalf("repeat query came from tier %v, want memory", tier)
	}
}

// TestEstimatorRestartServesFromDisk exercises the same restart path
// through the public Estimator API, as a server deployment uses it.
func TestEstimatorRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(t, 80, 400, 11, true)
	p := Params{RMax: 1e-4, Walks: 300}

	open := func() *Estimator {
		ds, err := datastore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return NewEstimatorWithStore(NewTieredStore(4, ds))
	}

	first, err := open().Pair(context.Background(), g, 2, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache {
		t.Fatal("first-ever query reported FromCache")
	}

	restarted := open()
	second, err := restarted.Pair(context.Background(), g, 2, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache {
		t.Fatal("post-restart query did not report FromCache")
	}
	if second.Pushes != 0 {
		t.Fatalf("post-restart query paid %d pushes, want 0", second.Pushes)
	}
	if second.Value != first.Value {
		t.Fatalf("post-restart estimate %v differs from original %v", second.Value, first.Value)
	}
	if s := restarted.StoreStats(); s.DiskHits != 1 || s.Misses != 0 {
		t.Fatalf("restarted estimator stats = %+v, want one disk hit, no misses", s)
	}
}

// TestTieredStoreCorruptArtifact: damaged and truncated artifacts are
// misses — recomputed, recounted, and overwritten — never errors.
func TestTieredStoreCorruptArtifact(t *testing.T) {
	g := randomGraph(t, 50, 200, 5, true)
	disk := newFakeDisk()

	seed := NewTieredStore(4, disk)
	if _, _, err := seed.GetOrCompute(context.Background(), g, 7, 0.85, 1e-4, func() (*TargetIndex, error) {
		return ReversePush(context.Background(), g, 7, 0.85, 1e-4)
	}); err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/3] },
		"bit-flip":  func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)/2] ^= 0x10; return b },
		"garbage":   func([]byte) []byte { return []byte("not an index at all") },
	} {
		t.Run(name, func(t *testing.T) {
			disk.mu.Lock()
			var key string
			for k, b := range disk.blobs {
				key = k
				disk.blobs[k] = mutate(b)
			}
			disk.mu.Unlock()

			store := NewTieredStore(4, disk) // fresh memory tier, same disk
			computed := false
			_, tier, err := store.GetOrCompute(context.Background(), g, 7, 0.85, 1e-4, func() (*TargetIndex, error) {
				computed = true
				return ReversePush(context.Background(), g, 7, 0.85, 1e-4)
			})
			if err != nil {
				t.Fatalf("corrupt artifact surfaced as error: %v", err)
			}
			if !computed || tier != TierComputed {
				t.Fatalf("corrupt artifact served without recompute (tier %v)", tier)
			}
			s := store.Stats()
			if s.DiskErrors != 1 || s.Misses != 1 || s.DiskHits != 0 {
				t.Fatalf("stats after corruption = %+v", s)
			}
			// The recompute overwrote the bad artifact: next restart hits.
			disk.mu.Lock()
			repaired := append([]byte(nil), disk.blobs[key]...)
			disk.mu.Unlock()
			if _, err := DecodeIndex(repaired); err != nil {
				t.Fatalf("artifact not repaired after recompute: %v", err)
			}
		})
	}
}

// TestTieredStoreSaveFailureIsNonFatal: a disk write failure loses
// persistence, not the query.
func TestTieredStoreSaveFailureIsNonFatal(t *testing.T) {
	g := randomGraph(t, 50, 200, 5, true)
	disk := newFakeDisk()
	disk.failSaves = true
	store := NewTieredStore(4, disk)
	_, tier, err := store.GetOrCompute(context.Background(), g, 7, 0.85, 1e-4, func() (*TargetIndex, error) {
		return ReversePush(context.Background(), g, 7, 0.85, 1e-4)
	})
	if err != nil {
		t.Fatalf("save failure surfaced as query error: %v", err)
	}
	if tier != TierComputed {
		t.Fatalf("tier = %v, want computed", tier)
	}
	s := store.Stats()
	if s.DiskErrors != 1 || s.DiskWrites != 0 {
		t.Fatalf("stats = %+v, want one disk error and no writes", s)
	}
}

// TestTieredStoreDistinctParamsDistinctArtifacts: alpha/rmax are part
// of the artifact key, so parameter changes can never serve a stale
// index.
func TestTieredStoreDistinctParamsDistinctArtifacts(t *testing.T) {
	g := randomGraph(t, 50, 200, 5, true)
	disk := newFakeDisk()
	store := NewTieredStore(8, disk)
	compute := func(target graph.NodeID, alpha, rmax float64) {
		t.Helper()
		if _, _, err := store.GetOrCompute(context.Background(), g, target, alpha, rmax, func() (*TargetIndex, error) {
			return ReversePush(context.Background(), g, target, alpha, rmax)
		}); err != nil {
			t.Fatal(err)
		}
	}
	compute(7, 0.85, 1e-4)
	compute(7, 0.85, 1e-5)
	compute(7, 0.5, 1e-4)
	compute(8, 0.85, 1e-4)
	disk.mu.Lock()
	n := len(disk.blobs)
	disk.mu.Unlock()
	if n != 4 {
		t.Fatalf("4 distinct queries produced %d artifacts, want 4", n)
	}
}
