package bippr

import (
	"math/bits"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// walkRNG is the deterministic random stream of ONE walk: a splitmix64
// generator seeded from (seed, source, global walk index).
//
// Giving every walk its own substream — rather than one shared stream
// per chunk consumed walk-after-walk — is what makes the batched
// cohort stepper (see appendEndpointsBatched) exactly equivalent to
// the per-walk path: draw i of walk j is a pure function of
// (seed, source, chunk·walkChunk+j, i), so the two steppers consume
// identical draws no matter how they interleave walks. A shared
// sequential stream cannot offer that: walk j's draws would start
// where walk j−1's data-dependent trajectory ended, an order a
// level-synchronous stepper cannot reproduce without first running
// every walk serially.
//
// The generator is also much cheaper than the previous per-chunk
// math/rand source — no 607-word seeding pass per chunk, no interface
// call per draw — which is a real share of the walk phase's speedup.
type walkRNG struct {
	state uint64
}

// newWalkRNG derives walk number walk's substream. The SplitMix-style
// finalizer decorrelates nearby (seed, source, walk) triples, the same
// idiom the per-chunk seeding used.
func newWalkRNG(seed int64, source graph.NodeID, walk uint64) walkRNG {
	x := uint64(seed)*0x9e3779b97f4a7c15 +
		uint64(uint32(source))*0xbf58476d1ce4e5b9 +
		walk*0x2545f4914f6cdd1d
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return walkRNG{state: x}
}

// next returns the stream's next 64 random bits (splitmix64).
func (r *walkRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// float64 returns a uniform draw in [0,1) with 53 random bits.
func (r *walkRNG) float64() float64 {
	return float64(r.next()>>11) * 0x1.0p-53
}

// intn returns a uniform draw in [0,n) for 0 < n ≤ MaxInt32 via
// Lemire's multiply-shift reduction; the bias is at most n/2⁶⁴ — far
// below anything a Monte-Carlo estimate at MaxWalks samples could
// resolve — and unlike rejection sampling it consumes exactly one
// 64-bit draw, keeping the per-walk draw count a pure function of the
// trajectory length.
func (r *walkRNG) intn(n int) int {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}
