package bippr

import "github.com/cyclerank/cyclerank-go/internal/graph"

// Storage selects the representation of a TargetIndex's estimate and
// residual vectors.
type Storage int

const (
	// StorageAuto picks dense arrays for small graphs and sparse maps
	// for large ones (the map may still densify mid-push if the
	// frontier grows past densifyFraction of the graph). This is the
	// default and the right choice everywhere outside tests and
	// benchmarks.
	StorageAuto Storage = iota
	// StorageDense forces flat O(n) arrays.
	StorageDense
	// StorageSparse forces map storage proportional to the nodes the
	// push touches (it never densifies).
	StorageSparse
)

// denseCutoff is the graph size below which StorageAuto picks dense
// arrays: two float64 arrays of 1<<16 entries cost 1 MiB, cheaper and
// faster than map overhead at that scale.
const denseCutoff = 1 << 16

// densifyFraction is the touched fraction past which an auto-sparse
// vector converts to dense mid-push: a map entry costs roughly 6× a
// dense slot, so past ~1/6 of the graph the array is strictly better.
// 1/8 leaves headroom for map load-factor waste.
const densifyFraction = 8

// Vector is a node→float64 mapping holding one layer of a reverse-push
// index. Depending on Storage it is backed by a flat array (dense) or
// a map keyed by the touched nodes (sparse), so that an LRU-cached
// index over a multi-million-node graph pins memory proportional to
// the push frontier, not to graph size.
//
// Reads never mutate, so a Vector shared through the index cache is
// safe for concurrent readers. Both representations hold identical
// values: the push performs the same float operations in the same
// order regardless of storage (see TestSparseDenseEquivalence).
type Vector struct {
	n      int
	dense  []float64
	sparse map[graph.NodeID]float64

	// auto records whether this vector may densify mid-push
	// (StorageAuto above denseCutoff).
	auto bool
}

// newVector allocates a vector for n nodes under the given policy.
func newVector(n int, storage Storage) *Vector {
	switch {
	case storage == StorageDense, storage == StorageAuto && n <= denseCutoff:
		return &Vector{n: n, dense: make([]float64, n)}
	default:
		return &Vector{
			n:      n,
			sparse: make(map[graph.NodeID]float64),
			auto:   storage == StorageAuto,
		}
	}
}

// NewDenseVector wraps an existing per-node slice as a dense Vector.
// The slice is used directly, not copied.
func NewDenseVector(values []float64) *Vector {
	return &Vector{n: len(values), dense: values}
}

// NumNodes returns the graph size the vector spans.
func (x *Vector) NumNodes() int { return x.n }

// IsSparse reports whether the vector is map-backed.
func (x *Vector) IsSparse() bool { return x.sparse != nil }

// NonZeros returns the number of explicitly stored entries — for a
// sparse vector, the memory the index actually pins.
func (x *Vector) NonZeros() int {
	if x.sparse != nil {
		return len(x.sparse)
	}
	nz := 0
	for _, v := range x.dense {
		if v != 0 {
			nz++
		}
	}
	return nz
}

// Get returns the value at node v (zero when untouched).
func (x *Vector) Get(v graph.NodeID) float64 {
	if x.dense != nil {
		return x.dense[v]
	}
	return x.sparse[v]
}

// ForEach visits every non-zero entry. Iteration order is unspecified
// (map order for sparse vectors); callers must not depend on it.
// Return false to stop early.
func (x *Vector) ForEach(fn func(v graph.NodeID, value float64) bool) {
	if x.dense != nil {
		for v, val := range x.dense {
			if val != 0 && !fn(graph.NodeID(v), val) {
				return
			}
		}
		return
	}
	for v, val := range x.sparse {
		if !fn(v, val) {
			return
		}
	}
}

// Dense materializes the vector as a fresh per-node slice. Callers own
// the result and may mutate it freely.
func (x *Vector) Dense() []float64 {
	out := make([]float64, x.n)
	if x.dense != nil {
		copy(out, x.dense)
		return out
	}
	for v, val := range x.sparse {
		out[v] = val
	}
	return out
}

// Max returns the largest stored value (0 for an empty vector).
func (x *Vector) Max() float64 {
	max := 0.0
	x.ForEach(func(_ graph.NodeID, val float64) bool {
		if val > max {
			max = val
		}
		return true
	})
	return max
}

// add accumulates delta at node v, densifying an auto vector whose
// touched set outgrew the map's break-even point.
func (x *Vector) add(v graph.NodeID, delta float64) {
	if x.dense != nil {
		x.dense[v] += delta
		return
	}
	x.sparse[v] += delta
	if x.auto && len(x.sparse)*densifyFraction > x.n {
		x.densify()
	}
}

// addGet accumulates delta at node v and returns the new value — the
// same float operations as add followed by Get in one storage probe,
// which is what lets the blocked push kernel test the enqueue
// threshold without a second lookup per edge.
func (x *Vector) addGet(v graph.NodeID, delta float64) float64 {
	if x.dense != nil {
		nv := x.dense[v] + delta
		x.dense[v] = nv
		return nv
	}
	nv := x.sparse[v] + delta
	x.sparse[v] = nv
	if x.auto && len(x.sparse)*densifyFraction > x.n {
		x.densify()
	}
	return nv
}

// zero clears node v's entry.
func (x *Vector) zero(v graph.NodeID) {
	if x.dense != nil {
		x.dense[v] = 0
		return
	}
	delete(x.sparse, v)
}

// densify converts a sparse vector to dense in place.
func (x *Vector) densify() {
	d := make([]float64, x.n)
	for v, val := range x.sparse {
		d[v] = val
	}
	x.dense, x.sparse = d, nil
}

// nodeSet is the push queue's membership filter, stored to match the
// vectors: a bool array when dense is affordable, a map otherwise.
type nodeSet struct {
	dense  []bool
	sparse map[graph.NodeID]struct{}
}

// newNodeSet sizes a set for n nodes under the same policy as
// newVector, so a sparse push does not pin an O(n) bool array either.
func newNodeSet(n int, storage Storage) *nodeSet {
	if storage == StorageDense || (storage == StorageAuto && n <= denseCutoff) {
		return &nodeSet{dense: make([]bool, n)}
	}
	return &nodeSet{sparse: make(map[graph.NodeID]struct{})}
}

func (s *nodeSet) has(v graph.NodeID) bool {
	if s.dense != nil {
		return s.dense[v]
	}
	_, ok := s.sparse[v]
	return ok
}

func (s *nodeSet) insert(v graph.NodeID) {
	if s.dense != nil {
		s.dense[v] = true
		return
	}
	s.sparse[v] = struct{}{}
}

func (s *nodeSet) remove(v graph.NodeID) {
	if s.dense != nil {
		s.dense[v] = false
		return
	}
	delete(s.sparse, v)
}
