package bippr

import (
	"context"
	"math/rand"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// TestBatchedSteppingBitIdentical is the batched-stepper equivalence
// property test: for random graphs (half of them dangling-heavy, so
// absorbed walks exercise the cohort compaction), seeds and walk
// counts, the level-synchronous cohort stepper must produce estimates
// AND recorded endpoint counts bit-identical (==, not approximately
// equal) to the serial per-walk stepper, at workers 1, 2 and 8. The
// batching only changes the order CSR rows are visited in, never
// which substream a walk draws from or how its draws are consumed.
func TestBatchedSteppingBitIdentical(t *testing.T) {
	allowWorkers(t, 8)
	rng := rand.New(rand.NewSource(41))
	walkCounts := []int{1, 127, 128, 129, 1000, 4096}
	for trial := 0; trial < 8; trial++ {
		n := 20 + rng.Intn(100)
		g := randomGraph(t, n, n*4, rng.Int63(), trial%2 == 0)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() * 1e-3
		}
		wv := NewDenseVector(weights)
		seed := rng.Int63()
		source := graph.NodeID(rng.Intn(n))
		walks := walkCounts[trial%len(walkCounts)]

		// The default batched stepper steps through the sample table;
		// the -no-table variants replay the slice-stepping path (the
		// PR 8 stepper) on the same substreams. Both are exercised in
		// both cohort-sort modes: these graphs sit far below the
		// cohort-sort threshold, so without the override the sort
		// branch would go untested.
		batched := NewWalkEstimator(g, 0.85, seed, 0)
		sorted := NewWalkEstimator(g, 0.85, seed, 0)
		sorted.sortCohort = true
		noTable := NewWalkEstimator(g, 0.85, seed, 0)
		noTable.SetSampleTable(false)
		sortedNoTable := NewWalkEstimator(g, 0.85, seed, 0)
		sortedNoTable.sortCohort = true
		sortedNoTable.SetSampleTable(false)
		serial := NewWalkEstimator(g, 0.85, seed, 0)
		serial.SetBatchStepping(false)
		estimators := map[string]*WalkEstimator{
			"batched": batched, "sorted-cohort": sorted,
			"batched-no-table": noTable, "sorted-no-table": sortedNoTable,
		}

		for _, workers := range []int{1, 2, 8} {
			want, err := serial.EstimateSum(context.Background(), source, walks, wv, workers)
			if err != nil {
				t.Fatal(err)
			}
			wantSet, err := serial.Endpoints(context.Background(), source, walks, workers)
			if err != nil {
				t.Fatal(err)
			}
			for name, est := range estimators {
				got, err := est.EstimateSum(context.Background(), source, walks, wv, workers)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("trial %d (n=%d walks=%d workers=%d): %s estimate %v != serial %v",
						trial, n, walks, workers, name, got, want)
				}

				gotSet, err := est.Endpoints(context.Background(), source, walks, workers)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotSet.chunks) != len(wantSet.chunks) {
					t.Fatalf("trial %d: %d chunks %s, %d serial", trial, len(gotSet.chunks), name, len(wantSet.chunks))
				}
				for c := range wantSet.chunks {
					a, b := gotSet.chunks[c], wantSet.chunks[c]
					if len(a) != len(b) {
						t.Fatalf("trial %d chunk %d: %d entries %s, %d serial", trial, c, len(a), name, len(b))
					}
					for i := range b {
						if a[i] != b[i] {
							t.Fatalf("trial %d chunk %d entry %d: %s %+v != serial %+v", trial, c, i, name, a[i], b[i])
						}
					}
				}
			}
		}
	}
}

// TestBatchedPairBitIdentical asserts the property at the pair-query
// level: the full bidirectional estimate with the batched stepper
// (the default every query runs) equals the serial-stepper estimate
// exactly, at workers 1, 2 and 8.
func TestBatchedPairBitIdentical(t *testing.T) {
	allowWorkers(t, 8)
	g := randomGraph(t, 150, 700, 23, false) // keep dangling nodes in play
	p := Params{Alpha: 0.85, RMax: 1e-4, Walks: 3000, Seed: 7}.withDefaults()
	for _, pair := range [][2]graph.NodeID{{0, 1}, {10, 99}, {42, 42}} {
		idx, err := ReversePush(context.Background(), g, pair[1], p.Alpha, p.RMax)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			serial := NewWalkEstimator(g, p.Alpha, p.Seed, p.MaxSteps)
			serial.SetBatchStepping(false)
			wantSum, err := serial.EstimateSum(context.Background(), pair[0], p.Walks, idx.Residuals, workers)
			if err != nil {
				t.Fatal(err)
			}
			want := idx.Estimates.Get(pair[0]) + wantSum

			q := p
			q.Workers = workers
			got, err := Bidirectional(context.Background(), g, pair[0], pair[1], q)
			if err != nil {
				t.Fatal(err)
			}
			if got.Value != want {
				t.Errorf("π(%d,%d) workers=%d: batched pair %v != serial-stepper pair %v",
					pair[0], pair[1], workers, got.Value, want)
			}
		}
	}
}

// TestDistributionMatchesEndpoints pins Distribution to the same
// substreams the chunked paths draw from: the histogram it returns
// must equal the recorded endpoint counts exactly.
func TestDistributionMatchesEndpoints(t *testing.T) {
	g := randomGraph(t, 80, 320, 3, false)
	w := NewWalkEstimator(g, 0.85, 11, 0)
	const walks = 1500
	dist, err := w.Distribution(context.Background(), 2, walks)
	if err != nil {
		t.Fatal(err)
	}
	set, err := w.Endpoints(context.Background(), 2, walks, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, g.NumNodes())
	for _, chunk := range set.chunks {
		for _, e := range chunk {
			counts[e.Node] += float64(e.Count) / walks
		}
	}
	for v := range counts {
		if dist[v] != counts[v] {
			// Distribution accumulates 1/walks increments; the recorded
			// path scales a whole count at once. Allow only float
			// accumulation noise between the two.
			if diff := dist[v] - counts[v]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("node %d: distribution %v, recorded %v", v, dist[v], counts[v])
			}
		}
	}
}

// TestWalkPassAllocsFlat guards the pooled-scratch fix: a steady-state
// fresh-walk pass must not allocate per chunk — only the pass-level
// bookkeeping (partial sums, borrowed scratch pointers, span) remains,
// so allocations stay flat as the chunk count grows.
func TestWalkPassAllocsFlat(t *testing.T) {
	g := randomGraph(t, 200, 1200, 9, true)
	wv := NewDenseVector(make([]float64, g.NumNodes()))
	w := NewWalkEstimator(g, 0.85, 1, 0)
	run := func(walks int) float64 {
		return testing.AllocsPerRun(20, func() {
			if _, err := w.EstimateSum(context.Background(), 0, walks, wv, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Warm the pool and the scratch buffers.
	run(walkChunk * 64)
	few, many := run(walkChunk*4), run(walkChunk*64)
	if many > few+8 {
		t.Errorf("allocs grew with chunk count: %v at 4 chunks, %v at 64", few, many)
	}
	if many > 32 {
		t.Errorf("walk pass allocates %v times per run; scratch is not pooled", many)
	}
}
