package bippr

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// EndpointCount is one recorded walk endpoint: the node plus how many
// walks of a chunk stopped there. Chunks store their endpoints as
// sorted EndpointCount slices — the canonical summary both the
// fresh-walk and the reuse path fold with weighChunk.
type EndpointCount struct {
	Node  graph.NodeID
	Count int32
}

// EndpointSet is the recorded outcome of one walk pass: per-chunk
// sorted endpoint counts for a fixed (graph, alpha, seed, maxSteps,
// source, walks). Re-weighting the set against any target index's
// residual vector yields the walk correction term bit-identically to
// re-simulating the walks, because both paths fold the same sorted
// counts chunk by chunk and reduce partial sums in chunk order.
//
// A set shared through the EndpointCache is immutable; callers must
// not modify it.
type EndpointSet struct {
	// Walks is the walk count the set was recorded with (the estimate
	// divisor).
	Walks  int
	chunks [][]EndpointCount
}

// EstimateSum re-weights the recorded endpoints:
// (1/walks)·Σ count·weight(node), folded per chunk and reduced in
// chunk order — exactly the float operations WalkEstimator.EstimateSum
// performs when it simulates the walks afresh.
func (s *EndpointSet) EstimateSum(weight *Vector) float64 {
	var sum float64
	for _, chunk := range s.chunks {
		sum += weighChunk(chunk, weight)
	}
	return sum / float64(s.Walks)
}

// NonZeros returns the total number of stored (node, count) pairs —
// the set's memory footprint in entries.
func (s *EndpointSet) NonZeros() int {
	n := 0
	for _, chunk := range s.chunks {
		n += len(chunk)
	}
	return n
}

// endpointKey identifies one recorded walk pass. The graph enters by
// structural fingerprint, not pointer: endpoint samples depend only on
// the out-CSR, so a re-uploaded dataset with identical structure keeps
// its recordings while any structural change lands in a fresh key and
// the stale entries age out of the LRU. All walk parameters that shape
// the sample — alpha, seed, step cap, walk count — are part of the
// key, so distinct parameters can never alias.
type endpointKey struct {
	fp       string
	source   graph.NodeID
	alpha    float64
	seed     int64
	maxSteps int
	walks    int
}

// EndpointStats is a snapshot of an EndpointCache's counters.
type EndpointStats struct {
	// Hits counts queries that re-weighted recorded endpoints (or rode
	// a concurrent recording) instead of simulating walks.
	Hits int64 `json:"hits"`
	// Misses counts walk passes actually simulated and recorded.
	Misses int64 `json:"misses"`
	// Entries is the cache's current size in recorded passes.
	Entries int `json:"entries"`
	// Pairs is the total stored (node, count) pairs across all
	// recordings — the cache's memory footprint (~8 bytes per pair).
	Pairs int64 `json:"pairs"`
	// WalksAvoided totals the walks hits did not have to simulate.
	WalksAvoided int64 `json:"walks_avoided"`
}

// maxEndpointPairs bounds the cache's TOTAL stored (node, count)
// pairs (~8 bytes each, so ~32 MiB at the default). The entry-count
// LRU alone cannot bound memory: one recording is O(min(walks, N))
// pairs, so 64 warm sources on a large graph with eps-derived walk
// counts would otherwise pin gigabytes. Eviction keeps at least the
// most recent recording even when it alone exceeds the budget — it
// was just paid for and is about to be used. A variable, not a const,
// so tests can tighten it.
var maxEndpointPairs = int64(1) << 22

// endpointInflight is one in-progress recording; waiters block on done.
type endpointInflight struct {
	done chan struct{}
	set  *EndpointSet
	err  error
}

// EndpointCache is a concurrency-safe LRU of recorded walk endpoints
// with single-flight recording: concurrent queries from the same
// source share one walk pass, and later queries against *different
// targets* re-weight the recorded endpoints instead of re-walking —
// the cross-request walk reuse the bidirectional split makes possible
// (the walk side depends on the source only; the target enters purely
// through the residual weights).
type EndpointCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *endpointEntry
	entries  map[endpointKey]*list.Element
	inflight map[endpointKey]*endpointInflight

	hits, misses, walksAvoided int64
	pairs                      int64 // Σ NonZeros over entries; guarded by mu
}

type endpointEntry struct {
	key endpointKey
	set *EndpointSet
}

// NewEndpointCache returns an endpoint cache holding up to capacity
// recorded walk passes (capacity <= 0 selects DefaultEndpointCacheSize).
func NewEndpointCache(capacity int) *EndpointCache {
	if capacity <= 0 {
		capacity = DefaultEndpointCacheSize
	}
	return &EndpointCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[endpointKey]*list.Element, capacity),
		inflight: make(map[endpointKey]*endpointInflight),
	}
}

// GetOrRecord returns the recorded endpoint set for (g, source, p),
// simulating and recording the walks with record on miss. record is
// invoked at most once per key across concurrent callers; cached is
// true when this caller did not pay for the walk pass itself. Waiters
// honor their own ctx, and a waiter whose recording peer fails retries
// the recording itself rather than inheriting the peer's error. p must
// already have defaults applied.
func (c *EndpointCache) GetOrRecord(ctx context.Context, g *graph.Graph, source graph.NodeID, p Params,
	record func() (*EndpointSet, error)) (set *EndpointSet, cached bool, err error) {
	key := endpointKey{
		fp:       sharedFingerprints.get(g),
		source:   source,
		alpha:    p.Alpha,
		seed:     p.Seed,
		maxSteps: p.MaxSteps,
		walks:    p.Walks,
	}
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.hits++
			c.walksAvoided += int64(key.walks)
			c.order.MoveToFront(el)
			c.mu.Unlock()
			return el.Value.(*endpointEntry).set, true, nil
		}
		if call, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, false, fmt.Errorf("bippr: waiting for shared walk pass: %w", ctx.Err())
			}
			if call.err == nil {
				c.mu.Lock()
				c.hits++
				c.walksAvoided += int64(key.walks)
				c.mu.Unlock()
				return call.set, true, nil
			}
			continue // peer failed; try recording ourselves
		}
		c.misses++
		call := &endpointInflight{done: make(chan struct{})}
		c.inflight[key] = call
		c.mu.Unlock()

		call.set, call.err = record()
		// Retire the inflight entry and publish in one critical section
		// so no concurrent caller can observe the key as neither cached
		// nor inflight and start a duplicate walk pass.
		c.mu.Lock()
		delete(c.inflight, key)
		if call.err == nil {
			c.putLocked(key, call.set)
		}
		c.mu.Unlock()
		close(call.done)
		return call.set, false, call.err
	}
}

// putLocked inserts a set, evicting least-recently-used entries while
// the cache is over its entry capacity OR its total-pairs budget
// (maxEndpointPairs). The caller must hold c.mu.
func (c *EndpointCache) putLocked(key endpointKey, set *EndpointSet) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*endpointEntry)
		c.pairs += int64(set.NonZeros()) - int64(e.set.NonZeros())
		e.set = set
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&endpointEntry{key: key, set: set})
		c.pairs += int64(set.NonZeros())
	}
	for (c.order.Len() > c.capacity || c.pairs > maxEndpointPairs) && c.order.Len() > 1 {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*endpointEntry)
		delete(c.entries, e.key)
		c.pairs -= int64(e.set.NonZeros())
	}
}

// Stats returns a snapshot of the cache's counters.
func (c *EndpointCache) Stats() EndpointStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return EndpointStats{
		Hits:         c.hits,
		Misses:       c.misses,
		Entries:      c.order.Len(),
		Pairs:        c.pairs,
		WalksAvoided: c.walksAvoided,
	}
}
