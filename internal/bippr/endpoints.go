package bippr

import (
	"context"
	"fmt"
	"math"

	"github.com/cyclerank/cyclerank-go/internal/artifact"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/obs"
)

// EndpointCount is one recorded walk endpoint: the node plus how many
// walks of a chunk stopped there. Chunks store their endpoints as
// sorted EndpointCount slices — the canonical summary both the
// fresh-walk and the reuse path fold with weighChunk.
type EndpointCount struct {
	Node  graph.NodeID
	Count int32
}

// EndpointSet is the recorded outcome of one walk pass: per-chunk
// sorted endpoint counts for a fixed (graph, alpha, seed, maxSteps,
// source, walks). Re-weighting the set against any target index's
// residual vector yields the walk correction term bit-identically to
// re-simulating the walks, because both paths fold the same sorted
// counts chunk by chunk and reduce partial sums in chunk order.
//
// A set shared through the EndpointCache is immutable; callers must
// not modify it.
type EndpointSet struct {
	// Walks is the walk count the set was recorded with (the estimate
	// divisor).
	Walks  int
	chunks [][]EndpointCount
}

// EstimateSum re-weights the recorded endpoints:
// (1/walks)·Σ count·weight(node), folded per chunk and reduced in
// chunk order — exactly the float operations WalkEstimator.EstimateSum
// performs when it simulates the walks afresh.
func (s *EndpointSet) EstimateSum(weight *Vector) float64 {
	var sum float64
	for _, chunk := range s.chunks {
		sum += weighChunk(chunk, weight)
	}
	return sum / float64(s.Walks)
}

// NonZeros returns the total number of stored (node, count) pairs —
// the set's memory footprint in entries.
func (s *EndpointSet) NonZeros() int {
	n := 0
	for _, chunk := range s.chunks {
		n += len(chunk)
	}
	return n
}

// endpointKey identifies one recorded walk pass. The graph enters by
// structural fingerprint, not pointer: endpoint samples depend only on
// the out-CSR, so a re-uploaded dataset with identical structure keeps
// its recordings while any structural change lands in a fresh key and
// the stale entries age out of the LRU. All walk parameters that shape
// the sample — alpha, seed, step cap, walk count — are part of the
// key, so distinct parameters can never alias. nodes is implied by fp
// (the fingerprint covers the node count) and rides along so the disk
// decoder can bound recorded node ids without a graph handle.
type endpointKey struct {
	fp       string
	nodes    int
	source   graph.NodeID
	alpha    float64
	seed     int64
	maxSteps int
	walks    int
}

// EndpointStats is a snapshot of an EndpointCache's counters.
type EndpointStats struct {
	// Hits counts queries that re-weighted recorded endpoints — from
	// the memory LRU, by riding a concurrent recording, or by loading
	// a persisted artifact — instead of simulating walks.
	Hits int64 `json:"hits"`
	// Misses counts walk passes actually simulated and recorded.
	Misses int64 `json:"misses"`
	// Entries is the cache's current size in recorded passes.
	Entries int `json:"entries"`
	// Pairs is the total stored (node, count) pairs across all
	// recordings — the cache's memory footprint (~8 bytes per pair).
	Pairs int64 `json:"pairs"`
	// WalksAvoided totals the walks hits did not have to simulate.
	WalksAvoided int64 `json:"walks_avoided"`
	// DiskHits counts hits served by deserializing a persisted
	// recording — the restart-warm path (also included in Hits).
	DiskHits int64 `json:"disk_hits"`
	// DiskWrites / DiskBytesWritten count persisted recordings.
	DiskWrites       int64 `json:"disk_writes"`
	DiskBytesWritten int64 `json:"disk_bytes_written"`
	// DiskErrors counts failed loads of an existing artifact
	// (corruption, version skew) and failed saves — absorbed as
	// misses or skipped writes, never query errors.
	DiskErrors int64 `json:"disk_errors"`
}

// maxEndpointPairs bounds the cache's TOTAL stored (node, count)
// pairs (~8 bytes each, so ~32 MiB at the default). The entry-count
// LRU alone cannot bound memory: one recording is O(min(walks, N))
// pairs, so 64 warm sources on a large graph with eps-derived walk
// counts would otherwise pin gigabytes. Eviction keeps at least the
// most recent recording even when it alone exceeds the budget — it
// was just paid for and is about to be used. A variable, not a const,
// so tests can tighten it; read at cache construction.
var maxEndpointPairs = int64(1) << 22

// EndpointDiskTier is the persistence contract of the endpoint
// cache's disk tier, implemented by the platform's datastore. graphFP
// is a structural graph fingerprint and key a filesystem-safe
// recording key (EndpointFileKey); Load returns an error wrapping
// fs.ErrNotExist when the artifact does not exist, and any load error
// is treated as a miss.
type EndpointDiskTier interface {
	LoadEndpoints(graphFP, key string) ([]byte, error)
	SaveEndpoints(graphFP, key string, data []byte) error
}

// endpointDisk adapts EndpointDiskTier onto the generic
// artifact.DiskTier.
type endpointDisk struct{ d EndpointDiskTier }

func (a endpointDisk) Load(dir, key string) ([]byte, error) { return a.d.LoadEndpoints(dir, key) }
func (a endpointDisk) Save(dir, key string, data []byte) error {
	return a.d.SaveEndpoints(dir, key, data)
}

// EndpointFileKey is the filesystem-safe artifact key of one recorded
// walk pass: the source id plus the exact bit patterns of every walk
// parameter that shapes the sample, so distinct parameters can never
// collide.
func EndpointFileKey(source graph.NodeID, alpha float64, seed int64, maxSteps, walks int) string {
	return fmt.Sprintf("s%d-a%016x-s%016x-m%d-w%d",
		source, math.Float64bits(alpha), uint64(seed), maxSteps, walks)
}

// endpointConfig parameterizes the generic artifact cache for
// recorded walk passes: fingerprint+parameter disk addressing, the
// versioned+CRC endpoint codec with decode-time validation against
// the requesting key, and the pairs budget as the cache's weight
// bound.
func endpointConfig(capacity int, disk EndpointDiskTier) artifact.Config[endpointKey, *EndpointSet] {
	cfg := artifact.Config[endpointKey, *EndpointSet]{
		Name:         "walk_endpoints",
		Capacity:     capacity,
		Weight:       func(s *EndpointSet) int64 { return int64(s.NonZeros()) },
		WeightBudget: maxEndpointPairs,
	}
	if disk == nil {
		return cfg
	}
	cfg.Disk = endpointDisk{disk}
	cfg.DiskKey = func(k endpointKey) (string, string) {
		return k.fp, EndpointFileKey(k.source, k.alpha, k.seed, k.maxSteps, k.walks)
	}
	cfg.Encode = func(k endpointKey, set *EndpointSet) ([]byte, error) {
		return EncodeEndpoints(EndpointArtifact{
			Source: k.source, Alpha: k.alpha, Seed: k.seed, MaxSteps: k.maxSteps, Set: set,
		})
	}
	cfg.Decode = func(k endpointKey, data []byte) (*EndpointSet, error) {
		a, err := DecodeEndpointsSized(data, k.nodes)
		if err != nil {
			return nil, err
		}
		// The fingerprint and file key should make these impossible;
		// they guard against a hand-edited or misplaced artifact.
		if a.Source != k.source || a.Alpha != k.alpha || a.Seed != k.seed ||
			a.MaxSteps != k.maxSteps || a.Set.Walks != k.walks {
			return nil, fmt.Errorf("%w: artifact parameters do not match the request", ErrEndpointsCorrupt)
		}
		return a.Set, nil
	}
	return cfg
}

// EndpointCache caches recorded walk endpoints with single-flight
// recording: concurrent queries from the same source share one walk
// pass, and later queries against *different targets* re-weight the
// recorded endpoints instead of re-walking — the cross-request walk
// reuse the bidirectional split makes possible (the walk side depends
// on the source only; the target enters purely through the residual
// weights). Built on the generic artifact cache, optionally with a
// disk tier: recordings are pure functions of (graph fingerprint,
// source, walk params), so a restarted server finds its warm sources
// persisted and pays deserialization, not re-walking.
type EndpointCache struct {
	cache        *artifact.Cache[endpointKey, *EndpointSet]
	walksAvoided *obs.Counter
}

// NewEndpointCache returns a memory-only endpoint cache holding up to
// capacity recorded walk passes (capacity <= 0 selects
// DefaultEndpointCacheSize).
func NewEndpointCache(capacity int) *EndpointCache {
	return NewTieredEndpointCache(capacity, nil)
}

// NewTieredEndpointCache returns an endpoint cache whose recordings
// additionally persist through the given disk tier as versioned,
// checksummed artifacts under endpoints/<graph-fp>/<key>.ep. A nil
// disk degrades to memory-only behavior. Corrupt, truncated or
// version-skewed artifacts are treated as misses and re-recorded.
func NewTieredEndpointCache(capacity int, disk EndpointDiskTier) *EndpointCache {
	if capacity <= 0 {
		capacity = DefaultEndpointCacheSize
	}
	cache := artifact.New(endpointConfig(capacity, disk))
	c := &EndpointCache{cache: cache, walksAvoided: obs.NewCounter()}
	// The reuse counter rides in the cache's registry so one merge at
	// the scrape endpoint exports the whole component.
	cache.MetricsRegistry().AttachCounter("cyclerank_endpoint_cache_walks_avoided_total",
		"Walks not simulated because a recorded pass was re-weighted.", c.walksAvoided)
	return c
}

// MetricsRegistry returns the cache's metrics registry (the underlying
// artifact cache's series plus the walks-avoided counter).
func (c *EndpointCache) MetricsRegistry() *obs.Registry { return c.cache.MetricsRegistry() }

// GetOrRecord returns the recorded endpoint set for (g, source, p),
// simulating and recording the walks with record on miss. record is
// invoked at most once per key across concurrent callers; cached is
// true when this caller did not pay for the walk pass itself — an LRU
// hit, a ride on a concurrent recording, or a persisted artifact.
// Waiters honor their own ctx, and a waiter whose recording peer
// fails retries the recording itself rather than inheriting the
// peer's error. p must already have defaults applied.
func (c *EndpointCache) GetOrRecord(ctx context.Context, g *graph.Graph, source graph.NodeID, p Params,
	record func() (*EndpointSet, error)) (set *EndpointSet, cached bool, err error) {
	key := endpointKey{
		fp:       sharedFingerprints.get(g),
		nodes:    g.NumNodes(),
		source:   source,
		alpha:    p.Alpha,
		seed:     p.Seed,
		maxSteps: p.MaxSteps,
		walks:    p.Walks,
	}
	set, tier, err := c.cache.GetOrCompute(ctx, key, record)
	if err != nil {
		return nil, false, err
	}
	if tier != TierComputed {
		c.walksAvoided.Add(int64(key.walks))
	}
	return set, tier != TierComputed, nil
}

// Stats returns a snapshot of the cache's counters.
func (c *EndpointCache) Stats() EndpointStats {
	s := c.cache.Stats()
	return EndpointStats{
		Hits:             s.MemoryHits + s.DiskHits,
		Misses:           s.Misses,
		Entries:          s.MemoryEntries,
		Pairs:            s.Weight,
		WalksAvoided:     c.walksAvoided.Value(),
		DiskHits:         s.DiskHits,
		DiskWrites:       s.DiskWrites,
		DiskBytesWritten: s.DiskBytesWritten,
		DiskErrors:       s.DiskErrors,
	}
}
