package bippr

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// On-disk target-index format (little endian):
//
//	magic   [4]byte  "BPIX"
//	version uint16   indexCodecVersion
//	target  int32
//	alpha   float64
//	rmax    float64
//	pushes  int64
//	maxRes  float64
//	nodes   int64    graph size the vectors span
//	estimates, residuals:
//	  repr  uint8    0 = dense, 1 = sparse
//	  nnz   int64    explicitly stored entries
//	  nnz × (node int32, value float64)
//	crc32   uint32   IEEE checksum of everything above
//
// Only non-zero entries are written, so files are sized by what the
// push touched, mirroring the in-memory sparse representation. The
// repr byte round-trips the representation itself: a decoded dense
// index stays dense, a sparse one stays sparse.
//
// The trailing checksum plus the version field make loads
// corruption-tolerant: a truncated, garbled, or older/newer-format
// file fails to decode and the caller treats it as a cache miss and
// recomputes — a bad artifact can cost time, never correctness.

// indexCodecVersion is bumped whenever the layout above changes;
// decoding any other version fails with ErrIndexVersion.
const indexCodecVersion uint16 = 1

var indexMagic = [4]byte{'B', 'P', 'I', 'X'}

// ErrIndexVersion reports an index artifact written by a different
// codec version. Loaders treat it as a miss and recompute.
var ErrIndexVersion = errors.New("bippr: index artifact version mismatch")

// ErrIndexCorrupt reports an index artifact that failed structural or
// checksum validation. Loaders treat it as a miss and recompute.
var ErrIndexCorrupt = errors.New("bippr: index artifact corrupt")

const (
	reprDense  uint8 = 0
	reprSparse uint8 = 1
)

// EncodeIndex serializes a target index into the versioned binary
// artifact format above.
func EncodeIndex(idx *TargetIndex) ([]byte, error) {
	if idx == nil || idx.Estimates == nil || idx.Residuals == nil {
		return nil, fmt.Errorf("bippr: cannot encode nil index")
	}
	if idx.Estimates.NumNodes() != idx.Residuals.NumNodes() {
		return nil, fmt.Errorf("bippr: index vectors span %d and %d nodes",
			idx.Estimates.NumNodes(), idx.Residuals.NumNodes())
	}
	var buf bytes.Buffer
	buf.Write(indexMagic[:])
	writeU16(&buf, indexCodecVersion)
	writeU32(&buf, uint32(idx.Target))
	writeU64(&buf, math.Float64bits(idx.Alpha))
	writeU64(&buf, math.Float64bits(idx.RMax))
	writeU64(&buf, uint64(idx.Pushes))
	writeU64(&buf, math.Float64bits(idx.MaxResidual))
	writeU64(&buf, uint64(idx.Estimates.NumNodes()))
	encodeVector(&buf, idx.Estimates)
	encodeVector(&buf, idx.Residuals)
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes(), nil
}

func encodeVector(buf *bytes.Buffer, x *Vector) {
	repr := reprDense
	if x.IsSparse() {
		repr = reprSparse
	}
	buf.WriteByte(repr)
	writeU64(buf, uint64(x.NonZeros()))
	x.ForEach(func(v graph.NodeID, val float64) bool {
		writeU32(buf, uint32(v))
		writeU64(buf, math.Float64bits(val))
		return true
	})
}

// DecodeIndex parses an artifact written by EncodeIndex. Any
// structural damage — truncation, bit flips, wrong magic — yields
// ErrIndexCorrupt, and a version change yields ErrIndexVersion, so
// callers can uniformly fall back to recomputation.
func DecodeIndex(data []byte) (*TargetIndex, error) {
	return DecodeIndexSized(data, -1)
}

// DecodeIndexSized is DecodeIndex with the node count the caller
// expects (from the graph the artifact is being loaded for); an
// artifact claiming any other size is rejected as corrupt *before*
// vectors are allocated, so a forged or damaged header cannot
// request a multi-gigabyte allocation. wantNodes < 0 skips the check
// (offline tools and tests that have no graph at hand).
func DecodeIndexSized(data []byte, wantNodes int) (*TargetIndex, error) {
	r := &byteReader{data: data}
	var magic [4]byte
	if err := r.read(magic[:]); err != nil || magic != indexMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrIndexCorrupt)
	}
	version, err := r.u16()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrIndexCorrupt)
	}
	if version != indexCodecVersion {
		return nil, fmt.Errorf("%w: file version %d, codec version %d",
			ErrIndexVersion, version, indexCodecVersion)
	}
	// Validate the checksum before trusting any length fields.
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: truncated", ErrIndexCorrupt)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrIndexCorrupt)
	}
	r.limit = len(body)

	idx := &TargetIndex{}
	tgt, err1 := r.u32()
	alpha, err2 := r.u64()
	rmax, err3 := r.u64()
	pushes, err4 := r.u64()
	maxRes, err5 := r.u64()
	nodes, err6 := r.u64()
	if err := errors.Join(err1, err2, err3, err4, err5, err6); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrIndexCorrupt)
	}
	if nodes > uint64(graph.MaxNodeID)+1 {
		return nil, fmt.Errorf("%w: implausible node count %d", ErrIndexCorrupt, nodes)
	}
	if wantNodes >= 0 && nodes != uint64(wantNodes) {
		return nil, fmt.Errorf("%w: artifact spans %d nodes, graph has %d", ErrIndexCorrupt, nodes, wantNodes)
	}
	idx.Target = graph.NodeID(tgt)
	idx.Alpha = math.Float64frombits(alpha)
	idx.RMax = math.Float64frombits(rmax)
	idx.Pushes = int64(pushes)
	idx.MaxResidual = math.Float64frombits(maxRes)
	n := int(nodes)
	if idx.Estimates, err = decodeVector(r, n); err != nil {
		return nil, err
	}
	if idx.Residuals, err = decodeVector(r, n); err != nil {
		return nil, err
	}
	if r.pos != r.limit {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrIndexCorrupt, r.limit-r.pos)
	}
	return idx, nil
}

func decodeVector(r *byteReader, n int) (*Vector, error) {
	repr, err := r.u8()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated vector", ErrIndexCorrupt)
	}
	nnz, err := r.u64()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated vector", ErrIndexCorrupt)
	}
	if nnz > uint64(n) {
		return nil, fmt.Errorf("%w: %d entries in a %d-node vector", ErrIndexCorrupt, nnz, n)
	}
	// Each entry is 12 bytes; a claimed count the buffer cannot hold
	// is rejected before sizing the map by it.
	if nnz*12 > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: %d entries exceed remaining bytes", ErrIndexCorrupt, nnz)
	}
	var x *Vector
	switch repr {
	case reprDense:
		x = &Vector{n: n, dense: make([]float64, n)}
	case reprSparse:
		x = &Vector{n: n, sparse: make(map[graph.NodeID]float64, nnz)}
	default:
		return nil, fmt.Errorf("%w: unknown vector representation %d", ErrIndexCorrupt, repr)
	}
	for i := uint64(0); i < nnz; i++ {
		node, err1 := r.u32()
		bits, err2 := r.u64()
		if err := errors.Join(err1, err2); err != nil {
			return nil, fmt.Errorf("%w: truncated vector entries", ErrIndexCorrupt)
		}
		if node >= uint32(n) {
			return nil, fmt.Errorf("%w: node %d outside [0,%d)", ErrIndexCorrupt, node, n)
		}
		v := graph.NodeID(node)
		if x.dense != nil {
			x.dense[v] = math.Float64frombits(bits)
		} else {
			x.sparse[v] = math.Float64frombits(bits)
		}
	}
	return x, nil
}

// --- little-endian helpers over bytes.Buffer / []byte ---

func writeU16(buf *bytes.Buffer, x uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], x)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, x uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], x)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, x uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	buf.Write(b[:])
}

// byteReader is a bounds-checked cursor over the artifact bytes;
// limit excludes the checksum trailer once it has been validated.
type byteReader struct {
	data  []byte
	pos   int
	limit int
}

func (r *byteReader) remaining() int {
	limit := r.limit
	if limit == 0 {
		limit = len(r.data)
	}
	return limit - r.pos
}

func (r *byteReader) read(dst []byte) error {
	if r.remaining() < len(dst) {
		return fmt.Errorf("%w: short read", ErrIndexCorrupt)
	}
	copy(dst, r.data[r.pos:])
	r.pos += len(dst)
	return nil
}

func (r *byteReader) u8() (uint8, error) {
	var b [1]byte
	err := r.read(b[:])
	return b[0], err
}

func (r *byteReader) u16() (uint16, error) {
	var b [2]byte
	err := r.read(b[:])
	return binary.LittleEndian.Uint16(b[:]), err
}

func (r *byteReader) u32() (uint32, error) {
	var b [4]byte
	err := r.read(b[:])
	return binary.LittleEndian.Uint32(b[:]), err
}

func (r *byteReader) u64() (uint64, error) {
	var b [8]byte
	err := r.read(b[:])
	return binary.LittleEndian.Uint64(b[:]), err
}
