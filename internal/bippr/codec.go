package bippr

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// On-disk target-index format (little endian):
//
//	magic   [4]byte  "BPIX"
//	version uint16   indexCodecVersion
//	target  int32
//	alpha   float64
//	rmax    float64
//	pushes  int64
//	maxRes  float64
//	nodes   int64    graph size the vectors span
//	estimates, residuals:
//	  repr  uint8    0 = dense, 1 = sparse
//	  nnz   int64    explicitly stored entries
//	  nnz × (node int32, value float64)
//	crc32   uint32   IEEE checksum of everything above
//
// Only non-zero entries are written, so files are sized by what the
// push touched, mirroring the in-memory sparse representation. The
// repr byte round-trips the representation itself: a decoded dense
// index stays dense, a sparse one stays sparse.
//
// The trailing checksum plus the version field make loads
// corruption-tolerant: a truncated, garbled, or older/newer-format
// file fails to decode and the caller treats it as a cache miss and
// recomputes — a bad artifact can cost time, never correctness.

// indexCodecVersion is bumped whenever the layout above changes;
// decoding any other version fails with ErrIndexVersion.
const indexCodecVersion uint16 = 1

var indexMagic = [4]byte{'B', 'P', 'I', 'X'}

// ErrIndexVersion reports an index artifact written by a different
// codec version. Loaders treat it as a miss and recompute.
var ErrIndexVersion = errors.New("bippr: index artifact version mismatch")

// ErrIndexCorrupt reports an index artifact that failed structural or
// checksum validation. Loaders treat it as a miss and recompute.
var ErrIndexCorrupt = errors.New("bippr: index artifact corrupt")

const (
	reprDense  uint8 = 0
	reprSparse uint8 = 1
)

// EncodeIndex serializes a target index into the versioned binary
// artifact format above.
func EncodeIndex(idx *TargetIndex) ([]byte, error) {
	if idx == nil || idx.Estimates == nil || idx.Residuals == nil {
		return nil, fmt.Errorf("bippr: cannot encode nil index")
	}
	if idx.Estimates.NumNodes() != idx.Residuals.NumNodes() {
		return nil, fmt.Errorf("bippr: index vectors span %d and %d nodes",
			idx.Estimates.NumNodes(), idx.Residuals.NumNodes())
	}
	var buf bytes.Buffer
	buf.Write(indexMagic[:])
	writeU16(&buf, indexCodecVersion)
	writeU32(&buf, uint32(idx.Target))
	writeU64(&buf, math.Float64bits(idx.Alpha))
	writeU64(&buf, math.Float64bits(idx.RMax))
	writeU64(&buf, uint64(idx.Pushes))
	writeU64(&buf, math.Float64bits(idx.MaxResidual))
	writeU64(&buf, uint64(idx.Estimates.NumNodes()))
	encodeVector(&buf, idx.Estimates)
	encodeVector(&buf, idx.Residuals)
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes(), nil
}

func encodeVector(buf *bytes.Buffer, x *Vector) {
	repr := reprDense
	if x.IsSparse() {
		repr = reprSparse
	}
	buf.WriteByte(repr)
	writeU64(buf, uint64(x.NonZeros()))
	x.ForEach(func(v graph.NodeID, val float64) bool {
		writeU32(buf, uint32(v))
		writeU64(buf, math.Float64bits(val))
		return true
	})
}

// DecodeIndex parses an artifact written by EncodeIndex. Any
// structural damage — truncation, bit flips, wrong magic — yields
// ErrIndexCorrupt, and a version change yields ErrIndexVersion, so
// callers can uniformly fall back to recomputation.
func DecodeIndex(data []byte) (*TargetIndex, error) {
	return DecodeIndexSized(data, -1)
}

// DecodeIndexSized is DecodeIndex with the node count the caller
// expects (from the graph the artifact is being loaded for); an
// artifact claiming any other size is rejected as corrupt *before*
// vectors are allocated, so a forged or damaged header cannot
// request a multi-gigabyte allocation. wantNodes < 0 skips the check
// (offline tools and tests that have no graph at hand).
func DecodeIndexSized(data []byte, wantNodes int) (*TargetIndex, error) {
	r := &byteReader{data: data}
	var magic [4]byte
	if err := r.read(magic[:]); err != nil || magic != indexMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrIndexCorrupt)
	}
	version, err := r.u16()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrIndexCorrupt)
	}
	if version != indexCodecVersion {
		return nil, fmt.Errorf("%w: file version %d, codec version %d",
			ErrIndexVersion, version, indexCodecVersion)
	}
	// Validate the checksum before trusting any length fields.
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: truncated", ErrIndexCorrupt)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrIndexCorrupt)
	}
	r.limit = len(body)

	idx := &TargetIndex{}
	tgt, err1 := r.u32()
	alpha, err2 := r.u64()
	rmax, err3 := r.u64()
	pushes, err4 := r.u64()
	maxRes, err5 := r.u64()
	nodes, err6 := r.u64()
	if err := errors.Join(err1, err2, err3, err4, err5, err6); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrIndexCorrupt)
	}
	if nodes > uint64(graph.MaxNodeID)+1 {
		return nil, fmt.Errorf("%w: implausible node count %d", ErrIndexCorrupt, nodes)
	}
	if wantNodes >= 0 && nodes != uint64(wantNodes) {
		return nil, fmt.Errorf("%w: artifact spans %d nodes, graph has %d", ErrIndexCorrupt, nodes, wantNodes)
	}
	idx.Target = graph.NodeID(tgt)
	idx.Alpha = math.Float64frombits(alpha)
	idx.RMax = math.Float64frombits(rmax)
	idx.Pushes = int64(pushes)
	idx.MaxResidual = math.Float64frombits(maxRes)
	n := int(nodes)
	if idx.Estimates, err = decodeVector(r, n); err != nil {
		return nil, err
	}
	if idx.Residuals, err = decodeVector(r, n); err != nil {
		return nil, err
	}
	if r.pos != r.limit {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrIndexCorrupt, r.limit-r.pos)
	}
	return idx, nil
}

func decodeVector(r *byteReader, n int) (*Vector, error) {
	repr, err := r.u8()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated vector", ErrIndexCorrupt)
	}
	nnz, err := r.u64()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated vector", ErrIndexCorrupt)
	}
	if nnz > uint64(n) {
		return nil, fmt.Errorf("%w: %d entries in a %d-node vector", ErrIndexCorrupt, nnz, n)
	}
	// Each entry is 12 bytes; a claimed count the buffer cannot hold
	// is rejected before sizing the map by it.
	if nnz*12 > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: %d entries exceed remaining bytes", ErrIndexCorrupt, nnz)
	}
	var x *Vector
	switch repr {
	case reprDense:
		x = &Vector{n: n, dense: make([]float64, n)}
	case reprSparse:
		x = &Vector{n: n, sparse: make(map[graph.NodeID]float64, nnz)}
	default:
		return nil, fmt.Errorf("%w: unknown vector representation %d", ErrIndexCorrupt, repr)
	}
	for i := uint64(0); i < nnz; i++ {
		node, err1 := r.u32()
		bits, err2 := r.u64()
		if err := errors.Join(err1, err2); err != nil {
			return nil, fmt.Errorf("%w: truncated vector entries", ErrIndexCorrupt)
		}
		if node >= uint32(n) {
			return nil, fmt.Errorf("%w: node %d outside [0,%d)", ErrIndexCorrupt, node, n)
		}
		v := graph.NodeID(node)
		if x.dense != nil {
			x.dense[v] = math.Float64frombits(bits)
		} else {
			x.sparse[v] = math.Float64frombits(bits)
		}
	}
	return x, nil
}

// On-disk walk-endpoint format (little endian):
//
//	magic    [4]byte  "BPEP"
//	version  uint16   endpointCodecVersion
//	source   int32
//	alpha    float64
//	seed     int64
//	maxSteps int64
//	walks    int64
//	chunks   int64    must equal numChunks(walks)
//	per chunk (version 2, the written format):
//	  n      uvarint  RLE entries
//	  n × (delta uvarint, count-1 uvarint)
//	per chunk (version 1, still decoded):
//	  n      int64    RLE entries
//	  n × (node int32, count int32)   nodes strictly increasing
//	crc32    uint32   IEEE checksum of everything above
//
// Version 2 exploits the chunk invariants the decoder has always
// enforced: nodes are strictly increasing, so the first entry stores
// the node id itself and every later entry stores the gap minus one
// (node_i − node_{i−1} − 1); counts are at least 1, so count−1 is
// stored. Both go out as unsigned varints. Typical recordings spread
// a chunk's ≤128 endpoints across a large id space with small counts,
// so most entries cost 2-4 bytes instead of v1's fixed 8 — about half
// the file and, downstream, half the disk-tier read bandwidth.
//
// A recorded endpoint set is a pure function of (graph structure,
// source, alpha, seed, maxSteps, walks) — the same purity that makes
// reverse-push indexes safe to persist — so the header echoes every
// parameter and loaders reject a file whose echo differs from the
// request. Like the index format, the trailing checksum plus the
// version field make loads corruption-tolerant: a damaged artifact
// fails to decode, the caller re-walks and overwrites, and a bad file
// can cost time, never correctness. Decoding yields the same
// in-memory per-chunk sorted counts for either version, and fold
// order is untouched — a reused v1 recording stays bit-identical.

// endpointCodecVersion is the version EncodeEndpoints writes; the
// decoder additionally reads endpointCodecV1 files (pre-existing
// artifacts stay servable across the codec upgrade). Any other
// version fails with ErrEndpointsVersion.
const (
	endpointCodecV1      uint16 = 1
	endpointCodecVersion uint16 = 2
)

var endpointMagic = [4]byte{'B', 'P', 'E', 'P'}

// ErrEndpointsVersion reports an endpoint artifact written by a
// different codec version. Loaders treat it as a miss and re-walk.
var ErrEndpointsVersion = errors.New("bippr: endpoint artifact version mismatch")

// ErrEndpointsCorrupt reports an endpoint artifact that failed
// structural or checksum validation. Loaders treat it as a miss and
// re-walk.
var ErrEndpointsCorrupt = errors.New("bippr: endpoint artifact corrupt")

// EndpointArtifact couples a recorded endpoint set with the walk
// parameters it was recorded under — the codec's unit of persistence.
// The walk count lives in Set.Walks.
type EndpointArtifact struct {
	Source   graph.NodeID
	Alpha    float64
	Seed     int64
	MaxSteps int
	Set      *EndpointSet
}

// EncodeEndpoints serializes a recorded walk pass into the versioned
// binary artifact format above (version 2, delta-varint entries).
func EncodeEndpoints(a EndpointArtifact) ([]byte, error) {
	buf, err := encodeEndpointHeader(a, endpointCodecVersion)
	if err != nil {
		return nil, err
	}
	for _, chunk := range a.Set.chunks {
		writeUvarint(buf, uint64(len(chunk)))
		prev := graph.NodeID(-1)
		for _, e := range chunk {
			// Strictly increasing nodes: the gap is at least 1, so
			// store gap−1 (and the raw id for the first entry).
			writeUvarint(buf, uint64(uint32(e.Node-prev))-1)
			writeUvarint(buf, uint64(uint32(e.Count))-1)
			prev = e.Node
		}
	}
	writeU32(buf, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes(), nil
}

// EncodeEndpointsV1 serializes a recorded walk pass in the legacy
// fixed-width version-1 layout. New recordings always persist as
// version 2; this encoder exists so mixed-version disk tiers can be
// constructed — the version-negotiation tests and the ep-codec
// ablation's size comparison — and so pre-upgrade artifacts remain a
// reproducible fixture.
func EncodeEndpointsV1(a EndpointArtifact) ([]byte, error) {
	buf, err := encodeEndpointHeader(a, endpointCodecV1)
	if err != nil {
		return nil, err
	}
	for _, chunk := range a.Set.chunks {
		writeU64(buf, uint64(len(chunk)))
		for _, e := range chunk {
			writeU32(buf, uint32(e.Node))
			writeU32(buf, uint32(e.Count))
		}
	}
	writeU32(buf, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes(), nil
}

// encodeEndpointHeader validates the artifact and writes the shared
// header — identical across codec versions, so version negotiation is
// purely about the chunk payload encoding.
func encodeEndpointHeader(a EndpointArtifact, version uint16) (*bytes.Buffer, error) {
	if a.Set == nil || a.Set.Walks <= 0 {
		return nil, fmt.Errorf("bippr: cannot encode empty endpoint set")
	}
	if len(a.Set.chunks) != numChunks(a.Set.Walks) {
		return nil, fmt.Errorf("bippr: endpoint set has %d chunks for %d walks, want %d",
			len(a.Set.chunks), a.Set.Walks, numChunks(a.Set.Walks))
	}
	var buf bytes.Buffer
	buf.Write(endpointMagic[:])
	writeU16(&buf, version)
	writeU32(&buf, uint32(a.Source))
	writeU64(&buf, math.Float64bits(a.Alpha))
	writeU64(&buf, uint64(a.Seed))
	writeU64(&buf, uint64(a.MaxSteps))
	writeU64(&buf, uint64(a.Set.Walks))
	writeU64(&buf, uint64(len(a.Set.chunks)))
	return &buf, nil
}

// DecodeEndpoints parses an artifact written by EncodeEndpoints,
// without bounding node ids (offline tools and tests that have no
// graph at hand).
func DecodeEndpoints(data []byte) (EndpointArtifact, error) {
	return DecodeEndpointsSized(data, -1)
}

// DecodeEndpointsSized is DecodeEndpoints with the node count of the
// graph the artifact is being loaded for: any recorded endpoint id at
// or past wantNodes rejects the artifact as corrupt, so a damaged or
// misplaced file can never index out of a weight vector's bounds.
// wantNodes < 0 skips the check. Structural damage yields
// ErrEndpointsCorrupt and a version change ErrEndpointsVersion, so
// callers can uniformly fall back to re-walking.
func DecodeEndpointsSized(data []byte, wantNodes int) (EndpointArtifact, error) {
	var a EndpointArtifact
	r := &byteReader{data: data}
	var magic [4]byte
	if err := r.read(magic[:]); err != nil || magic != endpointMagic {
		return a, fmt.Errorf("%w: bad magic", ErrEndpointsCorrupt)
	}
	version, err := r.u16()
	if err != nil {
		return a, fmt.Errorf("%w: truncated header", ErrEndpointsCorrupt)
	}
	if version != endpointCodecV1 && version != endpointCodecVersion {
		return a, fmt.Errorf("%w: file version %d, codec version %d",
			ErrEndpointsVersion, version, endpointCodecVersion)
	}
	// Validate the checksum before trusting any length fields.
	if len(data) < 8 {
		return a, fmt.Errorf("%w: truncated", ErrEndpointsCorrupt)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return a, fmt.Errorf("%w: checksum mismatch", ErrEndpointsCorrupt)
	}
	r.limit = len(body)

	source, err1 := r.u32()
	alpha, err2 := r.u64()
	seed, err3 := r.u64()
	maxSteps, err4 := r.u64()
	walks, err5 := r.u64()
	chunks, err6 := r.u64()
	if err := errors.Join(err1, err2, err3, err4, err5, err6); err != nil {
		return a, fmt.Errorf("%w: truncated header", ErrEndpointsCorrupt)
	}
	if walks == 0 || walks > MaxWalks {
		return a, fmt.Errorf("%w: implausible walk count %d", ErrEndpointsCorrupt, walks)
	}
	if maxSteps > 1<<32 {
		return a, fmt.Errorf("%w: implausible step cap %d", ErrEndpointsCorrupt, maxSteps)
	}
	if chunks != uint64(numChunks(int(walks))) {
		return a, fmt.Errorf("%w: %d chunks for %d walks, want %d",
			ErrEndpointsCorrupt, chunks, walks, numChunks(int(walks)))
	}
	a.Source = graph.NodeID(source)
	a.Alpha = math.Float64frombits(alpha)
	a.Seed = int64(seed)
	a.MaxSteps = int(maxSteps)
	set := &EndpointSet{Walks: int(walks), chunks: make([][]EndpointCount, chunks)}
	for c := range set.chunks {
		var chunk []EndpointCount
		if version == endpointCodecV1 {
			chunk, err = decodeChunkV1(r, int(walks), c, wantNodes)
		} else {
			chunk, err = decodeChunkV2(r, int(walks), c, wantNodes)
		}
		if err != nil {
			return a, err
		}
		set.chunks[c] = chunk
	}
	if r.pos != r.limit {
		return a, fmt.Errorf("%w: %d trailing bytes", ErrEndpointsCorrupt, r.limit-r.pos)
	}
	a.Set = set
	return a, nil
}

// decodeChunkV1 parses one fixed-width legacy chunk.
func decodeChunkV1(r *byteReader, walks, c, wantNodes int) ([]EndpointCount, error) {
	n, err := r.u64()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated chunk header", ErrEndpointsCorrupt)
	}
	// A chunk records at most one endpoint per walk; each entry is
	// 8 bytes, so a claimed count the buffer cannot hold is
	// rejected before allocating for it.
	if n > uint64(chunkCount(walks, c)) || n*8 > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: chunk %d claims %d endpoints", ErrEndpointsCorrupt, c, n)
	}
	chunk := make([]EndpointCount, n)
	var total int64
	for i := range chunk {
		node, err1 := r.u32()
		count, err2 := r.u32()
		if err := errors.Join(err1, err2); err != nil {
			return nil, fmt.Errorf("%w: truncated chunk entries", ErrEndpointsCorrupt)
		}
		if wantNodes >= 0 && node >= uint32(wantNodes) {
			return nil, fmt.Errorf("%w: node %d outside [0,%d)", ErrEndpointsCorrupt, node, wantNodes)
		}
		if i > 0 && graph.NodeID(node) <= chunk[i-1].Node {
			return nil, fmt.Errorf("%w: chunk %d nodes not strictly increasing", ErrEndpointsCorrupt, c)
		}
		if count == 0 || int64(count) > int64(chunkCount(walks, c)) {
			return nil, fmt.Errorf("%w: chunk %d implausible count %d", ErrEndpointsCorrupt, c, count)
		}
		total += int64(count)
		chunk[i] = EndpointCount{Node: graph.NodeID(node), Count: int32(count)}
	}
	if total > int64(chunkCount(walks, c)) {
		return nil, fmt.Errorf("%w: chunk %d records %d endpoints for %d walks",
			ErrEndpointsCorrupt, c, total, chunkCount(walks, c))
	}
	return chunk, nil
}

// decodeChunkV2 parses one delta-varint chunk, re-accumulating the
// gap-minus-one deltas into the strictly increasing node sequence —
// which makes the ordering invariant free: any decoded sequence is
// strictly increasing by construction, and overflow past the graph or
// id-space bound is what rejects a garbled delta.
func decodeChunkV2(r *byteReader, walks, c, wantNodes int) ([]EndpointCount, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated chunk header", ErrEndpointsCorrupt)
	}
	// Each entry is at least two varint bytes, so a claimed count the
	// buffer cannot hold is rejected before allocating for it.
	if n > uint64(chunkCount(walks, c)) || n*2 > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: chunk %d claims %d endpoints", ErrEndpointsCorrupt, c, n)
	}
	chunk := make([]EndpointCount, n)
	var total int64
	node := int64(-1)
	for i := range chunk {
		delta, err1 := r.uvarint()
		count, err2 := r.uvarint()
		if err := errors.Join(err1, err2); err != nil {
			return nil, fmt.Errorf("%w: truncated chunk entries", ErrEndpointsCorrupt)
		}
		node += int64(delta) + 1
		limit := int64(graph.MaxNodeID) + 1
		if wantNodes >= 0 {
			limit = int64(wantNodes)
		}
		if delta > uint64(graph.MaxNodeID) || node >= limit {
			return nil, fmt.Errorf("%w: node %d outside [0,%d)", ErrEndpointsCorrupt, node, limit)
		}
		if count+1 > uint64(chunkCount(walks, c)) {
			return nil, fmt.Errorf("%w: chunk %d implausible count %d", ErrEndpointsCorrupt, c, count+1)
		}
		total += int64(count) + 1
		chunk[i] = EndpointCount{Node: graph.NodeID(node), Count: int32(count) + 1}
	}
	if total > int64(chunkCount(walks, c)) {
		return nil, fmt.Errorf("%w: chunk %d records %d endpoints for %d walks",
			ErrEndpointsCorrupt, c, total, chunkCount(walks, c))
	}
	return chunk, nil
}

// --- little-endian helpers over bytes.Buffer / []byte ---

func writeU16(buf *bytes.Buffer, x uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], x)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, x uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], x)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, x uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	buf.Write(b[:])
}

func writeUvarint(buf *bytes.Buffer, x uint64) {
	var b [binary.MaxVarintLen64]byte
	buf.Write(b[:binary.PutUvarint(b[:], x)])
}

// byteReader is a bounds-checked cursor over the artifact bytes;
// limit excludes the checksum trailer once it has been validated.
type byteReader struct {
	data  []byte
	pos   int
	limit int
}

func (r *byteReader) remaining() int {
	limit := r.limit
	if limit == 0 {
		limit = len(r.data)
	}
	return limit - r.pos
}

func (r *byteReader) read(dst []byte) error {
	if r.remaining() < len(dst) {
		return fmt.Errorf("%w: short read", ErrIndexCorrupt)
	}
	copy(dst, r.data[r.pos:])
	r.pos += len(dst)
	return nil
}

func (r *byteReader) u8() (uint8, error) {
	var b [1]byte
	err := r.read(b[:])
	return b[0], err
}

func (r *byteReader) u16() (uint16, error) {
	var b [2]byte
	err := r.read(b[:])
	return binary.LittleEndian.Uint16(b[:]), err
}

func (r *byteReader) u32() (uint32, error) {
	var b [4]byte
	err := r.read(b[:])
	return binary.LittleEndian.Uint32(b[:]), err
}

func (r *byteReader) u64() (uint64, error) {
	var b [8]byte
	err := r.read(b[:])
	return binary.LittleEndian.Uint64(b[:]), err
}

// uvarint reads one unsigned varint without crossing the reader's
// limit; a truncated or over-long (>10 byte) encoding is an error.
func (r *byteReader) uvarint() (uint64, error) {
	end := r.pos + r.remaining()
	x, n := binary.Uvarint(r.data[r.pos:end])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrIndexCorrupt)
	}
	r.pos += n
	return x, nil
}
