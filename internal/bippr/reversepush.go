package bippr

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/obs"
)

// TargetIndex is the outcome of a reverse push towards one target:
// the local approximation of the full PPR column π(·,target).
//
// The push maintains, for every node s of the graph, the invariant
//
//	π(s,t) = Estimates.Get(s) + Σ_v π(s,v)·Residuals.Get(v)
//
// and terminates when every residual is strictly below the rmax it
// was run with, so Estimates.Get(s) ≤ π(s,t) < Estimates.Get(s) + rmax
// (because Σ_v π(s,v) ≤ 1).
//
// Both vectors are stored sparsely on large graphs (see Storage), so a
// cached index costs memory proportional to the nodes the push
// touched, not to graph size.
type TargetIndex struct {
	// Target is the node the index answers queries about.
	Target graph.NodeID
	// Alpha is the damping (continue) probability the index was built
	// with.
	Alpha float64
	// RMax is the residual threshold the index was built with.
	RMax float64
	// Estimates lower-bounds π(·, Target) per node.
	Estimates *Vector
	// Residuals holds the mass not yet pushed per node; all entries
	// are strictly below RMax.
	Residuals *Vector
	// Pushes is the number of push operations performed.
	Pushes int64
	// MaxResidual is the largest remaining residual (< RMax).
	MaxResidual float64
}

// cancelEvery is how many push operations pass between context
// checks.
const cancelEvery = 1 << 14

// ReversePush computes an approximate Personalized PageRank column
// towards target by local backward push over g's in-CSR (Andersen et
// al. 2007; Lofgren & Goel 2013). alpha is the damping (continue)
// probability; rmax the residual threshold (see TargetIndex). Storage
// is chosen automatically: dense arrays on small graphs, sparse maps
// on large ones.
//
// Work is local to the in-neighborhood of the target: the total push
// cost is O(Σ_pushed indeg) and independent of graph size for
// moderate rmax, which is what makes target and pair queries cheap on
// large graphs.
func ReversePush(ctx context.Context, g *graph.Graph, target graph.NodeID, alpha, rmax float64) (*TargetIndex, error) {
	return ReversePushStored(ctx, g, target, alpha, rmax, StorageAuto)
}

// ReversePushStored is ReversePush with an explicit index
// representation, used by benchmarks and equivalence tests. The push
// performs identical float operations in identical order under every
// Storage, so the resulting indexes are bit-identical; only memory
// layout differs.
//
// When the graph carries a layout view (see graph.Layout), the
// frontier runs entirely in the remapped id space — hubs packed at
// the low end, so the queue's repeated returns to high-degree nodes
// touch a compact prefix of the in-CSR instead of scattering — and
// the result vectors are translated back to original ids before
// return. Remapping changes the order residual mass accumulates, so
// a mapped and a direct push agree to the rmax guarantee (both
// satisfy the TargetIndex invariant), not bit-for-bit; within either
// mode all Storage choices remain bit-identical.
func ReversePushStored(ctx context.Context, g *graph.Graph, target graph.NodeID, alpha, rmax float64, storage Storage) (*TargetIndex, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("bippr: alpha=%v outside (0,1)", alpha)
	}
	if rmax <= 0 {
		return nil, fmt.Errorf("bippr: rmax=%v must be positive", rmax)
	}
	if !g.ValidNode(target) {
		return nil, fmt.Errorf("bippr: target node %d not in graph (N=%d)", target, g.NumNodes())
	}

	// Instrumentation sits at the run boundary: one span, one histogram
	// observe and two counter adds per push run, nothing inside the
	// push loop.
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "reverse_push")
	defer span.End()

	var idx *TargetIndex
	var err error
	if lay := g.Layout(); lay != nil {
		if zip := lay.CompressedIn(); zip != nil {
			// The graph crossed the compression threshold at build:
			// stream delta-varint rows through pooled decode scratch
			// instead of walking the raw remapped arrays. Decoded rows
			// are identical to the raw ones, so this path is
			// bit-identical to the mappedAdj push (test-pinned).
			za := newZipAdj(lay, zip)
			idx, err = pushLoop(ctx, za, g.NumNodes(), lay.ToNew(target), alpha, rmax, storage)
			za.release()
		} else {
			idx, err = pushLoop(ctx, mappedAdj{lay}, g.NumNodes(), lay.ToNew(target), alpha, rmax, storage)
		}
		if err == nil {
			idx.Estimates = remapVector(idx.Estimates, lay)
			idx.Residuals = remapVector(idx.Residuals, lay)
			idx.Target = target
		}
	} else {
		idx, err = pushLoop(ctx, directAdj{g}, g.NumNodes(), target, alpha, rmax, storage)
	}
	if err != nil {
		return nil, err
	}

	span.SetMetric("pushes", float64(idx.Pushes))
	span.SetMetric("max_residual", idx.MaxResidual)
	if m := metrics.Load(); m != nil {
		m.pushRuns.Inc()
		m.pushOps.Add(idx.Pushes)
		m.pushSeconds.ObserveSince(start)
	}
	return idx, nil
}

// adjacency is the in-neighborhood view the push loop walks: the
// graph's own CSR, the layout's remapped copy, or the layout's
// delta-varint compressed copy decoded through pooled scratch.
// pushLoop is generic over the concrete view so each instantiation
// compiles to direct array walks — no interface dispatch on the
// innermost loop. outRecip exposes the view's reciprocal out-degree
// table when it has one; a non-nil table makes the view eligible for
// the blocked inner kernel (see pushNeighborsBlocked).
type adjacency interface {
	in(v graph.NodeID) []graph.NodeID
	outDegree(v graph.NodeID) int
	outRecip() []float64
}

type directAdj struct{ g *graph.Graph }

func (a directAdj) in(v graph.NodeID) []graph.NodeID { return a.g.In(v) }
func (a directAdj) outDegree(v graph.NodeID) int     { return a.g.OutDegree(v) }
func (a directAdj) outRecip() []float64              { return nil }

type mappedAdj struct{ l *graph.Layout }

func (a mappedAdj) in(v graph.NodeID) []graph.NodeID { return a.l.In(v) }
func (a mappedAdj) outDegree(v graph.NodeID) int     { return a.l.OutDegree(v) }
func (a mappedAdj) outRecip() []float64              { return a.l.OutRecip() }

// zipAdj walks the layout's compressed in-CSR: each row is decoded
// into the view's scratch slice, which is pooled across push runs and
// pre-grown to the longest row, so steady-state decoding allocates
// nothing. The decoded row holds exactly the ids the raw remapped
// arrays hold, and out-degrees come from the same layout table, so a
// compressed push performs float operations identical to a mappedAdj
// push — bit-identical indexes, test-pinned.
type zipAdj struct {
	l       *graph.Layout
	zip     *graph.CompressedCSR
	scratch []graph.NodeID
}

func (a *zipAdj) in(v graph.NodeID) []graph.NodeID {
	a.scratch = a.zip.DecodeRow(v, a.scratch[:0])
	return a.scratch
}
func (a *zipAdj) outDegree(v graph.NodeID) int { return a.l.OutDegree(v) }
func (a *zipAdj) outRecip() []float64          { return a.l.OutRecip() }

// zipScratchPool pools row-decode scratch slices across push runs.
var zipScratchPool = sync.Pool{New: func() any { return new([]graph.NodeID) }}

// newZipAdj borrows a pooled scratch for one push run over zip,
// growing it to the longest row once so DecodeRow never reallocates.
func newZipAdj(l *graph.Layout, zip *graph.CompressedCSR) *zipAdj {
	scratch := *zipScratchPool.Get().(*[]graph.NodeID)
	if cap(scratch) < zip.MaxRowLen() {
		scratch = make([]graph.NodeID, 0, zip.MaxRowLen())
	}
	return &zipAdj{l: l, zip: zip, scratch: scratch}
}

// release returns the scratch to the pool.
func (a *zipAdj) release() {
	scratch := a.scratch[:0]
	a.scratch = nil
	zipScratchPool.Put(&scratch)
}

// pushBlock is the blocked inner kernel's batch width: 64 neighbors
// fill a few cache lines of ids and one line-friendly stack array of
// scaled contributions — small enough to stay register/L1-resident,
// large enough to amortize the loop split.
const pushBlock = 64

// pushLoop is the reverse-push worklist over one adjacency view; node
// ids are whatever space the view speaks.
//
// The neighbor scatter runs one of two inner kernels. The exact
// kernel divides v's residual by each in-neighbor's out-degree, one
// branchy iteration per edge. The blocked kernel — selected when the
// view carries a reciprocal table and the hot-path config allows it —
// processes neighbors in pushBlock-wide batches: a branch-light
// compute pass multiplies the residual by precomputed 1/outdeg into a
// stack array (no division, no queue logic, so the CPU pipelines the
// row walk), then an apply pass accumulates and enqueues in the same
// per-neighbor order the exact kernel uses. Multiplying by a rounded
// reciprocal instead of dividing perturbs each contribution by ≤1
// ulp, so blocked and exact pushes agree to the rmax invariant
// (within 2·rmax — TestPushBlockedWithinRMax), not bit-for-bit;
// within either kernel, all Storage choices and the compressed/raw
// row sources remain bit-identical because the sequence of
// Vector/queue operations is unchanged.
func pushLoop[A adjacency](ctx context.Context, adj A, n int, target graph.NodeID, alpha, rmax float64, storage Storage) (*TargetIndex, error) {
	idx := &TargetIndex{
		Target:    target,
		Alpha:     alpha,
		RMax:      rmax,
		Estimates: newVector(n, storage),
		Residuals: newVector(n, storage),
	}
	stop := 1 - alpha
	res := idx.Residuals
	est := idx.Estimates
	rec := adj.outRecip()
	if !graph.HotPath().PushBlocked() {
		rec = nil
	}
	if rec != nil && res.dense != nil && est.dense != nil {
		// Dense storage (small graphs, or StorageDense): run the fully
		// specialized worklist — same operations in the same order, all
		// through direct array access. (A storage that is dense here
		// implies newNodeSet would be dense too; see newVector.)
		if err := pushWorklistDense(ctx, adj, idx, rec, n, target, rmax); err != nil {
			return nil, err
		}
		idx.MaxResidual = res.Max()
		return idx, nil
	}

	res.add(target, 1)
	var queue []graph.NodeID
	inQueue := newNodeSet(n, storage)
	if res.Get(target) >= rmax {
		queue = append(queue, target)
		inQueue.insert(target)
	}

	head := 0
	for head < len(queue) {
		// Compact the consumed front once it dominates the slice, so
		// the backing array is bounded by peak queue depth rather than
		// total enqueues (tight rmax re-enqueues nodes many times).
		if head > 1024 && head*2 > len(queue) {
			queue = append(queue[:0], queue[head:]...)
			head = 0
		}
		v := queue[head]
		head++
		inQueue.remove(v)

		idx.Pushes++
		if idx.Pushes%cancelEvery == 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("bippr: reverse push cancelled: %w", ctx.Err())
			default:
			}
		}

		r := res.Get(v)
		if r < rmax {
			continue
		}
		res.zero(v)
		est.add(v, stop*r)

		// π(s,v) = (1−α)·1[s=v] + α·Σ_{u∈In(v)} π(s,u)/outdeg(u):
		// move v's residual to its in-neighbors, scaled by their
		// out-degrees. Dangling nodes never appear as in-neighbors, so
		// outdeg(u) ≥ 1 here.
		if rec != nil {
			scale := alpha * r
			row := adj.in(v)
			if rd, qd := res.dense, inQueue.dense; rd != nil && qd != nil {
				var vals [pushBlock]float64
				for len(row) > 0 {
					blk := row
					if len(blk) > pushBlock {
						blk = row[:pushBlock]
					}
					row = row[len(blk):]
					for j, u := range blk {
						vals[j] = rd[u] + scale*rec[u]
					}
					for j, u := range blk {
						nv := vals[j]
						rd[u] = nv
						if nv >= rmax && !qd[u] {
							qd[u] = true
							queue = append(queue, u)
						}
					}
				}
				continue
			}
			for len(row) > 0 {
				blk := row
				if len(blk) > pushBlock {
					blk = row[:pushBlock]
				}
				row = row[len(blk):]
				for _, u := range blk {
					if res.addGet(u, scale*rec[u]) >= rmax && !inQueue.has(u) {
						inQueue.insert(u)
						queue = append(queue, u)
					}
				}
			}
			continue
		}
		for _, u := range adj.in(v) {
			res.add(u, alpha*r/float64(adj.outDegree(u)))
			if !inQueue.has(u) && res.Get(u) >= rmax {
				inQueue.insert(u)
				queue = append(queue, u)
			}
		}
	}

	idx.MaxResidual = res.Max()
	return idx, nil
}

// pushWorklistDense is the blocked kernel's dense-storage worklist:
// the exact sequence of operations pushLoop performs — queue pop,
// residual harvest, est accumulation, blocked reciprocal scatter,
// threshold-first enqueue — with every Vector/nodeSet probe replaced
// by a direct array access. On sparse-heavy catalog graphs the
// per-push prologue is a large share of the runtime, so specializing
// only the inner scatter leaves most of the win on the table; this
// loop removes the method-call overhead end to end. Float operations
// are identical to the generic blocked path (add is add, on an array
// instead of through a nil-check), keeping all dense/sparse/auto
// blocked pushes bit-identical.
func pushWorklistDense[A adjacency](ctx context.Context, adj A, idx *TargetIndex, rec []float64, n int, target graph.NodeID, rmax float64) error {
	alpha := idx.Alpha
	stop := 1 - alpha
	rd := idx.Residuals.dense
	ed := idx.Estimates.dense
	qd := make([]bool, n)

	rd[target] += 1
	var queue []graph.NodeID
	if rd[target] >= rmax {
		queue = append(queue, target)
		qd[target] = true
	}

	head := 0
	pushes := idx.Pushes
	var vals [pushBlock]float64
	for head < len(queue) {
		if head > 1024 && head*2 > len(queue) {
			queue = append(queue[:0], queue[head:]...)
			head = 0
		}
		v := queue[head]
		head++
		qd[v] = false

		pushes++
		if pushes%cancelEvery == 0 {
			select {
			case <-ctx.Done():
				idx.Pushes = pushes
				return fmt.Errorf("bippr: reverse push cancelled: %w", ctx.Err())
			default:
			}
		}

		r := rd[v]
		if r < rmax {
			continue
		}
		rd[v] = 0
		ed[v] += stop * r

		scale := alpha * r
		row := adj.in(v)
		for len(row) > 0 {
			blk := row
			if len(blk) > pushBlock {
				blk = row[:pushBlock]
			}
			row = row[len(blk):]
			// Compute pass: rows are deduplicated, so ids within a
			// block are distinct and the read-then-store split is safe.
			for j, u := range blk {
				vals[j] = rd[u] + scale*rec[u]
			}
			for j, u := range blk {
				nv := vals[j]
				rd[u] = nv
				if nv >= rmax && !qd[u] {
					qd[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	idx.Pushes = pushes
	return nil
}

// remapVector translates a layout-space vector back to original node
// ids, preserving the representation (a dense index stays dense, a
// sparse one sparse) so Storage round-trips exactly as before.
func remapVector(x *Vector, lay *graph.Layout) *Vector {
	out := &Vector{n: x.n, auto: x.auto}
	if x.dense != nil {
		out.dense = make([]float64, x.n)
		for v, val := range x.dense {
			if val != 0 {
				out.dense[lay.ToOld(graph.NodeID(v))] = val
			}
		}
		return out
	}
	out.sparse = make(map[graph.NodeID]float64, len(x.sparse))
	for v, val := range x.sparse {
		out.sparse[lay.ToOld(v)] = val
	}
	return out
}
