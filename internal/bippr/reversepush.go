package bippr

import (
	"context"
	"fmt"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// TargetIndex is the outcome of a reverse push towards one target:
// the local approximation of the full PPR column π(·,target).
//
// The push maintains, for every node s of the graph, the invariant
//
//	π(s,t) = Estimates[s] + Σ_v π(s,v)·Residuals[v]
//
// and terminates when every residual is strictly below the rmax it
// was run with, so Estimates[s] ≤ π(s,t) < Estimates[s] + rmax
// (because Σ_v π(s,v) ≤ 1).
type TargetIndex struct {
	// Target is the node the index answers queries about.
	Target graph.NodeID
	// Alpha is the damping (continue) probability the index was built
	// with.
	Alpha float64
	// RMax is the residual threshold the index was built with.
	RMax float64
	// Estimates[s] lower-bounds π(s, Target).
	Estimates []float64
	// Residuals[v] is the mass not yet pushed from v; all entries are
	// strictly below RMax.
	Residuals []float64
	// Pushes is the number of push operations performed.
	Pushes int64
	// MaxResidual is the largest remaining residual (< RMax).
	MaxResidual float64
}

// cancelEvery is how many push operations pass between context
// checks.
const cancelEvery = 1 << 14

// ReversePush computes an approximate Personalized PageRank column
// towards target by local backward push over g's in-CSR (Andersen et
// al. 2007; Lofgren & Goel 2013). alpha is the damping (continue)
// probability; rmax the residual threshold (see TargetIndex).
//
// Work is local to the in-neighborhood of the target: the total push
// cost is O(Σ_pushed indeg) and independent of graph size for
// moderate rmax, which is what makes target and pair queries cheap on
// large graphs.
func ReversePush(ctx context.Context, g *graph.Graph, target graph.NodeID, alpha, rmax float64) (*TargetIndex, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("bippr: alpha=%v outside (0,1)", alpha)
	}
	if rmax <= 0 {
		return nil, fmt.Errorf("bippr: rmax=%v must be positive", rmax)
	}
	if !g.ValidNode(target) {
		return nil, fmt.Errorf("bippr: target node %d not in graph (N=%d)", target, g.NumNodes())
	}

	n := g.NumNodes()
	idx := &TargetIndex{
		Target:    target,
		Alpha:     alpha,
		RMax:      rmax,
		Estimates: make([]float64, n),
		Residuals: make([]float64, n),
	}
	stop := 1 - alpha
	res := idx.Residuals
	est := idx.Estimates

	res[target] = 1
	var queue []graph.NodeID
	inQueue := make([]bool, n)
	if res[target] >= rmax {
		queue = append(queue, target)
		inQueue[target] = true
	}

	head := 0
	for head < len(queue) {
		// Compact the consumed front once it dominates the slice, so
		// the backing array is bounded by peak queue depth rather than
		// total enqueues (tight rmax re-enqueues nodes many times).
		if head > 1024 && head*2 > len(queue) {
			queue = append(queue[:0], queue[head:]...)
			head = 0
		}
		v := queue[head]
		head++
		inQueue[v] = false

		idx.Pushes++
		if idx.Pushes%cancelEvery == 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("bippr: reverse push cancelled: %w", ctx.Err())
			default:
			}
		}

		r := res[v]
		if r < rmax {
			continue
		}
		res[v] = 0
		est[v] += stop * r

		// π(s,v) = (1−α)·1[s=v] + α·Σ_{u∈In(v)} π(s,u)/outdeg(u):
		// move v's residual to its in-neighbors, scaled by their
		// out-degrees. Dangling nodes never appear as in-neighbors, so
		// outdeg(u) ≥ 1 here.
		for _, u := range g.In(v) {
			res[u] += alpha * r / float64(g.OutDegree(u))
			if !inQueue[u] && res[u] >= rmax {
				inQueue[u] = true
				queue = append(queue, u)
			}
		}
	}

	for _, r := range res {
		if r > idx.MaxResidual {
			idx.MaxResidual = r
		}
	}
	return idx, nil
}
