package bippr

import (
	"context"
	"fmt"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/obs"
)

// TargetIndex is the outcome of a reverse push towards one target:
// the local approximation of the full PPR column π(·,target).
//
// The push maintains, for every node s of the graph, the invariant
//
//	π(s,t) = Estimates.Get(s) + Σ_v π(s,v)·Residuals.Get(v)
//
// and terminates when every residual is strictly below the rmax it
// was run with, so Estimates.Get(s) ≤ π(s,t) < Estimates.Get(s) + rmax
// (because Σ_v π(s,v) ≤ 1).
//
// Both vectors are stored sparsely on large graphs (see Storage), so a
// cached index costs memory proportional to the nodes the push
// touched, not to graph size.
type TargetIndex struct {
	// Target is the node the index answers queries about.
	Target graph.NodeID
	// Alpha is the damping (continue) probability the index was built
	// with.
	Alpha float64
	// RMax is the residual threshold the index was built with.
	RMax float64
	// Estimates lower-bounds π(·, Target) per node.
	Estimates *Vector
	// Residuals holds the mass not yet pushed per node; all entries
	// are strictly below RMax.
	Residuals *Vector
	// Pushes is the number of push operations performed.
	Pushes int64
	// MaxResidual is the largest remaining residual (< RMax).
	MaxResidual float64
}

// cancelEvery is how many push operations pass between context
// checks.
const cancelEvery = 1 << 14

// ReversePush computes an approximate Personalized PageRank column
// towards target by local backward push over g's in-CSR (Andersen et
// al. 2007; Lofgren & Goel 2013). alpha is the damping (continue)
// probability; rmax the residual threshold (see TargetIndex). Storage
// is chosen automatically: dense arrays on small graphs, sparse maps
// on large ones.
//
// Work is local to the in-neighborhood of the target: the total push
// cost is O(Σ_pushed indeg) and independent of graph size for
// moderate rmax, which is what makes target and pair queries cheap on
// large graphs.
func ReversePush(ctx context.Context, g *graph.Graph, target graph.NodeID, alpha, rmax float64) (*TargetIndex, error) {
	return ReversePushStored(ctx, g, target, alpha, rmax, StorageAuto)
}

// ReversePushStored is ReversePush with an explicit index
// representation, used by benchmarks and equivalence tests. The push
// performs identical float operations in identical order under every
// Storage, so the resulting indexes are bit-identical; only memory
// layout differs.
//
// When the graph carries a layout view (see graph.Layout), the
// frontier runs entirely in the remapped id space — hubs packed at
// the low end, so the queue's repeated returns to high-degree nodes
// touch a compact prefix of the in-CSR instead of scattering — and
// the result vectors are translated back to original ids before
// return. Remapping changes the order residual mass accumulates, so
// a mapped and a direct push agree to the rmax guarantee (both
// satisfy the TargetIndex invariant), not bit-for-bit; within either
// mode all Storage choices remain bit-identical.
func ReversePushStored(ctx context.Context, g *graph.Graph, target graph.NodeID, alpha, rmax float64, storage Storage) (*TargetIndex, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("bippr: alpha=%v outside (0,1)", alpha)
	}
	if rmax <= 0 {
		return nil, fmt.Errorf("bippr: rmax=%v must be positive", rmax)
	}
	if !g.ValidNode(target) {
		return nil, fmt.Errorf("bippr: target node %d not in graph (N=%d)", target, g.NumNodes())
	}

	// Instrumentation sits at the run boundary: one span, one histogram
	// observe and two counter adds per push run, nothing inside the
	// push loop.
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "reverse_push")
	defer span.End()

	var idx *TargetIndex
	var err error
	if lay := g.Layout(); lay != nil {
		idx, err = pushLoop(ctx, mappedAdj{lay}, g.NumNodes(), lay.ToNew(target), alpha, rmax, storage)
		if err == nil {
			idx.Estimates = remapVector(idx.Estimates, lay)
			idx.Residuals = remapVector(idx.Residuals, lay)
			idx.Target = target
		}
	} else {
		idx, err = pushLoop(ctx, directAdj{g}, g.NumNodes(), target, alpha, rmax, storage)
	}
	if err != nil {
		return nil, err
	}

	span.SetMetric("pushes", float64(idx.Pushes))
	span.SetMetric("max_residual", idx.MaxResidual)
	if m := metrics.Load(); m != nil {
		m.pushRuns.Inc()
		m.pushOps.Add(idx.Pushes)
		m.pushSeconds.ObserveSince(start)
	}
	return idx, nil
}

// adjacency is the in-neighborhood view the push loop walks: the
// graph's own CSR, or the layout's remapped copy. pushLoop is generic
// over the concrete view so each instantiation compiles to direct
// array walks — no interface dispatch on the innermost loop.
type adjacency interface {
	in(v graph.NodeID) []graph.NodeID
	outDegree(v graph.NodeID) int
}

type directAdj struct{ g *graph.Graph }

func (a directAdj) in(v graph.NodeID) []graph.NodeID { return a.g.In(v) }
func (a directAdj) outDegree(v graph.NodeID) int     { return a.g.OutDegree(v) }

type mappedAdj struct{ l *graph.Layout }

func (a mappedAdj) in(v graph.NodeID) []graph.NodeID { return a.l.In(v) }
func (a mappedAdj) outDegree(v graph.NodeID) int     { return a.l.OutDegree(v) }

// pushLoop is the reverse-push worklist over one adjacency view; node
// ids are whatever space the view speaks.
func pushLoop[A adjacency](ctx context.Context, adj A, n int, target graph.NodeID, alpha, rmax float64, storage Storage) (*TargetIndex, error) {
	idx := &TargetIndex{
		Target:    target,
		Alpha:     alpha,
		RMax:      rmax,
		Estimates: newVector(n, storage),
		Residuals: newVector(n, storage),
	}
	stop := 1 - alpha
	res := idx.Residuals
	est := idx.Estimates

	res.add(target, 1)
	var queue []graph.NodeID
	inQueue := newNodeSet(n, storage)
	if res.Get(target) >= rmax {
		queue = append(queue, target)
		inQueue.insert(target)
	}

	head := 0
	for head < len(queue) {
		// Compact the consumed front once it dominates the slice, so
		// the backing array is bounded by peak queue depth rather than
		// total enqueues (tight rmax re-enqueues nodes many times).
		if head > 1024 && head*2 > len(queue) {
			queue = append(queue[:0], queue[head:]...)
			head = 0
		}
		v := queue[head]
		head++
		inQueue.remove(v)

		idx.Pushes++
		if idx.Pushes%cancelEvery == 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("bippr: reverse push cancelled: %w", ctx.Err())
			default:
			}
		}

		r := res.Get(v)
		if r < rmax {
			continue
		}
		res.zero(v)
		est.add(v, stop*r)

		// π(s,v) = (1−α)·1[s=v] + α·Σ_{u∈In(v)} π(s,u)/outdeg(u):
		// move v's residual to its in-neighbors, scaled by their
		// out-degrees. Dangling nodes never appear as in-neighbors, so
		// outdeg(u) ≥ 1 here.
		for _, u := range adj.in(v) {
			res.add(u, alpha*r/float64(adj.outDegree(u)))
			if !inQueue.has(u) && res.Get(u) >= rmax {
				inQueue.insert(u)
				queue = append(queue, u)
			}
		}
	}

	idx.MaxResidual = res.Max()
	return idx, nil
}

// remapVector translates a layout-space vector back to original node
// ids, preserving the representation (a dense index stays dense, a
// sparse one sparse) so Storage round-trips exactly as before.
func remapVector(x *Vector, lay *graph.Layout) *Vector {
	out := &Vector{n: x.n, auto: x.auto}
	if x.dense != nil {
		out.dense = make([]float64, x.n)
		for v, val := range x.dense {
			if val != 0 {
				out.dense[lay.ToOld(graph.NodeID(v))] = val
			}
		}
		return out
	}
	out.sparse = make(map[graph.NodeID]float64, len(x.sparse))
	for v, val := range x.sparse {
		out.sparse[lay.ToOld(v)] = val
	}
	return out
}
