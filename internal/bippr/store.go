package bippr

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"sync"
	"sync/atomic"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// Tier reports where a target index came from.
type Tier int

const (
	// TierComputed: the caller paid for the reverse push itself.
	TierComputed Tier = iota
	// TierMemory: served from the in-memory LRU (or by riding a
	// concurrent caller's in-flight computation).
	TierMemory
	// TierDisk: deserialized from a persisted artifact — no reverse
	// push ran anywhere.
	TierDisk
)

// String names the tier for logs and tables.
func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	default:
		return "computed"
	}
}

// StoreStats is a snapshot of an IndexStore's counters. Hits split by
// tier so operators can tell a restart-warm disk cache from a hot
// in-memory one.
type StoreStats struct {
	// MemoryHits counts queries served by the LRU or by riding a
	// concurrent in-flight computation.
	MemoryHits int64 `json:"memory_hits"`
	// DiskHits counts queries served by deserializing a persisted
	// index — the restart-warm path.
	DiskHits int64 `json:"disk_hits"`
	// Misses counts reverse pushes actually paid.
	Misses int64 `json:"misses"`
	// DiskWrites / DiskBytesWritten count persisted artifacts.
	DiskWrites       int64 `json:"disk_writes"`
	DiskBytesWritten int64 `json:"disk_bytes_written"`
	// DiskErrors counts failed loads of an existing artifact
	// (corruption, version skew) and failed saves. Each one is
	// absorbed as a miss or a skipped write, never an error to the
	// query.
	DiskErrors int64 `json:"disk_errors"`
	// MemoryEntries is the LRU's current size.
	MemoryEntries int `json:"memory_entries"`
}

// IndexStore resolves (graph, target, alpha, rmax) to a reverse-push
// target index, computing on miss with single-flight deduplication.
// Implementations must be safe for concurrent use, and the returned
// index is shared: callers must not mutate it.
type IndexStore interface {
	// GetOrCompute returns the index, where it came from, and any
	// error. compute is invoked at most once per key across all
	// concurrent callers.
	GetOrCompute(ctx context.Context, g *graph.Graph, target graph.NodeID, alpha, rmax float64,
		compute func() (*TargetIndex, error)) (*TargetIndex, Tier, error)
	// Stats returns a snapshot of the store's counters.
	Stats() StoreStats
}

// DiskTier is the persistence contract the tiered store writes
// through, implemented by the platform's datastore. graphFP is a
// structural graph fingerprint (see graph.Fingerprint) and key a
// filesystem-safe index key; Load returns an error satisfying
// os.IsNotExist semantics (any error is treated as a miss) when the
// artifact does not exist.
type DiskTier interface {
	LoadIndex(graphFP, key string) ([]byte, error)
	SaveIndex(graphFP, key string, data []byte) error
}

// MemoryStore is the single-tier IndexStore: the LRU index cache that
// predates persistence, unchanged in behavior. It backs estimators
// for one-shot CLI runs and tests, where disk round-trips buy
// nothing.
type MemoryStore struct {
	cache *indexCache
}

// NewMemoryStore returns a memory-only IndexStore holding up to
// capacity indexes (capacity <= 0 selects DefaultCacheSize).
func NewMemoryStore(capacity int) *MemoryStore {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &MemoryStore{cache: newIndexCache(capacity)}
}

// GetOrCompute implements IndexStore.
func (m *MemoryStore) GetOrCompute(ctx context.Context, g *graph.Graph, target graph.NodeID, alpha, rmax float64,
	compute func() (*TargetIndex, error)) (*TargetIndex, Tier, error) {
	key := indexKey{g: g, target: target, alpha: alpha, rmax: rmax}
	idx, cached, err := m.cache.getOrCompute(ctx, key, compute)
	tier := TierComputed
	if cached {
		tier = TierMemory
	}
	return idx, tier, err
}

// Stats implements IndexStore.
func (m *MemoryStore) Stats() StoreStats {
	hits, misses, size := m.cache.stats()
	return StoreStats{MemoryHits: hits, Misses: misses, MemoryEntries: size}
}

// TieredStore is the two-tier IndexStore: the memory LRU in front of
// persisted index artifacts. A miss in both tiers runs the reverse
// push once (single-flight across tiers and callers), persists the
// artifact, and populates the LRU — so a restarted server finds its
// warm cache on disk and pays deserialization, not recomputation.
//
// Disk failures never fail a query: an unreadable, corrupt, or
// version-skewed artifact is a miss (recompute and overwrite), and a
// failed save only loses future reuse. Both are counted in
// StoreStats.DiskErrors.
type TieredStore struct {
	cache *indexCache
	disk  DiskTier

	diskHits   atomic.Int64
	misses     atomic.Int64
	diskWrites atomic.Int64
	diskBytes  atomic.Int64
	diskErrors atomic.Int64
}

// maxMemoizedFingerprints bounds a fingerprint memo. Live graphs
// number at most one per dataset; past this size the map mostly holds
// dead pointers, and dropping it wholesale both frees them and lets
// the handful of live entries re-memoize on next use.
const maxMemoizedFingerprints = 64

// fingerprintMemo memoizes graph.Fingerprint per immutable graph: the
// hash is O(N+M) and the pointer is the scheduler's dataset identity.
// The map is bounded (maxMemoizedFingerprints) so it cannot pin
// retired graphs — e.g. pre-re-upload versions of a dataset — in
// memory forever.
type fingerprintMemo struct {
	mu  sync.Mutex
	fps map[*graph.Graph]string
}

func newFingerprintMemo() *fingerprintMemo {
	return &fingerprintMemo{fps: make(map[*graph.Graph]string)}
}

// sharedFingerprints is the package-wide memo every fingerprint-keyed
// cache (the tiered index store, the endpoint cache) resolves through:
// a fingerprint is a pure function of an immutable graph, so one
// bounded memo is canonical — an estimator whose index store and
// endpoint cache both touch a graph hashes its CSR once, not once per
// cache.
var sharedFingerprints = newFingerprintMemo()

// get resolves the memoized structural fingerprint of g.
func (m *fingerprintMemo) get(g *graph.Graph) string {
	m.mu.Lock()
	fp, ok := m.fps[g]
	m.mu.Unlock()
	if ok {
		return fp
	}
	// Hash outside the lock: the CSR walk is O(N+M) and must not
	// stall unrelated graphs' queries. Concurrent first-touchers of
	// one graph may compute it twice; the results are identical.
	fp = graph.Fingerprint(g)
	m.mu.Lock()
	if len(m.fps) >= maxMemoizedFingerprints {
		clear(m.fps)
	}
	m.fps[g] = fp
	m.mu.Unlock()
	return fp
}

// NewTieredStore builds a two-tier store: an LRU of capacity indexes
// (<= 0 selects DefaultCacheSize) over the given disk tier. A nil
// disk degrades to memory-only behavior.
func NewTieredStore(capacity int, disk DiskTier) *TieredStore {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &TieredStore{
		cache: newIndexCache(capacity),
		disk:  disk,
	}
}

// IndexFileKey is the filesystem-safe artifact key of one target
// index: the target id plus the exact float bits of alpha and rmax,
// so distinct parameters can never collide.
func IndexFileKey(target graph.NodeID, alpha, rmax float64) string {
	return fmt.Sprintf("t%d-a%016x-r%016x", target, math.Float64bits(alpha), math.Float64bits(rmax))
}

func (t *TieredStore) fingerprint(g *graph.Graph) string {
	return sharedFingerprints.get(g)
}

// GetOrCompute implements IndexStore: memory LRU, then disk, then the
// reverse push. The disk probe and the push both run under the same
// single-flight slot, so concurrent misses share one disk read or one
// computation.
func (t *TieredStore) GetOrCompute(ctx context.Context, g *graph.Graph, target graph.NodeID, alpha, rmax float64,
	compute func() (*TargetIndex, error)) (*TargetIndex, Tier, error) {
	key := indexKey{g: g, target: target, alpha: alpha, rmax: rmax}
	tier := TierComputed
	idx, cached, err := t.cache.getOrCompute(ctx, key, func() (*TargetIndex, error) {
		if idx := t.loadFromDisk(g, target, alpha, rmax); idx != nil {
			tier = TierDisk
			return idx, nil
		}
		idx, err := compute()
		if err != nil {
			return nil, err
		}
		t.misses.Add(1)
		t.saveToDisk(g, target, alpha, rmax, idx)
		return idx, nil
	})
	if err != nil {
		return nil, TierComputed, err
	}
	if cached {
		tier = TierMemory
	}
	return idx, tier, nil
}

// loadFromDisk probes the disk tier; any failure — absent file,
// truncation, checksum mismatch, version skew, or parameter/shape
// mismatch against the request — returns nil and the caller
// recomputes.
func (t *TieredStore) loadFromDisk(g *graph.Graph, target graph.NodeID, alpha, rmax float64) *TargetIndex {
	if t.disk == nil {
		return nil
	}
	data, err := t.disk.LoadIndex(t.fingerprint(g), IndexFileKey(target, alpha, rmax))
	if err != nil {
		// Absent artifact = ordinary cold miss. Anything else (EACCES,
		// EIO) means the disk tier is sick — still a miss, but counted
		// so a dead tier is visible in the stats instead of masquerading
		// as an eternally cold cache.
		if !errors.Is(err, fs.ErrNotExist) {
			t.diskErrors.Add(1)
		}
		return nil
	}
	// Sizing the decode by the requesting graph keeps a forged or
	// damaged header from triggering a huge allocation.
	idx, err := DecodeIndexSized(data, g.NumNodes())
	if err != nil {
		t.diskErrors.Add(1)
		return nil
	}
	// The fingerprint and file key should make these impossible; they
	// guard against a hand-edited or misplaced artifact.
	if idx.Target != target || idx.Alpha != alpha || idx.RMax != rmax {
		t.diskErrors.Add(1)
		return nil
	}
	t.diskHits.Add(1)
	return idx
}

// saveToDisk persists a freshly computed index, best-effort.
func (t *TieredStore) saveToDisk(g *graph.Graph, target graph.NodeID, alpha, rmax float64, idx *TargetIndex) {
	if t.disk == nil {
		return
	}
	data, err := EncodeIndex(idx)
	if err != nil {
		t.diskErrors.Add(1)
		return
	}
	if err := t.disk.SaveIndex(t.fingerprint(g), IndexFileKey(target, alpha, rmax), data); err != nil {
		t.diskErrors.Add(1)
		return
	}
	t.diskWrites.Add(1)
	t.diskBytes.Add(int64(len(data)))
}

// Stats implements IndexStore. Misses counts successful computations
// (the LRU's own miss counter also includes disk hits and failed
// computes, so the store keeps its own).
func (t *TieredStore) Stats() StoreStats {
	hits, _, size := t.cache.stats()
	return StoreStats{
		MemoryHits:       hits,
		DiskHits:         t.diskHits.Load(),
		Misses:           t.misses.Load(),
		DiskWrites:       t.diskWrites.Load(),
		DiskBytesWritten: t.diskBytes.Load(),
		DiskErrors:       t.diskErrors.Load(),
		MemoryEntries:    size,
	}
}
