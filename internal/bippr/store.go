package bippr

import (
	"context"
	"fmt"
	"math"
	"sync"

	"github.com/cyclerank/cyclerank-go/internal/artifact"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/obs"
)

// Tier re-exports the generic artifact tier: where a cached value
// came from. TierComputed means the caller paid for the work itself,
// TierMemory an LRU hit (or a ride on a concurrent caller's in-flight
// computation), TierDisk a deserialized persisted artifact.
type Tier = artifact.Tier

const (
	TierComputed = artifact.TierComputed
	TierMemory   = artifact.TierMemory
	TierDisk     = artifact.TierDisk
)

// StoreStats is a snapshot of an IndexStore's counters. Hits split by
// tier so operators can tell a restart-warm disk cache from a hot
// in-memory one.
type StoreStats struct {
	// MemoryHits counts queries served by the LRU or by riding a
	// concurrent in-flight computation.
	MemoryHits int64 `json:"memory_hits"`
	// DiskHits counts queries served by deserializing a persisted
	// index — the restart-warm path.
	DiskHits int64 `json:"disk_hits"`
	// Misses counts reverse pushes actually paid.
	Misses int64 `json:"misses"`
	// DiskWrites / DiskBytesWritten count persisted artifacts.
	DiskWrites       int64 `json:"disk_writes"`
	DiskBytesWritten int64 `json:"disk_bytes_written"`
	// DiskErrors counts failed loads of an existing artifact
	// (corruption, version skew) and failed saves. Each one is
	// absorbed as a miss or a skipped write, never an error to the
	// query.
	DiskErrors int64 `json:"disk_errors"`
	// MemoryEntries is the LRU's current size.
	MemoryEntries int `json:"memory_entries"`
}

// storeStatsFrom maps the generic cache counters onto the index
// store's stats shape.
func storeStatsFrom(s artifact.Stats) StoreStats {
	return StoreStats{
		MemoryHits:       s.MemoryHits,
		DiskHits:         s.DiskHits,
		Misses:           s.Misses,
		DiskWrites:       s.DiskWrites,
		DiskBytesWritten: s.DiskBytesWritten,
		DiskErrors:       s.DiskErrors,
		MemoryEntries:    s.MemoryEntries,
	}
}

// IndexStore resolves (graph, target, alpha, rmax) to a reverse-push
// target index, computing on miss with single-flight deduplication.
// Implementations must be safe for concurrent use, and the returned
// index is shared: callers must not mutate it.
type IndexStore interface {
	// GetOrCompute returns the index, where it came from, and any
	// error. compute is invoked at most once per key across all
	// concurrent callers.
	GetOrCompute(ctx context.Context, g *graph.Graph, target graph.NodeID, alpha, rmax float64,
		compute func() (*TargetIndex, error)) (*TargetIndex, Tier, error)
	// Stats returns a snapshot of the store's counters.
	Stats() StoreStats
}

// DiskTier is the persistence contract the tiered store writes
// through, implemented by the platform's datastore. graphFP is a
// structural graph fingerprint (see graph.Fingerprint) and key a
// filesystem-safe index key; Load returns an error satisfying
// os.IsNotExist semantics (any error is treated as a miss) when the
// artifact does not exist.
type DiskTier interface {
	LoadIndex(graphFP, key string) ([]byte, error)
	SaveIndex(graphFP, key string, data []byte) error
}

// indexDisk adapts the index-specific DiskTier onto the generic
// artifact.DiskTier the shared cache machinery speaks.
type indexDisk struct{ d DiskTier }

func (a indexDisk) Load(dir, key string) ([]byte, error) { return a.d.LoadIndex(dir, key) }
func (a indexDisk) Save(dir, key string, data []byte) error {
	return a.d.SaveIndex(dir, key, data)
}

// indexKey identifies one target index. The graph pointer stands in
// for the dataset name: the scheduler caches one immutable *Graph per
// dataset, so pointer identity tracks dataset identity — and a
// re-uploaded dataset arrives as a new pointer, naturally invalidating
// every entry of the old graph (they age out of the LRU). The disk
// address derived from the key (see indexConfig) replaces the pointer
// with the structural fingerprint, so persisted artifacts stay valid
// across restarts and across structurally identical re-uploads.
type indexKey struct {
	g      *graph.Graph
	target graph.NodeID
	alpha  float64
	rmax   float64
}

// indexConfig parameterizes the generic artifact cache for target
// indexes: fingerprint+parameter disk addressing, the versioned+CRC
// index codec, and decode-time validation of the artifact against the
// requesting key (size the decode by the requesting graph so a forged
// or damaged header cannot trigger a huge allocation, then reject a
// hand-edited or misplaced artifact whose echoed parameters differ).
func indexConfig(capacity int, disk DiskTier) artifact.Config[indexKey, *TargetIndex] {
	cfg := artifact.Config[indexKey, *TargetIndex]{Name: "target_index", Capacity: capacity}
	if disk == nil {
		return cfg
	}
	cfg.Disk = indexDisk{disk}
	cfg.DiskKey = func(k indexKey) (string, string) {
		return sharedFingerprints.get(k.g), IndexFileKey(k.target, k.alpha, k.rmax)
	}
	cfg.Encode = func(_ indexKey, idx *TargetIndex) ([]byte, error) { return EncodeIndex(idx) }
	cfg.Decode = func(k indexKey, data []byte) (*TargetIndex, error) {
		idx, err := DecodeIndexSized(data, k.g.NumNodes())
		if err != nil {
			return nil, err
		}
		if idx.Target != k.target || idx.Alpha != k.alpha || idx.RMax != k.rmax {
			return nil, fmt.Errorf("%w: artifact parameters do not match the request", ErrIndexCorrupt)
		}
		return idx, nil
	}
	return cfg
}

// MemoryStore is the single-tier IndexStore: the LRU index cache that
// predates persistence, unchanged in behavior. It backs estimators
// for one-shot CLI runs and tests, where disk round-trips buy
// nothing.
type MemoryStore struct {
	cache *artifact.Cache[indexKey, *TargetIndex]
}

// NewMemoryStore returns a memory-only IndexStore holding up to
// capacity indexes (capacity <= 0 selects DefaultCacheSize).
func NewMemoryStore(capacity int) *MemoryStore {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &MemoryStore{cache: artifact.New(indexConfig(capacity, nil))}
}

// GetOrCompute implements IndexStore.
func (m *MemoryStore) GetOrCompute(ctx context.Context, g *graph.Graph, target graph.NodeID, alpha, rmax float64,
	compute func() (*TargetIndex, error)) (*TargetIndex, Tier, error) {
	return m.cache.GetOrCompute(ctx, indexKey{g: g, target: target, alpha: alpha, rmax: rmax}, compute)
}

// Stats implements IndexStore.
func (m *MemoryStore) Stats() StoreStats {
	return storeStatsFrom(m.cache.Stats())
}

// MetricsRegistry returns the store's cache metrics registry.
func (m *MemoryStore) MetricsRegistry() *obs.Registry { return m.cache.MetricsRegistry() }

// TieredStore is the two-tier IndexStore: the memory LRU in front of
// persisted index artifacts, built on the generic artifact cache. A
// miss in both tiers runs the reverse push once (single-flight across
// tiers and callers), persists the artifact, and populates the LRU —
// so a restarted server finds its warm cache on disk and pays
// deserialization, not recomputation.
//
// Disk failures never fail a query: an unreadable, corrupt, or
// version-skewed artifact is a miss (recompute and overwrite), and a
// failed save only loses future reuse. Both are counted in
// StoreStats.DiskErrors.
type TieredStore struct {
	cache *artifact.Cache[indexKey, *TargetIndex]
}

// maxMemoizedFingerprints bounds a fingerprint memo. Live graphs
// number at most one per dataset; past this size the map mostly holds
// dead pointers, and dropping it wholesale both frees them and lets
// the handful of live entries re-memoize on next use.
const maxMemoizedFingerprints = 64

// fingerprintMemo memoizes graph.Fingerprint per immutable graph: the
// hash is O(N+M) and the pointer is the scheduler's dataset identity.
// The map is bounded (maxMemoizedFingerprints) so it cannot pin
// retired graphs — e.g. pre-re-upload versions of a dataset — in
// memory forever.
type fingerprintMemo struct {
	mu  sync.Mutex
	fps map[*graph.Graph]string
}

func newFingerprintMemo() *fingerprintMemo {
	return &fingerprintMemo{fps: make(map[*graph.Graph]string)}
}

// sharedFingerprints is the package-wide memo every fingerprint-keyed
// cache (the tiered index store, the endpoint cache) resolves through:
// a fingerprint is a pure function of an immutable graph, so one
// bounded memo is canonical — an estimator whose index store and
// endpoint cache both touch a graph hashes its CSR once, not once per
// cache.
var sharedFingerprints = newFingerprintMemo()

// get resolves the memoized structural fingerprint of g.
func (m *fingerprintMemo) get(g *graph.Graph) string {
	m.mu.Lock()
	fp, ok := m.fps[g]
	m.mu.Unlock()
	if ok {
		return fp
	}
	// Hash outside the lock: the CSR walk is O(N+M) and must not
	// stall unrelated graphs' queries. Concurrent first-touchers of
	// one graph may compute it twice; the results are identical.
	fp = graph.Fingerprint(g)
	m.mu.Lock()
	if len(m.fps) >= maxMemoizedFingerprints {
		clear(m.fps)
	}
	m.fps[g] = fp
	m.mu.Unlock()
	return fp
}

// NewTieredStore builds a two-tier store: an LRU of capacity indexes
// (<= 0 selects DefaultCacheSize) over the given disk tier. A nil
// disk degrades to memory-only behavior.
func NewTieredStore(capacity int, disk DiskTier) *TieredStore {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &TieredStore{cache: artifact.New(indexConfig(capacity, disk))}
}

// IndexFileKey is the filesystem-safe artifact key of one target
// index: the target id plus the exact float bits of alpha and rmax,
// so distinct parameters can never collide.
func IndexFileKey(target graph.NodeID, alpha, rmax float64) string {
	return fmt.Sprintf("t%d-a%016x-r%016x", target, math.Float64bits(alpha), math.Float64bits(rmax))
}

// GetOrCompute implements IndexStore: memory LRU, then disk, then the
// reverse push. The disk probe and the push both run under the same
// single-flight slot, so concurrent misses share one disk read or one
// computation.
func (t *TieredStore) GetOrCompute(ctx context.Context, g *graph.Graph, target graph.NodeID, alpha, rmax float64,
	compute func() (*TargetIndex, error)) (*TargetIndex, Tier, error) {
	return t.cache.GetOrCompute(ctx, indexKey{g: g, target: target, alpha: alpha, rmax: rmax}, compute)
}

// Stats implements IndexStore. Misses counts successful computations.
func (t *TieredStore) Stats() StoreStats {
	return storeStatsFrom(t.cache.Stats())
}

// MetricsRegistry returns the store's cache metrics registry.
func (t *TieredStore) MetricsRegistry() *obs.Registry { return t.cache.MetricsRegistry() }

// StoreMetricsRegistry extracts the metrics registry of an IndexStore
// when its implementation exports one (both package stores do) — how
// serving layers merge a store they only hold by interface into a
// scrape endpoint. Returns nil otherwise.
func StoreMetricsRegistry(s IndexStore) *obs.Registry {
	if m, ok := s.(interface{ MetricsRegistry() *obs.Registry }); ok {
		return m.MetricsRegistry()
	}
	return nil
}
