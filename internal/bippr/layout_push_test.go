package bippr

import (
	"context"
	"math/rand"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// TestLayoutPushMappedVsDirect compares the layout-mapped push (the
// default on every built graph) against the direct original-id push on
// a WithoutLayout copy. Remapping reorders residual accumulation, so
// the two are not bit-identical — but both must satisfy the
// TargetIndex invariant, which bounds any node's estimate within rmax
// of the true π, hence within 2·rmax of each other; residuals must
// stay below rmax in both.
func TestLayoutPushMappedVsDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5; trial++ {
		n := 50 + rng.Intn(150)
		g := randomGraph(t, n, n*5, rng.Int63(), trial%2 == 0)
		if g.Layout() == nil {
			t.Fatal("built graph has no layout; dispatch cannot be exercised")
		}
		bare := g.WithoutLayout()
		target := graph.NodeID(rng.Intn(n))
		const rmax = 1e-4

		mapped, err := ReversePush(context.Background(), g, target, 0.85, rmax)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := ReversePush(context.Background(), bare, target, 0.85, rmax)
		if err != nil {
			t.Fatal(err)
		}
		if mapped.MaxResidual >= rmax || direct.MaxResidual >= rmax {
			t.Fatalf("trial %d: max residuals %v / %v not below rmax %v",
				trial, mapped.MaxResidual, direct.MaxResidual, rmax)
		}
		if mapped.Target != target {
			t.Fatalf("trial %d: mapped push reported target %d, want %d", trial, mapped.Target, target)
		}
		for s := 0; s < n; s++ {
			dm := mapped.Estimates.Get(graph.NodeID(s)) - direct.Estimates.Get(graph.NodeID(s))
			if dm > 2*rmax || dm < -2*rmax {
				t.Errorf("trial %d: estimate at node %d differs by %v (> 2·rmax)", trial, s, dm)
			}
		}
		// The mapped residual vector is in original id space: folding it
		// with per-node weights must index the same nodes the direct
		// vector does. A translation bug would shift mass between nodes
		// and blow well past the invariant bound.
		mapped.Residuals.ForEach(func(v graph.NodeID, val float64) bool {
			if val >= rmax {
				t.Errorf("trial %d: residual %v at node %d not below rmax", trial, val, v)
			}
			return true
		})
	}
}

// TestLayoutPushStorageBitIdentical re-pins the storage equivalence on
// the mapped path explicitly: with the layout engaged, dense, sparse,
// and auto pushes still perform identical float operations in
// identical order.
func TestLayoutPushStorageBitIdentical(t *testing.T) {
	g := randomGraph(t, 300, 2100, 29, true)
	dense, err := ReversePushStored(context.Background(), g, 7, 0.85, 1e-4, StorageDense)
	if err != nil {
		t.Fatal(err)
	}
	for _, storage := range []Storage{StorageSparse, StorageAuto} {
		got, err := ReversePushStored(context.Background(), g, 7, 0.85, 1e-4, storage)
		if err != nil {
			t.Fatal(err)
		}
		if got.Pushes != dense.Pushes || got.MaxResidual != dense.MaxResidual {
			t.Fatalf("storage %d: pushes/maxres %d/%v, dense %d/%v",
				storage, got.Pushes, got.MaxResidual, dense.Pushes, dense.MaxResidual)
		}
		for s := 0; s < g.NumNodes(); s++ {
			v := graph.NodeID(s)
			if got.Estimates.Get(v) != dense.Estimates.Get(v) || got.Residuals.Get(v) != dense.Residuals.Get(v) {
				t.Fatalf("storage %d: node %d differs from dense push", storage, s)
			}
		}
	}
}
