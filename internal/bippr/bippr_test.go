package bippr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// buildGraph assembles a graph from explicit edges.
func buildGraph(t *testing.T, n int, edges [][2]int32) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomGraph generates a deterministic random digraph. When cyclic,
// a Hamiltonian cycle guarantees every node has an out-edge (no
// dangling nodes).
func randomGraph(t *testing.T, n, extraEdges int, seed int64, cyclic bool) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	if cyclic {
		for v := 0; v < n; v++ {
			b.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%n))
		}
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// exactForward computes π(source,·) exactly (to truncation K) under
// the package's convention: damping alpha, dangling nodes absorb.
// π(s,v) = (1−α)·Σ_k α^k · Pr[walk is at v after k steps].
func exactForward(g *graph.Graph, source graph.NodeID, alpha float64) []float64 {
	n := g.NumNodes()
	cur := make([]float64, n)
	next := make([]float64, n)
	out := make([]float64, n)
	cur[source] = 1
	weight := 1 - alpha
	for k := 0; k < 400; k++ {
		for v := 0; v < n; v++ {
			out[v] += weight * cur[v]
		}
		weight *= alpha
		for i := range next {
			next[i] = 0
		}
		for v := 0; v < n; v++ {
			if cur[v] == 0 {
				continue
			}
			succ := g.Out(graph.NodeID(v))
			if len(succ) == 0 {
				continue // absorbed
			}
			share := cur[v] / float64(len(succ))
			for _, w := range succ {
				next[w] += share
			}
		}
		cur, next = next, cur
	}
	return out
}

func TestReversePushResidualInvariant(t *testing.T) {
	const (
		alpha = 0.85
		rmax  = 1e-3
	)
	graphs := map[string]*graph.Graph{
		"random-cyclic":   randomGraph(t, 60, 300, 7, true),
		"random-dangling": randomGraph(t, 60, 150, 11, false),
		"two-cliques": buildGraph(t, 6, [][2]int32{
			{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0},
			{3, 4}, {4, 3}, {2, 3}, {4, 0}, {4, 5},
		}),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			for _, target := range []graph.NodeID{0, graph.NodeID(g.NumNodes() / 2)} {
				idx, err := ReversePush(context.Background(), g, target, alpha, rmax)
				if err != nil {
					t.Fatal(err)
				}
				// Termination invariant: every residual strictly below rmax.
				idx.Residuals.ForEach(func(v graph.NodeID, r float64) bool {
					if r >= rmax {
						t.Errorf("target %d: residual[%d]=%g ≥ rmax=%g", target, v, r, rmax)
					}
					if r < 0 {
						t.Errorf("target %d: negative residual[%d]=%g", target, v, r)
					}
					return true
				})
				if idx.MaxResidual >= rmax {
					t.Errorf("target %d: MaxResidual=%g ≥ rmax=%g", target, idx.MaxResidual, rmax)
				}
				// Exactness invariant: for every source s,
				// π(s,t) = Estimates[s] + Σ_v π(s,v)·Residuals[v].
				for _, s := range []graph.NodeID{0, 1, graph.NodeID(g.NumNodes() - 1)} {
					forward := exactForward(g, s, alpha)
					reconstructed := idx.Estimates.Get(s)
					for v, r := range idx.Residuals.Dense() {
						reconstructed += forward[v] * r
					}
					if diff := math.Abs(forward[target] - reconstructed); diff > 1e-9 {
						t.Errorf("target %d source %d: invariant violated by %g (π=%g reconstructed=%g)",
							target, s, diff, forward[target], reconstructed)
					}
				}
			}
		})
	}
}

func TestReversePushEstimateBound(t *testing.T) {
	const (
		alpha = 0.85
		rmax  = 5e-4
	)
	g := randomGraph(t, 80, 400, 3, true)
	target := graph.NodeID(17)
	idx, err := ReversePush(context.Background(), g, target, alpha, rmax)
	if err != nil {
		t.Fatal(err)
	}
	// Additive bound: Estimates[s] ≤ π(s,t) < Estimates[s] + rmax.
	for s := 0; s < g.NumNodes(); s++ {
		exact := exactForward(g, graph.NodeID(s), alpha)[target]
		est := idx.Estimates.Get(graph.NodeID(s))
		if est > exact+1e-9 {
			t.Errorf("source %d: estimate %g exceeds exact %g", s, est, exact)
		}
		if exact-est >= rmax {
			t.Errorf("source %d: error %g ≥ rmax %g", s, exact-est, rmax)
		}
	}
}

func TestWalkEstimatorDeterministic(t *testing.T) {
	g := randomGraph(t, 50, 250, 5, true)
	weights := make([]float64, g.NumNodes())
	for i := range weights {
		weights[i] = float64(i%7) / 7
	}
	wv := NewDenseVector(weights)
	a := NewWalkEstimator(g, 0.85, 42, 0)
	b := NewWalkEstimator(g, 0.85, 42, 0)
	// Querying sources in different orders must not change estimates.
	var first [3]float64
	for i, s := range []graph.NodeID{4, 9, 30} {
		v, err := a.EstimateSum(context.Background(), s, 2000, wv, 1)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = v
	}
	for i, s := range []graph.NodeID{30, 9, 4} {
		v, err := b.EstimateSum(context.Background(), s, 2000, wv, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v != first[2-i] {
			t.Errorf("source %d: order-dependent estimate %g vs %g", s, v, first[2-i])
		}
	}
	c := NewWalkEstimator(g, 0.85, 43, 0)
	v, err := c.EstimateSum(context.Background(), 4, 2000, wv, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v == first[0] {
		t.Errorf("different seeds produced identical estimate %g", v)
	}
}

func TestWalkDistributionMatchesExact(t *testing.T) {
	g := randomGraph(t, 30, 150, 9, true)
	src := graph.NodeID(3)
	w := NewWalkEstimator(g, 0.85, 1, 0)
	dist, err := w.Distribution(context.Background(), src, 200000)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactForward(g, src, 0.85)
	for v := range dist {
		if diff := math.Abs(dist[v] - exact[v]); diff > 0.01 {
			t.Errorf("node %d: sampled %g exact %g (diff %g)", v, dist[v], exact[v], diff)
		}
	}
}

// TestBidirectionalAccuracy asserts pair estimates stay within
// tolerance of exact power-iteration PPR. Graphs are dangling-free so
// the package's convention coincides with the forward engines'.
func TestBidirectionalAccuracy(t *testing.T) {
	const tol = 2e-3
	p := Params{Alpha: 0.85, RMax: 1e-3, Walks: 50000, Seed: 1}
	graphs := map[string]*graph.Graph{
		"random-60":  randomGraph(t, 60, 300, 21, true),
		"random-120": randomGraph(t, 120, 500, 22, true),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			for _, pair := range [][2]graph.NodeID{{0, 1}, {5, 40}, {33, 33}, {2, 59}} {
				s, tgt := pair[0], pair[1]
				exact := exactForward(g, s, p.Alpha)[tgt]
				est, err := Bidirectional(context.Background(), g, s, tgt, p)
				if err != nil {
					t.Fatal(err)
				}
				if diff := math.Abs(est.Value - exact); diff > tol {
					t.Errorf("π(%d,%d): bidirectional %g vs exact %g (diff %g > %g)",
						s, tgt, est.Value, exact, diff, tol)
				}
			}
		})
	}
}

func TestTargetRankAdditiveBound(t *testing.T) {
	g := randomGraph(t, 70, 350, 31, true)
	tgt := graph.NodeID(12)
	p := Params{Alpha: 0.85, RMax: 1e-3}
	e := NewEstimator(0)
	res, err := e.TargetRank(context.Background(), g, tgt, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgorithmTarget {
		t.Errorf("algorithm = %q, want %q", res.Algorithm, AlgorithmTarget)
	}
	for s := 0; s < g.NumNodes(); s++ {
		exact := exactForward(g, graph.NodeID(s), p.Alpha)[tgt]
		if err := exact - res.Scores[s]; err < -1e-9 || err >= p.RMax {
			t.Errorf("source %d: score %g, exact %g (error %g outside [0,%g))",
				s, res.Scores[s], exact, err, p.RMax)
		}
	}
	// The target itself receives at least the stop probability.
	if res.Scores[tgt] < 1-p.Alpha-p.RMax {
		t.Errorf("target self-score %g < 1-alpha-rmax", res.Scores[tgt])
	}
}

func TestEstimatorCache(t *testing.T) {
	g := randomGraph(t, 40, 200, 41, true)
	p := Params{Alpha: 0.85, RMax: 1e-3, Walks: 100}
	e := NewEstimator(2)

	est1, err := e.Pair(context.Background(), g, 0, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if est1.FromCache {
		t.Error("first query unexpectedly hit the cache")
	}
	if est1.Pushes == 0 {
		t.Error("first query reported zero pushes")
	}
	est2, err := e.Pair(context.Background(), g, 5, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if !est2.FromCache {
		t.Error("second query to the same target missed the cache")
	}
	if est2.Pushes != 0 {
		t.Errorf("cached query reported %d pushes, want 0", est2.Pushes)
	}

	// Different rmax is a different index.
	est3, err := e.Pair(context.Background(), g, 0, 1, Params{Alpha: 0.85, RMax: 5e-3, Walks: 100})
	if err != nil {
		t.Fatal(err)
	}
	if est3.FromCache {
		t.Error("query with different rmax hit the cache")
	}

	// Capacity 2: inserting a third index evicts the LRU entry
	// (target 1 @ rmax=1e-3, stale since est3 refreshed the other).
	if _, err := e.Pair(context.Background(), g, 0, 7, p); err != nil {
		t.Fatal(err)
	}
	_, _, size := e.CacheStats()
	if size != 2 {
		t.Errorf("cache size %d, want 2", size)
	}
	est4, err := e.Pair(context.Background(), g, 0, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if est4.FromCache {
		t.Error("evicted index still served from cache")
	}
}

func TestEstimatorSingleFlight(t *testing.T) {
	// Concurrent misses for one target must share a single reverse
	// push rather than each running their own.
	g := randomGraph(t, 200, 1200, 51, true)
	p := Params{Alpha: 0.85, RMax: 1e-6, Walks: 50}
	e := NewEstimator(0)
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Pair(context.Background(), g, graph.NodeID(i), 99, p)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	hits, misses, size := e.CacheStats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (single flight)", misses)
	}
	if hits != workers-1 {
		t.Errorf("hits = %d, want %d", hits, workers-1)
	}
	if size != 1 {
		t.Errorf("cache size = %d, want 1", size)
	}
}

func TestGetOrComputeWaiterHonorsOwnContext(t *testing.T) {
	c := NewMemoryStore(4)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = c.GetOrCompute(context.Background(), nil, 1, 0.85, 1e-3, func() (*TargetIndex, error) {
			close(started)
			<-release
			return &TargetIndex{}, nil
		})
	}()
	<-started

	// A waiter with a cancelled context must return promptly instead
	// of blocking on the peer's push.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrCompute(ctx, nil, 1, 0.85, 1e-3, func() (*TargetIndex, error) {
		t.Error("cancelled waiter ran the computation")
		return nil, nil
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter returned %v, want context.Canceled", err)
	}
	close(release)
}

func TestGetOrComputeWaiterRetriesAfterPeerFailure(t *testing.T) {
	c := NewMemoryStore(4)
	release := make(chan struct{})
	started := make(chan struct{})
	peerErr := fmt.Errorf("peer cancelled")
	go func() {
		_, _, _ = c.GetOrCompute(context.Background(), nil, 2, 0.85, 1e-3, func() (*TargetIndex, error) {
			close(started)
			<-release
			return nil, peerErr
		})
	}()
	<-started

	done := make(chan struct{})
	var idx *TargetIndex
	var tier Tier
	var err error
	go func() {
		defer close(done)
		idx, tier, err = c.GetOrCompute(context.Background(), nil, 2, 0.85, 1e-3, func() (*TargetIndex, error) {
			return &TargetIndex{Pushes: 7}, nil
		})
	}()
	close(release) // peer fails; waiter must compute on its own
	<-done
	if err != nil {
		t.Fatalf("waiter failed instead of retrying: %v", err)
	}
	if tier != TierComputed {
		t.Error("retrying waiter reported a cache tier")
	}
	if idx == nil || idx.Pushes != 7 {
		t.Errorf("waiter did not run its own computation: %+v", idx)
	}
}

func TestReversePushDeepQueue(t *testing.T) {
	// A tight rmax forces enough push/re-enqueue churn to exercise the
	// queue's front-compaction path; the accuracy bound must still
	// hold afterwards.
	g := randomGraph(t, 300, 1800, 61, true)
	tgt := graph.NodeID(42)
	const rmax = 1e-12
	idx, err := ReversePush(context.Background(), g, tgt, 0.85, rmax)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Pushes < 20000 {
		t.Fatalf("only %d pushes; graph too easy to stress the queue", idx.Pushes)
	}
	if idx.MaxResidual >= rmax {
		t.Errorf("MaxResidual %g ≥ rmax %g", idx.MaxResidual, rmax)
	}
	// Tolerance is dominated by the dense reference solver's float
	// accumulation, not by rmax, at this precision.
	for _, s := range []graph.NodeID{0, 75, 149} {
		exact := exactForward(g, s, 0.85)[tgt]
		if diff := exact - idx.Estimates.Get(s); diff < -1e-10 || diff >= rmax+1e-10 {
			t.Errorf("source %d: error %g outside [0, rmax)", s, diff)
		}
	}
}

func TestValidation(t *testing.T) {
	g := buildGraph(t, 3, [][2]int32{{0, 1}, {1, 2}, {2, 0}})
	cases := []struct {
		name string
		run  func() error
	}{
		{"bad alpha", func() error {
			_, err := ReversePush(context.Background(), g, 0, 1.5, 1e-3)
			return err
		}},
		{"bad rmax", func() error {
			_, err := ReversePush(context.Background(), g, 0, 0.85, 0)
			return err
		}},
		{"bad target", func() error {
			_, err := ReversePush(context.Background(), g, 99, 0.85, 1e-3)
			return err
		}},
		{"bad source", func() error {
			_, err := Bidirectional(context.Background(), g, -1, 0, Params{})
			return err
		}},
		{"negative walks", func() error {
			_, err := Bidirectional(context.Background(), g, 0, 0, Params{Walks: -1})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.run() == nil {
				t.Error("expected an error")
			}
		})
	}
}

func TestPairDrainedIndexSkipsWalks(t *testing.T) {
	// Target 0 has no in-edges, so the push drains every residual:
	// walks are skipped and the estimate is exact.
	g := buildGraph(t, 2, [][2]int32{{0, 1}})
	est, err := Bidirectional(context.Background(), g, 0, 0, Params{Alpha: 0.85, RMax: 1e-3, Walks: 10})
	if err != nil {
		t.Fatal(err)
	}
	if est.Walks != 0 {
		t.Errorf("drained index still ran %d walks", est.Walks)
	}
	if diff := math.Abs(est.Value - 0.15); diff > 1e-12 {
		t.Errorf("π(0,0) = %g, want exactly the stop probability 0.15", est.Value)
	}
}
