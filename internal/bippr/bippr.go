// Package bippr implements bidirectional Personalized PageRank
// estimation (Lofgren, Banerjee, Goel: "Personalized PageRank
// Estimation and Search: A Bidirectional Approach", WSDM 2016).
//
// Every engine in internal/pagerank answers single-source queries by
// touching a large fraction of the graph. This package answers the
// two complementary questions sublinearly:
//
//   - target queries — "how relevant is every node TO t?" — via
//     ReversePush, a local backward push over the graph's in-CSR that
//     estimates the whole column π(·,t) with additive error below a
//     residual threshold rmax;
//
//   - pair queries — "how relevant is t to s?" — via Bidirectional,
//     which combines a reverse-push target index with
//     deterministically seeded forward random walks from s:
//
//     π(s,t) ≈ p_t(s) + (1/W)·Σ_walks r_t(endpoint)
//
// balancing push cost against walk count through rmax.
//
// The random-surfer convention matches the power-iteration engine:
// Alpha is the damping (continue) probability; the walk stops at the
// current node with probability 1−Alpha. A walk entering a dangling
// node is absorbed there: unlike pagerank.Personalized, mass is not
// returned to the seed, because the reverse formulation must stay
// independent of the (unknown) source. On dangling-free graphs the
// two conventions coincide exactly.
//
// An Estimator wraps both layers behind an IndexStore, so that
// repeated queries against the same (graph, target, alpha, rmax) —
// the common pattern under server traffic — pay the reverse push once
// and only the walks per query. Two stores exist: the in-memory
// single-flight LRU (MemoryStore), and the two-tier TieredStore that
// additionally persists each index as a versioned, checksummed
// artifact through a DiskTier (the platform datastore) — so a
// restarted server finds its warm reverse-push cache on disk and pays
// deserialization instead of recomputation. Corrupt, truncated or
// version-skewed artifacts are treated as misses and recomputed.
//
// Both layers scale past the single-machine defaults: indexes store
// their estimate/residual vectors sparsely on large graphs (memory
// proportional to the nodes the push touched, see Storage), walks can
// be sharded across a GOMAXPROCS-bounded worker pool with bit-identical
// results (Params.Workers), and the walk count can be derived from a
// requested additive error instead of a flat default (Params.Eps,
// WalksForError).
//
// The walk side has its own cross-request cache: walk endpoints depend
// only on the source (the target enters purely through the residual
// weights), so an EndpointCache records one walk pass per (graph
// fingerprint, source, seed, walk parameters) and later queries
// against new targets re-weight the recording instead of re-walking —
// bit-identically, because fresh and recorded chunks fold through the
// same sorted-count summation (Params.ReuseEndpoints).
package bippr

import (
	"context"
	"fmt"
	"math"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/obs"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// Default parameter values applied when Params fields are zero.
const (
	// DefaultAlpha is the damping (continue) probability.
	DefaultAlpha = 0.85
	// DefaultRMax is the reverse-push residual threshold. Estimates
	// carry additive error strictly below DefaultRMax.
	DefaultRMax = 1e-4
	// DefaultWalks is the forward walk count of a pair query.
	DefaultWalks = 10000
	// DefaultSeed seeds the walk RNG, making pair estimates
	// reproducible across runs.
	DefaultSeed = 1
	// DefaultMaxSteps truncates a single walk; at Alpha=0.85 the
	// probability of a walk surviving 100 steps is below 9e-8.
	DefaultMaxSteps = 100
	// DefaultCacheSize is the Estimator's target-index LRU capacity.
	DefaultCacheSize = 32
	// DefaultEndpointCacheSize is the Estimator's walk-endpoint LRU
	// capacity: recorded walk passes, each O(distinct endpoints).
	DefaultEndpointCacheSize = 64
	// DefaultWorkers is the walk worker-pool size. Serial by default:
	// a busy server already runs one task per executor goroutine, so
	// walk-level parallelism is an explicit opt-in (Params.Workers).
	DefaultWorkers = 1
	// DefaultFailureProb is the failure probability behind the
	// adaptive walk count (see WalksForError).
	DefaultFailureProb = 0.01
	// MaxAdaptiveWalks caps the walk count WalksForError may request,
	// bounding the cost of an over-tight Eps.
	MaxAdaptiveWalks = 1 << 23
	// MaxWalks is the largest walk count a single query accepts. The
	// chunked estimator keeps one partial sum per 128 walks, so the
	// cap also bounds that bookkeeping (8 MiB at the cap) and keeps
	// absurd API requests from exhausting memory — they are rejected
	// up front instead.
	MaxWalks = 1 << 27
)

// WalksForError returns the walk count that bounds the Monte-Carlo
// correction term's additive error by eps with probability
// 1−DefaultFailureProb. Each walk's sample is a residual, bounded by
// rmax, so Hoeffding gives
//
//	W = ⌈ rmax² · ln(2/p_fail) / (2·eps²) ⌉
//
// — the rmax/walk-count balance point of Lofgren's bidirectional
// analysis (BiPPR, WSDM 2016 §3): halving rmax quarters the walks the
// same eps needs, trading push work against walk work. The result is
// clamped to [1, MaxAdaptiveWalks].
func WalksForError(rmax, eps float64) int {
	if rmax <= 0 || eps <= 0 {
		return DefaultWalks
	}
	ratio := rmax / eps
	w := math.Ceil(ratio * ratio * math.Log(2/DefaultFailureProb) / 2)
	if w < 1 {
		return 1
	}
	if w > MaxAdaptiveWalks {
		return MaxAdaptiveWalks
	}
	return int(w)
}

// AlgorithmTarget and AlgorithmPair are the ranking.Result algorithm
// names produced by this package.
const (
	AlgorithmTarget = "ppr-target"
	AlgorithmPair   = "bippr-pair"
)

// Params configures both layers of the bidirectional estimator.
type Params struct {
	// Alpha is the damping (continue) probability, in (0,1); default
	// 0.85, matching the power-iteration engine.
	Alpha float64
	// RMax is the reverse-push residual threshold; every node's final
	// residual is strictly below RMax, so target estimates carry
	// additive error below RMax. Smaller is more accurate and pushes
	// longer. Default 1e-4.
	RMax float64
	// Walks is the forward walk count of a pair query (unused by pure
	// target queries). Default 10000; superseded by Eps when set.
	Walks int
	// Eps is the requested additive error of the walk correction term.
	// When positive, the walk count is derived adaptively from RMax
	// and Eps (see WalksForError) instead of using Walks.
	Eps float64
	// Seed seeds the walk RNG deterministically per source. Default 1.
	Seed int64
	// MaxSteps truncates a single walk. Default 100.
	MaxSteps int
	// Workers sizes the walk worker pool of a pair query. Walks are
	// sharded across the pool in deterministically seeded chunks, so
	// estimates are bit-identical for every value. Bounded by
	// GOMAXPROCS; default 1 (serial).
	Workers int
	// ReuseEndpoints opts a pair query into the walk-endpoint cache:
	// the first query from a source records its walk endpoints, and
	// later queries from the same (source, alpha, seed, maxSteps,
	// walks) — typically against *different targets* — re-weight the
	// recording instead of re-walking. Estimates are bit-identical
	// either way; reuse only changes latency and memory. Default off.
	ReuseEndpoints bool
}

// WithDefaults returns p with every zero field replaced by the
// package default — the exact parameter set estimator entry points
// run with. Serving layers that talk to the caches directly (the
// server's startup pre-warm, which records walk passes the same way
// a later query will look them up) use it so their cache keys match
// query-time keys bit for bit.
func (p Params) WithDefaults() Params { return p.withDefaults() }

// withDefaults fills zero fields.
func (p Params) withDefaults() Params {
	if p.Alpha == 0 {
		p.Alpha = DefaultAlpha
	}
	if p.RMax == 0 {
		p.RMax = DefaultRMax
	}
	if p.Eps > 0 {
		// Adaptive budget: eps decides the walk count, replacing the
		// flat default (and any explicit Walks).
		p.Walks = WalksForError(p.RMax, p.Eps)
	} else if p.Walks == 0 {
		p.Walks = DefaultWalks
	}
	if p.Seed == 0 {
		p.Seed = DefaultSeed
	}
	if p.MaxSteps == 0 {
		p.MaxSteps = DefaultMaxSteps
	}
	if p.Workers == 0 {
		p.Workers = DefaultWorkers
	}
	return p
}

// validate checks the filled parameters.
func (p Params) validate() error {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("bippr: alpha=%v outside (0,1)", p.Alpha)
	}
	if p.RMax <= 0 {
		return fmt.Errorf("bippr: rmax=%v must be positive", p.RMax)
	}
	if p.Walks < 0 {
		return fmt.Errorf("bippr: walks=%d must not be negative", p.Walks)
	}
	if p.Walks > MaxWalks {
		return fmt.Errorf("bippr: walks=%d exceeds the cap %d", p.Walks, MaxWalks)
	}
	if p.Eps < 0 {
		return fmt.Errorf("bippr: eps=%v must not be negative", p.Eps)
	}
	if p.MaxSteps < 0 {
		return fmt.Errorf("bippr: max steps=%d must not be negative", p.MaxSteps)
	}
	if p.Workers < 0 {
		return fmt.Errorf("bippr: workers=%d must not be negative", p.Workers)
	}
	return nil
}

// Estimate is the outcome of one bidirectional pair query.
type Estimate struct {
	// Value estimates π(source, target).
	Value float64
	// Pushes is the reverse-push operation count behind the target
	// index (0 when the index came from the cache).
	Pushes int64
	// Walks is the number of forward walks the estimate is based on.
	Walks int
	// FromCache reports whether the target index was reused.
	FromCache bool
	// EndpointsReused reports whether the walk term was re-weighted
	// from recorded endpoints instead of simulating walks.
	EndpointsReused bool
}

// Estimator answers target and pair queries, amortizing reverse
// pushes across queries through an IndexStore — by default the
// in-memory LRU, optionally the two-tier persistent store that also
// survives restarts. It is safe for concurrent use.
type Estimator struct {
	store     IndexStore
	endpoints *EndpointCache
}

// NewEstimator returns an Estimator over a memory-only IndexStore
// holding up to capacity target indexes (capacity <= 0 selects
// DefaultCacheSize), with a default-sized walk-endpoint cache.
func NewEstimator(capacity int) *Estimator {
	return &Estimator{
		store:     NewMemoryStore(capacity),
		endpoints: NewEndpointCache(DefaultEndpointCacheSize),
	}
}

// NewEstimatorWithStore returns an Estimator over an explicit
// IndexStore — the path serving layers use to share one persistent
// two-tier store between the estimator and their stats endpoints. The
// walk-endpoint cache is default-sized; use NewEstimatorWithCaches to
// share that handle too.
func NewEstimatorWithStore(store IndexStore) *Estimator {
	return NewEstimatorWithCaches(store, nil)
}

// NewEstimatorWithCaches returns an Estimator over an explicit
// IndexStore and EndpointCache, so serving layers can surface both
// caches' stats. Nil selects the defaults for either.
func NewEstimatorWithCaches(store IndexStore, endpoints *EndpointCache) *Estimator {
	if store == nil {
		store = NewMemoryStore(0)
	}
	if endpoints == nil {
		endpoints = NewEndpointCache(DefaultEndpointCacheSize)
	}
	return &Estimator{store: store, endpoints: endpoints}
}

// StoreStats returns a snapshot of the underlying IndexStore's
// counters, split by tier.
func (e *Estimator) StoreStats() StoreStats {
	return e.store.Stats()
}

// EndpointStats returns a snapshot of the walk-endpoint cache's
// counters.
func (e *Estimator) EndpointStats() EndpointStats {
	return e.endpoints.Stats()
}

// CacheStats reports the estimator's aggregate hit/miss counters and
// current in-memory size. A hit is any query that did not pay for a
// reverse push itself — an LRU hit, a persisted-index load, or a ride
// on a concurrent in-flight push. StoreStats splits hits by tier.
func (e *Estimator) CacheStats() (hits, misses int64, size int) {
	s := e.store.Stats()
	return s.MemoryHits + s.DiskHits, s.Misses, s.MemoryEntries
}

// Index returns the reverse-push target index for (g, target, alpha,
// rmax), computing it on miss. The returned index is shared; callers
// must not mutate it.
func (e *Estimator) Index(ctx context.Context, g *graph.Graph, target graph.NodeID, p Params) (*TargetIndex, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	idx, _, err := e.index(ctx, g, target, p)
	return idx, err
}

// index is the shared store path: one reverse push per (graph,
// target, alpha, rmax) even under concurrent misses, with a persisted
// artifact consulted first when the store has a disk tier. cached is
// true when the caller did not pay for the push itself. p must
// already have defaults applied.
func (e *Estimator) index(ctx context.Context, g *graph.Graph, target graph.NodeID, p Params) (*TargetIndex, bool, error) {
	idx, tier, err := e.store.GetOrCompute(ctx, g, target, p.Alpha, p.RMax, func() (*TargetIndex, error) {
		return ReversePush(ctx, g, target, p.Alpha, p.RMax)
	})
	return idx, tier != TierComputed, err
}

// Pair estimates π(source, target): the probability that an
// Alpha-damped random walk from source stops at target.
func (e *Estimator) Pair(ctx context.Context, g *graph.Graph, source, target graph.NodeID, p Params) (Estimate, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return Estimate{}, err
	}
	if !g.ValidNode(source) {
		return Estimate{}, fmt.Errorf("bippr: source node %d not in graph (N=%d)", source, g.NumNodes())
	}
	idx, cached, err := e.index(ctx, g, target, p)
	if err != nil {
		return Estimate{}, err
	}
	est, err := e.pairWalks(ctx, g, source, idx, p)
	if err != nil {
		return Estimate{}, err
	}
	est.FromCache = cached
	if cached {
		est.Pushes = 0
	}
	return est, nil
}

// pairWalks combines a target index with the walk term, going through
// the walk-endpoint cache when the query opted in: a cache hit
// re-weights the recorded endpoints for this index's residuals
// instead of simulating walks, and a miss records the pass for the
// next query from this source. Estimates are bit-identical to
// pairFromIndex either way — EndpointSet.EstimateSum folds the same
// sorted per-chunk counts, in the same order, that a fresh
// WalkEstimator.EstimateSum run would produce.
func (e *Estimator) pairWalks(ctx context.Context, g *graph.Graph, source graph.NodeID, idx *TargetIndex, p Params) (Estimate, error) {
	if !p.ReuseEndpoints {
		return pairFromIndex(ctx, g, source, idx, p)
	}
	value := idx.Estimates.Get(source)
	walks := 0
	reused := false
	if idx.MaxResidual > 0 && p.Walks > 0 {
		set, cached, err := e.endpoints.GetOrRecord(ctx, g, source, p, func() (*EndpointSet, error) {
			w := NewWalkEstimator(g, p.Alpha, p.Seed, p.MaxSteps)
			return w.Endpoints(ctx, source, p.Walks, p.Workers)
		})
		if err != nil {
			return Estimate{}, err
		}
		value += set.EstimateSum(idx.Residuals)
		walks = p.Walks
		reused = cached
		if reused {
			// A hit re-weighted the recording instead of walking: count
			// the avoided work and note it on the enclosing phase span.
			if m := metrics.Load(); m != nil {
				m.reweights.Inc()
				m.walksAvoided.Add(int64(walks))
			}
			if s := obs.FromContext(ctx); s != nil {
				s.AddMetric("walks_reused", float64(walks))
			}
		}
	}
	return Estimate{Value: value, Pushes: idx.Pushes, Walks: walks, EndpointsReused: reused}, nil
}

// TargetRank ranks every node of g by its relevance to target: the
// score of s estimates π(s,t) with additive error below RMax. The
// result's Iterations field carries the push count and Residual the
// largest remaining residual.
func (e *Estimator) TargetRank(ctx context.Context, g *graph.Graph, target graph.NodeID, p Params) (*ranking.Result, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	idx, err := e.Index(ctx, g, target, p)
	if err != nil {
		return nil, err
	}
	// Dense materializes a fresh slice: ranking.Result owners may
	// normalize scores in place, and the index stays live in the cache.
	scores := idx.Estimates.Dense()
	res, err := ranking.NewResult(AlgorithmTarget, g, scores)
	if err != nil {
		return nil, err
	}
	res.Iterations = int(idx.Pushes)
	res.Residual = idx.MaxResidual
	return res, nil
}

// Bidirectional is the uncached one-shot pair estimate
// π(s,t) ≈ p_t(s) + (1/W)·Σ_walks r_t(endpoint). Serving layers that
// issue repeated queries should prefer an Estimator.
func Bidirectional(ctx context.Context, g *graph.Graph, source, target graph.NodeID, p Params) (Estimate, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return Estimate{}, err
	}
	if !g.ValidNode(source) {
		return Estimate{}, fmt.Errorf("bippr: source node %d not in graph (N=%d)", source, g.NumNodes())
	}
	idx, err := ReversePush(ctx, g, target, p.Alpha, p.RMax)
	if err != nil {
		return Estimate{}, err
	}
	return pairFromIndex(ctx, g, source, idx, p)
}

// pairFromIndex combines a target index with forward walks from
// source.
func pairFromIndex(ctx context.Context, g *graph.Graph, source graph.NodeID, idx *TargetIndex, p Params) (Estimate, error) {
	value := idx.Estimates.Get(source)
	walks := 0
	// The walk term Σ_v π(s,v)·r_t(v) is bounded by MaxResidual; when
	// the push already drained every residual (tiny graphs) the walks
	// would only add variance.
	if idx.MaxResidual > 0 && p.Walks > 0 {
		w := NewWalkEstimator(g, p.Alpha, p.Seed, p.MaxSteps)
		corr, err := w.EstimateSum(ctx, source, p.Walks, idx.Residuals, p.Workers)
		if err != nil {
			return Estimate{}, err
		}
		value += corr
		walks = p.Walks
	}
	return Estimate{Value: value, Pushes: idx.Pushes, Walks: walks}, nil
}
