package bippr

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/datastore"
	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// TestEndpointReuseMatchesFreshWalks is the equivalence harness for
// the walk-endpoint cache: for the same (seed, source, walks), an
// estimate re-weighted from recorded endpoints must be bit-identical
// (==, not approximately equal) to a fresh walk pass — for any weight
// vector, i.e. any target index, and any recording pool size.
func TestEndpointReuseMatchesFreshWalks(t *testing.T) {
	allowWorkers(t, 8)
	rng := rand.New(rand.NewSource(41))
	walkCounts := []int{1, 127, 128, 129, 1000, 4096}
	for trial := 0; trial < 6; trial++ {
		n := 20 + rng.Intn(100)
		g := randomGraph(t, n, n*4, rng.Int63(), trial%2 == 0)
		w := NewWalkEstimator(g, 0.85, rng.Int63(), 0)
		source := graph.NodeID(rng.Intn(n))
		walks := walkCounts[trial%len(walkCounts)]

		// Three unrelated weight vectors stand in for three different
		// targets' residuals.
		var weights []*Vector
		for k := 0; k < 3; k++ {
			values := make([]float64, n)
			for i := range values {
				values[i] = rng.Float64() * 1e-3
			}
			weights = append(weights, NewDenseVector(values))
		}

		for _, workers := range []int{1, 4} {
			set, err := w.Endpoints(context.Background(), source, walks, workers)
			if err != nil {
				t.Fatal(err)
			}
			for k, wv := range weights {
				fresh, err := w.EstimateSum(context.Background(), source, walks, wv, 1)
				if err != nil {
					t.Fatal(err)
				}
				if reused := set.EstimateSum(wv); reused != fresh {
					t.Errorf("trial %d (n=%d walks=%d recorded-by=%d weight %d): reused %v != fresh %v",
						trial, n, walks, workers, k, reused, fresh)
				}
			}
		}

		// Store-reopen leg: the equivalence must survive persistence.
		// Record through a tiered cache over a real datastore, then
		// "restart" (fresh cache, fresh datastore handle, same files)
		// and re-weight the DESERIALIZED recording — still bit-identical
		// to fresh walks, with the walk pass never re-run.
		dir := t.TempDir()
		p := Params{Alpha: 0.85, Seed: w.seed, MaxSteps: w.maxSteps, Walks: walks}
		open := func() *EndpointCache {
			ds, err := datastore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			return NewTieredEndpointCache(4, ds)
		}
		if _, _, err := open().GetOrRecord(context.Background(), g, source, p, func() (*EndpointSet, error) {
			return w.Endpoints(context.Background(), source, walks, 1)
		}); err != nil {
			t.Fatal(err)
		}
		reopened := open()
		restored, cached, err := reopened.GetOrRecord(context.Background(), g, source, p, func() (*EndpointSet, error) {
			t.Error("walk pass re-ran after store reopen; expected a disk-tier hit")
			return w.Endpoints(context.Background(), source, walks, 1)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !cached {
			t.Fatalf("trial %d: reopened recording not reported cached", trial)
		}
		if s := reopened.Stats(); s.DiskHits != 1 || s.Misses != 0 || s.DiskErrors != 0 {
			t.Fatalf("trial %d: reopened stats = %+v, want exactly one disk hit", trial, s)
		}
		for k, wv := range weights {
			fresh, err := w.EstimateSum(context.Background(), source, walks, wv, 1)
			if err != nil {
				t.Fatal(err)
			}
			if reused := restored.EstimateSum(wv); reused != fresh {
				t.Errorf("trial %d weight %d: deserialized recording %v != fresh %v", trial, k, reused, fresh)
			}
		}
	}
}

// TestPairReuseBitIdentical asserts the property end to end through
// the estimator: pair queries with ReuseEndpoints — both the recording
// miss and the re-weighting hit, including hits for *different
// targets* — return exactly the value the plain path computes.
func TestPairReuseBitIdentical(t *testing.T) {
	g := randomGraph(t, 150, 700, 23, true)
	source := graph.NodeID(3)
	targets := []graph.NodeID{1, 42, 99}
	base := Params{Alpha: 0.85, RMax: 1e-4, Walks: 3000, Seed: 7}

	plain := NewEstimator(0)
	reusing := NewEstimator(0)
	for round := 0; round < 2; round++ { // round 1 hits the cache
		for _, tgt := range targets {
			want, err := plain.Pair(context.Background(), g, source, tgt, base)
			if err != nil {
				t.Fatal(err)
			}
			p := base
			p.ReuseEndpoints = true
			got, err := reusing.Pair(context.Background(), g, source, tgt, p)
			if err != nil {
				t.Fatal(err)
			}
			if got.Value != want.Value {
				t.Errorf("round %d π(%d,%d): reuse %v != plain %v", round, source, tgt, got.Value, want.Value)
			}
			if round == 1 && !got.EndpointsReused {
				t.Errorf("round 1 π(%d,%d) did not reuse recorded endpoints", source, tgt)
			}
		}
	}
	stats := reusing.EndpointStats()
	// One recording for the source; every later query re-weighted it.
	if stats.Misses != 1 {
		t.Errorf("endpoint misses = %d, want 1 (one walk pass per source)", stats.Misses)
	}
	if want := int64(2*len(targets) - 1); stats.Hits != want {
		t.Errorf("endpoint hits = %d, want %d", stats.Hits, want)
	}
	if want := int64(2*len(targets)-1) * int64(base.Walks); stats.WalksAvoided != want {
		t.Errorf("walks avoided = %d, want %d", stats.WalksAvoided, want)
	}
}

// TestEndpointCacheKeying asserts every walk parameter that shapes the
// sample is part of the key: changing any of seed, walks, alpha, max
// steps or source must record a fresh pass, and a structurally
// identical graph (same fingerprint, different pointer) must share the
// recording.
func TestEndpointCacheKeying(t *testing.T) {
	g := randomGraph(t, 80, 300, 5, true)
	est := NewEstimator(0)
	base := Params{Alpha: 0.85, RMax: 1e-4, Walks: 500, Seed: 1, ReuseEndpoints: true}
	tgt := graph.NodeID(9)

	run := func(p Params, source graph.NodeID) {
		t.Helper()
		if _, err := est.Pair(context.Background(), g, source, tgt, p); err != nil {
			t.Fatal(err)
		}
	}
	run(base, 0)
	variants := []Params{base, base, base, base}
	variants[0].Seed = 2
	variants[1].Walks = 501
	variants[2].Alpha = 0.8
	variants[3].MaxSteps = 50
	for _, p := range variants {
		run(p, 0)
	}
	run(base, 1) // different source
	if stats := est.EndpointStats(); stats.Misses != 6 || stats.Hits != 0 {
		t.Errorf("stats = %+v, want 6 distinct recordings and no hits", stats)
	}

	// Same structure, new pointer — the scheduler's re-upload path for
	// an unchanged dataset: the fingerprint key shares the recording.
	g2 := randomGraph(t, 80, 300, 5, true)
	if graph.Fingerprint(g2) != graph.Fingerprint(g) {
		t.Fatal("test setup: same-seed graphs fingerprint differently")
	}
	if _, err := est.Pair(context.Background(), g2, 0, tgt, base); err != nil {
		t.Fatal(err)
	}
	if stats := est.EndpointStats(); stats.Hits != 1 {
		t.Errorf("structurally identical graph missed the recording: %+v", stats)
	}
}

// TestEndpointCacheSingleflight is the race-coverage satellite: N
// concurrent sources' worth of goroutines racing the same key must
// trigger exactly one walk pass, every caller receiving the same set.
// Run with -race.
func TestEndpointCacheSingleflight(t *testing.T) {
	g := randomGraph(t, 60, 250, 11, true)
	w := NewWalkEstimator(g, 0.85, 1, 0)
	cache := NewEndpointCache(8)
	p := Params{Alpha: 0.85, Walks: 2000, Seed: 1, MaxSteps: DefaultMaxSteps}

	const goroutines = 32
	var (
		records atomic.Int64
		wg      sync.WaitGroup
		start   = make(chan struct{})
		results [goroutines]*EndpointSet
		errs    [goroutines]error
	)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], _, errs[i] = cache.GetOrRecord(context.Background(), g, 7, p,
				func() (*EndpointSet, error) {
					records.Add(1)
					return w.Endpoints(context.Background(), 7, p.Walks, 1)
				})
		}(i)
	}
	close(start)
	wg.Wait()
	if n := records.Load(); n != 1 {
		t.Fatalf("%d walk passes ran, want exactly 1", n)
	}
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("goroutine %d received a different set", i)
		}
	}
	stats := cache.Stats()
	if stats.Misses != 1 || stats.Hits != goroutines-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits", stats, goroutines-1)
	}
}

// TestEndpointCacheLRU asserts the bound: recordings past capacity
// evict the least recently used, and a failed recording is never
// cached.
func TestEndpointCacheLRU(t *testing.T) {
	g := randomGraph(t, 40, 160, 13, true)
	w := NewWalkEstimator(g, 0.85, 1, 0)
	cache := NewEndpointCache(2)
	p := Params{Alpha: 0.85, Walks: 256, Seed: 1, MaxSteps: DefaultMaxSteps}

	get := func(source graph.NodeID) (cached bool) {
		t.Helper()
		_, cached, err := cache.GetOrRecord(context.Background(), g, source, p,
			func() (*EndpointSet, error) { return w.Endpoints(context.Background(), source, p.Walks, 1) })
		if err != nil {
			t.Fatal(err)
		}
		return cached
	}
	get(0)
	get(1)
	if !get(0) {
		t.Error("source 0 evicted while under capacity")
	}
	get(2) // evicts 1 (LRU), not the freshly-touched 0
	if stats := cache.Stats(); stats.Entries != 2 {
		t.Fatalf("entries = %d, want capacity 2", stats.Entries)
	}
	if !get(0) {
		t.Error("recently used source 0 was evicted")
	}
	if get(1) {
		t.Error("LRU source 1 survived eviction")
	}

	// A failed recording must not populate the cache.
	wantErr := fmt.Errorf("boom")
	if _, _, err := cache.GetOrRecord(context.Background(), g, 30, p,
		func() (*EndpointSet, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("error not propagated: %v", err)
	}
	if _, cached, err := cache.GetOrRecord(context.Background(), g, 30, p,
		func() (*EndpointSet, error) { return w.Endpoints(context.Background(), 30, p.Walks, 1) }); err != nil || cached {
		t.Errorf("after failed recording: cached=%v err=%v, want a fresh recording", cached, err)
	}
}

// TestEndpointCachePairsBudget asserts the byte bound: total stored
// (node, count) pairs may not exceed maxEndpointPairs — the entry
// LRU alone cannot bound memory, recordings are O(min(walks, N)) —
// while the most recent recording always survives, even when it
// alone busts the budget.
func TestEndpointCachePairsBudget(t *testing.T) {
	prev := maxEndpointPairs
	maxEndpointPairs = 40
	t.Cleanup(func() { maxEndpointPairs = prev })

	g := randomGraph(t, 60, 300, 17, true)
	w := NewWalkEstimator(g, 0.85, 1, 0)
	cache := NewEndpointCache(64) // entry capacity is NOT the binding limit here
	p := Params{Alpha: 0.85, Walks: 256, Seed: 1, MaxSteps: DefaultMaxSteps}

	for source := graph.NodeID(0); source < 8; source++ {
		if _, _, err := cache.GetOrRecord(context.Background(), g, source, p,
			func() (*EndpointSet, error) { return w.Endpoints(context.Background(), source, p.Walks, 1) }); err != nil {
			t.Fatal(err)
		}
		stats := cache.Stats()
		if stats.Entries > 1 && stats.Pairs > maxEndpointPairs {
			t.Fatalf("after source %d: %d pairs stored across %d entries, budget %d",
				source, stats.Pairs, stats.Entries, maxEndpointPairs)
		}
		// The recording just paid for must be resident.
		if _, cached, err := cache.GetOrRecord(context.Background(), g, source, p,
			func() (*EndpointSet, error) { t.Fatal("latest recording evicted"); return nil, nil }); err != nil || !cached {
			t.Fatalf("source %d: latest recording not cached (cached=%v err=%v)", source, cached, err)
		}
	}
	if stats := cache.Stats(); stats.Entries >= 8 {
		t.Errorf("pairs budget never evicted: %+v", stats)
	}
}

// TestTieredEndpointCacheCorruptArtifact: a damaged persisted
// recording is a miss — re-walked, recounted, and overwritten — never
// an error, and never a wrong estimate.
func TestTieredEndpointCacheCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(t, 60, 250, 31, true)
	w := NewWalkEstimator(g, 0.85, 1, 0)
	p := Params{Alpha: 0.85, Seed: 1, MaxSteps: DefaultMaxSteps, Walks: 500}
	record := func() (*EndpointSet, error) {
		return w.Endpoints(context.Background(), 3, p.Walks, 1)
	}
	open := func() *EndpointCache {
		ds, err := datastore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return NewTieredEndpointCache(4, ds)
	}
	if _, _, err := open().GetOrRecord(context.Background(), g, 3, p, record); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the persisted artifact.
	var artifactPath string
	err := filepath.WalkDir(filepath.Join(dir, "endpoints"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			artifactPath = path
		}
		return err
	})
	if err != nil || artifactPath == "" {
		t.Fatalf("no persisted endpoint artifact found (%v)", err)
	}
	data, err := os.ReadFile(artifactPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(artifactPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reopened := open()
	recorded := false
	set, cached, err := reopened.GetOrRecord(context.Background(), g, 3, p, func() (*EndpointSet, error) {
		recorded = true
		return record()
	})
	if err != nil {
		t.Fatalf("corrupt artifact surfaced as error: %v", err)
	}
	if !recorded || cached {
		t.Fatalf("corrupt artifact served without re-walking (cached=%v)", cached)
	}
	if s := reopened.Stats(); s.DiskErrors != 1 || s.Misses != 1 || s.DiskHits != 0 {
		t.Fatalf("stats after corruption = %+v", s)
	}
	if set.Walks != p.Walks {
		t.Fatalf("re-recorded set malformed: %+v", set)
	}
	// The re-record overwrote the bad artifact: the next reopen hits.
	final := open()
	if _, cached, err := final.GetOrRecord(context.Background(), g, 3, p, func() (*EndpointSet, error) {
		t.Error("walk pass ran despite a repaired artifact")
		return record()
	}); err != nil || !cached {
		t.Fatalf("repaired artifact not served (cached=%v err=%v)", cached, err)
	}
}

// TestEndpointsCancellation exercises the recorder's context paths,
// serial and sharded.
func TestEndpointsCancellation(t *testing.T) {
	allowWorkers(t, 4)
	g := randomGraph(t, 50, 250, 5, true)
	w := NewWalkEstimator(g, 0.85, 1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.Endpoints(ctx, 0, 100000, 1); err == nil {
		t.Error("cancelled serial recording returned nil error")
	}
	if _, err := w.Endpoints(ctx, 0, 100000, 4); err == nil {
		t.Error("cancelled sharded recording returned nil error")
	}
	if _, err := w.Endpoints(context.Background(), 0, 0, 1); err == nil {
		t.Error("zero walks accepted")
	}
	if _, err := w.Endpoints(context.Background(), 0, MaxWalks+1, 1); err == nil {
		t.Error("walks above MaxWalks accepted")
	}
	if _, err := w.Endpoints(context.Background(), graph.NodeID(g.NumNodes()), 10, 1); err == nil {
		t.Error("out-of-range source accepted")
	}
}

// TestEndpointSetRecordingShardIndependent asserts the recorded set
// itself — not just its weighted sums — is identical for every
// recording pool size.
func TestEndpointSetRecordingShardIndependent(t *testing.T) {
	allowWorkers(t, 8)
	g := randomGraph(t, 90, 400, 29, false)
	w := NewWalkEstimator(g, 0.85, 3, 0)
	serial, err := w.Endpoints(context.Background(), 5, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		sharded, err := w.Endpoints(context.Background(), 5, 1000, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(sharded.chunks) != len(serial.chunks) {
			t.Fatalf("workers=%d: %d chunks != serial %d", workers, len(sharded.chunks), len(serial.chunks))
		}
		for c := range serial.chunks {
			if len(sharded.chunks[c]) != len(serial.chunks[c]) {
				t.Fatalf("workers=%d chunk %d: %d endpoints != serial %d",
					workers, c, len(sharded.chunks[c]), len(serial.chunks[c]))
			}
			for i, e := range serial.chunks[c] {
				if sharded.chunks[c][i] != e {
					t.Fatalf("workers=%d chunk %d entry %d: %+v != serial %+v",
						workers, c, i, sharded.chunks[c][i], e)
				}
			}
		}
	}
	if serial.Walks != 1000 || serial.NonZeros() == 0 {
		t.Errorf("recorded set malformed: walks=%d nonzeros=%d", serial.Walks, serial.NonZeros())
	}
}
