package bippr

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// allowWorkers lifts GOMAXPROCS for the duration of a test so the
// pool's concurrent branch runs even on single-CPU CI machines
// (clampWorkers bounds pools by GOMAXPROCS, not NumCPU).
func allowWorkers(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestShardedWalksBitIdentical is the reproducibility property test:
// for random graphs, seeds, walk counts and pool sizes, the sharded
// walk estimate must be bit-identical (==, not approximately equal)
// to the serial one. The pool only changes which goroutine runs a
// chunk, never which RNG stream a chunk draws from or the order the
// partial sums are reduced in.
func TestShardedWalksBitIdentical(t *testing.T) {
	allowWorkers(t, 8)
	rng := rand.New(rand.NewSource(99))
	walkCounts := []int{1, 127, 128, 129, 1000, 4096}
	workerCounts := []int{2, 3, 4, 8, 64}
	for trial := 0; trial < 8; trial++ {
		n := 20 + rng.Intn(100)
		g := randomGraph(t, n, n*4, rng.Int63(), trial%2 == 0)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() * 1e-3
		}
		wv := NewDenseVector(weights)
		w := NewWalkEstimator(g, 0.85, rng.Int63(), 0)
		source := graph.NodeID(rng.Intn(n))
		walks := walkCounts[trial%len(walkCounts)]

		serial, err := w.EstimateSum(context.Background(), source, walks, wv, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range workerCounts {
			sharded, err := w.EstimateSum(context.Background(), source, walks, wv, workers)
			if err != nil {
				t.Fatal(err)
			}
			if sharded != serial {
				t.Errorf("trial %d (n=%d walks=%d): workers=%d estimate %v != serial %v",
					trial, n, walks, workers, sharded, serial)
			}
		}
	}
}

// TestPairShardedBitIdentical asserts the property end to end: a full
// bidirectional pair query with a worker pool returns exactly the
// serial estimate.
func TestPairShardedBitIdentical(t *testing.T) {
	allowWorkers(t, 8)
	g := randomGraph(t, 150, 700, 17, true)
	base := Params{Alpha: 0.85, RMax: 1e-4, Walks: 3000, Seed: 7}
	for _, pair := range [][2]graph.NodeID{{0, 1}, {10, 99}, {42, 42}} {
		serial, err := Bidirectional(context.Background(), g, pair[0], pair[1], base)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			p := base
			p.Workers = workers
			sharded, err := Bidirectional(context.Background(), g, pair[0], pair[1], p)
			if err != nil {
				t.Fatal(err)
			}
			if sharded.Value != serial.Value {
				t.Errorf("π(%d,%d) workers=%d: %v != serial %v",
					pair[0], pair[1], workers, sharded.Value, serial.Value)
			}
		}
	}
}

// TestShardedWalksCancellation exercises the pool's context path.
func TestShardedWalksCancellation(t *testing.T) {
	allowWorkers(t, 4)
	g := randomGraph(t, 50, 250, 5, true)
	w := NewWalkEstimator(g, 0.85, 1, 0)
	wv := NewDenseVector(make([]float64, g.NumNodes()))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.EstimateSum(ctx, 0, 100000, wv, 4); err == nil {
		t.Error("cancelled sharded walk run returned nil error")
	}
	if _, err := w.EstimateSum(ctx, 0, 100000, wv, 1); err == nil {
		t.Error("cancelled serial walk run returned nil error")
	}
}

// TestSparseDenseEquivalence asserts the two index representations
// hold bit-identical values: the push performs the same float
// operations in the same order regardless of storage.
func TestSparseDenseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		n := 40 + rng.Intn(200)
		g := randomGraph(t, n, n*5, rng.Int63(), trial%2 == 0)
		target := graph.NodeID(rng.Intn(n))
		dense, err := ReversePushStored(context.Background(), g, target, 0.85, 1e-4, StorageDense)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := ReversePushStored(context.Background(), g, target, 0.85, 1e-4, StorageSparse)
		if err != nil {
			t.Fatal(err)
		}
		if dense.Estimates.IsSparse() || !sparse.Estimates.IsSparse() {
			t.Fatalf("storage override ignored: dense sparse=%v, sparse sparse=%v",
				dense.Estimates.IsSparse(), sparse.Estimates.IsSparse())
		}
		if dense.Pushes != sparse.Pushes {
			t.Errorf("trial %d: pushes %d (dense) != %d (sparse)", trial, dense.Pushes, sparse.Pushes)
		}
		if dense.MaxResidual != sparse.MaxResidual {
			t.Errorf("trial %d: MaxResidual %v != %v", trial, dense.MaxResidual, sparse.MaxResidual)
		}
		for v := 0; v < n; v++ {
			id := graph.NodeID(v)
			if dense.Estimates.Get(id) != sparse.Estimates.Get(id) {
				t.Errorf("trial %d node %d: estimate %v (dense) != %v (sparse)",
					trial, v, dense.Estimates.Get(id), sparse.Estimates.Get(id))
			}
			if dense.Residuals.Get(id) != sparse.Residuals.Get(id) {
				t.Errorf("trial %d node %d: residual %v (dense) != %v (sparse)",
					trial, v, dense.Residuals.Get(id), sparse.Residuals.Get(id))
			}
		}
	}
}

// TestAutoStorageScalesWithTouched asserts the memory property the
// sparse representation exists for: on a large graph whose push only
// reaches a small in-neighborhood, the auto index is map-backed and
// stores O(touched) entries, not O(n).
func TestAutoStorageScalesWithTouched(t *testing.T) {
	// A directed ring larger than denseCutoff: the reverse push from
	// any target walks backwards with geometrically decaying residual,
	// reaching only ~log(rmax)/log(alpha) ≈ 57 nodes at rmax=1e-4.
	n := denseCutoff + 5000
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%n))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ReversePush(context.Background(), g, 0, 0.85, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Estimates.IsSparse() || !idx.Residuals.IsSparse() {
		t.Fatalf("auto storage picked dense arrays for n=%d", n)
	}
	if nz := idx.Estimates.NonZeros(); nz > 200 {
		t.Errorf("estimates store %d entries; want O(touched) ≈ 57", nz)
	}
	// Small graphs fall back to dense arrays.
	small := randomGraph(t, 50, 200, 3, true)
	sidx, err := ReversePush(context.Background(), small, 0, 0.85, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if sidx.Estimates.IsSparse() {
		t.Error("auto storage picked a map for a 50-node graph")
	}
}

// TestVectorDensify exercises the mid-push fallback: an auto vector
// above the cutoff converts to dense once the touched set outgrows the
// map's break-even point, preserving every value.
func TestVectorDensify(t *testing.T) {
	n := denseCutoff + 1
	x := newVector(n, StorageAuto)
	if !x.IsSparse() {
		t.Fatal("auto vector above cutoff started dense")
	}
	limit := n/densifyFraction + 2
	for i := 0; i < limit; i++ {
		x.add(graph.NodeID(i), float64(i)+0.5)
	}
	if x.IsSparse() {
		t.Fatalf("vector still sparse after %d of %d entries", limit, n)
	}
	for i := 0; i < limit; i++ {
		if got := x.Get(graph.NodeID(i)); got != float64(i)+0.5 {
			t.Fatalf("entry %d lost in densify: %v", i, got)
		}
	}
	if x.NonZeros() != limit {
		t.Errorf("NonZeros = %d, want %d", x.NonZeros(), limit)
	}
	// Forced sparse never densifies.
	y := newVector(n, StorageSparse)
	for i := 0; i < limit; i++ {
		y.add(graph.NodeID(i), 1)
	}
	if !y.IsSparse() {
		t.Error("StorageSparse vector densified")
	}
}

// TestWalksForError checks the adaptive budget: tighter eps needs more
// walks, looser rmax needs fewer, and the count matches the Hoeffding
// balance point.
func TestWalksForError(t *testing.T) {
	if w1, w2 := WalksForError(1e-4, 1e-5), WalksForError(1e-4, 1e-6); w2 <= w1 {
		t.Errorf("tighter eps did not increase walks: %d vs %d", w1, w2)
	}
	if w1, w2 := WalksForError(1e-4, 1e-6), WalksForError(1e-5, 1e-6); w2 >= w1 {
		t.Errorf("smaller rmax did not decrease walks: %d vs %d", w1, w2)
	}
	// Halving rmax quarters the count (up to ceiling).
	w1, w2 := WalksForError(2e-4, 1e-6), WalksForError(1e-4, 1e-6)
	if ratio := float64(w1) / float64(w2); ratio < 3.9 || ratio > 4.1 {
		t.Errorf("rmax halving scaled walks by %v, want ~4", ratio)
	}
	if w := WalksForError(1e-4, 1e-12); w != MaxAdaptiveWalks {
		t.Errorf("absurd eps not clamped: %d", w)
	}
	if w := WalksForError(1e-4, 1); w < 1 {
		t.Errorf("loose eps returned %d walks", w)
	}
}

// TestParamsAdaptiveWalks asserts Eps supersedes the flat default and
// any explicit Walks.
func TestParamsAdaptiveWalks(t *testing.T) {
	p := Params{RMax: 1e-4, Eps: 1e-6}.withDefaults()
	if want := WalksForError(1e-4, 1e-6); p.Walks != want {
		t.Errorf("Walks = %d, want adaptive %d", p.Walks, want)
	}
	p = Params{RMax: 1e-4, Eps: 1e-6, Walks: 5}.withDefaults()
	if want := WalksForError(1e-4, 1e-6); p.Walks != want {
		t.Errorf("explicit Walks not superseded: %d, want %d", p.Walks, want)
	}
	p = Params{}.withDefaults()
	if p.Walks != DefaultWalks {
		t.Errorf("flat default Walks = %d, want %d", p.Walks, DefaultWalks)
	}
	if p.Workers != DefaultWorkers {
		t.Errorf("default Workers = %d, want %d", p.Workers, DefaultWorkers)
	}
	if err := (Params{Alpha: 0.85, RMax: 1e-4, Eps: -1}).validate(); err == nil {
		t.Error("negative eps validated")
	}
	if err := (Params{Alpha: 0.85, RMax: 1e-4, Workers: -1}).validate(); err == nil {
		t.Error("negative workers validated")
	}
	// Absurd walk counts are rejected up front rather than allocating
	// per-chunk bookkeeping for them (or overflowing the chunk math).
	if err := (Params{Alpha: 0.85, RMax: 1e-4, Walks: MaxWalks + 1}).validate(); err == nil {
		t.Error("walks above MaxWalks validated")
	}
	g := randomGraph(t, 10, 30, 1, true)
	w := NewWalkEstimator(g, 0.85, 1, 0)
	wv := NewDenseVector(make([]float64, g.NumNodes()))
	const huge = int(^uint(0) >> 1) // MaxInt: would overflow chunk math
	if _, err := w.EstimateSum(context.Background(), 0, huge, wv, 1); err == nil {
		t.Error("EstimateSum accepted MaxInt walks")
	}
	if _, err := w.Distribution(context.Background(), 0, huge); err == nil {
		t.Error("Distribution accepted MaxInt walks")
	}
}
