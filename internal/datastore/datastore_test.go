package datastore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func labeledTriangle(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewLabeledBuilder()
	b.AddLabeledEdge("a", "b")
	b.AddLabeledEdge("b", "c")
	b.AddLabeledEdge("c", "a")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDatasetRoundTrip(t *testing.T) {
	s := newStore(t)
	g := labeledTriangle(t)
	if err := s.SaveDataset("tri", g); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadDataset("tri")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 3 || got.NumEdges() != 3 {
		t.Fatalf("round trip N=%d M=%d", got.NumNodes(), got.NumEdges())
	}
	a, ok := got.NodeByLabel("a")
	if !ok {
		t.Fatal("labels lost")
	}
	bID, _ := got.NodeByLabel("b")
	if !got.HasEdge(a, bID) {
		t.Error("edge lost")
	}
}

func TestUnlabeledDatasetRoundTrip(t *testing.T) {
	s := newStore(t)
	g, err := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveDataset("plain", g); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadDataset("plain")
	if err != nil {
		t.Fatal(err)
	}
	if got.Labels() != nil {
		t.Error("phantom labels appeared")
	}
	if !got.HasEdge(0, 1) {
		t.Error("edge lost")
	}
}

func TestSaveOverwritesAndDropsStaleLabels(t *testing.T) {
	s := newStore(t)
	if err := s.SaveDataset("x", labeledTriangle(t)); err != nil {
		t.Fatal(err)
	}
	plain, _ := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	if err := s.SaveDataset("x", plain); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadDataset("x")
	if err != nil {
		t.Fatal(err)
	}
	if got.Labels() != nil {
		t.Error("stale label sidecar survived overwrite")
	}
}

func TestListAndDeleteDatasets(t *testing.T) {
	s := newStore(t)
	for _, n := range []string{"zz", "aa"} {
		if err := s.SaveDataset(n, labeledTriangle(t)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.ListDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "aa" || names[1] != "zz" {
		t.Errorf("ListDatasets = %v", names)
	}
	if err := s.DeleteDataset("aa"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteDataset("aa"); err != nil {
		t.Error("double delete errored:", err)
	}
	names, _ = s.ListDatasets()
	if len(names) != 1 {
		t.Errorf("after delete: %v", names)
	}
	if _, err := s.LoadDataset("aa"); err == nil {
		t.Error("deleted dataset loaded")
	}
}

func TestNameValidation(t *testing.T) {
	s := newStore(t)
	g := labeledTriangle(t)
	for _, bad := range []string{"", "..", "a/b", `a\b`, "x/../y"} {
		if err := s.SaveDataset(bad, g); err == nil {
			t.Errorf("SaveDataset accepted %q", bad)
		}
		if _, err := s.LoadDataset(bad); err == nil {
			t.Errorf("LoadDataset accepted %q", bad)
		}
		if err := s.SaveResult(bad, map[string]int{}); err == nil {
			t.Errorf("SaveResult accepted %q", bad)
		}
		if err := s.AppendLog(bad, "x"); err == nil {
			t.Errorf("AppendLog accepted %q", bad)
		}
	}
}

type testDoc struct {
	Algorithm string   `json:"algorithm"`
	Top       []string `json:"top"`
}

func TestResultRoundTrip(t *testing.T) {
	s := newStore(t)
	doc := testDoc{Algorithm: "cyclerank", Top: []string{"a", "b"}}
	if err := s.SaveResult("task-1", doc); err != nil {
		t.Fatal(err)
	}
	if !s.HasResult("task-1") {
		t.Error("HasResult false after save")
	}
	if s.HasResult("task-2") {
		t.Error("HasResult true for missing result")
	}
	var got testDoc
	if err := s.LoadResult("task-1", &got); err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != "cyclerank" || len(got.Top) != 2 {
		t.Errorf("LoadResult = %+v", got)
	}
	ids, err := s.ListResults()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "task-1" {
		t.Errorf("ListResults = %v", ids)
	}
	if err := s.LoadResult("ghost", &got); err == nil {
		t.Error("loaded missing result")
	}
}

func TestLogAppendAndRead(t *testing.T) {
	s := newStore(t)
	if err := s.AppendLog("t1", "started"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLog("t1", "finished"); err != nil {
		t.Fatal(err)
	}
	log, err := s.ReadLog("t1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log, "started") || !strings.Contains(log, "finished") {
		t.Errorf("log = %q", log)
	}
	empty, err := s.ReadLog("never")
	if err != nil || empty != "" {
		t.Errorf("missing log: %q, %v", empty, err)
	}
}

func TestConcurrentSaves(t *testing.T) {
	s := newStore(t)
	g := labeledTriangle(t)
	done := make(chan error, 20)
	for i := 0; i < 20; i++ {
		go func(i int) {
			if i%2 == 0 {
				done <- s.SaveDataset("shared", g)
			} else {
				done <- s.SaveResult("shared", testDoc{Algorithm: "x"})
			}
		}(i)
	}
	for i := 0; i < 20; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.LoadDataset("shared"); err != nil {
		t.Fatal(err)
	}
}

func TestSaveDatasetRejectsNewlineLabel(t *testing.T) {
	s := newStore(t)
	b := graph.NewLabeledBuilder()
	b.AddLabeledEdge("ok", "bad\nlabel")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveDataset("nl", g); err == nil {
		t.Error("newline label encoded into sidecar")
	}
}

func TestLoadDatasetCorruptFile(t *testing.T) {
	s := newStore(t)
	path := filepath.Join(s.Root(), "datasets", "corrupt.asd")
	if err := os.WriteFile(path, []byte("this is not ASD"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadDataset("corrupt"); err == nil {
		t.Error("corrupt dataset loaded")
	}
}

func TestLoadDatasetLabelCountMismatch(t *testing.T) {
	s := newStore(t)
	if err := s.SaveDataset("mismatch", labeledTriangle(t)); err != nil {
		t.Fatal(err)
	}
	// Truncate the sidecar to fewer labels than nodes.
	path := filepath.Join(s.Root(), "datasets", "mismatch.labels")
	if err := os.WriteFile(path, []byte("only-one\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadDataset("mismatch"); err == nil {
		t.Error("label/node count mismatch accepted")
	}
}

func TestLoadResultBadJSON(t *testing.T) {
	s := newStore(t)
	path := filepath.Join(s.Root(), "results", "bad.json")
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out testDoc
	if err := s.LoadResult("bad", &out); err == nil {
		t.Error("malformed result decoded")
	}
}

func TestHasResultInvalidName(t *testing.T) {
	s := newStore(t)
	if s.HasResult("../escape") {
		t.Error("invalid name reported as existing")
	}
	if _, err := s.ReadLog("../escape"); err == nil {
		t.Error("ReadLog accepted traversal name")
	}
	if err := s.DeleteDataset("../escape"); err == nil {
		t.Error("DeleteDataset accepted traversal name")
	}
	if err := s.LoadResult("../escape", nil); err == nil {
		t.Error("LoadResult accepted traversal name")
	}
}

func TestOpenCreatesTree(t *testing.T) {
	dir := t.TempDir() + "/nested/store"
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Root() != dir {
		t.Errorf("Root = %q", s.Root())
	}
	if _, err := s.ListDatasets(); err != nil {
		t.Error(err)
	}
	if _, err := s.ListResults(); err != nil {
		t.Error(err)
	}
}
