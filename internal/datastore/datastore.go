// Package datastore implements the platform's persistent storage: the
// component of the demo architecture responsible for datasets, task
// results and logs (Figure 1 of the paper).
//
// The store is a directory tree:
//
//	root/
//	  datasets/<name>.asd         uploaded graphs (ASD format)
//	  datasets/<name>.labels      label sidecars
//	  results/<task-id>.json      completed task results
//	  logs/<task-id>.log          per-task execution logs
//	  indexes/<graph-fp>/<key>.idx  persisted reverse-push target indexes
//
// Index artifacts are opaque blobs to this package (the bippr codec
// owns their format); they are grouped per structural graph
// fingerprint so a re-uploaded dataset naturally orphans its
// predecessor's indexes instead of serving them.
//
// All writes are atomic (temp file + fsync + rename + directory
// fsync) so a crashed writer never leaves a partially visible
// artifact and a completed write survives power loss. A Store is safe
// for concurrent use.
package datastore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"github.com/cyclerank/cyclerank-go/internal/formats"
	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// Store is a file-backed datastore rooted at a directory.
type Store struct {
	root string
	mu   sync.Mutex
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"datasets", "results", "logs", "indexes"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("datastore: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// validName guards against path traversal in user-supplied names.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("datastore: empty name")
	}
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." || strings.Contains(name, "..") {
		return fmt.Errorf("datastore: invalid name %q", name)
	}
	return nil
}

// atomicWrite writes data to path via a temp file, fsync, rename, and
// a final fsync of the containing directory. The rename makes the
// artifact appear atomically; the file sync makes its *contents*
// durable before it becomes visible; the directory sync makes the
// rename itself durable, so a crash immediately after atomicWrite
// returns cannot roll the directory entry back to the old (or no)
// artifact.
func atomicWrite(path string, write func(f *os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("datastore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename within it survives
// a crash. Filesystems that reject directory fsync (some network and
// FUSE mounts) degrade to the pre-sync durability rather than failing
// the write.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("datastore: syncing %s: %w", dir, err)
	}
	return nil
}

// SaveDataset stores g under the given name, overwriting any previous
// dataset with that name. Labels, when present, are stored in a
// sidecar so round-trips preserve them.
func (s *Store) SaveDataset(name string, g *graph.Graph) error {
	if err := validName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gpath := filepath.Join(s.root, "datasets", name+".asd")
	lpath := filepath.Join(s.root, "datasets", name+".labels")
	err := atomicWrite(gpath, func(f *os.File) error {
		return formats.WriteASD(f, g)
	})
	if err != nil {
		return err
	}
	if g.Labels() == nil {
		os.Remove(lpath)
		return nil
	}
	return atomicWrite(lpath, func(f *os.File) error {
		for _, l := range g.Labels().Names() {
			if strings.ContainsRune(l, '\n') {
				return fmt.Errorf("datastore: label with newline: %q", l)
			}
			if _, err := fmt.Fprintln(f, l); err != nil {
				return err
			}
		}
		return nil
	})
}

// LoadDataset retrieves a stored dataset by name.
func (s *Store) LoadDataset(name string) (*graph.Graph, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	gpath := filepath.Join(s.root, "datasets", name+".asd")
	gf, err := os.Open(gpath)
	if err != nil {
		return nil, fmt.Errorf("datastore: dataset %q: %w", name, err)
	}
	defer gf.Close()

	lpath := filepath.Join(s.root, "datasets", name+".labels")
	lf, err := os.Open(lpath)
	if err != nil {
		if os.IsNotExist(err) {
			return formats.ReadASD(gf)
		}
		return nil, fmt.Errorf("datastore: dataset %q labels: %w", name, err)
	}
	defer lf.Close()
	return formats.ReadASDWithLabels(gf, lf)
}

// DeleteDataset removes a stored dataset. Deleting a missing dataset
// is not an error.
func (s *Store) DeleteDataset(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range []string{
		filepath.Join(s.root, "datasets", name+".asd"),
		filepath.Join(s.root, "datasets", name+".labels"),
	} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("datastore: %w", err)
		}
	}
	return nil
}

// ListDatasets returns the names of all stored datasets, sorted.
func (s *Store) ListDatasets() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "datasets"))
	if err != nil {
		return nil, fmt.Errorf("datastore: %w", err)
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".asd"); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// SaveResult stores an arbitrary JSON-encodable result document under
// a task id. It takes no store-wide lock: each write goes through its
// own temp file and atomic rename (readers always see a complete
// document), and only one executor owns a task id at a time — so one
// task's fsync latency never stalls another's persistence.
func (s *Store) SaveResult(taskID string, doc any) error {
	if err := validName(taskID); err != nil {
		return err
	}
	path := filepath.Join(s.root, "results", taskID+".json")
	return atomicWrite(path, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return fmt.Errorf("datastore: encoding result %s: %w", taskID, err)
		}
		return nil
	})
}

// LoadResult decodes a stored result document into out.
func (s *Store) LoadResult(taskID string, out any) error {
	if err := validName(taskID); err != nil {
		return err
	}
	data, err := os.ReadFile(filepath.Join(s.root, "results", taskID+".json"))
	if err != nil {
		return fmt.Errorf("datastore: result %q: %w", taskID, err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("datastore: decoding result %q: %w", taskID, err)
	}
	return nil
}

// HasResult reports whether a result exists for the task id.
func (s *Store) HasResult(taskID string) bool {
	if validName(taskID) != nil {
		return false
	}
	_, err := os.Stat(filepath.Join(s.root, "results", taskID+".json"))
	return err == nil
}

// ListResults returns all stored result task ids, sorted.
func (s *Store) ListResults() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "results"))
	if err != nil {
		return nil, fmt.Errorf("datastore: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if id, ok := strings.CutSuffix(e.Name(), ".json"); ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// AppendLog appends a line to the task's execution log.
func (s *Store) AppendLog(taskID, line string) error {
	if err := validName(taskID); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.root, "logs", taskID+".log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, line); err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	return nil
}

// SaveIndex persists one reverse-push index artifact under
// indexes/<graphFP>/<key>.idx. The blob is opaque to the store (the
// bippr codec owns the format). Writes are atomic and durable like
// every other artifact, so a crash never leaves a torn index — at
// worst a missing one, which the cache treats as a miss. This method
// implements bippr.DiskTier.
//
// Like SaveResult, SaveIndex takes no store-wide lock: the temp file
// + atomic rename protocol is self-contained, concurrent writers of
// one key are already serialized by the index store's single-flight,
// and distinct keys must not queue behind each other's fsyncs.
func (s *Store) SaveIndex(graphFP, key string, data []byte) error {
	if err := validName(graphFP); err != nil {
		return err
	}
	if err := validName(key); err != nil {
		return err
	}
	dir := filepath.Join(s.root, "indexes", graphFP)
	if _, err := os.Stat(dir); err != nil {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("datastore: %w", err)
		}
		// The fingerprint directory is new: sync its parent so the
		// directory entry itself survives a crash — atomicWrite below
		// only syncs the file and the fingerprint directory.
		if err := syncDir(filepath.Join(s.root, "indexes")); err != nil {
			return err
		}
	}
	return atomicWrite(filepath.Join(dir, key+".idx"), func(f *os.File) error {
		if _, err := f.Write(data); err != nil {
			return fmt.Errorf("datastore: writing index %s/%s: %w", graphFP, key, err)
		}
		return nil
	})
}

// LoadIndex reads a persisted index artifact. A missing artifact
// returns an error wrapping fs.ErrNotExist; callers treat any error
// as a cache miss. This method implements bippr.DiskTier.
func (s *Store) LoadIndex(graphFP, key string) ([]byte, error) {
	if err := validName(graphFP); err != nil {
		return nil, err
	}
	if err := validName(key); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.root, "indexes", graphFP, key+".idx"))
	if err != nil {
		return nil, fmt.Errorf("datastore: index %s/%s: %w", graphFP, key, err)
	}
	return data, nil
}

// IndexUsage reports how many index artifacts the store holds and
// their total size in bytes — the on-disk side of the warm-cache
// observability surfaced by the server's status endpoint.
func (s *Store) IndexUsage() (files int, bytes int64, err error) {
	err = filepath.WalkDir(filepath.Join(s.root, "indexes"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".idx") {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		files++
		bytes += info.Size()
		return nil
	})
	if err != nil {
		return 0, 0, fmt.Errorf("datastore: %w", err)
	}
	return files, bytes, nil
}

// ReadLog returns the task's full log, or an empty string when none
// exists.
func (s *Store) ReadLog(taskID string) (string, error) {
	if err := validName(taskID); err != nil {
		return "", err
	}
	data, err := os.ReadFile(filepath.Join(s.root, "logs", taskID+".log"))
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", fmt.Errorf("datastore: %w", err)
	}
	return string(data), nil
}
