// Package datastore implements the platform's persistent storage: the
// component of the demo architecture responsible for datasets, task
// results and logs (Figure 1 of the paper).
//
// The store is a directory tree:
//
//	root/
//	  datasets/<name>.asd         uploaded graphs (ASD format)
//	  datasets/<name>.labels      label sidecars
//	  datasets/<name>.fp          structural graph fingerprint sidecars
//	  results/<task-id>.json      completed task results
//	  logs/<task-id>.log          per-task execution logs
//	  indexes/<graph-fp>/<key>.idx    persisted reverse-push target indexes
//	  endpoints/<graph-fp>/<key>.ep   persisted walk-endpoint recordings
//
// Derived artifacts (indexes, endpoints) are opaque blobs to this
// package (the bippr codecs own their formats); they are grouped per
// structural graph fingerprint so a re-uploaded dataset naturally
// orphans its predecessor's artifacts instead of serving them.
// Orphans are reclaimed by two lifecycle mechanisms: DeleteDataset
// removes a deleted dataset's artifact trees once no other stored
// dataset shares the fingerprint (refcounted through the .fp
// sidecars), and SweepArtifacts enforces a total size cap by reaping
// the least recently *accessed* artifacts first. Access recency is
// tracked in each artifact's mtime, which loads refresh — the
// filesystem atime is deliberately not trusted (noatime/relatime
// mounts would freeze it).
//
// All writes are atomic (temp file + fsync + rename + directory
// fsync) so a crashed writer never leaves a partially visible
// artifact and a completed write survives power loss. A Store is safe
// for concurrent use.
package datastore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/formats"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/obs"
)

// Store is a file-backed datastore rooted at a directory. Its I/O
// metrics (fsync counts, artifact read/write latency) are per-instance
// and exported through MetricsRegistry.
type Store struct {
	root string
	mu   sync.Mutex

	reg               *obs.Registry
	fsyncs            *obs.Counter
	artifactReadSecs  *obs.Histogram
	artifactWriteSecs *obs.Histogram
}

// artifactKinds maps each derived-artifact kind to its file
// extension. Both kinds share the save/load/usage/sweep machinery;
// the extension keeps a misplaced blob from ever being decoded as the
// wrong kind.
var artifactKinds = map[string]string{
	"indexes":   ".idx",
	"endpoints": ".ep",
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"datasets", "results", "logs", "indexes", "endpoints", "traffic"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("datastore: %w", err)
		}
	}
	r := obs.NewRegistry()
	return &Store{
		root:              dir,
		reg:               r,
		fsyncs:            r.Counter("cyclerank_datastore_fsyncs_total", "File and directory fsyncs performed by durable writes."),
		artifactReadSecs:  r.Histogram("cyclerank_datastore_artifact_read_seconds", "Persisted artifact read latency (successful loads).", nil),
		artifactWriteSecs: r.Histogram("cyclerank_datastore_artifact_write_seconds", "Persisted artifact durable-write latency (successful saves).", nil),
	}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// MetricsRegistry returns the store's I/O metrics registry, for
// merging into a scrape endpoint.
func (s *Store) MetricsRegistry() *obs.Registry { return s.reg }

// validName guards against path traversal in user-supplied names.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("datastore: empty name")
	}
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." || strings.Contains(name, "..") {
		return fmt.Errorf("datastore: invalid name %q", name)
	}
	return nil
}

// atomicWrite writes data to path via a temp file, fsync, rename, and
// a final fsync of the containing directory. The rename makes the
// artifact appear atomically; the file sync makes its *contents*
// durable before it becomes visible; the directory sync makes the
// rename itself durable, so a crash immediately after atomicWrite
// returns cannot roll the directory entry back to the old (or no)
// artifact.
func (s *Store) atomicWrite(path string, write func(f *os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("datastore: %w", err)
	}
	s.fsyncs.Inc()
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	return s.syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename within it survives
// a crash. Filesystems that reject directory fsync (some network and
// FUSE mounts) degrade to the pre-sync durability rather than failing
// the write.
func (s *Store) syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("datastore: syncing %s: %w", dir, err)
	}
	s.fsyncs.Inc()
	return nil
}

// SaveDataset stores g under the given name, overwriting any previous
// dataset with that name. Labels, when present, are stored in a
// sidecar so round-trips preserve them. A second sidecar records the
// graph's structural fingerprint, which DeleteDataset later uses to
// refcount the derived-artifact trees the dataset's graph hashed to.
func (s *Store) SaveDataset(name string, g *graph.Graph) error {
	if err := validName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gpath := filepath.Join(s.root, "datasets", name+".asd")
	lpath := filepath.Join(s.root, "datasets", name+".labels")
	err := s.atomicWrite(gpath, func(f *os.File) error {
		return formats.WriteASD(f, g)
	})
	if err != nil {
		return err
	}
	err = s.atomicWrite(filepath.Join(s.root, "datasets", name+".fp"), func(f *os.File) error {
		_, err := fmt.Fprintln(f, graph.Fingerprint(g))
		return err
	})
	if err != nil {
		return err
	}
	if g.Labels() == nil {
		os.Remove(lpath)
		return nil
	}
	return s.atomicWrite(lpath, func(f *os.File) error {
		for _, l := range g.Labels().Names() {
			if strings.ContainsRune(l, '\n') {
				return fmt.Errorf("datastore: label with newline: %q", l)
			}
			if _, err := fmt.Fprintln(f, l); err != nil {
				return err
			}
		}
		return nil
	})
}

// datasetFingerprint resolves the stored fingerprint of a dataset:
// from the .fp sidecar when present, otherwise (datasets saved before
// sidecars existed) by loading the graph and hashing it. ok is false
// when neither works.
func (s *Store) datasetFingerprint(name string) (fp string, ok bool) {
	data, err := os.ReadFile(filepath.Join(s.root, "datasets", name+".fp"))
	if err == nil {
		if fp := strings.TrimSpace(string(data)); fp != "" {
			return fp, true
		}
	}
	g, err := s.LoadDataset(name)
	if err != nil {
		return "", false
	}
	return graph.Fingerprint(g), true
}

// fingerprintShared reports whether any stored dataset other than
// exclude has the given fingerprint, judged by the .fp sidecars.
func (s *Store) fingerprintShared(fp, exclude string) bool {
	entries, err := os.ReadDir(filepath.Join(s.root, "datasets"))
	if err != nil {
		// Unreadable directory: assume shared — keeping an orphaned
		// artifact tree costs disk the sweep reclaims; deleting a
		// shared one costs another dataset its warm cache.
		return true
	}
	for _, e := range entries {
		name, isFP := strings.CutSuffix(e.Name(), ".fp")
		if !isFP || name == exclude {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.root, "datasets", e.Name()))
		if err == nil && strings.TrimSpace(string(data)) == fp {
			return true
		}
	}
	return false
}

// LoadDataset retrieves a stored dataset by name.
func (s *Store) LoadDataset(name string) (*graph.Graph, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	gpath := filepath.Join(s.root, "datasets", name+".asd")
	gf, err := os.Open(gpath)
	if err != nil {
		return nil, fmt.Errorf("datastore: dataset %q: %w", name, err)
	}
	defer gf.Close()

	lpath := filepath.Join(s.root, "datasets", name+".labels")
	lf, err := os.Open(lpath)
	if err != nil {
		if os.IsNotExist(err) {
			return formats.ReadASD(gf)
		}
		return nil, fmt.Errorf("datastore: dataset %q labels: %w", name, err)
	}
	defer lf.Close()
	return formats.ReadASDWithLabels(gf, lf)
}

// DeleteDataset removes a stored dataset. Deleting a missing dataset
// is not an error.
//
// The dataset's derived artifacts (indexes, endpoint recordings under
// its graph's fingerprint) are deleted too — unless another stored
// dataset's graph hashed to the same fingerprint, in which case the
// artifacts are still serving that dataset and must survive. The
// refcount reads the .fp sidecars, so it never loads other datasets'
// graphs; a dataset saved before sidecars existed is invisible to it,
// which at worst deletes a cache that dataset will transparently
// recompute.
func (s *Store) DeleteDataset(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fp, haveFP := s.datasetFingerprint(name)
	for _, p := range []string{
		filepath.Join(s.root, "datasets", name+".asd"),
		filepath.Join(s.root, "datasets", name+".labels"),
		filepath.Join(s.root, "datasets", name+".fp"),
	} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("datastore: %w", err)
		}
	}
	if haveFP && !s.fingerprintShared(fp, name) {
		return s.DeleteArtifacts(fp)
	}
	return nil
}

// ListDatasets returns the names of all stored datasets, sorted.
func (s *Store) ListDatasets() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "datasets"))
	if err != nil {
		return nil, fmt.Errorf("datastore: %w", err)
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".asd"); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// SaveResult stores an arbitrary JSON-encodable result document under
// a task id. It takes no store-wide lock: each write goes through its
// own temp file and atomic rename (readers always see a complete
// document), and only one executor owns a task id at a time — so one
// task's fsync latency never stalls another's persistence.
func (s *Store) SaveResult(taskID string, doc any) error {
	if err := validName(taskID); err != nil {
		return err
	}
	path := filepath.Join(s.root, "results", taskID+".json")
	return s.atomicWrite(path, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return fmt.Errorf("datastore: encoding result %s: %w", taskID, err)
		}
		return nil
	})
}

// LoadResult decodes a stored result document into out.
func (s *Store) LoadResult(taskID string, out any) error {
	if err := validName(taskID); err != nil {
		return err
	}
	data, err := os.ReadFile(filepath.Join(s.root, "results", taskID+".json"))
	if err != nil {
		return fmt.Errorf("datastore: result %q: %w", taskID, err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("datastore: decoding result %q: %w", taskID, err)
	}
	return nil
}

// HasResult reports whether a result exists for the task id.
func (s *Store) HasResult(taskID string) bool {
	if validName(taskID) != nil {
		return false
	}
	_, err := os.Stat(filepath.Join(s.root, "results", taskID+".json"))
	return err == nil
}

// ListResults returns all stored result task ids, sorted.
func (s *Store) ListResults() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "results"))
	if err != nil {
		return nil, fmt.Errorf("datastore: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if id, ok := strings.CutSuffix(e.Name(), ".json"); ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// AppendLog appends a line to the task's execution log.
func (s *Store) AppendLog(taskID, line string) error {
	if err := validName(taskID); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.root, "logs", taskID+".log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, line); err != nil {
		return fmt.Errorf("datastore: %w", err)
	}
	return nil
}

// saveArtifact persists one derived artifact under
// <kind>/<graphFP>/<key><ext>. The blob is opaque to the store (the
// bippr codecs own the formats). Writes are atomic and durable like
// every other artifact, so a crash never leaves a torn artifact — at
// worst a missing one, which the caches treat as a miss.
//
// Like SaveResult, saveArtifact takes no store-wide lock: the temp
// file + atomic rename protocol is self-contained, concurrent writers
// of one key are already serialized by the caches' single-flight, and
// distinct keys must not queue behind each other's fsyncs.
func (s *Store) saveArtifact(kind, graphFP, key string, data []byte) error {
	ext, ok := artifactKinds[kind]
	if !ok {
		return fmt.Errorf("datastore: unknown artifact kind %q", kind)
	}
	if err := validName(graphFP); err != nil {
		return err
	}
	if err := validName(key); err != nil {
		return err
	}
	dir := filepath.Join(s.root, kind, graphFP)
	if _, err := os.Stat(dir); err != nil {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("datastore: %w", err)
		}
		// The fingerprint directory is new: sync its parent so the
		// directory entry itself survives a crash — atomicWrite below
		// only syncs the file and the fingerprint directory.
		if err := s.syncDir(filepath.Join(s.root, kind)); err != nil {
			return err
		}
	}
	t0 := time.Now()
	err := s.atomicWrite(filepath.Join(dir, key+ext), func(f *os.File) error {
		if _, err := f.Write(data); err != nil {
			return fmt.Errorf("datastore: writing %s %s/%s: %w", kind, graphFP, key, err)
		}
		return nil
	})
	if err == nil {
		s.artifactWriteSecs.ObserveSince(t0)
	}
	return err
}

// loadArtifact reads a persisted artifact. A missing artifact returns
// an error wrapping fs.ErrNotExist; callers treat any error as a
// cache miss. A successful load refreshes the artifact's mtime — the
// access clock SweepArtifacts orders evictions by — best-effort.
func (s *Store) loadArtifact(kind, graphFP, key string) ([]byte, error) {
	ext, ok := artifactKinds[kind]
	if !ok {
		return nil, fmt.Errorf("datastore: unknown artifact kind %q", kind)
	}
	if err := validName(graphFP); err != nil {
		return nil, err
	}
	if err := validName(key); err != nil {
		return nil, err
	}
	path := filepath.Join(s.root, kind, graphFP, key+ext)
	t0 := time.Now()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("datastore: %s %s/%s: %w", kind, graphFP, key, err)
	}
	s.artifactReadSecs.ObserveSince(t0)
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return data, nil
}

// SaveIndex persists one reverse-push index artifact under
// indexes/<graphFP>/<key>.idx. This method implements bippr.DiskTier.
func (s *Store) SaveIndex(graphFP, key string, data []byte) error {
	return s.saveArtifact("indexes", graphFP, key, data)
}

// LoadIndex reads a persisted index artifact. This method implements
// bippr.DiskTier.
func (s *Store) LoadIndex(graphFP, key string) ([]byte, error) {
	return s.loadArtifact("indexes", graphFP, key)
}

// SaveEndpoints persists one walk-endpoint recording under
// endpoints/<graphFP>/<key>.ep. This method implements
// bippr.EndpointDiskTier.
func (s *Store) SaveEndpoints(graphFP, key string, data []byte) error {
	return s.saveArtifact("endpoints", graphFP, key, data)
}

// LoadEndpoints reads a persisted walk-endpoint recording. This
// method implements bippr.EndpointDiskTier.
func (s *Store) LoadEndpoints(graphFP, key string) ([]byte, error) {
	return s.loadArtifact("endpoints", graphFP, key)
}

// artifactFile is one persisted artifact as the sweep sees it.
type artifactFile struct {
	path  string
	bytes int64
	atime time.Time // mtime, refreshed by loads — see the package comment
}

// walkArtifacts lists every persisted artifact of the given kind.
func (s *Store) walkArtifacts(kind string) ([]artifactFile, error) {
	ext := artifactKinds[kind]
	var out []artifactFile
	err := filepath.WalkDir(filepath.Join(s.root, kind), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ext) {
			return err
		}
		info, err := d.Info()
		if err != nil {
			// The file vanished mid-walk (a concurrent sweep or
			// delete); skip it rather than failing the listing.
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		out = append(out, artifactFile{path: path, bytes: info.Size(), atime: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("datastore: %w", err)
	}
	return out, nil
}

// ArtifactUsage reports how many artifacts of one kind ("indexes" or
// "endpoints") the store holds and their total size in bytes — the
// on-disk side of the warm-cache observability surfaced by the
// server's status endpoint.
func (s *Store) ArtifactUsage(kind string) (files int, bytes int64, err error) {
	if _, ok := artifactKinds[kind]; !ok {
		return 0, 0, fmt.Errorf("datastore: unknown artifact kind %q", kind)
	}
	arts, err := s.walkArtifacts(kind)
	if err != nil {
		return 0, 0, err
	}
	for _, a := range arts {
		bytes += a.bytes
	}
	return len(arts), bytes, nil
}

// IndexUsage reports the persisted index artifacts' count and size.
func (s *Store) IndexUsage() (files int, bytes int64, err error) {
	return s.ArtifactUsage("indexes")
}

// EndpointUsage reports the persisted endpoint recordings' count and
// size.
func (s *Store) EndpointUsage() (files int, bytes int64, err error) {
	return s.ArtifactUsage("endpoints")
}

// SweepStats reports one artifact sweep: what remains and what was
// reaped.
type SweepStats struct {
	// Files / Bytes are the artifacts remaining after the sweep,
	// across both kinds.
	Files int   `json:"files"`
	Bytes int64 `json:"bytes"`
	// Reaped / ReapedBytes count the artifacts this sweep removed.
	Reaped      int   `json:"reaped"`
	ReapedBytes int64 `json:"reaped_bytes"`
}

// SweepPolicy configures an artifact sweep. Each limit is independent
// and zero disables it.
type SweepPolicy struct {
	// TotalBytes caps the combined size of every derived artifact.
	TotalBytes int64
	// KindBytes caps each artifact kind ("indexes", "endpoints")
	// separately — reverse-push indexes and walk-endpoint recordings
	// age differently (indexes serve every query against a target,
	// recordings only walk-reuse queries from a source), so one kind
	// must not be able to evict the whole budget of the other.
	KindBytes map[string]int64
	// Pinned artifacts — keyed by store-relative slash path, e.g.
	// "indexes/<graphFP>/<key>.idx" — are never reaped. The learned
	// pre-warm pins the artifacts observed traffic is hottest on:
	// pinning wins over every cap.
	Pinned map[string]bool
}

// SweepArtifacts enforces a total size cap over every derived
// artifact (indexes and endpoint recordings together) — the
// single-cap form of SweepArtifactsPolicy.
func (s *Store) SweepArtifacts(maxBytes int64) (SweepStats, error) {
	return s.SweepArtifactsPolicy(SweepPolicy{TotalBytes: maxBytes})
}

// sweepEntry is one artifact during a policy sweep.
type sweepEntry struct {
	artifactFile
	kind    string
	removed bool
}

// SweepArtifactsPolicy enforces a sweep policy: first each per-kind
// cap, then the total cap, each reaping the least recently accessed
// unpinned artifacts first — LRU by the mtime access clock loads
// refresh, with the path as a deterministic tiebreak. A policy with
// no caps only reports usage.
//
// Reaping never races a reader into corruption: loads open the file
// before reading, and an unlinked-but-open file remains fully
// readable (POSIX), so a concurrent load either sees the complete
// artifact or a clean not-exist miss. Emptied fingerprint directories
// are removed best-effort.
func (s *Store) SweepArtifactsPolicy(pol SweepPolicy) (SweepStats, error) {
	var entries []*sweepEntry
	kindBytes := make(map[string]int64)
	for kind := range artifactKinds {
		arts, err := s.walkArtifacts(kind)
		if err != nil {
			return SweepStats{}, err
		}
		for _, a := range arts {
			entries = append(entries, &sweepEntry{artifactFile: a, kind: kind})
			kindBytes[kind] += a.bytes
		}
	}
	stats := SweepStats{Files: len(entries)}
	for _, e := range entries {
		stats.Bytes += e.bytes
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].atime.Equal(entries[j].atime) {
			return entries[i].atime.Before(entries[j].atime)
		}
		return entries[i].path < entries[j].path
	})

	pinned := func(e *sweepEntry) bool {
		if len(pol.Pinned) == 0 {
			return false
		}
		rel, err := filepath.Rel(s.root, e.path)
		return err == nil && pol.Pinned[filepath.ToSlash(rel)]
	}
	remove := func(e *sweepEntry) {
		e.removed = true
		if err := os.Remove(e.path); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				// Already gone (concurrent delete); treat as reaped
				// space either way so the accounting cannot loop.
				stats.Files--
				stats.Bytes -= e.bytes
				kindBytes[e.kind] -= e.bytes
			}
			return
		}
		stats.Files--
		stats.Bytes -= e.bytes
		kindBytes[e.kind] -= e.bytes
		stats.Reaped++
		stats.ReapedBytes += e.bytes
		// Drop the fingerprint directory once its last artifact is
		// gone; Remove refuses non-empty directories, so this is safe
		// against concurrent writers.
		_ = os.Remove(filepath.Dir(e.path))
	}

	for kind, limit := range pol.KindBytes {
		if limit <= 0 {
			continue
		}
		for _, e := range entries {
			if kindBytes[kind] <= limit {
				break
			}
			if e.removed || e.kind != kind || pinned(e) {
				continue
			}
			remove(e)
		}
	}
	if pol.TotalBytes > 0 {
		for _, e := range entries {
			if stats.Bytes <= pol.TotalBytes {
				break
			}
			if e.removed || pinned(e) {
				continue
			}
			remove(e)
		}
	}
	return stats, nil
}

// SaveTrafficSketch durably persists the serving tier's
// query-frequency sketch (an opaque blob; the traffic codec owns the
// format), using the same atomic-write protocol as every artifact —
// a crash mid-save costs the previous sketch nothing.
func (s *Store) SaveTrafficSketch(data []byte) error {
	return s.atomicWrite(filepath.Join(s.root, "traffic", "sketch.bin"), func(f *os.File) error {
		if _, err := f.Write(data); err != nil {
			return fmt.Errorf("datastore: writing traffic sketch: %w", err)
		}
		return nil
	})
}

// LoadTrafficSketch reads the persisted query-frequency sketch blob.
// A store that never saved one returns (nil, nil) — callers decode
// nil as a cold sketch.
func (s *Store) LoadTrafficSketch() ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.root, "traffic", "sketch.bin"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("datastore: traffic sketch: %w", err)
	}
	return data, nil
}

// DeleteArtifacts removes every persisted artifact (both kinds)
// derived from the graph with the given structural fingerprint.
func (s *Store) DeleteArtifacts(graphFP string) error {
	if err := validName(graphFP); err != nil {
		return err
	}
	for kind := range artifactKinds {
		if err := os.RemoveAll(filepath.Join(s.root, kind, graphFP)); err != nil {
			return fmt.Errorf("datastore: %w", err)
		}
	}
	return nil
}

// ReadLog returns the task's full log, or an empty string when none
// exists.
func (s *Store) ReadLog(taskID string) (string, error) {
	if err := validName(taskID); err != nil {
		return "", err
	}
	data, err := os.ReadFile(filepath.Join(s.root, "logs", taskID+".log"))
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", fmt.Errorf("datastore: %w", err)
	}
	return string(data), nil
}
