package datastore

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func TestIndexRoundTrip(t *testing.T) {
	s := newStore(t)
	blob := []byte("opaque index artifact bytes")
	if err := s.SaveIndex("abcd1234", "t7-a0-r0", blob); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadIndex("abcd1234", "t7-a0-r0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("loaded %q, want %q", got, blob)
	}
	// Overwrite replaces.
	if err := s.SaveIndex("abcd1234", "t7-a0-r0", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ = s.LoadIndex("abcd1234", "t7-a0-r0"); string(got) != "v2" {
		t.Fatalf("after overwrite: %q", got)
	}
}

func TestLoadIndexMissing(t *testing.T) {
	s := newStore(t)
	_, err := s.LoadIndex("abcd1234", "nope")
	if err == nil {
		t.Fatal("loading a missing index succeeded")
	}
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing index error %v does not wrap fs.ErrNotExist", err)
	}
}

func TestIndexNameValidation(t *testing.T) {
	s := newStore(t)
	for _, bad := range [][2]string{
		{"../escape", "key"},
		{"fp", "../escape"},
		{"", "key"},
		{"fp", ""},
		{"a/b", "key"},
		{"fp", "a\\b"},
	} {
		if err := s.SaveIndex(bad[0], bad[1], []byte("x")); err == nil {
			t.Errorf("SaveIndex(%q, %q) accepted invalid name", bad[0], bad[1])
		}
		if _, err := s.LoadIndex(bad[0], bad[1]); err == nil {
			t.Errorf("LoadIndex(%q, %q) accepted invalid name", bad[0], bad[1])
		}
	}
}

func TestIndexUsage(t *testing.T) {
	s := newStore(t)
	files, size, err := s.IndexUsage()
	if err != nil {
		t.Fatal(err)
	}
	if files != 0 || size != 0 {
		t.Fatalf("empty store reports %d files, %d bytes", files, size)
	}
	if err := s.SaveIndex("fp1", "k1", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveIndex("fp1", "k2", make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveIndex("fp2", "k1", make([]byte, 25)); err != nil {
		t.Fatal(err)
	}
	files, size, err = s.IndexUsage()
	if err != nil {
		t.Fatal(err)
	}
	if files != 3 || size != 175 {
		t.Fatalf("IndexUsage = (%d files, %d bytes), want (3, 175)", files, size)
	}
}

// TestAtomicWriteLeavesNoTemp: after a completed write the directory
// holds only the artifact — no .tmp- residue to confuse the usage
// accounting or a restore.
func TestAtomicWriteLeavesNoTemp(t *testing.T) {
	s := newStore(t)
	if err := s.SaveIndex("fp", "key", []byte("data")); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(s.Root(), "indexes", "fp")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "key.idx" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("index dir holds %v, want exactly [key.idx]", names)
	}
}
