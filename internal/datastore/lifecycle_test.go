package datastore

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

func TestEndpointArtifactRoundTrip(t *testing.T) {
	s := newStore(t)
	blob := []byte("opaque endpoint recording bytes")
	if err := s.SaveEndpoints("abcd1234", "s3-a0-s0-m100-w256", blob); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadEndpoints("abcd1234", "s3-a0-s0-m100-w256")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("loaded %q, want %q", got, blob)
	}
	if _, err := s.LoadEndpoints("abcd1234", "nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing endpoint artifact error %v does not wrap fs.ErrNotExist", err)
	}
	files, size, err := s.EndpointUsage()
	if err != nil {
		t.Fatal(err)
	}
	if files != 1 || size != int64(len(blob)) {
		t.Fatalf("EndpointUsage = (%d, %d), want (1, %d)", files, size, len(blob))
	}
	// Endpoint artifacts do not leak into the index accounting.
	if files, _, _ := s.IndexUsage(); files != 0 {
		t.Fatalf("IndexUsage sees %d endpoint artifacts", files)
	}
}

// setAtime pins an artifact's access clock (its mtime) so sweep-order
// tests are deterministic.
func setAtime(t *testing.T, path string, at time.Time) {
	t.Helper()
	if err := os.Chtimes(path, at, at); err != nil {
		t.Fatal(err)
	}
}

// TestSweepArtifactsLRUOrder is the sweep-determinism test: the size
// cap is honored exactly, artifacts fall least-recently-accessed
// first across BOTH kinds, and recently loaded artifacts survive
// because loads refresh the access clock.
func TestSweepArtifactsLRUOrder(t *testing.T) {
	s := newStore(t)
	base := time.Now().Add(-time.Hour)
	// Four 100-byte artifacts, alternating kinds, with strictly
	// increasing access times: idx-old < ep-old < idx-new < ep-new.
	saves := []struct {
		kind, fp, key string
		at            time.Time
	}{
		{"indexes", "fp1", "idx-old", base},
		{"endpoints", "fp1", "ep-old", base.Add(time.Minute)},
		{"indexes", "fp2", "idx-new", base.Add(2 * time.Minute)},
		{"endpoints", "fp2", "ep-new", base.Add(3 * time.Minute)},
	}
	paths := make(map[string]string)
	for _, sv := range saves {
		if err := s.saveArtifact(sv.kind, sv.fp, sv.key, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(s.Root(), sv.kind, sv.fp, sv.key+artifactKinds[sv.kind])
		setAtime(t, p, sv.at)
		paths[sv.key] = p
	}

	// Under the cap: nothing reaped, usage reported.
	st, err := s.SweepArtifacts(400)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reaped != 0 || st.Files != 4 || st.Bytes != 400 {
		t.Fatalf("under-cap sweep = %+v", st)
	}

	// A load refreshes idx-old's access clock, so the NEXT oldest
	// (ep-old) must fall instead.
	if _, err := s.LoadIndex("fp1", "idx-old"); err != nil {
		t.Fatal(err)
	}
	st, err = s.SweepArtifacts(350)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reaped != 1 || st.ReapedBytes != 100 || st.Files != 3 || st.Bytes != 300 {
		t.Fatalf("sweep to 350 = %+v", st)
	}
	if _, err := os.Stat(paths["ep-old"]); !errors.Is(err, fs.ErrNotExist) {
		t.Error("LRU artifact ep-old survived the sweep")
	}
	if _, err := os.Stat(paths["idx-old"]); err != nil {
		t.Error("freshly loaded idx-old was reaped despite its refreshed access clock")
	}

	// Tighten the cap: the two next-oldest (idx-new, ep-new) fall and
	// the just-loaded idx-old — now the most recently accessed —
	// survives; the cap is honored exactly (100 <= 150).
	st, err = s.SweepArtifacts(150)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 1 || st.Bytes != 100 || st.Reaped != 2 {
		t.Fatalf("sweep to 150 = %+v", st)
	}
	if _, err := os.Stat(paths["idx-old"]); err != nil {
		t.Error("most recently accessed artifact did not survive")
	}
	// Emptied fingerprint directories are removed.
	if _, err := os.Stat(filepath.Join(s.Root(), "indexes", "fp2")); !errors.Is(err, fs.ErrNotExist) {
		t.Error("emptied fingerprint directory not removed")
	}
	// maxBytes <= 0 is "no cap": report only.
	st, err = s.SweepArtifacts(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reaped != 0 || st.Files != 1 {
		t.Fatalf("no-cap sweep = %+v", st)
	}
}

// TestSweepNeverTearsAReader races loads against sweeps: a concurrent
// reader must observe either the complete artifact or a clean miss,
// never partial data — the POSIX unlink-during-read guarantee the GC
// relies on. Run with -race.
func TestSweepNeverTearsAReader(t *testing.T) {
	s := newStore(t)
	blob := bytes.Repeat([]byte("x"), 4096)
	if err := s.SaveIndex("fp", "hot", blob); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.SweepArtifacts(1); err != nil { // cap below the blob: always reap
				t.Error(err)
				return
			}
			// Re-create so readers keep having something to race.
			if err := s.SaveIndex("fp", "hot", blob); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		data, err := s.LoadIndex("fp", "hot")
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("read during sweep: %v", err)
			}
			continue
		}
		if !bytes.Equal(data, blob) {
			t.Fatalf("read %d bytes of torn artifact", len(data))
		}
	}
	close(stop)
	wg.Wait()
}

// TestDeleteDatasetReclaimsArtifacts: deleting the only dataset with
// a fingerprint removes that fingerprint's artifact trees (both
// kinds).
func TestDeleteDatasetReclaimsArtifacts(t *testing.T) {
	s := newStore(t)
	g := labeledTriangle(t)
	fp := graph.Fingerprint(g)
	if err := s.SaveDataset("tri", g); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveIndex(fp, "k1", []byte("idx")); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveEndpoints(fp, "k1", []byte("ep")); err != nil {
		t.Fatal(err)
	}
	// Artifacts of an unrelated fingerprint must survive.
	if err := s.SaveIndex("otherfp", "k1", []byte("idx")); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteDataset("tri"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(s.Root(), "indexes", fp)); !errors.Is(err, fs.ErrNotExist) {
		t.Error("deleted dataset's index tree survived")
	}
	if _, err := os.Stat(filepath.Join(s.Root(), "endpoints", fp)); !errors.Is(err, fs.ErrNotExist) {
		t.Error("deleted dataset's endpoint tree survived")
	}
	if _, err := s.LoadIndex("otherfp", "k1"); err != nil {
		t.Error("unrelated fingerprint's artifacts were deleted")
	}
	// The fingerprint sidecar is gone with the dataset.
	if _, err := os.Stat(filepath.Join(s.Root(), "datasets", "tri.fp")); !errors.Is(err, fs.ErrNotExist) {
		t.Error("fingerprint sidecar survived the delete")
	}
}

// TestDeleteDatasetSharedFingerprint is the orphan-accounting
// regression test: deleting a dataset whose graph fingerprint is
// shared by another stored dataset must NOT delete the shared
// artifacts — only the last holder's deletion reclaims them.
func TestDeleteDatasetSharedFingerprint(t *testing.T) {
	s := newStore(t)
	g := labeledTriangle(t)
	fp := graph.Fingerprint(g)
	if err := s.SaveDataset("tri-a", g); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveDataset("tri-b", g); err != nil { // same structure, same fingerprint
		t.Fatal(err)
	}
	if err := s.SaveIndex(fp, "k1", []byte("idx")); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteDataset("tri-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadIndex(fp, "k1"); err != nil {
		t.Fatalf("shared artifact deleted while tri-b still uses it: %v", err)
	}
	if err := s.DeleteDataset("tri-b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadIndex(fp, "k1"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("artifact survived the last holder's deletion: %v", err)
	}
}

// TestDeleteDatasetLegacyNoSidecar: a dataset saved without a .fp
// sidecar (pre-sidecar stores) still reclaims its artifacts — the
// fingerprint is recovered by loading the graph.
func TestDeleteDatasetLegacyNoSidecar(t *testing.T) {
	s := newStore(t)
	g := labeledTriangle(t)
	fp := graph.Fingerprint(g)
	if err := s.SaveDataset("tri", g); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(s.Root(), "datasets", "tri.fp")); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveIndex(fp, "k1", []byte("idx")); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteDataset("tri"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadIndex(fp, "k1"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("legacy dataset's artifacts not reclaimed: %v", err)
	}
}
