package pagerank

import (
	"context"
	"fmt"
	"math"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// WeightedPageRank runs (personalized) PageRank where the random
// surfer follows each out-edge with probability proportional to its
// weight instead of uniformly. With an all-ones overlay it reduces
// exactly to PageRank/Personalized (a property the tests assert).
func WeightedPageRank(ctx context.Context, ws *graph.Weights, p Params) (*ranking.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g := ws.Graph()
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	name := "pagerank-weighted"
	if len(p.Seeds) > 0 {
		name = "ppr-weighted"
	}
	if n == 0 {
		return ranking.NewResult(name, g, nil)
	}

	teleport := make([]float64, n)
	if len(p.Seeds) == 0 {
		u := 1 / float64(n)
		for i := range teleport {
			teleport[i] = u
		}
	} else {
		u := 1 / float64(len(p.Seeds))
		for _, s := range p.Seeds {
			teleport[s] += u
		}
	}

	// Precompute per-node total out-weight; nodes with zero total act
	// as dangling.
	outSum := make([]float64, n)
	for v := 0; v < n; v++ {
		outSum[v] = ws.OutSum(graph.NodeID(v))
	}

	cur := make([]float64, n)
	next := make([]float64, n)
	copy(cur, teleport)

	alpha, tol, maxIter := p.Alpha, p.tol(), p.maxIter()
	var (
		iter     int
		residual = math.Inf(1)
	)
	for iter = 0; iter < maxIter && residual > tol; iter++ {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("pagerank: weighted cancelled: %w", ctx.Err())
		default:
		}
		var danglingMass float64
		for v := 0; v < n; v++ {
			if outSum[v] == 0 {
				danglingMass += cur[v]
			}
		}
		for v := 0; v < n; v++ {
			next[v] = (1-alpha)*teleport[v] + alpha*danglingMass*teleport[v]
		}
		for v := 0; v < n; v++ {
			if outSum[v] == 0 || cur[v] == 0 {
				continue
			}
			factor := alpha * cur[v] / outSum[v]
			out := g.Out(graph.NodeID(v))
			weights := ws.OutWeights(graph.NodeID(v))
			for i, w := range out {
				next[w] += factor * weights[i]
			}
		}
		residual = 0
		for v := 0; v < n; v++ {
			residual += math.Abs(next[v] - cur[v])
		}
		cur, next = next, cur
	}

	res, err := ranking.NewResult(name, g, cur)
	if err != nil {
		return nil, err
	}
	res.Iterations = iter
	res.Residual = residual
	return res, nil
}
