package pagerank

import (
	"context"
	"fmt"
	"sort"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// TwoDRank computes 2DRank (Zhirov, Zhirov & Shepelyansky 2010), which
// combines the PageRank ordering K and the CheiRank ordering K* into a
// single ranking. The original procedure sweeps growing squares in the
// (K, K*) plane: a node enters the ranking at step s = max(K, K*),
// i.e. when the s×s square first contains it. Within one step, nodes
// on the vertical border (K = s) are appended first in ascending K*,
// then nodes strictly on the horizontal border (K* = s, K < s) in
// ascending K — a deterministic refinement of the paper's border walk.
//
// 2DRank produces an ordering, not a score; for uniformity with the
// other algorithms the result assigns score 1/position to each node.
func TwoDRank(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
	p.Seeds = nil
	pr, err := PageRank(ctx, g, p)
	if err != nil {
		return nil, err
	}
	cr, err := CheiRank(ctx, g, p)
	if err != nil {
		return nil, err
	}
	res, err := combine2D(g, pr, cr, "2drank")
	if err != nil {
		return nil, err
	}
	res.Iterations = pr.Iterations + cr.Iterations
	return res, nil
}

// PersonalizedTwoDRank runs the 2DRank square sweep over the
// Personalized PageRank and Personalized CheiRank orderings.
func PersonalizedTwoDRank(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
	if len(p.Seeds) == 0 {
		return nil, fmt.Errorf("pagerank: personalized 2drank requires at least one seed")
	}
	ppr, err := Personalized(ctx, g, p)
	if err != nil {
		return nil, err
	}
	pcr, err := PersonalizedCheiRank(ctx, g, p)
	if err != nil {
		return nil, err
	}
	res, err := combine2D(g, ppr, pcr, "p2drank")
	if err != nil {
		return nil, err
	}
	res.Iterations = ppr.Iterations + pcr.Iterations
	return res, nil
}

// combine2D performs the square sweep given the two constituent
// rankings.
func combine2D(g *graph.Graph, prRes, crRes *ranking.Result, name string) (*ranking.Result, error) {
	n := g.NumNodes()
	kPR := prRes.Rank() // 1-based PageRank positions
	kCR := crRes.Rank() // 1-based CheiRank positions

	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		u, v := ids[a], ids[b]
		su := max2(kPR[u], kCR[u])
		sv := max2(kPR[v], kCR[v])
		if su != sv {
			return su < sv // earlier square first
		}
		// Same square step: vertical border (K == s) before horizontal.
		uVert := kPR[u] == su
		vVert := kPR[v] == sv
		if uVert != vVert {
			return uVert
		}
		if uVert {
			// Both on vertical border: ascending K*.
			if kCR[u] != kCR[v] {
				return kCR[u] < kCR[v]
			}
		} else {
			// Both on horizontal border: ascending K.
			if kPR[u] != kPR[v] {
				return kPR[u] < kPR[v]
			}
		}
		return u < v
	})

	scores := make([]float64, n)
	for pos, v := range ids {
		scores[v] = 1 / float64(pos+1)
	}
	return ranking.NewResult(name, g, scores)
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
