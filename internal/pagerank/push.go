package pagerank

import (
	"context"
	"fmt"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// PushParams configures the forward-push approximate Personalized
// PageRank engine (Andersen, Chung, Lang, FOCS 2006).
type PushParams struct {
	// Alpha is the teleport probability, in (0, 1). Note the ACL
	// convention: alpha here is the probability of *stopping* at the
	// current node, so a power-iteration damping of d corresponds to
	// alpha = 1-d.
	Alpha float64
	// Epsilon is the residual threshold: push terminates when every
	// node's residual is below Epsilon·outdeg(node). Smaller is more
	// accurate and slower. Must be positive.
	Epsilon float64
	// Seeds receive the initial residual mass uniformly. At least one
	// seed is required.
	Seeds []graph.NodeID
}

// Validate checks parameters against g.
func (p PushParams) Validate(g *graph.Graph) error {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("pagerank: push alpha=%v outside (0,1)", p.Alpha)
	}
	if p.Epsilon <= 0 {
		return fmt.Errorf("pagerank: push epsilon=%v must be positive", p.Epsilon)
	}
	if len(p.Seeds) == 0 {
		return fmt.Errorf("pagerank: push requires at least one seed")
	}
	for _, s := range p.Seeds {
		if !g.ValidNode(s) {
			return fmt.Errorf("pagerank: seed node %d not in graph (N=%d)", s, g.NumNodes())
		}
	}
	return nil
}

// PushPPR computes an approximate Personalized PageRank vector by
// local forward push. Unlike power iteration it touches only the
// neighborhood of the seeds, making it sublinear on large graphs when
// epsilon is moderate — the reason the platform offers it for
// interactive queries on big datasets.
func PushPPR(ctx context.Context, g *graph.Graph, p PushParams) (*ranking.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	scores := make([]float64, n)
	residual := make([]float64, n)
	inQueue := make([]bool, n)

	seedMass := 1 / float64(len(p.Seeds))
	var queue []graph.NodeID
	for _, s := range p.Seeds {
		residual[s] += seedMass
	}
	for _, s := range p.Seeds {
		if !inQueue[s] && exceeds(g, residual, s, p.Epsilon) {
			inQueue[s] = true
			queue = append(queue, s)
		}
	}

	var pushes int64
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false

		pushes++
		if pushes%cancelEvery == 0 {
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("pagerank: push cancelled: %w", ctx.Err())
			default:
			}
		}

		r := residual[v]
		if r == 0 {
			continue
		}
		residual[v] = 0
		scores[v] += p.Alpha * r

		out := g.Out(v)
		if len(out) == 0 {
			// Dangling node: return the walk mass to the seeds, the
			// same convention as the power-iteration engine.
			back := (1 - p.Alpha) * r * seedMass
			for _, s := range p.Seeds {
				residual[s] += back
				if !inQueue[s] && exceeds(g, residual, s, p.Epsilon) {
					inQueue[s] = true
					queue = append(queue, s)
				}
			}
			continue
		}
		share := (1 - p.Alpha) * r / float64(len(out))
		for _, w := range out {
			residual[w] += share
			if !inQueue[w] && exceeds(g, residual, w, p.Epsilon) {
				inQueue[w] = true
				queue = append(queue, w)
			}
		}
	}

	res, err := ranking.NewResult("ppr-push", g, scores)
	if err != nil {
		return nil, err
	}
	res.Iterations = int(pushes)
	return res, nil
}

const cancelEvery = 1 << 14

// exceeds reports whether v's residual is large enough to push:
// residual > epsilon·outdeg (dangling nodes use outdeg 1 so trapped
// mass still drains).
func exceeds(g *graph.Graph, residual []float64, v graph.NodeID, eps float64) bool {
	d := g.OutDegree(v)
	if d == 0 {
		d = 1
	}
	return residual[v] > eps*float64(d)
}
