package pagerank

import (
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// TestCombine2DSquareSweep verifies the square-sweep order against a
// hand-worked example.
//
// With PR ranks K = [1,2,3,4] and CheiRank ranks K* = [4,3,2,1]
// (node index = position in the arrays):
//
//	node1: max(2,3)=3, horizontal border (K*=3, K<3)
//	node2: max(3,2)=3, vertical border   (K=3)
//	node0: max(1,4)=4, horizontal border (K*=4, K<4)
//	node3: max(4,1)=4, vertical border   (K=4)
//
// Square s=3 precedes s=4; within a square the vertical border comes
// first. Expected 2DRank order: node2, node1, node3, node0.
func TestCombine2DSquareSweep(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ranking.NewResult("pr", g, []float64{4, 3, 2, 1}) // ranks 1,2,3,4
	if err != nil {
		t.Fatal(err)
	}
	cr, err := ranking.NewResult("cr", g, []float64{1, 2, 3, 4}) // ranks 4,3,2,1
	if err != nil {
		t.Fatal(err)
	}
	res, err := combine2D(g, pr, cr, "2drank")
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []graph.NodeID{2, 1, 3, 0}
	top := res.Top(-1)
	if len(top) != 4 {
		t.Fatalf("scored %d nodes", len(top))
	}
	for i, want := range wantOrder {
		if top[i].Node != want {
			t.Errorf("2DRank position %d = node %d, want node %d (full: %v)", i+1, top[i].Node, want, top)
		}
	}
	// Scores are 1/position.
	if top[0].Score != 1 || top[3].Score != 0.25 {
		t.Errorf("scores = %v, %v", top[0].Score, top[3].Score)
	}
}

// TestCombine2DDiagonal checks the corner case where a node sits
// exactly on the square corner (K == K* == s): it belongs to the
// vertical border and precedes same-step horizontal nodes.
func TestCombine2DDiagonal(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// PR ranks: node0=1, node1=2, node2=3. K* ranks: node0=3, node1=2, node2=1.
	pr, _ := ranking.NewResult("pr", g, []float64{3, 2, 1})
	cr, _ := ranking.NewResult("cr", g, []float64{1, 2, 3})
	res, err := combine2D(g, pr, cr, "2drank")
	if err != nil {
		t.Fatal(err)
	}
	// node1: max(2,2)=2 (corner, vertical) — first.
	// node2: max(3,1)=3 vertical; node0: max(1,3)=3 horizontal.
	wantOrder := []graph.NodeID{1, 2, 0}
	top := res.Top(-1)
	for i, want := range wantOrder {
		if top[i].Node != want {
			t.Errorf("position %d = node %d, want %d", i+1, top[i].Node, want)
		}
	}
}
