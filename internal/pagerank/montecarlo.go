package pagerank

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// MCParams configures the Monte-Carlo Personalized PageRank engine.
type MCParams struct {
	// Alpha is the damping factor (continue probability), in (0, 1),
	// matching the power-iteration convention.
	Alpha float64
	// Walks is the number of random walks started per seed; more walks
	// mean lower variance. Must be positive.
	Walks int
	// MaxSteps caps a single walk's length as a safety net; zero means
	// 100.
	MaxSteps int
	// Seeds are the walk origins. At least one is required.
	Seeds []graph.NodeID
	// Seed is the RNG seed, making runs reproducible.
	Seed int64
}

// Validate checks parameters against g.
func (p MCParams) Validate(g *graph.Graph) error {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("pagerank: mc alpha=%v outside (0,1)", p.Alpha)
	}
	if p.Walks <= 0 {
		return fmt.Errorf("pagerank: mc walks=%d must be positive", p.Walks)
	}
	if p.MaxSteps < 0 {
		return fmt.Errorf("pagerank: mc negative max steps %d", p.MaxSteps)
	}
	if len(p.Seeds) == 0 {
		return fmt.Errorf("pagerank: mc requires at least one seed")
	}
	for _, s := range p.Seeds {
		if !g.ValidNode(s) {
			return fmt.Errorf("pagerank: seed node %d not in graph (N=%d)", s, g.NumNodes())
		}
	}
	return nil
}

// MonteCarloPPR estimates Personalized PageRank by simulating random
// walks with restart: each walk starts at a seed, follows a uniform
// random out-edge with probability Alpha and terminates otherwise; the
// estimate for node v is the fraction of walks that terminate at v.
// Walks hitting a dangling node restart at a random seed, matching the
// power-iteration engine's dangling convention.
func MonteCarloPPR(ctx context.Context, g *graph.Graph, p MCParams) (*ranking.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	maxSteps := p.MaxSteps
	if maxSteps == 0 {
		maxSteps = 100
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := g.NumNodes()
	counts := make([]int64, n)
	total := int64(0)

	for wi := 0; wi < p.Walks; wi++ {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("pagerank: mc cancelled: %w", ctx.Err())
		default:
		}
		for _, s := range p.Seeds {
			v := s
			for step := 0; step < maxSteps; step++ {
				if rng.Float64() >= p.Alpha {
					break // terminate here
				}
				out := g.Out(v)
				if len(out) == 0 {
					// Dangling: restart at a random seed and continue.
					v = p.Seeds[rng.Intn(len(p.Seeds))]
					continue
				}
				v = out[rng.Intn(len(out))]
			}
			counts[v]++
			total++
		}
	}

	scores := make([]float64, n)
	for v, c := range counts {
		scores[v] = float64(c) / float64(total)
	}
	res, err := ranking.NewResult("ppr-mc", g, scores)
	if err != nil {
		return nil, err
	}
	res.Iterations = p.Walks * len(p.Seeds)
	return res, nil
}
