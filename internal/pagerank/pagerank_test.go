package pagerank

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

func edge(u, v graph.NodeID) graph.Edge { return graph.Edge{From: u, To: v} }

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomGraph(seed int64, n int, degree int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < n*degree; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestPageRankUniformOnCycle(t *testing.T) {
	// On a directed cycle every node has identical structure, so
	// PageRank must be uniform.
	const n = 5
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := PageRank(nil, g, Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if math.Abs(res.Scores[v]-1.0/n) > 1e-8 {
			t.Errorf("score[%d] = %v, want %v", v, res.Scores[v], 1.0/n)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := randomGraph(7, 50, 3)
	res, err := PageRank(nil, g, Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Sum()-1) > 1e-8 {
		t.Errorf("Sum = %v, want 1", res.Sum())
	}
	if res.Iterations == 0 {
		t.Error("no iterations recorded")
	}
	if res.Residual > 1e-9 {
		t.Errorf("residual %v did not converge", res.Residual)
	}
}

func TestPageRankStarCenter(t *testing.T) {
	// All leaves point to the center: center must dominate.
	const n = 6
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(i), 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := PageRank(nil, g, Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < n; v++ {
		if res.Scores[v] >= res.Scores[0] {
			t.Errorf("leaf %d (%v) >= center (%v)", v, res.Scores[v], res.Scores[0])
		}
	}
}

func TestPageRankHandlesDangling(t *testing.T) {
	// 0 -> 1, 1 dangles. Mass must not leak: sum stays 1.
	g := mustGraph(t, 2, []graph.Edge{edge(0, 1)})
	res, err := PageRank(nil, g, Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Sum()-1) > 1e-8 {
		t.Errorf("Sum with dangling node = %v, want 1", res.Sum())
	}
	if res.Scores[1] <= res.Scores[0] {
		t.Error("sink did not accumulate more mass than source")
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	var g graph.Graph
	res, err := PageRank(nil, &g, Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 0 {
		t.Error("scores on empty graph")
	}
}

func TestParamsValidation(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{edge(0, 1)})
	bad := []Params{
		{Alpha: 0},
		{Alpha: 1},
		{Alpha: -0.3},
		{Alpha: 1.5},
		{Alpha: 0.85, Tol: -1},
		{Alpha: 0.85, MaxIter: -1},
	}
	for _, p := range bad {
		if _, err := PageRank(nil, g, p); err == nil {
			t.Errorf("PageRank accepted %+v", p)
		}
	}
	// Seed validation applies to the personalized variants (classic
	// PageRank ignores seeds by design).
	if _, err := Personalized(nil, g, Params{Alpha: 0.85, Seeds: []graph.NodeID{99}}); err == nil {
		t.Error("Personalized accepted out-of-range seed")
	}
}

func TestPersonalizedRequiresSeeds(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{edge(0, 1)})
	if _, err := Personalized(nil, g, Params{Alpha: 0.85}); err == nil {
		t.Error("PPR accepted empty seed set")
	}
	if _, err := PersonalizedCheiRank(nil, g, Params{Alpha: 0.85}); err == nil {
		t.Error("PCheiRank accepted empty seed set")
	}
	if _, err := PersonalizedTwoDRank(nil, g, Params{Alpha: 0.85}); err == nil {
		t.Error("P2DRank accepted empty seed set")
	}
}

func TestPersonalizedConcentratesNearSeed(t *testing.T) {
	// Two disjoint mutual pairs; seeding on one pair must leave the
	// other with (1-alpha)-teleport-only ≈ 0 mass.
	g := mustGraph(t, 4, []graph.Edge{edge(0, 1), edge(1, 0), edge(2, 3), edge(3, 2)})
	res, err := Personalized(nil, g, Params{Alpha: 0.85, Seeds: []graph.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[2] != 0 || res.Scores[3] != 0 {
		t.Errorf("mass leaked to unreachable nodes: %v", res.Scores)
	}
	if res.Scores[0] < res.Scores[1] {
		t.Error("seed scored below its neighbor")
	}
	if math.Abs(res.Sum()-1) > 1e-8 {
		t.Errorf("Sum = %v, want 1", res.Sum())
	}
}

func TestPersonalizedPromotesHighInDegreeHubs(t *testing.T) {
	// The paper's central observation: a hub reachable from the seed's
	// neighborhood scores high under PPR even with no back-links.
	// Build: seed 0 <-> 1 (community), 0->hub, 1->hub, hub dangles.
	const hub = 2
	g := mustGraph(t, 3, []graph.Edge{
		edge(0, 1), edge(1, 0), edge(0, hub), edge(1, hub),
	})
	res, err := Personalized(nil, g, Params{Alpha: 0.85, Seeds: []graph.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[hub] == 0 {
		t.Error("PPR gave hub zero score; expected leakage (this is PPR's known bias)")
	}
}

func TestCheiRankIsPageRankOfTranspose(t *testing.T) {
	g := randomGraph(11, 30, 3)
	chei, err := CheiRank(nil, g, Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	prT, err := PageRank(nil, g.Transpose(), Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	for v := range chei.Scores {
		if math.Abs(chei.Scores[v]-prT.Scores[v]) > 1e-12 {
			t.Fatalf("cheirank[%d] = %v, pagerank(transpose) = %v", v, chei.Scores[v], prT.Scores[v])
		}
	}
}

func TestCheiRankFavorsOutDegree(t *testing.T) {
	// 0 points to everyone; nobody points to 0.
	const n = 5
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.NodeID(i))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheiRank(nil, g, Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < n; v++ {
		if res.Scores[v] >= res.Scores[0] {
			t.Errorf("node %d (%v) >= broadcaster (%v)", v, res.Scores[v], res.Scores[0])
		}
	}
}

func TestTwoDRankOrdering(t *testing.T) {
	// Hub 0 has high in-degree (good PR) and high out-degree (good
	// CheiRank): it must be 2DRank #1.
	g := mustGraph(t, 4, []graph.Edge{
		edge(1, 0), edge(2, 0), edge(3, 0),
		edge(0, 1), edge(0, 2), edge(0, 3),
	})
	res, err := TwoDRank(nil, g, Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	top := res.Top(1)
	if len(top) == 0 || top[0].Node != 0 {
		t.Errorf("2DRank top = %v, want node 0", top)
	}
	// Scores are 1/position: all n nodes scored.
	if got := len(res.Top(-1)); got != 4 {
		t.Errorf("2DRank scored %d nodes, want 4", got)
	}
}

func TestTwoDRankDeterministic(t *testing.T) {
	g := randomGraph(3, 40, 3)
	a, err := TwoDRank(nil, g, Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TwoDRank(nil, g, Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Scores {
		if a.Scores[v] != b.Scores[v] {
			t.Fatalf("2DRank not deterministic at node %d", v)
		}
	}
}

func TestPersonalizedTwoDRank(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{
		edge(0, 1), edge(1, 0), edge(1, 2), edge(2, 1), edge(2, 3), edge(3, 2),
	})
	res, err := PersonalizedTwoDRank(nil, g, Params{Alpha: 0.85, Seeds: []graph.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "p2drank" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
	// The seed's immediate mutual neighbor must outrank the far node.
	if res.Score(1) <= res.Score(3) {
		t.Errorf("near neighbor %v <= far node %v", res.Score(1), res.Score(3))
	}
}

func TestPushPPRApproximatesPower(t *testing.T) {
	g := randomGraph(5, 60, 4)
	seeds := []graph.NodeID{7}
	exact, err := Personalized(nil, g, Params{Alpha: 0.85, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	// Push with alpha = 1 - damping (ACL stop-probability convention).
	approx, err := PushPPR(nil, g, PushParams{Alpha: 0.15, Epsilon: 1e-9, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	// L1 error small and top-5 sets overlapping.
	var l1 float64
	for v := range exact.Scores {
		l1 += math.Abs(exact.Scores[v] - approx.Scores[v])
	}
	if l1 > 1e-4 {
		t.Errorf("push L1 error = %v", l1)
	}
	exactTop := exact.TopLabels(5)
	approxTop := approx.TopLabels(5)
	common := 0
	for _, a := range exactTop {
		for _, b := range approxTop {
			if a == b {
				common++
			}
		}
	}
	if common < 4 {
		t.Errorf("push top-5 overlap = %d (%v vs %v)", common, exactTop, approxTop)
	}
}

func TestPushPPRValidation(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{edge(0, 1)})
	bad := []PushParams{
		{Alpha: 0, Epsilon: 1e-6, Seeds: []graph.NodeID{0}},
		{Alpha: 0.15, Epsilon: 0, Seeds: []graph.NodeID{0}},
		{Alpha: 0.15, Epsilon: 1e-6},
		{Alpha: 0.15, Epsilon: 1e-6, Seeds: []graph.NodeID{5}},
	}
	for _, p := range bad {
		if _, err := PushPPR(nil, g, p); err == nil {
			t.Errorf("PushPPR accepted %+v", p)
		}
	}
}

func TestMonteCarloPPRApproximatesPower(t *testing.T) {
	g := randomGraph(9, 40, 4)
	seeds := []graph.NodeID{3}
	exact, err := Personalized(nil, g, Params{Alpha: 0.85, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := MonteCarloPPR(nil, g, MCParams{Alpha: 0.85, Walks: 20000, Seeds: seeds, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The MC top node should be the exact top node on this size.
	if exact.Top(1)[0].Node != approx.Top(1)[0].Node {
		t.Errorf("MC top %v != exact top %v", approx.Top(1), exact.Top(1))
	}
	if math.Abs(approx.Sum()-1) > 1e-9 {
		t.Errorf("MC sum = %v", approx.Sum())
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	g := randomGraph(2, 25, 3)
	p := MCParams{Alpha: 0.85, Walks: 500, Seeds: []graph.NodeID{0}, Seed: 42}
	a, err := MonteCarloPPR(nil, g, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloPPR(nil, g, p)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Scores {
		if a.Scores[v] != b.Scores[v] {
			t.Fatal("MC not reproducible with fixed seed")
		}
	}
}

func TestMCValidation(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{edge(0, 1)})
	bad := []MCParams{
		{Alpha: 0, Walks: 10, Seeds: []graph.NodeID{0}},
		{Alpha: 0.85, Walks: 0, Seeds: []graph.NodeID{0}},
		{Alpha: 0.85, Walks: 10},
		{Alpha: 0.85, Walks: 10, Seeds: []graph.NodeID{9}},
		{Alpha: 0.85, Walks: 10, MaxSteps: -1, Seeds: []graph.NodeID{0}},
	}
	for _, p := range bad {
		if _, err := MonteCarloPPR(nil, g, p); err == nil {
			t.Errorf("MonteCarloPPR accepted %+v", p)
		}
	}
}

func TestCancellation(t *testing.T) {
	g := randomGraph(1, 2000, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PageRank(ctx, g, Params{Alpha: 0.85, Tol: 1e-15, MaxIter: 10000}); err == nil {
		t.Error("cancelled PageRank returned no error")
	}
	if _, err := MonteCarloPPR(ctx, g, MCParams{Alpha: 0.85, Walks: 100000, Seeds: []graph.NodeID{0}}); err == nil {
		t.Error("cancelled MC returned no error")
	}
}

// Property: PageRank is a probability distribution and every node has
// at least the teleport floor (1-alpha)/n... only when no dangling
// redistribution shifts mass — so assert the weaker invariants: sum to
// 1, non-negative, converged.
func TestPageRankDistributionProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 30, 2)
		res, err := PageRank(nil, g, Params{Alpha: 0.85})
		if err != nil {
			return false
		}
		if math.Abs(res.Sum()-1) > 1e-7 {
			return false
		}
		for _, s := range res.Scores {
			if s < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: PPR with the full node set as seeds equals classic
// PageRank.
func TestPPRWithAllSeedsEqualsPageRankProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 3)
		all := make([]graph.NodeID, g.NumNodes())
		for i := range all {
			all[i] = graph.NodeID(i)
		}
		pr, err := PageRank(nil, g, Params{Alpha: 0.85})
		if err != nil {
			return false
		}
		ppr, err := Personalized(nil, g, Params{Alpha: 0.85, Seeds: all})
		if err != nil {
			return false
		}
		for v := range pr.Scores {
			if math.Abs(pr.Scores[v]-ppr.Scores[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: duplicate seeds weight the teleport vector (2x seed mass
// vs a single occurrence of another seed).
func TestDuplicateSeedWeighting(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{edge(0, 1), edge(1, 0), edge(2, 0)})
	single, err := Personalized(nil, g, Params{Alpha: 0.85, Seeds: []graph.NodeID{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := Personalized(nil, g, Params{Alpha: 0.85, Seeds: []graph.NodeID{0, 0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if doubled.Scores[0] <= single.Scores[0] {
		t.Errorf("doubling seed 0 did not raise its score: %v vs %v", doubled.Scores[0], single.Scores[0])
	}
}
