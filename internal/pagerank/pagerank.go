// Package pagerank implements the PageRank family of relevance
// algorithms showcased by the demo platform: PageRank, Personalized
// PageRank, CheiRank, Personalized CheiRank, 2DRank and Personalized
// 2DRank, plus two approximate Personalized PageRank engines (forward
// push and Monte-Carlo) used by the ablation experiments.
package pagerank

import (
	"context"
	"fmt"
	"math"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// Defaults used by the demo when the user does not override them.
const (
	DefaultAlpha   = 0.85
	DefaultTol     = 1e-10
	DefaultMaxIter = 200
)

// Params configures a PageRank-family power iteration.
type Params struct {
	// Alpha is the damping factor: the probability of following an
	// out-link rather than teleporting. Must lie in (0, 1).
	Alpha float64
	// Tol is the L1 convergence tolerance; iteration stops when the
	// total absolute score change falls below it. Zero means
	// DefaultTol.
	Tol float64
	// MaxIter caps the number of iterations. Zero means
	// DefaultMaxIter.
	MaxIter int
	// Seeds is the personalization set: teleporting lands uniformly on
	// these nodes. Empty means global (uniform) teleportation, i.e.
	// classic PageRank.
	Seeds []graph.NodeID
}

// Validate checks the parameters against g.
func (p Params) Validate(g *graph.Graph) error {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("pagerank: alpha=%v outside (0,1)", p.Alpha)
	}
	if p.Tol < 0 {
		return fmt.Errorf("pagerank: negative tolerance %v", p.Tol)
	}
	if p.MaxIter < 0 {
		return fmt.Errorf("pagerank: negative max iterations %d", p.MaxIter)
	}
	for _, s := range p.Seeds {
		if !g.ValidNode(s) {
			return fmt.Errorf("pagerank: seed node %d not in graph (N=%d)", s, g.NumNodes())
		}
	}
	return nil
}

func (p Params) tol() float64 {
	if p.Tol == 0 {
		return DefaultTol
	}
	return p.Tol
}

func (p Params) maxIter() int {
	if p.MaxIter == 0 {
		return DefaultMaxIter
	}
	return p.MaxIter
}

// PageRank computes classic PageRank with damping p.Alpha on g. Any
// Seeds in p are ignored (use Personalized for seeded teleportation).
func PageRank(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
	p.Seeds = nil
	return power(ctx, g, p, "pagerank")
}

// Personalized computes Personalized PageRank: random walks restart
// uniformly on p.Seeds instead of on all nodes. At least one seed is
// required.
func Personalized(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
	if len(p.Seeds) == 0 {
		return nil, fmt.Errorf("pagerank: personalized pagerank requires at least one seed")
	}
	return power(ctx, g, p, "ppr")
}

// CheiRank computes PageRank on the transposed graph — relevance by
// outgoing rather than incoming connections (Chepelianskii 2010).
func CheiRank(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
	p.Seeds = nil
	res, err := power(ctx, g.Transpose(), p, "cheirank")
	if err != nil {
		return nil, err
	}
	return rewrap(res, g)
}

// PersonalizedCheiRank computes Personalized PageRank on the
// transposed graph.
func PersonalizedCheiRank(ctx context.Context, g *graph.Graph, p Params) (*ranking.Result, error) {
	if len(p.Seeds) == 0 {
		return nil, fmt.Errorf("pagerank: personalized cheirank requires at least one seed")
	}
	res, err := power(ctx, g.Transpose(), p, "pcheirank")
	if err != nil {
		return nil, err
	}
	return rewrap(res, g)
}

// rewrap rebinds a result computed on a transpose view back to the
// original graph so labels and downstream consumers see g itself.
func rewrap(res *ranking.Result, g *graph.Graph) (*ranking.Result, error) {
	out, err := ranking.NewResult(res.Algorithm, g, res.Scores)
	if err != nil {
		return nil, err
	}
	out.Iterations = res.Iterations
	out.Residual = res.Residual
	return out, nil
}

// power is the shared power-iteration core. Dangling mass (score
// sitting on out-degree-zero nodes) is redistributed to the teleport
// vector each iteration, keeping the score vector a probability
// distribution.
func power(ctx context.Context, g *graph.Graph, p Params, name string) (*ranking.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return ranking.NewResult(name, g, nil)
	}

	// Teleport distribution.
	teleport := make([]float64, n)
	if len(p.Seeds) == 0 {
		u := 1 / float64(n)
		for i := range teleport {
			teleport[i] = u
		}
	} else {
		// Duplicate seeds accumulate mass, matching the "teleport to a
		// multiset of seeds" semantics.
		u := 1 / float64(len(p.Seeds))
		for _, s := range p.Seeds {
			teleport[s] += u
		}
	}

	cur := make([]float64, n)
	next := make([]float64, n)
	copy(cur, teleport)

	dangling := g.DanglingNodes()
	alpha := p.Alpha
	tol := p.tol()
	maxIter := p.maxIter()

	var (
		iter     int
		residual = math.Inf(1)
	)
	for iter = 0; iter < maxIter && residual > tol; iter++ {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("pagerank: %s cancelled: %w", name, ctx.Err())
		default:
		}

		var danglingMass float64
		for _, d := range dangling {
			danglingMass += cur[d]
		}

		for v := 0; v < n; v++ {
			next[v] = (1-alpha)*teleport[v] + alpha*danglingMass*teleport[v]
		}
		for v := 0; v < n; v++ {
			out := g.Out(graph.NodeID(v))
			if len(out) == 0 || cur[v] == 0 {
				continue
			}
			share := alpha * cur[v] / float64(len(out))
			for _, w := range out {
				next[w] += share
			}
		}

		residual = 0
		for v := 0; v < n; v++ {
			residual += math.Abs(next[v] - cur[v])
		}
		cur, next = next, cur
	}

	res, err := ranking.NewResult(name, g, cur)
	if err != nil {
		return nil, err
	}
	res.Iterations = iter
	res.Residual = residual
	return res, nil
}
