package pagerank

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// Property: all-ones weights reproduce unweighted PageRank exactly,
// seeded or not.
func TestWeightedReducesToUnweightedProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 25, 3)
		ws := graph.NewWeights(g)
		plain, err := PageRank(nil, g, Params{Alpha: 0.85})
		if err != nil {
			return false
		}
		weighted, err := WeightedPageRank(nil, ws, Params{Alpha: 0.85})
		if err != nil {
			return false
		}
		for v := range plain.Scores {
			if math.Abs(plain.Scores[v]-weighted.Scores[v]) > 1e-10 {
				return false
			}
		}
		seeds := []graph.NodeID{0}
		pp, err := Personalized(nil, g, Params{Alpha: 0.85, Seeds: seeds})
		if err != nil {
			return false
		}
		wp, err := WeightedPageRank(nil, ws, Params{Alpha: 0.85, Seeds: seeds})
		if err != nil {
			return false
		}
		for v := range pp.Scores {
			if math.Abs(pp.Scores[v]-wp.Scores[v]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWeightedBiasesTowardHeavyEdge(t *testing.T) {
	// 0 -> 1 and 0 -> 2; weight 9 on 0->1. Node 1 must receive ~9x the
	// walk mass of node 2.
	g, err := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ws := graph.NewWeights(g)
	if err := ws.Set(0, 1, 9); err != nil {
		t.Fatal(err)
	}
	res, err := WeightedPageRank(nil, ws, Params{Alpha: 0.85, Seeds: []graph.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[1] <= res.Scores[2]*5 {
		t.Errorf("heavy edge not favored: %v vs %v", res.Scores[1], res.Scores[2])
	}
	if math.Abs(res.Sum()-1) > 1e-8 {
		t.Errorf("sum = %v", res.Sum())
	}
}

func TestWeightedValidationAndEmpty(t *testing.T) {
	var empty graph.Graph
	ws := graph.NewWeights(&empty)
	res, err := WeightedPageRank(nil, ws, Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 0 {
		t.Error("scores on empty graph")
	}
	g, _ := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	if _, err := WeightedPageRank(nil, graph.NewWeights(g), Params{Alpha: 2}); err == nil {
		t.Error("bad alpha accepted")
	}
}

func TestWeightedAlgorithmName(t *testing.T) {
	g, _ := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	ws := graph.NewWeights(g)
	global, _ := WeightedPageRank(nil, ws, Params{Alpha: 0.85})
	if global.Algorithm != "pagerank-weighted" {
		t.Errorf("name = %q", global.Algorithm)
	}
	seeded, _ := WeightedPageRank(nil, ws, Params{Alpha: 0.85, Seeds: []graph.NodeID{0}})
	if seeded.Algorithm != "ppr-weighted" {
		t.Errorf("name = %q", seeded.Algorithm)
	}
}
