package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// ComputeParallel runs CycleRank using several goroutines, one unit of
// work per first-hop branch out of the reference node.
//
// Every elementary cycle through r starts with exactly one edge
// (r, w), so partitioning the enumeration by first hop covers each
// cycle exactly once with no coordination between workers; per-worker
// score vectors are summed at the end. Workers ≤ 0 selects GOMAXPROCS.
//
// For reference nodes with small out-degree or small K the goroutine
// overhead can exceed the win — Compute remains the right default;
// this entry point exists for the hub-adjacent heavy queries the demo
// platform off-loads to its executor pool, and is exercised by the
// scalability ablation.
func ComputeParallel(ctx context.Context, g *graph.Graph, r graph.NodeID, p Params, workers int) (*ranking.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !g.ValidNode(r) {
		return nil, fmt.Errorf("core: reference node %d not in graph (N=%d)", r, g.NumNodes())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scoring := p.scoring()

	// Shared pruning pass (read-only afterwards).
	dOut := graph.BFSFrom(g, r, p.K-1)
	dIn := graph.BFSTo(g, r, p.K-1)

	firstHops := g.Out(r)
	type partial struct {
		scores []float64
		cycles int64
		err    error
	}
	jobs := make(chan graph.NodeID)
	results := make(chan partial, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := partial{scores: make([]float64, g.NumNodes())}
			for first := range jobs {
				n, err := enumerateBranch(ctx, g, r, first, p.K, dOut, dIn, func(path []graph.NodeID) {
					weight := scoring(len(path))
					for _, v := range path {
						out.scores[v] += weight
					}
				})
				out.cycles += n
				if err != nil {
					out.err = err
					break
				}
			}
			results <- out
		}()
	}

	go func() {
		defer close(jobs)
		for _, w := range firstHops {
			select {
			case jobs <- w:
			case <-ctx.Done():
				return
			}
		}
	}()

	wg.Wait()
	close(results)

	scores := make([]float64, g.NumNodes())
	var cycles int64
	var firstErr error
	for part := range results {
		if part.err != nil && firstErr == nil {
			firstErr = part.err
		}
		cycles += part.cycles
		for v, s := range part.scores {
			scores[v] += s
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: parallel enumeration cancelled: %w", err)
	}

	res, err := ranking.NewResult("cyclerank", g, scores)
	if err != nil {
		return nil, err
	}
	res.CyclesFound = cycles
	return res, nil
}

// enumerateBranch enumerates the elementary cycles through r whose
// first edge is (r, first), using the shared pruning arrays.
func enumerateBranch(ctx context.Context, g *graph.Graph, r, first graph.NodeID, k int, dOut, dIn []int32, emit func([]graph.NodeID)) (int64, error) {
	alive := func(v graph.NodeID) bool {
		return dOut[v] != graph.Unreachable &&
			dIn[v] != graph.Unreachable &&
			int(dOut[v])+int(dIn[v]) <= k
	}
	if first == r {
		return 0, nil // self-loop: length-1 cycles are excluded by definition
	}
	if !alive(first) || 1+int(dIn[first]) > k {
		return 0, nil
	}

	type frame struct {
		node graph.NodeID
		next int
	}
	var (
		cycles int64
		steps  int64
		path   = make([]graph.NodeID, 2, k)
		stack  = make([]frame, 1, k)
		onPath = make([]bool, g.NumNodes())
	)
	path[0], path[1] = r, first
	stack[0] = frame{node: first}
	onPath[r], onPath[first] = true, true

	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		v := top.node
		adj := g.Out(v)
		extended := false
		for top.next < len(adj) {
			w := adj[top.next]
			top.next++
			steps++
			if steps%cancelCheckInterval == 0 {
				select {
				case <-ctx.Done():
					return cycles, fmt.Errorf("core: enumeration cancelled: %w", ctx.Err())
				default:
				}
			}
			if w == r {
				n := len(path)
				if n >= 2 && n <= k {
					cycles++
					emit(path)
				}
				continue
			}
			if onPath[w] || !alive(w) || len(path)+int(dIn[w]) > k {
				continue
			}
			path = append(path, w)
			onPath[w] = true
			stack = append(stack, frame{node: w})
			extended = true
			break
		}
		if extended {
			continue
		}
		if top.next >= len(adj) {
			onPath[v] = false
			path = path[:len(path)-1]
			stack = stack[:len(stack)-1]
		}
	}
	return cycles, nil
}

// ComputeMulti runs CycleRank for several reference nodes and returns
// the per-node sum of their scores — the natural extension to query
// sets of nodes ("one can specify one or more nodes as query" in the
// demo's PPR description; this gives CycleRank the same capability).
func ComputeMulti(ctx context.Context, g *graph.Graph, refs []graph.NodeID, p Params) (*ranking.Result, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("core: ComputeMulti needs at least one reference node")
	}
	total := make([]float64, g.NumNodes())
	var cycles int64
	for _, r := range refs {
		res, err := Compute(ctx, g, r, p)
		if err != nil {
			return nil, err
		}
		cycles += res.CyclesFound
		for v, s := range res.Scores {
			total[v] += s
		}
	}
	res, err := ranking.NewResult("cyclerank-multi", g, total)
	if err != nil {
		return nil, err
	}
	res.CyclesFound = cycles
	return res, nil
}
