package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// Cycle is one elementary cycle through the reference node, stored as
// the node sequence starting at the reference (the closing edge back
// to it is implicit).
type Cycle struct {
	Nodes []graph.NodeID
}

// Len returns the cycle's length in edges.
func (c Cycle) Len() int { return len(c.Nodes) }

// Labels renders the cycle through the graph's label table, appending
// the reference again at the end to show the closure.
func (c Cycle) Labels(g *graph.Graph) []string {
	out := make([]string, 0, len(c.Nodes)+1)
	for _, v := range c.Nodes {
		out = append(out, g.Label(v))
	}
	if len(c.Nodes) > 0 {
		out = append(out, g.Label(c.Nodes[0]))
	}
	return out
}

// ListCycles enumerates up to limit elementary cycles of length ≤ K
// through r, shortest first — the explanation view a UI shows when a
// user asks *why* a node is ranked ("which cycles connect me to it?").
// limit ≤ 0 means no cap. The total cycle count (not capped) is
// returned alongside.
func ListCycles(ctx context.Context, g *graph.Graph, r graph.NodeID, p Params, limit int) ([]Cycle, int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if !g.ValidNode(r) {
		return nil, 0, fmt.Errorf("core: reference node %d not in graph (N=%d)", r, g.NumNodes())
	}
	var cycles []Cycle
	total, err := enumerate(ctx, g, r, p.K, func(path []graph.NodeID) {
		if limit > 0 && len(cycles) >= limit {
			return
		}
		nodes := make([]graph.NodeID, len(path))
		copy(nodes, path)
		cycles = append(cycles, Cycle{Nodes: nodes})
	})
	if err != nil {
		return nil, 0, err
	}
	sort.SliceStable(cycles, func(i, j int) bool {
		if cycles[i].Len() != cycles[j].Len() {
			return cycles[i].Len() < cycles[j].Len()
		}
		return lessNodeSeq(cycles[i].Nodes, cycles[j].Nodes)
	})
	return cycles, total, nil
}

func lessNodeSeq(a, b []graph.NodeID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// CyclesThrough reports, for a particular node i, up to limit cycles
// containing both r and i — the drill-down behind a single table row.
func CyclesThrough(ctx context.Context, g *graph.Graph, r, i graph.NodeID, p Params, limit int) ([]Cycle, error) {
	if !g.ValidNode(i) {
		return nil, fmt.Errorf("core: node %d not in graph (N=%d)", i, g.NumNodes())
	}
	all, _, err := ListCycles(ctx, g, r, p, 0)
	if err != nil {
		return nil, err
	}
	var out []Cycle
	for _, c := range all {
		for _, v := range c.Nodes {
			if v == i {
				out = append(out, c)
				break
			}
		}
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}
