package core
