package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

func edge(u, v graph.NodeID) graph.Edge { return graph.Edge{From: u, To: v} }

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func expWeight(n int) float64 { return math.Exp(-float64(n)) }

func TestComputeTriangle(t *testing.T) {
	// One 3-cycle 0->1->2->0; reference 0, K=3.
	g := mustGraph(t, 3, []graph.Edge{edge(0, 1), edge(1, 2), edge(2, 0)})
	res, err := Compute(nil, g, 0, Params{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesFound != 1 {
		t.Fatalf("CyclesFound = %d, want 1", res.CyclesFound)
	}
	want := expWeight(3)
	for v := 0; v < 3; v++ {
		if math.Abs(res.Scores[v]-want) > 1e-15 {
			t.Errorf("score[%d] = %v, want %v", v, res.Scores[v], want)
		}
	}
}

func TestComputeTriangleKTooSmall(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{edge(0, 1), edge(1, 2), edge(2, 0)})
	res, err := Compute(nil, g, 0, Params{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesFound != 0 {
		t.Errorf("found %d cycles with K=2 in a 3-cycle", res.CyclesFound)
	}
}

func TestComputeMutualPair(t *testing.T) {
	// 0<->1: a single 2-cycle.
	g := mustGraph(t, 2, []graph.Edge{edge(0, 1), edge(1, 0)})
	res, err := Compute(nil, g, 0, Params{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesFound != 1 {
		t.Fatalf("CyclesFound = %d, want 1", res.CyclesFound)
	}
	want := expWeight(2)
	if math.Abs(res.Scores[0]-want) > 1e-15 || math.Abs(res.Scores[1]-want) > 1e-15 {
		t.Errorf("scores = %v, want both %v", res.Scores, want)
	}
}

func TestSelfLoopNotACycle(t *testing.T) {
	// Per Eq. 1 the sum starts at n=2, so a self-loop (length 1) never
	// counts, even though it is technically a cycle.
	g := mustGraph(t, 2, []graph.Edge{edge(0, 0), edge(0, 1), edge(1, 0)})
	res, err := Compute(nil, g, 0, Params{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesFound != 1 {
		t.Errorf("CyclesFound = %d, want 1 (self-loop excluded)", res.CyclesFound)
	}
}

func TestReferenceGetsMaximumScore(t *testing.T) {
	// "By definition, the reference node gets the maximum Cyclerank
	// score as it is included in all the cycles considered."
	g := mustGraph(t, 5, []graph.Edge{
		edge(0, 1), edge(1, 0),
		edge(0, 2), edge(2, 0),
		edge(1, 2), edge(2, 1),
		edge(3, 4), edge(4, 3),
	})
	res, err := Compute(nil, g, 0, Params{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 5; v++ {
		if res.Scores[v] > res.Scores[0] {
			t.Errorf("node %d outscored the reference: %v > %v", v, res.Scores[v], res.Scores[0])
		}
	}
	// Nodes 3,4 share no cycle with 0: zero score.
	if res.Scores[3] != 0 || res.Scores[4] != 0 {
		t.Errorf("disconnected cycle scored: %v", res.Scores[3:])
	}
}

func TestHubWithoutBacklinksScoresZero(t *testing.T) {
	// The PPR failure mode: node H receives edges from everyone but
	// links back to no one. CycleRank must give H zero.
	const hub = 4
	g := mustGraph(t, 5, []graph.Edge{
		edge(0, 1), edge(1, 0), // community around 0
		edge(0, hub), edge(1, hub), edge(2, hub), edge(3, hub),
	})
	res, err := Compute(nil, g, 0, Params{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[hub] != 0 {
		t.Errorf("no-backlink hub scored %v, want 0", res.Scores[hub])
	}
	if res.Scores[1] == 0 {
		t.Error("mutual neighbor scored 0")
	}
}

func TestTwoCyclesSharedNode(t *testing.T) {
	// Cycles 0->1->0 and 0->1->2->0 share nodes 0,1.
	g := mustGraph(t, 3, []graph.Edge{edge(0, 1), edge(1, 0), edge(1, 2), edge(2, 0)})
	res, err := Compute(nil, g, 0, Params{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesFound != 2 {
		t.Fatalf("CyclesFound = %d, want 2", res.CyclesFound)
	}
	want0 := expWeight(2) + expWeight(3)
	want2 := expWeight(3)
	if math.Abs(res.Scores[0]-want0) > 1e-15 {
		t.Errorf("score[0] = %v, want %v", res.Scores[0], want0)
	}
	if math.Abs(res.Scores[2]-want2) > 1e-15 {
		t.Errorf("score[2] = %v, want %v", res.Scores[2], want2)
	}
}

func TestScoringFunctions(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{edge(0, 1), edge(1, 0)})
	cases := map[string]float64{
		ScoringExponential: math.Exp(-2),
		ScoringLinear:      0.5,
		ScoringQuadratic:   0.25,
		ScoringConstant:    1,
	}
	for name, want := range cases {
		fn, err := ScoringByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Compute(nil, g, 0, Params{K: 2, Scoring: fn, ScoringName: name})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Scores[1]-want) > 1e-15 {
			t.Errorf("%s: score = %v, want %v", name, res.Scores[1], want)
		}
	}
	if _, err := ScoringByName("bogus"); err == nil {
		t.Error("ScoringByName accepted bogus name")
	}
	if names := ScoringNames(); len(names) != 4 {
		t.Errorf("ScoringNames = %v, want 4 entries", names)
	}
}

func TestParamValidation(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{edge(0, 1), edge(1, 0)})
	if _, err := Compute(nil, g, 0, Params{K: 1}); err == nil {
		t.Error("accepted K=1")
	}
	if _, err := Compute(nil, g, 99, Params{K: 3}); err == nil {
		t.Error("accepted invalid reference node")
	}
	if _, err := Compute(nil, g, -1, Params{K: 3}); err == nil {
		t.Error("accepted negative reference node")
	}
	if _, err := CountCycles(nil, g, 0, 1); err == nil {
		t.Error("CountCycles accepted K=1")
	}
	if _, err := CountCycles(nil, g, 77, 3); err == nil {
		t.Error("CountCycles accepted invalid reference")
	}
	if _, err := CycleCensus(nil, g, 0, 0); err == nil {
		t.Error("CycleCensus accepted K=0")
	}
	if _, err := CycleCensus(nil, g, 9, 3); err == nil {
		t.Error("CycleCensus accepted invalid reference")
	}
}

func TestCompleteGraphCycleCounts(t *testing.T) {
	// In K4 (complete digraph on 4 nodes), cycles through a fixed node:
	// length 2: 3 (one per other node)
	// length 3: 3·2 = 6 ordered pairs
	// length 4: 3·2·1 = 6 ordered triples
	g := completeDigraph(t, 4)
	census, err := CycleCensus(nil, g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 0, 3, 6, 6}
	for n, c := range want {
		if census[n] != c {
			t.Errorf("census[%d] = %d, want %d", n, census[n], c)
		}
	}
	total, err := CountCycles(nil, g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if total != 15 {
		t.Errorf("CountCycles = %d, want 15", total)
	}
}

func completeDigraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCancellation(t *testing.T) {
	// A complete digraph on 12 nodes has an astronomically large cycle
	// count at K=12; cancellation must stop the enumeration.
	g := completeDigraph(t, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Compute(ctx, g, 0, Params{K: 12}); err == nil {
		t.Fatal("cancelled computation returned no error")
	}
}

func TestNaiveMatchesHandComputed(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{edge(0, 1), edge(1, 0), edge(1, 2), edge(2, 0)})
	res, census, err := NaiveScores(g, 0, Params{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if census[2] != 1 || census[3] != 1 {
		t.Errorf("census = %v", census)
	}
	if res.CyclesFound != 2 {
		t.Errorf("CyclesFound = %d, want 2", res.CyclesFound)
	}
}

func TestNaiveValidation(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{edge(0, 1)})
	if _, _, err := NaiveScores(g, 0, Params{K: 0}); err == nil {
		t.Error("naive accepted K=0")
	}
	if _, _, err := NaiveScores(g, 9, Params{K: 3}); err == nil {
		t.Error("naive accepted invalid reference")
	}
}

// The central property test: the pruned enumerator and the naive
// oracle agree on scores and cycle counts for random digraphs, for
// every K and scoring function.
func TestPrunedMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		b := graph.NewBuilder(n)
		for i := 0; i < n*3; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		r := graph.NodeID(rng.Intn(n))
		k := 2 + rng.Intn(4)
		p := Params{K: k}
		fast, err := Compute(nil, g, r, p)
		if err != nil {
			return false
		}
		slow, _, err := NaiveScores(g, r, p)
		if err != nil {
			return false
		}
		if fast.CyclesFound != slow.CyclesFound {
			t.Logf("seed %d: cycle count %d (pruned) vs %d (naive)", seed, fast.CyclesFound, slow.CyclesFound)
			return false
		}
		for v := range fast.Scores {
			if math.Abs(fast.Scores[v]-slow.Scores[v]) > 1e-12 {
				t.Logf("seed %d: score[%d] %v vs %v", seed, v, fast.Scores[v], slow.Scores[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CycleRank support is confined to r's SCC.
func TestSupportWithinSCCProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(12)
		b := graph.NewBuilder(n)
		for i := 0; i < n*2; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		r := graph.NodeID(rng.Intn(n))
		res, err := Compute(nil, g, r, Params{K: 5})
		if err != nil {
			return false
		}
		scc := graph.StronglyConnectedComponents(g)
		for v, s := range res.Scores {
			if s > 0 && !scc.SameComponent(r, graph.NodeID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: increasing K never decreases any score (more cycles can
// only add weight).
func TestKMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(8)
		b := graph.NewBuilder(n)
		for i := 0; i < n*3; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		r := graph.NodeID(rng.Intn(n))
		small, err := Compute(nil, g, r, Params{K: 3})
		if err != nil {
			return false
		}
		large, err := Compute(nil, g, r, Params{K: 5})
		if err != nil {
			return false
		}
		for v := range small.Scores {
			if large.Scores[v] < small.Scores[v]-1e-12 {
				return false
			}
		}
		return large.CyclesFound >= small.CyclesFound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEmptyAndEdgelessGraphs(t *testing.T) {
	g := mustGraph(t, 3, nil)
	res, err := Compute(nil, g, 0, Params{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesFound != 0 || res.Sum() != 0 {
		t.Error("edgeless graph produced cycles")
	}
}

func TestDefaultScoringIsExponential(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{edge(0, 1), edge(1, 0)})
	res, err := Compute(nil, g, 0, Params{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Scores[0]-math.Exp(-2)) > 1e-15 {
		t.Errorf("default scoring gave %v, want e^-2", res.Scores[0])
	}
}
