package core

import (
	"context"
	"fmt"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// DefaultK is the maximum cycle length used by the demo when the user
// does not override it (the paper uses K=3 on Wikipedia and K=5 on the
// sparser Amazon co-purchase graph).
const DefaultK = 3

// Params configures a CycleRank computation.
type Params struct {
	// K is the maximum cycle length considered; it must be at least 2
	// (a cycle needs two edges).
	K int
	// Scoring weights each cycle by its length; nil means the paper
	// default σ(n)=e^(−n).
	Scoring ScoringFunc
	// ScoringName records which named function Scoring is, for result
	// metadata; it is informational only.
	ScoringName string
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.K < 2 {
		return fmt.Errorf("core: K=%d, need K >= 2 for cycles to exist", p.K)
	}
	return nil
}

func (p Params) scoring() ScoringFunc {
	if p.Scoring != nil {
		return p.Scoring
	}
	fn := scoringFuncs[ScoringExponential]
	return fn
}

// Compute runs CycleRank on g with reference node r.
//
// The algorithm follows the reference implementation's two phases:
//
//  1. Prune: bounded BFS from r over out-edges gives dOut[v] (shortest
//     r→v distance); bounded BFS over in-edges gives dIn[v] (shortest
//     v→r distance). Any cycle through r that visits v has length at
//     least dOut[v]+dIn[v], so nodes where that sum exceeds K can never
//     contribute and are removed.
//  2. Enumerate: an iterative DFS from r over the pruned subgraph
//     generates every elementary cycle of length ≤ K through r exactly
//     once, extending a path at v with edge (v,w) only when
//     len(path)+1+dIn[w] ≤ K. Each discovered cycle of length n adds
//     σ(n) to every node on it.
//
// The context is checked periodically so long enumerations can be
// cancelled; ctx == nil means context.Background().
func Compute(ctx context.Context, g *graph.Graph, r graph.NodeID, p Params) (*ranking.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !g.ValidNode(r) {
		return nil, fmt.Errorf("core: reference node %d not in graph (N=%d)", r, g.NumNodes())
	}
	scoring := p.scoring()

	scores := make([]float64, g.NumNodes())
	cycles, err := enumerate(ctx, g, r, p.K, func(path []graph.NodeID) {
		w := scoring(len(path))
		for _, v := range path {
			scores[v] += w
		}
	})
	if err != nil {
		return nil, err
	}

	res, err := ranking.NewResult("cyclerank", g, scores)
	if err != nil {
		return nil, err
	}
	res.CyclesFound = cycles
	return res, nil
}

// CountCycles returns the number of elementary cycles of length ≤ k
// through r, without scoring. It powers the K-sweep ablation.
func CountCycles(ctx context.Context, g *graph.Graph, r graph.NodeID, k int) (int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 2 {
		return 0, fmt.Errorf("core: K=%d, need K >= 2", k)
	}
	if !g.ValidNode(r) {
		return 0, fmt.Errorf("core: reference node %d not in graph (N=%d)", r, g.NumNodes())
	}
	return enumerate(ctx, g, r, k, func([]graph.NodeID) {})
}

// cancelCheckInterval is how many DFS edge expansions pass between
// context cancellation checks.
const cancelCheckInterval = 1 << 14

// enumerate generates every elementary cycle of length ≤ k through r
// and calls emit with the node path (cycle nodes in order, starting at
// r; the closing edge back to r is implicit). The path slice is reused
// between calls — emit must not retain it.
func enumerate(ctx context.Context, g *graph.Graph, r graph.NodeID, k int, emit func(path []graph.NodeID)) (int64, error) {
	// Phase 1: distance pruning.
	dOut := graph.BFSFrom(g, r, k-1)
	dIn := graph.BFSTo(g, r, k-1)

	alive := func(v graph.NodeID) bool {
		return dOut[v] != graph.Unreachable &&
			dIn[v] != graph.Unreachable &&
			int(dOut[v])+int(dIn[v]) <= k
	}

	// Quick exit: r participates in no short cycle at all when no
	// in-neighbor of r is alive.
	anyReturn := false
	for _, w := range g.In(r) {
		if w == r || alive(w) {
			anyReturn = true
			break
		}
	}
	if !anyReturn {
		return 0, nil
	}

	// Phase 2: iterative DFS over simple paths from r.
	type frame struct {
		node graph.NodeID
		next int // index into Out(node)
	}
	var (
		cycles int64
		steps  int64
		path   = make([]graph.NodeID, 1, k)
		stack  = make([]frame, 1, k)
		onPath = make([]bool, g.NumNodes())
	)
	path[0] = r
	stack[0] = frame{node: r}
	onPath[r] = true

	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		v := top.node
		adj := g.Out(v)

		// path holds the nodes of the current simple path starting at
		// r, so it represents len(path)-1 edges; extending with (v,w)
		// makes it len(path) edges, and closing to r yields a cycle of
		// exactly len(path) edges.
		extended := false
		for top.next < len(adj) {
			w := adj[top.next]
			top.next++
			steps++
			if steps%cancelCheckInterval == 0 {
				select {
				case <-ctx.Done():
					return cycles, fmt.Errorf("core: enumeration cancelled: %w", ctx.Err())
				default:
				}
			}
			if w == r {
				// Closing edge: cycle of length len(path) edges.
				n := len(path)
				if n >= 2 && n <= k {
					cycles++
					emit(path)
				}
				continue
			}
			if onPath[w] || !alive(w) {
				continue
			}
			// Prune: the cheapest completion via w uses len(path) edges
			// to reach w plus dIn[w] edges back to r.
			if len(path)+int(dIn[w]) > k {
				continue
			}
			// Descend.
			path = append(path, w)
			onPath[w] = true
			stack = append(stack, frame{node: w})
			extended = true
			break
		}
		if extended {
			continue
		}
		if top.next >= len(adj) {
			// Backtrack.
			onPath[v] = false
			path = path[:len(path)-1]
			stack = stack[:len(stack)-1]
		}
	}
	return cycles, nil
}
