package core

import (
	"context"
	"fmt"

	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/ranking"
)

// NaiveScores computes CycleRank by exhaustive depth-first search over
// every simple path from r, with no distance pruning. It is
// exponentially slower than Compute and exists purely as a test
// oracle: property tests assert that Compute and NaiveScores agree on
// random graphs. It also returns the per-length cycle census.
func NaiveScores(g *graph.Graph, r graph.NodeID, p Params) (*ranking.Result, []int64, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if !g.ValidNode(r) {
		return nil, nil, fmt.Errorf("core: reference node %d not in graph (N=%d)", r, g.NumNodes())
	}
	scoring := p.scoring()
	scores := make([]float64, g.NumNodes())
	census := make([]int64, p.K+1) // census[n] = cycles of length n
	onPath := make([]bool, g.NumNodes())
	path := []graph.NodeID{r}
	onPath[r] = true

	var dfs func(v graph.NodeID)
	dfs = func(v graph.NodeID) {
		for _, w := range g.Out(v) {
			if w == r {
				n := len(path)
				if n >= 2 && n <= p.K {
					census[n]++
					weight := scoring(n)
					for _, u := range path {
						scores[u] += weight
					}
				}
				continue
			}
			if onPath[w] || len(path) >= p.K {
				continue
			}
			onPath[w] = true
			path = append(path, w)
			dfs(w)
			path = path[:len(path)-1]
			onPath[w] = false
		}
	}
	dfs(r)

	res, err := ranking.NewResult("cyclerank-naive", g, scores)
	if err != nil {
		return nil, nil, err
	}
	var total int64
	for _, c := range census {
		total += c
	}
	res.CyclesFound = total
	return res, census, nil
}

// CycleCensus returns, for each length n in [2, k], the number of
// elementary cycles of length n through r, computed with the pruned
// enumerator. It backs the K-sweep ablation experiment.
func CycleCensus(ctx context.Context, g *graph.Graph, r graph.NodeID, k int) ([]int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 2 {
		return nil, fmt.Errorf("core: K=%d, need K >= 2", k)
	}
	if !g.ValidNode(r) {
		return nil, fmt.Errorf("core: reference node %d not in graph (N=%d)", r, g.NumNodes())
	}
	census := make([]int64, k+1)
	_, err := enumerate(ctx, g, r, k, func(path []graph.NodeID) {
		census[len(path)]++
	})
	if err != nil {
		return nil, err
	}
	return census, nil
}
