// Package core implements CycleRank, the personalized relevance
// algorithm this platform was built to showcase (Consonni, Laniado,
// Montresor, Proc. Royal Society A 476:20190740, 2020).
//
// CycleRank scores every node i of a directed graph by the weighted
// number of elementary cycles of length at most K that contain both i
// and a reference node r:
//
//	CR_{r,K}(i) = Σ_{n=2..K} σ(n) · c_{r,n}(i)
//
// Short cycles indicate a strong mutual relationship, so the scoring
// function σ decreases with cycle length; the paper's default is
// σ(n) = e^(−n). Because a node scores only when a path both leaves r
// toward it AND returns from it to r, globally central hub nodes with
// huge in-degree but few back-links — the failure mode of Personalized
// PageRank — receive no score at all.
package core

import (
	"fmt"
	"math"
	"sort"
)

// ScoringFunc weights a cycle of length n; it must be positive for all
// n ≥ 2.
type ScoringFunc func(n int) float64

// Named scoring functions, as exposed by the demo UI.
const (
	ScoringExponential = "exp"   // σ(n) = e^(−n), the paper default
	ScoringLinear      = "lin"   // σ(n) = 1/n
	ScoringQuadratic   = "quad"  // σ(n) = 1/n²
	ScoringConstant    = "const" // σ(n) = 1 (raw cycle counts)
)

var scoringFuncs = map[string]ScoringFunc{
	ScoringExponential: func(n int) float64 { return math.Exp(-float64(n)) },
	ScoringLinear:      func(n int) float64 { return 1 / float64(n) },
	ScoringQuadratic:   func(n int) float64 { return 1 / float64(n*n) },
	ScoringConstant:    func(n int) float64 { return 1 },
}

// ScoringByName resolves a named scoring function.
func ScoringByName(name string) (ScoringFunc, error) {
	fn, ok := scoringFuncs[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown scoring function %q (want one of %v)", name, ScoringNames())
	}
	return fn, nil
}

// ScoringNames returns the available scoring function names in stable
// order.
func ScoringNames() []string {
	names := make([]string, 0, len(scoringFuncs))
	for name := range scoringFuncs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
