package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// Property: parallel and sequential CycleRank agree exactly (scores
// and cycle counts) on random graphs for every worker count.
func TestParallelMatchesSequentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		b := graph.NewBuilder(n)
		for i := 0; i < n*4; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		r := graph.NodeID(rng.Intn(n))
		k := 2 + rng.Intn(4)
		seq, err := Compute(nil, g, r, Params{K: k})
		if err != nil {
			return false
		}
		for _, workers := range []int{1, 2, 4} {
			par, err := ComputeParallel(nil, g, r, Params{K: k}, workers)
			if err != nil {
				return false
			}
			if par.CyclesFound != seq.CyclesFound {
				t.Logf("seed %d workers %d: cycles %d vs %d", seed, workers, par.CyclesFound, seq.CyclesFound)
				return false
			}
			for v := range seq.Scores {
				if math.Abs(par.Scores[v]-seq.Scores[v]) > 1e-9 {
					t.Logf("seed %d workers %d: score[%d] %v vs %v", seed, workers, v, par.Scores[v], seq.Scores[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParallelValidation(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{edge(0, 1), edge(1, 0)})
	if _, err := ComputeParallel(nil, g, 0, Params{K: 1}, 2); err == nil {
		t.Error("accepted K=1")
	}
	if _, err := ComputeParallel(nil, g, 9, Params{K: 3}, 2); err == nil {
		t.Error("accepted bad reference")
	}
	// Default worker count path.
	res, err := ComputeParallel(nil, g, 0, Params{K: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesFound != 1 {
		t.Errorf("cycles = %d", res.CyclesFound)
	}
}

func TestParallelCancellation(t *testing.T) {
	g := completeDigraph(t, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ComputeParallel(ctx, g, 0, Params{K: 12}, 4); err == nil {
		t.Error("cancelled parallel computation returned no error")
	}
}

func TestParallelSelfLoopBranch(t *testing.T) {
	// A self-loop at the reference creates a first-hop branch back to
	// r itself; it must contribute no cycles (length-1 excluded).
	g := mustGraph(t, 2, []graph.Edge{edge(0, 0), edge(0, 1), edge(1, 0)})
	res, err := ComputeParallel(nil, g, 0, Params{K: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesFound != 1 {
		t.Errorf("cycles = %d, want 1", res.CyclesFound)
	}
}

func TestComputeMulti(t *testing.T) {
	// Two disjoint mutual pairs; multi over both references covers
	// both cycles.
	g := mustGraph(t, 4, []graph.Edge{edge(0, 1), edge(1, 0), edge(2, 3), edge(3, 2)})
	res, err := ComputeMulti(nil, g, []graph.NodeID{0, 2}, Params{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesFound != 2 {
		t.Errorf("cycles = %d, want 2", res.CyclesFound)
	}
	if res.Scores[1] == 0 || res.Scores[3] == 0 {
		t.Error("multi-reference scores missing")
	}
	if _, err := ComputeMulti(nil, g, nil, Params{K: 2}); err == nil {
		t.Error("accepted empty reference set")
	}
	if _, err := ComputeMulti(nil, g, []graph.NodeID{99}, Params{K: 2}); err == nil {
		t.Error("accepted invalid reference")
	}
}

func TestListCycles(t *testing.T) {
	// Cycles through 0: (0,1) len 2 and (0,1,2) len 3.
	g := mustGraph(t, 3, []graph.Edge{edge(0, 1), edge(1, 0), edge(1, 2), edge(2, 0)})
	cycles, total, err := ListCycles(nil, g, 0, Params{K: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || len(cycles) != 2 {
		t.Fatalf("total=%d listed=%d", total, len(cycles))
	}
	// Shortest first.
	if cycles[0].Len() != 2 || cycles[1].Len() != 3 {
		t.Errorf("lengths = %d, %d", cycles[0].Len(), cycles[1].Len())
	}
	labels := cycles[0].Labels(g)
	if len(labels) != 3 || labels[0] != labels[len(labels)-1] {
		t.Errorf("labels = %v", labels)
	}
}

func TestListCyclesLimit(t *testing.T) {
	g := completeDigraph(t, 5)
	cycles, total, err := ListCycles(nil, g, 0, Params{K: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 3 {
		t.Errorf("listed %d cycles with limit 3", len(cycles))
	}
	if total <= 3 {
		t.Errorf("total = %d, expected full count beyond limit", total)
	}
}

func TestListCyclesValidation(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{edge(0, 1)})
	if _, _, err := ListCycles(nil, g, 0, Params{K: 0}, 0); err == nil {
		t.Error("accepted K=0")
	}
	if _, _, err := ListCycles(nil, g, 7, Params{K: 3}, 0); err == nil {
		t.Error("accepted invalid reference")
	}
}

func TestCyclesThrough(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{edge(0, 1), edge(1, 0), edge(1, 2), edge(2, 0)})
	through2, err := CyclesThrough(nil, g, 0, 2, Params{K: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(through2) != 1 || through2[0].Len() != 3 {
		t.Errorf("cycles through node 2: %v", through2)
	}
	if _, err := CyclesThrough(nil, g, 0, 99, Params{K: 3}, 0); err == nil {
		t.Error("accepted invalid node")
	}
	limited, err := CyclesThrough(nil, g, 0, 1, Params{K: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 1 {
		t.Errorf("limit ignored: %d", len(limited))
	}
}

func TestLabelsOfEmptyCycle(t *testing.T) {
	var c Cycle
	g := mustGraph(t, 1, nil)
	if got := c.Labels(g); len(got) != 0 {
		t.Errorf("empty cycle labels = %v", got)
	}
}
