package datasets

import (
	"fmt"
	"math/rand"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// TwitterConfig selects a synthetic Twitter interaction network. An
// edge u->v means user u interacted with (retweeted, replied to,
// quoted or mentioned) user v.
type TwitterConfig struct {
	// Topic names the crawl: "cop27" (COP27 climate conference) or
	// "8m" (International Women's Day).
	Topic string
	// Users is the account count (default depends on topic).
	Users int
	// Seed perturbs the topology (default derived from topic).
	Seed int64
}

// TwitterTopics lists the crawls the demo ships.
func TwitterTopics() []string { return []string{"cop27", "8m"} }

// Validate checks the configuration.
func (c TwitterConfig) Validate() error {
	for _, t := range TwitterTopics() {
		if t == c.Topic {
			return nil
		}
	}
	return fmt.Errorf("datasets: unknown twitter topic %q", c.Topic)
}

func (c TwitterConfig) users() int {
	if c.Users != 0 {
		return c.Users
	}
	if c.Topic == "cop27" {
		return 1500
	}
	return 1200
}

func (c TwitterConfig) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	if c.Topic == "cop27" {
		return 20221106
	}
	return 20230308
}

// GenerateTwitter builds the synthetic interaction network: a handful
// of influencer accounts that everyone mentions but who rarely reply
// (high in-degree, low reciprocity — the Twitter analogue of the
// Wikipedia hubs), reply communities of mutually interacting users,
// and a power-law background of one-way retweets.
func GenerateTwitter(c TwitterConfig) (*graph.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.seed()))
	b := graph.NewLabeledBuilder()

	const numInfluencers = 8
	influencers := make([]string, numInfluencers)
	weights := make([]float64, numInfluencers)
	for i := range influencers {
		influencers[i] = fmt.Sprintf("%s_influencer_%02d", c.Topic, i)
		weights[i] = float64(numInfluencers - i)
		b.AddNode(influencers[i])
	}
	pick := newWeightedPicker(weights)

	// Reply communities: cliques of mutually interacting activists.
	// Community 0 is anchored on a named organizer account used as the
	// suggested reference node.
	numCommunities := 6
	communitySize := 8
	organizers := make([]string, numCommunities)
	for ci := 0; ci < numCommunities; ci++ {
		members := make([]string, communitySize)
		for mi := range members {
			if mi == 0 {
				members[mi] = fmt.Sprintf("%s_organizer_%02d", c.Topic, ci)
				organizers[ci] = members[mi]
			} else {
				members[mi] = fmt.Sprintf("%s_activist_%02d_%02d", c.Topic, ci, mi)
			}
		}
		addCommunity(b, members[0], members[1:], []string{influencers[ci%numInfluencers]})
		// Occasional cross-community mutual interaction.
		if ci > 0 {
			b.AddLabeledEdge(organizers[ci], organizers[ci-1])
			b.AddLabeledEdge(organizers[ci-1], organizers[ci])
		}
	}

	n := c.users()
	bg := make([]string, n)
	for i := range bg {
		bg[i] = fmt.Sprintf("%s_user_%05d", c.Topic, i)
		b.AddNode(bg[i])
	}
	for i, name := range bg {
		// Power-law-ish activity: most users interact once or twice, a
		// few are prolific.
		activity := 1 + rng.Intn(3)
		if rng.Float64() < 0.05 {
			activity += rng.Intn(20)
		}
		for a := 0; a < activity; a++ {
			r := rng.Float64()
			switch {
			case r < 0.5:
				// Mention/retweet an influencer (one-way).
				b.AddLabeledEdge(name, influencers[pick.pick(rng)])
			case r < 0.6:
				// Join a reply thread with an organizer (mutual).
				org := organizers[rng.Intn(len(organizers))]
				b.AddLabeledEdge(name, org)
				if rng.Float64() < 0.5 {
					b.AddLabeledEdge(org, name)
				}
			default:
				if i == 0 {
					b.AddLabeledEdge(name, influencers[pick.pick(rng)])
					continue
				}
				j := rng.Intn(i)
				b.AddLabeledEdge(name, bg[j])
				if rng.Float64() < 0.15 {
					b.AddLabeledEdge(bg[j], name)
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("datasets: twitter %s: %w", c.Topic, err)
	}
	return g, nil
}
