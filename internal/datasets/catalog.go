package datasets

import (
	"fmt"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// BuiltinCatalog returns the platform's 50 pre-loaded datasets: 36
// WikiLinkGraphs snapshots (9 languages × 4 years), the Amazon
// co-purchase graph, two Twitter crawls, and 11 synthetic benchmark
// graphs.
func BuiltinCatalog() (*Catalog, error) {
	var ds []Dataset

	for _, lang := range WikiLanguages() {
		for _, year := range WikiYears() {
			lang, year := lang, year
			sources := wikiSuggestedSources(lang, year)
			ds = append(ds, Dataset{
				Name: fmt.Sprintf("%swiki-%d", lang, year),
				Kind: "wikilink",
				Description: fmt.Sprintf(
					"Synthetic WikiLinkGraphs snapshot: %s Wikipedia as of %d-03-01", lang, year),
				SuggestedSources: sources,
				generate: func() (*graph.Graph, error) {
					return GenerateWiki(WikiConfig{Language: lang, Year: year})
				},
			})
		}
	}

	ds = append(ds, Dataset{
		Name:             "amazon",
		Kind:             "amazon",
		Description:      "Synthetic Amazon co-purchase network (customers who bought X also bought Y)",
		SuggestedSources: []string{"1984", "The Fellowship of the Ring"},
		generate: func() (*graph.Graph, error) {
			return GenerateAmazon(AmazonConfig{})
		},
	})

	for _, topic := range TwitterTopics() {
		topic := topic
		desc := "Synthetic Twitter interaction network: COP27 climate conference"
		if topic == "8m" {
			desc = "Synthetic Twitter interaction network: 8th of March, International Women's Day"
		}
		ds = append(ds, Dataset{
			Name:             "twitter-" + topic,
			Kind:             "twitter",
			Description:      desc,
			SuggestedSources: []string{fmt.Sprintf("%s_organizer_00", topic)},
			generate: func() (*graph.Graph, error) {
				return GenerateTwitter(TwitterConfig{Topic: topic})
			},
		})
	}

	synthetic := []Dataset{
		{
			Name: "ba-small", Kind: "synthetic",
			Description: "Preferential attachment, 1k nodes, 25% reciprocity",
			generate: func() (*graph.Graph, error) {
				return PreferentialAttachment(1000, 4, 0.25, 1)
			},
		},
		{
			Name: "ba-medium", Kind: "synthetic",
			Description: "Preferential attachment, 10k nodes, 25% reciprocity",
			generate: func() (*graph.Graph, error) {
				return PreferentialAttachment(10000, 4, 0.25, 2)
			},
		},
		{
			Name: "ba-large", Kind: "synthetic",
			Description: "Preferential attachment, 50k nodes, 25% reciprocity",
			generate: func() (*graph.Graph, error) {
				return PreferentialAttachment(50000, 4, 0.25, 3)
			},
		},
		{
			Name: "ba-reciprocal", Kind: "synthetic",
			Description: "Preferential attachment, 5k nodes, 75% reciprocity (cycle-rich)",
			generate: func() (*graph.Graph, error) {
				return PreferentialAttachment(5000, 4, 0.75, 4)
			},
		},
		{
			Name: "er-sparse", Kind: "synthetic",
			Description: "Erdős–Rényi G(2000, 0.002)",
			generate: func() (*graph.Graph, error) {
				return ErdosRenyi(2000, 0.002, 5)
			},
		},
		{
			Name: "er-dense", Kind: "synthetic",
			Description: "Erdős–Rényi G(500, 0.05)",
			generate: func() (*graph.Graph, error) {
				return ErdosRenyi(500, 0.05, 6)
			},
		},
		{
			Name: "copying-web", Kind: "synthetic",
			Description: "Kleinberg copying-model web graph, 5k nodes",
			generate: func() (*graph.Graph, error) {
				return CopyingModel(5000, 5, 0.3, 7)
			},
		},
		{
			Name: "ring-1k", Kind: "synthetic",
			Description: "Directed ring of 1000 nodes (single long cycle)",
			generate: func() (*graph.Graph, error) {
				return DirectedRing(1000)
			},
		},
		{
			Name: "cliques-ring", Kind: "synthetic",
			Description: "Ring of 20 bidirectional 8-cliques (cycle stress test)",
			generate: func() (*graph.Graph, error) {
				return RingOfCliques(20, 8)
			},
		},
		{
			Name: "complete-50", Kind: "synthetic",
			Description: "Complete digraph on 50 nodes (densest cycle load)",
			generate: func() (*graph.Graph, error) {
				return CompleteDigraph(50)
			},
		},
		{
			Name: "copying-dense", Kind: "synthetic",
			Description: "Kleinberg copying-model graph, 2k nodes, heavy copying",
			generate: func() (*graph.Graph, error) {
				return CopyingModel(2000, 8, 0.15, 8)
			},
		},
	}
	ds = append(ds, synthetic...)

	return NewCatalog(ds...)
}

// BuiltinCatalogSubset returns a catalog holding only the named
// built-in datasets — useful for tools and tests that need one or two
// datasets without carrying the full 50-entry catalog.
func BuiltinCatalogSubset(names ...string) (*Catalog, error) {
	full, err := BuiltinCatalog()
	if err != nil {
		return nil, err
	}
	sub := make([]Dataset, 0, len(names))
	for _, n := range names {
		d, err := full.Get(n)
		if err != nil {
			return nil, err
		}
		sub = append(sub, d)
	}
	return NewCatalog(sub...)
}

// wikiSuggestedSources lists reference nodes that exist in the given
// snapshot (the fake-news article is absent before 2013).
func wikiSuggestedSources(lang string, year int) []string {
	var out []string
	for _, com := range wikiCommunities(lang) {
		if isFakeNews(com.ref) && year < 2013 {
			continue
		}
		out = append(out, com.ref)
	}
	return out
}
