package datasets

import (
	"fmt"
	"math/rand"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// WikiConfig selects a synthetic WikiLinkGraphs snapshot.
type WikiConfig struct {
	// Language is a WikiLinkGraphs language code: de, en, es, fr, it,
	// nl, pl, ru or sv.
	Language string
	// Year is the snapshot year: 2003, 2008, 2013 or 2018.
	Year int
	// Seed perturbs the background topology; the curated semantic core
	// is unaffected. Zero derives a seed from language and year.
	Seed int64
}

// WikiLanguages lists the supported language editions in the paper's
// order.
func WikiLanguages() []string {
	return []string{"de", "en", "es", "fr", "it", "nl", "pl", "ru", "sv"}
}

// WikiYears lists the supported snapshot years.
func WikiYears() []int { return []int{2003, 2008, 2013, 2018} }

// Validate checks the configuration.
func (c WikiConfig) Validate() error {
	okLang := false
	for _, l := range WikiLanguages() {
		if l == c.Language {
			okLang = true
			break
		}
	}
	if !okLang {
		return fmt.Errorf("datasets: unknown wiki language %q", c.Language)
	}
	okYear := false
	for _, y := range WikiYears() {
		if y == c.Year {
			okYear = true
			break
		}
	}
	if !okYear {
		return fmt.Errorf("datasets: unsupported wiki year %d", c.Year)
	}
	return nil
}

// community is a curated semantic neighborhood: a reference article
// plus members listed in decreasing expected CycleRank order. The
// generator links the reference reciprocally with every member and
// members i,j reciprocally iff i+j < len(members) — a deterministic
// "nested circles" rule making member i's intra-community degree
// strictly decrease with i, which in turn makes CycleRank's 3-cycle
// counts (and thus its ranking) follow the listed order.
//
// leakTo lists globally central articles every community member links
// to one-way; they receive walk probability from Personalized PageRank
// but, lacking back-links, are invisible to CycleRank. This reproduces
// the hub-promotion failure mode Tables I and II illustrate.
type community struct {
	ref     string
	members []string
	leakTo  []string
	// leakLimit caps how many nodes emit the one-way leak links: the
	// reference plus the first leakLimit-1 members. Zero means every
	// member leaks. Tuning this controls how prominently the leak
	// targets show up in Personalized PageRank's top ranks.
	leakLimit int
}

// hub is a globally central article: the background mass links to it
// one-way with probability proportional to weight, giving it a
// top-of-PageRank in-degree with near-zero reciprocity.
type hub struct {
	name   string
	weight float64
}

// enHubs reproduces the top of Table I's PageRank column: the 2018
// English Wikipedia's most linked articles. Weights order them.
var enHubs = []hub{
	{"United States", 2000},
	{"Animal", 1800},
	{"Arthropod", 1600},
	{"Association football", 1400},
	{"Insect", 1200},
	{"Donald Trump", 600},
	{"Facebook", 500},
	{"CNN", 450},
	{"HIV/AIDS", 400},
	{"New York Times", 350},
	{"World War II", 300},
	{"Germany", 250},
}

// genericHubs names hubs for non-English editions (localized where the
// paper's Table III implies a localized presence).
func wikiHubs(lang string) []hub {
	if lang == "en" {
		return enHubs
	}
	base := []hub{
		{"United States", 2000},
		{"Europe", 1700},
		{"Animal", 1500},
		{"Football", 1300},
		{"Insect", 1100},
		{"Donald Trump", 600},
		{"Facebook", 500},
		{"Internet", 400},
		{"Television", 300},
	}
	return base
}

// wikiCommunities returns the curated communities for one language
// edition. English carries the Table I neighborhoods (Freddie
// Mercury, Pasta); every language carries its Table III fake-news
// neighborhood. Member lists follow the paper's reported top-5 rows.
func wikiCommunities(lang string) []community {
	switch lang {
	case "en":
		return []community{
			{
				ref: "Freddie Mercury",
				members: []string{
					"Queen (band)", "Brian May", "Roger Taylor", "John Deacon",
					"Queen II", "The FM Tribute Concert", "Bohemian Rhapsody",
					"A Night at the Opera", "We Will Rock You", "Live Aid",
				},
				leakTo: []string{"HIV/AIDS", "United States"},
			},
			{
				ref: "Pasta",
				members: []string{
					"Italian cuisine", "Italy", "Spaghetti", "Flour",
					"Bolognese sauce", "Carbonara", "Durum", "Olive oil",
					"Penne", "Lasagna",
				},
				leakTo: []string{"United States"},
			},
			{
				ref: "Fake news",
				members: []string{
					"CNN", "Facebook", "US presidential election, 2016",
					"Propaganda", "Social media", "Donald Trump",
					"Post-truth politics", "Disinformation", "Clickbait",
				},
				leakTo: []string{"United States"},
			},
		}
	case "de":
		return []community{{
			ref: "Fake News",
			members: []string{
				"Barack Obama", "Tagesschau.de", "Desinformation", "Fake",
				"Donald Trump", "Propaganda", "Soziale Medien", "Lügenpresse",
			},
			leakTo: []string{"United States"},
		}}
	case "es":
		return []community{{
			ref: "Noticias falsas",
			members: []string{
				"Posverdad", "Desinformación", "Bulo", "Donald Trump",
				"Facebook", "Propaganda", "Redes sociales",
			},
			leakTo: []string{"United States"},
		}}
	case "fr":
		return []community{{
			ref: "Fake news",
			members: []string{
				"Ère post-vérité", "Donald Trump", "Facebook", "Hoax",
				"Alex Jones (complotiste)", "Désinformation", "Propagande",
			},
			leakTo: []string{"United States"},
		}}
	case "it":
		return []community{{
			ref: "Fake news",
			members: []string{
				"Disinformazione", "Post-verità", "Bufala", "Debunker",
				"Clickbait", "Donald Trump", "Social media",
			},
			leakTo: []string{"United States"},
		}}
	case "nl":
		return []community{{
			ref: "Nepnieuws",
			members: []string{
				"Facebook", "Journalistiek", "Hoax", "Desinformatie",
				"Sociale media", "Donald Trump",
			},
			leakTo: []string{"United States"},
		}}
	case "pl":
		return []community{{
			ref: "Fake news",
			members: []string{
				"Dezinformacja", "Propaganda", "Media społecznościowe",
				"Dziennikarstwo", "Donald Trump",
			},
			leakTo: []string{"United States"},
		}}
	case "ru":
		return []community{{
			ref: "Фейковые новости",
			members: []string{
				"Дезинформация", "Пропаганда", "Социальные сети",
				"Дональд Трамп", "Журналистика",
			},
			leakTo: []string{"United States"},
		}}
	case "sv":
		return []community{{
			ref: "Falska nyheter",
			members: []string{
				"Desinformation", "Propaganda", "Sociala medier",
				"Donald Trump", "Journalistik",
			},
			leakTo: []string{"United States"},
		}}
	}
	return nil
}

// wikiScale returns the background article count for a language/year
// pair. English is the largest edition; sizes grow over snapshot
// years, mirroring WikiLinkGraphs' longitudinal growth.
func wikiScale(lang string, year int) int {
	base := map[string]int{
		"en": 3000, "de": 2100, "fr": 2000, "es": 1500, "it": 1500,
		"ru": 1400, "nl": 1000, "pl": 1000, "sv": 900,
	}[lang]
	switch year {
	case 2003:
		return base / 4
	case 2008:
		return base / 2
	case 2013:
		return base * 3 / 4
	default:
		return base
	}
}

// GenerateWiki builds the synthetic WikiLinkGraphs snapshot described
// by c. The graph contains, in order of construction: the hub
// articles, the curated communities (the fake-news neighborhood only
// exists from the 2013 snapshot on, mirroring the topic's real-world
// emergence), and a preferential-attachment background of
// "<lang>:Article NNNN" pages whose out-links target earlier
// background pages and hubs (weight-proportional), with a small
// reciprocation probability.
func GenerateWiki(c WikiConfig) (*graph.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	seed := c.Seed
	if seed == 0 {
		seed = int64(c.Year)*1000 + int64(len(c.Language))*7919 + int64(c.Language[0])
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewLabeledBuilder()

	hubs := wikiHubs(c.Language)
	hubNames := make([]string, len(hubs))
	hubWeights := make([]float64, len(hubs))
	for i, h := range hubs {
		hubNames[i] = h.name
		hubWeights[i] = h.weight
		b.AddNode(h.name)
	}
	hubPick := newWeightedPicker(hubWeights)

	for _, com := range wikiCommunities(c.Language) {
		if isFakeNews(com.ref) && c.Year < 2013 {
			continue // topic does not exist in early snapshots
		}
		members := com.members
		if c.Year == 2013 {
			// Younger neighborhood: fewer members in the 2013 snapshot.
			if len(members) > 4 {
				members = members[:4]
			}
		}
		addCommunity(b, com.ref, members, com.leakTo)
	}

	// Preferential-attachment background.
	n := wikiScale(c.Language, c.Year)
	bg := make([]string, n)
	for i := range bg {
		bg[i] = fmt.Sprintf("%s:Article %04d", c.Language, i)
		b.AddNode(bg[i])
	}
	for i, name := range bg {
		outDeg := 3 + rng.Intn(8)
		for d := 0; d < outDeg; d++ {
			r := rng.Float64()
			switch {
			case r < 0.35:
				// Link to a hub, weight-proportional: this is what gives
				// hubs their dominating in-degree.
				b.AddLabeledEdge(name, hubNames[hubPick.pick(rng)])
			case r < 0.40 && i > 0:
				// Rarely, link to a recent page AND get linked back:
				// background reciprocity exists but is low.
				j := rng.Intn(i)
				b.AddLabeledEdge(name, bg[j])
				b.AddLabeledEdge(bg[j], name)
			default:
				if i == 0 {
					b.AddLabeledEdge(name, hubNames[hubPick.pick(rng)])
					continue
				}
				// Preferential attachment by vertex copying: link to a
				// random earlier page, biased toward low indices (which
				// accumulated links first).
				j := rng.Intn(i)
				if j2 := rng.Intn(i); j2 < j {
					j = j2
				}
				b.AddLabeledEdge(name, bg[j])
			}
		}
	}

	// Hubs link out to a scatter of ordinary pages (a country article
	// links to its cities, not back to everything that cites it). The
	// wide one-way fan-out keeps hubs non-dangling while leaving their
	// reciprocity near zero and — unlike a hub→hub chain — does not
	// funnel one hub's PageRank mass into another.
	for _, h := range hubNames {
		for d := 0; d < 15 && n > 0; d++ {
			b.AddLabeledEdge(h, bg[rng.Intn(n)])
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("datasets: wiki %s-%d: %w", c.Language, c.Year, err)
	}
	return g, nil
}

func isFakeNews(ref string) bool {
	switch ref {
	case "Fake news", "Fake News", "Nepnieuws", "Noticias falsas",
		"Фейковые новости", "Falska nyheter":
		return true
	}
	return false
}

// addCommunity wires a curated community into the builder: the
// reference node is reciprocally linked with every member; members i,j
// are reciprocally linked iff i+j < len(members) (nested circles); and
// the leaking nodes (see community.leakLimit) link one-way to the leak
// targets.
func addCommunity(b *graph.Builder, ref string, members []string, leakTo []string) {
	addCommunityLimited(b, ref, members, leakTo, 0)
}

func addCommunityLimited(b *graph.Builder, ref string, members []string, leakTo []string, leakLimit int) {
	for _, m := range members {
		b.AddLabeledEdge(ref, m)
		b.AddLabeledEdge(m, ref)
	}
	for i := range members {
		for j := i + 1; j < len(members); j++ {
			if i+j < len(members) {
				b.AddLabeledEdge(members[i], members[j])
				b.AddLabeledEdge(members[j], members[i])
			}
		}
	}
	leakers := append([]string{ref}, members...)
	if leakLimit > 0 && leakLimit < len(leakers) {
		leakers = leakers[:leakLimit]
	}
	for _, m := range leakers {
		for _, t := range leakTo {
			if t != m {
				b.AddLabeledEdge(m, t)
			}
		}
	}
}
