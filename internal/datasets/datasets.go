// Package datasets provides the platform's pre-loaded graphs.
//
// The demo paper ships 50 datasets: WikiLinkGraphs snapshots (nine
// Wikipedia language editions, four yearly snapshots each), the Amazon
// co-purchase network, and two Twitter interaction networks. Those
// corpora are proprietary or require network access, so this package
// replaces them with deterministic synthetic generators that preserve
// the structural phenomenon the paper's evaluation exercises:
//
//   - global hub nodes with very high in-degree and near-zero
//     reciprocity (the nodes Personalized PageRank over-promotes), and
//   - topical communities with dense reciprocal links around named
//     reference nodes (the nodes CycleRank is designed to surface),
//     embedded in a preferential-attachment background.
//
// Every generator is seeded, so a given dataset name always produces a
// byte-identical graph. See DESIGN.md §3 for the substitution
// rationale.
//
// Invariants:
//
//   - Determinism: Catalog.Get(name).Load() returns the same graph —
//     same node count, same edges, same labels in the same order —
//     on every call, platform, and Go version (generators use only
//     math/rand with fixed seeds, whose sequence is stable).
//   - Idempotent loading: generators build a fresh graph per Load;
//     callers own the result and the catalog holds no mutable state.
//   - Suggested sources always resolve: every name in a dataset's
//     SuggestedSources is a label present in the generated graph
//     (tests enforce this), so UIs can offer them unchecked.
package datasets

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// Dataset is a catalog entry: a named, self-describing graph
// generator.
type Dataset struct {
	// Name is the unique catalog key, e.g. "enwiki-2018".
	Name string `json:"name"`
	// Kind groups datasets by family: "wikilink", "amazon", "twitter"
	// or "synthetic".
	Kind string `json:"kind"`
	// Description is a one-line human-readable summary.
	Description string `json:"description"`
	// SuggestedSources are labels that make good reference nodes for
	// personalized algorithms on this dataset (shown by the UI).
	SuggestedSources []string `json:"suggested_sources,omitempty"`

	generate func() (*graph.Graph, error)
}

// Load generates the dataset's graph. Generation is deterministic:
// repeated calls return structurally identical graphs.
func (d Dataset) Load() (*graph.Graph, error) {
	if d.generate == nil {
		return nil, fmt.Errorf("datasets: %s has no generator", d.Name)
	}
	g, err := d.generate()
	if err != nil {
		return nil, fmt.Errorf("datasets: generating %s: %w", d.Name, err)
	}
	return g, nil
}

// Catalog is a named collection of datasets.
type Catalog struct {
	byName map[string]Dataset
}

// NewCatalog builds a catalog from the given datasets, rejecting
// duplicates.
func NewCatalog(ds ...Dataset) (*Catalog, error) {
	c := &Catalog{byName: make(map[string]Dataset, len(ds))}
	for _, d := range ds {
		if d.Name == "" {
			return nil, fmt.Errorf("datasets: dataset with empty name")
		}
		if _, dup := c.byName[d.Name]; dup {
			return nil, fmt.Errorf("datasets: duplicate dataset %q", d.Name)
		}
		c.byName[d.Name] = d
	}
	return c, nil
}

// Get resolves a dataset by name.
func (c *Catalog) Get(name string) (Dataset, error) {
	d, ok := c.byName[name]
	if !ok {
		return Dataset{}, fmt.Errorf("datasets: unknown dataset %q", name)
	}
	return d, nil
}

// Names returns all dataset names in sorted order.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.byName))
	for n := range c.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns all datasets sorted by name.
func (c *Catalog) All() []Dataset {
	out := make([]Dataset, 0, len(c.byName))
	for _, n := range c.Names() {
		out = append(out, c.byName[n])
	}
	return out
}

// Len returns the number of datasets.
func (c *Catalog) Len() int { return len(c.byName) }

// weightedPicker samples indices proportionally to fixed weights,
// deterministically under a seeded RNG.
type weightedPicker struct {
	cum   []float64
	total float64
}

func newWeightedPicker(weights []float64) *weightedPicker {
	p := &weightedPicker{cum: make([]float64, len(weights))}
	for i, w := range weights {
		p.total += w
		p.cum[i] = p.total
	}
	return p
}

func (p *weightedPicker) pick(rng *rand.Rand) int {
	if p.total == 0 {
		return 0
	}
	x := rng.Float64() * p.total
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
