package datasets

import (
	"fmt"
	"math/rand"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// ErdosRenyi generates G(n, p): each of the n·(n−1) possible directed
// edges exists independently with probability p.
func ErdosRenyi(n int, p float64, seed int64) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("datasets: erdos-renyi: negative n %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("datasets: erdos-renyi: p=%v outside [0,1]", p)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return b.Build()
}

// PreferentialAttachment generates a directed Barabási–Albert-style
// graph: nodes arrive one at a time and attach m out-edges to earlier
// nodes chosen proportionally to their current in-degree (plus one
// smoothing), yielding the heavy-tailed in-degree distribution of web
// and citation graphs. With probability pRecip each new edge is
// reciprocated, controlling how much material CycleRank has to work
// with.
func PreferentialAttachment(n, m int, pRecip float64, seed int64) (*graph.Graph, error) {
	if n < 0 || m < 1 {
		return nil, fmt.Errorf("datasets: preferential attachment: invalid n=%d m=%d", n, m)
	}
	if pRecip < 0 || pRecip > 1 {
		return nil, fmt.Errorf("datasets: preferential attachment: pRecip=%v outside [0,1]", pRecip)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// targets implements the classic "repeated endpoints" trick: a
	// node's multiplicity in the slice is proportional to degree+1.
	targets := make([]graph.NodeID, 0, 2*n*m)
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		targets = append(targets, id) // smoothing entry
		if v == 0 {
			continue
		}
		deg := m
		if v < m {
			deg = v
		}
		for e := 0; e < deg; e++ {
			t := targets[rng.Intn(len(targets))]
			if t == id {
				continue
			}
			b.AddEdge(id, t)
			targets = append(targets, t)
			if rng.Float64() < pRecip {
				b.AddEdge(t, id)
				targets = append(targets, id)
			}
		}
	}
	return b.Build()
}

// CopyingModel generates a Kleinberg-style web graph: each new node
// picks a random prototype among earlier nodes and copies each of the
// prototype's out-links with probability 1−beta, otherwise linking to
// a uniform random earlier node. Copying produces the dense bipartite
// cores and high clustering of real link graphs.
func CopyingModel(n, m int, beta float64, seed int64) (*graph.Graph, error) {
	if n < 0 || m < 1 {
		return nil, fmt.Errorf("datasets: copying model: invalid n=%d m=%d", n, m)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("datasets: copying model: beta=%v outside [0,1]", beta)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	outs := make([][]graph.NodeID, n)
	for v := 1; v < n; v++ {
		id := graph.NodeID(v)
		proto := rng.Intn(v)
		for e := 0; e < m && e < v; e++ {
			var t graph.NodeID
			if rng.Float64() < beta || len(outs[proto]) == 0 {
				t = graph.NodeID(rng.Intn(v))
			} else {
				t = outs[proto][rng.Intn(len(outs[proto]))]
			}
			if t == id {
				continue
			}
			b.AddEdge(id, t)
			outs[v] = append(outs[v], t)
		}
	}
	return b.Build()
}

// DirectedRing generates the n-cycle 0→1→…→n−1→0, the minimal graph on
// which every node lies on exactly one long cycle.
func DirectedRing(n int) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("datasets: ring: negative n %d", n)
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%n))
	}
	return b.Build()
}

// RingOfCliques generates k bidirectional cliques of the given size,
// joined in a ring by single directed bridges. Clique members share
// huge numbers of short cycles while cross-clique cycles require the
// full ring — a worst-case-vs-best-case stress shape for CycleRank's
// pruning.
func RingOfCliques(k, size int) (*graph.Graph, error) {
	if k < 1 || size < 1 {
		return nil, fmt.Errorf("datasets: ring of cliques: invalid k=%d size=%d", k, size)
	}
	n := k * size
	b := graph.NewBuilder(n)
	node := func(c, i int) graph.NodeID { return graph.NodeID(c*size + i) }
	for c := 0; c < k; c++ {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				b.AddEdge(node(c, i), node(c, j))
				b.AddEdge(node(c, j), node(c, i))
			}
		}
		b.AddEdge(node(c, 0), node((c+1)%k, 0))
	}
	return b.Build()
}

// CompleteDigraph generates the complete directed graph on n nodes
// (every ordered pair is an edge), the densest possible cycle load.
func CompleteDigraph(n int) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("datasets: complete: negative n %d", n)
	}
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return b.Build()
}
