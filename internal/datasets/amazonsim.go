package datasets

import (
	"fmt"
	"math/rand"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// AmazonConfig selects the synthetic Amazon co-purchase graph.
type AmazonConfig struct {
	// Products is the background catalog size (default 2000).
	Products int
	// Seed perturbs the background topology (default 20070301, fixed).
	Seed int64
}

func (c AmazonConfig) products() int {
	if c.Products == 0 {
		return 2000
	}
	return c.Products
}

func (c AmazonConfig) seed() int64 {
	if c.Seed == 0 {
		return 20070301
	}
	return c.Seed
}

// amazonHubs are the perennial bestsellers: products that appear in
// "customers also bought" lists of virtually everything (one-way
// in-links), reproducing Table II's PageRank column. The Catcher in
// the Rye, Lord of the Flies and the Harry Potter books additionally
// receive recirculated mass from the curated clusters they belong to
// (or are leaked to), so their raw weights are set below their target
// PageRank positions to land the paper's ordering.
var amazonHubs = []hub{
	{"Good to Great", 2000},
	{"The Catcher in the Rye", 1100},
	{"DSM-IV", 1600},
	{"The Great Gatsby", 1400},
	{"Lord of the Flies", 900},
	{"Harry Potter (Book 1)", 700},
	{"Harry Potter (Book 2)", 650},
	{"The Da Vinci Code", 800},
	{"Who Moved My Cheese?", 600},
	{"The 7 Habits of Highly Effective People", 550},
}

// amazonCommunities are the mutual co-purchase clusters of Table II.
// The Catcher in the Rye and Lord of the Flies are members *and* hubs:
// classics that belong to the dystopia cluster yet are co-purchased
// with everything — which is why classic PageRank ranks them globally
// while CycleRank only surfaces them for related references.
var amazonCommunities = []community{
	{
		ref: "1984",
		members: []string{
			"Animal Farm", "Fahrenheit 451", "The Catcher in the Rye",
			"Brave New World", "Lord of the Flies", "To Kill a Mockingbird",
			"A Clockwork Orange", "Slaughterhouse-Five",
		},
		// No bestseller leak: the paper's 1984 PPR column stays within
		// the classics; only the Tolkien cluster drifts to Harry Potter.
	},
	{
		ref: "The Fellowship of the Ring",
		members: []string{
			"The Hobbit", "The Return of the King", "The Silmarillion",
			"The Two Towers", "Unfinished Tales", "The Children of Hurin",
		},
		leakTo: []string{"Harry Potter (Book 1)", "Harry Potter (Book 2)"},
		// Only the reference and its three closest co-purchases drift
		// to Harry Potter, landing the bestsellers at PPR ranks ~3-4
		// as in the paper's Table II.
		leakLimit: 4,
	},
}

// GenerateAmazon builds the synthetic Amazon co-purchase digraph: an
// edge u->v means "customers who bought u also bought v". Bestseller
// hubs receive weight-proportional links from the whole catalog;
// curated clusters are reciprocally co-purchased; background products
// follow a copying model.
func GenerateAmazon(c AmazonConfig) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(c.seed()))
	b := graph.NewLabeledBuilder()

	hubNames := make([]string, len(amazonHubs))
	hubWeights := make([]float64, len(amazonHubs))
	for i, h := range amazonHubs {
		hubNames[i] = h.name
		hubWeights[i] = h.weight
		b.AddNode(h.name)
	}
	hubPick := newWeightedPicker(hubWeights)

	for _, com := range amazonCommunities {
		addCommunityLimited(b, com.ref, com.members, com.leakTo, com.leakLimit)
	}

	n := c.products()
	bg := make([]string, n)
	for i := range bg {
		bg[i] = fmt.Sprintf("Product %06d", i)
		b.AddNode(bg[i])
	}
	for i, name := range bg {
		outDeg := 2 + rng.Intn(5)
		for d := 0; d < outDeg; d++ {
			r := rng.Float64()
			switch {
			case r < 0.4:
				b.AddLabeledEdge(name, hubNames[hubPick.pick(rng)])
			case r < 0.5 && i > 0:
				j := rng.Intn(i)
				b.AddLabeledEdge(name, bg[j])
				b.AddLabeledEdge(bg[j], name)
			default:
				if i == 0 {
					b.AddLabeledEdge(name, hubNames[hubPick.pick(rng)])
					continue
				}
				j := rng.Intn(i)
				if j2 := rng.Intn(i); j2 < j {
					j = j2
				}
				b.AddLabeledEdge(name, bg[j])
			}
		}
	}

	// Bestsellers also recommend a scatter of ordinary products
	// (one-way, wide fan-out) so they are not dangling sinks; see the
	// equivalent comment in the wiki generator.
	for _, h := range hubNames {
		for d := 0; d < 10 && n > 0; d++ {
			b.AddLabeledEdge(h, bg[rng.Intn(n)])
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("datasets: amazon: %w", err)
	}
	return g, nil
}
