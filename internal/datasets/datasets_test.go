package datasets

import (
	"context"
	"strings"
	"testing"

	"github.com/cyclerank/cyclerank-go/internal/core"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/pagerank"
)

func TestBuiltinCatalogHasFiftyDatasets(t *testing.T) {
	c, err := BuiltinCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 50 {
		t.Errorf("catalog has %d datasets, want 50 (as shipped by the demo)", c.Len())
	}
	if len(c.Names()) != c.Len() || len(c.All()) != c.Len() {
		t.Error("Names/All length mismatch")
	}
}

func TestCatalogGet(t *testing.T) {
	c, err := BuiltinCatalog()
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Get("enwiki-2018")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != "wikilink" {
		t.Errorf("kind = %q", d.Kind)
	}
	if _, err := c.Get("no-such-dataset"); err == nil {
		t.Error("unknown dataset resolved")
	}
}

func TestCatalogRejectsDuplicates(t *testing.T) {
	d := Dataset{Name: "x"}
	if _, err := NewCatalog(d, d); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := NewCatalog(Dataset{}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestWikiConfigValidation(t *testing.T) {
	if err := (WikiConfig{Language: "xx", Year: 2018}).Validate(); err == nil {
		t.Error("bad language accepted")
	}
	if err := (WikiConfig{Language: "en", Year: 1999}).Validate(); err == nil {
		t.Error("bad year accepted")
	}
	if _, err := GenerateWiki(WikiConfig{Language: "xx", Year: 2018}); err == nil {
		t.Error("GenerateWiki accepted bad config")
	}
}

func TestWikiDeterministic(t *testing.T) {
	cfg := WikiConfig{Language: "nl", Year: 2008}
	a, err := GenerateWiki(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWiki(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d", a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	same := true
	a.Edges(func(u, v graph.NodeID) bool {
		au, _ := b.NodeByLabel(a.Label(u))
		av, _ := b.NodeByLabel(a.Label(v))
		if !b.HasEdge(au, av) {
			same = false
			return false
		}
		return true
	})
	if !same {
		t.Error("edge sets differ between runs")
	}
}

func TestWikiGrowsOverYears(t *testing.T) {
	var prev int
	for _, year := range WikiYears() {
		g, err := GenerateWiki(WikiConfig{Language: "en", Year: year})
		if err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() <= prev {
			t.Errorf("year %d snapshot (%d nodes) not larger than previous (%d)", year, g.NumNodes(), prev)
		}
		prev = g.NumNodes()
	}
}

func TestWikiFakeNewsAbsentBefore2013(t *testing.T) {
	early, err := GenerateWiki(WikiConfig{Language: "en", Year: 2008})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := early.NodeByLabel("Fake news"); ok {
		t.Error("Fake news article present in 2008 snapshot")
	}
	late, err := GenerateWiki(WikiConfig{Language: "en", Year: 2018})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := late.NodeByLabel("Fake news"); !ok {
		t.Error("Fake news article missing in 2018 snapshot")
	}
}

func TestWikiHubsHaveLowReciprocityHighInDegree(t *testing.T) {
	g, err := GenerateWiki(WikiConfig{Language: "en", Year: 2018})
	if err != nil {
		t.Fatal(err)
	}
	us, ok := g.NodeByLabel("United States")
	if !ok {
		t.Fatal("United States missing")
	}
	queen, _ := g.NodeByLabel("Queen (band)")
	if g.InDegree(us) < 10*g.InDegree(queen) {
		t.Errorf("hub in-degree %d not dominant over community node %d", g.InDegree(us), g.InDegree(queen))
	}
	// Reciprocity of the hub's in-links must be tiny: count back-links.
	back := 0
	for _, w := range g.In(us) {
		if g.HasEdge(us, w) {
			back++
		}
	}
	if frac := float64(back) / float64(g.InDegree(us)); frac > 0.05 {
		t.Errorf("hub reciprocity %.3f too high for the PPR-vs-CR contrast", frac)
	}
}

// The structural acceptance test for the Table I substitution: on the
// synthetic enwiki-2018, CycleRank from Freddie Mercury surfaces the
// band community and no global hub, while PPR leaks onto at least one
// global hub; classic PageRank's top-5 is exactly the hub set.
func TestWikiReproducesTableIShape(t *testing.T) {
	g, err := GenerateWiki(WikiConfig{Language: "en", Year: 2018})
	if err != nil {
		t.Fatal(err)
	}
	fm, ok := g.NodeByLabel("Freddie Mercury")
	if !ok {
		t.Fatal("Freddie Mercury missing")
	}

	// PageRank top-5 = the five heaviest hubs, in weight order.
	pr, err := pagerank.PageRank(nil, g, pagerank.Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	wantPR := []string{"United States", "Animal", "Arthropod", "Association football", "Insect"}
	gotPR := pr.TopLabels(5)
	for i, want := range wantPR {
		if gotPR[i] != want {
			t.Errorf("PageRank top[%d] = %q, want %q (full: %v)", i, gotPR[i], want, gotPR)
		}
	}

	// CycleRank K=3 from FM: reference first, then band community; no
	// hub anywhere in its support.
	cr, err := core.Compute(nil, g, fm, core.Params{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	crTop := cr.TopLabels(5)
	if crTop[0] != "Freddie Mercury" {
		t.Errorf("CycleRank top1 = %q, want the reference", crTop[0])
	}
	if crTop[1] != "Queen (band)" {
		t.Errorf("CycleRank top2 = %q, want Queen (band) (full: %v)", crTop[1], crTop)
	}
	hubSet := map[string]bool{}
	for _, h := range enHubs {
		hubSet[h.name] = true
	}
	for _, e := range cr.Top(-1) {
		if hubSet[e.Label] {
			t.Errorf("CycleRank scored global hub %q", e.Label)
		}
	}

	// PPR alpha=0.3 from FM: the one-way leak target must appear in
	// the top-5 even though CycleRank ignores it.
	ppr, err := pagerank.Personalized(nil, g, pagerank.Params{Alpha: 0.3, Seeds: []graph.NodeID{fm}})
	if err != nil {
		t.Fatal(err)
	}
	pprTop := ppr.TopLabels(6)
	leaked := false
	for _, l := range pprTop {
		if l == "HIV/AIDS" || l == "United States" {
			leaked = true
		}
	}
	if !leaked {
		t.Errorf("PPR top-6 %v contains no global hub; the substitution lost the leak effect", pprTop)
	}
}

func TestAmazonReproducesTableIIShape(t *testing.T) {
	g, err := GenerateAmazon(AmazonConfig{})
	if err != nil {
		t.Fatal(err)
	}

	pr, err := pagerank.PageRank(nil, g, pagerank.Params{Alpha: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if top := pr.TopLabels(1); top[0] != "Good to Great" {
		t.Errorf("Amazon PageRank top1 = %v, want Good to Great", top)
	}
	// Table II PR column as a set: {Good to Great, Catcher, DSM-IV,
	// Great Gatsby, Lord of the Flies}.
	wantPR := map[string]bool{
		"Good to Great": true, "The Catcher in the Rye": true, "DSM-IV": true,
		"The Great Gatsby": true, "Lord of the Flies": true,
	}
	for _, l := range pr.TopLabels(5) {
		if !wantPR[l] {
			t.Errorf("Amazon PageRank top-5 contains %q, outside the paper's set (full: %v)", l, pr.TopLabels(5))
		}
	}

	fotr, ok := g.NodeByLabel("The Fellowship of the Ring")
	if !ok {
		t.Fatal("Fellowship missing")
	}
	cr, err := core.Compute(nil, g, fotr, core.Params{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	crTop := cr.TopLabels(6)
	if crTop[0] != "The Fellowship of the Ring" || crTop[1] != "The Hobbit" {
		t.Errorf("Amazon CycleRank top = %v", crTop)
	}
	for _, l := range cr.TopLabels(-1) {
		if strings.HasPrefix(l, "Harry Potter") {
			t.Errorf("CycleRank surfaced bestseller %q", l)
		}
	}

	ppr, err := pagerank.Personalized(nil, g, pagerank.Params{Alpha: 0.85, Seeds: []graph.NodeID{fotr}})
	if err != nil {
		t.Fatal(err)
	}
	hpInPPR := false
	for _, l := range ppr.TopLabels(6) {
		if strings.HasPrefix(l, "Harry Potter") {
			hpInPPR = true
		}
	}
	if !hpInPPR {
		t.Errorf("PPR top-6 %v has no Harry Potter; bestseller leak lost", ppr.TopLabels(6))
	}
}

func TestEveryLanguageHasFakeNewsCommunity2018(t *testing.T) {
	refs := map[string]string{
		"de": "Fake News", "en": "Fake news", "es": "Noticias falsas",
		"fr": "Fake news", "it": "Fake news", "nl": "Nepnieuws",
		"pl": "Fake news", "ru": "Фейковые новости", "sv": "Falska nyheter",
	}
	for lang, ref := range refs {
		g, err := GenerateWiki(WikiConfig{Language: lang, Year: 2018})
		if err != nil {
			t.Fatalf("%s: %v", lang, err)
		}
		id, ok := g.NodeByLabel(ref)
		if !ok {
			t.Errorf("%s: reference %q missing", lang, ref)
			continue
		}
		res, err := core.Compute(nil, g, id, core.Params{K: 3})
		if err != nil {
			t.Fatalf("%s: %v", lang, err)
		}
		if res.CyclesFound == 0 {
			t.Errorf("%s: fake-news community has no cycles", lang)
		}
		members := wikiCommunities(lang)[len(wikiCommunities(lang))-1].members
		top := res.TopLabels(3)
		if top[0] != ref || top[1] != members[0] {
			t.Errorf("%s: CR top = %v, want [%s %s ...]", lang, top, ref, members[0])
		}
	}
}

func TestTwitterGenerators(t *testing.T) {
	for _, topic := range TwitterTopics() {
		g, err := GenerateTwitter(TwitterConfig{Topic: topic})
		if err != nil {
			t.Fatalf("%s: %v", topic, err)
		}
		if g.NumNodes() < 1000 {
			t.Errorf("%s: only %d nodes", topic, g.NumNodes())
		}
		org, ok := g.NodeByLabel(topic + "_organizer_00")
		if !ok {
			t.Fatalf("%s: organizer missing", topic)
		}
		res, err := core.Compute(nil, g, org, core.Params{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.CyclesFound == 0 {
			t.Errorf("%s: organizer community has no cycles", topic)
		}
		// Influencers: high in-degree.
		inf, ok := g.NodeByLabel(topic + "_influencer_00")
		if !ok {
			t.Fatalf("%s: influencer missing", topic)
		}
		if g.InDegree(inf) < 50 {
			t.Errorf("%s: influencer in-degree %d too small", topic, g.InDegree(inf))
		}
	}
	if _, err := GenerateTwitter(TwitterConfig{Topic: "nope"}); err == nil {
		t.Error("bad topic accepted")
	}
}

func TestRandomGenerators(t *testing.T) {
	er, err := ErdosRenyi(100, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if er.NumNodes() != 100 || er.NumEdges() == 0 {
		t.Error("ER degenerate")
	}
	ba, err := PreferentialAttachment(500, 3, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ba.NumNodes() != 500 {
		t.Error("BA wrong size")
	}
	// Heavy tail: max in-degree far above mean.
	stats := graph.ComputeStats(ba)
	if float64(stats.MaxInDegree) < 4*stats.AvgDegree {
		t.Errorf("BA max in-degree %d vs avg %f: no heavy tail", stats.MaxInDegree, stats.AvgDegree)
	}
	cm, err := CopyingModel(300, 4, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cm.NumNodes() != 300 {
		t.Error("copying model wrong size")
	}
	ring, err := DirectedRing(10)
	if err != nil {
		t.Fatal(err)
	}
	if ring.NumEdges() != 10 {
		t.Error("ring wrong edges")
	}
	roc, err := RingOfCliques(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if roc.NumNodes() != 12 {
		t.Error("ring of cliques wrong size")
	}
	k, err := CompleteDigraph(5)
	if err != nil {
		t.Fatal(err)
	}
	if k.NumEdges() != 20 {
		t.Error("complete digraph wrong edges")
	}
}

func TestRandomGeneratorValidation(t *testing.T) {
	if _, err := ErdosRenyi(-1, 0.5, 1); err == nil {
		t.Error("ER accepted negative n")
	}
	if _, err := ErdosRenyi(10, 1.5, 1); err == nil {
		t.Error("ER accepted p>1")
	}
	if _, err := PreferentialAttachment(10, 0, 0.2, 1); err == nil {
		t.Error("BA accepted m=0")
	}
	if _, err := PreferentialAttachment(10, 2, -0.1, 1); err == nil {
		t.Error("BA accepted bad pRecip")
	}
	if _, err := CopyingModel(10, 0, 0.3, 1); err == nil {
		t.Error("copying accepted m=0")
	}
	if _, err := CopyingModel(10, 2, 7, 1); err == nil {
		t.Error("copying accepted bad beta")
	}
	if _, err := DirectedRing(-2); err == nil {
		t.Error("ring accepted negative n")
	}
	if _, err := RingOfCliques(0, 3); err == nil {
		t.Error("ring of cliques accepted k=0")
	}
	if _, err := CompleteDigraph(-1); err == nil {
		t.Error("complete accepted negative n")
	}
}

func TestRingCycleRankExactlyOneCycle(t *testing.T) {
	g, err := DirectedRing(6)
	if err != nil {
		t.Fatal(err)
	}
	n, err := core.CountCycles(context.Background(), g, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("ring of 6 has %d cycles through node 0 at K=6, want 1", n)
	}
	short, err := core.CountCycles(context.Background(), g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if short != 0 {
		t.Errorf("ring of 6 has %d cycles at K=5, want 0", short)
	}
}

func TestEveryCatalogDatasetLoads(t *testing.T) {
	if testing.Short() {
		t.Skip("loads all 50 datasets; skipped in -short")
	}
	c, err := BuiltinCatalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range c.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			g, err := d.Load()
			if err != nil {
				t.Fatal(err)
			}
			if g.NumNodes() == 0 || g.NumEdges() == 0 {
				t.Errorf("degenerate graph: N=%d M=%d", g.NumNodes(), g.NumEdges())
			}
			if d.Description == "" {
				t.Error("missing description")
			}
			// Suggested sources must resolve.
			for _, s := range d.SuggestedSources {
				if _, ok := g.NodeByLabel(s); !ok {
					t.Errorf("suggested source %q missing from graph", s)
				}
			}
		})
	}
}

func TestDatasetWithoutGenerator(t *testing.T) {
	d := Dataset{Name: "empty"}
	if _, err := d.Load(); err == nil {
		t.Error("Load succeeded without generator")
	}
}
