package graph

// Unreachable is the distance reported for nodes a bounded search did
// not reach.
const Unreachable = -1

// BFSFrom computes shortest-path distances (in edges) from src over
// out-edges, visiting only nodes within maxDepth hops. maxDepth < 0
// means unbounded. The result has one entry per node; unreached nodes
// hold Unreachable.
func BFSFrom(g *Graph, src NodeID, maxDepth int) []int32 {
	return bfs(g, src, maxDepth, false)
}

// BFSTo computes shortest-path distances (in edges) *to* dst over
// out-edges — equivalently, distances from dst over in-edges. maxDepth
// < 0 means unbounded.
func BFSTo(g *Graph, dst NodeID, maxDepth int) []int32 {
	return bfs(g, dst, maxDepth, true)
}

func bfs(g *Graph, src NodeID, maxDepth int, reverse bool) []int32 {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if !g.ValidNode(src) {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		d := dist[v]
		if maxDepth >= 0 && int(d) >= maxDepth {
			continue
		}
		var adj []NodeID
		if reverse {
			adj = g.In(v)
		} else {
			adj = g.Out(v)
		}
		for _, w := range adj {
			if dist[w] == Unreachable {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ReachableFrom returns the number of nodes reachable from src
// (including src itself) within maxDepth hops; maxDepth < 0 means
// unbounded.
func ReachableFrom(g *Graph, src NodeID, maxDepth int) int {
	dist := BFSFrom(g, src, maxDepth)
	count := 0
	for _, d := range dist {
		if d != Unreachable {
			count++
		}
	}
	return count
}

// DFSPostorder visits every node reachable from the given roots in
// depth-first postorder, calling fn exactly once per visited node. The
// traversal is iterative and safe on deep graphs.
func DFSPostorder(g *Graph, roots []NodeID, fn func(NodeID)) {
	n := g.NumNodes()
	visited := make([]bool, n)
	type frame struct {
		node NodeID
		next int
	}
	var stack []frame
	for _, r := range roots {
		if !g.ValidNode(r) || visited[r] {
			continue
		}
		visited[r] = true
		stack = append(stack, frame{node: r})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			adj := g.Out(top.node)
			advanced := false
			for top.next < len(adj) {
				w := adj[top.next]
				top.next++
				if !visited[w] {
					visited[w] = true
					stack = append(stack, frame{node: w})
					advanced = true
					break
				}
			}
			if !advanced && top.next >= len(adj) {
				fn(top.node)
				stack = stack[:len(stack)-1]
			}
		}
	}
}
