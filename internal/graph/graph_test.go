package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// mustBuild builds an unlabeled graph or fails the test.
func mustBuild(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatalf("FromEdges(%d, %v): %v", n, edges, err)
	}
	return g
}

// triangle returns the 3-cycle 0->1->2->0.
func triangle(t *testing.T) *Graph {
	return mustBuild(t, 3, []Edge{{0, 1}, {1, 2}, {2, 0}})
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumNodes() != 0 {
		t.Errorf("zero Graph NumNodes = %d, want 0", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Errorf("zero Graph NumEdges = %d, want 0", g.NumEdges())
	}
	if g.Density() != 0 {
		t.Errorf("zero Graph Density = %v, want 0", g.Density())
	}
	if g.Reciprocity() != 0 {
		t.Errorf("zero Graph Reciprocity = %v, want 0", g.Reciprocity())
	}
	if g.HasEdge(0, 0) {
		t.Error("zero Graph claims an edge")
	}
	if g.ValidNode(0) {
		t.Error("zero Graph claims node 0 is valid")
	}
}

func TestBuilderBasics(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 0}, {3, 3}})
	if got := g.NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 5 {
		t.Fatalf("NumEdges = %d, want 5", got)
	}
	wantOut := map[NodeID][]NodeID{
		0: {1, 2}, 1: {2}, 2: {0}, 3: {3},
	}
	for v, want := range wantOut {
		if got := g.Out(v); !reflect.DeepEqual(append([]NodeID{}, got...), want) {
			t.Errorf("Out(%d) = %v, want %v", v, got, want)
		}
	}
	wantIn := map[NodeID][]NodeID{
		0: {2}, 1: {0}, 2: {0, 1}, 3: {3},
	}
	for v, want := range wantIn {
		if got := g.In(v); !reflect.DeepEqual(append([]NodeID{}, got...), want) {
			t.Errorf("In(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	g := mustBuild(t, 2, []Edge{{0, 1}, {0, 1}, {0, 1}, {1, 0}})
	if got := g.NumEdges(); got != 2 {
		t.Fatalf("NumEdges = %d after dedup, want 2", got)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("expected edges missing after dedup")
	}
}

func TestBuilderOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range edge")
	}
	b2 := NewBuilder(2)
	b2.AddEdge(-1, 0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("Build accepted negative source")
	}
}

func TestBuilderNegativeCount(t *testing.T) {
	if _, err := NewBuilder(-1).Build(); err == nil {
		t.Fatal("Build accepted negative node count")
	}
}

func TestBuilderReusableAfterBuild(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	b.AddEdge(1, 2)
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != 1 || g2.NumEdges() != 2 {
		t.Errorf("edge counts = %d, %d; want 1, 2", g1.NumEdges(), g2.NumEdges())
	}
}

func TestLabeledBuilder(t *testing.T) {
	b := NewLabeledBuilder()
	b.AddLabeledEdge("a", "b")
	b.AddLabeledEdge("b", "c")
	b.AddLabeledEdge("c", "a")
	b.AddLabeledEdge("a", "b") // duplicate
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got N=%d M=%d, want N=3 M=3", g.NumNodes(), g.NumEdges())
	}
	id, ok := g.NodeByLabel("b")
	if !ok {
		t.Fatal("label b not found")
	}
	if got := g.Label(id); got != "b" {
		t.Errorf("Label(%d) = %q, want \"b\"", id, got)
	}
	if _, ok := g.NodeByLabel("zzz"); ok {
		t.Error("unknown label resolved")
	}
}

func TestLabeledBuilderRejectsEmptyLabel(t *testing.T) {
	b := NewLabeledBuilder()
	b.AddLabeledEdge("", "x")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted empty label")
	}
}

func TestAddNodeOnIndexedBuilderFails(t *testing.T) {
	b := NewBuilder(2)
	b.AddNode("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("indexed builder accepted AddNode")
	}
}

func TestAddEdgeOnLabeledBuilderFails(t *testing.T) {
	b := NewLabeledBuilder()
	b.AddEdge(0, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("labeled builder accepted AddEdge")
	}
}

func TestHasEdge(t *testing.T) {
	g := triangle(t)
	cases := []struct {
		from, to NodeID
		want     bool
	}{
		{0, 1, true}, {1, 2, true}, {2, 0, true},
		{1, 0, false}, {0, 2, false}, {0, 0, false},
		{-1, 0, false}, {0, 99, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.from, c.to); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestTranspose(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1}, {0, 2}, {1, 2}})
	gt := g.Transpose()
	if gt.NumNodes() != 3 || gt.NumEdges() != 3 {
		t.Fatalf("transpose N=%d M=%d", gt.NumNodes(), gt.NumEdges())
	}
	g.Edges(func(u, v NodeID) bool {
		if !gt.HasEdge(v, u) {
			t.Errorf("transpose missing edge (%d,%d)", v, u)
		}
		return true
	})
	// Transpose is an involution sharing storage.
	gtt := gt.Transpose()
	g.Edges(func(u, v NodeID) bool {
		if !gtt.HasEdge(u, v) {
			t.Errorf("double transpose missing edge (%d,%d)", u, v)
		}
		return true
	})
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 30, 0.1)
		gtt := g.Transpose().Transpose()
		equal := true
		g.Edges(func(u, v NodeID) bool {
			if !gtt.HasEdge(u, v) {
				equal = false
				return false
			}
			return true
		})
		return equal && g.NumEdges() == gtt.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDegrees(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 0}})
	if got := g.OutDegree(0); got != 3 {
		t.Errorf("OutDegree(0) = %d, want 3", got)
	}
	if got := g.InDegree(0); got != 1 {
		t.Errorf("InDegree(0) = %d, want 1", got)
	}
	if got := g.InDegree(3); got != 1 {
		t.Errorf("InDegree(3) = %d, want 1", got)
	}
	if got := g.OutDegree(3); got != 0 {
		t.Errorf("OutDegree(3) = %d, want 0", got)
	}
}

func TestDanglingNodes(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1}, {1, 2}})
	want := []NodeID{2, 3}
	if got := g.DanglingNodes(); !reflect.DeepEqual(got, want) {
		t.Errorf("DanglingNodes = %v, want %v", got, want)
	}
}

func TestReciprocity(t *testing.T) {
	// 0<->1 mutual, 0->2 one-way: 2 of 3 edges reciprocated.
	g := mustBuild(t, 3, []Edge{{0, 1}, {1, 0}, {0, 2}})
	got := g.Reciprocity()
	want := 2.0 / 3.0
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Reciprocity = %v, want %v", got, want)
	}
}

func TestDensity(t *testing.T) {
	g := triangle(t)
	want := 3.0 / 6.0
	if got := g.Density(); got != want {
		t.Errorf("Density = %v, want %v", got, want)
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	g := triangle(t)
	count := 0
	g.Edges(func(u, v NodeID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("Edges visited %d edges after early stop, want 2", count)
	}
}

func TestWithLabels(t *testing.T) {
	g := triangle(t)
	lg, err := g.WithLabels([]string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if got := lg.Label(1); got != "y" {
		t.Errorf("Label(1) = %q, want y", got)
	}
	if _, err := g.WithLabels([]string{"only-one"}); err == nil {
		t.Error("WithLabels accepted wrong-length slice")
	}
	if _, err := g.WithLabels([]string{"x", "x", "y"}); err == nil {
		t.Error("WithLabels accepted duplicate labels")
	}
}

func TestLabelTableNil(t *testing.T) {
	var lt *LabelTable
	if lt.Len() != 0 {
		t.Error("nil LabelTable Len != 0")
	}
	if got := lt.Name(5); got != "5" {
		t.Errorf("nil LabelTable Name(5) = %q, want \"5\"", got)
	}
	if _, ok := lt.ID("x"); ok {
		t.Error("nil LabelTable resolved a label")
	}
	if lt.Names() != nil {
		t.Error("nil LabelTable Names != nil")
	}
}

func TestMemoryFootprintPositive(t *testing.T) {
	g := triangle(t)
	if g.MemoryFootprint() <= 0 {
		t.Error("MemoryFootprint not positive for non-empty graph")
	}
}

// randomGraph builds a seeded Erdős–Rényi digraph for property tests.
func randomGraph(seed int64, n int, p float64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				b.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestCSRSortedProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 40, 0.15)
		for v := 0; v < g.NumNodes(); v++ {
			out := g.Out(NodeID(v))
			if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
				return false
			}
			in := g.In(NodeID(v))
			if !sort.SliceIsSorted(in, func(i, j int) bool { return in[i] < in[j] }) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestInOutConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 35, 0.12)
		// Total in-degrees == total out-degrees == M, and every out-edge
		// appears as an in-edge.
		var inSum, outSum int64
		for v := 0; v < g.NumNodes(); v++ {
			inSum += int64(g.InDegree(NodeID(v)))
			outSum += int64(g.OutDegree(NodeID(v)))
		}
		if inSum != g.NumEdges() || outSum != g.NumEdges() {
			return false
		}
		ok := true
		g.Edges(func(u, v NodeID) bool {
			found := false
			for _, w := range g.In(v) {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
