package graph

// CompressedCSR is a delta-varint-encoded copy of one CSR half, built
// for graphs whose plain adjacency arrays outgrow the cache: each
// row's strictly-increasing node ids are stored as gap-minus-one
// varints, so a row that costs 4 bytes per edge raw typically costs
// one or two — the reverse push streams a working set a fraction of
// the raw array's size, trading a handful of shifts per edge for the
// cache misses the raw walk would take.
//
// Rows decode to exactly the ids the raw arrays hold (same values,
// same order), so a push over the compressed view performs float
// operations identical to the raw-view push — bit-identical indexes,
// test-pinned. The encoding is built from the in-memory arrays at
// graph build and never leaves the process: there is no versioning or
// corruption handling to do here, unlike the disk codecs.
type CompressedCSR struct {
	off    []int64 // off[v]..off[v+1] is row v's byte extent in data
	data   []byte
	maxRow int // longest row, in entries — sizes decode scratch
}

// compressCSR encodes the CSR (off, adj) rows. Every row must be
// strictly increasing, which canonical (deduplicated, sorted)
// adjacency rows are.
func compressCSR(off []int64, adj []NodeID) *CompressedCSR {
	n := len(off) - 1
	c := &CompressedCSR{off: make([]int64, n+1)}
	// Worst case one id costs 5 varint bytes; size to the common case
	// and let append grow the rare tail.
	c.data = make([]byte, 0, len(adj)*2)
	for v := 0; v < n; v++ {
		row := adj[off[v]:off[v+1]]
		if len(row) > c.maxRow {
			c.maxRow = len(row)
		}
		prev := int64(-1)
		for _, id := range row {
			gap := uint64(int64(id) - prev - 1)
			for gap >= 0x80 {
				c.data = append(c.data, byte(gap)|0x80)
				gap >>= 7
			}
			c.data = append(c.data, byte(gap))
			prev = int64(id)
		}
		c.off[v+1] = int64(len(c.data))
	}
	return c
}

// DecodeRow appends row v's node ids to dst and returns it. Callers
// reuse dst across rows (dst[:0]) so steady-state decoding allocates
// nothing; cap the scratch at MaxRowLen to never grow it mid-push.
func (c *CompressedCSR) DecodeRow(v NodeID, dst []NodeID) []NodeID {
	data := c.data
	pos, end := c.off[v], c.off[v+1]
	prev := int64(-1)
	for pos < end {
		var gap uint64
		var shift uint
		for {
			b := data[pos]
			pos++
			gap |= uint64(b&0x7f) << shift
			if b < 0x80 {
				break
			}
			shift += 7
		}
		prev += int64(gap) + 1
		dst = append(dst, NodeID(prev))
	}
	return dst
}

// NumRows returns the number of rows the view covers.
func (c *CompressedCSR) NumRows() int { return len(c.off) - 1 }

// MaxRowLen returns the longest row's entry count — the decode
// scratch capacity that makes every DecodeRow allocation-free.
func (c *CompressedCSR) MaxRowLen() int { return c.maxRow }

// Bytes returns the view's resident size (0 for nil).
func (c *CompressedCSR) Bytes() int64 {
	if c == nil {
		return 0
	}
	return int64(len(c.off))*8 + int64(len(c.data))
}

// CompressedIn returns the layout's compressed in-CSR view, or nil
// when the graph was built below the compression threshold (see
// HotPathConfig.CompressBytes).
func (l *Layout) CompressedIn() *CompressedCSR {
	if l == nil {
		return nil
	}
	return l.inZip
}

// CompressedBytes returns the resident size of the compressed in-CSR
// view (0 when absent) — reported in Stats alongside layout_bytes so
// capacity planning sees the full derived-view residency.
func (g *Graph) CompressedBytes() int64 {
	if g.layout == nil {
		return 0
	}
	return g.layout.inZip.Bytes()
}
