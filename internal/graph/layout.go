package graph

import "sort"

// Layout is a cache-conscious node reordering computed once at graph
// build: nodes sorted by total degree (in + out) descending, ties
// broken by ascending original id. High-degree hubs — the nodes a
// local push visits most and whose adjacency rows are longest — are
// packed together at the low end of the id space, so a reverse-push
// frontier that keeps returning to hubs touches a compact prefix of
// the arrays instead of scattering across the full address range.
//
// The layout is a *view*, not a replacement: the Graph's canonical
// CSR, labels, and structural Fingerprint all stay in the original id
// space, so artifact keys and every existing API are unchanged.
// Algorithms opt in by walking the remapped arrays and translating
// results back through ToOld. Only the in-CSR and the out-degree
// table are remapped — exactly the two structures the reverse-push
// inner loop reads — so the extra residency is about half the
// original CSR, and MemoryFootprint reports it.
type Layout struct {
	perm   []NodeID  // perm[old] = new
	inv    []NodeID  // inv[new] = old
	inOff  []int64   // in-CSR over new ids
	inAdj  []NodeID  // predecessors as new ids, sorted per row
	outDeg []int32   // out-degree indexed by new id
	recip  []float64 // 1/outDeg by new id (0 for dangling) — the blocked push kernel's divide-free scale table

	// inZip is the delta-varint copy of the remapped in-CSR, present
	// only when the plain CSR outgrew HotPathConfig.CompressBytes at
	// build time (see CompressedCSR). It is additive: inAdj stays
	// resident so slice-based consumers and equivalence tests keep
	// working; the reverse push streams inZip instead.
	inZip *CompressedCSR
}

// ToNew translates an original node id into the layout's id space.
func (l *Layout) ToNew(old NodeID) NodeID { return l.perm[old] }

// ToOld translates a layout id back to the original node id.
func (l *Layout) ToOld(new NodeID) NodeID { return l.inv[new] }

// In returns the predecessors of the layout-space node v, themselves
// as layout ids, sorted ascending. The slice aliases internal storage
// and must not be modified.
func (l *Layout) In(v NodeID) []NodeID {
	return l.inAdj[l.inOff[v]:l.inOff[v+1]]
}

// OutDegree returns the out-degree of the layout-space node v.
func (l *Layout) OutDegree(v NodeID) int { return int(l.outDeg[v]) }

// OutRecip returns the table of reciprocal out-degrees indexed by
// layout id (0 at dangling nodes, which never appear as
// in-neighbors). The blocked push kernel multiplies by these instead
// of dividing per edge. The slice aliases internal storage and must
// not be modified.
func (l *Layout) OutRecip() []float64 { return l.recip }

// Bytes returns the layout's resident size in bytes, excluding the
// optional compressed in-CSR view (reported separately as
// CompressedBytes so dashboards can see what each view costs).
func (l *Layout) Bytes() int64 {
	if l == nil {
		return 0
	}
	return int64(len(l.inOff))*8 + int64(len(l.perm)+len(l.inv)+len(l.inAdj))*4 +
		int64(len(l.outDeg))*4 + int64(len(l.recip))*8
}

// Layout returns the graph's cache-conscious node reordering, or nil
// when the graph was constructed without one (the zero Graph, or
// WithoutLayout copies).
func (g *Graph) Layout() *Layout { return g.layout }

// LayoutBytes returns the resident size of the layout view in bytes
// (0 when absent) — the delta MemoryFootprint reports over the bare
// CSR.
func (g *Graph) LayoutBytes() int64 { return g.layout.Bytes() }

// WithoutLayout returns a copy of g with the layout view dropped.
// Algorithms that dispatch on Layout() fall back to original-id-space
// traversal on the copy, which is what the csr-layout ablation and the
// mapped-vs-direct equivalence tests measure against. The copy shares
// all CSR storage with g.
func (g *Graph) WithoutLayout() *Graph {
	clone := *g
	clone.layout = nil
	return &clone
}

// buildLayout computes the degree-descending permutation and the
// remapped in-CSR/out-degree view for a freshly built graph, plus —
// when the plain CSR crosses cfg's compression threshold — the
// delta-varint copy of the remapped in-CSR the push loop streams.
func buildLayout(g *Graph, cfg HotPathConfig) *Layout {
	n := g.NumNodes()
	l := &Layout{
		perm:   make([]NodeID, n),
		inv:    make([]NodeID, n),
		inOff:  make([]int64, n+1),
		inAdj:  make([]NodeID, len(g.inAdj)),
		outDeg: make([]int32, n),
		recip:  make([]float64, n),
	}
	for v := range l.inv {
		l.inv[v] = NodeID(v)
	}
	degree := func(v NodeID) int64 {
		return (g.outOff[v+1] - g.outOff[v]) + (g.inOff[v+1] - g.inOff[v])
	}
	sort.SliceStable(l.inv, func(i, j int) bool {
		di, dj := degree(l.inv[i]), degree(l.inv[j])
		if di != dj {
			return di > dj
		}
		return l.inv[i] < l.inv[j]
	})
	for new, old := range l.inv {
		l.perm[old] = NodeID(new)
	}

	// In-CSR in the new id space: row new is row inv[new] with every
	// predecessor translated, re-sorted so rows stay canonical.
	for new := 0; new < n; new++ {
		old := l.inv[new]
		row := g.In(old)
		l.inOff[new+1] = l.inOff[new] + int64(len(row))
		dst := l.inAdj[l.inOff[new]:l.inOff[new+1]]
		for i, u := range row {
			dst[i] = l.perm[u]
		}
		sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
		deg := g.outOff[old+1] - g.outOff[old]
		l.outDeg[new] = int32(deg)
		if deg > 0 {
			l.recip[new] = 1 / float64(deg)
		}
	}
	if cfg.CompressInCSR(g.csrBytes()) {
		l.inZip = compressCSR(l.inOff, l.inAdj)
	}
	return l
}
