package graph

import (
	"math/rand"
	"testing"
)

func randomLayoutGraph(t *testing.T, n, m int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestLayoutPermutationInvariants checks the reordering is a proper
// degree-descending permutation whose remapped in-CSR is exactly the
// original in-CSR seen through the rename.
func TestLayoutPermutationInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := randomLayoutGraph(t, 200, 1400, seed)
		l := g.Layout()
		if l == nil {
			t.Fatal("built graph has no layout")
		}
		n := g.NumNodes()
		seen := make([]bool, n)
		for old := 0; old < n; old++ {
			new := l.ToNew(NodeID(old))
			if l.ToOld(new) != NodeID(old) {
				t.Fatalf("perm/inv disagree at node %d", old)
			}
			if seen[new] {
				t.Fatalf("new id %d assigned twice", new)
			}
			seen[new] = true
		}
		deg := func(v NodeID) int { return g.InDegree(v) + g.OutDegree(v) }
		for new := 1; new < n; new++ {
			a, b := l.ToOld(NodeID(new-1)), l.ToOld(NodeID(new))
			if deg(a) < deg(b) {
				t.Fatalf("layout not degree-descending: new %d (old %d, deg %d) before new %d (old %d, deg %d)",
					new-1, a, deg(a), new, b, deg(b))
			}
			if deg(a) == deg(b) && a > b {
				t.Fatalf("degree tie between old %d and %d not broken by ascending id", a, b)
			}
		}
		for new := 0; new < n; new++ {
			old := l.ToOld(NodeID(new))
			if l.OutDegree(NodeID(new)) != g.OutDegree(old) {
				t.Fatalf("out-degree of new %d (old %d): layout %d, graph %d",
					new, old, l.OutDegree(NodeID(new)), g.OutDegree(old))
			}
			row := l.In(NodeID(new))
			orig := g.In(old)
			if len(row) != len(orig) {
				t.Fatalf("in-row of new %d: %d entries, want %d", new, len(row), len(orig))
			}
			// Same predecessor set through the rename, sorted in new ids.
			back := make(map[NodeID]bool, len(row))
			for i, u := range row {
				if i > 0 && row[i-1] >= u {
					t.Fatalf("in-row of new %d not strictly sorted", new)
				}
				back[l.ToOld(u)] = true
			}
			for _, u := range orig {
				if !back[u] {
					t.Fatalf("predecessor %d of old %d missing from remapped row", u, old)
				}
			}
		}
	}
}

// TestLayoutDoesNotChangeFingerprint pins the artifact-key invariant:
// the structural fingerprint hashes the original CSR only, so adding,
// carrying, or dropping the layout view never churns content-addressed
// artifacts.
func TestLayoutDoesNotChangeFingerprint(t *testing.T) {
	g := randomLayoutGraph(t, 100, 600, 7)
	if Fingerprint(g) != Fingerprint(g.WithoutLayout()) {
		t.Error("dropping the layout changed the fingerprint")
	}
	bare := *g
	bare.layout = nil
	if Fingerprint(g) != Fingerprint(&bare) {
		t.Error("layout view participates in the fingerprint")
	}
}

// TestLayoutFootprintAccounting checks MemoryFootprint reports the
// layout's residency and that WithoutLayout / Transpose views carry
// none.
func TestLayoutFootprintAccounting(t *testing.T) {
	g := randomLayoutGraph(t, 100, 600, 7)
	if g.LayoutBytes() == 0 {
		t.Fatal("built graph reports zero layout bytes")
	}
	bare := g.WithoutLayout()
	if bare.Layout() != nil || bare.LayoutBytes() != 0 {
		t.Error("WithoutLayout copy still carries a layout")
	}
	if got, want := g.MemoryFootprint()-bare.MemoryFootprint(), g.LayoutBytes(); got != want {
		t.Errorf("footprint delta %d, want layout bytes %d", got, want)
	}
	if tr := g.Transpose(); tr.Layout() != nil {
		t.Error("transpose view inherited a layout remapping the wrong CSR")
	}
}

// TestLayoutEmptyGraph keeps the zero/empty cases safe.
func TestLayoutEmptyGraph(t *testing.T) {
	g, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Layout() == nil {
		t.Fatal("empty built graph has no layout")
	}
	if g.LayoutBytes() == 0 {
		t.Fatal("empty layout still has an offset array")
	}
	var zero Graph
	if zero.Layout() != nil || zero.LayoutBytes() != 0 || zero.MemoryFootprint() != 0 {
		t.Error("zero graph reports a layout")
	}
}
