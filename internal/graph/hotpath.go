package graph

import "sync/atomic"

// HotPathConfig tunes the memory-hierarchy heuristics of the serving
// hot paths. Every knob is a *selection* threshold, never a semantic
// one: whichever mode a threshold picks, estimates stay within the
// documented equivalence contract (walk stepping is bit-identical in
// every mode; push modes agree to the rmax invariant), so operators
// and ablations can force either side of any heuristic on any graph
// without changing what queries mean.
//
// The zero value selects every default. A process sets the config once
// at startup (crserver/cyclerank flags) via SetHotPath; ablations
// flip it around individual runs. Reads are lock-free.
type HotPathConfig struct {
	// CohortSortBytes is the graph memory footprint at or above which
	// the batched walk stepper sorts each level's live cohort by
	// current node (one CSR row load per distinct node per level).
	// Below it the CSR is cache-resident and the sort is pure
	// overhead. 0 selects DefaultCohortSortBytes; negative disables
	// the sort on every graph; 1 forces it on every graph.
	CohortSortBytes int64

	// CompressBytes is the plain CSR footprint (offsets + adjacency,
	// before any derived view) at or above which Build adds a
	// delta-varint-compressed copy of the push path's in-CSR, and the
	// reverse push streams compressed rows through pooled decode
	// scratch instead of the raw arrays. 0 selects
	// DefaultCompressBytes; negative disables compression everywhere;
	// 1 forces it on every graph.
	CompressBytes int64

	// PushBlock selects the reverse-push inner loop: 0 (default) runs
	// the cache-blocked, branch-light kernel whenever the adjacency
	// view carries a reciprocal out-degree table; negative forces the
	// exact per-edge division loop. The blocked kernel multiplies by
	// precomputed 1/outdeg instead of dividing, so its estimates agree
	// with the exact loop to the rmax invariant (within 2·rmax), not
	// bit-for-bit; within one mode all storages stay bit-identical.
	PushBlock int
}

// DefaultCohortSortBytes is the cohort-sort threshold when
// HotPathConfig.CohortSortBytes is 0: last-level-cache scale, because
// measured on the walk-batch ablation the sort only pays once the
// adjacency arrays outgrow the LLC.
const DefaultCohortSortBytes = 32 << 20

// DefaultCompressBytes is the in-CSR compression threshold when
// HotPathConfig.CompressBytes is 0. It sits above LLC scale: on a
// cache-resident graph decoding costs strictly more than the raw
// array walk, so compression is reserved for graphs whose row loads
// actually miss.
const DefaultCompressBytes = 64 << 20

// hotPath holds the process-wide config. The pointer is swapped
// whole, never mutated, so readers need no lock.
var hotPath atomic.Pointer[HotPathConfig]

// HotPath returns the current hot-path configuration (the zero value
// until SetHotPath is called).
func HotPath() HotPathConfig {
	if p := hotPath.Load(); p != nil {
		return *p
	}
	return HotPathConfig{}
}

// SetHotPath installs cfg as the process-wide hot-path configuration.
// It affects graphs built and estimators constructed afterwards;
// already-built graphs keep the views they were built with.
func SetHotPath(cfg HotPathConfig) {
	hotPath.Store(&cfg)
}

// SortCohort reports whether the batched walk stepper should sort its
// cohorts on a graph with the given memory footprint.
func (c HotPathConfig) SortCohort(graphBytes int64) bool {
	t := c.CohortSortBytes
	if t == 0 {
		t = DefaultCohortSortBytes
	}
	return t > 0 && graphBytes >= t
}

// CompressInCSR reports whether a graph whose plain CSR occupies
// csrBytes should carry the compressed in-CSR view.
func (c HotPathConfig) CompressInCSR(csrBytes int64) bool {
	t := c.CompressBytes
	if t == 0 {
		t = DefaultCompressBytes
	}
	return t > 0 && csrBytes >= t
}

// PushBlocked reports whether the reverse push should run its blocked
// inner kernel where available.
func (c HotPathConfig) PushBlocked() bool { return c.PushBlock >= 0 }
