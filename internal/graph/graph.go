// Package graph provides the directed-graph substrate used by every
// algorithm in this repository.
//
// Graphs are immutable once built and stored in compressed sparse row
// (CSR) form for both out- and in-adjacency, so that forward algorithms
// (PageRank, CycleRank pruning) and backward algorithms (CheiRank,
// reverse BFS) are equally cheap. Node identifiers are dense int32
// indices in [0, N); an optional label table maps external string names
// (article titles, product names, user handles) to node ids.
//
// Construction goes through a Builder, which tolerates duplicate edges,
// self-loops and out-of-order input, and produces a canonical Graph with
// sorted, de-duplicated adjacency lists.
package graph

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// NodeID identifies a node in a Graph. IDs are dense indices in [0, N).
type NodeID = int32

// Edge is a directed edge between two nodes.
type Edge struct {
	From NodeID
	To   NodeID
}

// Graph is an immutable directed graph in CSR form.
//
// The zero value is an empty graph with no nodes and no edges; it is
// safe to call every accessor on it.
type Graph struct {
	// CSR over out-edges: outAdj[outOff[v]:outOff[v+1]] are the sorted
	// successors of v.
	outOff []int64
	outAdj []NodeID

	// CSR over in-edges: inAdj[inOff[v]:inOff[v+1]] are the sorted
	// predecessors of v.
	inOff []int64
	inAdj []NodeID

	labels *LabelTable // nil when the graph is unlabeled

	// layout is the cache-conscious node reordering view built
	// alongside the CSR (see Layout); nil on zero graphs, Transpose
	// views, and WithoutLayout copies.
	layout *Layout

	// sample is the walk phase's packed (rowStart, degree) stepping
	// table (see SampleTable); nil on zero graphs, Transpose views,
	// and graphs whose rows overflow the packing.
	sample *SampleTable

	numEdges int64
}

// NumNodes returns the number of nodes N.
func (g *Graph) NumNodes() int {
	if len(g.outOff) == 0 {
		return 0
	}
	return len(g.outOff) - 1
}

// NumEdges returns the number of distinct directed edges M.
func (g *Graph) NumEdges() int64 { return g.numEdges }

// Out returns the sorted successor list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Out(v NodeID) []NodeID {
	return g.outAdj[g.outOff[v]:g.outOff[v+1]]
}

// In returns the sorted predecessor list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) In(v NodeID) []NodeID {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v NodeID) int {
	return int(g.outOff[v+1] - g.outOff[v])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// HasEdge reports whether the edge (from, to) exists. It runs in
// O(log outdeg(from)) using binary search over the sorted adjacency.
func (g *Graph) HasEdge(from, to NodeID) bool {
	if from < 0 || to < 0 || int(from) >= g.NumNodes() || int(to) >= g.NumNodes() {
		return false
	}
	adj := g.Out(from)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= to })
	return i < len(adj) && adj[i] == to
}

// ValidNode reports whether v is a node of g.
func (g *Graph) ValidNode(v NodeID) bool {
	return v >= 0 && int(v) < g.NumNodes()
}

// Labels returns the graph's label table, or nil if the graph is
// unlabeled.
func (g *Graph) Labels() *LabelTable { return g.labels }

// Label returns the label of v, or its decimal id when the graph is
// unlabeled.
func (g *Graph) Label(v NodeID) string {
	if g.labels == nil {
		return fmt.Sprintf("%d", v)
	}
	return g.labels.Name(v)
}

// NodeByLabel resolves a label to a node id. On unlabeled graphs the
// decimal node id itself acts as the label, mirroring Label's
// fallback, so "42" resolves to node 42. The boolean is false when the
// label is unknown.
func (g *Graph) NodeByLabel(name string) (NodeID, bool) {
	if g.labels == nil {
		id, err := strconv.ParseInt(name, 10, 32)
		if err != nil || id < 0 || int(id) >= g.NumNodes() {
			return 0, false
		}
		return NodeID(id), true
	}
	return g.labels.ID(name)
}

// Edges calls fn for every edge in canonical order (by source, then by
// target). It stops early if fn returns false.
func (g *Graph) Edges(fn func(from, to NodeID) bool) {
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		for _, w := range g.Out(NodeID(v)) {
			if !fn(NodeID(v), w) {
				return
			}
		}
	}
}

// Transpose returns a view of g with every edge reversed. The view
// shares storage with g: building it is O(1) and mutating neither is
// possible. Labels are shared. The layout view does not transfer —
// it remaps g's in-CSR, which is the view's out-CSR — so algorithms
// running on a transpose fall back to original-id traversal.
func (g *Graph) Transpose() *Graph {
	return &Graph{
		outOff:   g.inOff,
		outAdj:   g.inAdj,
		inOff:    g.outOff,
		inAdj:    g.outAdj,
		labels:   g.labels,
		numEdges: g.numEdges,
	}
}

// Density returns M / (N·(N−1)), the fraction of possible directed
// edges present (self-loops excluded from the denominator). It returns
// 0 for graphs with fewer than two nodes.
func (g *Graph) Density() float64 {
	n := float64(g.NumNodes())
	if n < 2 {
		return 0
	}
	return float64(g.numEdges) / (n * (n - 1))
}

// Reciprocity returns the fraction of edges (u,v) for which the reverse
// edge (v,u) also exists. Self-loops count as reciprocal. It returns 0
// for edgeless graphs.
//
// Reciprocity is the structural quantity CycleRank leverages: a
// high-in-degree hub with near-zero reciprocity is invisible to
// CycleRank but dominant for Personalized PageRank.
func (g *Graph) Reciprocity() float64 {
	if g.numEdges == 0 {
		return 0
	}
	var mutual int64
	g.Edges(func(from, to NodeID) bool {
		if g.HasEdge(to, from) {
			mutual++
		}
		return true
	})
	return float64(mutual) / float64(g.numEdges)
}

// DanglingNodes returns the ids of all nodes with out-degree zero, in
// ascending order. PageRank implementations must treat these specially.
func (g *Graph) DanglingNodes() []NodeID {
	var out []NodeID
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		if g.OutDegree(NodeID(v)) == 0 {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// MaxNodeID is the largest node count supported by a single graph.
const MaxNodeID = math.MaxInt32 - 1

// csrBytes returns the resident size of the plain CSR arrays alone —
// the quantity HotPathConfig.CompressBytes thresholds against,
// deliberately excluding derived views so the compression decision
// never feeds back on itself.
func (g *Graph) csrBytes() int64 {
	return int64(len(g.outOff)+len(g.inOff))*8 + int64(len(g.outAdj)+len(g.inAdj))*4
}

// MemoryFootprint returns an estimate, in bytes, of the graph's
// in-memory size: the CSR arrays plus every derived hot-path view
// present — the cache-conscious layout, the walk sample table, and
// the compressed in-CSR (labels excluded). Capacity planning must see
// the views' residency — the layout alone is about half the CSR
// again — which is why they are included here rather than only in
// the per-view byte accessors.
func (g *Graph) MemoryFootprint() int64 {
	return g.csrBytes() + g.layout.Bytes() + g.sample.Bytes() + g.CompressedBytes()
}
