package graph

import (
	"reflect"
	"strings"
	"testing"
)

func TestBFSFromChain(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, node 4 isolated.
	g := mustBuild(t, 5, []Edge{{0, 1}, {1, 2}, {2, 3}})
	got := BFSFrom(g, 0, -1)
	want := []int32{0, 1, 2, 3, Unreachable}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BFSFrom = %v, want %v", got, want)
	}
}

func TestBFSFromBounded(t *testing.T) {
	g := mustBuild(t, 5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	got := BFSFrom(g, 0, 2)
	want := []int32{0, 1, 2, Unreachable, Unreachable}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BFSFrom depth 2 = %v, want %v", got, want)
	}
}

func TestBFSFromZeroDepth(t *testing.T) {
	g := triangle(t)
	got := BFSFrom(g, 0, 0)
	want := []int32{0, Unreachable, Unreachable}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BFSFrom depth 0 = %v, want %v", got, want)
	}
}

func TestBFSTo(t *testing.T) {
	// 0 -> 1 -> 2; distance TO 2: node 0 is 2 hops, node 1 is 1 hop.
	g := mustBuild(t, 3, []Edge{{0, 1}, {1, 2}})
	got := BFSTo(g, 2, -1)
	want := []int32{2, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BFSTo = %v, want %v", got, want)
	}
}

func TestBFSShortestPathPicked(t *testing.T) {
	// Two paths 0->3: direct edge (len 1) and 0->1->2->3 (len 3).
	g := mustBuild(t, 4, []Edge{{0, 3}, {0, 1}, {1, 2}, {2, 3}})
	d := BFSFrom(g, 0, -1)
	if d[3] != 1 {
		t.Errorf("dist to 3 = %d, want 1", d[3])
	}
}

func TestBFSInvalidSource(t *testing.T) {
	g := triangle(t)
	got := BFSFrom(g, 99, -1)
	for v, d := range got {
		if d != Unreachable {
			t.Errorf("node %d reachable from invalid source (d=%d)", v, d)
		}
	}
}

func TestBFSCycle(t *testing.T) {
	g := triangle(t)
	got := BFSFrom(g, 1, -1)
	want := []int32{2, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BFSFrom cycle = %v, want %v", got, want)
	}
}

func TestReachableFrom(t *testing.T) {
	g := mustBuild(t, 6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	if got := ReachableFrom(g, 0, -1); got != 3 {
		t.Errorf("ReachableFrom(0) = %d, want 3", got)
	}
	if got := ReachableFrom(g, 0, 1); got != 2 {
		t.Errorf("ReachableFrom(0, depth 1) = %d, want 2", got)
	}
	if got := ReachableFrom(g, 5, -1); got != 1 {
		t.Errorf("ReachableFrom(isolated) = %d, want 1", got)
	}
}

func TestDFSPostorderChain(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1}, {1, 2}})
	var order []NodeID
	DFSPostorder(g, []NodeID{0}, func(v NodeID) { order = append(order, v) })
	want := []NodeID{2, 1, 0}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("postorder = %v, want %v", order, want)
	}
}

func TestDFSPostorderVisitsEachOnce(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}})
	seen := map[NodeID]int{}
	DFSPostorder(g, []NodeID{0, 1, 2, 3}, func(v NodeID) { seen[v]++ })
	for v, c := range seen {
		if c != 1 {
			t.Errorf("node %d visited %d times", v, c)
		}
	}
	if len(seen) != 4 {
		t.Errorf("visited %d nodes, want 4", len(seen))
	}
}

func TestDFSPostorderSkipsInvalidRoots(t *testing.T) {
	g := triangle(t)
	count := 0
	DFSPostorder(g, []NodeID{-5, 99}, func(NodeID) { count++ })
	if count != 0 {
		t.Errorf("visited %d nodes from invalid roots", count)
	}
}

func TestSCCTriangle(t *testing.T) {
	g := triangle(t)
	res := StronglyConnectedComponents(g)
	if res.Count != 1 {
		t.Fatalf("SCC count = %d, want 1", res.Count)
	}
	if !res.SameComponent(0, 2) {
		t.Error("triangle nodes not in same component")
	}
	id, size := res.Largest()
	if id != 0 || size != 3 {
		t.Errorf("Largest = (%d,%d), want (0,3)", id, size)
	}
}

func TestSCCChain(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1}, {1, 2}})
	res := StronglyConnectedComponents(g)
	if res.Count != 3 {
		t.Fatalf("SCC count = %d, want 3", res.Count)
	}
	if res.SameComponent(0, 1) {
		t.Error("chain nodes wrongly in same component")
	}
}

func TestSCCTwoCyclesBridge(t *testing.T) {
	// Cycle {0,1}, cycle {2,3}, bridge 1->2.
	g := mustBuild(t, 4, []Edge{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}})
	res := StronglyConnectedComponents(g)
	if res.Count != 2 {
		t.Fatalf("SCC count = %d, want 2", res.Count)
	}
	if !res.SameComponent(0, 1) || !res.SameComponent(2, 3) {
		t.Error("cycle members split across components")
	}
	if res.SameComponent(0, 2) {
		t.Error("bridged cycles merged")
	}
}

func TestSCCSelfLoop(t *testing.T) {
	g := mustBuild(t, 2, []Edge{{0, 0}})
	res := StronglyConnectedComponents(g)
	if res.Count != 2 {
		t.Errorf("SCC count = %d, want 2", res.Count)
	}
}

func TestSCCEmptyAndSingle(t *testing.T) {
	var empty Graph
	if got := StronglyConnectedComponents(&empty); got.Count != 0 {
		t.Errorf("empty graph SCC count = %d", got.Count)
	}
	single := mustBuild(t, 1, nil)
	if got := StronglyConnectedComponents(single); got.Count != 1 {
		t.Errorf("single node SCC count = %d", got.Count)
	}
}

func TestSCCSameComponentBounds(t *testing.T) {
	g := triangle(t)
	res := StronglyConnectedComponents(g)
	if res.SameComponent(-1, 0) || res.SameComponent(0, 99) {
		t.Error("SameComponent accepted out-of-range node")
	}
}

func TestSCCDeepChainNoOverflow(t *testing.T) {
	// A 50k-node path would blow a recursive Tarjan; ours is iterative.
	const n = 50000
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := StronglyConnectedComponents(g)
	if res.Count != n {
		t.Errorf("SCC count = %d, want %d", res.Count, n)
	}
}

func TestSCCSizesSumToN(t *testing.T) {
	g := randomGraph(42, 60, 0.08)
	res := StronglyConnectedComponents(g)
	var sum int32
	for _, s := range res.Sizes {
		sum += s
	}
	if int(sum) != g.NumNodes() {
		t.Errorf("component sizes sum to %d, want %d", sum, g.NumNodes())
	}
}

func TestStats(t *testing.T) {
	g := mustBuild(t, 5, []Edge{{0, 1}, {1, 0}, {1, 2}, {3, 3}})
	s := ComputeStats(g)
	if s.Nodes != 5 || s.Edges != 4 {
		t.Errorf("stats N=%d M=%d", s.Nodes, s.Edges)
	}
	if s.SelfLoops != 1 {
		t.Errorf("SelfLoops = %d, want 1", s.SelfLoops)
	}
	if s.Dangling != 2 { // nodes 2 and 4
		t.Errorf("Dangling = %d, want 2", s.Dangling)
	}
	if s.Isolated != 1 { // node 4
		t.Errorf("Isolated = %d, want 1", s.Isolated)
	}
	if s.MaxOutDegree != 2 {
		t.Errorf("MaxOutDegree = %d, want 2", s.MaxOutDegree)
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1}, {0, 2}})
	in, err := DegreeHistogram(g, "in")
	if err != nil {
		t.Fatal(err)
	}
	if in[0] != 1 || in[1] != 2 {
		t.Errorf("in histogram = %v", in)
	}
	out, err := DegreeHistogram(g, "out")
	if err != nil {
		t.Fatal(err)
	}
	if out[2] != 1 || out[0] != 2 {
		t.Errorf("out histogram = %v", out)
	}
	if _, err := DegreeHistogram(g, "sideways"); err == nil {
		t.Error("DegreeHistogram accepted bad kind")
	}
}

func TestTopByInDegree(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 3}, {1, 3}, {2, 3}, {0, 1}})
	top := TopByInDegree(g, 2)
	if len(top) != 2 || top[0] != 3 {
		t.Errorf("TopByInDegree = %v, want [3 ...]", top)
	}
	all := TopByInDegree(g, -1)
	if len(all) != 4 {
		t.Errorf("TopByInDegree(-1) returned %d nodes", len(all))
	}
}

func TestFormatAdjacency(t *testing.T) {
	g := triangle(t)
	s := FormatAdjacency(g, -1)
	if s == "" {
		t.Fatal("empty adjacency dump")
	}
	short := FormatAdjacency(g, 1)
	if !strings.Contains(short, "2 more nodes") {
		t.Errorf("elided dump missing elision marker: %q", short)
	}
}
