package graph

import "fmt"

// Weights attaches a positive weight to every edge of a Graph, stored
// parallel to the out-CSR so weight lookup during traversal is an
// array index, not a map probe. Weighted graphs model interaction
// counts on Twitter networks (two users who replied to each other
// fifty times are closer than a one-off mention) and co-purchase
// frequencies on Amazon.
type Weights struct {
	g *Graph
	w []float64 // parallel to g.outAdj
}

// NewWeights returns an all-ones weight overlay for g.
func NewWeights(g *Graph) *Weights {
	w := make([]float64, g.NumEdges())
	for i := range w {
		w[i] = 1
	}
	return &Weights{g: g, w: w}
}

// edgeSlot locates the out-CSR index of edge (from, to).
func (ws *Weights) edgeSlot(from, to NodeID) (int64, error) {
	if !ws.g.ValidNode(from) || !ws.g.ValidNode(to) {
		return 0, fmt.Errorf("graph: weights: edge (%d,%d) out of range", from, to)
	}
	adj := ws.g.Out(from)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(adj) || adj[lo] != to {
		return 0, fmt.Errorf("graph: weights: edge (%d,%d) does not exist", from, to)
	}
	return ws.g.outOff[from] + int64(lo), nil
}

// Set assigns a weight to edge (from, to). Weights must be positive.
func (ws *Weights) Set(from, to NodeID, weight float64) error {
	if weight <= 0 {
		return fmt.Errorf("graph: weights: non-positive weight %v for edge (%d,%d)", weight, from, to)
	}
	slot, err := ws.edgeSlot(from, to)
	if err != nil {
		return err
	}
	ws.w[slot] = weight
	return nil
}

// Add increases the weight of edge (from, to) by delta (used when
// accumulating repeated interactions).
func (ws *Weights) Add(from, to NodeID, delta float64) error {
	if delta <= 0 {
		return fmt.Errorf("graph: weights: non-positive delta %v", delta)
	}
	slot, err := ws.edgeSlot(from, to)
	if err != nil {
		return err
	}
	ws.w[slot] += delta
	return nil
}

// Get returns the weight of edge (from, to).
func (ws *Weights) Get(from, to NodeID) (float64, error) {
	slot, err := ws.edgeSlot(from, to)
	if err != nil {
		return 0, err
	}
	return ws.w[slot], nil
}

// OutWeights returns the weight slice parallel to g.Out(v). The slice
// aliases internal storage and must not be modified.
func (ws *Weights) OutWeights(v NodeID) []float64 {
	return ws.w[ws.g.outOff[v]:ws.g.outOff[v+1]]
}

// OutSum returns the total outgoing weight of v.
func (ws *Weights) OutSum(v NodeID) float64 {
	var sum float64
	for _, x := range ws.OutWeights(v) {
		sum += x
	}
	return sum
}

// Graph returns the graph the weights belong to.
func (ws *Weights) Graph() *Graph { return ws.g }

// PickCDF is the reference weighted out-edge sampler: inverse-CDF over
// v's out-weights. r must lie in [0,1); the returned neighbor is the
// first whose cumulative weight share exceeds r·OutSum(v). It costs
// O(outdeg) per draw, which is why the walk path uses an AliasTable —
// this form exists as the ground truth the alias construction is
// property-tested against, and as the O(1)-memory fallback when no
// table was built. ok is false on dangling nodes.
func (ws *Weights) PickCDF(v NodeID, r float64) (NodeID, bool) {
	row := ws.g.Out(v)
	if len(row) == 0 {
		return 0, false
	}
	target := r * ws.OutSum(v)
	var cum float64
	for i, w := range ws.OutWeights(v) {
		cum += w
		if target < cum {
			return row[i], true
		}
	}
	// Float accumulation can leave target ≥ cum by an ulp; the draw
	// belongs to the last slot.
	return row[len(row)-1], true
}

// AliasTable is the O(1) weighted out-edge sampler: Walker/Vose alias
// tables built per node over the out-CSR, stored parallel to the
// adjacency array so one draw costs two array reads and a compare —
// the weighted counterpart of SampleTable's packed uniform rows, and
// the structure a weighted walk phase steps through so advancing a
// walk stays O(1) regardless of out-degree or weight skew.
//
// For every node the table encodes the exact discrete distribution
// w_i/Σw: slot j is accepted with probability prob[j] and otherwise
// redirects to alias[j], and Σ_j (accept mass + redirect mass) per
// neighbor reproduces w_i/Σw up to float rounding
// (TestAliasTableExactMasses pins this; TestAliasMatchesCDF holds
// draws to the inverse-CDF reference distributionally).
type AliasTable struct {
	g     *Graph
	prob  []float64 // parallel to outAdj: acceptance probability of the slot
	alias []int32   // parallel to outAdj: row-local redirect slot
}

// BuildAliasTable constructs the alias tables for every node of ws's
// graph in O(M) total via Vose's method (each row's scaled weights are
// split into a "small" and "large" worklist and paired off).
func (ws *Weights) BuildAliasTable() *AliasTable {
	g := ws.g
	m := int(g.NumEdges())
	t := &AliasTable{
		g:     g,
		prob:  make([]float64, m),
		alias: make([]int32, m),
	}
	// Row-local scratch reused across nodes; sized to the largest row.
	var scaled []float64
	var small, large []int32
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		base := g.outOff[v]
		w := ws.OutWeights(NodeID(v))
		deg := len(w)
		if deg == 0 {
			continue
		}
		var sum float64
		for _, x := range w {
			sum += x
		}
		scaled = append(scaled[:0], w...)
		small, large = small[:0], large[:0]
		scale := float64(deg) / sum
		for i := range scaled {
			scaled[i] *= scale
			if scaled[i] < 1 {
				small = append(small, int32(i))
			} else {
				large = append(large, int32(i))
			}
		}
		for len(small) > 0 && len(large) > 0 {
			s := small[len(small)-1]
			small = small[:len(small)-1]
			l := large[len(large)-1]
			t.prob[base+int64(s)] = scaled[s]
			t.alias[base+int64(s)] = l
			scaled[l] -= 1 - scaled[s]
			if scaled[l] < 1 {
				large = large[:len(large)-1]
				small = append(small, l)
			}
		}
		// Leftovers sit at probability 1 (self-aliased): float rounding
		// can strand entries in either list.
		for _, i := range large {
			t.prob[base+int64(i)] = 1
			t.alias[base+int64(i)] = i
		}
		for _, i := range small {
			t.prob[base+int64(i)] = 1
			t.alias[base+int64(i)] = i
		}
	}
	return t
}

// Pick draws one weighted out-neighbor of v: slot is a uniform draw
// in [0, outdeg(v)) and coin a uniform draw in [0,1) — both supplied
// by the caller's RNG so the draw economy (exactly one index and one
// float per step) matches the uniform walk path. ok is false on
// dangling nodes.
func (t *AliasTable) Pick(v NodeID, slot int, coin float64) (NodeID, bool) {
	base := t.g.outOff[v]
	row := t.g.Out(v)
	if len(row) == 0 {
		return 0, false
	}
	j := base + int64(slot)
	if coin < t.prob[j] {
		return row[slot], true
	}
	return row[t.alias[j]], true
}

// Mass returns the exact per-neighbor probability row the alias table
// encodes for v (indexed like Graph.Out(v)): accept mass plus every
// redirect landing on the slot, each divided by the row's slot count.
// Tests compare this against w_i/Σw.
func (t *AliasTable) Mass(v NodeID) []float64 {
	row := t.g.Out(v)
	deg := len(row)
	out := make([]float64, deg)
	if deg == 0 {
		return out
	}
	base := t.g.outOff[v]
	inv := 1 / float64(deg)
	for j := 0; j < deg; j++ {
		p := t.prob[base+int64(j)]
		out[j] += p * inv
		out[t.alias[base+int64(j)]] += (1 - p) * inv
	}
	return out
}

// Bytes returns the alias tables' resident size.
func (t *AliasTable) Bytes() int64 {
	return int64(len(t.prob))*8 + int64(len(t.alias))*4
}
