package graph

import "fmt"

// Weights attaches a positive weight to every edge of a Graph, stored
// parallel to the out-CSR so weight lookup during traversal is an
// array index, not a map probe. Weighted graphs model interaction
// counts on Twitter networks (two users who replied to each other
// fifty times are closer than a one-off mention) and co-purchase
// frequencies on Amazon.
type Weights struct {
	g *Graph
	w []float64 // parallel to g.outAdj
}

// NewWeights returns an all-ones weight overlay for g.
func NewWeights(g *Graph) *Weights {
	w := make([]float64, g.NumEdges())
	for i := range w {
		w[i] = 1
	}
	return &Weights{g: g, w: w}
}

// edgeSlot locates the out-CSR index of edge (from, to).
func (ws *Weights) edgeSlot(from, to NodeID) (int64, error) {
	if !ws.g.ValidNode(from) || !ws.g.ValidNode(to) {
		return 0, fmt.Errorf("graph: weights: edge (%d,%d) out of range", from, to)
	}
	adj := ws.g.Out(from)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(adj) || adj[lo] != to {
		return 0, fmt.Errorf("graph: weights: edge (%d,%d) does not exist", from, to)
	}
	return ws.g.outOff[from] + int64(lo), nil
}

// Set assigns a weight to edge (from, to). Weights must be positive.
func (ws *Weights) Set(from, to NodeID, weight float64) error {
	if weight <= 0 {
		return fmt.Errorf("graph: weights: non-positive weight %v for edge (%d,%d)", weight, from, to)
	}
	slot, err := ws.edgeSlot(from, to)
	if err != nil {
		return err
	}
	ws.w[slot] = weight
	return nil
}

// Add increases the weight of edge (from, to) by delta (used when
// accumulating repeated interactions).
func (ws *Weights) Add(from, to NodeID, delta float64) error {
	if delta <= 0 {
		return fmt.Errorf("graph: weights: non-positive delta %v", delta)
	}
	slot, err := ws.edgeSlot(from, to)
	if err != nil {
		return err
	}
	ws.w[slot] += delta
	return nil
}

// Get returns the weight of edge (from, to).
func (ws *Weights) Get(from, to NodeID) (float64, error) {
	slot, err := ws.edgeSlot(from, to)
	if err != nil {
		return 0, err
	}
	return ws.w[slot], nil
}

// OutWeights returns the weight slice parallel to g.Out(v). The slice
// aliases internal storage and must not be modified.
func (ws *Weights) OutWeights(v NodeID) []float64 {
	return ws.w[ws.g.outOff[v]:ws.g.outOff[v+1]]
}

// OutSum returns the total outgoing weight of v.
func (ws *Weights) OutSum(v NodeID) float64 {
	var sum float64
	for _, x := range ws.OutWeights(v) {
		sum += x
	}
	return sum
}

// Graph returns the graph the weights belong to.
func (ws *Weights) Graph() *Graph { return ws.g }
