package graph

import "testing"

func fpGraph(t *testing.T, n int, edges [][2]int32) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFingerprintStable(t *testing.T) {
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 0}, {0, 2}}
	a := fpGraph(t, 3, edges)
	b := fpGraph(t, 3, edges)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical graphs fingerprint differently")
	}
	// Edge insertion order cannot matter: the builder canonicalizes.
	c := fpGraph(t, 3, [][2]int32{{0, 2}, {2, 0}, {1, 2}, {0, 1}})
	if Fingerprint(a) != Fingerprint(c) {
		t.Fatal("edge order changed the fingerprint")
	}
}

func TestFingerprintDistinguishesStructure(t *testing.T) {
	base := fpGraph(t, 3, [][2]int32{{0, 1}, {1, 2}})
	for name, other := range map[string]*Graph{
		"extra edge":    fpGraph(t, 3, [][2]int32{{0, 1}, {1, 2}, {2, 0}}),
		"extra node":    fpGraph(t, 4, [][2]int32{{0, 1}, {1, 2}}),
		"rewired":       fpGraph(t, 3, [][2]int32{{0, 1}, {2, 1}}),
		"empty":         fpGraph(t, 3, nil),
		"reversed edge": fpGraph(t, 3, [][2]int32{{1, 0}, {1, 2}}),
	} {
		if Fingerprint(base) == Fingerprint(other) {
			t.Errorf("%s collides with the base graph", name)
		}
	}
}

func TestFingerprintIgnoresLabels(t *testing.T) {
	lb := NewLabeledBuilder()
	lb.AddLabeledEdge("x", "y")
	lb.AddLabeledEdge("y", "z")
	labeled, err := lb.Build()
	if err != nil {
		t.Fatal(err)
	}
	plain := fpGraph(t, 3, [][2]int32{{0, 1}, {1, 2}})
	// Same structure, different (or no) labels: derived structural
	// artifacts are shareable, so the fingerprints must agree.
	if Fingerprint(labeled) != Fingerprint(plain) {
		t.Fatal("labels leaked into the structural fingerprint")
	}
}

func TestFingerprintFormat(t *testing.T) {
	fp := Fingerprint(fpGraph(t, 2, [][2]int32{{0, 1}}))
	if len(fp) != 32 {
		t.Fatalf("fingerprint %q is not 32 hex chars", fp)
	}
	for _, r := range fp {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			t.Fatalf("fingerprint %q contains non-hex %q", fp, r)
		}
	}
}
