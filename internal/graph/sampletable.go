package graph

// SampleTable is the walk phase's O(1) per-step stepping structure:
// one packed machine word per node holding (out-row start, out-degree),
// built once at graph build next to the CSR. Advancing a walk parked
// on v costs a single 8-byte load (the packed word; degree test and
// row start come out of it for free) plus the adjacency entry itself —
// it never re-touches the two CSR offset entries or materializes a row
// slice header the way Graph.Out does. On a level-synchronous cohort
// where many walks sit on the same node, that packed word stays in L1
// while each walk draws its own edge.
//
// The table is a pure acceleration view: it indexes the graph's own
// outAdj array, so the node a table step picks for a given RNG draw is
// exactly the node the slice path picks — walk estimates are
// bit-identical with the table on or off (test-pinned by
// TestBatchedSteppingBitIdentical). The structural Fingerprint never
// sees it.
type SampleTable struct {
	rows []uint64 // rows[v] = rowStart<<sampleDegBits | outDegree
	adj  []NodeID // aliases the graph's outAdj
}

// sampleDegBits splits the packed word: the low bits carry the
// out-degree, the high bits the row start. 24 degree bits cap a row at
// ~16.7M out-edges and leave 40 bits (~1.1T edges) of row start —
// graphs beyond either bound simply build no table and the walk path
// falls back to the CSR slices.
const (
	sampleDegBits  = 24
	sampleDegMask  = 1<<sampleDegBits - 1
	maxSampleStart = 1<<(64-sampleDegBits) - 1
)

// buildSampleTable packs g's out-CSR shape into a sample table, or
// returns nil when the graph is empty or a row overflows the packing.
func buildSampleTable(g *Graph) *SampleTable {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	rows := make([]uint64, n)
	for v := 0; v < n; v++ {
		start := g.outOff[v]
		deg := g.outOff[v+1] - start
		if deg > sampleDegMask || start > maxSampleStart {
			return nil
		}
		rows[v] = uint64(start)<<sampleDegBits | uint64(deg)
	}
	return &SampleTable{rows: rows, adj: g.outAdj}
}

// Degree returns the out-degree of v (one masked load).
func (t *SampleTable) Degree(v NodeID) int {
	return int(t.rows[v] & sampleDegMask)
}

// Pick returns the i-th out-neighbor of v, 0 ≤ i < Degree(v) — the
// same entry Graph.Out(v)[i] holds, read through the packed row start.
func (t *SampleTable) Pick(v NodeID, i int) NodeID {
	return t.adj[int64(t.rows[v]>>sampleDegBits)+int64(i)]
}

// Bytes returns the table's resident size (0 for a nil table).
func (t *SampleTable) Bytes() int64 {
	if t == nil {
		return 0
	}
	return int64(len(t.rows)) * 8
}

// SampleTable returns the graph's packed walk-stepping table, or nil
// when the graph was built without one (zero graphs, Transpose views,
// or rows overflowing the packing).
func (g *Graph) SampleTable() *SampleTable { return g.sample }

// SampleTableBytes returns the resident size of the sample table —
// the walk-phase share MemoryFootprint reports on top of the CSR.
func (g *Graph) SampleTableBytes() int64 { return g.sample.Bytes() }
