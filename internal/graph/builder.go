package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph.
//
// A Builder accepts edges in any order, tolerates duplicates (they are
// collapsed) and self-loops (they are kept; algorithms decide how to
// treat them). Nodes may be added explicitly with AddNode — useful for
// isolated nodes — or implicitly by the edges that mention them.
//
// Builders are either *indexed* (NewBuilder, nodes are pre-sized dense
// ids) or *labeled* (NewLabeledBuilder, nodes are interned by name).
// The zero value is a labeled builder with no nodes.
type Builder struct {
	n       int
	edges   []Edge
	names   []string
	byName  map[string]NodeID
	labeled bool
	err     error
}

// NewBuilder returns a builder for an unlabeled graph with n nodes
// identified by the dense ids 0..n-1.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n}
	if n < 0 {
		b.err = fmt.Errorf("graph: negative node count %d", n)
		b.n = 0
	}
	if n > MaxNodeID {
		b.err = fmt.Errorf("graph: node count %d exceeds limit %d", n, MaxNodeID)
		b.n = 0
	}
	return b
}

// NewLabeledBuilder returns a builder whose nodes are interned by
// string label on first use.
func NewLabeledBuilder() *Builder {
	return &Builder{labeled: true, byName: make(map[string]NodeID)}
}

// AddNode ensures a node with the given label exists and returns its
// id. It is only valid on labeled builders.
func (b *Builder) AddNode(label string) NodeID {
	if !b.labeled {
		b.fail(fmt.Errorf("graph: AddNode on indexed builder"))
		return -1
	}
	if b.byName == nil {
		b.byName = make(map[string]NodeID)
	}
	if label == "" {
		b.fail(fmt.Errorf("graph: empty node label"))
		return -1
	}
	if id, ok := b.byName[label]; ok {
		return id
	}
	if b.n >= MaxNodeID {
		b.fail(fmt.Errorf("graph: node count exceeds limit %d", MaxNodeID))
		return -1
	}
	id := NodeID(b.n)
	b.byName[label] = id
	b.names = append(b.names, label)
	b.n++
	return id
}

// AddEdge records the directed edge (from, to) between dense ids. It is
// only valid on indexed builders; ids must lie in [0, n).
func (b *Builder) AddEdge(from, to NodeID) {
	if b.labeled {
		b.fail(fmt.Errorf("graph: AddEdge on labeled builder (use AddLabeledEdge)"))
		return
	}
	if from < 0 || int(from) >= b.n || to < 0 || int(to) >= b.n {
		b.fail(fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", from, to, b.n))
		return
	}
	b.edges = append(b.edges, Edge{From: from, To: to})
}

// AddLabeledEdge records the directed edge (from, to) between labeled
// nodes, interning labels as needed.
func (b *Builder) AddLabeledEdge(from, to string) {
	u := b.AddNode(from)
	v := b.AddNode(to)
	if u < 0 || v < 0 {
		return
	}
	b.edges = append(b.edges, Edge{From: u, To: v})
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return b.n }

// NumEdges returns the number of edge records added so far (before
// de-duplication).
func (b *Builder) NumEdges() int { return len(b.edges) }

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Err returns the first error recorded by the builder, if any.
func (b *Builder) Err() error { return b.err }

// Build produces the immutable Graph. It returns the first error
// recorded during construction, if any. The builder remains usable:
// further edges may be added and Build called again.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := b.n

	// Sort a copy of the edges by (from, to) and collapse duplicates.
	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	dedup := edges[:0]
	for i, e := range edges {
		if i > 0 && e == edges[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	edges = dedup
	m := int64(len(edges))

	g := &Graph{
		outOff:   make([]int64, n+1),
		outAdj:   make([]NodeID, m),
		inOff:    make([]int64, n+1),
		inAdj:    make([]NodeID, m),
		numEdges: m,
	}

	// Out-CSR directly from the sorted edge list.
	for _, e := range edges {
		g.outOff[e.From+1]++
	}
	for v := 0; v < n; v++ {
		g.outOff[v+1] += g.outOff[v]
	}
	for i, e := range edges {
		g.outAdj[i] = e.To
	}

	// In-CSR by counting sort on target; sources are appended in
	// ascending order because the edge list is sorted by From, so each
	// in-adjacency list comes out sorted.
	for _, e := range edges {
		g.inOff[e.To+1]++
	}
	for v := 0; v < n; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	next := make([]int64, n)
	for v := 0; v < n; v++ {
		next[v] = g.inOff[v]
	}
	for _, e := range edges {
		g.inAdj[next[e.To]] = e.From
		next[e.To]++
	}

	if b.labeled {
		lt, err := NewLabelTable(b.names)
		if err != nil {
			return nil, err
		}
		g.labels = lt
	}
	g.layout = buildLayout(g, HotPath())
	g.sample = buildSampleTable(g)
	return g, nil
}

// FromEdges is a convenience constructor building an unlabeled graph
// with n nodes from an edge slice.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.From, e.To)
	}
	return b.Build()
}

// WithLabels attaches a label table to a copy of g. The names slice
// must have exactly NumNodes entries.
func (g *Graph) WithLabels(names []string) (*Graph, error) {
	if len(names) != g.NumNodes() {
		return nil, fmt.Errorf("graph: %d labels for %d nodes", len(names), g.NumNodes())
	}
	lt, err := NewLabelTable(names)
	if err != nil {
		return nil, err
	}
	clone := *g
	clone.labels = lt
	return &clone, nil
}
