package graph

import "fmt"

// InducedSubgraph returns the subgraph induced by the given nodes
// (deduplicated), together with the mapping from new ids to original
// ids (origOf[newID] = oldID). Labels carry over when the source graph
// is labeled.
func InducedSubgraph(g *Graph, nodes []NodeID) (*Graph, []NodeID, error) {
	newOf := make(map[NodeID]NodeID, len(nodes))
	var origOf []NodeID
	for _, v := range nodes {
		if !g.ValidNode(v) {
			return nil, nil, fmt.Errorf("graph: induced subgraph: node %d out of range", v)
		}
		if _, dup := newOf[v]; dup {
			continue
		}
		newOf[v] = NodeID(len(origOf))
		origOf = append(origOf, v)
	}

	b := NewBuilder(len(origOf))
	for _, old := range origOf {
		u := newOf[old]
		for _, w := range g.Out(old) {
			if nw, ok := newOf[w]; ok {
				b.AddEdge(u, nw)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	// Carry node identity into the subgraph: original labels when the
	// source is labeled, original decimal ids otherwise (so "node 5"
	// of the parent is still addressable as "5" in the subgraph).
	names := make([]string, len(origOf))
	for i, old := range origOf {
		names[i] = g.Label(old)
	}
	sub, err = sub.WithLabels(names)
	if err != nil {
		return nil, nil, err
	}
	return sub, origOf, nil
}

// EgoNet returns the subgraph induced by every node within radius hops
// of center, following edges in both directions (the neighborhood a UI
// visualizes around a query node). The center is always included; the
// returned mapping follows InducedSubgraph conventions with the center
// first.
func EgoNet(g *Graph, center NodeID, radius int) (*Graph, []NodeID, error) {
	if !g.ValidNode(center) {
		return nil, nil, fmt.Errorf("graph: ego net: node %d out of range", center)
	}
	if radius < 0 {
		return nil, nil, fmt.Errorf("graph: ego net: negative radius %d", radius)
	}
	// Bidirectional bounded BFS.
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[center] = 0
	queue := []NodeID{center}
	members := []NodeID{center}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if int(dist[v]) >= radius {
			continue
		}
		for _, adj := range [][]NodeID{g.Out(v), g.In(v)} {
			for _, w := range adj {
				if dist[w] == Unreachable {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
					members = append(members, w)
				}
			}
		}
	}
	// InducedSubgraph numbers nodes by first occurrence, so the center
	// is node 0 of the result.
	return InducedSubgraph(g, members)
}
