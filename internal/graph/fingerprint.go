package graph

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns a stable hex digest of the graph's structure:
// node count, edge count, and the full out-CSR (which determines the
// in-CSR). Labels are deliberately excluded, because derived
// structural artifacts (reverse-push indexes) depend only on topology
// and may be shared across identically-shaped datasets.
//
// The digest content-addresses on-disk artifacts derived from a graph
// — e.g. the datastore's indexes/<fingerprint>/ directory — so a
// re-uploaded dataset with different structure naturally misses every
// artifact of its predecessor. Because those artifacts are *shared by
// digest* and datasets are user-uploadable, the hash is SHA-256
// (truncated to 128 bits), not a fast non-cryptographic hash: a
// constructible collision would silently serve one graph's indexes
// for another. The hash cost is dominated by the O(N+M) CSR walk
// either way.
//
// Callers that need the fingerprint repeatedly should memoize per
// *Graph (graphs are immutable).
func Fingerprint(g *Graph) string {
	h := sha256.New()
	// Buffer the per-entry writes: hash.Hash.Write never errors, so
	// the bufio error paths are unreachable.
	w := bufio.NewWriterSize(h, 1<<16)
	var b [8]byte
	put64 := func(x uint64) {
		binary.LittleEndian.PutUint64(b[:], x)
		w.Write(b[:])
	}
	put64(uint64(g.NumNodes()))
	put64(uint64(g.numEdges))
	for _, off := range g.outOff {
		put64(uint64(off))
	}
	for _, v := range g.outAdj {
		binary.LittleEndian.PutUint32(b[:4], uint32(v))
		w.Write(b[:4])
	}
	w.Flush()
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}
