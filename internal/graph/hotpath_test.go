package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// withHotPath installs cfg for the duration of the test and restores
// the previous process-wide config afterwards, so tests that force
// thresholds cannot leak into other tests in the package run.
func withHotPath(t *testing.T, cfg HotPathConfig) {
	t.Helper()
	prev := HotPath()
	SetHotPath(cfg)
	t.Cleanup(func() { SetHotPath(prev) })
}

func TestSampleTableMatchesOut(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 50, 0.1)
		tab := g.SampleTable()
		if tab == nil {
			t.Fatal("no sample table on non-empty graph")
		}
		for v := 0; v < g.NumNodes(); v++ {
			id := NodeID(v)
			row := g.Out(id)
			if tab.Degree(id) != len(row) {
				return false
			}
			for i := range row {
				if tab.Pick(id, i) != row[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSampleTableAbsentCases(t *testing.T) {
	empty, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if empty.SampleTable() != nil {
		t.Error("empty graph built a sample table")
	}
	if empty.SampleTableBytes() != 0 {
		t.Error("nil sample table reports bytes")
	}
	g := triangle(t)
	if g.Transpose().SampleTable() != nil {
		t.Error("transpose view carries a sample table")
	}
	if g.SampleTableBytes() != int64(g.NumNodes())*8 {
		t.Errorf("SampleTableBytes = %d, want %d", g.SampleTableBytes(), g.NumNodes()*8)
	}
}

func TestCompressedCSRRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 60, 0.08)
		c := compressCSR(g.inOff, g.inAdj)
		if c.NumRows() != g.NumNodes() {
			return false
		}
		var scratch []NodeID
		maxRow := 0
		for v := 0; v < g.NumNodes(); v++ {
			want := g.In(NodeID(v))
			if len(want) > maxRow {
				maxRow = len(want)
			}
			got := c.DecodeRow(NodeID(v), scratch[:0])
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			scratch = got
		}
		return c.MaxRowLen() == maxRow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCompressedCSREdgeRows(t *testing.T) {
	// A hub graph: node 0 is every other node's predecessor, so row 0 of
	// the in-CSR is empty-ish and the hub's in-row is long; also include
	// an isolated node (all-empty rows must round-trip).
	b := NewBuilder(300)
	for v := 1; v < 299; v++ {
		b.AddEdge(NodeID(v), 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := compressCSR(g.inOff, g.inAdj)
	for v := 0; v < g.NumNodes(); v++ {
		got := c.DecodeRow(NodeID(v), nil)
		want := g.In(NodeID(v))
		if len(got) != len(want) {
			t.Fatalf("row %d: decoded %d entries, want %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d entry %d: %d != %d", v, i, got[i], want[i])
			}
		}
	}
	if c.MaxRowLen() != 298 {
		t.Errorf("MaxRowLen = %d, want 298", c.MaxRowLen())
	}
	if c.Bytes() <= 0 {
		t.Error("Bytes not positive")
	}
	var nilC *CompressedCSR
	if nilC.Bytes() != 0 {
		t.Error("nil CompressedCSR reports bytes")
	}
	// Dense ids compress: the hub row's gaps are all zero, one byte per
	// entry against four raw (both views carry the same offsets array,
	// so compare payloads).
	payload := c.Bytes() - int64(len(g.inOff))*8
	raw := int64(len(g.inAdj)) * 4
	if payload >= raw {
		t.Errorf("compressed payload %dB not smaller than raw %dB", payload, raw)
	}
}

func TestHotPathConfigSemantics(t *testing.T) {
	cases := []struct {
		name  string
		cfg   HotPathConfig
		bytes int64
		sort  bool
		zip   bool
	}{
		{"zero-below-default", HotPathConfig{}, 1 << 20, false, false},
		{"zero-above-default", HotPathConfig{}, 1 << 30, true, true},
		{"negative-disables", HotPathConfig{CohortSortBytes: -1, CompressBytes: -1}, 1 << 30, false, false},
		{"one-forces", HotPathConfig{CohortSortBytes: 1, CompressBytes: 1}, 16, true, true},
		{"custom-threshold", HotPathConfig{CohortSortBytes: 100, CompressBytes: 100}, 99, false, false},
	}
	for _, tc := range cases {
		if got := tc.cfg.SortCohort(tc.bytes); got != tc.sort {
			t.Errorf("%s: SortCohort(%d) = %v, want %v", tc.name, tc.bytes, got, tc.sort)
		}
		if got := tc.cfg.CompressInCSR(tc.bytes); got != tc.zip {
			t.Errorf("%s: CompressInCSR(%d) = %v, want %v", tc.name, tc.bytes, got, tc.zip)
		}
	}
	if !(HotPathConfig{}).PushBlocked() {
		t.Error("zero config does not select the blocked push kernel")
	}
	if (HotPathConfig{PushBlock: -1}).PushBlocked() {
		t.Error("negative PushBlock did not disable the blocked kernel")
	}
}

func TestCompressionSelectionAtBuild(t *testing.T) {
	g := randomGraph(7, 80, 0.1)
	if g.Layout().CompressedIn() != nil {
		t.Fatal("tiny graph compressed under the default threshold")
	}
	if g.CompressedBytes() != 0 {
		t.Fatal("CompressedBytes nonzero without a compressed view")
	}

	withHotPath(t, HotPathConfig{CompressBytes: 1})
	forced := randomGraph(7, 80, 0.1)
	zip := forced.Layout().CompressedIn()
	if zip == nil {
		t.Fatal("forced threshold built no compressed view")
	}
	if forced.CompressedBytes() != zip.Bytes() {
		t.Error("CompressedBytes disagrees with the view")
	}
	// The compressed rows are the layout's remapped in-rows, exactly.
	lay := forced.Layout()
	var scratch []NodeID
	for v := 0; v < forced.NumNodes(); v++ {
		want := lay.In(NodeID(v))
		got := zip.DecodeRow(NodeID(v), scratch[:0])
		if len(got) != len(want) {
			t.Fatalf("layout row %d: decoded %d entries, want %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("layout row %d entry %d: %d != %d", v, i, got[i], want[i])
			}
		}
		scratch = got
	}
}

// TestFingerprintInvariantUnderHotPathConfig pins the acceptance
// criterion that graph fingerprints — and therefore every derived
// artifact key — are byte-unchanged by hot-path configuration: the
// sample table, compressed in-CSR, and layout are views over the same
// canonical CSR the fingerprint hashes.
func TestFingerprintInvariantUnderHotPathConfig(t *testing.T) {
	base := randomGraph(11, 70, 0.1)
	want := Fingerprint(base)

	withHotPath(t, HotPathConfig{CohortSortBytes: 1, CompressBytes: 1, PushBlock: -1})
	forced := randomGraph(11, 70, 0.1)
	if forced.Layout().CompressedIn() == nil {
		t.Fatal("forced config built no compressed view")
	}
	if got := Fingerprint(forced); got != want {
		t.Errorf("fingerprint changed under forced hot-path config: %s != %s", got, want)
	}
}

func TestMemoryFootprintIncludesViews(t *testing.T) {
	withHotPath(t, HotPathConfig{CompressBytes: 1})
	g := randomGraph(3, 60, 0.1)
	want := g.csrBytes() + g.LayoutBytes() + g.SampleTableBytes() + g.CompressedBytes()
	if g.MemoryFootprint() != want {
		t.Errorf("MemoryFootprint = %d, want %d", g.MemoryFootprint(), want)
	}
	if g.SampleTableBytes() == 0 || g.CompressedBytes() == 0 || g.LayoutBytes() == 0 {
		t.Error("a derived view reports zero bytes")
	}
	s := ComputeStats(g)
	if s.SampleTableBytes != g.SampleTableBytes() || s.CompressedBytes != g.CompressedBytes() {
		t.Error("Stats views disagree with graph accessors")
	}
	if s.MemoryBytes != g.MemoryFootprint() {
		t.Error("Stats.MemoryBytes disagrees with MemoryFootprint")
	}
}

func TestAliasTableExactMasses(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 40, 0.12)
		rng := rand.New(rand.NewSource(seed ^ 0x5ca1e))
		ws := NewWeights(g)
		for v := 0; v < g.NumNodes(); v++ {
			for _, u := range g.Out(NodeID(v)) {
				if err := ws.Set(NodeID(v), u, 0.1+rng.Float64()*10); err != nil {
					t.Fatal(err)
				}
			}
		}
		at := ws.BuildAliasTable()
		for v := 0; v < g.NumNodes(); v++ {
			id := NodeID(v)
			w := ws.OutWeights(id)
			if len(w) == 0 {
				continue
			}
			sum := ws.OutSum(id)
			for i, m := range at.Mass(id) {
				want := w[i] / sum
				if diff := m - want; diff > 1e-12 || diff < -1e-12 {
					t.Logf("node %d slot %d: mass %v, want %v", v, i, m, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestAliasMatchesCDF drives both weighted samplers with a shared RNG
// and checks the alias table's empirical distribution tracks the
// inverse-CDF reference on the same node within sampling error.
func TestAliasMatchesCDF(t *testing.T) {
	g := randomGraph(23, 30, 0.3)
	rng := rand.New(rand.NewSource(99))
	ws := NewWeights(g)
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Out(NodeID(v)) {
			if err := ws.Set(NodeID(v), u, 0.5+rng.Float64()*4); err != nil {
				t.Fatal(err)
			}
		}
	}
	at := ws.BuildAliasTable()
	if at.Bytes() <= 0 {
		t.Fatal("alias table reports no bytes")
	}
	const draws = 200000
	for _, v := range []NodeID{0, 7, 19} {
		deg := g.OutDegree(v)
		if deg < 2 {
			continue
		}
		aliasCounts := make(map[NodeID]int)
		cdfCounts := make(map[NodeID]int)
		for i := 0; i < draws; i++ {
			u, ok := at.Pick(v, rng.Intn(deg), rng.Float64())
			if !ok {
				t.Fatalf("alias pick failed on node %d", v)
			}
			aliasCounts[u]++
			u, ok = ws.PickCDF(v, rng.Float64())
			if !ok {
				t.Fatalf("cdf pick failed on node %d", v)
			}
			cdfCounts[u]++
		}
		sum := ws.OutSum(v)
		for _, u := range g.Out(v) {
			w, err := ws.Get(v, u)
			if err != nil {
				t.Fatal(err)
			}
			want := w / sum
			gotAlias := float64(aliasCounts[u]) / draws
			gotCDF := float64(cdfCounts[u]) / draws
			// 5 sigma on a Bernoulli(want) sample of `draws`.
			tol := 5 * math.Sqrt(want*(1-want)/draws)
			if d := gotAlias - want; d > tol || d < -tol {
				t.Errorf("node %d->%d: alias freq %v, want %v (tol %v)", v, u, gotAlias, want, tol)
			}
			if d := gotCDF - want; d > tol || d < -tol {
				t.Errorf("node %d->%d: cdf freq %v, want %v (tol %v)", v, u, gotCDF, want, tol)
			}
		}
	}
}

func TestAliasTableDanglingAndUniform(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{From: 0, To: 1}, {From: 0, To: 2}})
	ws := NewWeights(g)
	at := ws.BuildAliasTable()
	if _, ok := at.Pick(1, 0, 0.5); ok {
		t.Error("pick on dangling node succeeded")
	}
	if _, ok := ws.PickCDF(1, 0.5); ok {
		t.Error("cdf pick on dangling node succeeded")
	}
	// All-ones weights: every slot self-accepts, so Pick(v, i, ·) is
	// exactly the uniform row entry — the weighted stepper degrades to
	// the unweighted one on uniform graphs.
	for i, want := range g.Out(0) {
		got, ok := at.Pick(0, i, 0.999999)
		if !ok || got != want {
			t.Errorf("uniform pick slot %d = %d, want %d", i, got, want)
		}
	}
	for i, m := range at.Mass(0) {
		if d := m - 0.5; d > 1e-15 || d < -1e-15 {
			t.Errorf("uniform mass slot %d = %v, want 0.5", i, m)
		}
	}
}
