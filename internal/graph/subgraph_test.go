package graph

import (
	"testing"
)

func TestInducedSubgraph(t *testing.T) {
	// 0->1->2->0 plus 0->3.
	g := mustBuild(t, 4, []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}, {From: 0, To: 3}})
	sub, origOf, err := InducedSubgraph(g, []NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("sub N=%d M=%d", sub.NumNodes(), sub.NumEdges())
	}
	if len(origOf) != 3 || origOf[0] != 0 || origOf[1] != 1 || origOf[2] != 2 {
		t.Errorf("origOf = %v", origOf)
	}
	if !sub.HasEdge(2, 0) {
		t.Error("closing edge lost")
	}
	// Edge to excluded node 3 dropped.
	for v := 0; v < 3; v++ {
		for _, w := range sub.Out(NodeID(v)) {
			if int(w) >= 3 {
				t.Errorf("edge to excluded node survived: %d->%d", v, w)
			}
		}
	}
}

func TestInducedSubgraphDedupAndValidation(t *testing.T) {
	g := triangle(t)
	sub, origOf, err := InducedSubgraph(g, []NodeID{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 2 || len(origOf) != 2 {
		t.Errorf("dedup failed: N=%d", sub.NumNodes())
	}
	if _, _, err := InducedSubgraph(g, []NodeID{0, 99}); err == nil {
		t.Error("accepted out-of-range node")
	}
}

func TestInducedSubgraphKeepsLabels(t *testing.T) {
	b := NewLabeledBuilder()
	b.AddLabeledEdge("x", "y")
	b.AddLabeledEdge("y", "z")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	y, _ := g.NodeByLabel("y")
	z, _ := g.NodeByLabel("z")
	sub, _, err := InducedSubgraph(g, []NodeID{y, z})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sub.NodeByLabel("y"); !ok {
		t.Error("labels lost")
	}
	if _, ok := sub.NodeByLabel("x"); ok {
		t.Error("excluded label present")
	}
}

func TestEgoNet(t *testing.T) {
	// center 0 <-> 1, 1 -> 2, 3 -> 0, 4 isolated.
	g := mustBuild(t, 5, []Edge{{From: 0, To: 1}, {From: 1, To: 0}, {From: 1, To: 2}, {From: 3, To: 0}})
	ego, origOf, err := EgoNet(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Radius 1 in both directions: {0, 1, 3}.
	if ego.NumNodes() != 3 {
		t.Fatalf("ego N=%d, want 3 (got %v)", ego.NumNodes(), origOf)
	}
	if origOf[0] != 0 {
		t.Errorf("center not node 0: %v", origOf)
	}
	ego2, _, err := EgoNet(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ego2.NumNodes() != 4 { // adds node 2; node 4 stays out
		t.Errorf("radius-2 ego N=%d, want 4", ego2.NumNodes())
	}
}

func TestEgoNetZeroRadius(t *testing.T) {
	g := triangle(t)
	ego, origOf, err := EgoNet(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ego.NumNodes() != 1 || origOf[0] != 1 {
		t.Errorf("zero-radius ego: N=%d origOf=%v", ego.NumNodes(), origOf)
	}
}

func TestEgoNetValidation(t *testing.T) {
	g := triangle(t)
	if _, _, err := EgoNet(g, 99, 1); err == nil {
		t.Error("accepted bad center")
	}
	if _, _, err := EgoNet(g, 0, -1); err == nil {
		t.Error("accepted negative radius")
	}
}
