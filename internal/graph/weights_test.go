package graph

import (
	"math"
	"testing"
)

func TestWeightsDefaultOnes(t *testing.T) {
	g := triangle(t)
	ws := NewWeights(g)
	w, err := ws.Get(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 {
		t.Errorf("default weight = %v, want 1", w)
	}
	if got := ws.OutSum(0); got != 1 {
		t.Errorf("OutSum = %v", got)
	}
	if ws.Graph() != g {
		t.Error("Graph() identity lost")
	}
}

func TestWeightsSetAddGet(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{From: 0, To: 1}, {From: 0, To: 2}})
	ws := NewWeights(g)
	if err := ws.Set(0, 2, 5); err != nil {
		t.Fatal(err)
	}
	if err := ws.Add(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	w1, _ := ws.Get(0, 1)
	w2, _ := ws.Get(0, 2)
	if w1 != 3.5 || w2 != 5 {
		t.Errorf("weights = %v, %v", w1, w2)
	}
	if got := ws.OutSum(0); math.Abs(got-8.5) > 1e-12 {
		t.Errorf("OutSum = %v", got)
	}
	ow := ws.OutWeights(0)
	if len(ow) != 2 {
		t.Errorf("OutWeights len = %d", len(ow))
	}
}

func TestWeightsErrors(t *testing.T) {
	g := triangle(t)
	ws := NewWeights(g)
	if err := ws.Set(0, 2, 1); err == nil { // edge 0->2 does not exist
		t.Error("set on missing edge succeeded")
	}
	if err := ws.Set(0, 1, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := ws.Set(0, 1, -1); err == nil {
		t.Error("negative weight accepted")
	}
	if err := ws.Add(0, 1, 0); err == nil {
		t.Error("zero delta accepted")
	}
	if _, err := ws.Get(99, 0); err == nil {
		t.Error("out-of-range get succeeded")
	}
	if err := ws.Set(-1, 0, 1); err == nil {
		t.Error("negative node accepted")
	}
}
