package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes the structure of a graph. It backs the demo's
// dataset-comparison use case, where users contrast datasets before
// running algorithms on them.
type Stats struct {
	Nodes        int     `json:"nodes"`
	Edges        int64   `json:"edges"`
	Density      float64 `json:"density"`
	Reciprocity  float64 `json:"reciprocity"`
	SelfLoops    int64   `json:"self_loops"`
	Dangling     int     `json:"dangling"` // nodes with out-degree 0
	Sources      int     `json:"sources"`  // nodes with in-degree 0
	Isolated     int     `json:"isolated"` // nodes with no edges at all
	MaxInDegree  int     `json:"max_in_degree"`
	MaxOutDegree int     `json:"max_out_degree"`
	AvgDegree    float64 `json:"avg_degree"` // M / N
	SCCs         int     `json:"sccs"`
	LargestSCC   int     `json:"largest_scc"`
	// MemoryBytes is the graph's resident CSR size including every
	// derived hot-path view; LayoutBytes, SampleTableBytes and
	// CompressedBytes are the per-view shares of it (the last is 0
	// unless the graph crossed the compression threshold at build).
	// Capacity planning reads these from /api/datasets/{name}.
	MemoryBytes      int64 `json:"memory_bytes"`
	LayoutBytes      int64 `json:"layout_bytes"`
	SampleTableBytes int64 `json:"sample_table_bytes"`
	CompressedBytes  int64 `json:"compressed_bytes"`
}

// ComputeStats collects the full Stats for g. It is O(N + M) plus one
// reciprocity pass (O(M log d)).
func ComputeStats(g *Graph) Stats {
	n := g.NumNodes()
	s := Stats{
		Nodes:            n,
		Edges:            g.NumEdges(),
		Density:          g.Density(),
		Reciprocity:      g.Reciprocity(),
		MemoryBytes:      g.MemoryFootprint(),
		LayoutBytes:      g.LayoutBytes(),
		SampleTableBytes: g.SampleTableBytes(),
		CompressedBytes:  g.CompressedBytes(),
	}
	if n > 0 {
		s.AvgDegree = float64(g.NumEdges()) / float64(n)
	}
	for v := 0; v < n; v++ {
		id := NodeID(v)
		in, out := g.InDegree(id), g.OutDegree(id)
		if out == 0 {
			s.Dangling++
		}
		if in == 0 {
			s.Sources++
		}
		if in == 0 && out == 0 {
			s.Isolated++
		}
		if in > s.MaxInDegree {
			s.MaxInDegree = in
		}
		if out > s.MaxOutDegree {
			s.MaxOutDegree = out
		}
		if g.HasEdge(id, id) {
			s.SelfLoops++
		}
	}
	scc := StronglyConnectedComponents(g)
	s.SCCs = scc.Count
	if _, size := scc.Largest(); size > 0 {
		s.LargestSCC = int(size)
	}
	return s
}

// String renders the stats as a compact single-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("N=%d M=%d density=%.6f reciprocity=%.3f sccs=%d largest_scc=%d dangling=%d",
		s.Nodes, s.Edges, s.Density, s.Reciprocity, s.SCCs, s.LargestSCC, s.Dangling)
}

// DegreeHistogram returns the distribution of the requested degree kind
// ("in" or "out") as a map from degree to node count.
func DegreeHistogram(g *Graph, kind string) (map[int]int, error) {
	hist := make(map[int]int)
	n := g.NumNodes()
	switch kind {
	case "in":
		for v := 0; v < n; v++ {
			hist[g.InDegree(NodeID(v))]++
		}
	case "out":
		for v := 0; v < n; v++ {
			hist[g.OutDegree(NodeID(v))]++
		}
	default:
		return nil, fmt.Errorf("graph: unknown degree kind %q (want \"in\" or \"out\")", kind)
	}
	return hist, nil
}

// TopByInDegree returns up to k node ids sorted by descending
// in-degree, breaking ties by ascending id. These are the "globally
// central" nodes Personalized PageRank tends to over-promote.
func TopByInDegree(g *Graph, k int) []NodeID {
	n := g.NumNodes()
	ids := make([]NodeID, n)
	for v := range ids {
		ids[v] = NodeID(v)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.InDegree(ids[i]), g.InDegree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	if k < 0 || k > n {
		k = n
	}
	return ids[:k]
}

// FormatAdjacency renders a small graph as readable text for debugging
// and golden tests. Graphs above maxNodes nodes are elided.
func FormatAdjacency(g *Graph, maxNodes int) string {
	var b strings.Builder
	n := g.NumNodes()
	fmt.Fprintf(&b, "graph N=%d M=%d\n", n, g.NumEdges())
	limit := n
	if maxNodes >= 0 && maxNodes < n {
		limit = maxNodes
	}
	for v := 0; v < limit; v++ {
		id := NodeID(v)
		fmt.Fprintf(&b, "  %s ->", g.Label(id))
		for _, w := range g.Out(id) {
			fmt.Fprintf(&b, " %s", g.Label(w))
		}
		b.WriteByte('\n')
	}
	if limit < n {
		fmt.Fprintf(&b, "  ... (%d more nodes)\n", n-limit)
	}
	return b.String()
}
