package graph

import "fmt"

// LabelTable is a bidirectional mapping between node ids and external
// string names. It is immutable after construction and safe for
// concurrent readers.
type LabelTable struct {
	names []string
	ids   map[string]NodeID
}

// NewLabelTable builds a table from a dense slice of names where
// names[i] labels node i. It returns an error if any name is empty or
// duplicated, since labels must resolve uniquely.
func NewLabelTable(names []string) (*LabelTable, error) {
	t := &LabelTable{
		names: make([]string, len(names)),
		ids:   make(map[string]NodeID, len(names)),
	}
	copy(t.names, names)
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("graph: empty label for node %d", i)
		}
		if prev, dup := t.ids[name]; dup {
			return nil, fmt.Errorf("graph: duplicate label %q for nodes %d and %d", name, prev, i)
		}
		t.ids[name] = NodeID(i)
	}
	return t, nil
}

// Len returns the number of labeled nodes.
func (t *LabelTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.names)
}

// Name returns the label of node v, or its decimal id if v is out of
// range.
func (t *LabelTable) Name(v NodeID) string {
	if t == nil || v < 0 || int(v) >= len(t.names) {
		return fmt.Sprintf("%d", v)
	}
	return t.names[v]
}

// ID resolves a label to its node id.
func (t *LabelTable) ID(name string) (NodeID, bool) {
	if t == nil {
		return 0, false
	}
	id, ok := t.ids[name]
	return id, ok
}

// Names returns a copy of the dense name slice.
func (t *LabelTable) Names() []string {
	if t == nil {
		return nil
	}
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}
