package graph

// SCCResult describes the strongly connected components of a graph.
type SCCResult struct {
	// Component[v] is the id of v's component; ids are dense in
	// [0, Count) and numbered in reverse topological order of the
	// condensation (i.e. component 0 has no incoming edges from other
	// components is NOT guaranteed; ids are assignment order of
	// Tarjan's algorithm, which is reverse topological).
	Component []int32
	// Count is the number of components.
	Count int
	// Sizes[c] is the number of nodes in component c.
	Sizes []int32
}

// Largest returns the id and size of the largest component, or (-1, 0)
// on an empty graph.
func (r *SCCResult) Largest() (id int32, size int32) {
	id = -1
	for c, s := range r.Sizes {
		if s > size {
			id, size = int32(c), s
		}
	}
	return id, size
}

// SameComponent reports whether u and v are strongly connected.
func (r *SCCResult) SameComponent(u, v NodeID) bool {
	if int(u) >= len(r.Component) || int(v) >= len(r.Component) || u < 0 || v < 0 {
		return false
	}
	return r.Component[u] == r.Component[v]
}

// StronglyConnectedComponents computes the SCCs of g with an iterative
// Tarjan's algorithm (no recursion, safe on deep graphs).
//
// Every cycle through a reference node r lies entirely inside r's
// strongly connected component, so SCC membership is both a useful
// sanity check and an upper bound on CycleRank's support set.
func StronglyConnectedComponents(g *Graph) *SCCResult {
	n := g.NumNodes()
	res := &SCCResult{Component: make([]int32, n)}
	for i := range res.Component {
		res.Component[i] = -1
	}

	const unvisited = -1
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}

	var (
		counter int32
		stack   []NodeID // Tarjan's component stack
	)
	type frame struct {
		v    NodeID
		next int
	}
	var call []frame

	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		call = append(call[:0], frame{v: NodeID(start)})
		index[start] = counter
		lowlink[start] = counter
		counter++
		stack = append(stack, NodeID(start))
		onStack[start] = true

		for len(call) > 0 {
			top := &call[len(call)-1]
			v := top.v
			adj := g.Out(v)
			recursed := false
			for top.next < len(adj) {
				w := adj[top.next]
				top.next++
				if index[w] == unvisited {
					index[w] = counter
					lowlink[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					recursed = true
					break
				}
				if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
			}
			if recursed {
				continue
			}
			// v is finished.
			if lowlink[v] == index[v] {
				cid := int32(res.Count)
				res.Count++
				var size int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					res.Component[w] = cid
					size++
					if w == v {
						break
					}
				}
				res.Sizes = append(res.Sizes, size)
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
		}
	}
	return res
}
