// Package ranking defines the common result type produced by every
// relevance algorithm in the platform, plus the rank-comparison
// metrics that power the demo's algorithm-comparison use case.
//
// Invariants every producer and consumer relies on:
//
//   - A Result carries exactly one score per node of its graph
//     (enforced by NewResult).
//   - Score 0 means "no relevance": zero-score nodes are excluded
//     from top lists, so an algorithm that finds nothing yields an
//     empty list rather than an arbitrary ordering of zeros.
//   - Top-list order is deterministic across runs and platforms:
//     descending score, ties broken by ascending label, then id.
//   - Comparison metrics (Jaccard, RBO, overlap) operate on label
//     lists, not node ids, so results from different graph builds of
//     the same dataset remain comparable.
package ranking

import (
	"fmt"
	"sort"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// Entry is one (node, score) pair of a ranking.
type Entry struct {
	Node  graph.NodeID `json:"node"`
	Label string       `json:"label"`
	Score float64      `json:"score"`
}

// Result holds the per-node scores produced by a relevance algorithm
// on a particular graph.
type Result struct {
	// Algorithm is the registry name of the producing algorithm.
	Algorithm string `json:"algorithm"`
	// Scores has one entry per node of the graph.
	Scores []float64 `json:"-"`
	// Iterations is the number of iterations an iterative method ran
	// for, 0 for non-iterative methods.
	Iterations int `json:"iterations,omitempty"`
	// Residual is the final convergence residual of an iterative
	// method, 0 otherwise.
	Residual float64 `json:"residual,omitempty"`
	// CyclesFound is the number of elementary cycles CycleRank
	// enumerated, 0 for other algorithms.
	CyclesFound int64 `json:"cycles_found,omitempty"`

	g *graph.Graph
}

// NewResult wraps a score vector for graph g.
func NewResult(algorithm string, g *graph.Graph, scores []float64) (*Result, error) {
	if len(scores) != g.NumNodes() {
		return nil, fmt.Errorf("ranking: %d scores for %d nodes", len(scores), g.NumNodes())
	}
	return &Result{Algorithm: algorithm, Scores: scores, g: g}, nil
}

// Graph returns the graph the scores refer to.
func (r *Result) Graph() *graph.Graph { return r.g }

// Score returns the score of node v, or 0 when v is out of range.
func (r *Result) Score(v graph.NodeID) float64 {
	if v < 0 || int(v) >= len(r.Scores) {
		return 0
	}
	return r.Scores[v]
}

// Top returns the k highest-scoring entries in descending score order.
// Ties break by ascending label (then id) so output is deterministic
// across runs and platforms. k < 0 or k > N returns all nodes.
// Zero-score nodes are excluded: an algorithm that assigns no
// relevance to a node should not rank it.
func (r *Result) Top(k int) []Entry {
	return r.TopFiltered(k, nil)
}

// TopFiltered is Top with an optional exclusion predicate; nodes for
// which exclude returns true are skipped (the demo uses this to drop
// the reference node itself from comparison tables).
func (r *Result) TopFiltered(k int, exclude func(graph.NodeID) bool) []Entry {
	entries := make([]Entry, 0, len(r.Scores))
	for v, s := range r.Scores {
		id := graph.NodeID(v)
		if s == 0 {
			continue
		}
		if exclude != nil && exclude(id) {
			continue
		}
		entries = append(entries, Entry{Node: id, Label: r.g.Label(id), Score: s})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		if entries[i].Label != entries[j].Label {
			return entries[i].Label < entries[j].Label
		}
		return entries[i].Node < entries[j].Node
	})
	if k >= 0 && k < len(entries) {
		entries = entries[:k]
	}
	return entries
}

// TopLabels returns the labels of the top-k entries, a convenience for
// table rendering and tests.
func (r *Result) TopLabels(k int) []string {
	top := r.Top(k)
	labels := make([]string, len(top))
	for i, e := range top {
		labels[i] = e.Label
	}
	return labels
}

// Rank returns the dense 1-based rank of every node under the result's
// ordering (rank 1 = highest score; ties broken as in Top). Nodes with
// zero score share the ranks after all scored nodes, ordered
// deterministically.
func (r *Result) Rank() []int {
	n := len(r.Scores)
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := r.Scores[ids[a]], r.Scores[ids[b]]
		if sa != sb {
			return sa > sb
		}
		la, lb := r.g.Label(ids[a]), r.g.Label(ids[b])
		if la != lb {
			return la < lb
		}
		return ids[a] < ids[b]
	})
	ranks := make([]int, n)
	for pos, id := range ids {
		ranks[id] = pos + 1
	}
	return ranks
}

// Sum returns the total score mass — 1.0 (within tolerance) for
// PageRank-family stationary distributions.
func (r *Result) Sum() float64 {
	var s float64
	for _, v := range r.Scores {
		s += v
	}
	return s
}

// Normalize scales scores in place so they sum to 1. It is a no-op on
// an all-zero result.
func (r *Result) Normalize() {
	s := r.Sum()
	if s == 0 {
		return
	}
	for i := range r.Scores {
		r.Scores[i] /= s
	}
}
