package ranking

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// labeledGraph builds a small labeled graph with the given node names
// (edges are irrelevant for ranking logic; one chain edge keeps the
// builder happy).
func labeledGraph(t *testing.T, names ...string) *graph.Graph {
	t.Helper()
	b := graph.NewLabeledBuilder()
	for _, n := range names {
		b.AddNode(n)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustResult(t *testing.T, algo string, g *graph.Graph, scores []float64) *Result {
	t.Helper()
	r, err := NewResult(algo, g, scores)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewResultLengthCheck(t *testing.T) {
	g := labeledGraph(t, "a", "b")
	if _, err := NewResult("x", g, []float64{1}); err == nil {
		t.Fatal("accepted wrong-length scores")
	}
}

func TestTopOrdering(t *testing.T) {
	g := labeledGraph(t, "a", "b", "c", "d")
	r := mustResult(t, "t", g, []float64{0.1, 0.9, 0.5, 0})
	top := r.Top(-1)
	want := []string{"b", "c", "a"}
	got := make([]string, len(top))
	for i, e := range top {
		got[i] = e.Label
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Top = %v, want %v", got, want)
	}
}

func TestTopExcludesZeroScores(t *testing.T) {
	g := labeledGraph(t, "a", "b")
	r := mustResult(t, "t", g, []float64{0, 0.5})
	if top := r.Top(-1); len(top) != 1 || top[0].Label != "b" {
		t.Errorf("Top = %v, want only b", top)
	}
}

func TestTopTieBreaksByLabel(t *testing.T) {
	g := labeledGraph(t, "zebra", "apple", "mango")
	r := mustResult(t, "t", g, []float64{0.5, 0.5, 0.5})
	got := r.TopLabels(-1)
	want := []string{"apple", "mango", "zebra"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tie order = %v, want %v", got, want)
	}
}

func TestTopK(t *testing.T) {
	g := labeledGraph(t, "a", "b", "c")
	r := mustResult(t, "t", g, []float64{3, 2, 1})
	if top := r.Top(2); len(top) != 2 {
		t.Errorf("Top(2) len = %d", len(top))
	}
	if top := r.Top(0); len(top) != 0 {
		t.Errorf("Top(0) len = %d", len(top))
	}
	if top := r.Top(99); len(top) != 3 {
		t.Errorf("Top(99) len = %d", len(top))
	}
}

func TestTopFiltered(t *testing.T) {
	g := labeledGraph(t, "ref", "x", "y")
	r := mustResult(t, "t", g, []float64{10, 5, 1})
	ref, _ := g.NodeByLabel("ref")
	top := r.TopFiltered(-1, func(v graph.NodeID) bool { return v == ref })
	if len(top) != 2 || top[0].Label != "x" {
		t.Errorf("TopFiltered = %v", top)
	}
}

func TestScoreOutOfRange(t *testing.T) {
	g := labeledGraph(t, "a")
	r := mustResult(t, "t", g, []float64{0.7})
	if r.Score(-1) != 0 || r.Score(5) != 0 {
		t.Error("out-of-range Score not 0")
	}
	if r.Score(0) != 0.7 {
		t.Error("Score(0) wrong")
	}
}

func TestRank(t *testing.T) {
	g := labeledGraph(t, "a", "b", "c")
	r := mustResult(t, "t", g, []float64{0.2, 0.9, 0.5})
	ranks := r.Rank()
	want := []int{3, 1, 2}
	if !reflect.DeepEqual(ranks, want) {
		t.Errorf("Rank = %v, want %v", ranks, want)
	}
}

func TestNormalize(t *testing.T) {
	g := labeledGraph(t, "a", "b")
	r := mustResult(t, "t", g, []float64{2, 6})
	r.Normalize()
	if math.Abs(r.Sum()-1) > 1e-12 {
		t.Errorf("Sum after Normalize = %v", r.Sum())
	}
	if math.Abs(r.Scores[1]-0.75) > 1e-12 {
		t.Errorf("Scores[1] = %v, want 0.75", r.Scores[1])
	}
	zero := mustResult(t, "t", g, []float64{0, 0})
	zero.Normalize() // must not divide by zero
	if zero.Sum() != 0 {
		t.Error("normalizing zero vector changed it")
	}
}

func TestJaccardAtK(t *testing.T) {
	g := labeledGraph(t, "a", "b", "c", "d")
	r1 := mustResult(t, "x", g, []float64{4, 3, 2, 1})
	r2 := mustResult(t, "y", g, []float64{4, 3, 0.1, 0.2})
	// top2: {a,b} vs {a,b} -> 1.0
	if got := JaccardAtK(r1, r2, 2); got != 1 {
		t.Errorf("Jaccard@2 = %v, want 1", got)
	}
	// top3: {a,b,c} vs {a,b,d} -> 2/4
	if got := JaccardAtK(r1, r2, 3); got != 0.5 {
		t.Errorf("Jaccard@3 = %v, want 0.5", got)
	}
}

func TestJaccardEmptyBothIsOne(t *testing.T) {
	g := labeledGraph(t, "a")
	r1 := mustResult(t, "x", g, []float64{0})
	r2 := mustResult(t, "y", g, []float64{0})
	if got := JaccardAtK(r1, r2, 5); got != 1 {
		t.Errorf("Jaccard of empty sets = %v, want 1", got)
	}
}

func TestKendallTauPerfectAndReversed(t *testing.T) {
	g := labeledGraph(t, "a", "b", "c", "d")
	r1 := mustResult(t, "x", g, []float64{4, 3, 2, 1})
	same := mustResult(t, "y", g, []float64{40, 30, 20, 10})
	rev := mustResult(t, "z", g, []float64{1, 2, 3, 4})
	tau, err := KendallTau(r1, same, -1)
	if err != nil || math.Abs(tau-1) > 1e-12 {
		t.Errorf("tau(same) = %v, %v; want 1", tau, err)
	}
	tau, err = KendallTau(r1, rev, -1)
	if err != nil || math.Abs(tau+1) > 1e-12 {
		t.Errorf("tau(rev) = %v, %v; want -1", tau, err)
	}
}

func TestKendallTauTooFewItems(t *testing.T) {
	g := labeledGraph(t, "a", "b")
	r1 := mustResult(t, "x", g, []float64{1, 0})
	r2 := mustResult(t, "y", g, []float64{1, 0})
	if _, err := KendallTau(r1, r2, 1); err == nil {
		t.Error("tau accepted single item")
	}
}

func TestRBOIdenticalIsOne(t *testing.T) {
	g := labeledGraph(t, "a", "b", "c", "d", "e")
	r := mustResult(t, "x", g, []float64{5, 4, 3, 2, 1})
	got, err := RBO(r, r, 5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("RBO(self) = %v, want 1", got)
	}
}

func TestRBODisjointIsZero(t *testing.T) {
	g := labeledGraph(t, "a", "b", "c", "d")
	r1 := mustResult(t, "x", g, []float64{2, 1, 0, 0})
	r2 := mustResult(t, "y", g, []float64{0, 0, 2, 1})
	got, err := RBO(r1, r2, 2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("RBO(disjoint) = %v, want 0", got)
	}
}

func TestRBOParamValidation(t *testing.T) {
	g := labeledGraph(t, "a")
	r := mustResult(t, "x", g, []float64{1})
	if _, err := RBO(r, r, 1, 0); err == nil {
		t.Error("RBO accepted p=0")
	}
	if _, err := RBO(r, r, 1, 1); err == nil {
		t.Error("RBO accepted p=1")
	}
	if _, err := RBO(r, r, 0, 0.9); err == nil {
		t.Error("RBO accepted k=0")
	}
}

func TestRBOTopWeighted(t *testing.T) {
	// Agreement at the top must count more than at the bottom.
	g := labeledGraph(t, "a", "b", "c", "d", "e", "f")
	base := mustResult(t, "x", g, []float64{6, 5, 4, 3, 0, 0})
	topAgree := mustResult(t, "y", g, []float64{6, 5, 0, 0, 4, 3}) // shares ranks 1-2
	botAgree := mustResult(t, "z", g, []float64{0, 0, 3, 4, 6, 5}) // shares ranks 3-4 (reversed pos)
	hi, err := RBO(base, topAgree, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := RBO(base, botAgree, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Errorf("RBO top-agreement %v not greater than bottom-agreement %v", hi, lo)
	}
}

func TestSpearmanFootruleIdentical(t *testing.T) {
	g := labeledGraph(t, "a", "b", "c")
	r := mustResult(t, "x", g, []float64{3, 2, 1})
	d, err := SpearmanFootrule(r, r, -1)
	if err != nil || d != 0 {
		t.Errorf("footrule(self) = %v, %v; want 0", d, err)
	}
}

func TestCompareAt(t *testing.T) {
	g := labeledGraph(t, "a", "b", "c", "d")
	r1 := mustResult(t, "alg1", g, []float64{4, 3, 2, 1})
	r2 := mustResult(t, "alg2", g, []float64{4, 3, 1, 2})
	ag, err := CompareAt(r1, r2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ag.AlgorithmA != "alg1" || ag.AlgorithmB != "alg2" || ag.K != 4 {
		t.Errorf("agreement metadata wrong: %+v", ag)
	}
	if ag.Jaccard != 1 {
		t.Errorf("Jaccard = %v, want 1 (same item sets)", ag.Jaccard)
	}
	if ag.RBO <= 0 || ag.RBO > 1 {
		t.Errorf("RBO out of range: %v", ag.RBO)
	}
}

// Property: metric bounds hold on random score vectors.
func TestMetricBoundsProperty(t *testing.T) {
	names := []string{"n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewLabeledBuilder()
		for _, n := range names {
			b.AddNode(n)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		s1 := make([]float64, len(names))
		s2 := make([]float64, len(names))
		for i := range s1 {
			s1[i] = rng.Float64()
			s2[i] = rng.Float64()
		}
		r1, _ := NewResult("a", g, s1)
		r2, _ := NewResult("b", g, s2)
		j := JaccardAtK(r1, r2, 4)
		if j < 0 || j > 1 {
			return false
		}
		// Jaccard symmetry.
		if j != JaccardAtK(r2, r1, 4) {
			return false
		}
		rbo, err := RBO(r1, r2, 5, 0.9)
		if err != nil || rbo < 0 || rbo > 1+1e-12 {
			return false
		}
		tau, err := KendallTau(r1, r2, -1)
		if err != nil || tau < -1-1e-12 || tau > 1+1e-12 {
			return false
		}
		fr, err := SpearmanFootrule(r1, r2, -1)
		if err != nil || fr < 0 || fr > 1+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
