package ranking

import (
	"math"
	"testing"
)

func TestListJaccard(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 1},
		{[]string{"x"}, nil, 0},
		{[]string{"x", "y"}, []string{"x", "y"}, 1},
		{[]string{"x", "y"}, []string{"y", "z"}, 1.0 / 3.0},
		{[]string{"x", "x", "y"}, []string{"x", "y"}, 1}, // duplicates collapse
	}
	for _, c := range cases {
		if got := ListJaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ListJaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := ListJaccard(c.b, c.a); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ListJaccard not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestListRBO(t *testing.T) {
	identical := []string{"a", "b", "c"}
	got, err := ListRBO(identical, identical, 0.9)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("RBO(self) = %v, %v", got, err)
	}
	disjoint, err := ListRBO([]string{"a", "b"}, []string{"x", "y"}, 0.9)
	if err != nil || disjoint != 0 {
		t.Errorf("RBO(disjoint) = %v, %v", disjoint, err)
	}
	empty, err := ListRBO(nil, nil, 0.9)
	if err != nil || empty != 1 {
		t.Errorf("RBO(empty) = %v, %v", empty, err)
	}
	if _, err := ListRBO(identical, identical, 1.5); err == nil {
		t.Error("accepted p out of range")
	}
	// Top-weighting: agreement at rank 1 beats agreement at rank 3.
	base := []string{"a", "b", "c"}
	topAgree := []string{"a", "x", "y"}
	botAgree := []string{"x", "y", "c"}
	hi, _ := ListRBO(base, topAgree, 0.9)
	lo, _ := ListRBO(base, botAgree, 0.9)
	if hi <= lo {
		t.Errorf("top-weighted RBO: %v <= %v", hi, lo)
	}
}

func TestListOverlapCurve(t *testing.T) {
	a := []string{"x", "y", "z"}
	b := []string{"x", "z", "y"}
	curve := ListOverlapCurve(a, b)
	want := []float64{1, 0.5, 1}
	if len(curve) != 3 {
		t.Fatalf("curve len %d", len(curve))
	}
	for i := range want {
		if math.Abs(curve[i]-want[i]) > 1e-12 {
			t.Errorf("curve[%d] = %v, want %v", i, curve[i], want[i])
		}
	}
	if got := ListOverlapCurve(nil, b); len(got) != 0 {
		t.Errorf("empty-a curve = %v", got)
	}
}
