package ranking

import (
	"fmt"
	"math"

	"github.com/cyclerank/cyclerank-go/internal/graph"
)

// JaccardAtK returns the Jaccard similarity |A∩B| / |A∪B| between the
// top-k node sets of two results. It is 1 when both top-k sets are
// empty (two algorithms that rank nothing agree vacuously).
func JaccardAtK(a, b *Result, k int) float64 {
	setA := topSet(a, k)
	setB := topSet(b, k)
	if len(setA) == 0 && len(setB) == 0 {
		return 1
	}
	inter := 0
	for v := range setA {
		if setB[v] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	return float64(inter) / float64(union)
}

func topSet(r *Result, k int) map[graph.NodeID]bool {
	set := make(map[graph.NodeID]bool, k)
	for _, e := range r.Top(k) {
		set[e.Node] = true
	}
	return set
}

// KendallTau computes the Kendall rank correlation coefficient τ-a
// between two results over the union of their top-k items (pass k < 0
// for all scored nodes). It returns a value in [-1, 1]; 1 means
// identical order, -1 reversed. An error is returned when fewer than
// two common items exist, since correlation is undefined there.
func KendallTau(a, b *Result, k int) (float64, error) {
	items := unionTop(a, b, k)
	if len(items) < 2 {
		return 0, fmt.Errorf("ranking: kendall tau needs at least 2 items, have %d", len(items))
	}
	ra, rb := a.Rank(), b.Rank()
	var concordant, discordant int64
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			u, v := items[i], items[j]
			da := ra[u] - ra[v]
			db := rb[u] - rb[v]
			switch {
			case da*db > 0:
				concordant++
			case da*db < 0:
				discordant++
			}
		}
	}
	pairs := int64(len(items)) * int64(len(items)-1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}

func unionTop(a, b *Result, k int) []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	var items []graph.NodeID
	for _, e := range a.Top(k) {
		if !seen[e.Node] {
			seen[e.Node] = true
			items = append(items, e.Node)
		}
	}
	for _, e := range b.Top(k) {
		if !seen[e.Node] {
			seen[e.Node] = true
			items = append(items, e.Node)
		}
	}
	return items
}

// RBO computes rank-biased overlap between the rankings of two results
// truncated at depth k, with persistence parameter p in (0, 1). RBO
// weights agreement at the top of the lists more heavily — exactly the
// property needed when comparing relevance rankings whose tails are
// noise. The truncated form used here is
//
//	RBO@k = (1−p)/(1−p^k) · Σ_{d=1..k} p^(d−1) · |A_d ∩ B_d| / d
//
// which is normalized to [0, 1] at depth k.
func RBO(a, b *Result, k int, p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("ranking: rbo persistence p=%v outside (0,1)", p)
	}
	if k < 1 {
		return 0, fmt.Errorf("ranking: rbo depth k=%d < 1", k)
	}
	listA := a.Top(k)
	listB := b.Top(k)
	setA := make(map[graph.NodeID]bool, k)
	setB := make(map[graph.NodeID]bool, k)
	var sum, norm float64
	weight := 1.0
	overlap := 0
	for d := 1; d <= k; d++ {
		if d-1 < len(listA) {
			v := listA[d-1].Node
			if !setA[v] {
				setA[v] = true
				if setB[v] {
					overlap++
				}
			}
		}
		if d-1 < len(listB) {
			v := listB[d-1].Node
			if !setB[v] {
				setB[v] = true
				if setA[v] {
					overlap++
				}
			}
		}
		if d > 1 {
			weight *= p
		}
		sum += weight * float64(overlap) / float64(d)
		norm += weight
	}
	return sum / norm, nil
}

// SpearmanFootrule computes the normalized Spearman footrule distance
// between two results over the union of their top-k items: the mean
// absolute rank displacement divided by its maximum, yielding a value
// in [0, 1] where 0 means identical ranks.
func SpearmanFootrule(a, b *Result, k int) (float64, error) {
	items := unionTop(a, b, k)
	if len(items) == 0 {
		return 0, fmt.Errorf("ranking: footrule over empty item set")
	}
	ra, rb := a.Rank(), b.Rank()
	var total float64
	for _, v := range items {
		total += math.Abs(float64(ra[v] - rb[v]))
	}
	n := len(a.Scores)
	maxDisp := float64(n - 1)
	if maxDisp == 0 {
		return 0, nil
	}
	return total / (float64(len(items)) * maxDisp), nil
}

// Agreement is a symmetric pairwise comparison of two results, the
// quantified form of the demo's side-by-side comparison view.
type Agreement struct {
	AlgorithmA string  `json:"algorithm_a"`
	AlgorithmB string  `json:"algorithm_b"`
	K          int     `json:"k"`
	Jaccard    float64 `json:"jaccard"`
	RBO        float64 `json:"rbo"`
	KendallTau float64 `json:"kendall_tau"`
	Footrule   float64 `json:"footrule"`
}

// CompareAt produces the full Agreement between two results at depth k
// using RBO persistence 0.9 (a standard choice: ~90% of weight on the
// top 10).
func CompareAt(a, b *Result, k int) (Agreement, error) {
	ag := Agreement{AlgorithmA: a.Algorithm, AlgorithmB: b.Algorithm, K: k}
	ag.Jaccard = JaccardAtK(a, b, k)
	rbo, err := RBO(a, b, k, 0.9)
	if err != nil {
		return ag, err
	}
	ag.RBO = rbo
	tau, err := KendallTau(a, b, k)
	if err == nil {
		ag.KendallTau = tau
	}
	fr, err := SpearmanFootrule(a, b, k)
	if err == nil {
		ag.Footrule = fr
	}
	return ag, nil
}
