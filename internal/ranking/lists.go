package ranking

import "fmt"

// The demo's datastore persists only each task's top-k entries, not
// full score vectors, so comparing two *stored* results means
// comparing ranked label lists. These list-based metrics mirror their
// Result-based counterparts.

// ListJaccard returns the Jaccard similarity of two label lists viewed
// as sets. Two empty lists agree vacuously (1).
func ListJaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	setA := make(map[string]bool, len(a))
	for _, x := range a {
		setA[x] = true
	}
	setB := make(map[string]bool, len(b))
	inter := 0
	for _, x := range b {
		if setB[x] {
			continue
		}
		setB[x] = true
		if setA[x] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	return float64(inter) / float64(union)
}

// ListRBO computes rank-biased overlap between two ranked label lists
// truncated at the longer list's depth, with persistence p in (0,1).
func ListRBO(a, b []string, p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("ranking: rbo persistence p=%v outside (0,1)", p)
	}
	depth := len(a)
	if len(b) > depth {
		depth = len(b)
	}
	if depth == 0 {
		return 1, nil
	}
	setA := make(map[string]bool, depth)
	setB := make(map[string]bool, depth)
	var sum, norm float64
	weight := 1.0
	overlap := 0
	for d := 1; d <= depth; d++ {
		if d-1 < len(a) {
			x := a[d-1]
			if !setA[x] {
				setA[x] = true
				if setB[x] {
					overlap++
				}
			}
		}
		if d-1 < len(b) {
			x := b[d-1]
			if !setB[x] {
				setB[x] = true
				if setA[x] {
					overlap++
				}
			}
		}
		if d > 1 {
			weight *= p
		}
		sum += weight * float64(overlap) / float64(d)
		norm += weight
	}
	return sum / norm, nil
}

// ListOverlapCurve returns the prefix overlap |A_d ∩ B_d| / d for
// every depth d up to the shorter list's length — the series a UI
// plots to show where two rankings diverge.
func ListOverlapCurve(a, b []string) []float64 {
	depth := len(a)
	if len(b) < depth {
		depth = len(b)
	}
	out := make([]float64, depth)
	setA := make(map[string]bool, depth)
	setB := make(map[string]bool, depth)
	overlap := 0
	for d := 1; d <= depth; d++ {
		x, y := a[d-1], b[d-1]
		if !setA[x] {
			setA[x] = true
			if setB[x] {
				overlap++
			}
		}
		if !setB[y] {
			setB[y] = true
			if setA[y] {
				overlap++
			}
		}
		out[d-1] = float64(overlap) / float64(d)
	}
	return out
}
