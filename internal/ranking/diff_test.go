package ranking

import (
	"testing"
)

func TestDiffLists(t *testing.T) {
	old := []string{"a", "b", "c", "d"}
	new := []string{"a", "c", "b", "e"}
	d := DiffLists(old, new, 4)
	if d.Stable != 1 { // "a"
		t.Errorf("stable = %d, want 1", d.Stable)
	}
	if len(d.Entered) != 1 || d.Entered[0].Label != "e" || d.Entered[0].NewRank != 4 {
		t.Errorf("entered = %+v", d.Entered)
	}
	if len(d.Left) != 1 || d.Left[0].Label != "d" || d.Left[0].OldRank != 4 {
		t.Errorf("left = %+v", d.Left)
	}
	if len(d.Moved) != 2 {
		t.Fatalf("moved = %+v", d.Moved)
	}
	// b fell 2->3 (delta -1), c rose 3->2 (delta +1); |delta| equal so
	// sorted by label.
	if d.Moved[0].Label != "b" || d.Moved[0].Delta() != -1 {
		t.Errorf("moved[0] = %+v", d.Moved[0])
	}
	if d.Moved[1].Label != "c" || d.Moved[1].Delta() != 1 {
		t.Errorf("moved[1] = %+v", d.Moved[1])
	}
	if d.String() == "" {
		t.Error("empty String")
	}
}

func TestDiffListsIdentical(t *testing.T) {
	l := []string{"x", "y"}
	d := DiffLists(l, l, 2)
	if d.Stable != 2 || len(d.Entered)+len(d.Left)+len(d.Moved) != 0 {
		t.Errorf("diff of identical lists: %+v", d)
	}
}

func TestDiffEntryDeltaAbsent(t *testing.T) {
	if (DiffEntry{NewRank: 3}).Delta() != 0 {
		t.Error("entered entry has non-zero delta")
	}
	if (DiffEntry{OldRank: 3}).Delta() != 0 {
		t.Error("left entry has non-zero delta")
	}
}

func TestDiffTopK(t *testing.T) {
	// Results on two *different* graphs, matched by label.
	gOld := labeledGraph(t, "a", "b", "c")
	gNew := labeledGraph(t, "c", "b", "z")
	old := mustResult(t, "x", gOld, []float64{3, 2, 1})
	new := mustResult(t, "x", gNew, []float64{3, 2, 1})
	d, err := DiffTopK(old, new, 3)
	if err != nil {
		t.Fatal(err)
	}
	// old: a,b,c — new: c,b,z. b stable at rank 2; c rose 3->1;
	// a left; z entered.
	if d.Stable != 1 || len(d.Entered) != 1 || len(d.Left) != 1 || len(d.Moved) != 1 {
		t.Errorf("diff = %+v", d)
	}
	if _, err := DiffTopK(old, new, 0); err == nil {
		t.Error("accepted k=0")
	}
}
