package ranking

import (
	"fmt"
	"sort"
)

// Diff describes how a ranking changed between two runs — the demo's
// longitudinal use case ("comparing snapshots of a graph at different
// points in time") reduced to numbers. Entries are matched by label so
// the two results may come from different graphs (different snapshot
// years have different node ids).
type Diff struct {
	K int `json:"k"`
	// Entered lists labels present in the new top-k but not the old,
	// in new-rank order.
	Entered []DiffEntry `json:"entered,omitempty"`
	// Left lists labels present in the old top-k but not the new, in
	// old-rank order.
	Left []DiffEntry `json:"left,omitempty"`
	// Moved lists labels present in both, whose position changed,
	// sorted by |delta| descending.
	Moved []DiffEntry `json:"moved,omitempty"`
	// Stable counts labels present in both at the same position.
	Stable int `json:"stable"`
}

// DiffEntry is one label's movement between two rankings. Ranks are
// 1-based; a rank of 0 means "absent from that side's top-k".
type DiffEntry struct {
	Label   string `json:"label"`
	OldRank int    `json:"old_rank,omitempty"`
	NewRank int    `json:"new_rank,omitempty"`
}

// Delta returns the (old − new) position change; positive means the
// label rose.
func (e DiffEntry) Delta() int {
	if e.OldRank == 0 || e.NewRank == 0 {
		return 0
	}
	return e.OldRank - e.NewRank
}

// DiffTopK compares the top-k of two results by label.
func DiffTopK(old, new *Result, k int) (*Diff, error) {
	if k < 1 {
		return nil, fmt.Errorf("ranking: diff depth k=%d < 1", k)
	}
	return DiffLists(labelsOf(old, k), labelsOf(new, k), k), nil
}

func labelsOf(r *Result, k int) []string {
	top := r.Top(k)
	out := make([]string, len(top))
	for i, e := range top {
		out[i] = e.Label
	}
	return out
}

// DiffLists compares two ranked label lists (already truncated to at
// most k entries each).
func DiffLists(old, new []string, k int) *Diff {
	oldRank := make(map[string]int, len(old))
	for i, l := range old {
		oldRank[l] = i + 1
	}
	newRank := make(map[string]int, len(new))
	for i, l := range new {
		newRank[l] = i + 1
	}

	d := &Diff{K: k}
	for i, l := range new {
		or, inOld := oldRank[l]
		switch {
		case !inOld:
			d.Entered = append(d.Entered, DiffEntry{Label: l, NewRank: i + 1})
		case or == i+1:
			d.Stable++
		default:
			d.Moved = append(d.Moved, DiffEntry{Label: l, OldRank: or, NewRank: i + 1})
		}
	}
	for i, l := range old {
		if _, inNew := newRank[l]; !inNew {
			d.Left = append(d.Left, DiffEntry{Label: l, OldRank: i + 1})
		}
	}
	sort.SliceStable(d.Moved, func(a, b int) bool {
		da, db := abs(d.Moved[a].Delta()), abs(d.Moved[b].Delta())
		if da != db {
			return da > db
		}
		return d.Moved[a].Label < d.Moved[b].Label
	})
	return d
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// String renders the diff compactly for CLI output.
func (d *Diff) String() string {
	return fmt.Sprintf("top-%d diff: %d entered, %d left, %d moved, %d stable",
		d.K, len(d.Entered), len(d.Left), len(d.Moved), d.Stable)
}
