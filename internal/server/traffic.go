package server

import (
	"context"
	"sync"
	"time"

	"github.com/cyclerank/cyclerank-go/internal/bippr"
	"github.com/cyclerank/cyclerank-go/internal/graph"
	"github.com/cyclerank/cyclerank-go/internal/obs"
	"github.com/cyclerank/cyclerank-go/internal/traffic"
)

// TrafficStatus is the workload-learning snapshot, the "traffic" row
// of /api/status. Enabled false means Config.TrafficTopK was negative
// and no sketch exists this boot.
type TrafficStatus struct {
	Enabled bool `json:"enabled"`
	// Restored reports whether this boot's sketch decoded from a
	// previous process's artifact (false: cold start, or the artifact
	// was corrupt and cost its warmth).
	Restored bool `json:"restored"`
	// Recorded counts warmable artifact keys observed since the
	// sketch was created (survives restarts via the artifact).
	Recorded uint64 `json:"recorded"`
	// Tracked counts heavy-hitter keys currently held exactly.
	Tracked int `json:"tracked"`
	// TopK is the heavy-hitter capacity.
	TopK int `json:"top_k"`
	// Saves / SaveErrors count sketch persistence attempts.
	Saves      int64 `json:"saves"`
	SaveErrors int64 `json:"save_errors"`
	// Pinned counts artifacts the learned pre-warm pinned against
	// the sweeper this boot.
	Pinned int `json:"pinned"`
	// DecayEpoch counts halvings applied to the sketch over its
	// LIFETIME (it survives restarts via the artifact); Decays counts
	// the halvings THIS process applied.
	DecayEpoch uint64 `json:"decay_epoch"`
	Decays     int64  `json:"decays"`
}

// trafficState tracks the sketch's persistence and the artifact pins
// the learned pre-warm produced, backing the "traffic" status row and
// its metric families.
type trafficState struct {
	restored bool

	saves      *obs.Counter
	saveErrors *obs.Counter
	decays     *obs.Counter

	pinMu sync.Mutex
	pins  map[string]bool
}

func (t *trafficState) init(sk *traffic.Sketch, reg *obs.Registry) {
	t.pins = make(map[string]bool)
	t.saves = reg.Counter("cyclerank_traffic_sketch_saves_total",
		"Traffic-sketch artifacts persisted (periodic + on close).")
	t.saveErrors = reg.Counter("cyclerank_traffic_sketch_save_errors_total",
		"Traffic-sketch persistence attempts that failed.")
	t.decays = reg.Counter("cyclerank_traffic_decays_total",
		"Traffic-sketch halvings applied by this process's decayer.")
	reg.GaugeFunc("cyclerank_traffic_decay_epoch",
		"Halvings applied to the traffic sketch over its lifetime (persists across restarts).",
		func() float64 {
			if sk == nil {
				return 0
			}
			return float64(sk.Stats().DecayEpoch)
		})
	reg.GaugeFunc("cyclerank_traffic_recorded_queries",
		"Warmable artifact keys recorded in the traffic sketch (lifetime).",
		func() float64 {
			if sk == nil {
				return 0
			}
			return float64(sk.Stats().Recorded)
		})
	reg.GaugeFunc("cyclerank_traffic_tracked_keys",
		"Heavy-hitter keys the traffic sketch tracks exactly.",
		func() float64 {
			if sk == nil {
				return 0
			}
			return float64(sk.Stats().Tracked)
		})
	reg.GaugeFunc("cyclerank_traffic_pinned_artifacts",
		"Artifacts the learned pre-warm pinned against the sweeper.",
		func() float64 {
			t.pinMu.Lock()
			defer t.pinMu.Unlock()
			return float64(len(t.pins))
		})
}

// pin marks a store-relative artifact path as sweep-exempt.
func (t *trafficState) pin(relPath string) {
	t.pinMu.Lock()
	t.pins[relPath] = true
	t.pinMu.Unlock()
}

// pinnedPaths snapshots the pin set for one sweep pass.
func (t *trafficState) pinnedPaths() map[string]bool {
	t.pinMu.Lock()
	defer t.pinMu.Unlock()
	if len(t.pins) == 0 {
		return nil
	}
	out := make(map[string]bool, len(t.pins))
	for p := range t.pins {
		out[p] = true
	}
	return out
}

func (t *trafficState) pinCount() int {
	t.pinMu.Lock()
	defer t.pinMu.Unlock()
	return len(t.pins)
}

func (s *Server) trafficStatus() TrafficStatus {
	st := TrafficStatus{
		Enabled:    s.traffic != nil,
		Restored:   s.trafficState.restored,
		Saves:      s.trafficState.saves.Value(),
		SaveErrors: s.trafficState.saveErrors.Value(),
		Pinned:     s.trafficState.pinCount(),
		Decays:     s.trafficState.decays.Value(),
	}
	if s.traffic != nil {
		sk := s.traffic.Stats()
		st.Recorded = sk.Recorded
		st.Tracked = sk.Tracked
		st.TopK = sk.TopK
		st.DecayEpoch = sk.DecayEpoch
	}
	return st
}

// trafficSaveInterval paces the sketch's periodic persistence. The
// sketch is a few hundred KiB and the write is atomic, so losing one
// interval of counts to a crash is the worst case. A variable so
// tests can tighten it.
var trafficSaveInterval = 30 * time.Second

// runTrafficSaver persists the workload sketch periodically and once
// more on shutdown, so the traffic observed this boot informs the
// next boot's learned pre-warm.
func (s *Server) runTrafficSaver(ctx context.Context) {
	defer s.lifeWG.Done()
	ticker := time.NewTicker(trafficSaveInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			s.saveTraffic()
			return
		case <-ticker.C:
			s.saveTraffic()
		}
	}
}

func (s *Server) saveTraffic() {
	if s.traffic == nil {
		return
	}
	// The calibrator's learned units/ms rates ride along in the sketch
	// artifact, so the next boot predicts with measured rates instead
	// of the fallback constant.
	s.traffic.SetCalibrations(s.scheduler.CalibrationSnapshot())
	if err := s.store.SaveTrafficSketch(s.traffic.Encode()); err != nil {
		s.trafficState.saveErrors.Inc()
		return
	}
	s.trafficState.saves.Inc()
}

// runTrafficDecayer halves the workload sketch every half-life, so a
// formerly-hot key that traffic moved away from ages out of the
// heavy-hitter table — and therefore out of the next boot's pre-warm
// pin set — instead of staying pinned on stale counts forever. The
// decayed state reaches disk through the regular saver; the decay
// epoch rides in the artifact (codec v2) so restarts never replay or
// skip halvings.
func (s *Server) runTrafficDecayer(ctx context.Context, halfLife time.Duration) {
	defer s.lifeWG.Done()
	ticker := time.NewTicker(halfLife)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.traffic.Decay()
			s.trafficState.decays.Inc()
		}
	}
}

// learnedPrewarm warms the artifacts behind the sketch's heavy
// hitters — the keys real traffic demanded most — at the EXACT
// parameters the queries used, then pins them against the artifact
// sweeper: a cap-pressured sweep may reap cold artifacts, never the
// ones the observed workload is about to ask for again. Runs as the
// second phase of the startup pre-warm, after the suggested-source
// phase (catalog knowledge first, learned knowledge on top).
//
// Unparseable keys (future formats), vanished datasets and
// unresolvable labels are each skipped and counted, never fatal —
// the sketch describes a past workload the present deployment may no
// longer match.
func (s *Server) learnedPrewarm(ctx context.Context) {
	if s.traffic == nil {
		return
	}
	top := s.traffic.TopK()
	s.prewarm.learnedKeys.Set(float64(len(top)))
	// Fingerprints are memoized per loaded graph for the pin paths;
	// the graphs themselves come from the scheduler's dataset cache.
	fps := make(map[string]string)
	for _, kc := range top {
		if ctx.Err() != nil {
			return
		}
		k, err := traffic.ParseWarmKey(kc.Key)
		if err != nil {
			s.prewarm.learnedErrors.Inc()
			continue
		}
		g, err := s.scheduler.LoadGraph(k.Dataset)
		if err != nil {
			s.prewarm.learnedErrors.Inc()
			continue
		}
		node, ok := g.NodeByLabel(k.Node)
		if !ok {
			s.prewarm.learnedErrors.Inc()
			continue
		}
		fp, ok := fps[k.Dataset]
		if !ok {
			fp = graph.Fingerprint(g)
			fps[k.Dataset] = fp
		}
		switch k.Kind {
		case traffic.KindIndex:
			_, _, err := s.indexStore.GetOrCompute(ctx, g, node, k.Alpha, k.RMax,
				func() (*bippr.TargetIndex, error) {
					return bippr.ReversePush(ctx, g, node, k.Alpha, k.RMax)
				})
			if err != nil {
				s.prewarm.learnedErrors.Inc()
				continue
			}
			s.trafficState.pin("indexes/" + fp + "/" +
				bippr.IndexFileKey(node, k.Alpha, k.RMax) + ".idx")
		case traffic.KindEndpoints:
			p := bippr.Params{Alpha: k.Alpha, Seed: k.Seed,
				MaxSteps: k.MaxSteps, Walks: k.Walks}.WithDefaults()
			_, _, err := s.endpoints.GetOrRecord(ctx, g, node, p,
				func() (*bippr.EndpointSet, error) {
					w := bippr.NewWalkEstimator(g, p.Alpha, p.Seed, p.MaxSteps)
					return w.Endpoints(ctx, node, p.Walks, p.Workers)
				})
			if err != nil {
				s.prewarm.learnedErrors.Inc()
				continue
			}
			s.trafficState.pin("endpoints/" + fp + "/" +
				bippr.EndpointFileKey(node, p.Alpha, p.Seed, p.MaxSteps, p.Walks) + ".ep")
		default:
			s.prewarm.learnedErrors.Inc()
			continue
		}
		s.prewarm.learnedWarmed.Inc()
	}
}
